GO ?= go

.PHONY: all build test vet lint fairvet-selfcheck race bench bench-smoke bench-check

all: lint build test

build:
	$(GO) build ./...

test:
	$(GO) test ./...

vet:
	$(GO) vet ./...

# lint is the full static gate: formatting, go vet, and the repo's own
# fairvet suite (determinism / atomic-field / context-flow / CLI-exit /
# float-equality contracts — see DESIGN.md "Statically enforced
# contracts"). A finding exits nonzero; suppress only with a justified
# `//fairvet:ignore <pass> -- <reason>` marker.
lint: vet
	@out=$$(gofmt -l .); if [ -n "$$out" ]; then \
		echo "files need gofmt:"; echo "$$out"; exit 1; fi
	$(GO) run ./cmd/fairvet ./...

# fairvet-selfcheck proves the linter still bites: the selfcheck
# fixture seeds one known violation per pass, and each pass is run
# alone against it — a pass that accepts the fixture, or fires without
# naming itself in the finding, has gone blind.
fairvet-selfcheck:
	@$(GO) build -o .fairvet-selfcheck-bin ./cmd/fairvet
	@status=0; \
	for p in nodeterminism atomicfield ctxflow cliexit floateq lockcheck errflow hotalloc; do \
		out=$$(./.fairvet-selfcheck-bin -passes $$p ./internal/analysis/testdata/src/selfcheck 2>&1); \
		if [ $$? -eq 0 ]; then \
			echo "pass $$p accepted the seeded-violation fixture; it has gone blind"; status=1; \
		elif ! echo "$$out" | grep -q "\[$$p\]"; then \
			echo "pass $$p failed the fixture without a [$$p] finding:"; echo "$$out"; status=1; \
		fi; \
	done; \
	rm -f .fairvet-selfcheck-bin; \
	if [ $$status -eq 0 ]; then echo "fairvet self-check ok: every pass still detects its seeded violation"; fi; \
	exit $$status

# race runs every concurrency-sensitive suite under the race detector —
# the single source of truth for what CI exercises with -race. The -run
# filters keep the expensive packages scoped to their concurrent paths.
race:
	$(GO) test -race ./internal/engine ./internal/goldencase
	$(GO) test -race ./internal/core -run 'TestParallelSweep|TestAggregateKernelParity|TestEmptyClusterRepair'
	$(GO) test -race ./internal/kmeans ./internal/zgya
	$(GO) test -race ./internal/stats
	$(GO) test -race ./internal/kmeans -run 'TestPruned|TestPrune'
	$(GO) test -race ./internal/coreset ./internal/pipeline ./internal/dataset
	$(GO) test -race ./internal/core -run 'TestWeighted|TestEvaluateObjectiveWeighted|TestRunWeighted'
	$(GO) test -race ./internal/kmeans -run 'TestRunWeighted'
	$(GO) test -race ./internal/model ./internal/serve
	$(GO) test -race ./internal/load
	$(GO) test -race ./internal/serve -run 'TestAdmission|TestDeadline|TestGatedDeterminism|TestReloadFaultInjection'
	$(GO) test -race ./internal/telemetry
	$(GO) test -race ./internal/serve -run 'TestAssignBatchTraced|TestSnapshotDoesNotBlockRecording'
	$(GO) test -race ./internal/cli ./cmd/benchguard

# bench records the sweep/kernel perf trajectory for this checkout as a
# raw `go test -bench -json` event stream, so future PRs can diff
# ns/op. BENCH_sweep.json is the frozen pre-engine baseline (PR 1);
# BENCH_engine.json is re-recorded by this target and must stay within
# 5% of it on BenchmarkSweep/BenchmarkBestMove. BENCH_stream.json
# records the summarize-then-solve pipeline against full-data FairKM
# (wall-clock, summary size and objective ratio on Adult-6500 and a
# synthetic n=10^5 stream). BENCH_serve.json records batch-assign
# serving throughput across micro-batch sizes and worker counts
# (BenchmarkServe, 4096 Adult-shaped rows per op at k=15), plus the
# BenchmarkServeTelemetry off/on pair — the same workload without and
# with span tracing — which bench-check compares against each other.
# BENCH_shard.json records sharded summarize-then-solve scaling
# (BenchmarkShard, S ∈ {1,2,4,8} on Adult-6500 + synth-1e5; obj-vs-s1
# must stay ≈1 — sharding buys wall-clock, not objective).
# BENCH_load.json records the open-loop rows/s-at-SLO trajectory
# (BenchmarkLoad, offered rates {500,2000,8000} req/s against an
# in-process admission-controlled registry; rows/s, accepted p99,
# shed fraction, SLO verdict per operating point).
# BENCH_kernels.json is the frozen PR 7 baseline for the pruned
# nearest-centroid kernels (BenchmarkLloyd kernel={pruned,full} and
# the BenchmarkServe workers×batch grid + kernel k-sweep); it is NOT
# re-recorded by this target — `make bench-check` diffs fresh
# recordings against it.
# Guarded recordings use -count 3: benchguard compares the minimum
# ns/op across counts (the repeatable floor), which is what keeps a
# ±5% bar meaningful on a shared box where CPU steal inflates single
# runs by 10%+.
bench:
	$(GO) test ./internal/core ./internal/kmeans -run '^$$' -bench 'BenchmarkSweep|BenchmarkBestMove|BenchmarkRunAdult|BenchmarkLloyd' -benchtime 1s -count 3 -json > BENCH_engine.json
	$(GO) test . -run '^$$' -bench 'BenchmarkStream' -benchtime 1x -count 3 -json > BENCH_stream.json
	$(GO) test . -run '^$$' -bench 'BenchmarkShard' -benchtime 1x -count 3 -json > BENCH_shard.json
	$(GO) test ./internal/serve -run '^$$' -bench 'BenchmarkServe' -benchtime 1s -count 3 -json > BENCH_serve.json
	$(GO) test ./internal/load -run '^$$' -bench 'BenchmarkLoad' -benchtime 1x -json > BENCH_load.json
	$(GO) test ./internal/stats -run '^$$' -bench 'BenchmarkDot|BenchmarkSqDist|BenchmarkZipf|BenchmarkNearest' -benchtime 1s

# bench-check guards the recorded perf trajectory: after `make bench`,
# diff the fresh recordings against the frozen baselines (exit 2 on
# regression). BENCH_sweep.json froze the pre-engine sweep kernels
# (PR 1) and holds at ±5%; BENCH_kernels.json froze the pruned Lloyd +
# serving kernels (PR 7) and gets ±15%, because on the 1-CPU shared
# reference box the min-of-3 floor of the Lloyd/serve benchmarks still
# drifts ±10% between back-to-back no-op recordings (measured while
# freezing the baseline) — a genuine pruning regression (losing the
# 1.5–2× win at k=150) blows far past 15%, noise does not.
bench-check:
	$(GO) run ./cmd/benchguard -baseline BENCH_sweep.json -current BENCH_engine.json -match 'BenchmarkSweep/|BenchmarkBestMove/' -tol 0.05
	$(GO) run ./cmd/benchguard -baseline BENCH_kernels.json -current BENCH_engine.json -match 'BenchmarkLloyd/' -tol 0.15
	$(GO) run ./cmd/benchguard -baseline BENCH_kernels.json -current BENCH_serve.json -match 'BenchmarkServe/' -tol 0.15
	$(GO) run ./cmd/benchguard -baseline BENCH_serve.json -current BENCH_serve.json -match 'BenchmarkServeTelemetry/telemetry=off/' -rename-from 'telemetry=off' -rename-to 'telemetry=on' -tol 0.05

# bench-smoke just proves the benchmarks still compile and run (CI).
bench-smoke:
	$(GO) test ./internal/core -run '^$$' -bench 'BenchmarkSweep' -benchtime 1x
	$(GO) test . -run '^$$' -bench 'BenchmarkStream/stream' -benchtime 1x
	$(GO) test . -run '^$$' -bench 'BenchmarkShard/shards=2/adult6500' -benchtime 1x
	$(GO) test ./internal/serve -run '^$$' -bench 'BenchmarkServe/workers=1/batch=64' -benchtime 1x
	$(GO) test ./internal/serve -run '^$$' -bench 'BenchmarkServe/kernel=' -benchtime 1x
	$(GO) test ./internal/serve -run '^$$' -bench 'BenchmarkServeTelemetry' -benchtime 1x
	$(GO) test ./internal/kmeans -run '^$$' -bench 'BenchmarkLloyd' -benchtime 1x
	$(GO) test ./internal/load -run '^$$' -bench 'BenchmarkLoad/rate=500' -benchtime 1x
	$(GO) test ./internal/stats -run '^$$' -bench 'BenchmarkDot|BenchmarkSqDist|BenchmarkZipf|BenchmarkNearest' -benchtime 1x
