GO ?= go

.PHONY: all build test vet bench bench-smoke

all: vet build test

build:
	$(GO) build ./...

test:
	$(GO) test ./...

vet:
	$(GO) vet ./...

# bench records the sweep/kernel perf trajectory for this checkout as a
# raw `go test -bench -json` event stream, so future PRs can diff
# ns/op. BENCH_sweep.json is the frozen pre-engine baseline (PR 1);
# BENCH_engine.json is re-recorded by this target and must stay within
# 5% of it on BenchmarkSweep/BenchmarkBestMove. BENCH_stream.json
# records the summarize-then-solve pipeline against full-data FairKM
# (wall-clock, summary size and objective ratio on Adult-6500 and a
# synthetic n=10^5 stream). BENCH_serve.json records batch-assign
# serving throughput across micro-batch sizes and worker counts
# (BenchmarkServe, 4096 Adult-shaped rows per op at k=15).
# BENCH_shard.json records sharded summarize-then-solve scaling
# (BenchmarkShard, S ∈ {1,2,4,8} on Adult-6500 + synth-1e5; obj-vs-s1
# must stay ≈1 — sharding buys wall-clock, not objective).
# BENCH_load.json records the open-loop rows/s-at-SLO trajectory
# (BenchmarkLoad, offered rates {500,2000,8000} req/s against an
# in-process admission-controlled registry; rows/s, accepted p99,
# shed fraction, SLO verdict per operating point).
bench:
	$(GO) test ./internal/core -run '^$$' -bench 'BenchmarkSweep|BenchmarkBestMove|BenchmarkRunAdult' -benchtime 1s -json > BENCH_engine.json
	$(GO) test . -run '^$$' -bench 'BenchmarkStream' -benchtime 1x -count 3 -json > BENCH_stream.json
	$(GO) test . -run '^$$' -bench 'BenchmarkShard' -benchtime 1x -count 3 -json > BENCH_shard.json
	$(GO) test ./internal/serve -run '^$$' -bench 'BenchmarkServe' -benchtime 1s -json > BENCH_serve.json
	$(GO) test ./internal/load -run '^$$' -bench 'BenchmarkLoad' -benchtime 1x -json > BENCH_load.json
	$(GO) test ./internal/stats -run '^$$' -bench 'BenchmarkDot|BenchmarkSqDist|BenchmarkZipf' -benchtime 1s

# bench-smoke just proves the benchmarks still compile and run (CI).
bench-smoke:
	$(GO) test ./internal/core -run '^$$' -bench 'BenchmarkSweep' -benchtime 1x
	$(GO) test . -run '^$$' -bench 'BenchmarkStream/stream' -benchtime 1x
	$(GO) test . -run '^$$' -bench 'BenchmarkShard/shards=2/adult6500' -benchtime 1x
	$(GO) test ./internal/serve -run '^$$' -bench 'BenchmarkServe/workers=1/batch=64' -benchtime 1x
	$(GO) test ./internal/load -run '^$$' -bench 'BenchmarkLoad/rate=500' -benchtime 1x
	$(GO) test ./internal/stats -run '^$$' -bench 'BenchmarkDot|BenchmarkSqDist|BenchmarkZipf' -benchtime 1x
