// Package fairclust is the public API of this repository: a Go
// implementation of FairKM — "Fairness in Clustering with Multiple
// Sensitive Attributes" (Abraham, Deepak P, Sundaram; EDBT 2020) — with
// its baselines, datasets and the complete evaluation harness.
//
// # Quick start
//
//	b := fairclust.NewBuilder("income", "tenure")
//	b.AddCategoricalSensitive("gender")
//	b.Row([]float64{52, 3}, []string{"f"}, nil)
//	// ... more rows ...
//	ds, err := b.Build()
//	res, err := fairclust.Run(ds, fairclust.Config{K: 3, AutoLambda: true})
//	// res.Assign[i] is row i's cluster.
//
// The λ parameter trades cluster coherence (over the non-sensitive
// features) against representational fairness (each cluster's
// distribution over every sensitive attribute approximating the
// dataset's). AutoLambda applies the paper's λ=(n/k)² heuristic.
//
// # Weighted points and streaming
//
// RunWeighted solves FairKM over weighted rows (row i stands for w_i
// points); unit weights reproduce Run bit-for-bit. FitStream feeds a
// chunked row source through a fair merge-and-reduce coreset and
// solves weighted FairKM on the O(m·log n) summary, so unbounded
// inputs cluster on fixed memory:
//
//	src, err := fairclust.NewCSVStream(f, spec, 4096)
//	res, err := fairclust.FitStream(src, fairclust.StreamConfig{K: 5, AutoLambda: true})
//	// res.Solve.Centroids deploys via res.Solve.Predict; re-stream
//	// through fairclust.EvaluateStream for exact full-data metrics.
//
// For data-parallel ingestion, FitStreamSharded deals chunks round-
// robin to S independent summarizers, and FitSharded runs one
// summarizer per pre-split source — SplitCSV shards a CSV file on row
// boundaries for true parallel reads. Per-shard coresets merge into one
// weighted summary (a union of fair coresets is a fair coreset), and
// results are bit-identical for every worker count.
//
// See cmd/fairstream for the end-to-end CLI.
//
// # Model artifacts and serving
//
// A trained clustering persists as a versioned artifact that loads
// back bit-identically and serves concurrent assignment traffic:
//
//	m, err := fairclust.NewModel(ds, nil, res, fairclust.ModelProvenance{Tool: "myapp"})
//	err = fairclust.SaveModel("prod.model.json", m)
//	// ... later, in the serving process ...
//	m, err = fairclust.LoadModel("prod.model.json")
//	a, err := fairclust.NewAssigner(m, fairclust.AssignerOptions{})
//	clusters, dists, err := a.AssignBatch(rows, nil)
//
// Results are deterministic for every worker count and batch size.
// cmd/fairserved exposes the same stack over HTTP with atomic
// hot-swap, latency quantiles and fairness-drift reports.
//
// # Package map
//
//   - internal/engine — the shared descent engine: initializers, sweep
//     strategies (sequential, mini-batch, frozen-parallel, Lloyd),
//     convergence policies (zero-moves, Tol, MaxIter, wall-clock
//     budget) and the per-iteration Observer hook
//   - internal/core — the FairKM objective on the engine (re-exported
//     here), over unit-weight or weighted rows
//   - internal/coreset — fair (group-stratified) lightweight coresets
//     and the streaming merge-and-reduce summary
//   - internal/pipeline — the summarize-then-solve pipeline gluing
//     coreset, weighted solver and second-pass metrics together, with
//     sharded data-parallel ingestion and a deterministic merge
//   - internal/model — the persistent model artifact (deterministic
//     JSON codec, Save/Load, domain snapshots, provenance)
//   - internal/serve — the serving subsystem: micro-batching assigner
//     pool, hot-swap registry, latency and fairness-drift tracking
//   - internal/kmeans — classical K-Means on the engine (the S-blind
//     baseline), with a weighted variant for coresets
//   - internal/zgya — the ZGYA fair-clustering baseline [Ziko et al.
//     2019] on the engine
//   - internal/fairlet, internal/bera — further baselines from the
//     fair-clustering literature
//   - internal/metrics — the paper's quality and fairness measures
//   - internal/data/adult, internal/data/kinematics — synthetic
//     stand-ins for the paper's evaluation datasets
//   - internal/experiments — regenerates every table and figure
//   - internal/goldencase — pinned solver trajectories guarding
//     refactors of the engine and objectives
//
// See README.md, DESIGN.md and EXPERIMENTS.md for the full tour.
package fairclust

import (
	"io"

	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/engine"
	"repro/internal/kmeans"
	"repro/internal/metrics"
	"repro/internal/model"
	"repro/internal/pipeline"
	"repro/internal/serve"
)

// Dataset is a clustering input: numeric non-sensitive features plus
// categorical/numeric sensitive attributes. See the builder helpers or
// ReadCSV to construct one.
type Dataset = dataset.Dataset

// SensitiveAttr is one sensitive column of a Dataset.
type SensitiveAttr = dataset.SensitiveAttr

// Builder accumulates rows and produces a validated Dataset.
type Builder = dataset.Builder

// CSVSpec tells ReadCSV how to map CSV columns onto features and
// sensitive attributes.
type CSVSpec = dataset.CSVSpec

// Config parameterizes a FairKM run; the zero value plus a K is valid
// (λ=0 behaves like K-Means).
type Config = core.Config

// Result is a completed FairKM clustering.
type Result = core.Result

// FairnessReport carries the AE/AW/ME/MW fairness measures for one
// sensitive attribute.
type FairnessReport = metrics.FairnessReport

// KMeansConfig parameterizes the S-blind K-Means baseline.
type KMeansConfig = kmeans.Config

// KMeansResult is a completed K-Means clustering.
type KMeansResult = kmeans.Result

// Observer is the engine's per-iteration hook: set Config.Observer (on
// any solver config) to receive an IterEvent after every sweep —
// progress callbacks, trace logging, convergence studies.
type Observer = engine.Observer

// IterEvent is the per-iteration record passed to an Observer.
type IterEvent = engine.IterEvent

// InitMethod selects the shared initializer (k-means++ by default,
// random partition with empty-cluster repair, or random points) used
// identically by FairKM, K-Means and ZGYA.
type InitMethod = engine.InitMethod

// NewBuilder creates a Builder for the given feature column names.
func NewBuilder(featureNames ...string) *Builder {
	return dataset.NewBuilder(featureNames...)
}

// ReadCSV parses a headed CSV stream into a Dataset according to spec.
func ReadCSV(r io.Reader, spec CSVSpec) (*Dataset, error) {
	return dataset.ReadCSV(r, spec)
}

// WriteCSV serializes a Dataset as headed CSV.
func WriteCSV(w io.Writer, ds *Dataset) error {
	return dataset.WriteCSV(w, ds)
}

// Run executes FairKM on the dataset.
func Run(ds *Dataset, cfg Config) (*Result, error) {
	return core.Run(ds, cfg)
}

// RunWeighted executes FairKM over weighted rows: row i stands for
// weights[i] original points, so a coreset summary solves at summary
// cost while approximating the full data's objective. Unit weights
// reproduce Run bit-for-bit.
func RunWeighted(ds *Dataset, weights []float64, cfg Config) (*Result, error) {
	return core.RunWeighted(ds, weights, cfg)
}

// WeightedObjective evaluates the weighted FairKM objective for an
// arbitrary assignment from scratch (weights == nil means unit
// weights, matching Objective).
func WeightedObjective(ds *Dataset, weights []float64, assign []int, k int, lambda float64) (core.ObjectiveValue, error) {
	return core.EvaluateObjectiveWeighted(ds, weights, assign, k, lambda, nil)
}

// StreamSource yields successive chunks of a row stream; CSVStream and
// SliceSource implement it.
type StreamSource = pipeline.Source

// StreamConfig parameterizes FitStream.
type StreamConfig = pipeline.Config

// StreamResult is a completed summarize-then-solve run.
type StreamResult = pipeline.Result

// StreamEvaluation carries exact full-data metrics for a set of
// centroids, computed by EvaluateStream in one fixed-memory pass.
type StreamEvaluation = pipeline.Evaluation

// CSVStream reads a headed CSV source in bounded chunks; it implements
// StreamSource.
type CSVStream = dataset.CSVStream

// NewCSVStream opens a chunked CSV reader (chunkSize <= 0 means 4096).
func NewCSVStream(r io.Reader, spec CSVSpec, chunkSize int) (*CSVStream, error) {
	return dataset.NewCSVStream(r, spec, chunkSize)
}

// NewSliceSource adapts an in-memory Dataset to StreamSource, yielding
// fixed-size chunks.
func NewSliceSource(ds *Dataset, chunk int) StreamSource {
	return pipeline.NewSliceSource(ds, chunk)
}

// FitStream consumes the source to completion through a fair
// merge-and-reduce coreset (one stratum per combination of categorical
// sensitive values, O(m·log n) rows per stratum) and solves weighted
// FairKM on the summary. Memory is independent of the stream length.
func FitStream(src StreamSource, cfg StreamConfig) (*StreamResult, error) {
	return pipeline.FitStream(src, cfg)
}

// EvaluateStream re-streams the source, assigns every row to its
// nearest centroid, and returns the exact full-data objective and
// fairness measures — the pipeline's second pass.
func EvaluateStream(src StreamSource, centroids [][]float64, lambda float64) (*StreamEvaluation, error) {
	return pipeline.Evaluate(src, centroids, lambda)
}

// ShardedStreamConfig parameterizes the sharded summarize-then-solve
// entry points: the embedded StreamConfig drives each shard and the
// final solve; Shards, Workers and MergeBudget control the fan-out.
type ShardedStreamConfig = pipeline.ShardedConfig

// CSVShards is a CSV file split on row boundaries into independently
// readable byte ranges; build one with SplitCSV and Open each shard as
// its own chunked StreamSource.
type CSVShards = dataset.CSVShards

// SplitCSV splits the headed CSV file at path into shards byte ranges
// aligned to row boundaries, enabling parallel ingestion of one file.
func SplitCSV(path string, shards int) (*CSVShards, error) {
	return dataset.SplitCSV(path, shards)
}

// FitSharded runs one coreset summarizer per source in parallel,
// merges the per-shard summaries (weighted union with cross-shard
// domain reconciliation) and solves weighted FairKM on the result.
// Results are bit-identical for every Workers value; a single source
// at MergeBudget 0 reproduces FitStream bit-for-bit.
func FitSharded(sources []StreamSource, cfg ShardedStreamConfig) (*StreamResult, error) {
	return pipeline.FitSharded(sources, cfg)
}

// FitStreamSharded is FitSharded over one chunked source: chunks are
// dealt round-robin to cfg.Shards summarizers ingesting on cfg.Workers
// workers. Shards ≤ 1 delegates to FitStream.
func FitStreamSharded(src StreamSource, cfg ShardedStreamConfig) (*StreamResult, error) {
	return pipeline.FitStreamSharded(src, cfg)
}

// EvaluateStreamModel is EvaluateStream for a loaded model artifact: it
// scores the model's centroids at its trained λ, applying the
// artifact's feature scaling (if any) to every chunk first — so the raw
// training file can be re-evaluated against a saved model directly.
func EvaluateStreamModel(src StreamSource, m *Model) (*StreamEvaluation, error) {
	if m.Scaling != nil {
		src = &scaledStream{src: src, scaling: m.Scaling}
	}
	return pipeline.Evaluate(src, m.Centroids, m.Lambda)
}

// scaledStream applies a model's feature scaling to every chunk in
// flight. Rows are copied before scaling: sources may alias caller
// memory (SliceSource chunks share the underlying Dataset's rows), and
// evaluation must never mutate the caller's data.
type scaledStream struct {
	src     StreamSource
	scaling *model.Scaling
}

func (s *scaledStream) Next() (*Dataset, error) {
	chunk, err := s.src.Next()
	if err != nil {
		return nil, err
	}
	scaled := *chunk
	scaled.Features = make([][]float64, len(chunk.Features))
	for i, row := range chunk.Features {
		r := append([]float64(nil), row...)
		s.scaling.Apply(r)
		scaled.Features[i] = r
	}
	return &scaled, nil
}

// Model is a persistent, self-describing trained-clustering artifact:
// centroids, λ, per-cluster sensitive-value distributions, domain
// snapshots, optional feature scaling and provenance. Save it after
// training, serve it with NewAssigner or cmd/fairserved.
type Model = model.Model

// ModelProvenance records where a model artifact came from.
type ModelProvenance = model.Provenance

// ModelScaling records a feature transform (min-max) applied before
// training, carried by the artifact so serving can map raw inputs into
// the trained space.
type ModelScaling = model.Scaling

// Assigner answers single and batch nearest-centroid queries for one
// model through a micro-batching worker pool, tracking latency and
// fairness drift. Results are deterministic for every pool
// configuration.
type Assigner = serve.Assigner

// AssignerOptions configures the Assigner's worker pool and, when
// MaxConcurrent is set, its admission control (bounded queue +
// wait-budget load shedding).
type AssignerOptions = serve.Options

// ModelRegistry is a named set of served models with atomic hot-swap.
type ModelRegistry = serve.Registry

// IsShedError reports whether an assignment error is an
// admission-control rejection: the server is over capacity and the
// caller should back off and retry (the server itself is healthy).
func IsShedError(err error) bool { return serve.IsShed(err) }

// NewModel builds a model artifact from a completed solve: the dataset
// (or weighted summary) it ran on, per-row weights (nil for unit
// weights) and the result.
func NewModel(ds *Dataset, weights []float64, res *Result, prov ModelProvenance) (*Model, error) {
	return model.New(ds, weights, res, prov)
}

// SaveModel writes a model artifact to path atomically.
func SaveModel(path string, m *Model) error { return model.Save(path, m) }

// LoadModel reads and validates the model artifact at path. A loaded
// model reproduces the saved model's assignments bit-for-bit.
func LoadModel(path string) (*Model, error) { return model.Load(path) }

// NewAssigner starts a serving assigner for a model.
func NewAssigner(m *Model, opts AssignerOptions) (*Assigner, error) {
	return serve.NewAssigner(m, opts)
}

// NewModelRegistry returns an empty serving registry; opts configure
// every Assigner it constructs.
func NewModelRegistry(opts AssignerOptions) *ModelRegistry { return serve.NewRegistry(opts) }

// DefaultLambda returns the paper's λ = (n/k)² heuristic (Section 5.4).
func DefaultLambda(n, k int) float64 { return core.DefaultLambda(n, k) }

// Objective evaluates the FairKM objective for an arbitrary assignment
// from scratch (useful for scoring clusterings produced elsewhere).
func Objective(ds *Dataset, assign []int, k int, lambda float64) (core.ObjectiveValue, error) {
	return core.EvaluateObjective(ds, assign, k, lambda, nil)
}

// KMeans runs the S-blind K-Means baseline on the dataset's features.
func KMeans(ds *Dataset, cfg KMeansConfig) (*KMeansResult, error) {
	return kmeans.Run(ds.Features, cfg)
}

// Fairness computes the paper's fairness measures (AE, AW, ME, MW) for
// every categorical sensitive attribute of ds under the given
// assignment, appending a "mean" report across attributes.
func Fairness(ds *Dataset, assign []int, k int) []FairnessReport {
	return metrics.FairnessAll(ds, assign, k)
}

// ClusteringObjective returns the K-Means SSE of an assignment over the
// dataset's features (the paper's CO measure).
func ClusteringObjective(ds *Dataset, assign []int, k int) float64 {
	return metrics.CO(ds.Features, assign, k)
}

// Silhouette returns the (sampled) silhouette score of an assignment
// (the paper's SH measure). sample bounds the points averaged; pass
// ds.N() or more for the exact score.
func Silhouette(ds *Dataset, assign []int, k, sample int, seed int64) float64 {
	return metrics.SilhouetteSampled(ds.Features, assign, k, sample, seed)
}
