package fairclust_test

import (
	"bytes"
	"math"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/stats"

	fairclust "repro"
)

// buildDataset constructs a dataset through the public API only.
func buildDataset(t *testing.T) *fairclust.Dataset {
	t.Helper()
	b := fairclust.NewBuilder("f1", "f2")
	b.AddCategoricalSensitive("g")
	rng := stats.NewRNG(1)
	for i := 0; i < 60; i++ {
		blob := float64(i % 2 * 6)
		g := "a"
		if (i/2)%3 == 0 {
			g = "b"
		}
		b.Row([]float64{rng.Gaussian(blob, 0.5), rng.Gaussian(0, 0.5)}, []string{g}, nil)
	}
	ds, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	return ds
}

func TestPublicAPIEndToEnd(t *testing.T) {
	ds := buildDataset(t)
	ds.MinMaxNormalize()
	res, err := fairclust.Run(ds, fairclust.Config{K: 2, AutoLambda: true, Seed: 1})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if len(res.Assign) != ds.N() {
		t.Fatalf("assignment length %d, want %d", len(res.Assign), ds.N())
	}
	km, err := fairclust.KMeans(ds, fairclust.KMeansConfig{K: 2, Seed: 1})
	if err != nil {
		t.Fatalf("KMeans: %v", err)
	}
	fair := fairclust.Fairness(ds, res.Assign, 2)
	blind := fairclust.Fairness(ds, km.Assign, 2)
	if fair[len(fair)-1].AE > blind[len(blind)-1].AE {
		t.Errorf("FairKM AE %v worse than blind %v", fair[len(fair)-1].AE, blind[len(blind)-1].AE)
	}
	co := fairclust.ClusteringObjective(ds, res.Assign, 2)
	if co <= 0 {
		t.Errorf("CO = %v", co)
	}
	sh := fairclust.Silhouette(ds, res.Assign, 2, 1000, 1)
	if sh < -1 || sh > 1 {
		t.Errorf("SH = %v outside [-1,1]", sh)
	}
	obj, err := fairclust.Objective(ds, res.Assign, 2, res.Lambda)
	if err != nil {
		t.Fatalf("Objective: %v", err)
	}
	if math.Abs(obj.Objective-res.Objective) > 1e-6*(1+res.Objective) {
		t.Errorf("facade objective %v, Run objective %v", obj.Objective, res.Objective)
	}
}

// TestPublicWeightedAndStreaming drives the weighted solver and the
// summarize-then-solve pipeline through the public facade only.
func TestPublicWeightedAndStreaming(t *testing.T) {
	ds := buildDataset(t)

	// Weighted solve: unit weights must reproduce the plain solver.
	ones := make([]float64, ds.N())
	for i := range ones {
		ones[i] = 1
	}
	ref, err := fairclust.Run(ds, fairclust.Config{K: 3, AutoLambda: true, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	wres, err := fairclust.RunWeighted(ds, ones, fairclust.Config{K: 3, AutoLambda: true, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	for i := range ref.Assign {
		if wres.Assign[i] != ref.Assign[i] {
			t.Fatalf("unit-weight assign[%d] differs", i)
		}
	}
	if math.Float64bits(wres.Objective) != math.Float64bits(ref.Objective) {
		t.Errorf("unit-weight objective %v vs %v", wres.Objective, ref.Objective)
	}
	if _, err := fairclust.WeightedObjective(ds, ones, ref.Assign, 3, ref.Lambda); err != nil {
		t.Fatal(err)
	}

	// Streaming: CSV out, chunked CSV back in, summarize, solve,
	// second-pass evaluate.
	var buf bytes.Buffer
	if err := fairclust.WriteCSV(&buf, ds); err != nil {
		t.Fatal(err)
	}
	spec := fairclust.CSVSpec{Features: []string{"f1", "f2"}, CategoricalSensitive: []string{"g"}}
	src, err := fairclust.NewCSVStream(bytes.NewReader(buf.Bytes()), spec, 16)
	if err != nil {
		t.Fatal(err)
	}
	sres, err := fairclust.FitStream(src, fairclust.StreamConfig{K: 3, AutoLambda: true, CoresetSize: 10, Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	if sres.N != ds.N() {
		t.Fatalf("streamed %d rows, want %d", sres.N, ds.N())
	}
	src2, err := fairclust.NewCSVStream(bytes.NewReader(buf.Bytes()), spec, 16)
	if err != nil {
		t.Fatal(err)
	}
	ev, err := fairclust.EvaluateStream(src2, sres.Solve.Centroids, sres.Lambda)
	if err != nil {
		t.Fatal(err)
	}
	if ev.N != ds.N() {
		t.Fatalf("evaluated %d rows, want %d", ev.N, ds.N())
	}
	if len(ev.Fairness) == 0 || ev.Fairness[len(ev.Fairness)-1].Attribute != "mean" {
		t.Fatalf("missing fairness reports: %+v", ev.Fairness)
	}
	// Two well-separated blobs: the streamed solve must still find a
	// sane clustering (objective in the same decade as the full solve).
	if ev.Value.Objective > 10*ref.Objective+1 {
		t.Errorf("streamed objective %v far above full solve %v", ev.Value.Objective, ref.Objective)
	}
}

// TestPublicSharded exercises the sharded streaming surface: SplitCSV
// over a real file, FitSharded across its shards, FitStreamSharded
// round-robin, and the S=1 ≡ FitStream contract — all through the
// public API only.
func TestPublicSharded(t *testing.T) {
	ds := buildDataset(t)
	var buf bytes.Buffer
	if err := fairclust.WriteCSV(&buf, ds); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "rows.csv")
	if err := os.WriteFile(path, buf.Bytes(), 0o644); err != nil {
		t.Fatal(err)
	}
	spec := fairclust.CSVSpec{Features: []string{"f1", "f2"}, CategoricalSensitive: []string{"g"}}
	cfg := fairclust.StreamConfig{K: 3, AutoLambda: true, CoresetSize: 10, Seed: 4}

	split, err := fairclust.SplitCSV(path, 2)
	if err != nil {
		t.Fatal(err)
	}
	srcs := make([]fairclust.StreamSource, split.Shards())
	for i := range srcs {
		stream, closer, err := split.Open(i, spec, 16)
		if err != nil {
			t.Fatal(err)
		}
		defer closer.Close()
		srcs[i] = stream
	}
	res, err := fairclust.FitSharded(srcs, fairclust.ShardedStreamConfig{Config: cfg})
	if err != nil {
		t.Fatal(err)
	}
	if res.N != ds.N() || res.Shards != 2 {
		t.Fatalf("sharded run saw n=%d shards=%d, want n=%d shards=2", res.N, res.Shards, ds.N())
	}

	// Round-robin over one source, S=1: bit-identical to FitStream.
	ref, err := fairclust.FitStream(fairclust.NewSliceSource(ds, 16), cfg)
	if err != nil {
		t.Fatal(err)
	}
	rr, err := fairclust.FitStreamSharded(fairclust.NewSliceSource(ds, 16), fairclust.ShardedStreamConfig{Config: cfg, Shards: 1, Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	if math.Float64bits(rr.Solve.Objective) != math.Float64bits(ref.Solve.Objective) {
		t.Errorf("S=1 objective %v differs from FitStream %v", rr.Solve.Objective, ref.Solve.Objective)
	}
	for i := range ref.Solve.Assign {
		if rr.Solve.Assign[i] != ref.Solve.Assign[i] {
			t.Fatalf("S=1 assign[%d] differs", i)
		}
	}

	// S=2 round-robin, deterministic across workers.
	first, err := fairclust.FitStreamSharded(fairclust.NewSliceSource(ds, 16), fairclust.ShardedStreamConfig{Config: cfg, Shards: 2, Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	second, err := fairclust.FitStreamSharded(fairclust.NewSliceSource(ds, 16), fairclust.ShardedStreamConfig{Config: cfg, Shards: 2, Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	if math.Float64bits(first.Solve.Objective) != math.Float64bits(second.Solve.Objective) {
		t.Errorf("worker count changed the S=2 objective: %v vs %v", first.Solve.Objective, second.Solve.Objective)
	}
}

func TestPublicCSVRoundTrip(t *testing.T) {
	ds := buildDataset(t)
	var buf bytes.Buffer
	if err := fairclust.WriteCSV(&buf, ds); err != nil {
		t.Fatalf("WriteCSV: %v", err)
	}
	got, err := fairclust.ReadCSV(strings.NewReader(buf.String()), fairclust.CSVSpec{
		Features:             []string{"f1", "f2"},
		CategoricalSensitive: []string{"g"},
	})
	if err != nil {
		t.Fatalf("ReadCSV: %v", err)
	}
	if got.N() != ds.N() {
		t.Errorf("round-trip N = %d, want %d", got.N(), ds.N())
	}
}

func TestDefaultLambda(t *testing.T) {
	if got := fairclust.DefaultLambda(100, 10); got != 100 {
		t.Errorf("DefaultLambda(100,10) = %v, want 100", got)
	}
}

func TestBaselineFacades(t *testing.T) {
	ds := buildDataset(t)
	ds.MinMaxNormalize()

	zg, err := fairclust.ZGYA(ds, "g", fairclust.ZGYAConfig{K: 2, AutoLambda: true, Seed: 1})
	if err != nil {
		t.Fatalf("ZGYA: %v", err)
	}
	if len(zg.Assign) != ds.N() {
		t.Error("ZGYA assignment length")
	}

	fl, err := fairclust.Fairlets(ds, "g", fairclust.FairletConfig{K: 2, Seed: 1})
	if err != nil {
		t.Fatalf("Fairlets: %v", err)
	}
	if len(fl.Fairlets) == 0 {
		t.Error("no fairlets")
	}

	br, err := fairclust.BeraAssign(ds, fairclust.BeraConfig{K: 2, Delta: 0.4, Seed: 1})
	if err != nil {
		t.Fatalf("BeraAssign: %v", err)
	}
	if br.MaxViolation < 0 {
		t.Error("negative violation")
	}

	sp, err := fairclust.Spectral(ds, fairclust.SpectralConfig{K: 2, Fair: true, Seed: 1})
	if err != nil {
		t.Fatalf("Spectral: %v", err)
	}
	if len(sp.Embedding) != ds.N() {
		t.Error("embedding rows")
	}

	kc, err := fairclust.KCenter(ds, fairclust.KCenterConfig{K: 4, Attr: "g", Seed: 1})
	if err != nil {
		t.Fatalf("KCenter: %v", err)
	}
	if len(kc.Centers) != 4 {
		t.Error("center count")
	}

	gc, err := fairclust.GreedyCapture(ds, 2)
	if err != nil {
		t.Fatalf("GreedyCapture: %v", err)
	}
	if v := fairclust.AuditProportionality(ds, gc.Assign, gc.Centers, 2, 3); v != nil {
		t.Errorf("greedy capture flagged at rho=3: %+v", v)
	}
}

func TestFairProjectionFacade(t *testing.T) {
	ds := buildDataset(t)
	proj, err := fairclust.FairProjection(ds)
	if err != nil {
		t.Fatalf("FairProjection: %v", err)
	}
	if proj.Dim() != ds.Dim() || proj.N() != ds.N() {
		t.Errorf("projection changed shape")
	}
	red, err := fairclust.FairPCA(ds, 1)
	if err != nil {
		t.Fatalf("FairPCA: %v", err)
	}
	if red.Dim() != 1 {
		t.Errorf("FairPCA dim = %d", red.Dim())
	}
}

// TestPublicModelServing drives the full deployment lifecycle through
// the public API: train → NewModel → SaveModel → LoadModel →
// NewAssigner → batch assign, plus EvaluateStreamModel against the
// equivalent EvaluateStream call.
func TestPublicModelServing(t *testing.T) {
	ds := buildDataset(t)
	res, err := fairclust.Run(ds, fairclust.Config{K: 2, AutoLambda: true, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	m, err := fairclust.NewModel(ds, nil, res, fairclust.ModelProvenance{Tool: "test", Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "public.model.json")
	if err := fairclust.SaveModel(path, m); err != nil {
		t.Fatal(err)
	}
	loaded, err := fairclust.LoadModel(path)
	if err != nil {
		t.Fatal(err)
	}

	a, err := fairclust.NewAssigner(loaded, fairclust.AssignerOptions{Workers: 2, BatchSize: 8})
	if err != nil {
		t.Fatal(err)
	}
	defer a.Close()
	got, _, err := a.AssignBatch(ds.Features, nil)
	if err != nil {
		t.Fatal(err)
	}
	for i, x := range ds.Features {
		if want := res.Predict(x); got[i] != want {
			t.Fatalf("row %d: served cluster %d, Predict says %d", i, got[i], want)
		}
	}

	// EvaluateStreamModel ≡ EvaluateStream(centroids, λ) when the model
	// carries no scaling.
	ev1, err := fairclust.EvaluateStreamModel(fairclust.NewSliceSource(ds, 16), loaded)
	if err != nil {
		t.Fatal(err)
	}
	ev2, err := fairclust.EvaluateStream(fairclust.NewSliceSource(ds, 16), res.Centroids, res.Lambda)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(ev1.Value.Objective-ev2.Value.Objective) > 1e-12 {
		t.Errorf("EvaluateStreamModel objective %v != EvaluateStream %v", ev1.Value.Objective, ev2.Value.Objective)
	}

	// With scaling attached, EvaluateStreamModel must scale raw chunks
	// itself: evaluating the RAW dataset against a model trained on
	// normalized features reproduces the normalized-space evaluation.
	raw := buildDataset(t)
	norm := buildDataset(t)
	mins, ranges := norm.MinMaxNormalize()
	resN, err := fairclust.Run(norm, fairclust.Config{K: 2, AutoLambda: true, Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	mN, err := fairclust.NewModel(norm, nil, resN, fairclust.ModelProvenance{Tool: "test"})
	if err != nil {
		t.Fatal(err)
	}
	mN.Scaling = &fairclust.ModelScaling{Kind: "minmax", Mins: mins, Ranges: ranges}
	evRaw, err := fairclust.EvaluateStreamModel(fairclust.NewSliceSource(raw, 16), mN)
	if err != nil {
		t.Fatal(err)
	}
	evNorm, err := fairclust.EvaluateStream(fairclust.NewSliceSource(norm, 16), resN.Centroids, resN.Lambda)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(evRaw.Value.Objective-evNorm.Value.Objective) > 1e-9 {
		t.Errorf("scaled evaluation objective %v != normalized-space %v", evRaw.Value.Objective, evNorm.Value.Objective)
	}

	// Evaluation must not mutate the caller's data: SliceSource chunks
	// alias the Dataset's rows, so a second pass over the same raw
	// dataset has to reproduce the first (a regression here means the
	// scaling was applied in place, double-scaling on reuse).
	evRaw2, err := fairclust.EvaluateStreamModel(fairclust.NewSliceSource(raw, 16), mN)
	if err != nil {
		t.Fatal(err)
	}
	if evRaw2.Value.Objective != evRaw.Value.Objective {
		t.Errorf("second evaluation of the same dataset changed: %v -> %v (caller data mutated)", evRaw.Value.Objective, evRaw2.Value.Objective)
	}
}
