// Package hungarian solves the linear assignment problem: given an n×n
// cost matrix, find a permutation σ minimizing Σ_i cost[i][σ(i)].
//
// It implements the O(n³) shortest-augmenting-path variant of the
// Hungarian algorithm (Jonker-Volgenant style with dual potentials).
// In this repository it underlies the centroid-based deviation measure
// DevC (matching fair-clustering centroids to S-blind centroids) and is
// reused by tests as an exact reference for small matching problems.
package hungarian

import (
	"fmt"
	"math"
)

// Solve returns the minimizing assignment and its total cost for a
// square cost matrix. assignment[i] is the column matched to row i.
// It returns an error for empty or ragged input.
func Solve(cost [][]float64) (assignment []int, total float64, err error) {
	n := len(cost)
	if n == 0 {
		return nil, 0, fmt.Errorf("hungarian: empty cost matrix")
	}
	for i, row := range cost {
		if len(row) != n {
			return nil, 0, fmt.Errorf("hungarian: row %d has %d columns, want %d", i, len(row), n)
		}
		for j, v := range row {
			if math.IsNaN(v) {
				return nil, 0, fmt.Errorf("hungarian: cost[%d][%d] is NaN", i, j)
			}
		}
	}

	// Potentials and matching arrays are 1-indexed internally; index 0
	// is a sentinel row/column, following the classical presentation.
	u := make([]float64, n+1)
	v := make([]float64, n+1)
	p := make([]int, n+1) // p[j]: row matched to column j
	way := make([]int, n+1)

	for i := 1; i <= n; i++ {
		p[0] = i
		j0 := 0
		minv := make([]float64, n+1)
		used := make([]bool, n+1)
		for j := range minv {
			minv[j] = math.Inf(1)
		}
		for {
			used[j0] = true
			i0 := p[j0]
			delta := math.Inf(1)
			j1 := 0
			for j := 1; j <= n; j++ {
				if used[j] {
					continue
				}
				cur := cost[i0-1][j-1] - u[i0] - v[j]
				if cur < minv[j] {
					minv[j] = cur
					way[j] = j0
				}
				if minv[j] < delta {
					delta = minv[j]
					j1 = j
				}
			}
			for j := 0; j <= n; j++ {
				if used[j] {
					u[p[j]] += delta
					v[j] -= delta
				} else {
					minv[j] -= delta
				}
			}
			j0 = j1
			if p[j0] == 0 {
				break
			}
		}
		for j0 != 0 {
			j1 := way[j0]
			p[j0] = p[j1]
			j0 = j1
		}
	}

	assignment = make([]int, n)
	for j := 1; j <= n; j++ {
		if p[j] > 0 {
			assignment[p[j]-1] = j - 1
		}
	}
	for i := 0; i < n; i++ {
		total += cost[i][assignment[i]]
	}
	return assignment, total, nil
}
