package hungarian

import (
	"math"
	"testing"

	"repro/internal/stats"
)

// bruteForce finds the optimal assignment by enumerating permutations.
func bruteForce(cost [][]float64) float64 {
	n := len(cost)
	perm := make([]int, n)
	for i := range perm {
		perm[i] = i
	}
	best := math.Inf(1)
	var rec func(i int)
	rec = func(i int) {
		if i == n {
			total := 0.0
			for r, c := range perm {
				total += cost[r][c]
			}
			if total < best {
				best = total
			}
			return
		}
		for j := i; j < n; j++ {
			perm[i], perm[j] = perm[j], perm[i]
			rec(i + 1)
			perm[i], perm[j] = perm[j], perm[i]
		}
	}
	rec(0)
	return best
}

func TestMatchesBruteForce(t *testing.T) {
	rng := stats.NewRNG(5)
	for trial := 0; trial < 200; trial++ {
		n := 1 + rng.Intn(6)
		cost := make([][]float64, n)
		for i := range cost {
			cost[i] = make([]float64, n)
			for j := range cost[i] {
				cost[i][j] = rng.Float64()*10 - 3 // include negatives
			}
		}
		assignment, total, err := Solve(cost)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		want := bruteForce(cost)
		if math.Abs(total-want) > 1e-9 {
			t.Fatalf("trial %d (n=%d): total %v, brute force %v", trial, n, total, want)
		}
		// Assignment must be a permutation and consistent with total.
		seen := make([]bool, n)
		check := 0.0
		for i, j := range assignment {
			if j < 0 || j >= n || seen[j] {
				t.Fatalf("trial %d: invalid assignment %v", trial, assignment)
			}
			seen[j] = true
			check += cost[i][j]
		}
		if math.Abs(check-total) > 1e-9 {
			t.Fatalf("trial %d: reported total %v but assignment costs %v", trial, total, check)
		}
	}
}

func TestIdentityMatrix(t *testing.T) {
	cost := [][]float64{
		{0, 1, 1},
		{1, 0, 1},
		{1, 1, 0},
	}
	assignment, total, err := Solve(cost)
	if err != nil {
		t.Fatal(err)
	}
	if total != 0 {
		t.Errorf("total = %v, want 0", total)
	}
	for i, j := range assignment {
		if i != j {
			t.Errorf("assignment[%d] = %d, want %d", i, j, i)
		}
	}
}

func TestErrors(t *testing.T) {
	if _, _, err := Solve(nil); err == nil {
		t.Error("empty matrix accepted")
	}
	if _, _, err := Solve([][]float64{{1, 2}, {3}}); err == nil {
		t.Error("ragged matrix accepted")
	}
	if _, _, err := Solve([][]float64{{math.NaN()}}); err == nil {
		t.Error("NaN cost accepted")
	}
}

func TestSingleElement(t *testing.T) {
	assignment, total, err := Solve([][]float64{{7}})
	if err != nil || total != 7 || assignment[0] != 0 {
		t.Errorf("Solve([[7]]) = %v, %v, %v", assignment, total, err)
	}
}
