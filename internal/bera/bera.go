// Package bera implements the LP-based fair-assignment baseline of
// Bera, Chakrabarty and Negahbani ("Fair Algorithms for Clustering",
// 2019), surveyed as reference [4] in the FairKM paper — the method for
// MULTIPLE (overlapping) group constraints that post-processes a
// vanilla clustering.
//
// The pipeline is the paper's: (i) run vanilla K-Means to fix k
// centers; (ii) solve a fair partial-assignment LP over variables
// x_ij ∈ [0,1] minimizing Σ x_ij·d(i,j) subject to Σ_j x_ij = 1 and,
// for every group g (every value of every categorical sensitive
// attribute) and center j,
//
//	β_g·Σ_i x_ij  ≤  Σ_{i∈g} x_ij  ≤  α_g·Σ_i x_ij
//
// with α/β derived from the dataset proportion r_g as α_g = r_g/(1−δ)
// and β_g = r_g·(1−δ); (iii) round the fractional assignment to an
// integral one. Bera et al. give a flow-based rounding with additive
// violation guarantees; this implementation uses greedy largest-mass
// rounding and reports the realized bound violations in the result,
// which is sufficient for baseline comparisons.
//
// The LP has n·k variables and is solved by the dense two-phase simplex
// in internal/lp (no external solver exists offline), so this baseline
// is practical for datasets up to a few hundred points — a scale note
// the FairKM paper's complexity argument (Section 4.3.1) makes against
// LP-per-instance methods generally.
package bera

import (
	"errors"
	"fmt"

	"repro/internal/dataset"
	"repro/internal/kmeans"
	"repro/internal/lp"
	"repro/internal/stats"
)

// DefaultDelta is the customary proportionality slack used when
// Config.Delta is negative.
const DefaultDelta = 0.2

// Config parameterizes a run.
type Config struct {
	// K is the number of clusters.
	K int
	// Delta is the proportionality slack δ ∈ [0, 1): group g must make
	// up between r_g·(1−δ) and r_g/(1−δ) of every cluster. A negative
	// value selects DefaultDelta; an explicit 0 is honoured and demands
	// exact proportionality (α_g = β_g = r_g), a legitimate Bera et al.
	// setting. (Zero used to mean "default", which made δ=0 itself
	// unrequestable.)
	Delta float64
	// Seed drives the vanilla K-Means stage.
	Seed int64
	// MaxIter bounds the K-Means stage; zero means its default.
	MaxIter int
}

// Result is a completed run.
type Result struct {
	// Assign is the integral assignment after rounding.
	Assign []int
	// Centers are the vanilla K-Means centers the LP assigned against.
	Centers [][]float64
	// LPObjective is the fractional assignment's transport cost.
	LPObjective float64
	// RoundedObjective is the integral assignment's transport cost.
	RoundedObjective float64
	// MaxViolation is the largest additive violation of a group bound
	// after rounding (0 means all bounds hold exactly).
	MaxViolation float64
	// Delta is the slack actually used.
	Delta float64
}

// Run executes the three-stage pipeline on all categorical sensitive
// attributes of ds.
func Run(ds *dataset.Dataset, cfg Config) (*Result, error) {
	if ds == nil {
		return nil, errors.New("bera: nil dataset")
	}
	if err := ds.Validate(); err != nil {
		return nil, fmt.Errorf("bera: %w", err)
	}
	n := ds.N()
	if cfg.K < 1 || cfg.K > n {
		return nil, fmt.Errorf("bera: K=%d out of range [1,%d]", cfg.K, n)
	}
	delta := cfg.Delta
	if delta < 0 {
		delta = DefaultDelta
	}
	if delta >= 1 {
		return nil, fmt.Errorf("bera: delta=%v outside [0,1)", delta)
	}
	// Group membership: one group per (categorical attribute, value).
	type group struct {
		members []int
		rate    float64
	}
	var groups []group
	for _, s := range ds.Sensitive {
		if s.Kind != dataset.Categorical {
			continue
		}
		byValue := make([][]int, len(s.Values))
		for i, c := range s.Codes {
			byValue[c] = append(byValue[c], i)
		}
		for _, members := range byValue {
			if len(members) == 0 {
				continue
			}
			groups = append(groups, group{members, float64(len(members)) / float64(n)})
		}
	}
	if len(groups) == 0 {
		return nil, errors.New("bera: dataset has no categorical sensitive attributes")
	}

	// Stage 1: vanilla centers.
	km, err := kmeans.Run(ds.Features, kmeans.Config{K: cfg.K, Seed: cfg.Seed, MaxIter: cfg.MaxIter})
	if err != nil {
		return nil, fmt.Errorf("bera: vanilla stage: %w", err)
	}
	k := cfg.K

	// Stage 2: the fair partial-assignment LP.
	nv := n * k
	xvar := func(i, j int) int { return i*k + j }
	prob := lp.Problem{C: make([]float64, nv)}
	for i := 0; i < n; i++ {
		for j := 0; j < k; j++ {
			prob.C[xvar(i, j)] = stats.SqDist(ds.Features[i], km.Centroids[j])
		}
	}
	// Σ_j x_ij = 1 per point.
	for i := 0; i < n; i++ {
		row := make([]float64, nv)
		for j := 0; j < k; j++ {
			row[xvar(i, j)] = 1
		}
		prob.A = append(prob.A, row)
		prob.Ops = append(prob.Ops, lp.EQ)
		prob.B = append(prob.B, 1)
	}
	// Group bounds per (group, center).
	for _, g := range groups {
		alpha := g.rate / (1 - delta)
		beta := g.rate * (1 - delta)
		inGroup := make([]bool, n)
		for _, i := range g.members {
			inGroup[i] = true
		}
		for j := 0; j < k; j++ {
			upper := make([]float64, nv)
			lower := make([]float64, nv)
			for i := 0; i < n; i++ {
				v := xvar(i, j)
				if inGroup[i] {
					upper[v] = 1 - alpha
					lower[v] = beta - 1
				} else {
					upper[v] = -alpha
					lower[v] = beta
				}
			}
			prob.A = append(prob.A, upper)
			prob.Ops = append(prob.Ops, lp.LE)
			prob.B = append(prob.B, 0)
			prob.A = append(prob.A, lower)
			prob.Ops = append(prob.Ops, lp.LE)
			prob.B = append(prob.B, 0)
		}
	}
	sol, err := lp.Solve(prob)
	if err != nil {
		return nil, fmt.Errorf("bera: LP: %w", err)
	}
	switch sol.Status {
	case lp.Optimal:
	case lp.Infeasible:
		return nil, fmt.Errorf("bera: LP infeasible at delta=%v; increase the slack", delta)
	default:
		return nil, fmt.Errorf("bera: LP %v (internal error: the program is bounded by construction)", sol.Status)
	}

	// Stage 3: greedy rounding to the largest fractional mass.
	assign := make([]int, n)
	rounded := 0.0
	for i := 0; i < n; i++ {
		best, bestV := 0, sol.X[xvar(i, 0)]
		for j := 1; j < k; j++ {
			if v := sol.X[xvar(i, j)]; v > bestV {
				best, bestV = j, v
			}
		}
		assign[i] = best
		rounded += prob.C[xvar(i, best)]
	}

	res := &Result{
		Assign:           assign,
		Centers:          km.Centroids,
		LPObjective:      sol.Objective,
		RoundedObjective: rounded,
		Delta:            delta,
	}
	// Measure realized violations of the integral assignment.
	sizes := kmeans.Sizes(assign, k)
	for _, g := range groups {
		alpha := g.rate / (1 - delta)
		beta := g.rate * (1 - delta)
		counts := make([]int, k)
		for _, i := range g.members {
			counts[assign[i]]++
		}
		for j := 0; j < k; j++ {
			if sizes[j] == 0 {
				continue
			}
			p := float64(counts[j]) / float64(sizes[j])
			if v := p - alpha; v > res.MaxViolation {
				res.MaxViolation = v
			}
			if v := beta - p; v > res.MaxViolation {
				res.MaxViolation = v
			}
		}
	}
	return res, nil
}
