package bera

import (
	"testing"

	"repro/internal/dataset"
	"repro/internal/kmeans"
	"repro/internal/metrics"
	"repro/internal/stats"
)

// skewedDataset: two blobs whose sensitive mix differs, so vanilla
// clusters violate proportionality.
func skewedDataset(t *testing.T, n int) *dataset.Dataset {
	t.Helper()
	b := dataset.NewBuilder("x", "y")
	b.AddCategoricalSensitive("g")
	rng := stats.NewRNG(3)
	for i := 0; i < n/2; i++ {
		v := "a"
		if i%4 == 0 {
			v = "b"
		}
		b.Row([]float64{rng.Gaussian(0, 0.3), rng.Gaussian(0, 0.3)}, []string{v}, nil)
	}
	for i := 0; i < n/2; i++ {
		v := "b"
		if i%4 == 0 {
			v = "a"
		}
		b.Row([]float64{rng.Gaussian(3, 0.3), rng.Gaussian(3, 0.3)}, []string{v}, nil)
	}
	ds, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	return ds
}

func TestLPRespectsBounds(t *testing.T) {
	ds := skewedDataset(t, 60)
	res, err := Run(ds, Config{K: 2, Delta: 0.3, Seed: 1})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	// The LP enforces the bounds fractionally; the greedy rounding may
	// violate them a little, but not grossly.
	if res.MaxViolation > 0.15 {
		t.Errorf("rounded violation %v too large", res.MaxViolation)
	}
	// The fairness-constrained LP can never beat the unconstrained
	// nearest-center assignment cost.
	unconstrained := 0.0
	for i := 0; i < ds.N(); i++ {
		best := stats.SqDist(ds.Features[i], res.Centers[0])
		for j := 1; j < len(res.Centers); j++ {
			if d := stats.SqDist(ds.Features[i], res.Centers[j]); d < best {
				best = d
			}
		}
		unconstrained += best
	}
	if res.LPObjective < unconstrained-1e-6 {
		t.Errorf("LP objective %v beats the unconstrained optimum %v", res.LPObjective, unconstrained)
	}
}

func TestImprovesFairnessOverVanilla(t *testing.T) {
	ds := skewedDataset(t, 80)
	km, err := kmeans.Run(ds.Features, kmeans.Config{K: 2, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	res, err := Run(ds, Config{K: 2, Delta: 0.2, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	g := ds.SensitiveByName("g")
	before := metrics.Fairness(ds, g, km.Assign, 2)
	after := metrics.Fairness(ds, g, res.Assign, 2)
	if after.AE >= before.AE {
		t.Errorf("Bera AE %v not better than vanilla %v", after.AE, before.AE)
	}
}

func TestTightDeltaGetsTighter(t *testing.T) {
	ds := skewedDataset(t, 60)
	loose, err := Run(ds, Config{K: 2, Delta: 0.5, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	tight, err := Run(ds, Config{K: 2, Delta: 0.05, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	g := ds.SensitiveByName("g")
	lF := metrics.Fairness(ds, g, loose.Assign, 2)
	tF := metrics.Fairness(ds, g, tight.Assign, 2)
	if tF.AE > lF.AE+1e-9 {
		t.Errorf("delta=0.05 AE %v worse than delta=0.5 AE %v", tF.AE, lF.AE)
	}
}

// TestDeltaSentinel: a negative Delta selects the customary default,
// while an explicit 0 is honoured — δ=0 used to be silently rewritten
// to 0.2, making exact proportionality unrequestable.
func TestDeltaSentinel(t *testing.T) {
	ds := skewedDataset(t, 20)
	res, err := Run(ds, Config{K: 2, Delta: -1, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if res.Delta != DefaultDelta {
		t.Errorf("negative Delta resolved to %v, want the default %v", res.Delta, DefaultDelta)
	}
}

// TestExactProportionality is the δ=0 regression: the bounds collapse
// to α_g = β_g = r_g, so on a dataset where exact proportionality is
// integrally feasible every cluster must carry the dataset mix with
// zero violation — and Result.Delta must report 0, not 0.2.
func TestExactProportionality(t *testing.T) {
	// Two far blobs of 4 points, each exactly half "a" half "b":
	// r_a = r_b = 1/2, and the only transport-optimal assignment that
	// meets α=β=1/2 per cluster is blob = cluster.
	b := dataset.NewBuilder("x", "y")
	b.AddCategoricalSensitive("g")
	for blob := 0; blob < 2; blob++ {
		off := float64(blob) * 50
		b.Row([]float64{off, 0}, []string{"a"}, nil)
		b.Row([]float64{off, 1}, []string{"a"}, nil)
		b.Row([]float64{off + 1, 0}, []string{"b"}, nil)
		b.Row([]float64{off + 1, 1}, []string{"b"}, nil)
	}
	ds, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	res, err := Run(ds, Config{K: 2, Delta: 0, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if res.Delta != 0 {
		t.Fatalf("explicit δ=0 reported as %v", res.Delta)
	}
	if res.MaxViolation > 1e-9 {
		t.Errorf("δ=0 bounds violated by %v; want exact proportionality", res.MaxViolation)
	}
	// Every cluster's group mix equals r_g = 1/2 exactly.
	sizes := kmeans.Sizes(res.Assign, 2)
	counts := make([]int, 2)
	s := ds.Sensitive[0]
	for i, c := range s.Codes {
		if c == 0 {
			counts[res.Assign[i]]++
		}
	}
	for j := 0; j < 2; j++ {
		if sizes[j] == 0 {
			t.Fatalf("cluster %d empty", j)
		}
		if p := float64(counts[j]) / float64(sizes[j]); p != 0.5 {
			t.Errorf("cluster %d group-a share %v, want exactly 0.5 (α=β=r_g)", j, p)
		}
	}
}

func TestErrors(t *testing.T) {
	ds := skewedDataset(t, 20)
	if _, err := Run(nil, Config{K: 2}); err == nil {
		t.Error("nil dataset accepted")
	}
	if _, err := Run(ds, Config{K: 0}); err == nil {
		t.Error("K=0 accepted")
	}
	if _, err := Run(ds, Config{K: 2, Delta: 1.5}); err == nil {
		t.Error("delta out of range accepted")
	}
	// No categorical sensitive attributes.
	b := dataset.NewBuilder("x")
	b.AddNumericSensitive("age")
	b.Row([]float64{1}, nil, []float64{1})
	b.Row([]float64{2}, nil, []float64{2})
	num, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Run(num, Config{K: 2}); err == nil {
		t.Error("numeric-only dataset accepted")
	}
}

func TestMultipleAttributes(t *testing.T) {
	b := dataset.NewBuilder("x")
	b.AddCategoricalSensitive("g")
	b.AddCategoricalSensitive("h")
	rng := stats.NewRNG(5)
	for i := 0; i < 40; i++ {
		g := "a"
		if i%2 == 0 {
			g = "b"
		}
		h := "p"
		if i%4 < 2 {
			h = "q"
		}
		b.Row([]float64{rng.Gaussian(float64(i%2)*3, 0.3)}, []string{g, h}, nil)
	}
	ds, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	res, err := Run(ds, Config{K: 2, Delta: 0.3, Seed: 1})
	if err != nil {
		t.Fatalf("Run with two attributes: %v", err)
	}
	if len(res.Assign) != 40 {
		t.Errorf("assignment length %d", len(res.Assign))
	}
}

func TestDeterminism(t *testing.T) {
	ds := skewedDataset(t, 40)
	a, err := Run(ds, Config{K: 2, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(ds, Config{K: 2, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	for i := range a.Assign {
		if a.Assign[i] != b.Assign[i] {
			t.Fatalf("assignment %d differs", i)
		}
	}
}
