package bera

import (
	"testing"

	"repro/internal/dataset"
	"repro/internal/kmeans"
	"repro/internal/metrics"
	"repro/internal/stats"
)

// skewedDataset: two blobs whose sensitive mix differs, so vanilla
// clusters violate proportionality.
func skewedDataset(t *testing.T, n int) *dataset.Dataset {
	t.Helper()
	b := dataset.NewBuilder("x", "y")
	b.AddCategoricalSensitive("g")
	rng := stats.NewRNG(3)
	for i := 0; i < n/2; i++ {
		v := "a"
		if i%4 == 0 {
			v = "b"
		}
		b.Row([]float64{rng.Gaussian(0, 0.3), rng.Gaussian(0, 0.3)}, []string{v}, nil)
	}
	for i := 0; i < n/2; i++ {
		v := "b"
		if i%4 == 0 {
			v = "a"
		}
		b.Row([]float64{rng.Gaussian(3, 0.3), rng.Gaussian(3, 0.3)}, []string{v}, nil)
	}
	ds, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	return ds
}

func TestLPRespectsBounds(t *testing.T) {
	ds := skewedDataset(t, 60)
	res, err := Run(ds, Config{K: 2, Delta: 0.3, Seed: 1})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	// The LP enforces the bounds fractionally; the greedy rounding may
	// violate them a little, but not grossly.
	if res.MaxViolation > 0.15 {
		t.Errorf("rounded violation %v too large", res.MaxViolation)
	}
	// The fairness-constrained LP can never beat the unconstrained
	// nearest-center assignment cost.
	unconstrained := 0.0
	for i := 0; i < ds.N(); i++ {
		best := stats.SqDist(ds.Features[i], res.Centers[0])
		for j := 1; j < len(res.Centers); j++ {
			if d := stats.SqDist(ds.Features[i], res.Centers[j]); d < best {
				best = d
			}
		}
		unconstrained += best
	}
	if res.LPObjective < unconstrained-1e-6 {
		t.Errorf("LP objective %v beats the unconstrained optimum %v", res.LPObjective, unconstrained)
	}
}

func TestImprovesFairnessOverVanilla(t *testing.T) {
	ds := skewedDataset(t, 80)
	km, err := kmeans.Run(ds.Features, kmeans.Config{K: 2, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	res, err := Run(ds, Config{K: 2, Delta: 0.2, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	g := ds.SensitiveByName("g")
	before := metrics.Fairness(ds, g, km.Assign, 2)
	after := metrics.Fairness(ds, g, res.Assign, 2)
	if after.AE >= before.AE {
		t.Errorf("Bera AE %v not better than vanilla %v", after.AE, before.AE)
	}
}

func TestTightDeltaGetsTighter(t *testing.T) {
	ds := skewedDataset(t, 60)
	loose, err := Run(ds, Config{K: 2, Delta: 0.5, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	tight, err := Run(ds, Config{K: 2, Delta: 0.05, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	g := ds.SensitiveByName("g")
	lF := metrics.Fairness(ds, g, loose.Assign, 2)
	tF := metrics.Fairness(ds, g, tight.Assign, 2)
	if tF.AE > lF.AE+1e-9 {
		t.Errorf("delta=0.05 AE %v worse than delta=0.5 AE %v", tF.AE, lF.AE)
	}
}

func TestErrors(t *testing.T) {
	ds := skewedDataset(t, 20)
	if _, err := Run(nil, Config{K: 2}); err == nil {
		t.Error("nil dataset accepted")
	}
	if _, err := Run(ds, Config{K: 0}); err == nil {
		t.Error("K=0 accepted")
	}
	if _, err := Run(ds, Config{K: 2, Delta: 1.5}); err == nil {
		t.Error("delta out of range accepted")
	}
	if _, err := Run(ds, Config{K: 2, Delta: -0.1}); err == nil {
		t.Error("negative delta accepted")
	}
	// No categorical sensitive attributes.
	b := dataset.NewBuilder("x")
	b.AddNumericSensitive("age")
	b.Row([]float64{1}, nil, []float64{1})
	b.Row([]float64{2}, nil, []float64{2})
	num, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Run(num, Config{K: 2}); err == nil {
		t.Error("numeric-only dataset accepted")
	}
}

func TestMultipleAttributes(t *testing.T) {
	b := dataset.NewBuilder("x")
	b.AddCategoricalSensitive("g")
	b.AddCategoricalSensitive("h")
	rng := stats.NewRNG(5)
	for i := 0; i < 40; i++ {
		g := "a"
		if i%2 == 0 {
			g = "b"
		}
		h := "p"
		if i%4 < 2 {
			h = "q"
		}
		b.Row([]float64{rng.Gaussian(float64(i%2)*3, 0.3)}, []string{g, h}, nil)
	}
	ds, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	res, err := Run(ds, Config{K: 2, Delta: 0.3, Seed: 1})
	if err != nil {
		t.Fatalf("Run with two attributes: %v", err)
	}
	if len(res.Assign) != 40 {
		t.Errorf("assignment length %d", len(res.Assign))
	}
}

func TestDeterminism(t *testing.T) {
	ds := skewedDataset(t, 40)
	a, err := Run(ds, Config{K: 2, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(ds, Config{K: 2, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	for i := range a.Assign {
		if a.Assign[i] != b.Assign[i] {
			t.Fatalf("assignment %d differs", i)
		}
	}
}
