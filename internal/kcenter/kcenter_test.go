package kcenter

import (
	"testing"

	"repro/internal/dataset"
	"repro/internal/stats"
)

func summaryDataset(t *testing.T) *dataset.Dataset {
	t.Helper()
	b := dataset.NewBuilder("x", "y")
	b.AddCategoricalSensitive("g")
	rng := stats.NewRNG(7)
	// 70 "m", 30 "f" spread over 4 spatial blobs.
	for i := 0; i < 100; i++ {
		v := "m"
		if i%10 < 3 {
			v = "f"
		}
		blob := float64(i % 4)
		b.Row([]float64{rng.Gaussian(blob*5, 0.4), rng.Gaussian(0, 0.4)}, []string{v}, nil)
	}
	ds, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	return ds
}

func TestProportionalQuotasEnforced(t *testing.T) {
	ds := summaryDataset(t)
	res, err := Run(ds, Config{K: 10, Attr: "g", Seed: 1})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	g := ds.SensitiveByName("g")
	counts := map[string]int{}
	for _, c := range res.Centers {
		counts[g.Values[g.Codes[c]]]++
	}
	// 70:30 over 10 representatives → 7 m, 3 f.
	if counts["m"] != 7 || counts["f"] != 3 {
		t.Errorf("center mix = %v, want m:7 f:3", counts)
	}
}

func TestExplicitQuotas(t *testing.T) {
	ds := summaryDataset(t)
	g := ds.SensitiveByName("g")
	quotas := make([]int, 2)
	for v, name := range g.Values {
		if name == "f" {
			quotas[v] = 5
		} else {
			quotas[v] = 5
		}
	}
	res, err := Run(ds, Config{K: 10, Attr: "g", Quotas: quotas, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	have := make([]int, 2)
	for _, c := range res.Centers {
		have[g.Codes[c]]++
	}
	for v := range quotas {
		if have[v] != quotas[v] {
			t.Errorf("value %s: %d centers, want %d", g.Values[v], have[v], quotas[v])
		}
	}
}

func TestRadiusCoversAllPoints(t *testing.T) {
	ds := summaryDataset(t)
	res, err := Run(ds, Config{K: 8, Attr: "g", Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < ds.N(); i++ {
		d := stats.Dist(ds.Features[i], ds.Features[res.Centers[res.Assign[i]]])
		if d > res.Radius+1e-9 {
			t.Fatalf("point %d at distance %v exceeds radius %v", i, d, res.Radius)
		}
	}
	// With 4 blobs of radius ~1 and k=8, the radius must be on the
	// within-blob scale, not the between-blob scale.
	if res.Radius > 3 {
		t.Errorf("radius %v too large; centers likely mis-placed", res.Radius)
	}
}

func TestCentersDistinct(t *testing.T) {
	ds := summaryDataset(t)
	res, err := Run(ds, Config{K: 10, Attr: "g", Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	seen := map[int]bool{}
	for _, c := range res.Centers {
		if seen[c] {
			t.Fatalf("duplicate center %d", c)
		}
		seen[c] = true
	}
}

func TestErrors(t *testing.T) {
	ds := summaryDataset(t)
	if _, err := Run(nil, Config{K: 3, Attr: "g"}); err == nil {
		t.Error("nil dataset accepted")
	}
	if _, err := Run(ds, Config{K: 0, Attr: "g"}); err == nil {
		t.Error("K=0 accepted")
	}
	if _, err := Run(ds, Config{K: 3, Attr: "nope"}); err == nil {
		t.Error("unknown attribute accepted")
	}
	if _, err := Run(ds, Config{K: 3, Attr: "g", Quotas: []int{1}}); err == nil {
		t.Error("wrong quota arity accepted")
	}
	if _, err := Run(ds, Config{K: 3, Attr: "g", Quotas: []int{1, 1}}); err == nil {
		t.Error("quota sum != K accepted")
	}
	if _, err := Run(ds, Config{K: 3, Attr: "g", Quotas: []int{-1, 4}}); err == nil {
		t.Error("negative quota accepted")
	}
	// Quota exceeding the group's population.
	b := dataset.NewBuilder("x")
	b.AddCategoricalSensitive("g")
	b.Row([]float64{0}, []string{"a"}, nil)
	b.Row([]float64{1}, []string{"b"}, nil)
	b.Row([]float64{2}, []string{"b"}, nil)
	small, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	g := small.SensitiveByName("g")
	q := make([]int, 2)
	for v, name := range g.Values {
		if name == "a" {
			q[v] = 2
		}
	}
	if _, err := Run(small, Config{K: 2, Attr: "g", Quotas: q}); err == nil {
		t.Error("over-population quota accepted")
	}
}

func TestProportionalQuotasHelper(t *testing.T) {
	q := proportionalQuotas([]int{70, 30}, 100, 10)
	if q[0] != 7 || q[1] != 3 {
		t.Errorf("quotas = %v, want [7 3]", q)
	}
	// Remainders: 50/50 over k=3 → 2:1 or 1:2, sum 3.
	q2 := proportionalQuotas([]int{50, 50}, 100, 3)
	if q2[0]+q2[1] != 3 {
		t.Errorf("quotas %v do not sum to 3", q2)
	}
}
