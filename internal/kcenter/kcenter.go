// Package kcenter implements fair k-center clustering for data
// summarization (Kleindessner, Awasthi, Morgenstern — "Fair k-Center
// Clustering for Data Summarization", 2019), surveyed as reference
// [13] in the FairKM paper's Table 1.
//
// The fairness notion here is about the CENTERS, not the clusters: the
// k chosen centers must contain a pre-specified number of points from
// each sensitive group (e.g. a 70:30 male:female dataset summarized by
// 10 representatives should pick 7 males and 3 females). The
// implementation follows the greedy farthest-point traversal of
// Gonzalez (a 2-approximation for vanilla k-center) with the
// group-quota repair of Kleindessner et al.: run unconstrained
// farthest-point first, then swap over-represented groups' centers for
// the best same-cluster member of an under-represented group.
package kcenter

import (
	"errors"
	"fmt"
	"math"

	"repro/internal/dataset"
	"repro/internal/stats"
)

// Config parameterizes a fair k-center run.
type Config struct {
	// K is the number of centers; required.
	K int
	// Attr names the categorical sensitive attribute the quotas apply
	// to; required.
	Attr string
	// Quotas gives the required number of centers per attribute value,
	// aligned with the attribute's Values order. Nil means quotas
	// proportional to the dataset distribution (largest remainders).
	Quotas []int
	// Seed drives the initial center choice.
	Seed int64
}

// Result is a completed fair k-center summarization.
type Result struct {
	// Centers holds the chosen representative row indexes.
	Centers []int
	// Assign maps each row to the index (into Centers) of its nearest
	// chosen center.
	Assign []int
	// Radius is the k-center objective: the maximum distance from any
	// point to its nearest center.
	Radius float64
	// Quotas is the per-value quota vector actually enforced.
	Quotas []int
}

// Run selects k centers respecting the group quotas.
func Run(ds *dataset.Dataset, cfg Config) (*Result, error) {
	if ds == nil {
		return nil, errors.New("kcenter: nil dataset")
	}
	if err := ds.Validate(); err != nil {
		return nil, fmt.Errorf("kcenter: %w", err)
	}
	s := ds.SensitiveByName(cfg.Attr)
	if s == nil {
		return nil, fmt.Errorf("kcenter: no sensitive attribute %q", cfg.Attr)
	}
	if s.Kind != dataset.Categorical {
		return nil, fmt.Errorf("kcenter: attribute %q is not categorical", cfg.Attr)
	}
	n := ds.N()
	if cfg.K < 1 || cfg.K > n {
		return nil, fmt.Errorf("kcenter: K=%d out of range [1,%d]", cfg.K, n)
	}

	counts := make([]int, len(s.Values))
	for _, c := range s.Codes {
		counts[c]++
	}
	quotas := cfg.Quotas
	if quotas == nil {
		quotas = proportionalQuotas(counts, n, cfg.K)
	}
	if len(quotas) != len(s.Values) {
		return nil, fmt.Errorf("kcenter: %d quotas for %d attribute values", len(quotas), len(s.Values))
	}
	totalQ := 0
	for v, q := range quotas {
		if q < 0 {
			return nil, fmt.Errorf("kcenter: negative quota %d for value %q", q, s.Values[v])
		}
		if q > counts[v] {
			return nil, fmt.Errorf("kcenter: quota %d for value %q exceeds its %d points", q, s.Values[v], counts[v])
		}
		totalQ += q
	}
	if totalQ != cfg.K {
		return nil, fmt.Errorf("kcenter: quotas sum to %d, want K=%d", totalQ, cfg.K)
	}

	// Stage 1: Gonzalez farthest-point traversal, group-blind.
	rng := stats.NewRNG(cfg.Seed)
	centers := []int{rng.Intn(n)}
	minDist := make([]float64, n)
	for i := range minDist {
		minDist[i] = stats.Dist(ds.Features[i], ds.Features[centers[0]])
	}
	for len(centers) < cfg.K {
		far, farD := 0, -1.0
		for i, d := range minDist {
			if d > farD {
				far, farD = i, d
			}
		}
		centers = append(centers, far)
		for i := range minDist {
			if d := stats.Dist(ds.Features[i], ds.Features[far]); d < minDist[i] {
				minDist[i] = d
			}
		}
	}

	// Stage 2: quota repair. While some group exceeds its quota, swap
	// one of its centers for the nearest point of a deficient group.
	have := make([]int, len(s.Values))
	for _, c := range centers {
		have[s.Codes[c]]++
	}
	isCenter := make([]bool, n)
	for _, c := range centers {
		isCenter[c] = true
	}
	for {
		over, under := -1, -1
		for v := range quotas {
			if have[v] > quotas[v] {
				over = v
			}
			if have[v] < quotas[v] {
				under = v
			}
		}
		if over == -1 && under == -1 {
			break
		}
		if over == -1 || under == -1 {
			return nil, errors.New("kcenter: internal error: unbalanced quota repair")
		}
		// Swap the over-group center whose best under-group replacement
		// is closest (minimizing radius growth).
		bestCi, bestRepl, bestD := -1, -1, math.Inf(1)
		for ci, c := range centers {
			if s.Codes[c] != over {
				continue
			}
			for i := 0; i < n; i++ {
				if isCenter[i] || s.Codes[i] != under {
					continue
				}
				if d := stats.Dist(ds.Features[c], ds.Features[i]); d < bestD {
					bestCi, bestRepl, bestD = ci, i, d
				}
			}
		}
		if bestCi == -1 {
			return nil, errors.New("kcenter: internal error: no repair candidate (quota feasibility was checked)")
		}
		isCenter[centers[bestCi]] = false
		isCenter[bestRepl] = true
		centers[bestCi] = bestRepl
		have[over]--
		have[under]++
	}

	// Final assignment and radius.
	assign := make([]int, n)
	radius := 0.0
	for i := 0; i < n; i++ {
		best, bestD := 0, math.Inf(1)
		for ci, c := range centers {
			if d := stats.Dist(ds.Features[i], ds.Features[c]); d < bestD {
				best, bestD = ci, d
			}
		}
		assign[i] = best
		if bestD > radius {
			radius = bestD
		}
	}
	return &Result{Centers: centers, Assign: assign, Radius: radius, Quotas: quotas}, nil
}

// proportionalQuotas apportions k among values proportionally to their
// counts using largest remainders (Hamilton's method), capping each
// quota at the value's point count.
func proportionalQuotas(counts []int, n, k int) []int {
	quotas := make([]int, len(counts))
	type rem struct {
		v    int
		frac float64
	}
	var rems []rem
	assigned := 0
	for v, c := range counts {
		exact := float64(k) * float64(c) / float64(n)
		quotas[v] = int(exact)
		if quotas[v] > c {
			quotas[v] = c
		}
		assigned += quotas[v]
		rems = append(rems, rem{v, exact - float64(int(exact))})
	}
	// Distribute leftovers by largest remainder, respecting counts.
	for assigned < k {
		best := -1
		for i, r := range rems {
			if quotas[r.v] >= counts[r.v] {
				continue
			}
			if best == -1 || r.frac > rems[best].frac {
				best = i
			}
		}
		if best == -1 {
			break // k > n guarded by caller
		}
		quotas[rems[best].v]++
		rems[best].frac = -1 // consume
		assigned++
	}
	return quotas
}
