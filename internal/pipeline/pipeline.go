// Package pipeline wires the streaming fair coreset
// (internal/coreset.Stream) into the weighted FairKM solver
// (internal/core.RunWeighted) as a summarize-then-solve pipeline:
//
//	chunked source ──► fair merge-and-reduce summary ──► weighted solve
//	        └────────────► second pass ──► full-data metrics
//
// The summarize stage holds O(G·(m·log n + block)) rows — G the number
// of realized sensitive-value combinations, m the per-group coreset
// size — independent of the stream length n, so a fixed-memory process
// can cluster unbounded inputs. The solve stage runs weighted FairKM
// over the ≤ G·m·log n summary rows at summary cost. Because the
// coreset preserves each group's total mass exactly and the weighted
// kernel treats masses as first-class (internal/core), the weighted
// objective on the summary approximates the full-data objective; the
// Evaluate second pass then reports exact full-data fairness and
// utility for the centroids the summary solve produced.
//
// Ingestion parallelizes by data sharding (FitSharded over pre-split
// sources such as dataset.SplitCSV byte ranges, FitStreamSharded for
// round-robin dealing of one chunked source): per-shard summaries are
// fair coresets, and their union — after a shard-order domain merge
// and an optional reduce pass — is again a fair coreset, so the solve
// stage is unchanged. Results are bit-identical for every worker
// count at a fixed shard count, and a single shard replays FitStream
// exactly; see DESIGN.md "Sharded ingestion".
//
// cmd/fairstream exposes the pipeline over CSV files;
// internal/experiments benchmarks it against full-data solves.
package pipeline

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"math"

	"repro/internal/core"
	"repro/internal/coreset"
	"repro/internal/dataset"
	"repro/internal/engine"
	"repro/internal/metrics"
	"repro/internal/stats"
)

// Source yields successive chunks of a row stream as small Datasets
// sharing one schema (same feature columns and sensitive attributes,
// in the same order). Next returns (nil, io.EOF) when exhausted.
// dataset.CSVStream implements Source for CSV files; SliceSource
// adapts an in-memory Dataset.
type Source interface {
	Next() (*dataset.Dataset, error)
}

// DefaultCoresetSize is Config.CoresetSize when unset.
const DefaultCoresetSize = 64

// DefaultMaxGroups caps the realized sensitive-value cross product;
// every group costs O(m·log n + block) retained rows, so an unbounded
// group count would defeat the memory bound.
const DefaultMaxGroups = 256

// Config parameterizes FitStream.
type Config struct {
	// K is the number of clusters; required.
	K int
	// Lambda is FairKM's fairness weight; AutoLambda selects the
	// λ = (n/K)² heuristic with n the number of streamed points (the
	// summary's total mass), matching what a full-data solve would use.
	Lambda     float64
	AutoLambda bool
	// CoresetSize m is the per-group coreset size of each merge-and-
	// reduce level; zero means DefaultCoresetSize. The summary holds at
	// most m·log₂(n/block) + block rows per realized group.
	CoresetSize int
	// BlockSize is the raw-point buffer per group before compression;
	// zero means 2·CoresetSize.
	BlockSize int
	// MaxGroups bounds the realized sensitive-value cross product
	// (zero means DefaultMaxGroups). Exceeding it is an error telling
	// the caller to stratify on fewer attributes.
	MaxGroups int
	// Seed drives both the coreset sampling and the solve.
	Seed int64
	// MaxIter, Tol, Parallelism and Weights pass through to the
	// weighted FairKM solve.
	MaxIter     int
	Tol         float64
	Parallelism int
	Weights     map[string]float64
	// Observer, when non-nil, receives the summary solve's
	// per-iteration statistics (trace output, telemetry run journals).
	Observer engine.Observer
}

// Result is a completed summarize-then-solve run.
type Result struct {
	// Solve is the weighted FairKM result over the summary rows;
	// Solve.Centroids are the deployable prototypes.
	Solve *core.Result
	// Summary is the weighted summary dataset the solve ran on, with
	// SummaryWeights its per-row masses (summing to N).
	Summary        *dataset.Dataset
	SummaryWeights []float64
	// N is the number of points streamed.
	N int
	// Groups is the number of realized sensitive-value combinations.
	Groups int
	// Lambda is the λ actually used.
	Lambda float64
	// Shards is how many parallel summarizers fed the solve (1 for
	// FitStream; FitSharded/FitStreamSharded record their S here).
	Shards int
	// Reduced reports whether the sharded merge re-sampled the union
	// down to ShardedConfig.MergeBudget before solving.
	Reduced bool
}

// FitStream consumes the source to completion, maintaining a fair
// merge-and-reduce coreset stratified on the cross product of the
// categorical sensitive attributes, then solves weighted FairKM on the
// summary. Numeric sensitive attributes are not streamable (their
// deviation needs exact masses per cluster, which per-group coresets
// do not stratify) and are rejected.
func FitStream(src Source, cfg Config) (*Result, error) {
	sum, err := NewSummarizer(cfg)
	if err != nil {
		return nil, err
	}
	for {
		chunk, err := src.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, err
		}
		if err := sum.Add(chunk); err != nil {
			return nil, err
		}
	}
	return sum.Solve()
}

// Summarizer is the incremental form of FitStream for callers that
// drive their own ingest loop (e.g. a server consuming a feed): Add
// chunks as they arrive, Solve whenever a clustering is needed.
type Summarizer struct {
	cfg   Config
	m     int
	block int

	stream *coreset.Stream

	// Schema, fixed by the first chunk.
	featureNames []string
	dim          int
	attrNames    []string

	// Per attribute: global value→code mapping (first appearance).
	domains []*dataset.DomainIndex

	// Realized cross-product groups: the varint encoding of the global
	// code tuple → dense id, and per id the global code of each
	// attribute. Keys are built in a reusable buffer and looked up via
	// the alloc-free string(byte-slice) map form, so the per-row ingest
	// path allocates only when a NEW combination appears.
	groupIDs   map[string]int
	groupCodes [][]int
	keyBuf     []byte

	n int
}

// NewSummarizer validates cfg and prepares an empty summary.
func NewSummarizer(cfg Config) (*Summarizer, error) {
	if cfg.K < 1 {
		return nil, fmt.Errorf("pipeline: K=%d must be positive", cfg.K)
	}
	m := cfg.CoresetSize
	if m <= 0 {
		m = DefaultCoresetSize
	}
	block := cfg.BlockSize
	if block <= 0 {
		block = 2 * m
	}
	if block < m {
		return nil, fmt.Errorf("pipeline: BlockSize=%d must be at least CoresetSize=%d", block, m)
	}
	stream, err := coreset.NewStream(m, block, cfg.Seed)
	if err != nil {
		return nil, fmt.Errorf("pipeline: %w", err)
	}
	return &Summarizer{
		cfg:      cfg,
		m:        m,
		block:    block,
		stream:   stream,
		groupIDs: map[string]int{},
	}, nil
}

// Add consumes one chunk. The first chunk fixes the schema; later
// chunks must present the same feature columns and sensitive
// attributes in the same order (value domains may keep growing).
func (s *Summarizer) Add(chunk *dataset.Dataset) error {
	if err := chunk.Validate(); err != nil {
		return fmt.Errorf("pipeline: %w", err)
	}
	if s.domains == nil {
		if len(chunk.Sensitive) == 0 {
			return errors.New("pipeline: stream has no sensitive attributes")
		}
		s.featureNames = chunk.FeatureNames
		s.dim = chunk.Dim()
		for _, attr := range chunk.Sensitive {
			if attr.Kind != dataset.Categorical {
				return fmt.Errorf("pipeline: numeric sensitive attribute %q is not streamable; drop it or solve in memory", attr.Name)
			}
			s.attrNames = append(s.attrNames, attr.Name)
			s.domains = append(s.domains, dataset.NewDomainIndex())
		}
	}
	if chunk.Dim() != s.dim {
		return fmt.Errorf("pipeline: chunk has %d features, want %d", chunk.Dim(), s.dim)
	}
	if len(chunk.Sensitive) != len(s.attrNames) {
		return fmt.Errorf("pipeline: chunk has %d sensitive attributes, want %d", len(chunk.Sensitive), len(s.attrNames))
	}
	for ai, attr := range chunk.Sensitive {
		if attr.Name != s.attrNames[ai] || attr.Kind != dataset.Categorical {
			return fmt.Errorf("pipeline: chunk attribute %d is %s/%s, want categorical %s", ai, attr.Name, attr.Kind, s.attrNames[ai])
		}
	}
	maxGroups := s.cfg.MaxGroups
	if maxGroups <= 0 {
		maxGroups = DefaultMaxGroups
	}
	codes := make([]int, len(s.attrNames))
	for i := 0; i < chunk.N(); i++ {
		s.keyBuf = s.keyBuf[:0]
		for ai, attr := range chunk.Sensitive {
			codes[ai] = s.domains[ai].Code(attr.Values[attr.Codes[i]])
			s.keyBuf = binary.AppendUvarint(s.keyBuf, uint64(codes[ai]))
		}
		gid, ok := s.groupIDs[string(s.keyBuf)]
		if !ok {
			gid = len(s.groupCodes)
			if gid >= maxGroups {
				return fmt.Errorf("pipeline: more than %d realized sensitive-value combinations; stratify on fewer attributes or raise MaxGroups", maxGroups)
			}
			s.groupIDs[string(s.keyBuf)] = gid
			s.groupCodes = append(s.groupCodes, append([]int(nil), codes...))
		}
		if err := s.stream.Add(chunk.Features[i], gid); err != nil {
			return fmt.Errorf("pipeline: %w", err)
		}
		s.n++
	}
	return nil
}

// N returns how many points have been summarized.
func (s *Summarizer) N() int { return s.n }

// Groups returns the number of realized sensitive-value combinations.
func (s *Summarizer) Groups() int { return len(s.groupCodes) }

// Summary materializes the current weighted summary as a Dataset plus
// per-row masses, decoding each retained row's group back into
// per-attribute sensitive codes over the globally accumulated domains.
func (s *Summarizer) Summary() (*dataset.Dataset, []float64, error) {
	if s.n == 0 {
		return nil, nil, errors.New("pipeline: empty stream")
	}
	features, weights, groups := s.stream.Summary()
	ds := &dataset.Dataset{
		FeatureNames: s.featureNames,
		Features:     features,
	}
	for ai, name := range s.attrNames {
		codes := make([]int, len(groups))
		for pos, gid := range groups {
			codes[pos] = s.groupCodes[gid][ai]
		}
		ds.Sensitive = append(ds.Sensitive, &dataset.SensitiveAttr{
			Name:   name,
			Kind:   dataset.Categorical,
			Values: append([]string(nil), s.domains[ai].Values()...),
			Codes:  codes,
		})
	}
	if err := ds.Validate(); err != nil {
		return nil, nil, fmt.Errorf("pipeline: summary: %w", err)
	}
	return ds, weights, nil
}

// Solve materializes the summary and runs weighted FairKM on it.
func (s *Summarizer) Solve() (*Result, error) {
	summary, weights, err := s.Summary()
	if err != nil {
		return nil, err
	}
	if summary.N() < s.cfg.K {
		return nil, fmt.Errorf("pipeline: summary has %d rows for K=%d; raise CoresetSize or stream more data", summary.N(), s.cfg.K)
	}
	res, err := core.RunWeighted(summary, weights, core.Config{
		K:           s.cfg.K,
		Lambda:      s.cfg.Lambda,
		AutoLambda:  s.cfg.AutoLambda,
		Seed:        s.cfg.Seed,
		MaxIter:     s.cfg.MaxIter,
		Tol:         s.cfg.Tol,
		Parallelism: s.cfg.Parallelism,
		Weights:     s.cfg.Weights,
		Observer:    s.cfg.Observer,
	})
	if err != nil {
		return nil, err
	}
	return &Result{
		Solve:          res,
		Summary:        summary,
		SummaryWeights: weights,
		N:              s.n,
		Groups:         len(s.groupCodes),
		Lambda:         res.Lambda,
		Shards:         1,
	}, nil
}

// Evaluation carries full-data metrics of a fixed set of centroids,
// computed in one streaming pass with O(k·(dim + Σ|Values|)) memory.
type Evaluation struct {
	// Value decomposes the full-data FairKM objective of the nearest-
	// centroid assignment (paper defaults: domain normalization on,
	// cluster-weight exponent 2, unit attribute weights).
	Value core.ObjectiveValue
	// Fairness holds one AE/AW/ME/MW report per categorical sensitive
	// attribute plus the "mean" aggregate, as metrics.FairnessAll.
	Fairness []metrics.FairnessReport
	// Sizes are full-data cluster cardinalities.
	Sizes []int
	// N is the number of evaluated rows.
	N int
}

// Evaluate streams the source once more, assigns every row to its
// nearest centroid and accumulates the exact full-data objective and
// fairness measures — the second pass of the pipeline. It never holds
// more than one chunk plus O(k·(dim + Σ|Values|)) aggregates.
func Evaluate(src Source, centroids [][]float64, lambda float64) (*Evaluation, error) {
	if len(centroids) == 0 {
		return nil, errors.New("pipeline: no centroids")
	}
	k := len(centroids)
	dim := len(centroids[0])

	sizes := make([]int, k)
	sums := make([][]float64, k)
	for c := range sums {
		sums[c] = make([]float64, dim)
	}
	ssqs := make([]float64, k)

	// Aggregates index values by the source's codes, which every
	// Source keeps stable across chunks (CSVStream assigns codes by
	// first appearance; SliceSource shares the materialized domain).
	// Keeping the source's value ORDER matters: the Wasserstein
	// measures are defined over the ordered domain, so re-keying would
	// silently permute them.
	type catAgg struct {
		name    string
		values  []string    // longest Values slice seen
		cluster [][]float64 // [cluster][value] counts, value slices grow
		total   []float64   // dataset value counts
	}
	var cats []*catAgg
	var n int

	for {
		chunk, err := src.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, err
		}
		if chunk.Dim() != dim {
			return nil, fmt.Errorf("pipeline: chunk has %d features, centroids have %d", chunk.Dim(), dim)
		}
		if cats == nil {
			for _, attr := range chunk.Sensitive {
				if attr.Kind != dataset.Categorical {
					return nil, fmt.Errorf("pipeline: numeric sensitive attribute %q is not streamable", attr.Name)
				}
				ca := &catAgg{name: attr.Name, cluster: make([][]float64, k)}
				cats = append(cats, ca)
			}
		}
		if len(chunk.Sensitive) != len(cats) {
			return nil, fmt.Errorf("pipeline: chunk has %d sensitive attributes, want %d", len(chunk.Sensitive), len(cats))
		}
		for ai, attr := range chunk.Sensitive {
			ca := cats[ai]
			if attr.Name != ca.name {
				return nil, fmt.Errorf("pipeline: chunk attribute %d is %q, want %q", ai, attr.Name, ca.name)
			}
			if len(attr.Values) > len(ca.values) {
				ca.values = append([]string(nil), attr.Values...)
			}
		}
		for i := 0; i < chunk.N(); i++ {
			x := chunk.Features[i]
			best, bestD := 0, math.Inf(1)
			for c, cen := range centroids {
				if d := stats.SqDist(x, cen); d < bestD {
					best, bestD = c, d
				}
			}
			sizes[best]++
			stats.AddTo(sums[best], x)
			ssqs[best] += stats.Dot(x, x)
			n++
			for ai, attr := range chunk.Sensitive {
				ca := cats[ai]
				code := attr.Codes[i]
				for code >= len(ca.total) {
					ca.total = append(ca.total, 0)
				}
				ca.total[code]++
				cc := ca.cluster[best]
				for code >= len(cc) {
					cc = append(cc, 0)
				}
				cc[code]++
				ca.cluster[best] = cc
			}
		}
	}
	if n == 0 {
		return nil, errors.New("pipeline: empty stream")
	}

	// K-Means term from sufficient statistics: Σ_c (Σ‖x‖² − ‖Σx‖²/|c|).
	km := 0.0
	for c := 0; c < k; c++ {
		if sizes[c] == 0 {
			continue
		}
		s := ssqs[c] - stats.Dot(sums[c], sums[c])/float64(sizes[c])
		if s < 0 {
			s = 0
		}
		km += s
	}

	// Fairness term (Eq. 7, paper defaults) and per-attribute reports.
	fair := 0.0
	var reports []metrics.FairnessReport
	szf := make([]float64, k)
	for c, sz := range sizes {
		szf[c] = float64(sz)
	}
	for _, ca := range cats {
		// Declared-but-unobserved domain values still count towards the
		// Eq. 4 normalization, exactly as in the in-memory path.
		nvals := len(ca.values)
		if len(ca.total) > nvals {
			nvals = len(ca.total)
		}
		frX := make([]float64, nvals)
		for v, cnt := range ca.total {
			frX[v] = cnt / float64(n)
		}
		dists := make([][]float64, k)
		for c := 0; c < k; c++ {
			dist := make([]float64, nvals)
			if sizes[c] > 0 {
				frac := float64(sizes[c]) / float64(n)
				sum := 0.0
				for v := range dist {
					cc := 0.0
					if v < len(ca.cluster[c]) {
						cc = ca.cluster[c][v]
					}
					dist[v] = cc / float64(sizes[c])
					d := dist[v] - frX[v]
					sum += d * d
				}
				fair += frac * frac * sum / float64(nvals)
			}
			dists[c] = dist
		}
		reports = append(reports, metrics.FairnessFromDistributions(ca.name, frX, szf, dists))
	}
	if len(reports) > 0 {
		mean := metrics.FairnessReport{Attribute: "mean"}
		for _, r := range reports {
			mean.AE += r.AE
			mean.AW += r.AW
			mean.ME += r.ME
			mean.MW += r.MW
		}
		inv := 1 / float64(len(reports))
		mean.AE *= inv
		mean.AW *= inv
		mean.ME *= inv
		mean.MW *= inv
		reports = append(reports, mean)
	}

	return &Evaluation{
		Value: core.ObjectiveValue{
			KMeansTerm:   km,
			FairnessTerm: fair,
			Objective:    km + lambda*fair,
			Lambda:       lambda,
		},
		Fairness: reports,
		Sizes:    sizes,
		N:        n,
	}, nil
}

// SliceSource adapts an in-memory Dataset to the Source interface,
// yielding fixed-size chunks — the harness tests and experiments use
// it to replay a materialized dataset as a stream.
type SliceSource struct {
	ds    *dataset.Dataset
	chunk int
	pos   int
}

// NewSliceSource returns a Source yielding ds in chunks of chunk rows
// (chunk <= 0 means 1024).
func NewSliceSource(ds *dataset.Dataset, chunk int) *SliceSource {
	if chunk <= 0 {
		chunk = 1024
	}
	return &SliceSource{ds: ds, chunk: chunk}
}

// Next implements Source.
func (s *SliceSource) Next() (*dataset.Dataset, error) {
	if s.pos >= s.ds.N() {
		return nil, io.EOF
	}
	end := s.pos + s.chunk
	if end > s.ds.N() {
		end = s.ds.N()
	}
	idx := make([]int, end-s.pos)
	for i := range idx {
		idx[i] = s.pos + i
	}
	s.pos = end
	return s.ds.Subset(idx), nil
}

// Reset rewinds the source for a second pass.
func (s *SliceSource) Reset() { s.pos = 0 }
