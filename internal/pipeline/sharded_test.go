package pipeline

import (
	"fmt"
	"io"
	"math"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/stats"
	"repro/internal/testfix"
)

// requireBitIdentical asserts two pipeline results are equal down to
// the IEEE-754 bits of every float: same summary rows, weights,
// codes, assignments and objective.
func requireBitIdentical(t *testing.T, label string, a, b *Result) {
	t.Helper()
	if a.N != b.N || a.Groups != b.Groups {
		t.Fatalf("%s: N/Groups %d/%d vs %d/%d", label, a.N, a.Groups, b.N, b.Groups)
	}
	if a.Summary.N() != b.Summary.N() {
		t.Fatalf("%s: summary sizes %d vs %d", label, a.Summary.N(), b.Summary.N())
	}
	for i := range a.Summary.Features {
		for j := range a.Summary.Features[i] {
			if math.Float64bits(a.Summary.Features[i][j]) != math.Float64bits(b.Summary.Features[i][j]) {
				t.Fatalf("%s: summary row %d feature %d differs: %v vs %v", label, i, j, a.Summary.Features[i][j], b.Summary.Features[i][j])
			}
		}
		if math.Float64bits(a.SummaryWeights[i]) != math.Float64bits(b.SummaryWeights[i]) {
			t.Fatalf("%s: weight %d differs: %v vs %v", label, i, a.SummaryWeights[i], b.SummaryWeights[i])
		}
	}
	for ai := range a.Summary.Sensitive {
		sa, sb := a.Summary.Sensitive[ai], b.Summary.Sensitive[ai]
		if len(sa.Values) != len(sb.Values) {
			t.Fatalf("%s: attr %d domain sizes %d vs %d", label, ai, len(sa.Values), len(sb.Values))
		}
		for v := range sa.Values {
			if sa.Values[v] != sb.Values[v] {
				t.Fatalf("%s: attr %d value %d: %q vs %q", label, ai, v, sa.Values[v], sb.Values[v])
			}
		}
		for i := range sa.Codes {
			if sa.Codes[i] != sb.Codes[i] {
				t.Fatalf("%s: attr %d code %d: %d vs %d", label, ai, i, sa.Codes[i], sb.Codes[i])
			}
		}
	}
	for i := range a.Solve.Assign {
		if a.Solve.Assign[i] != b.Solve.Assign[i] {
			t.Fatalf("%s: assignment %d differs: %d vs %d", label, i, a.Solve.Assign[i], b.Solve.Assign[i])
		}
	}
	if math.Float64bits(a.Solve.Objective) != math.Float64bits(b.Solve.Objective) {
		t.Fatalf("%s: objectives differ: %v vs %v", label, a.Solve.Objective, b.Solve.Objective)
	}
	for c := range a.Solve.Centroids {
		for j := range a.Solve.Centroids[c] {
			if math.Float64bits(a.Solve.Centroids[c][j]) != math.Float64bits(b.Solve.Centroids[c][j]) {
				t.Fatalf("%s: centroid %d[%d] differs", label, c, j)
			}
		}
	}
}

// modShardSources splits ds into s row-interleaved sources (row i to
// shard i mod s), emulating what SplitCSV does for files.
func modShardSources(ds *dataset.Dataset, s, chunk int) []Source {
	srcs := make([]Source, s)
	for i := 0; i < s; i++ {
		var idx []int
		for r := i; r < ds.N(); r += s {
			idx = append(idx, r)
		}
		srcs[i] = NewSliceSource(ds.Subset(idx), chunk)
	}
	return srcs
}

// TestFitShardedSingleShardMatchesFitStream pins the S=1 contract: one
// shard at MergeBudget 0 replays FitStream bit-for-bit, through both
// entry points.
func TestFitShardedSingleShardMatchesFitStream(t *testing.T) {
	ds, src := adultStream(t, 1500, 200)
	cfg := Config{K: 5, AutoLambda: true, CoresetSize: 48, Seed: 7}
	want, err := FitStream(src, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if want.Shards != 1 {
		t.Fatalf("FitStream records Shards=%d, want 1", want.Shards)
	}

	got, err := FitSharded([]Source{NewSliceSource(ds, 200)}, ShardedConfig{Config: cfg})
	if err != nil {
		t.Fatal(err)
	}
	requireBitIdentical(t, "FitSharded/S=1", want, got)

	got2, err := FitStreamSharded(NewSliceSource(ds, 200), ShardedConfig{Config: cfg, Shards: 1, Workers: 8})
	if err != nil {
		t.Fatal(err)
	}
	requireBitIdentical(t, "FitStreamSharded/S=1", want, got2)
}

// TestFitShardedWorkerDeterminism pins the parallelism contract: at a
// fixed shard count the result is bit-identical for every worker
// count, for both the pre-split and the round-robin entry points.
// CI runs this under -race.
func TestFitShardedWorkerDeterminism(t *testing.T) {
	ds := testfix.Synth(41, 4000, 5, 2, 0)
	for _, s := range []int{2, 3, 4} {
		cfg := ShardedConfig{Config: Config{K: 4, AutoLambda: true, CoresetSize: 32, Seed: 11}, Shards: s}

		var wantSplit, wantRR *Result
		for _, w := range []int{1, 2, 3, 8, -1} {
			cfg.Workers = w
			got, err := FitSharded(modShardSources(ds, s, 256), ShardedConfig{Config: cfg.Config, Workers: w})
			if err != nil {
				t.Fatalf("S=%d W=%d: %v", s, w, err)
			}
			if got.Shards != s {
				t.Fatalf("S=%d W=%d: result records Shards=%d", s, w, got.Shards)
			}
			if wantSplit == nil {
				wantSplit = got
			} else {
				requireBitIdentical(t, fmt.Sprintf("FitSharded S=%d W=%d", s, w), wantSplit, got)
			}

			gotRR, err := FitStreamSharded(NewSliceSource(ds, 256), cfg)
			if err != nil {
				t.Fatalf("round-robin S=%d W=%d: %v", s, w, err)
			}
			if wantRR == nil {
				wantRR = gotRR
			} else {
				requireBitIdentical(t, fmt.Sprintf("FitStreamSharded S=%d W=%d", s, w), wantRR, gotRR)
			}
		}
	}
}

// TestFitShardedMassAndLambda: the merged summary preserves the total
// mass exactly and AutoLambda therefore matches the full-data
// heuristic, for several shard counts.
func TestFitShardedMassAndLambda(t *testing.T) {
	const n, k = 2600, 5
	ds, _ := adultStream(t, n, 200)
	for _, s := range []int{2, 5} {
		res, err := FitSharded(modShardSources(ds, s, 200), ShardedConfig{Config: Config{K: k, AutoLambda: true, CoresetSize: 40, Seed: 3}})
		if err != nil {
			t.Fatal(err)
		}
		if res.N != n {
			t.Fatalf("S=%d: N=%d, want %d", s, res.N, n)
		}
		if total := stats.Sum(res.SummaryWeights); math.Abs(total-float64(n)) > 1e-6 {
			t.Errorf("S=%d: summary mass %v, want %d", s, total, n)
		}
		want := core.DefaultLambda(n, k)
		if math.Abs(res.Lambda-want) > 1e-9*want {
			t.Errorf("S=%d: λ=%v, want %v", s, res.Lambda, want)
		}
	}
}

// TestFitShardedDomainMergeOrderIndependence: categorical codes are
// reconciled by the shard-order domain merge, so which shard sees a
// value first must not change what the merged summary *means*: every
// value keeps its exact total mass and the solve stays valid. Two
// mirrored splits make shard 0 see the values in opposite orders.
func TestFitShardedDomainMergeOrderIndependence(t *testing.T) {
	// 600 rows, attribute g alternating b,a,b,a,... so a 2-way mod
	// split gives shard 0 all-b / shard 1 all-a; swapping the sources
	// reverses which value enters the merged domain first.
	b := dataset.NewBuilder("x", "y")
	b.AddCategoricalSensitive("g")
	rng := stats.NewRNG(5)
	vals := []string{"b", "a"}
	for i := 0; i < 600; i++ {
		v := vals[i%2]
		off := 0.0
		if v == "a" {
			off = 3
		}
		b.Row([]float64{off + rng.Float64(), off + rng.Float64()}, []string{v}, nil)
	}
	ds, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}

	srcs := modShardSources(ds, 2, 64)
	cfg := ShardedConfig{Config: Config{K: 2, Lambda: 100, CoresetSize: 16, Seed: 9}}
	fwd, err := FitSharded(srcs, cfg)
	if err != nil {
		t.Fatal(err)
	}
	rsrcs := modShardSources(ds, 2, 64)
	rev, err := FitSharded([]Source{rsrcs[1], rsrcs[0]}, cfg)
	if err != nil {
		t.Fatal(err)
	}

	massByValue := func(r *Result) map[string]float64 {
		m := map[string]float64{}
		attr := r.Summary.Sensitive[0]
		for i, c := range attr.Codes {
			m[attr.Values[c]] += r.SummaryWeights[i]
		}
		return m
	}
	fm, rm := massByValue(fwd), massByValue(rev)
	for _, v := range vals {
		if math.Abs(fm[v]-300) > 1e-9 || math.Abs(rm[v]-300) > 1e-9 {
			t.Errorf("value %q mass drifted: fwd %v rev %v, want 300", v, fm[v], rm[v])
		}
	}
	// First-seen order differs, so the merged code of "a" must differ
	// between the two runs while both stay self-consistent.
	if fwd.Summary.Sensitive[0].Values[0] == rev.Summary.Sensitive[0].Values[0] {
		t.Fatalf("expected opposite first-seen values, both got %q", fwd.Summary.Sensitive[0].Values[0])
	}
	if fwd.Groups != 2 || rev.Groups != 2 {
		t.Errorf("groups: fwd %d rev %d, want 2", fwd.Groups, rev.Groups)
	}
}

// TestFitShardedMergeBudget: when the union of shard summaries exceeds
// the budget, one LightweightWeighted reduce pass shrinks it while
// preserving every group's mass exactly; below the budget no reduce
// runs.
func TestFitShardedMergeBudget(t *testing.T) {
	const n = 4000
	ds := testfix.Synth(17, n, 4, 1, 0)
	srcs := modShardSources(ds, 4, 256)
	budget := 120
	res, err := FitSharded(srcs, ShardedConfig{
		Config:      Config{K: 4, AutoLambda: true, CoresetSize: 64, Seed: 2},
		MergeBudget: budget,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Reduced {
		t.Fatal("expected the union to exceed the budget and be reduced")
	}
	// Each group gets max(1, budget·|g|/total) rows, so the reduced
	// summary is at most budget + groups rows.
	if res.Summary.N() > budget+res.Groups {
		t.Errorf("reduced summary has %d rows, budget %d (+%d groups)", res.Summary.N(), budget, res.Groups)
	}
	if total := stats.Sum(res.SummaryWeights); math.Abs(total-float64(n)) > 1e-6 {
		t.Errorf("reduced summary mass %v, want %d", total, n)
	}
	// Per-group masses survive the reduce: each sensitive value's
	// summed weight is its exact stream count.
	attr := res.Summary.Sensitive[0]
	byValue := map[string]float64{}
	for i, c := range attr.Codes {
		byValue[attr.Values[c]] += res.SummaryWeights[i]
	}
	want := map[string]float64{}
	full := ds.Sensitive[0]
	for _, c := range full.Codes {
		want[full.Values[c]]++
	}
	for v, w := range want {
		if math.Abs(byValue[v]-w) > 1e-6 {
			t.Errorf("value %q mass %v after reduce, want %v", v, byValue[v], w)
		}
	}

	// A budget the union already fits under must not trigger a reduce.
	res2, err := FitSharded(modShardSources(ds, 4, 256), ShardedConfig{
		Config:      Config{K: 4, AutoLambda: true, CoresetSize: 64, Seed: 2},
		MergeBudget: 1 << 20,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res2.Reduced {
		t.Error("budget larger than the union must not reduce")
	}
}

// TestFitShardedAdultWithinFivePercent extends the pipeline acceptance
// bar to the sharded path: on Adult-6500 split 4 ways the merged-
// summary solve stays within 5% of the full-data solve.
func TestFitShardedAdultWithinFivePercent(t *testing.T) {
	const n, k, m, s = 6500, 7, 80, 4
	ds, _ := adultStream(t, n, 500)
	res, err := FitSharded(modShardSources(ds, s, 500), ShardedConfig{
		Config: Config{K: k, AutoLambda: true, CoresetSize: m, Seed: 3},
	})
	if err != nil {
		t.Fatal(err)
	}
	full, err := core.Run(ds, core.Config{K: k, AutoLambda: true, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	ratio := res.Solve.Objective / full.Objective
	t.Logf("S=%d summary rows=%d objective: sharded %.4f vs full %.4f (ratio %.4f)",
		s, res.Summary.N(), res.Solve.Objective, full.Objective, ratio)
	if ratio > 1.05 {
		t.Errorf("sharded summary objective %.4f is %.1f%% above the full solve %.4f (>5%%)",
			res.Solve.Objective, 100*(ratio-1), full.Objective)
	}
}

// TestFitShardedCSVEndToEnd drives the real file path: WriteCSV →
// SplitCSV byte ranges → FitSharded over shard streams, deterministic
// across worker counts and consistent with the file's row count.
func TestFitShardedCSVEndToEnd(t *testing.T) {
	ds := testfix.Synth(29, 1200, 3, 2, 0)
	path := filepath.Join(t.TempDir(), "synth.csv")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := dataset.WriteCSV(f, ds); err != nil {
		t.Fatal(err)
	}
	f.Close()
	spec := dataset.CSVSpec{Features: ds.FeatureNames}
	for _, attr := range ds.Sensitive {
		spec.CategoricalSensitive = append(spec.CategoricalSensitive, attr.Name)
	}

	shards, err := dataset.SplitCSV(path, 3)
	if err != nil {
		t.Fatal(err)
	}
	run := func(workers int) *Result {
		t.Helper()
		srcs := make([]Source, shards.Shards())
		var closers []io.Closer
		for i := range srcs {
			stream, closer, err := shards.Open(i, spec, 128)
			if err != nil {
				t.Fatal(err)
			}
			srcs[i] = stream
			closers = append(closers, closer)
		}
		defer func() {
			for _, c := range closers {
				c.Close()
			}
		}()
		res, err := FitSharded(srcs, ShardedConfig{
			Config:  Config{K: 3, AutoLambda: true, CoresetSize: 24, Seed: 13},
			Workers: workers,
		})
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	want := run(1)
	if want.N != ds.N() {
		t.Fatalf("streamed %d rows from shards, want %d", want.N, ds.N())
	}
	for _, w := range []int{2, 3, -1} {
		requireBitIdentical(t, fmt.Sprintf("csv W=%d", w), want, run(w))
	}
}

// TestFitShardedValidation covers the sharded entry points' error
// paths.
func TestFitShardedValidation(t *testing.T) {
	ds := testfix.Synth(3, 200, 3, 1, 0)
	if _, err := FitSharded(nil, ShardedConfig{Config: Config{K: 2}}); err == nil {
		t.Error("no sources should error")
	}
	if _, err := FitSharded(modShardSources(ds, 2, 64), ShardedConfig{Config: Config{K: 2}, Shards: 3}); err == nil {
		t.Error("Shards disagreeing with len(sources) should error")
	}
	if _, err := FitSharded(modShardSources(ds, 2, 64), ShardedConfig{Config: Config{K: 0}}); err == nil {
		t.Error("K=0 should error")
	}
	// Empty stream across all shards.
	empty := testfix.Synth(3, 200, 3, 1, 0).Subset(nil)
	if _, err := FitSharded([]Source{NewSliceSource(empty, 8), NewSliceSource(empty, 8)}, ShardedConfig{Config: Config{K: 2}}); err == nil {
		t.Error("all-empty shards should error")
	}
	// Schema mismatch between shards.
	other := testfix.Synth(4, 200, 5, 1, 0)
	if _, err := FitSharded([]Source{NewSliceSource(ds, 64), NewSliceSource(other, 64)}, ShardedConfig{Config: Config{K: 2}}); err == nil {
		t.Error("mismatched shard schemas should error")
	}
}
