package pipeline

import (
	"io"
	"math"
	"testing"

	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/metrics"
	"repro/internal/stats"
	"repro/internal/testfix"
)

// adultStream returns the Adult fixture restricted to two sensitive
// attributes (the stratification columns) plus a slice source over it.
func adultStream(t *testing.T, rows, chunk int) (*dataset.Dataset, *SliceSource) {
	t.Helper()
	full := testfix.Adult(11, rows)
	ds, err := full.WithSensitive("gender", "race")
	if err != nil {
		t.Fatal(err)
	}
	return ds, NewSliceSource(ds, chunk)
}

// TestFitStreamAdultWithinFivePercent is the pipeline's acceptance
// bar: on Adult (n=6500, streamed in 500-row blocks) the summary-
// solved centroids must land within 5% of the full-data solve's
// objective, from a summary whose size respects the O(m·log n)
// merge-and-reduce bound.
func TestFitStreamAdultWithinFivePercent(t *testing.T) {
	const n, chunk, k, m = 6500, 500, 7, 80
	ds, src := adultStream(t, n, chunk)

	res, err := FitStream(src, Config{K: k, AutoLambda: true, CoresetSize: m, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	if res.N != ds.N() {
		t.Fatalf("streamed %d rows, want %d", res.N, ds.N())
	}
	// Memory bound: per group at most m·log₂(n/block) + block retained
	// rows, block = 2m.
	levels := int(math.Ceil(math.Log2(float64(n)/float64(2*m)))) + 1
	bound := res.Groups * (m*levels + 2*m)
	if res.Summary.N() > bound {
		t.Errorf("summary holds %d rows; merge-and-reduce bound is %d", res.Summary.N(), bound)
	}
	t.Logf("summary: %d rows over %d groups (bound %d), compression %.1f×",
		res.Summary.N(), res.Groups, bound, float64(n)/float64(res.Summary.N()))

	// Summary mass must equal the stream length exactly.
	if total := stats.Sum(res.SummaryWeights); math.Abs(total-float64(n)) > 1e-6 {
		t.Errorf("summary mass %v, want %d", total, n)
	}

	full, err := core.Run(ds, core.Config{K: k, AutoLambda: true, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(res.Lambda-full.Lambda) > 1e-9*full.Lambda {
		t.Fatalf("λ mismatch: stream %v vs full %v", res.Lambda, full.Lambda)
	}

	// The 5% criterion: the summary solve's objective is directly
	// comparable to the full solve's — same λ, and the summary's total
	// mass equals n, so both are costs over the same population.
	ratio := res.Solve.Objective / full.Objective
	t.Logf("objective: summary-solve %.4f vs full-solve %.4f (ratio %.4f)", res.Solve.Objective, full.Objective, ratio)
	if ratio > 1.05 {
		t.Errorf("summary-solved objective %.4f is %.1f%% above the full solve %.4f (>5%%)",
			res.Solve.Objective, 100*(ratio-1), full.Objective)
	}

	// Deployed comparison: both solutions extended to the full data by
	// the paper's nearest-centroid Predict rule and scored by the
	// second pass. (Distance-only deployment costs BOTH solutions most
	// of their fairness term at this λ — deviations of ~3e-3 against
	// ~5e-6 at the descent assignment — so the bar here is the two
	// deployables staying close, not the descent objective.)
	src.Reset()
	ev, err := Evaluate(src, res.Solve.Centroids, res.Lambda)
	if err != nil {
		t.Fatal(err)
	}
	src.Reset()
	evFull, err := Evaluate(src, full.Centroids, res.Lambda)
	if err != nil {
		t.Fatal(err)
	}
	deployed := ev.Value.Objective / evFull.Value.Objective
	t.Logf("deployed: stream %.4f vs full %.4f (ratio %.4f)", ev.Value.Objective, evFull.Value.Objective, deployed)
	if deployed > 1.25 {
		t.Errorf("deployed stream objective %.4f is %.1f%% above deployed full %.4f",
			ev.Value.Objective, 100*(deployed-1), evFull.Value.Objective)
	}
	if ev.N != n {
		t.Errorf("second pass saw %d rows, want %d", ev.N, n)
	}
}

// TestEvaluateMatchesDirect: the streaming second pass must agree with
// the in-memory reference — core.EvaluateObjective and
// metrics.FairnessAll over the nearest-centroid assignment.
func TestEvaluateMatchesDirect(t *testing.T) {
	ds, src := adultStream(t, 1200, 170)
	full, err := core.Run(ds, core.Config{K: 5, AutoLambda: true, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	const lambda = 1000.0
	src.Reset()
	ev, err := Evaluate(src, full.Centroids, lambda)
	if err != nil {
		t.Fatal(err)
	}
	assign := make([]int, ds.N())
	for i, x := range ds.Features {
		assign[i] = full.Predict(x)
	}
	ref, err := core.EvaluateObjective(ds, assign, 5, lambda, nil)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(ev.Value.KMeansTerm-ref.KMeansTerm) > 1e-6*(1+ref.KMeansTerm) {
		t.Errorf("KM term %v vs %v", ev.Value.KMeansTerm, ref.KMeansTerm)
	}
	if math.Abs(ev.Value.FairnessTerm-ref.FairnessTerm) > 1e-9*(1+ref.FairnessTerm) {
		t.Errorf("fairness term %v vs %v", ev.Value.FairnessTerm, ref.FairnessTerm)
	}
	refReps := metrics.FairnessAll(ds, assign, 5)
	if len(ev.Fairness) != len(refReps) {
		t.Fatalf("%d reports vs %d", len(ev.Fairness), len(refReps))
	}
	for ri, rep := range refReps {
		got := ev.Fairness[ri]
		if got.Attribute != rep.Attribute {
			t.Fatalf("report %d: attribute %q vs %q", ri, got.Attribute, rep.Attribute)
		}
		for _, m := range []string{"AE", "AW", "ME", "MW"} {
			if math.Abs(got.Get(m)-rep.Get(m)) > 1e-9 {
				t.Errorf("%s/%s: %v vs %v", rep.Attribute, m, got.Get(m), rep.Get(m))
			}
		}
	}
	for c, sz := range ev.Sizes {
		want := 0
		for _, a := range assign {
			if a == c {
				want++
			}
		}
		if sz != want {
			t.Errorf("cluster %d size %d, want %d", c, sz, want)
		}
	}
}

// TestFitStreamPreservesGroupMass: the defining fair-coreset property
// must survive the whole pipeline — each sensitive-value combination's
// summary mass equals its stream population exactly.
func TestFitStreamPreservesGroupMass(t *testing.T) {
	ds, src := adultStream(t, 2000, 300)
	res, err := FitStream(src, Config{K: 4, Lambda: 100, CoresetSize: 40, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	gender := res.Summary.SensitiveByName("gender")
	want := map[string]float64{}
	fullGender := ds.SensitiveByName("gender")
	for i := 0; i < ds.N(); i++ {
		want[fullGender.Values[fullGender.Codes[i]]]++
	}
	got := map[string]float64{}
	for i := 0; i < res.Summary.N(); i++ {
		got[gender.Values[gender.Codes[i]]] += res.SummaryWeights[i]
	}
	for v, w := range want {
		if math.Abs(got[v]-w) > 1e-6 {
			t.Errorf("gender=%s summary mass %v, want %v", v, got[v], w)
		}
	}
}

// TestSummarizerValidation: schema and capacity errors must be loud.
func TestSummarizerValidation(t *testing.T) {
	if _, err := NewSummarizer(Config{K: 0}); err == nil {
		t.Error("K=0 accepted")
	}
	if _, err := NewSummarizer(Config{K: 2, CoresetSize: 10, BlockSize: 5}); err == nil {
		t.Error("block < m accepted")
	}

	// Numeric sensitive attributes are not streamable.
	mixed := testfix.Synth(3, 50, 3, 1, 1)
	s, err := NewSummarizer(Config{K: 2})
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Add(mixed); err == nil {
		t.Error("numeric sensitive attribute accepted")
	}

	// Chunks must share one schema.
	a := testfix.Synth(4, 40, 3, 1, 0)
	b := testfix.Synth(5, 40, 4, 1, 0) // different dim
	s2, _ := NewSummarizer(Config{K: 2})
	if err := s2.Add(a); err != nil {
		t.Fatal(err)
	}
	if err := s2.Add(b); err == nil {
		t.Error("dim change across chunks accepted")
	}

	// Solving an empty stream fails.
	s3, _ := NewSummarizer(Config{K: 2})
	if _, err := s3.Solve(); err == nil {
		t.Error("empty stream solved")
	}

	// Group explosion trips MaxGroups.
	s4, _ := NewSummarizer(Config{K: 2, MaxGroups: 3})
	wide := testfix.Synth(6, 200, 2, 3, 0) // 3 attrs, up to 5 values each
	if err := s4.Add(wide); err == nil {
		t.Error("group explosion accepted")
	}
}

// TestSliceSource: chunk walk covers the dataset exactly once.
func TestSliceSource(t *testing.T) {
	ds := testfix.Synth(7, 25, 2, 1, 0)
	src := NewSliceSource(ds, 10)
	total := 0
	for {
		chunk, err := src.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			t.Fatal(err)
		}
		total += chunk.N()
	}
	if total != 25 {
		t.Fatalf("chunks covered %d rows, want 25", total)
	}
	src.Reset()
	if chunk, err := src.Next(); err != nil || chunk.N() != 10 {
		t.Fatalf("Reset did not rewind: %v", err)
	}
}
