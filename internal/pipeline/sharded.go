package pipeline

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"runtime"
	"sync"
	"sync/atomic"

	"repro/internal/core"
	"repro/internal/coreset"
	"repro/internal/dataset"
	"repro/internal/stats"
)

// ShardedConfig parameterizes FitSharded and FitStreamSharded: the
// embedded Config drives each per-shard Summarizer and the final solve,
// exactly as in FitStream.
type ShardedConfig struct {
	Config

	// Shards is the number of independent summarizers S. FitSharded
	// derives it from its source list (a non-zero value must agree);
	// FitStreamSharded requires it. S ≤ 1 reproduces FitStream
	// bit-for-bit.
	Shards int

	// Workers bounds how many shards ingest concurrently: 0 means one
	// worker per shard, -1 means GOMAXPROCS, n means n workers. Shards
	// are statically owned by workers (shard i belongs to worker i mod
	// W), so results are bit-identical for every worker count.
	Workers int

	// MergeBudget, when positive, caps the merged summary's row count:
	// if the union of per-shard summaries exceeds it, one reduce pass
	// through coreset.LightweightWeighted re-samples each sensitive
	// group proportionally (preserving group masses exactly). Zero
	// means never reduce — the union solves as-is, which keeps S=1 a
	// bit-identical replay of FitStream.
	MergeBudget int
}

// shardSeed derives shard i's RNG stream from the base seed: disjoint
// golden-ratio increments (the splitmix64 stream constant), with shard
// 0 keeping the base seed so a single shard replays FitStream exactly.
func shardSeed(seed int64, i int) int64 {
	return seed + int64(i)*-0x61c8864680b583eb // 0x9e3779b97f4a7c15 as int64
}

// workerCount resolves cfg.Workers against S shards.
func (cfg ShardedConfig) workerCount(shards int) int {
	w := cfg.Workers
	switch {
	case w == 0:
		w = shards
	case w < 0:
		w = runtime.GOMAXPROCS(0)
	}
	if w > shards {
		w = shards
	}
	if w < 1 {
		w = 1
	}
	return w
}

// FitSharded runs one Summarizer per source in parallel — each with its
// own deterministically derived RNG stream — merges the per-shard
// summaries (weighted union with cross-shard domain reconciliation,
// optionally reduced to MergeBudget rows) and solves weighted FairKM on
// the result. Sources must share one schema; dataset.SplitCSV produces
// such sources from a single CSV file with true parallel byte-range
// reads.
//
// The result is bit-identical for every Workers value at a fixed shard
// count, and with a single source it is bit-identical to
// FitStream(sources[0], cfg.Config) at MergeBudget 0.
func FitSharded(sources []Source, cfg ShardedConfig) (*Result, error) {
	s := len(sources)
	if s == 0 {
		return nil, errors.New("pipeline: no shard sources")
	}
	if cfg.Shards != 0 && cfg.Shards != s {
		return nil, fmt.Errorf("pipeline: Shards=%d but %d sources given", cfg.Shards, s)
	}
	sums, err := newShardSummarizers(s, cfg)
	if err != nil {
		return nil, err
	}
	w := cfg.workerCount(s)
	errs := make([]error, s)
	var wg sync.WaitGroup
	for worker := 0; worker < w; worker++ {
		wg.Add(1)
		go func(worker int) {
			defer wg.Done()
			for i := worker; i < s; i += w {
				errs[i] = drainInto(sums[i], sources[i])
			}
		}(worker)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return solveSharded(sums, cfg)
}

// FitStreamSharded is FitSharded over a single chunked source: chunks
// are dealt round-robin to cfg.Shards summarizers (chunk j to shard
// j mod S), which ingest on cfg.Workers workers. The chunk→shard
// assignment depends only on S, so results are bit-identical for every
// worker count; Shards ≤ 1 delegates to FitStream.
//
// Reading stays single-threaded here (the source is one stream); for
// parallel file reads shard the file itself with dataset.SplitCSV and
// use FitSharded.
func FitStreamSharded(src Source, cfg ShardedConfig) (*Result, error) {
	s := cfg.Shards
	if s <= 1 {
		return FitStream(src, cfg.Config)
	}
	sums, err := newShardSummarizers(s, cfg)
	if err != nil {
		return nil, err
	}
	w := cfg.workerCount(s)

	type shardMsg struct {
		shard int
		chunk *dataset.Dataset
	}
	chans := make([]chan shardMsg, w)
	for i := range chans {
		chans[i] = make(chan shardMsg, 4)
	}
	errs := make([]error, s)
	var failed atomic.Bool
	var wg sync.WaitGroup
	for worker := 0; worker < w; worker++ {
		wg.Add(1)
		go func(worker int) {
			defer wg.Done()
			for msg := range chans[worker] {
				if errs[msg.shard] != nil {
					continue
				}
				if err := sums[msg.shard].Add(msg.chunk); err != nil {
					errs[msg.shard] = err
					failed.Store(true)
				}
			}
		}(worker)
	}

	var srcErr error
	for j := 0; !failed.Load(); j++ {
		chunk, err := src.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			srcErr = err
			break
		}
		shard := j % s
		chans[shard%w] <- shardMsg{shard: shard, chunk: chunk}
	}
	for _, ch := range chans {
		close(ch)
	}
	wg.Wait()
	if srcErr != nil {
		return nil, srcErr
	}
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return solveSharded(sums, cfg)
}

// newShardSummarizers builds S summarizers with disjoint seed streams.
func newShardSummarizers(s int, cfg ShardedConfig) ([]*Summarizer, error) {
	sums := make([]*Summarizer, s)
	for i := range sums {
		c := cfg.Config
		c.Seed = shardSeed(cfg.Seed, i)
		sum, err := NewSummarizer(c)
		if err != nil {
			return nil, err
		}
		sums[i] = sum
	}
	return sums, nil
}

// drainInto feeds one source to completion into one summarizer.
func drainInto(sum *Summarizer, src Source) error {
	for {
		chunk, err := src.Next()
		if err == io.EOF {
			return nil
		}
		if err != nil {
			return err
		}
		if err := sum.Add(chunk); err != nil {
			return err
		}
	}
}

// solveSharded merges the shard summaries and runs the weighted solve,
// mirroring Summarizer.Solve for the merged summary.
func solveSharded(sums []*Summarizer, cfg ShardedConfig) (*Result, error) {
	summary, weights, n, groups, reduced, err := mergeSummaries(sums, cfg)
	if err != nil {
		return nil, err
	}
	if summary.N() < cfg.K {
		return nil, fmt.Errorf("pipeline: merged summary has %d rows for K=%d; raise CoresetSize or stream more data", summary.N(), cfg.K)
	}
	res, err := core.RunWeighted(summary, weights, core.Config{
		K:           cfg.K,
		Lambda:      cfg.Lambda,
		AutoLambda:  cfg.AutoLambda,
		Seed:        cfg.Seed,
		MaxIter:     cfg.MaxIter,
		Tol:         cfg.Tol,
		Parallelism: cfg.Parallelism,
		Weights:     cfg.Weights,
		Observer:    cfg.Observer,
	})
	if err != nil {
		return nil, err
	}
	return &Result{
		Solve:          res,
		Summary:        summary,
		SummaryWeights: weights,
		N:              n,
		Groups:         groups,
		Lambda:         res.Lambda,
		Shards:         len(sums),
		Reduced:        reduced,
	}, nil
}

// mergeSummaries takes the weighted union of the per-shard summaries.
// Cross-shard categorical codes are reconciled through a merged
// dataset.DomainIndex built by walking the shards in shard order — the
// merged code assignment depends only on the shard split, never on
// worker scheduling — and each shard's rows are remapped onto it. When
// cfg.MergeBudget > 0 and the union exceeds it, one reduce pass through
// coreset.LightweightWeighted re-samples every sensitive group down
// proportionally, preserving each group's total mass exactly (the
// Schmidt et al. composition: a union of fair coresets is a fair
// coreset, and a coreset of a coreset remains one).
func mergeSummaries(sums []*Summarizer, cfg ShardedConfig) (*dataset.Dataset, []float64, int, int, bool, error) {
	// Shards that saw no rows contribute nothing (a byte-range split of
	// a small file can leave shards empty); schema comes from the first
	// non-empty shard.
	var live []*Summarizer
	n := 0
	for _, s := range sums {
		if s.n > 0 {
			live = append(live, s)
			n += s.n
		}
	}
	if len(live) == 0 {
		return nil, nil, 0, 0, false, errors.New("pipeline: empty stream")
	}
	first := live[0]
	for _, s := range live[1:] {
		if s.dim != first.dim {
			return nil, nil, 0, 0, false, fmt.Errorf("pipeline: shard schemas disagree: %d features vs %d", s.dim, first.dim)
		}
		if len(s.attrNames) != len(first.attrNames) {
			return nil, nil, 0, 0, false, fmt.Errorf("pipeline: shard schemas disagree: %d sensitive attributes vs %d", len(s.attrNames), len(first.attrNames))
		}
		for ai, name := range s.attrNames {
			if name != first.attrNames[ai] {
				return nil, nil, 0, 0, false, fmt.Errorf("pipeline: shard schemas disagree: attribute %d is %q vs %q", ai, name, first.attrNames[ai])
			}
		}
	}

	// Merged domains: shard order fixes the merged code of every value,
	// regardless of which shard saw it first at runtime.
	nattrs := len(first.attrNames)
	merged := make([]*dataset.DomainIndex, nattrs)
	for ai := range merged {
		merged[ai] = dataset.NewDomainIndex()
		for _, s := range live {
			for _, v := range s.domains[ai].Values() {
				merged[ai].Code(v)
			}
		}
	}

	// Weighted union, remapped shard-local → merged codes.
	var features [][]float64
	var weights []float64
	codes := make([][]int, nattrs)
	for _, s := range live {
		ds, w, err := s.Summary()
		if err != nil {
			return nil, nil, 0, 0, false, err
		}
		features = append(features, ds.Features...)
		weights = append(weights, w...)
		for ai := range codes {
			attr := ds.Sensitive[ai]
			remap := make([]int, len(attr.Values))
			for c, v := range attr.Values {
				mc, ok := merged[ai].Lookup(v)
				if !ok {
					return nil, nil, 0, 0, false, fmt.Errorf("pipeline: internal error: value %q missing from merged domain", v)
				}
				remap[c] = mc
			}
			for _, c := range attr.Codes {
				codes[ai] = append(codes[ai], remap[c])
			}
		}
	}

	// Realized merged groups, keyed by the merged code tuple; rowGroup
	// drives the optional per-group reduce.
	groupIDs := map[string]int{}
	rowGroup := make([]int, len(features))
	var keyBuf []byte
	for i := range features {
		keyBuf = keyBuf[:0]
		for ai := range codes {
			keyBuf = binary.AppendUvarint(keyBuf, uint64(codes[ai][i]))
		}
		gid, ok := groupIDs[string(keyBuf)]
		if !ok {
			gid = len(groupIDs)
			groupIDs[string(keyBuf)] = gid
		}
		rowGroup[i] = gid
	}
	groups := len(groupIDs)

	reduced := false
	if cfg.MergeBudget > 0 && len(features) > cfg.MergeBudget {
		cw, err := coreset.ReduceGroups(features, weights, rowGroup, cfg.MergeBudget, stats.NewRNG(cfg.Seed).Fork())
		if err != nil {
			return nil, nil, 0, 0, false, fmt.Errorf("pipeline: merge reduce: %w", err)
		}
		rf := make([][]float64, len(cw.Indices))
		rcodes := make([][]int, nattrs)
		for pos, i := range cw.Indices {
			rf[pos] = features[i]
			for ai := range rcodes {
				rcodes[ai] = append(rcodes[ai], codes[ai][i])
			}
		}
		features, weights, codes = rf, cw.Weights, rcodes
		reduced = true
	}

	ds := &dataset.Dataset{
		FeatureNames: first.featureNames,
		Features:     features,
	}
	for ai, name := range first.attrNames {
		ds.Sensitive = append(ds.Sensitive, &dataset.SensitiveAttr{
			Name:   name,
			Kind:   dataset.Categorical,
			Values: append([]string(nil), merged[ai].Values()...),
			Codes:  codes[ai],
		})
	}
	if err := ds.Validate(); err != nil {
		return nil, nil, 0, 0, false, fmt.Errorf("pipeline: merged summary: %w", err)
	}
	return ds, weights, n, groups, reduced, nil
}
