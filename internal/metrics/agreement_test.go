package metrics

import (
	"math"
	"testing"

	"repro/internal/stats"
)

func TestNMIIdenticalPartitions(t *testing.T) {
	a := []int{0, 0, 1, 1, 2, 2}
	if got := NMI(a, a, 3, 3); math.Abs(got-1) > 1e-12 {
		t.Errorf("NMI(a,a) = %v, want 1", got)
	}
	// Relabeling preserves the partition.
	b := []int{2, 2, 0, 0, 1, 1}
	if got := NMI(a, b, 3, 3); math.Abs(got-1) > 1e-12 {
		t.Errorf("NMI under relabeling = %v, want 1", got)
	}
}

func TestNMIIndependentLabelings(t *testing.T) {
	// Perfectly crossed 2x2 design: labels carry no information about
	// each other.
	a := []int{0, 0, 1, 1}
	b := []int{0, 1, 0, 1}
	if got := NMI(a, b, 2, 2); got > 1e-12 {
		t.Errorf("NMI independent = %v, want 0", got)
	}
}

func TestNMIDegenerate(t *testing.T) {
	a := []int{0, 0, 0}
	b := []int{0, 1, 2}
	if got := NMI(a, b, 1, 3); got != 0 {
		t.Errorf("single-cluster NMI = %v, want 0", got)
	}
	if got := NMI(nil, nil, 1, 1); got != 0 {
		t.Errorf("empty NMI = %v", got)
	}
}

func TestARIIdenticalAndRandom(t *testing.T) {
	a := []int{0, 0, 1, 1, 2, 2}
	if got := ARI(a, a, 3, 3); math.Abs(got-1) > 1e-12 {
		t.Errorf("ARI(a,a) = %v, want 1", got)
	}
	// Large random labelings: ARI concentrates near 0.
	rng := stats.NewRNG(5)
	n := 5000
	x := make([]int, n)
	y := make([]int, n)
	for i := 0; i < n; i++ {
		x[i], y[i] = rng.Intn(4), rng.Intn(4)
	}
	if got := ARI(x, y, 4, 4); math.Abs(got) > 0.02 {
		t.Errorf("ARI of random labelings = %v, want ~0", got)
	}
}

func TestNMIARIRanges(t *testing.T) {
	rng := stats.NewRNG(6)
	for trial := 0; trial < 50; trial++ {
		n := 2 + rng.Intn(50)
		k1, k2 := 1+rng.Intn(5), 1+rng.Intn(5)
		a := make([]int, n)
		b := make([]int, n)
		for i := range a {
			a[i], b[i] = rng.Intn(k1), rng.Intn(k2)
		}
		nmi := NMI(a, b, k1, k2)
		if nmi < 0 || nmi > 1 {
			t.Fatalf("NMI %v outside [0,1]", nmi)
		}
		ari := ARI(a, b, k1, k2)
		if ari > 1+1e-12 {
			t.Fatalf("ARI %v above 1", ari)
		}
	}
}

func TestAgreementPanicsOnLengthMismatch(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	NMI([]int{0}, []int{0, 1}, 1, 2)
}

// TestSymmetry: both measures are symmetric in their arguments.
func TestAgreementSymmetry(t *testing.T) {
	rng := stats.NewRNG(7)
	for trial := 0; trial < 30; trial++ {
		n := 5 + rng.Intn(40)
		a := make([]int, n)
		b := make([]int, n)
		for i := range a {
			a[i], b[i] = rng.Intn(3), rng.Intn(4)
		}
		if d := math.Abs(NMI(a, b, 3, 4) - NMI(b, a, 4, 3)); d > 1e-12 {
			t.Fatalf("NMI asymmetric by %v", d)
		}
		if d := math.Abs(ARI(a, b, 3, 4) - ARI(b, a, 4, 3)); d > 1e-12 {
			t.Fatalf("ARI asymmetric by %v", d)
		}
	}
}
