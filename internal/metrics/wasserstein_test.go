package metrics

import (
	"math"
	"testing"
)

// TestWasserstein1UnnormalizedEqualMass: the transport distance is
// positively homogeneous, so equal-mass inputs that are not probability
// vectors must report the scaled distance — the quantity the historical
// truncated-CDF loop happened to get right only for Σp = Σq.
func TestWasserstein1UnnormalizedEqualMass(t *testing.T) {
	p := []float64{0.7, 0.3}
	q := []float64{0.4, 0.6}
	base := Wasserstein1(p, q)
	for _, scale := range []float64{2, 10, 0.25} {
		ps := []float64{p[0] * scale, p[1] * scale}
		qs := []float64{q[0] * scale, q[1] * scale}
		if got, want := Wasserstein1(ps, qs), scale*base; math.Abs(got-want) > 1e-12 {
			t.Errorf("scale %v: W1 = %v, want %v", scale, got, want)
		}
	}
	// Raw count vectors with equal totals are fine too.
	if got := Wasserstein1([]float64{3, 1, 0}, []float64{0, 1, 3}); math.Abs(got-6) > 1e-12 {
		t.Errorf("count-vector W1 = %v, want 6", got)
	}
}

// TestWasserstein1MassMismatchPanics: inputs carrying different total
// mass have no transport plan; the silent-underreport of the truncated
// CDF sum must now be a loud failure.
func TestWasserstein1MassMismatchPanics(t *testing.T) {
	cases := [][2][]float64{
		{{1, 0}, {0, 0.5}},
		{{0.5, 0.5}, {0.5, 0.5 + 1e-6}},
		{{2, 1}, {1, 1}},
	}
	for i, c := range cases {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("case %d: no panic for Σp=%v Σq=%v", i, c[0], c[1])
				}
			}()
			Wasserstein1(c[0], c[1])
		}()
	}
	// Drift within the 1e-9 tolerance must still be accepted.
	if got := Wasserstein1([]float64{0.5, 0.5}, []float64{0.5, 0.5 + 1e-12}); math.Abs(got) > 1e-9 {
		t.Errorf("within-tolerance drift: W1 = %v", got)
	}
}
