package metrics

//fairvet:floateq contingency counts and entropies compare exactly against 0: sums of nonnegative terms are 0 only when empty/degenerate

import (
	"fmt"
	"math"
)

// Agreement measures between two labelings (e.g. clusters vs ground-
// truth problem types). These supplement the paper's measures: they
// quantify how much of the sensitive structure a clustering recovers,
// which is the flip side of fairness — a perfectly fair clustering has
// near-zero agreement with the sensitive labeling.

// contingency builds the k1×k2 joint count table plus marginals.
func contingency(a, b []int, k1, k2 int) (table [][]float64, ma, mb []float64, n float64) {
	if len(a) != len(b) {
		panic(fmt.Sprintf("metrics: labeling lengths differ: %d vs %d", len(a), len(b)))
	}
	table = make([][]float64, k1)
	for i := range table {
		table[i] = make([]float64, k2)
	}
	ma = make([]float64, k1)
	mb = make([]float64, k2)
	for i := range a {
		table[a[i]][b[i]]++
		ma[a[i]]++
		mb[b[i]]++
	}
	return table, ma, mb, float64(len(a))
}

// NMI returns the normalized mutual information between two labelings,
// in [0, 1] (arithmetic-mean normalization; 0 for independent
// labelings, 1 for identical partitions). Degenerate single-cluster
// labelings yield 0.
func NMI(a, b []int, k1, k2 int) float64 {
	table, ma, mb, n := contingency(a, b, k1, k2)
	if n == 0 {
		return 0
	}
	mi := 0.0
	for i := range table {
		for j := range table[i] {
			if table[i][j] == 0 {
				continue
			}
			pij := table[i][j] / n
			mi += pij * math.Log(pij*n*n/(ma[i]*mb[j]))
		}
	}
	ha, hb := 0.0, 0.0
	for _, m := range ma {
		if m > 0 {
			ha -= m / n * math.Log(m/n)
		}
	}
	for _, m := range mb {
		if m > 0 {
			hb -= m / n * math.Log(m/n)
		}
	}
	den := (ha + hb) / 2
	if den == 0 {
		return 0
	}
	nmi := mi / den
	if nmi < 0 {
		nmi = 0 // floating-point guard
	}
	if nmi > 1 {
		nmi = 1
	}
	return nmi
}

// ARI returns the adjusted Rand index between two labelings: 1 for
// identical partitions, ~0 for random agreement (can be negative for
// adversarial disagreement).
func ARI(a, b []int, k1, k2 int) float64 {
	table, ma, mb, n := contingency(a, b, k1, k2)
	if n < 2 {
		return 0
	}
	choose2 := func(x float64) float64 { return x * (x - 1) / 2 }
	sumCont, sumA, sumB := 0.0, 0.0, 0.0
	for i := range table {
		for j := range table[i] {
			sumCont += choose2(table[i][j])
		}
	}
	for _, m := range ma {
		sumA += choose2(m)
	}
	for _, m := range mb {
		sumB += choose2(m)
	}
	total := choose2(n)
	expected := sumA * sumB / total
	maxIdx := (sumA + sumB) / 2
	if maxIdx == expected {
		return 0
	}
	return (sumCont - expected) / (maxIdx - expected)
}
