// Package metrics implements every evaluation measure from Section 5.2
// of the FairKM paper, plus a few standard fairness diagnostics used in
// the related literature.
//
// Clustering quality (over non-sensitive attributes N):
//   - CO: the K-Means clustering objective, Eq. 24 (lower is better)
//   - SH: silhouette score (higher is better)
//   - DevC: centroid-based deviation from a reference S-blind
//     clustering (lower is better)
//   - DevO: object-pairwise deviation from a reference clustering
//     (lower is better)
//
// Fairness (over sensitive attributes S, all lower-is-better):
//   - AE/AW: cardinality-weighted average Euclidean / Wasserstein
//     distance between each cluster's value distribution and the
//     dataset distribution, Eq. 25
//   - ME/MW: the corresponding maxima across clusters
//
// Extras: Balance (Chierichetti et al.) and average normalized entropy.
package metrics

//fairvet:floateq cluster sizes and probabilities compare exactly against 0 to detect empty clusters and zero-support values

import (
	"fmt"
	"math"

	"repro/internal/dataset"
	"repro/internal/hungarian"
	"repro/internal/stats"
)

func sqrt(x float64) float64 { return math.Sqrt(x) }

// CO returns the K-Means clustering objective (Eq. 24): summed squared
// distance from each point to its cluster centroid.
func CO(features [][]float64, assign []int, k int) float64 {
	cents := centroids(features, assign, k)
	s := 0.0
	for i, x := range features {
		s += stats.SqDist(x, cents[assign[i]])
	}
	return s
}

func centroids(features [][]float64, assign []int, k int) [][]float64 {
	dim := len(features[0])
	cents := make([][]float64, k)
	for c := range cents {
		cents[c] = make([]float64, dim)
	}
	counts := make([]int, k)
	for i, x := range features {
		stats.AddTo(cents[assign[i]], x)
		counts[assign[i]]++
	}
	for c := range cents {
		if counts[c] > 0 {
			stats.Scale(cents[c], 1/float64(counts[c]))
		}
	}
	return cents
}

// Silhouette returns the exact mean silhouette coefficient (Rousseeuw
// 1987) over all points: s(i) = (b−a)/max(a,b) with a the mean distance
// to co-members and b the smallest mean distance to another cluster.
// Points in singleton clusters score 0. Cost is O(n²·d); for large
// datasets use SilhouetteSampled.
func Silhouette(features [][]float64, assign []int, k int) float64 {
	n := len(features)
	return silhouetteOver(features, assign, k, identity(n))
}

// SilhouetteSampled estimates the silhouette coefficient by averaging
// s(i) over sample points drawn without replacement (each point's a and
// b are still computed against the FULL dataset, so only the outer
// average is sampled). If sample >= n the computation is exact.
func SilhouetteSampled(features [][]float64, assign []int, k, sample int, seed int64) float64 {
	n := len(features)
	if sample >= n {
		return Silhouette(features, assign, k)
	}
	rng := stats.NewRNG(seed)
	return silhouetteOver(features, assign, k, rng.SampleWithoutReplacement(n, sample))
}

func identity(n int) []int {
	idx := make([]int, n)
	for i := range idx {
		idx[i] = i
	}
	return idx
}

func silhouetteOver(features [][]float64, assign []int, k int, idx []int) float64 {
	n := len(features)
	sizes := make([]int, k)
	for _, c := range assign {
		sizes[c]++
	}
	if n == 0 || len(idx) == 0 {
		return 0
	}
	sumS, count := 0.0, 0
	distSums := make([]float64, k)
	for _, i := range idx {
		ci := assign[i]
		if sizes[ci] <= 1 {
			count++ // silhouette of a singleton is defined as 0
			continue
		}
		for c := range distSums {
			distSums[c] = 0
		}
		for j := 0; j < n; j++ {
			if j == i {
				continue
			}
			distSums[assign[j]] += stats.Dist(features[i], features[j])
		}
		a := distSums[ci] / float64(sizes[ci]-1)
		b := math.Inf(1)
		for c := 0; c < k; c++ {
			if c == ci || sizes[c] == 0 {
				continue
			}
			if m := distSums[c] / float64(sizes[c]); m < b {
				b = m
			}
		}
		if math.IsInf(b, 1) {
			count++ // only one non-empty cluster: define s(i)=0
			continue
		}
		den := math.Max(a, b)
		if den > 0 {
			sumS += (b - a) / den
		}
		count++
	}
	if count == 0 {
		return 0
	}
	return sumS / float64(count)
}

// DevC measures centroid-based deviation between a clustering and a
// reference clustering (Section 5.2.1): centroids of the two clusterings
// are optimally matched (minimum-cost perfect matching under squared
// Euclidean distance, solved exactly with the Hungarian algorithm) and
// the total matched cost is returned. Identical clusterings score 0,
// which is the property the paper's tables rely on (K-Means(N) scores
// 0.0 against itself).
//
// The paper describes DevC loosely as a sum of pairwise centroid
// dot-products (after disparate-clustering work); that form is not zero
// for identical clusterings, so we use the matching formulation, which
// preserves the measure's intent — see EXPERIMENTS.md.
func DevC(features [][]float64, assign []int, refAssign []int, k int) float64 {
	a := centroids(features, assign, k)
	b := centroids(features, refAssign, k)
	cost := make([][]float64, k)
	for i := range cost {
		cost[i] = make([]float64, k)
		for j := range cost[i] {
			cost[i][j] = stats.SqDist(a[i], b[j])
		}
	}
	_, total, err := hungarian.Solve(cost)
	if err != nil {
		panic(fmt.Sprintf("metrics: DevC matching failed: %v", err)) // k>=1 guaranteed by callers
	}
	return total
}

// DevO measures object-pairwise deviation between two clusterings
// (Section 5.2.1): the fraction of object pairs on which the two
// clusterings disagree about being co-clustered — i.e. one minus the
// Rand index. It is computed exactly in O(n + k·k') via the contingency
// table.
func DevO(assign, refAssign []int, k, refK int) float64 {
	n := len(assign)
	if len(refAssign) != n {
		panic(fmt.Sprintf("metrics: DevO assignment lengths differ: %d vs %d", n, len(refAssign)))
	}
	if n < 2 {
		return 0
	}
	cont := make([][]float64, k)
	for i := range cont {
		cont[i] = make([]float64, refK)
	}
	aSizes := make([]float64, k)
	bSizes := make([]float64, refK)
	for i := 0; i < n; i++ {
		cont[assign[i]][refAssign[i]]++
		aSizes[assign[i]]++
		bSizes[refAssign[i]]++
	}
	choose2 := func(x float64) float64 { return x * (x - 1) / 2 }
	sumCont, sumA, sumB := 0.0, 0.0, 0.0
	for i := range cont {
		for j := range cont[i] {
			sumCont += choose2(cont[i][j])
		}
	}
	for _, s := range aSizes {
		sumA += choose2(s)
	}
	for _, s := range bSizes {
		sumB += choose2(s)
	}
	totalPairs := choose2(float64(n))
	// Pairs same in A but split in B, plus same in B but split in A.
	disagree := (sumA - sumCont) + (sumB - sumCont)
	return disagree / totalPairs
}

// FairnessReport aggregates the four fairness measures for one
// sensitive attribute.
type FairnessReport struct {
	Attribute string
	AE        float64
	AW        float64
	ME        float64
	MW        float64
}

// Get returns the named measure ("AE", "AW", "ME" or "MW"); it panics
// on an unknown name. It lets table renderers iterate measures.
func (r FairnessReport) Get(measure string) float64 {
	switch measure {
	case "AE":
		return r.AE
	case "AW":
		return r.AW
	case "ME":
		return r.ME
	case "MW":
		return r.MW
	default:
		panic(fmt.Sprintf("metrics: unknown fairness measure %q", measure))
	}
}

// clusterDistributions returns, for each non-empty cluster, its
// cardinality and value distribution over attribute s.
func clusterDistributions(s *dataset.SensitiveAttr, assign []int, k int) (sizes []int, dists [][]float64) {
	nvals := len(s.Values)
	counts := make([][]float64, k)
	for c := range counts {
		counts[c] = make([]float64, nvals)
	}
	sizes = make([]int, k)
	for i, c := range assign {
		counts[c][s.Codes[i]]++
		sizes[c]++
	}
	dists = make([][]float64, k)
	for c := 0; c < k; c++ {
		dists[c] = counts[c]
		if sizes[c] > 0 {
			stats.Scale(dists[c], 1/float64(sizes[c]))
		}
	}
	return sizes, dists
}

// Fairness computes AE, AW, ME and MW (Section 5.2.2) for a single
// categorical sensitive attribute: cluster-cardinality weighted average
// (Eq. 25) and maximum of the Euclidean / Wasserstein distances between
// each non-empty cluster's value distribution and the dataset's.
func Fairness(ds *dataset.Dataset, s *dataset.SensitiveAttr, assign []int, k int) FairnessReport {
	frX := ds.Fractions(s)
	sizes, dists := clusterDistributions(s, assign, k)
	szf := make([]float64, k)
	for c, sz := range sizes {
		szf[c] = float64(sz)
	}
	return FairnessFromDistributions(s.Name, frX, szf, dists)
}

// FairnessFromDistributions computes the AE/AW/ME/MW report from
// already-aggregated statistics: the dataset value distribution frX,
// per-cluster sizes (row counts or masses; zero marks an empty cluster)
// and per-cluster value distributions. It is the counts-based core of
// Fairness, shared with the streaming second-pass evaluator
// (internal/pipeline), which accumulates these aggregates in O(k·|V|)
// memory without materializing the dataset.
func FairnessFromDistributions(attr string, frX []float64, sizes []float64, dists [][]float64) FairnessReport {
	rep := FairnessReport{Attribute: attr}
	totalW := 0.0
	for c := range dists {
		if sizes[c] == 0 {
			continue
		}
		w := sizes[c]
		ed := Euclidean(dists[c], frX)
		wd := Wasserstein1(dists[c], frX)
		rep.AE += w * ed
		rep.AW += w * wd
		if ed > rep.ME {
			rep.ME = ed
		}
		if wd > rep.MW {
			rep.MW = wd
		}
		totalW += w
	}
	if totalW > 0 {
		rep.AE /= totalW
		rep.AW /= totalW
	}
	return rep
}

// FairnessAll evaluates Fairness for every categorical sensitive
// attribute of ds and appends a synthetic "mean" report averaging the
// four measures across attributes (the "Mean across S Attributes" rows
// of Tables 6 and 8).
func FairnessAll(ds *dataset.Dataset, assign []int, k int) []FairnessReport {
	var reps []FairnessReport
	for _, s := range ds.Sensitive {
		if s.Kind != dataset.Categorical {
			continue
		}
		reps = append(reps, Fairness(ds, s, assign, k))
	}
	if len(reps) == 0 {
		return reps
	}
	mean := FairnessReport{Attribute: "mean"}
	for _, r := range reps {
		mean.AE += r.AE
		mean.AW += r.AW
		mean.ME += r.ME
		mean.MW += r.MW
	}
	inv := 1 / float64(len(reps))
	mean.AE *= inv
	mean.AW *= inv
	mean.ME *= inv
	mean.MW *= inv
	return append(reps, mean)
}

// NumericFairnessReport carries the numeric-attribute analogues of the
// categorical fairness measures (Section 5.2.2 notes these "follow
// naturally"): distribution distance is replaced by the absolute gap
// between a cluster's mean of the attribute and the dataset's mean.
type NumericFairnessReport struct {
	Attribute string
	// AvgGap is the cluster-cardinality weighted average |mean_C − mean_X|.
	AvgGap float64
	// MaxGap is the maximum gap across non-empty clusters.
	MaxGap float64
	// NormAvgGap and NormMaxGap divide the gaps by the attribute's
	// dataset standard deviation (0 std → 0), making values comparable
	// across attributes.
	NormAvgGap float64
	NormMaxGap float64
}

// NumericFairness computes mean-gap fairness for a numeric sensitive
// attribute. It panics if s is not numeric.
func NumericFairness(s *dataset.SensitiveAttr, assign []int, k int) NumericFairnessReport {
	if s.Kind != dataset.Numeric {
		panic(fmt.Sprintf("metrics: NumericFairness on categorical attribute %q", s.Name))
	}
	meanX, stdX := stats.MeanStd(s.Reals)
	sums := make([]float64, k)
	sizes := make([]int, k)
	for i, c := range assign {
		sums[c] += s.Reals[i]
		sizes[c]++
	}
	rep := NumericFairnessReport{Attribute: s.Name}
	total := 0.0
	for c := 0; c < k; c++ {
		if sizes[c] == 0 {
			continue
		}
		gap := math.Abs(sums[c]/float64(sizes[c]) - meanX)
		rep.AvgGap += float64(sizes[c]) * gap
		if gap > rep.MaxGap {
			rep.MaxGap = gap
		}
		total += float64(sizes[c])
	}
	if total > 0 {
		rep.AvgGap /= total
	}
	if stdX > 0 {
		rep.NormAvgGap = rep.AvgGap / stdX
		rep.NormMaxGap = rep.MaxGap / stdX
	}
	return rep
}

// Balance returns Chierichetti et al.'s balance of the clustering for a
// categorical attribute: min over non-empty clusters and value pairs of
// the ratio between value counts, in [0, 1] where 1 is perfectly
// balanced. Reported as a supplementary diagnostic.
func Balance(s *dataset.SensitiveAttr, assign []int, k int) float64 {
	sizes, dists := clusterDistributions(s, assign, k)
	bal := 1.0
	for c := 0; c < k; c++ {
		if sizes[c] == 0 {
			continue
		}
		for i := 0; i < len(dists[c]); i++ {
			for j := i + 1; j < len(dists[c]); j++ {
				a, b := dists[c][i], dists[c][j]
				if a == 0 || b == 0 {
					return 0
				}
				r := a / b
				if r > 1 {
					r = 1 / r
				}
				if r < bal {
					bal = r
				}
			}
		}
	}
	return bal
}

// AvgEntropy returns the cluster-cardinality weighted average Shannon
// entropy of the attribute's distribution within clusters, normalized
// by the dataset entropy (so 1.0 means clusters are as mixed as the
// dataset). Supplementary diagnostic; undefined (0) when the dataset
// entropy is 0.
func AvgEntropy(ds *dataset.Dataset, s *dataset.SensitiveAttr, assign []int, k int) float64 {
	hx := stats.Entropy(ds.Fractions(s))
	if hx == 0 {
		return 0
	}
	sizes, dists := clusterDistributions(s, assign, k)
	total, weight := 0.0, 0.0
	for c := 0; c < k; c++ {
		if sizes[c] == 0 {
			continue
		}
		total += float64(sizes[c]) * stats.Entropy(dists[c])
		weight += float64(sizes[c])
	}
	return total / weight / hx
}
