package metrics

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/dataset"
	"repro/internal/stats"
)

func twoBlobDataset(t *testing.T) (*dataset.Dataset, []int) {
	t.Helper()
	b := dataset.NewBuilder("x", "y")
	b.AddCategoricalSensitive("g")
	rng := stats.NewRNG(3)
	assign := make([]int, 0, 40)
	for i := 0; i < 20; i++ {
		b.Row([]float64{rng.Gaussian(0, 0.2), rng.Gaussian(0, 0.2)}, []string{pick(i, "a", "b", 4)}, nil)
		assign = append(assign, 0)
	}
	for i := 0; i < 20; i++ {
		b.Row([]float64{rng.Gaussian(10, 0.2), rng.Gaussian(10, 0.2)}, []string{pick(i, "b", "a", 4)}, nil)
		assign = append(assign, 1)
	}
	ds, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	return ds, assign
}

// pick returns major except every nth index, which gets minor.
func pick(i int, major, minor string, n int) string {
	if i%n == 0 {
		return minor
	}
	return major
}

func TestWasserstein1KnownValues(t *testing.T) {
	cases := []struct {
		p, q []float64
		want float64
	}{
		{[]float64{1, 0}, []float64{0, 1}, 1},
		{[]float64{0.5, 0.5}, []float64{0.5, 0.5}, 0},
		{[]float64{1, 0, 0}, []float64{0, 0, 1}, 2},
		{[]float64{0.5, 0, 0.5}, []float64{0, 1, 0}, 0.5 + 0.5},
		{[]float64{0.7, 0.3}, []float64{0.4, 0.6}, 0.3},
	}
	for i, c := range cases {
		if got := Wasserstein1(c.p, c.q); math.Abs(got-c.want) > 1e-12 {
			t.Errorf("case %d: W1 = %v, want %v", i, got, c.want)
		}
	}
}

func TestWasserstein1MetricAxioms(t *testing.T) {
	// quick generates arbitrary float64s, including ±Inf and ~1e308
	// magnitudes whose 5-term sum overflows; Normalize would then map
	// every entry to 0 and trip Wasserstein1's mass check. Fold each
	// draw into a finite positive weight first — the axioms under test
	// are about the transport metric, not about overflow handling.
	weight := func(x float64) float64 {
		if math.IsNaN(x) || math.IsInf(x, 0) {
			return 1
		}
		return math.Mod(math.Abs(x), 1e6) + .01
	}
	f := func(a, b [5]float64) bool {
		p := stats.Normalize([]float64{weight(a[0]), weight(a[1]), weight(a[2]), weight(a[3]), weight(a[4])})
		q := stats.Normalize([]float64{weight(b[0]), weight(b[1]), weight(b[2]), weight(b[3]), weight(b[4])})
		d1, d2 := Wasserstein1(p, q), Wasserstein1(q, p)
		if math.Abs(d1-d2) > 1e-12 || d1 < 0 {
			return false
		}
		return Wasserstein1(p, p) == 0
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestWasserstein1TriangleInequality(t *testing.T) {
	rng := stats.NewRNG(11)
	for trial := 0; trial < 500; trial++ {
		n := 2 + rng.Intn(6)
		p, q, r := randDist(rng, n), randDist(rng, n), randDist(rng, n)
		if Wasserstein1(p, r) > Wasserstein1(p, q)+Wasserstein1(q, r)+1e-12 {
			t.Fatalf("triangle inequality violated: %v %v %v", p, q, r)
		}
	}
}

func randDist(rng *stats.RNG, n int) []float64 {
	d := make([]float64, n)
	for i := range d {
		d[i] = rng.Float64() + 0.001
	}
	return stats.Normalize(d)
}

func TestEuclideanVsWassersteinBinary(t *testing.T) {
	// For binary distributions ED = √2·|p−q| and W1 = |p−q|.
	p := []float64{0.8, 0.2}
	q := []float64{0.5, 0.5}
	if got, want := Euclidean(p, q), math.Sqrt2*0.3; math.Abs(got-want) > 1e-12 {
		t.Errorf("ED = %v, want %v", got, want)
	}
	if got := Wasserstein1(p, q); math.Abs(got-0.3) > 1e-12 {
		t.Errorf("W1 = %v, want 0.3", got)
	}
}

func TestCOMatchesKMeansObjective(t *testing.T) {
	ds, assign := twoBlobDataset(t)
	co := CO(ds.Features, assign, 2)
	// Hand-compute.
	manual := 0.0
	for c := 0; c < 2; c++ {
		var members [][]float64
		for i, a := range assign {
			if a == c {
				members = append(members, ds.Features[i])
			}
		}
		mu := stats.MeanVector(members)
		for _, x := range members {
			manual += stats.SqDist(x, mu)
		}
	}
	if math.Abs(co-manual) > 1e-9 {
		t.Errorf("CO = %v, manual %v", co, manual)
	}
}

func TestSilhouetteSeparatedBlobs(t *testing.T) {
	ds, assign := twoBlobDataset(t)
	sh := Silhouette(ds.Features, assign, 2)
	if sh < 0.9 {
		t.Errorf("silhouette of well-separated blobs = %v, want > 0.9", sh)
	}
	// Deliberately bad assignment: split each blob in half.
	bad := make([]int, len(assign))
	for i := range bad {
		bad[i] = i % 2
	}
	shBad := Silhouette(ds.Features, bad, 2)
	if shBad >= sh {
		t.Errorf("bad assignment silhouette %v >= good %v", shBad, sh)
	}
}

func TestSilhouetteSampledApproximatesExact(t *testing.T) {
	ds, assign := twoBlobDataset(t)
	exact := Silhouette(ds.Features, assign, 2)
	sampled := SilhouetteSampled(ds.Features, assign, 2, 25, 9)
	if math.Abs(exact-sampled) > 0.1 {
		t.Errorf("sampled %v too far from exact %v", sampled, exact)
	}
	full := SilhouetteSampled(ds.Features, assign, 2, 1000, 9)
	if full != exact {
		t.Errorf("sample >= n should be exact: %v vs %v", full, exact)
	}
}

func TestSilhouetteDegenerate(t *testing.T) {
	// Single cluster: defined as 0.
	feats := [][]float64{{0}, {1}, {2}}
	if got := Silhouette(feats, []int{0, 0, 0}, 1); got != 0 {
		t.Errorf("single cluster silhouette = %v", got)
	}
	// Singletons score 0.
	if got := Silhouette(feats, []int{0, 1, 2}, 3); got != 0 {
		t.Errorf("all-singleton silhouette = %v", got)
	}
}

func TestDevOIdenticalAndOpposite(t *testing.T) {
	a := []int{0, 0, 1, 1}
	if got := DevO(a, a, 2, 2); got != 0 {
		t.Errorf("DevO(a,a) = %v, want 0", got)
	}
	// Relabeled clustering is the same partition: still 0.
	b := []int{1, 1, 0, 0}
	if got := DevO(a, b, 2, 2); got != 0 {
		t.Errorf("DevO under relabeling = %v, want 0", got)
	}
	// Fully crossed: {0,1},{2,3} vs {0,2},{1,3} — every same-pair in A
	// is split in B and vice versa: 4 disagreements of 6 pairs.
	c := []int{0, 1, 0, 1}
	if got, want := DevO(a, c, 2, 2), 4.0/6.0; math.Abs(got-want) > 1e-12 {
		t.Errorf("DevO crossed = %v, want %v", got, want)
	}
}

func TestDevOBruteForce(t *testing.T) {
	rng := stats.NewRNG(17)
	for trial := 0; trial < 50; trial++ {
		n := 2 + rng.Intn(20)
		k1, k2 := 1+rng.Intn(4), 1+rng.Intn(4)
		a := make([]int, n)
		b := make([]int, n)
		for i := range a {
			a[i], b[i] = rng.Intn(k1), rng.Intn(k2)
		}
		want := 0.0
		pairs := 0.0
		for i := 0; i < n; i++ {
			for j := i + 1; j < n; j++ {
				sameA := a[i] == a[j]
				sameB := b[i] == b[j]
				if sameA != sameB {
					want++
				}
				pairs++
			}
		}
		want /= pairs
		if got := DevO(a, b, k1, k2); math.Abs(got-want) > 1e-12 {
			t.Fatalf("trial %d: DevO = %v, brute force %v", trial, got, want)
		}
	}
}

func TestDevCZeroForIdentical(t *testing.T) {
	ds, assign := twoBlobDataset(t)
	if got := DevC(ds.Features, assign, assign, 2); got != 0 {
		t.Errorf("DevC identical = %v, want 0", got)
	}
	// Relabeled: matching makes it still 0.
	relabeled := make([]int, len(assign))
	for i, c := range assign {
		relabeled[i] = 1 - c
	}
	if got := DevC(ds.Features, assign, relabeled, 2); got > 1e-12 {
		t.Errorf("DevC relabeled = %v, want 0", got)
	}
	// A genuinely different clustering must be positive.
	bad := make([]int, len(assign))
	for i := range bad {
		bad[i] = i % 2
	}
	if got := DevC(ds.Features, assign, bad, 2); got <= 0 {
		t.Errorf("DevC different = %v, want > 0", got)
	}
}

func TestFairnessPerfectAndSkewed(t *testing.T) {
	b := dataset.NewBuilder("x")
	b.AddCategoricalSensitive("g")
	vals := []string{"a", "b", "a", "b", "a", "b", "a", "b"}
	for i, v := range vals {
		b.Row([]float64{float64(i)}, []string{v}, nil)
	}
	ds, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	g := ds.SensitiveByName("g")
	// Perfectly proportional clusters.
	fair := Fairness(ds, g, []int{0, 0, 0, 0, 1, 1, 1, 1}, 2)
	if fair.AE != 0 || fair.AW != 0 || fair.ME != 0 || fair.MW != 0 {
		t.Errorf("proportional clustering not zero: %+v", fair)
	}
	// Fully separated: each cluster pure; distribution (1,0) vs (.5,.5).
	skew := Fairness(ds, g, []int{0, 1, 0, 1, 0, 1, 0, 1}, 2)
	wantED := math.Sqrt2 * 0.5
	if math.Abs(skew.AE-wantED) > 1e-12 || math.Abs(skew.ME-wantED) > 1e-12 {
		t.Errorf("pure clusters AE/ME = %v/%v, want %v", skew.AE, skew.ME, wantED)
	}
	if math.Abs(skew.AW-0.5) > 1e-12 || math.Abs(skew.MW-0.5) > 1e-12 {
		t.Errorf("pure clusters AW/MW = %v/%v, want 0.5", skew.AW, skew.MW)
	}
}

func TestFairnessWeightsByCardinality(t *testing.T) {
	// Cluster 0 has 6 points perfectly proportional; cluster 1 has 2
	// points fully skewed. AE must be the 6:2 weighted average.
	b := dataset.NewBuilder("x")
	b.AddCategoricalSensitive("g")
	vals := []string{"a", "a", "a", "b", "b", "b", "a", "a"}
	for i, v := range vals {
		b.Row([]float64{float64(i)}, []string{v}, nil)
	}
	ds, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	g := ds.SensitiveByName("g")
	assign := []int{0, 0, 0, 0, 0, 0, 1, 1}
	rep := Fairness(ds, g, assign, 2)
	frX := []float64{5.0 / 8, 3.0 / 8}
	c0 := []float64{3.0 / 6, 3.0 / 6}
	c1 := []float64{1, 0}
	wantAE := (6*Euclidean(c0, frX) + 2*Euclidean(c1, frX)) / 8
	if math.Abs(rep.AE-wantAE) > 1e-12 {
		t.Errorf("AE = %v, want %v", rep.AE, wantAE)
	}
	wantME := Euclidean(c1, frX)
	if math.Abs(rep.ME-wantME) > 1e-12 {
		t.Errorf("ME = %v, want %v", rep.ME, wantME)
	}
}

func TestFairnessAllIncludesMean(t *testing.T) {
	ds, assign := twoBlobDataset(t)
	reps := FairnessAll(ds, assign, 2)
	if len(reps) != 2 {
		t.Fatalf("got %d reports, want 2 (attr + mean)", len(reps))
	}
	if reps[len(reps)-1].Attribute != "mean" {
		t.Errorf("last report is %q, want mean", reps[len(reps)-1].Attribute)
	}
	if reps[0].AE != reps[1].AE {
		t.Errorf("with one attribute mean must equal it")
	}
}

func TestBalance(t *testing.T) {
	b := dataset.NewBuilder("x")
	b.AddCategoricalSensitive("g")
	vals := []string{"a", "a", "b", "b"}
	for i, v := range vals {
		b.Row([]float64{float64(i)}, []string{v}, nil)
	}
	ds, _ := b.Build()
	g := ds.SensitiveByName("g")
	if got := Balance(g, []int{0, 1, 0, 1}, 2); got != 1 {
		t.Errorf("balanced clustering balance = %v, want 1", got)
	}
	if got := Balance(g, []int{0, 0, 1, 1}, 2); got != 0 {
		t.Errorf("segregated clustering balance = %v, want 0", got)
	}
}

func TestAvgEntropy(t *testing.T) {
	b := dataset.NewBuilder("x")
	b.AddCategoricalSensitive("g")
	vals := []string{"a", "a", "b", "b"}
	for i, v := range vals {
		b.Row([]float64{float64(i)}, []string{v}, nil)
	}
	ds, _ := b.Build()
	g := ds.SensitiveByName("g")
	if got := AvgEntropy(ds, g, []int{0, 1, 0, 1}, 2); math.Abs(got-1) > 1e-12 {
		t.Errorf("mixed clusters entropy ratio = %v, want 1", got)
	}
	if got := AvgEntropy(ds, g, []int{0, 0, 1, 1}, 2); got != 0 {
		t.Errorf("pure clusters entropy ratio = %v, want 0", got)
	}
}

func TestNumericFairness(t *testing.T) {
	b := dataset.NewBuilder("x")
	b.AddNumericSensitive("age")
	ages := []float64{20, 40, 20, 40, 20, 40}
	for i, a := range ages {
		b.Row([]float64{float64(i)}, nil, []float64{a})
	}
	ds, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	age := ds.SensitiveByName("age")
	// Balanced clusters: every cluster mean = 30 = dataset mean.
	fair := NumericFairness(age, []int{0, 0, 1, 1, 2, 2}, 3)
	if fair.AvgGap != 0 || fair.MaxGap != 0 {
		t.Errorf("balanced clustering gaps = %+v, want 0", fair)
	}
	// Segregated: cluster means 20 and 40, gaps of 10.
	skew := NumericFairness(age, []int{0, 1, 0, 1, 0, 1}, 2)
	if math.Abs(skew.AvgGap-10) > 1e-12 || math.Abs(skew.MaxGap-10) > 1e-12 {
		t.Errorf("segregated gaps = %+v, want 10", skew)
	}
	if skew.NormAvgGap <= 0 {
		t.Errorf("normalized gap = %v, want > 0", skew.NormAvgGap)
	}
	// Panics on categorical input.
	bc := dataset.NewBuilder("x")
	bc.AddCategoricalSensitive("g")
	bc.Row([]float64{1}, []string{"a"}, nil)
	cds, _ := bc.Build()
	defer func() {
		if recover() == nil {
			t.Error("expected panic on categorical attribute")
		}
	}()
	NumericFairness(cds.SensitiveByName("g"), []int{0}, 1)
}

// TestSilhouetteRange: silhouette must always be within [-1, 1]
// (property-based over random assignments).
func TestSilhouetteRange(t *testing.T) {
	rng := stats.NewRNG(21)
	for trial := 0; trial < 30; trial++ {
		n := 5 + rng.Intn(30)
		k := 1 + rng.Intn(5)
		feats := make([][]float64, n)
		assign := make([]int, n)
		for i := range feats {
			feats[i] = []float64{rng.Gaussian(0, 3), rng.Gaussian(0, 3)}
			assign[i] = rng.Intn(k)
		}
		sh := Silhouette(feats, assign, k)
		if sh < -1-1e-12 || sh > 1+1e-12 {
			t.Fatalf("trial %d: silhouette %v outside [-1,1]", trial, sh)
		}
	}
}

// TestDevORange: DevO is a fraction of pairs, hence in [0, 1].
func TestDevORange(t *testing.T) {
	rng := stats.NewRNG(22)
	for trial := 0; trial < 50; trial++ {
		n := 2 + rng.Intn(40)
		k1, k2 := 1+rng.Intn(5), 1+rng.Intn(5)
		a := make([]int, n)
		bb := make([]int, n)
		for i := range a {
			a[i], bb[i] = rng.Intn(k1), rng.Intn(k2)
		}
		d := DevO(a, bb, k1, k2)
		if d < 0 || d > 1 {
			t.Fatalf("DevO %v outside [0,1]", d)
		}
	}
}

// TestWasserstein1UpperBound: with unit ground distance on t ordered
// values, W1 is at most t−1.
func TestWasserstein1UpperBound(t *testing.T) {
	rng := stats.NewRNG(23)
	for trial := 0; trial < 200; trial++ {
		tlen := 2 + rng.Intn(8)
		p, q := randDist(rng, tlen), randDist(rng, tlen)
		if w := Wasserstein1(p, q); w > float64(tlen-1)+1e-12 {
			t.Fatalf("W1 %v exceeds bound %d", w, tlen-1)
		}
	}
}
