package metrics

import (
	"fmt"
	"math"
)

// wassersteinMassTol bounds how far Σp and Σq may drift apart before
// Wasserstein1 rejects the pair as comparing different masses.
const wassersteinMassTol = 1e-9

// Wasserstein1 returns the 1-Wasserstein (earth mover's) distance
// between two measures over the same ordered finite domain, with unit
// ground distance between adjacent values:
//
//	W1(p, q) = Σ_i |CDF_p(i) − CDF_q(i)|
//
// This is the distance the AW/MW fairness measures use (Section 5.2.2,
// following Wang & Davidson's usage for multi-state protected
// variables). For binary attributes it reduces to |p_0 − q_0|.
//
// The transport formulation only makes sense when both inputs carry the
// same total mass: the summation stops at the second-to-last CDF term,
// whose omitted final value |Σp − Σq| vanishes exactly when the masses
// agree. The historical implementation skipped that check and silently
// underreported for mismatched masses; now inputs whose totals differ
// by more than 1e-9 panic. Equal-mass inputs need not be normalized —
// W1 then scales linearly with the common total, as for any measure.
// It panics on length mismatch, empty input, or a mass mismatch.
func Wasserstein1(p, q []float64) float64 {
	if len(p) != len(q) {
		panic(fmt.Sprintf("metrics: Wasserstein1 length mismatch %d vs %d", len(p), len(q)))
	}
	if len(p) == 0 {
		panic("metrics: Wasserstein1 of empty distributions")
	}
	sp, sq := 0.0, 0.0
	for i := range p {
		sp += p[i]
		sq += q[i]
	}
	if math.Abs(sp-sq) > wassersteinMassTol {
		panic(fmt.Sprintf("metrics: Wasserstein1 mass mismatch: Σp=%v vs Σq=%v", sp, sq))
	}
	cum := 0.0
	total := 0.0
	for i := 0; i < len(p)-1; i++ {
		cum += p[i] - q[i]
		if cum >= 0 {
			total += cum
		} else {
			total -= cum
		}
	}
	return total
}

// Euclidean returns the Euclidean distance between two probability
// vectors, the distance used by the AE/ME fairness measures.
func Euclidean(p, q []float64) float64 {
	if len(p) != len(q) {
		panic(fmt.Sprintf("metrics: Euclidean length mismatch %d vs %d", len(p), len(q)))
	}
	s := 0.0
	for i := range p {
		d := p[i] - q[i]
		s += d * d
	}
	return sqrt(s)
}
