// Package cli is the shared entrypoint shim for every command in
// cmd/*: it runs a testable run(args, out) function and converts its
// error into the repository-wide CLI failure contract — a clear
// one-line message on stderr and exit code 2, never a panic and never
// a bare exit 1 (so scripts can distinguish "bad invocation or input"
// from a crash).
package cli

import (
	"fmt"
	"io"
	"os"
	"strings"
)

// ExitUsage is the exit code for every CLI failure: invalid flags,
// unreadable inputs, impossible parameters. (0 remains success.)
const ExitUsage = 2

// ExitInternal is the exit code when a command body panics. The
// contract still holds — one line on stderr, never a raw stack trace —
// but the distinct code lets scripts tell a crash (a bug in the tool)
// from a rejected invocation.
const ExitInternal = 3

// Main runs a command body and applies the failure contract. The body
// gets os.Args[1:] and os.Stdout; on error, the first line of the
// error is printed as "name: message" to stderr and the process exits
// with ExitUsage. A panicking body is recovered into the same one-line
// shape ("name: internal error: ...") with exit code ExitInternal.
func Main(name string, run func(args []string, out io.Writer) error) {
	defer func() {
		if r := recover(); r != nil {
			fmt.Fprintf(os.Stderr, "%s: internal error: %s\n", name, firstLine(fmt.Sprintf("%v", r)))
			os.Exit(ExitInternal)
		}
	}()
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintf(os.Stderr, "%s: %s\n", name, FirstLine(err))
		os.Exit(ExitUsage)
	}
}

// CloseCapture closes c and, when the surrounding function is
// otherwise succeeding, folds a close failure into *errp. This is the
// deferred-close idiom for files opened for WRITING, where Close is
// the final flush and its error means data loss:
//
//	func write(path string) (err error) {
//		f, cerr := os.Create(path) // distinct name: do not shadow err
//		if cerr != nil {
//			return cerr
//		}
//		defer cli.CloseCapture(&err, f)
//		...
//	}
//
// An earlier error wins — the close failure is then almost always a
// consequence of it. Read-only closes do not need this: a justified
// //fairvet:ignore errflow on the plain defer is the audited shape.
func CloseCapture(errp *error, c io.Closer) {
	if cerr := c.Close(); cerr != nil && *errp == nil {
		*errp = cerr
	}
}

// FirstLine reduces an error to its first non-empty line, keeping the
// one-line contract even for wrapped multi-line errors.
func FirstLine(err error) string {
	return firstLine(err.Error())
}

func firstLine(s string) string {
	for _, line := range strings.Split(s, "\n") {
		if line = strings.TrimSpace(line); line != "" {
			return line
		}
	}
	return "unknown error"
}
