// Package cli is the shared entrypoint shim for every command in
// cmd/*: it runs a testable run(args, out) function and converts its
// error into the repository-wide CLI failure contract — a clear
// one-line message on stderr and exit code 2, never a panic and never
// a bare exit 1 (so scripts can distinguish "bad invocation or input"
// from a crash).
package cli

import (
	"fmt"
	"io"
	"os"
	"strings"
)

// ExitUsage is the exit code for every CLI failure: invalid flags,
// unreadable inputs, impossible parameters. (0 remains success; any
// other code would indicate a crash, which the one-line contract
// forbids.)
const ExitUsage = 2

// Main runs a command body and applies the failure contract. The body
// gets os.Args[1:] and os.Stdout; on error, the first line of the
// error is printed as "name: message" to stderr and the process exits
// with ExitUsage.
func Main(name string, run func(args []string, out io.Writer) error) {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintf(os.Stderr, "%s: %s\n", name, FirstLine(err))
		os.Exit(ExitUsage)
	}
}

// FirstLine reduces an error to its first non-empty line, keeping the
// one-line contract even for wrapped multi-line errors.
func FirstLine(err error) string {
	for _, line := range strings.Split(err.Error(), "\n") {
		if line = strings.TrimSpace(line); line != "" {
			return line
		}
	}
	return "unknown error"
}
