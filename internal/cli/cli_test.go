package cli

import (
	"errors"
	"fmt"
	"io"
	"os"
	"os/exec"
	"strings"
	"testing"
)

func TestFirstLine(t *testing.T) {
	cases := map[string]string{
		"plain":              "plain",
		"first\nsecond":      "first",
		"\n\n  padded \nend": "padded",
		"   \n\t\n":          "unknown error",
	}
	for in, want := range cases {
		if got := FirstLine(errors.New(in)); got != want {
			t.Errorf("FirstLine(%q) = %q, want %q", in, got, want)
		}
	}
}

// TestMainExitCode re-executes the test binary so Main's os.Exit is
// observable: a failing run must exit 2 with a one-line stderr message,
// a succeeding run must exit 0.
func TestMainExitCode(t *testing.T) {
	switch os.Getenv("CLI_TEST_CHILD") {
	case "fail":
		Main("boomtool", func([]string, io.Writer) error {
			return fmt.Errorf("kaput: bad input\nsecond line that must not print")
		})
		return
	case "ok":
		Main("oktool", func([]string, io.Writer) error { return nil })
		return
	case "panic":
		Main("crashtool", func([]string, io.Writer) error {
			panic(fmt.Errorf("nil deref in the solver\nwith a second line"))
		})
		return
	}

	run := func(mode string) (int, string) {
		cmd := exec.Command(os.Args[0], "-test.run", "TestMainExitCode")
		cmd.Env = append(os.Environ(), "CLI_TEST_CHILD="+mode)
		var stderr strings.Builder
		cmd.Stderr = &stderr
		err := cmd.Run()
		code := 0
		var exit *exec.ExitError
		if errors.As(err, &exit) {
			code = exit.ExitCode()
		} else if err != nil {
			t.Fatal(err)
		}
		return code, stderr.String()
	}

	code, stderr := run("fail")
	if code != ExitUsage {
		t.Errorf("failing tool exited %d, want %d", code, ExitUsage)
	}
	if want := "boomtool: kaput: bad input\n"; stderr != want {
		t.Errorf("stderr = %q, want %q", stderr, want)
	}

	code, stderr = run("ok")
	if code != 0 || stderr != "" {
		t.Errorf("succeeding tool exited %d with stderr %q", code, stderr)
	}

	// A panicking command must still honor the contract: exactly one
	// stderr line, no stack trace, and the distinct internal-error code.
	code, stderr = run("panic")
	if code != ExitInternal {
		t.Errorf("panicking tool exited %d, want %d", code, ExitInternal)
	}
	if want := "crashtool: internal error: nil deref in the solver\n"; stderr != want {
		t.Errorf("stderr = %q, want %q", stderr, want)
	}
	if strings.Contains(stderr, "goroutine") {
		t.Errorf("stack trace leaked to the user:\n%s", stderr)
	}
}
