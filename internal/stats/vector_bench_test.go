package stats

import (
	"fmt"
	"testing"
)

// benchRows is the rotation window of benchVectors. Power of two so
// the hot-loop index wrap is a mask.
const benchRows = 32

// benchVectors returns benchRows deterministic pseudo-random vectors of
// length n (no RNG dependency so the benchmark input is fixed forever).
// Benchmarks rotate through them so the compiler cannot hoist an
// inlined call out of the measurement loop.
func benchVectors(n int) [][]float64 {
	rows := make([][]float64, benchRows)
	for r := range rows {
		v := make([]float64, n)
		for i := range v {
			v[i] = float64(((r*8191+i)*2654435761)%1000)/1000 - 0.5
		}
		rows[r] = v
	}
	return rows
}

var benchSink float64

// BenchmarkDot locks in the 4-wide unrolled inner product. Dim 8
// matches the Adult feature space; 2, 3 and 16 cover the small-dim
// fast paths and the first all-unrolled size; 64 and 301 exercise the
// scalar tail and longer doc2vec-style embeddings.
func BenchmarkDot(b *testing.B) {
	for _, n := range []int{2, 3, 8, 16, 64, 301} {
		xs, ys := benchVectors(n), benchVectors(n)
		b.Run(fmt.Sprintf("dim=%d", n), func(b *testing.B) {
			s := 0.0
			for i := 0; i < b.N; i++ {
				s += Dot(xs[i&(benchRows-1)], ys[i&(benchRows-1)])
			}
			benchSink = s
		})
	}
}

// BenchmarkSqDist locks in the 4-wide unrolled squared distance.
func BenchmarkSqDist(b *testing.B) {
	for _, n := range []int{2, 3, 8, 16, 64, 301} {
		xs, ys := benchVectors(n), benchVectors(n)
		b.Run(fmt.Sprintf("dim=%d", n), func(b *testing.B) {
			s := 0.0
			for i := 0; i < b.N; i++ {
				s += SqDist(xs[i&(benchRows-1)], ys[i&(benchRows-1)])
			}
			benchSink = s
		})
	}
}
