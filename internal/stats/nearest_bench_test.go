package stats

import (
	"fmt"
	"testing"
)

// BenchmarkNearest sweeps k for the nearest-centroid kernels on dim-8
// (Adult-shaped) rows: the naive SqDist scan, the fused norm-pruned
// single-row kernel, the cache-blocked batch kernel, and the
// sorted-neighbor indexed walk (the serving kernel). The
// pruned-vs-naive gap is the direct measure of the pruning + fusion
// win and must grow with k (see EXPERIMENTS.md).
func BenchmarkNearest(b *testing.B) {
	const dim = 8
	rows := genRows(42, 512, dim)
	for _, k := range []int{5, 15, 50, 150} {
		centroids := genRows(7, k, dim)
		norms := CentroidNorms(centroids)
		b.Run(fmt.Sprintf("kernel=naive/k=%d", k), func(b *testing.B) {
			b.SetBytes(int64(len(rows)))
			for i := 0; i < b.N; i++ {
				for _, x := range rows {
					c, _ := NearestCentroidScan(x, centroids)
					benchSink = float64(c)
				}
			}
		})
		b.Run(fmt.Sprintf("kernel=fused/k=%d", k), func(b *testing.B) {
			b.SetBytes(int64(len(rows)))
			for i := 0; i < b.N; i++ {
				for _, x := range rows {
					c, _ := NearestCentroid(x, centroids, norms)
					benchSink = float64(c)
				}
			}
		})
		out := make([]int, len(rows))
		b.Run(fmt.Sprintf("kernel=batch/k=%d", k), func(b *testing.B) {
			b.SetBytes(int64(len(rows)))
			for i := 0; i < b.N; i++ {
				NearestCentroids(rows, centroids, norms, out, nil)
			}
		})
		b.Run(fmt.Sprintf("kernel=indexed/k=%d", k), func(b *testing.B) {
			ix := NewCentroidIndex(centroids)
			sc := ix.NewScratch()
			b.SetBytes(int64(len(rows)))
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				for _, x := range rows {
					c, _ := ix.Nearest(x, sc)
					benchSink = float64(c)
				}
			}
		})
	}
}
