// Package stats provides deterministic random-number utilities, sampling
// routines and descriptive statistics used across the fairclust repository.
//
// All randomized components in this repository (dataset generators,
// clustering initializations, embedding training) accept an explicit seed
// and derive their randomness from an *RNG created here, so every
// experiment is reproducible bit-for-bit given the same seed.
package stats

import (
	"math"
	"math/rand"
)

// RNG wraps math/rand.Rand with convenience methods used by the
// generators and clustering algorithms. It is not safe for concurrent
// use; create one RNG per goroutine.
type RNG struct {
	r *rand.Rand
	// zipf caches the cumulative Zipf weight table per (n, s): long-
	// tailed generators draw from the same distribution thousands of
	// times, and rebuilding the O(n) weight vector per draw made those
	// loops quadratic.
	zipf map[zipfKey]*Cumulative
}

type zipfKey struct {
	n int
	s float64
}

// NewRNG returns a deterministic RNG seeded with seed.
func NewRNG(seed int64) *RNG {
	//fairvet:ignore nodeterminism -- this IS the sanctioned seeded wrapper every other package must use
	return &RNG{r: rand.New(rand.NewSource(seed))}
}

// Int63 returns a non-negative pseudo-random 63-bit integer.
func (g *RNG) Int63() int64 { return g.r.Int63() }

// Intn returns a uniform pseudo-random int in [0, n). It panics if n <= 0.
func (g *RNG) Intn(n int) int { return g.r.Intn(n) }

// Float64 returns a uniform pseudo-random float64 in [0, 1).
func (g *RNG) Float64() float64 { return g.r.Float64() }

// NormFloat64 returns a standard-normal pseudo-random float64.
func (g *RNG) NormFloat64() float64 { return g.r.NormFloat64() }

// Gaussian returns a normal variate with the given mean and standard
// deviation.
func (g *RNG) Gaussian(mean, std float64) float64 {
	return mean + std*g.r.NormFloat64()
}

// Perm returns a pseudo-random permutation of [0, n).
func (g *RNG) Perm(n int) []int { return g.r.Perm(n) }

// Shuffle pseudo-randomizes the order of elements using swap.
func (g *RNG) Shuffle(n int, swap func(i, j int)) { g.r.Shuffle(n, swap) }

// Fork returns a new RNG deterministically derived from this one.
// Forking lets independent components (e.g. one RNG per experiment
// repetition) consume randomness without interleaving their streams.
func (g *RNG) Fork() *RNG { return NewRNG(g.r.Int63()) }

// Bernoulli returns true with probability p.
func (g *RNG) Bernoulli(p float64) bool { return g.r.Float64() < p }

// Categorical draws an index from the (not necessarily normalized)
// non-negative weight vector w. It panics if w is empty or sums to a
// non-positive value.
func (g *RNG) Categorical(w []float64) int {
	if len(w) == 0 {
		panic("stats: Categorical with empty weights")
	}
	total := 0.0
	for _, v := range w {
		if v < 0 {
			panic("stats: Categorical with negative weight")
		}
		total += v
	}
	if total <= 0 {
		panic("stats: Categorical with non-positive total weight")
	}
	u := g.r.Float64() * total
	acc := 0.0
	for i, v := range w {
		acc += v
		if u < acc {
			return i
		}
	}
	return len(w) - 1
}

// SampleWithoutReplacement returns m distinct indices drawn uniformly
// from [0, n). It panics if m > n or m < 0.
func (g *RNG) SampleWithoutReplacement(n, m int) []int {
	if m < 0 || m > n {
		panic("stats: SampleWithoutReplacement with m out of range")
	}
	// Partial Fisher-Yates: O(n) memory, O(m) swaps.
	idx := make([]int, n)
	for i := range idx {
		idx[i] = i
	}
	for i := 0; i < m; i++ {
		j := i + g.r.Intn(n-i)
		idx[i], idx[j] = idx[j], idx[i]
	}
	return idx[:m]
}

// Zipf returns a draw from a Zipf-like distribution over [0, n) with
// exponent s >= 1. Used to model long-tailed categorical attributes such
// as country of origin.
//
// The cumulative weight table is cached per (n, s) on the RNG and each
// draw is a binary search, so a sequence of m draws costs O(n + m·log n)
// instead of the O(n·m) of rebuilding ZipfWeights every call. Draws are
// bit-identical to the historical Categorical(ZipfWeights(n, s)) path.
func (g *RNG) Zipf(n int, s float64) int {
	key := zipfKey{n: n, s: s}
	cum := g.zipf[key]
	if cum == nil {
		cum = NewCumulative(ZipfWeights(n, s))
		if g.zipf == nil {
			g.zipf = map[zipfKey]*Cumulative{}
		}
		g.zipf[key] = cum
	}
	return cum.Sample(g)
}

// Cumulative is a prefix-sum table over a non-negative weight vector,
// supporting O(log n) categorical draws. It replaces repeated
// RNG.Categorical calls over the same weights (O(n) per draw): build
// once, then Sample per draw. Samples are bit-identical to Categorical
// on the same weights because the prefix sums accumulate in the same
// left-to-right order Categorical scans.
type Cumulative struct {
	prefix []float64
}

// NewCumulative validates w and builds the prefix-sum table. It panics
// on empty, negative or non-positive-total weights — the same contract
// as Categorical, checked once instead of per draw.
func NewCumulative(w []float64) *Cumulative {
	if len(w) == 0 {
		panic("stats: Cumulative with empty weights")
	}
	prefix := make([]float64, len(w))
	acc := 0.0
	for i, v := range w {
		if v < 0 || math.IsNaN(v) {
			panic("stats: Cumulative with negative weight")
		}
		acc += v
		prefix[i] = acc
	}
	if !(acc > 0) || math.IsInf(acc, 0) {
		panic("stats: Cumulative with non-positive total weight")
	}
	return &Cumulative{prefix: prefix}
}

// Total returns the summed weight.
func (c *Cumulative) Total() float64 { return c.prefix[len(c.prefix)-1] }

// Sample draws an index with probability proportional to its weight,
// consuming exactly one Float64 from g (like Categorical).
func (c *Cumulative) Sample(g *RNG) int {
	u := g.r.Float64() * c.Total()
	// Smallest i with prefix[i] > u — Categorical's `u < acc` rule.
	lo, hi := 0, len(c.prefix)-1
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if c.prefix[mid] > u {
			hi = mid
		} else {
			lo = mid + 1
		}
	}
	return lo
}

// ZipfWeights returns the (unnormalized) Zipf weight vector 1/rank^s for
// ranks 1..n.
func ZipfWeights(n int, s float64) []float64 {
	w := make([]float64, n)
	for i := range w {
		w[i] = 1.0 / math.Pow(float64(i+1), s)
	}
	return w
}
