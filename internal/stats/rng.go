// Package stats provides deterministic random-number utilities, sampling
// routines and descriptive statistics used across the fairclust repository.
//
// All randomized components in this repository (dataset generators,
// clustering initializations, embedding training) accept an explicit seed
// and derive their randomness from an *RNG created here, so every
// experiment is reproducible bit-for-bit given the same seed.
package stats

import (
	"math"
	"math/rand"
)

// RNG wraps math/rand.Rand with convenience methods used by the
// generators and clustering algorithms. It is not safe for concurrent
// use; create one RNG per goroutine.
type RNG struct {
	r *rand.Rand
}

// NewRNG returns a deterministic RNG seeded with seed.
func NewRNG(seed int64) *RNG {
	return &RNG{r: rand.New(rand.NewSource(seed))}
}

// Int63 returns a non-negative pseudo-random 63-bit integer.
func (g *RNG) Int63() int64 { return g.r.Int63() }

// Intn returns a uniform pseudo-random int in [0, n). It panics if n <= 0.
func (g *RNG) Intn(n int) int { return g.r.Intn(n) }

// Float64 returns a uniform pseudo-random float64 in [0, 1).
func (g *RNG) Float64() float64 { return g.r.Float64() }

// NormFloat64 returns a standard-normal pseudo-random float64.
func (g *RNG) NormFloat64() float64 { return g.r.NormFloat64() }

// Gaussian returns a normal variate with the given mean and standard
// deviation.
func (g *RNG) Gaussian(mean, std float64) float64 {
	return mean + std*g.r.NormFloat64()
}

// Perm returns a pseudo-random permutation of [0, n).
func (g *RNG) Perm(n int) []int { return g.r.Perm(n) }

// Shuffle pseudo-randomizes the order of elements using swap.
func (g *RNG) Shuffle(n int, swap func(i, j int)) { g.r.Shuffle(n, swap) }

// Fork returns a new RNG deterministically derived from this one.
// Forking lets independent components (e.g. one RNG per experiment
// repetition) consume randomness without interleaving their streams.
func (g *RNG) Fork() *RNG { return NewRNG(g.r.Int63()) }

// Bernoulli returns true with probability p.
func (g *RNG) Bernoulli(p float64) bool { return g.r.Float64() < p }

// Categorical draws an index from the (not necessarily normalized)
// non-negative weight vector w. It panics if w is empty or sums to a
// non-positive value.
func (g *RNG) Categorical(w []float64) int {
	if len(w) == 0 {
		panic("stats: Categorical with empty weights")
	}
	total := 0.0
	for _, v := range w {
		if v < 0 {
			panic("stats: Categorical with negative weight")
		}
		total += v
	}
	if total <= 0 {
		panic("stats: Categorical with non-positive total weight")
	}
	u := g.r.Float64() * total
	acc := 0.0
	for i, v := range w {
		acc += v
		if u < acc {
			return i
		}
	}
	return len(w) - 1
}

// SampleWithoutReplacement returns m distinct indices drawn uniformly
// from [0, n). It panics if m > n or m < 0.
func (g *RNG) SampleWithoutReplacement(n, m int) []int {
	if m < 0 || m > n {
		panic("stats: SampleWithoutReplacement with m out of range")
	}
	// Partial Fisher-Yates: O(n) memory, O(m) swaps.
	idx := make([]int, n)
	for i := range idx {
		idx[i] = i
	}
	for i := 0; i < m; i++ {
		j := i + g.r.Intn(n-i)
		idx[i], idx[j] = idx[j], idx[i]
	}
	return idx[:m]
}

// Zipf returns a draw from a Zipf-like distribution over [0, n) with
// exponent s >= 1. Used to model long-tailed categorical attributes such
// as country of origin.
func (g *RNG) Zipf(n int, s float64) int {
	w := ZipfWeights(n, s)
	return g.Categorical(w)
}

// ZipfWeights returns the (unnormalized) Zipf weight vector 1/rank^s for
// ranks 1..n.
func ZipfWeights(n int, s float64) []float64 {
	w := make([]float64, n)
	for i := range w {
		w[i] = 1.0 / math.Pow(float64(i+1), s)
	}
	return w
}
