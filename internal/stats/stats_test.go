package stats

import (
	"math"
	"testing"
	"testing/quick"
)

func TestRNGDeterminism(t *testing.T) {
	a, b := NewRNG(42), NewRNG(42)
	for i := 0; i < 100; i++ {
		if a.Float64() != b.Float64() {
			t.Fatalf("streams diverged at %d", i)
		}
	}
}

func TestForkIndependence(t *testing.T) {
	g := NewRNG(1)
	f1 := g.Fork()
	f2 := g.Fork()
	same := true
	for i := 0; i < 20; i++ {
		if f1.Float64() != f2.Float64() {
			same = false
			break
		}
	}
	if same {
		t.Error("forked RNGs produced identical streams")
	}
}

func TestCategoricalDistribution(t *testing.T) {
	g := NewRNG(7)
	w := []float64{1, 3, 6}
	counts := make([]float64, 3)
	const n = 60000
	for i := 0; i < n; i++ {
		counts[g.Categorical(w)]++
	}
	for i, want := range []float64{0.1, 0.3, 0.6} {
		got := counts[i] / n
		if math.Abs(got-want) > 0.02 {
			t.Errorf("value %d frequency %v, want ~%v", i, got, want)
		}
	}
}

func TestCategoricalPanics(t *testing.T) {
	g := NewRNG(1)
	for _, w := range [][]float64{{}, {0, 0}, {-1, 2}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("Categorical(%v) did not panic", w)
				}
			}()
			g.Categorical(w)
		}()
	}
}

func TestSampleWithoutReplacement(t *testing.T) {
	g := NewRNG(3)
	got := g.SampleWithoutReplacement(10, 10)
	seen := make(map[int]bool)
	for _, v := range got {
		if v < 0 || v >= 10 {
			t.Fatalf("out of range sample %d", v)
		}
		if seen[v] {
			t.Fatalf("duplicate sample %d", v)
		}
		seen[v] = true
	}
	if len(g.SampleWithoutReplacement(10, 0)) != 0 {
		t.Error("m=0 should give empty sample")
	}
	func() {
		defer func() {
			if recover() == nil {
				t.Error("m>n did not panic")
			}
		}()
		g.SampleWithoutReplacement(3, 4)
	}()
}

func TestZipfWeightsDecreasing(t *testing.T) {
	w := ZipfWeights(10, 1.5)
	for i := 1; i < len(w); i++ {
		if w[i] >= w[i-1] {
			t.Errorf("weights not strictly decreasing at %d", i)
		}
	}
}

func TestDescriptive(t *testing.T) {
	xs := []float64{2, 4, 4, 4, 5, 5, 7, 9}
	if got := Mean(xs); got != 5 {
		t.Errorf("Mean = %v, want 5", got)
	}
	if got := StdDev(xs); got != 2 {
		t.Errorf("StdDev = %v, want 2", got)
	}
	if got := Median(xs); got != 4.5 {
		t.Errorf("Median = %v, want 4.5", got)
	}
	if got := Min(xs); got != 2 {
		t.Errorf("Min = %v", got)
	}
	if got := Max(xs); got != 9 {
		t.Errorf("Max = %v", got)
	}
	if got := Median([]float64{3, 1, 2}); got != 2 {
		t.Errorf("odd Median = %v, want 2", got)
	}
}

func TestMeanStdMatchesTwoPass(t *testing.T) {
	f := func(xs []float64) bool {
		for _, x := range xs {
			if math.IsNaN(x) || math.IsInf(x, 0) || math.Abs(x) > 1e6 {
				return true // skip pathological inputs
			}
		}
		m, s := MeanStd(xs)
		return math.Abs(m-Mean(xs)) <= 1e-6*(1+math.Abs(m)) &&
			math.Abs(s-StdDev(xs)) <= 1e-4*(1+s)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestNormalize(t *testing.T) {
	w := Normalize([]float64{2, 2, 4})
	want := []float64{0.25, 0.25, 0.5}
	for i := range w {
		if math.Abs(w[i]-want[i]) > 1e-15 {
			t.Errorf("Normalize[%d] = %v, want %v", i, w[i], want[i])
		}
	}
	z := Normalize([]float64{0, 0})
	if z[0] != 0.5 || z[1] != 0.5 {
		t.Errorf("zero vector should normalize to uniform, got %v", z)
	}
}

func TestEntropyAndKL(t *testing.T) {
	if got := Entropy([]float64{0.5, 0.5}); math.Abs(got-math.Ln2) > 1e-12 {
		t.Errorf("Entropy(uniform2) = %v, want ln2", got)
	}
	if got := Entropy([]float64{1, 0}); got != 0 {
		t.Errorf("Entropy(point mass) = %v, want 0", got)
	}
	if got := KLDivergence([]float64{0.5, 0.5}, []float64{0.5, 0.5}); got != 0 {
		t.Errorf("KL(p,p) = %v, want 0", got)
	}
	if got := KLDivergence([]float64{1, 0}, []float64{0, 1}); !math.IsInf(got, 1) {
		t.Errorf("KL with missing support = %v, want +Inf", got)
	}
	// Gibbs: KL >= 0.
	f := func(a, b, c, d float64) bool {
		p := Normalize([]float64{math.Abs(a) + 0.01, math.Abs(b) + 0.01})
		q := Normalize([]float64{math.Abs(c) + 0.01, math.Abs(d) + 0.01})
		return KLDivergence(p, q) >= -1e-12
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestVectorOps(t *testing.T) {
	a := []float64{1, 2, 3}
	b := []float64{4, 5, 6}
	if got := Dot(a, b); got != 32 {
		t.Errorf("Dot = %v, want 32", got)
	}
	if got := SqDist(a, b); got != 27 {
		t.Errorf("SqDist = %v, want 27", got)
	}
	if got := Dist(a, b); math.Abs(got-math.Sqrt(27)) > 1e-15 {
		t.Errorf("Dist = %v", got)
	}
	c := Clone(a)
	AddTo(c, b)
	if c[0] != 5 || c[2] != 9 {
		t.Errorf("AddTo = %v", c)
	}
	SubFrom(c, b)
	for i := range c {
		if c[i] != a[i] {
			t.Errorf("SubFrom did not invert AddTo: %v", c)
		}
	}
	Scale(c, 2)
	if c[1] != 4 {
		t.Errorf("Scale = %v", c)
	}
	m := MeanVector([][]float64{{0, 0}, {2, 4}})
	if m[0] != 1 || m[1] != 2 {
		t.Errorf("MeanVector = %v", m)
	}
}

func TestVectorPanicsOnMismatch(t *testing.T) {
	for name, f := range map[string]func(){
		"Dot":     func() { Dot([]float64{1}, []float64{1, 2}) },
		"SqDist":  func() { SqDist([]float64{1}, []float64{1, 2}) },
		"AddTo":   func() { AddTo([]float64{1}, []float64{1, 2}) },
		"SubFrom": func() { SubFrom([]float64{1}, []float64{1, 2}) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s did not panic on mismatch", name)
				}
			}()
			f()
		}()
	}
}

// Property: SqDist is symmetric, non-negative, zero iff equal inputs.
func TestSqDistMetricProperties(t *testing.T) {
	f := func(a, b [4]float64) bool {
		av, bv := a[:], b[:]
		for _, x := range append(Clone(av), bv...) {
			if math.IsNaN(x) || math.IsInf(x, 0) {
				return true
			}
		}
		d1, d2 := SqDist(av, bv), SqDist(bv, av)
		if d1 != d2 || d1 < 0 {
			return false
		}
		return SqDist(av, av) == 0
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
