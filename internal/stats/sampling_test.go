package stats

import (
	"testing"
)

// TestCumulativeMatchesCategorical: Sample must reproduce Categorical's
// draws bit-for-bit on the same RNG stream — the property that lets
// coreset sampling swap the O(n) scan for a binary search without
// disturbing any pinned output.
func TestCumulativeMatchesCategorical(t *testing.T) {
	weights := [][]float64{
		{1},
		{0.2, 0.8},
		{0, 0, 5, 0},
		{1, 2, 3, 4, 5, 6, 7, 8},
		{1e-12, 1, 1e-12},
	}
	for wi, w := range weights {
		a := NewRNG(int64(wi) + 7)
		b := NewRNG(int64(wi) + 7)
		cum := NewCumulative(w)
		for draw := 0; draw < 500; draw++ {
			want := a.Categorical(w)
			got := cum.Sample(b)
			if got != want {
				t.Fatalf("weights %v draw %d: Sample=%d Categorical=%d", w, draw, got, want)
			}
		}
	}
}

func TestCumulativeValidation(t *testing.T) {
	for _, w := range [][]float64{nil, {}, {0, 0}, {1, -1}} {
		w := w
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("NewCumulative(%v) did not panic", w)
				}
			}()
			NewCumulative(w)
		}()
	}
}

// TestZipfCached: the cached Zipf path must draw the same stream as the
// historical rebuild-per-call path, and interleaving (n, s) pairs must
// not cross-contaminate the caches.
func TestZipfCached(t *testing.T) {
	g := NewRNG(3)
	ref := NewRNG(3)
	for i := 0; i < 300; i++ {
		n, s := 40, 1.1
		if i%3 == 1 {
			n, s = 7, 2.0
		}
		want := ref.Categorical(ZipfWeights(n, s))
		got := g.Zipf(n, s)
		if got != want {
			t.Fatalf("draw %d (n=%d s=%v): Zipf=%d want %d", i, n, s, got, want)
		}
		if got < 0 || got >= n {
			t.Fatalf("draw %d out of range: %d", i, got)
		}
	}
}

// BenchmarkZipf measures the long-tailed draw loop the Adult generator
// leans on: n draws from a fixed (n, s) table.
func BenchmarkZipf(b *testing.B) {
	g := NewRNG(1)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		g.Zipf(1000, 1.1)
	}
}

// BenchmarkZipfUncached is the historical per-draw rebuild, kept as the
// comparison baseline for BenchmarkZipf.
func BenchmarkZipfUncached(b *testing.B) {
	g := NewRNG(1)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		g.Categorical(ZipfWeights(1000, 1.1))
	}
}

// BenchmarkCumulativeSample isolates one prefix-table draw (binary
// search) against one Categorical scan at the same size.
func BenchmarkCumulativeSample(b *testing.B) {
	w := ZipfWeights(4096, 1.2)
	cum := NewCumulative(w)
	g := NewRNG(1)
	b.Run("cumulative", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			cum.Sample(g)
		}
	})
	b.Run("categorical", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			g.Categorical(w)
		}
	})
}
