package stats

//fairvet:floateq n==0 is an exact emptiness check (n = float64(len(xs)))

import (
	"math"
	"sort"
)

// Mean returns the arithmetic mean of xs, or 0 for an empty slice.
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	s := 0.0
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

// Variance returns the population variance of xs (dividing by n), or 0
// for slices with fewer than one element.
func Variance(xs []float64) float64 {
	n := len(xs)
	if n == 0 {
		return 0
	}
	m := Mean(xs)
	s := 0.0
	for _, x := range xs {
		d := x - m
		s += d * d
	}
	return s / float64(n)
}

// StdDev returns the population standard deviation of xs.
func StdDev(xs []float64) float64 { return math.Sqrt(Variance(xs)) }

// Min returns the minimum of xs. It panics on an empty slice.
func Min(xs []float64) float64 {
	if len(xs) == 0 {
		panic("stats: Min of empty slice")
	}
	m := xs[0]
	for _, x := range xs[1:] {
		if x < m {
			m = x
		}
	}
	return m
}

// Max returns the maximum of xs. It panics on an empty slice.
func Max(xs []float64) float64 {
	if len(xs) == 0 {
		panic("stats: Max of empty slice")
	}
	m := xs[0]
	for _, x := range xs[1:] {
		if x > m {
			m = x
		}
	}
	return m
}

// Sum returns the sum of xs.
func Sum(xs []float64) float64 {
	s := 0.0
	for _, x := range xs {
		s += x
	}
	return s
}

// Median returns the median of xs without mutating it. It panics on an
// empty slice.
func Median(xs []float64) float64 {
	n := len(xs)
	if n == 0 {
		panic("stats: Median of empty slice")
	}
	cp := append([]float64(nil), xs...)
	sort.Float64s(cp)
	if n%2 == 1 {
		return cp[n/2]
	}
	return 0.5 * (cp[n/2-1] + cp[n/2])
}

// Normalize scales a non-negative weight vector in place so it sums to
// one, returning it. A zero vector becomes uniform.
func Normalize(w []float64) []float64 {
	total := Sum(w)
	if total <= 0 {
		u := 1.0 / float64(len(w))
		for i := range w {
			w[i] = u
		}
		return w
	}
	for i := range w {
		w[i] /= total
	}
	return w
}

// Entropy returns the Shannon entropy (nats) of a probability vector p.
// Zero entries contribute zero.
func Entropy(p []float64) float64 {
	h := 0.0
	for _, v := range p {
		if v > 0 {
			h -= v * math.Log(v)
		}
	}
	return h
}

// KLDivergence returns KL(p || q) in nats. Entries where p is 0
// contribute 0; entries where p > 0 but q == 0 yield +Inf.
func KLDivergence(p, q []float64) float64 {
	if len(p) != len(q) {
		panic("stats: KLDivergence length mismatch")
	}
	d := 0.0
	for i := range p {
		if p[i] <= 0 {
			continue
		}
		if q[i] <= 0 {
			return math.Inf(1)
		}
		d += p[i] * math.Log(p[i]/q[i])
	}
	return d
}

// MeanStd returns the mean and population standard deviation of xs in a
// single pass.
func MeanStd(xs []float64) (mean, std float64) {
	n := float64(len(xs))
	if n == 0 {
		return 0, 0
	}
	s, sq := 0.0, 0.0
	for _, x := range xs {
		s += x
		sq += x * x
	}
	mean = s / n
	v := sq/n - mean*mean
	if v < 0 {
		v = 0 // guard tiny negative from floating-point cancellation
	}
	return mean, math.Sqrt(v)
}
