package stats

//fairvet:floateq the d==best and row!=row comparisons ARE the determinism contract: exact ties break to the lowest index, pinned bit-for-bit by the kernel parity suites

import "sort"

// Nearest-centroid kernels: the hot path of both Lloyd sweeps
// (internal/kmeans) and every serving request (internal/serve).
//
// The fused form rewrites the squared Euclidean distance as
//
//	d²(x, c) = ‖x‖² − 2·x·c + ‖c‖²
//
// so that, with ‖c‖² precomputed once per centroid set (CentroidNorms)
// and ‖x‖² once per row, scoring one candidate is a single dot product
// plus two adds — ~2·dim flops instead of the 3·dim of the
// subtract-square scan — and admits a triangle-inequality prune: by
// Cauchy-Schwarz, d²(x, c) ≥ (‖x‖ − ‖c‖)², so a candidate whose norm
// gap alone already exceeds the best distance found so far cannot win
// and its dot product is skipped entirely. The prune test is evaluated
// in squared form (no square roots in the loop): for g = ‖x‖² + ‖c‖² −
// best, g > 0 ∧ g² > 4·‖x‖²·‖c‖² implies (‖x‖ − ‖c‖)² > best.
//
// # Tie-break and exactness contract
//
// Candidates are scanned in index order and the best index is replaced
// only on a strict improvement, so ties keep the lowest centroid index
// — exactly the sequential-scan rule of model.AssignDist and
// kmeans. The prune test carries a relative slack (normPruneSlack) so
// that rounding error can only ever make it prune LESS: a candidate is
// skipped only when its distance provably exceeds the incumbent with
// margin, which is precisely the "no update" branch of the plain scan.
// NearestCentroid is therefore bit-identical to an unpruned fused scan
// on every input — including duplicate centroids and exactly
// equidistant rows (pinned by TestNearestCentroidPruneTransparent).
//
// Fused distance VALUES differ from SqDist by a few ulps (different
// rounding order), so the fused winner can in principle differ from
// the SqDist winner when two non-identical centroids are equidistant
// to within that rounding noise; bit-identical duplicate centroids tie
// exactly under both formulas and resolve to the same (lowest) index.
// The fused-vs-naive assignment parity on real data is pinned across
// k/dim/seed grids by TestNearestCentroidMatchesNaiveScan.

// normPruneSlack inflates the right-hand side of the norm-gap prune
// test so floating-point rounding can never prune a candidate that the
// exact comparison would keep. 1e-9 relative is ~6 orders of magnitude
// above the accumulated rounding of the few flops involved.
const normPruneSlack = 1 + 1e-9

// pruneMinK disables the norm-gap test below this many centroids: with
// a handful of candidates the test's ~5 flops per candidate cost more
// than the dot products they occasionally save. Skipping a transparent
// prune cannot change results, so the switch is invisible.
const pruneMinK = 16

// nearestBlock is the row-block size of the cache-blocked batch kernel:
// per-row state (‖x‖², running best) lives in fixed stack arrays while
// one centroid at a time is streamed across the whole block, so the
// centroid's cache lines are reused nearestBlock times.
const nearestBlock = 32

// nearestBlockMinFloats engages the cache-blocked centroid-major order
// only when the centroid matrix (k·dim floats) outgrows comfortable L1
// residency; below that, streaming centroids per row is free and the
// per-row register form is faster than blocked array bookkeeping.
const nearestBlockMinFloats = 8192

// CentroidNorms returns the squared Euclidean norm ‖c‖² of every
// centroid — the per-centroid constant of the fused kernel. Callers
// compute it once per centroid set (per model install in serving, per
// frozen iteration in training), never per batch.
func CentroidNorms(centroids [][]float64) []float64 {
	norms := make([]float64, len(centroids))
	for c, cen := range centroids {
		norms[c] = Dot(cen, cen)
	}
	return norms
}

// NearestCentroid returns the index of the centroid nearest to x under
// squared Euclidean distance, and that distance, scoring via the fused
// norm form with norm-gap pruning. norms must be CentroidNorms of
// exactly these centroids; centroids must be non-empty and every row
// must match x's length (enforced by Dot). Ties keep the lowest index.
//
// The returned distance is the fused value clamped at zero (the fused
// form can round a few ulps below zero when x sits on a centroid).
//
//fairvet:hotpath
func NearestCentroid(x []float64, centroids [][]float64, norms []float64) (int, float64) {
	xn := Dot(x, x)
	best := 0
	bestD := xn - 2*Dot(x, centroids[0]) + norms[0]
	if len(centroids) < pruneMinK {
		for c := 1; c < len(centroids); c++ {
			if d := xn - 2*Dot(x, centroids[c]) + norms[c]; d < bestD {
				best, bestD = c, d
			}
		}
	} else {
		for c := 1; c < len(centroids); c++ {
			cn := norms[c]
			if g := xn + cn - bestD; g > 0 && g*g > 4*xn*cn*normPruneSlack {
				continue // (‖x‖−‖c‖)² > bestD with margin: cannot win
			}
			if d := xn - 2*Dot(x, centroids[c]) + cn; d < bestD {
				best, bestD = c, d
			}
		}
	}
	if bestD < 0 {
		bestD = 0
	}
	return best, bestD
}

// NearestCentroids labels rows[i] into out[i] (and its distance into
// dists[i] when dists is non-nil). When the centroid matrix is small
// enough to live in L1 it scores row-major via NearestCentroid;
// beyond that it switches to cache-blocked row blocks: per block,
// ‖x‖² and the running best are computed once into stack arrays, then
// each centroid is streamed across the whole block so its cache lines
// are reused nearestBlock times. The candidate order and arithmetic
// per row are identical either way (per-row state never crosses
// rows), so results are independent of the blocking.
//
//fairvet:hotpath
func NearestCentroids(rows [][]float64, centroids [][]float64, norms []float64, out []int, dists []float64) {
	if len(centroids) == 0 {
		return
	}
	if len(centroids)*len(centroids[0]) <= nearestBlockMinFloats {
		for i, x := range rows {
			c, d := NearestCentroid(x, centroids, norms)
			out[i] = c
			if dists != nil {
				dists[i] = d
			}
		}
		return
	}
	var xn, bestD [nearestBlock]float64
	var best [nearestBlock]int
	for base := 0; base < len(rows); base += nearestBlock {
		m := len(rows) - base
		if m > nearestBlock {
			m = nearestBlock
		}
		blk := rows[base : base+m]
		for j, x := range blk {
			xn[j] = Dot(x, x)
			bestD[j] = xn[j] - 2*Dot(x, centroids[0]) + norms[0]
			best[j] = 0
		}
		for c := 1; c < len(centroids); c++ {
			cen := centroids[c]
			cn := norms[c]
			for j, x := range blk {
				if g := xn[j] + cn - bestD[j]; g > 0 && g*g > 4*xn[j]*cn*normPruneSlack {
					continue
				}
				if d := xn[j] - 2*Dot(x, cen) + cn; d < bestD[j] {
					best[j], bestD[j] = c, d
				}
			}
		}
		for j := 0; j < m; j++ {
			out[base+j] = best[j]
			if dists != nil {
				d := bestD[j]
				if d < 0 {
					d = 0
				}
				dists[base+j] = d
			}
		}
	}
}

// CentroidCC2 returns the full k×k matrix of squared pairwise centroid
// distances — the per-model constant CentroidIndex sorts into its
// neighbor lists. Cost: O(k²·dim) once per centroid set (model
// install), k² floats of memory.
func CentroidCC2(centroids [][]float64) [][]float64 {
	k := len(centroids)
	cc2 := make([][]float64, k)
	flat := make([]float64, k*k)
	for i := range cc2 {
		cc2[i] = flat[i*k : (i+1)*k : (i+1)*k]
		for j := 0; j < i; j++ {
			d := SqDist(centroids[i], centroids[j])
			cc2[i][j] = d
			cc2[j][i] = d
		}
	}
	return cc2
}

// CentroidIndex is the serving-side pruning structure: per centroid,
// the other centroids sorted by ascending squared distance. Search
// walks the incumbent's neighbor list and stops at the first entry
// with d(best, c)² above the Elkan threshold 4·bestD — by the triangle
// inequality d(x, c) ≥ d(best, c) − d(x, best) > 2·√bestD − √bestD =
// √bestD, so that entry and (sorted order) every entry after it
// strictly loses without a dot product. Unlike a per-candidate test,
// the sorted break turns pruning into early termination: past the
// break point candidates cost literally nothing.
//
// Build cost is O(k²·(dim + log k)) once per centroid set (model
// install), ~2·k² words of memory — irrelevant next to training cost
// and amortized over every query the model ever serves. The walk pays
// for itself at every k (at k = 2 the lists are one entry long and the
// loop degenerates to the plain fused scan), so there is no small-k
// fallback and one exactness contract covers every deployment.
type CentroidIndex struct {
	// flat is a row-major copy of the centroids (k×dim): the walk
	// visits candidates in data-dependent order, and a contiguous
	// buffer turns each visit into one offset multiply instead of a
	// pointer chase through a slice-of-slices.
	flat  []float64
	k     int
	dim   int
	norms []float64
	// nbr[i][p] holds the p-th nearest other centroid of centroid i:
	// its squared distance and index, packed together so the walk
	// streams one array instead of two. Distance ties are ordered by
	// ascending index so the build is deterministic.
	nbr [][]nbrPair
}

// nbrPair is one sorted-neighbor entry: squared center-to-center
// distance and the neighbor's centroid index.
type nbrPair struct {
	d2 float64
	j  uint32
}

// Norms exposes the precomputed ‖c‖² table (CentroidNorms of the
// indexed centroids), so callers already holding an index never
// recompute it.
func (ix *CentroidIndex) Norms() []float64 { return ix.norms }

// NewCentroidIndex builds the sorted-neighbor index over a row-major
// copy of centroids; later mutation of the argument does not affect
// the index.
func NewCentroidIndex(centroids [][]float64) *CentroidIndex {
	k := len(centroids)
	ix := &CentroidIndex{
		k:     k,
		norms: CentroidNorms(centroids),
	}
	if k > 0 {
		ix.dim = len(centroids[0])
		ix.flat = make([]float64, 0, k*ix.dim)
		for _, c := range centroids {
			ix.flat = append(ix.flat, c...)
		}
	}
	if k == 0 {
		return ix
	}
	cc2 := CentroidCC2(centroids)
	flatNbr := make([]nbrPair, k*(k-1))
	ix.nbr = make([][]nbrPair, k)
	ord := make([]int, k-1)
	for i := 0; i < k; i++ {
		n := 0
		for j := 0; j < k; j++ {
			if j != i {
				ord[n] = j
				n++
			}
		}
		row := cc2[i]
		sort.Slice(ord, func(a, b int) bool {
			if row[ord[a]] != row[ord[b]] {
				return row[ord[a]] < row[ord[b]]
			}
			return ord[a] < ord[b]
		})
		lst := flatNbr[i*(k-1) : (i+1)*(k-1) : (i+1)*(k-1)]
		for p, j := range ord {
			lst[p] = nbrPair{d2: row[j], j: uint32(j)}
		}
		ix.nbr[i] = lst
	}
	return ix
}

// CentroidScratch is the per-goroutine visited bookkeeping of
// CentroidIndex.Nearest: an epoch-stamped mark per centroid, so
// clearing between queries is one counter increment, not a k-wide
// memset. Not safe for concurrent use — give each worker its own.
type CentroidScratch struct {
	visited []uint32
	epoch   uint32
}

// NewScratch returns search scratch sized for this index.
func (ix *CentroidIndex) NewScratch() *CentroidScratch {
	return &CentroidScratch{visited: make([]uint32, ix.k)}
}

// Nearest returns the index of the centroid nearest to x and its
// squared distance (the fused value, clamped at zero), walking sorted
// neighbor lists from the running incumbent. sc must come from
// NewScratch on this index; centroids must be non-empty.
//
// Exactness contract: bit-identical to the unpruned fused scan on
// every input. The walk evaluates candidates out of index order, so
// the incumbent is replaced on d < bestD OR d == bestD with a lower
// index — the order-independent statement of the scan's
// strict-improvement rule — and the break threshold carries the same
// slack margins as NearestCentroid (multiplicative normPruneSlack plus
// an additive floor relative to ‖x‖² + ‖c_best‖²), so rounding can
// only ever terminate LATER: a candidate is skipped only when its
// distance provably strictly exceeds the incumbent, which rules out
// both a win and a lower-index tie. Duplicate centroids sit at
// neighbor distance 0, first in the sorted list, and are always
// evaluated; on-centroid queries (bestD ≈ 0) keep every centroid
// within rounding range un-pruned via the additive floor.
//
//fairvet:hotpath
func (ix *CentroidIndex) Nearest(x []float64, sc *CentroidScratch) (int, float64) {
	flat, dim, norms := ix.flat, ix.dim, ix.norms
	sc.epoch++
	if sc.epoch == 0 { // uint32 wrap: old marks would alias the new epoch
		clear(sc.visited)
		sc.epoch = 1
	}
	if dim == 8 {
		return ix.nearest8(x, sc)
	}
	xn := Dot(x, x)
	best := 0
	bestD := xn - 2*Dot(x, flat[:dim]) + norms[0]
	visited, epoch := sc.visited, sc.epoch
	visited[0] = epoch
	// First pass, over centroid 0's own list: nothing else is visited
	// yet (a list never contains its owner), so the visited READ is
	// skipped — most queries never leave this loop.
	thresh := 4*bestD*normPruneSlack + (normPruneSlack-1)*(xn+norms[0])
	for _, nb := range ix.nbr[0] {
		if nb.d2 > thresh {
			break // sorted: every remaining candidate strictly loses
		}
		j := int(nb.j)
		visited[j] = epoch
		if d := xn - 2*Dot(x, flat[j*dim:(j+1)*dim]) + norms[j]; d < bestD {
			best, bestD = j, d
			goto restart
		}
	}
	goto done
	// Each restart strictly improves (bestD, best) lexicographically,
	// so the walk terminates; visited marks keep every centroid scored
	// at most once per query.
restart:
	thresh = 4*bestD*normPruneSlack + (normPruneSlack-1)*(xn+norms[best])
	for _, nb := range ix.nbr[best] {
		if nb.d2 > thresh {
			break // sorted: every remaining candidate strictly loses
		}
		j := int(nb.j)
		if visited[j] == epoch {
			continue
		}
		visited[j] = epoch
		if d := xn - 2*Dot(x, flat[j*dim:(j+1)*dim]) + norms[j]; d < bestD || (d == bestD && j < best) {
			best, bestD = j, d
			goto restart
		}
	}
done:
	if bestD < 0 {
		bestD = 0
	}
	return best, bestD
}

// nearest8 is the dim-8 specialization of the indexed walk — the same
// control flow with the candidate evaluation expanded in place. The
// lane products, merge order and leading zero seeds are copied from
// dot8 verbatim, so every candidate distance is bit-identical to the
// Dot-based form; dim 8 gets its own body because the walk's
// data-dependent call sites leave the dot behind an opaque call, which
// is a measurable fraction of a candidate's cost at this width (the
// same reason dot8/sqDist8 exist).
//
//fairvet:hotpath
func (ix *CentroidIndex) nearest8(x []float64, sc *CentroidScratch) (int, float64) {
	flat, norms := ix.flat, ix.norms
	x = x[:8:8]
	s0 := 0 + x[0]*x[0] + x[4]*x[4]
	s1 := 0 + x[1]*x[1] + x[5]*x[5]
	s2 := 0 + x[2]*x[2] + x[6]*x[6]
	s3 := 0 + x[3]*x[3] + x[7]*x[7]
	xn := (s0 + s2) + (s1 + s3)
	best := 0
	bestD := xn - 2*dot8(x, flat[:8]) + norms[0]
	visited, epoch := sc.visited, sc.epoch
	visited[0] = epoch
	thresh := 4*bestD*normPruneSlack + (normPruneSlack-1)*(xn+norms[0])
	for _, nb := range ix.nbr[0] {
		if nb.d2 > thresh {
			break
		}
		j := int(nb.j)
		visited[j] = epoch
		c := flat[j*8 : j*8+8 : j*8+8]
		t0 := 0 + x[0]*c[0] + x[4]*c[4]
		t1 := 0 + x[1]*c[1] + x[5]*c[5]
		t2 := 0 + x[2]*c[2] + x[6]*c[6]
		t3 := 0 + x[3]*c[3] + x[7]*c[7]
		if d := xn - 2*((t0+t2)+(t1+t3)) + norms[j]; d < bestD {
			best, bestD = j, d
			goto restart
		}
	}
	goto done
restart:
	thresh = 4*bestD*normPruneSlack + (normPruneSlack-1)*(xn+norms[best])
	for _, nb := range ix.nbr[best] {
		if nb.d2 > thresh {
			break
		}
		j := int(nb.j)
		if visited[j] == epoch {
			continue
		}
		visited[j] = epoch
		c := flat[j*8 : j*8+8 : j*8+8]
		t0 := 0 + x[0]*c[0] + x[4]*c[4]
		t1 := 0 + x[1]*c[1] + x[5]*c[5]
		t2 := 0 + x[2]*c[2] + x[6]*c[6]
		t3 := 0 + x[3]*c[3] + x[7]*c[7]
		if d := xn - 2*((t0+t2)+(t1+t3)) + norms[j]; d < bestD || (d == bestD && j < best) {
			best, bestD = j, d
			goto restart
		}
	}
done:
	if bestD < 0 {
		bestD = 0
	}
	return best, bestD
}

// NearestCentroidScan is the naive reference: a plain SqDist scan in
// index order with strict-improvement (lowest-index tie) semantics. It
// is what the fused kernels are tested and benchmarked against, and
// the exact deployment rule of model.AssignDist.
func NearestCentroidScan(x []float64, centroids [][]float64) (int, float64) {
	best := 0
	bestD := SqDist(x, centroids[0])
	for c := 1; c < len(centroids); c++ {
		if d := SqDist(x, centroids[c]); d < bestD {
			best, bestD = c, d
		}
	}
	return best, bestD
}
