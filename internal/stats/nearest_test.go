package stats

import (
	"fmt"
	"math"
	"testing"
)

// genRows builds deterministic pseudo-random rows without consuming an
// RNG (fixed forever, like benchVectors).
func genRows(seed, n, dim int) [][]float64 {
	rows := make([][]float64, n)
	for r := range rows {
		v := make([]float64, dim)
		for i := range v {
			v[i] = float64(((r*8191+i*127+seed*31)*2654435761)%2000)/1000 - 1
		}
		rows[r] = v
	}
	return rows
}

// unprunedFused is the fused scan with the norm-gap prune disabled —
// the reference NearestCentroid must match bit-for-bit on EVERY input.
func unprunedFused(x []float64, centroids [][]float64, norms []float64) (int, float64) {
	xn := Dot(x, x)
	best := 0
	bestD := xn - 2*Dot(x, centroids[0]) + norms[0]
	for c := 1; c < len(centroids); c++ {
		if d := xn - 2*Dot(x, centroids[c]) + norms[c]; d < bestD {
			best, bestD = c, d
		}
	}
	if bestD < 0 {
		bestD = 0
	}
	return best, bestD
}

// TestNearestCentroidMatchesNaiveScan pins fused-vs-naive assignment
// parity across a k × dim × seed grid: the fused kernel must pick the
// same centroid as the SqDist reference scan, and its distance must
// agree to rounding noise.
func TestNearestCentroidMatchesNaiveScan(t *testing.T) {
	for _, k := range []int{1, 2, 5, 15, 50, 150} {
		for _, dim := range []int{1, 2, 3, 4, 7, 8, 16, 64} {
			for seed := 0; seed < 3; seed++ {
				t.Run(fmt.Sprintf("k%d_d%d_s%d", k, dim, seed), func(t *testing.T) {
					centroids := genRows(seed, k, dim)
					norms := CentroidNorms(centroids)
					rows := genRows(seed+100, 200, dim)
					out := make([]int, len(rows))
					dists := make([]float64, len(rows))
					NearestCentroids(rows, centroids, norms, out, dists)
					for i, x := range rows {
						wantC, wantD := NearestCentroidScan(x, centroids)
						gotC, gotD := NearestCentroid(x, centroids, norms)
						scale := 1 + math.Abs(wantD)
						if gotC != wantC {
							// The discretized synthetic grid produces rows
							// exactly equidistant (in real arithmetic) to two
							// distinct centroids; the two formulas may round
							// such a tie apart and crown different winners.
							// That is only acceptable when the naive metric
							// itself calls it a tie to within rounding noise.
							alt := SqDist(x, centroids[gotC])
							if math.Abs(alt-wantD) > 1e-12*scale {
								t.Fatalf("row %d: fused picked %d (naive d %v), naive scan %d (d %v) — not a tie", i, gotC, alt, wantC, wantD)
							}
						}
						if math.Abs(gotD-wantD) > 1e-9*scale {
							t.Fatalf("row %d: fused dist %v vs naive %v", i, gotD, wantD)
						}
						if out[i] != gotC || dists[i] != gotD {
							t.Fatalf("row %d: batch kernel (%d,%v) differs from single (%d,%v)", i, out[i], dists[i], gotC, gotD)
						}
					}
				})
			}
		}
	}
}

// TestNearestCentroidPruneTransparent pins the exactness contract of
// the norm-gap prune: on every input — including duplicate centroids,
// zero rows and rows sitting exactly on a centroid — the pruned kernel
// is bit-identical to the unpruned fused scan.
func TestNearestCentroidPruneTransparent(t *testing.T) {
	cases := [][][]float64{
		genRows(1, 40, 8),
		genRows(2, 150, 16),
		{{0, 0, 0}, {1, 0, 0}, {1, 0, 0}, {0, 1, 0}, {-3, 4, 0}}, // duplicates
	}
	for ci, centroids := range cases {
		norms := CentroidNorms(centroids)
		dim := len(centroids[0])
		rows := genRows(ci+7, 300, dim)
		rows = append(rows, make([]float64, dim)) // the origin
		rows = append(rows, Clone(centroids[len(centroids)/2]))
		for i, x := range rows {
			wc, wd := unprunedFused(x, centroids, norms)
			gc, gd := NearestCentroid(x, centroids, norms)
			if gc != wc || gd != wd {
				t.Fatalf("case %d row %d: pruned (%d,%v) vs unpruned (%d,%v)", ci, i, gc, gd, wc, wd)
			}
		}
	}
}

// TestCentroidIndexTransparent pins the exactness contract of the
// sorted-neighbor search: on every input CentroidIndex.Nearest must be
// bit-identical to the unpruned fused scan — duplicate centroids,
// near-duplicate centroids a few ulps apart, the origin, and queries
// sitting exactly on a (duplicated) centroid, where bestD = 0 makes
// the break threshold lean entirely on its additive rounding floor.
// Centroid sets straddle pruneMinK so both the indexed walk and the
// small-k plain-scan regime are exercised, and scratch is reused
// across queries (the epoch bookkeeping under test).
func TestCentroidIndexTransparent(t *testing.T) {
	nearDup := Clone([]float64{0.1, 0.2, 0.3})
	nearDup[2] = math.Nextafter(nearDup[2], 1) // 1 ulp off centroid 0
	dupFar := [][]float64{{0.1, 0.2, 0.3}, nearDup, {5, 5, 5}, {0.1, 0.2, 0.3}}
	// The same ulp-near duplicates embedded in an indexed (k ≥
	// pruneMinK) set, so the additive floor is load-bearing on the walk
	// path too.
	bigDup := append(genRows(3, 20, 3), dupFar...)
	cases := [][][]float64{
		genRows(1, 40, 8),
		genRows(2, 150, 16),
		{{0, 0, 0}, {1, 0, 0}, {1, 0, 0}, {0, 1, 0}, {-3, 4, 0}}, // duplicates, small-k
		dupFar, // ulp-near duplicates, small-k
		bigDup, // ulp-near duplicates, indexed walk
	}
	for ci, centroids := range cases {
		ix := NewCentroidIndex(centroids)
		sc := ix.NewScratch()
		norms := CentroidNorms(centroids)
		dim := len(centroids[0])
		rows := genRows(ci+7, 300, dim)
		rows = append(rows, make([]float64, dim)) // the origin
		for _, c := range centroids {
			rows = append(rows, Clone(c)) // on every centroid, dups included
		}
		for i, x := range rows {
			wc, wd := unprunedFused(x, centroids, norms)
			gc, gd := ix.Nearest(x, sc)
			if gc != wc || math.Float64bits(gd) != math.Float64bits(wd) {
				t.Fatalf("case %d row %d: indexed (%d,%v) vs reference (%d,%v)", ci, i, gc, gd, wc, wd)
			}
		}
	}
}

// TestCentroidIndexGrid is the indexed-search analogue of the
// fused-vs-naive grid: across k × dim × seeds the walk must agree with
// the unpruned fused scan bit for bit (same kernel arithmetic, so
// exact equality — not just tie-tolerant). dim 8 rides its dedicated
// walk (nearest8), every other dim the generic one; both must meet the
// same contract.
func TestCentroidIndexGrid(t *testing.T) {
	for _, k := range []int{1, 2, 5, 15, 16, 17, 50, 150} {
		for _, dim := range []int{1, 2, 4, 8, 16} {
			centroids := genRows(k+dim, k, dim)
			ix := NewCentroidIndex(centroids)
			sc := ix.NewScratch()
			norms := CentroidNorms(centroids)
			rows := genRows(k*31+dim, 150, dim)
			for i, x := range rows {
				wc, wd := unprunedFused(x, centroids, norms)
				gc, gd := ix.Nearest(x, sc)
				if gc != wc || math.Float64bits(gd) != math.Float64bits(wd) {
					t.Fatalf("k%d d%d row %d: indexed (%d,%v) vs reference (%d,%v)", k, dim, i, gc, gd, wc, wd)
				}
			}
		}
	}
}

// TestCentroidCC2 pins the matrix shape and symmetry: zero diagonal,
// cc2[i][j] == SqDist(c_i, c_j) exactly, symmetric by construction.
func TestCentroidCC2(t *testing.T) {
	centroids := genRows(5, 20, 6)
	cc2 := CentroidCC2(centroids)
	if len(cc2) != len(centroids) {
		t.Fatalf("cc2 has %d rows, want %d", len(cc2), len(centroids))
	}
	for i := range cc2 {
		if len(cc2[i]) != len(centroids) {
			t.Fatalf("cc2[%d] has %d cols, want %d", i, len(cc2[i]), len(centroids))
		}
		if cc2[i][i] != 0 {
			t.Fatalf("cc2[%d][%d] = %v, want 0", i, i, cc2[i][i])
		}
		for j := range cc2[i] {
			if want := SqDist(centroids[i], centroids[j]); i != j && cc2[i][j] != want {
				t.Fatalf("cc2[%d][%d] = %v, want %v", i, j, cc2[i][j], want)
			}
			if cc2[i][j] != cc2[j][i] {
				t.Fatalf("cc2 not symmetric at (%d,%d)", i, j)
			}
		}
	}
}

// TestNearestCentroidTies: duplicate centroids and exactly equidistant
// rows must resolve to the lowest centroid index, matching the naive
// scan.
func TestNearestCentroidTies(t *testing.T) {
	// Duplicate centroids: indexes 1 and 3 are bit-identical; both
	// formulas tie exactly, and the first must win.
	centroids := [][]float64{{5, 5}, {1, 2}, {9, 9}, {1, 2}}
	norms := CentroidNorms(centroids)
	x := []float64{1.25, 2.5}
	gc, _ := NearestCentroid(x, centroids, norms)
	wc, _ := NearestCentroidScan(x, centroids)
	if gc != 1 || wc != 1 {
		t.Fatalf("duplicate centroids: fused %d, naive %d, want 1", gc, wc)
	}

	// Exactly equidistant row (all coordinates exactly representable):
	// the origin is distance 1 from both unit centroids; index 0 wins.
	eq := [][]float64{{1, 0}, {0, 1}, {3, 4}}
	eqNorms := CentroidNorms(eq)
	gc, _ = NearestCentroid([]float64{0, 0}, eq, eqNorms)
	wc, _ = NearestCentroidScan([]float64{0, 0}, eq)
	if gc != 0 || wc != 0 {
		t.Fatalf("equidistant row: fused %d, naive %d, want 0", gc, wc)
	}

	// A row ON a duplicated centroid: distance 0 twice, lowest index
	// wins and the clamped distance is exactly zero.
	gc, gd := NearestCentroid([]float64{1, 2}, centroids, norms)
	if gc != 1 || gd != 0 {
		t.Fatalf("on-centroid tie: got (%d,%v), want (1,0)", gc, gd)
	}
}

// TestNearestCentroidsBlockBoundaries exercises row counts around the
// cache-block size, including the empty batch, for both the small
// (row-major) and large (centroid-major blocked) centroid regimes.
func TestNearestCentroidsBlockBoundaries(t *testing.T) {
	for _, shape := range []struct{ k, dim int }{
		{7, 5},    // k·dim ≤ nearestBlockMinFloats: row-major path
		{150, 64}, // k·dim > nearestBlockMinFloats: blocked path
	} {
		centroids := genRows(3, shape.k, shape.dim)
		norms := CentroidNorms(centroids)
		for _, n := range []int{0, 1, nearestBlock - 1, nearestBlock, nearestBlock + 1, 3*nearestBlock + 5} {
			rows := genRows(4, n, shape.dim)
			out := make([]int, n)
			NearestCentroids(rows, centroids, norms, out, nil) // nil dists allowed
			dists := make([]float64, n)
			NearestCentroids(rows, centroids, norms, out, dists)
			for i, x := range rows {
				wc, wd := NearestCentroid(x, centroids, norms)
				if out[i] != wc {
					t.Fatalf("k=%d n=%d row %d: batch %d vs single %d", shape.k, n, i, out[i], wc)
				}
				if dists[i] != wd {
					t.Fatalf("k=%d n=%d row %d: batch dist %v vs single %v", shape.k, n, i, dists[i], wd)
				}
			}
		}
	}
}

// genericDot and genericSqDist are the 4-wide unrolled forms without
// the small-dim fast paths — the arithmetic the fast paths must
// reproduce bit-for-bit.
func genericDot(a, b []float64) float64 {
	var s0, s1, s2, s3 float64
	i := 0
	for ; i <= len(a)-4; i += 4 {
		s0 += a[i] * b[i]
		s1 += a[i+1] * b[i+1]
		s2 += a[i+2] * b[i+2]
		s3 += a[i+3] * b[i+3]
	}
	s := (s0 + s2) + (s1 + s3)
	for ; i < len(a); i++ {
		s += a[i] * b[i]
	}
	return s
}

func genericSqDist(a, b []float64) float64 {
	var s0, s1, s2, s3 float64
	i := 0
	for ; i <= len(a)-4; i += 4 {
		d0 := a[i] - b[i]
		d1 := a[i+1] - b[i+1]
		d2 := a[i+2] - b[i+2]
		d3 := a[i+3] - b[i+3]
		s0 += d0 * d0
		s1 += d1 * d1
		s2 += d2 * d2
		s3 += d3 * d3
	}
	s := (s0 + s2) + (s1 + s3)
	for ; i < len(a); i++ {
		d := a[i] - b[i]
		s += d * d
	}
	return s
}

// TestSmallDimFastPathBitIdentity: every Dot/SqDist fast path must be
// bit-identical to the generic unrolled kernel — including signed-zero
// products (negative value × exact zero), which the golden-trajectory
// contract makes load-bearing.
func TestSmallDimFastPathBitIdentity(t *testing.T) {
	for _, dim := range []int{0, 1, 2, 3, 4, 5, 7, 8, 9, 16} {
		xs := genRows(11, 64, dim)
		ys := genRows(12, 64, dim)
		// Inject exact zeros and sign flips to force ±0 products.
		for r := range xs {
			for i := range xs[r] {
				switch (r + i) % 5 {
				case 0:
					xs[r][i] = 0
				case 1:
					ys[r][i] = 0
				case 2:
					xs[r][i] = -xs[r][i]
				}
			}
		}
		for r := range xs {
			a, b := xs[r], ys[r]
			if got, want := Dot(a, b), genericDot(a, b); math.Float64bits(got) != math.Float64bits(want) {
				t.Fatalf("dim %d row %d: Dot bits %x vs generic %x", dim, r, math.Float64bits(got), math.Float64bits(want))
			}
			if got, want := SqDist(a, b), genericSqDist(a, b); math.Float64bits(got) != math.Float64bits(want) {
				t.Fatalf("dim %d row %d: SqDist bits %x vs generic %x", dim, r, math.Float64bits(got), math.Float64bits(want))
			}
		}
	}
	// All-negative-zero products: the adversarial case for dot8's lane
	// seeds (0 + -0 must stay +0, exactly like the generic accumulator).
	neg := make([]float64, 8)
	zero := make([]float64, 8)
	for i := range neg {
		neg[i] = -1
	}
	if got, want := Dot(neg, zero), genericDot(neg, zero); math.Float64bits(got) != math.Float64bits(want) {
		t.Fatalf("all -0 lanes: Dot bits %x vs generic %x", math.Float64bits(got), math.Float64bits(want))
	}
}
