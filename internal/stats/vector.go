package stats

import "math"

// Vector helpers operate on []float64 treated as dense vectors. They are
// deliberately allocation-conscious: clustering inner loops call them per
// point per cluster per iteration.

// Dot returns the inner product of a and b. It panics on length mismatch.
//
// The loop is unrolled 4-wide with independent accumulators so the four
// multiply-adds pipeline instead of serializing on one running sum; see
// BenchmarkDot.
func Dot(a, b []float64) float64 {
	if len(a) != len(b) {
		panic("stats: Dot length mismatch")
	}
	b = b[:len(a)] // bounds-check elimination hint
	var s0, s1, s2, s3 float64
	i := 0
	for ; i <= len(a)-4; i += 4 {
		s0 += a[i] * b[i]
		s1 += a[i+1] * b[i+1]
		s2 += a[i+2] * b[i+2]
		s3 += a[i+3] * b[i+3]
	}
	s := (s0 + s2) + (s1 + s3)
	for ; i < len(a); i++ {
		s += a[i] * b[i]
	}
	return s
}

// SqDist returns the squared Euclidean distance between a and b.
//
// Unrolled 4-wide like Dot; see BenchmarkSqDist.
func SqDist(a, b []float64) float64 {
	if len(a) != len(b) {
		panic("stats: SqDist length mismatch")
	}
	b = b[:len(a)] // bounds-check elimination hint
	var s0, s1, s2, s3 float64
	i := 0
	for ; i <= len(a)-4; i += 4 {
		d0 := a[i] - b[i]
		d1 := a[i+1] - b[i+1]
		d2 := a[i+2] - b[i+2]
		d3 := a[i+3] - b[i+3]
		s0 += d0 * d0
		s1 += d1 * d1
		s2 += d2 * d2
		s3 += d3 * d3
	}
	s := (s0 + s2) + (s1 + s3)
	for ; i < len(a); i++ {
		d := a[i] - b[i]
		s += d * d
	}
	return s
}

// Dist returns the Euclidean distance between a and b.
func Dist(a, b []float64) float64 { return math.Sqrt(SqDist(a, b)) }

// Norm returns the Euclidean norm of a.
func Norm(a []float64) float64 { return math.Sqrt(Dot(a, a)) }

// AddTo adds src into dst element-wise. It panics on length mismatch.
func AddTo(dst, src []float64) {
	if len(dst) != len(src) {
		panic("stats: AddTo length mismatch")
	}
	for i := range dst {
		dst[i] += src[i]
	}
}

// AddScaledTo adds c·src into dst element-wise. It panics on length
// mismatch. With c = ±1 every element update is bit-identical to
// AddTo/SubFrom (multiplication by one and sign flips are exact in
// IEEE-754), which is what lets the weighted clustering kernels treat
// unit weights as a transparent special case.
func AddScaledTo(dst, src []float64, c float64) {
	if len(dst) != len(src) {
		panic("stats: AddScaledTo length mismatch")
	}
	for i := range dst {
		dst[i] += c * src[i]
	}
}

// SubFrom subtracts src from dst element-wise. It panics on length
// mismatch.
func SubFrom(dst, src []float64) {
	if len(dst) != len(src) {
		panic("stats: SubFrom length mismatch")
	}
	for i := range dst {
		dst[i] -= src[i]
	}
}

// Scale multiplies dst by c in place.
func Scale(dst []float64, c float64) {
	for i := range dst {
		dst[i] *= c
	}
}

// Clone returns a copy of a.
func Clone(a []float64) []float64 { return append([]float64(nil), a...) }

// Zeros returns a fresh zero vector of length n.
func Zeros(n int) []float64 { return make([]float64, n) }

// MeanVector returns the element-wise mean of the given rows. It panics
// if rows is empty or rows have mismatched lengths.
func MeanVector(rows [][]float64) []float64 {
	if len(rows) == 0 {
		panic("stats: MeanVector of no rows")
	}
	m := make([]float64, len(rows[0]))
	for _, r := range rows {
		AddTo(m, r)
	}
	Scale(m, 1/float64(len(rows)))
	return m
}
