package stats

import "math"

// Vector helpers operate on []float64 treated as dense vectors. They are
// deliberately allocation-conscious: clustering inner loops call them per
// point per cluster per iteration.

// Dot returns the inner product of a and b. It panics on length mismatch.
func Dot(a, b []float64) float64 {
	if len(a) != len(b) {
		panic("stats: Dot length mismatch")
	}
	s := 0.0
	for i := range a {
		s += a[i] * b[i]
	}
	return s
}

// SqDist returns the squared Euclidean distance between a and b.
func SqDist(a, b []float64) float64 {
	if len(a) != len(b) {
		panic("stats: SqDist length mismatch")
	}
	s := 0.0
	for i := range a {
		d := a[i] - b[i]
		s += d * d
	}
	return s
}

// Dist returns the Euclidean distance between a and b.
func Dist(a, b []float64) float64 { return math.Sqrt(SqDist(a, b)) }

// Norm returns the Euclidean norm of a.
func Norm(a []float64) float64 { return math.Sqrt(Dot(a, a)) }

// AddTo adds src into dst element-wise. It panics on length mismatch.
func AddTo(dst, src []float64) {
	if len(dst) != len(src) {
		panic("stats: AddTo length mismatch")
	}
	for i := range dst {
		dst[i] += src[i]
	}
}

// SubFrom subtracts src from dst element-wise. It panics on length
// mismatch.
func SubFrom(dst, src []float64) {
	if len(dst) != len(src) {
		panic("stats: SubFrom length mismatch")
	}
	for i := range dst {
		dst[i] -= src[i]
	}
}

// Scale multiplies dst by c in place.
func Scale(dst []float64, c float64) {
	for i := range dst {
		dst[i] *= c
	}
}

// Clone returns a copy of a.
func Clone(a []float64) []float64 { return append([]float64(nil), a...) }

// Zeros returns a fresh zero vector of length n.
func Zeros(n int) []float64 { return make([]float64, n) }

// MeanVector returns the element-wise mean of the given rows. It panics
// if rows is empty or rows have mismatched lengths.
func MeanVector(rows [][]float64) []float64 {
	if len(rows) == 0 {
		panic("stats: MeanVector of no rows")
	}
	m := make([]float64, len(rows[0]))
	for _, r := range rows {
		AddTo(m, r)
	}
	Scale(m, 1/float64(len(rows)))
	return m
}
