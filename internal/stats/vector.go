package stats

import "math"

// Vector helpers operate on []float64 treated as dense vectors. They are
// deliberately allocation-conscious: clustering inner loops call them per
// point per cluster per iteration.

// Dot returns the inner product of a and b. It panics on length mismatch.
//
// The loop is unrolled 4-wide with independent accumulators so the four
// multiply-adds pipeline instead of serializing on one running sum; see
// BenchmarkDot. Dim < 4 and dim == 8 take fast paths that perform the
// EXACT same floating-point operations in the same order (the explicit
// +0 lane seeds in dot8 mirror the unrolled accumulators' zero init, so
// even signed-zero products round identically) — bit-identity across
// these paths is what keeps the golden trajectories valid.
func Dot(a, b []float64) float64 {
	if len(a) != len(b) {
		panic("stats: Dot length mismatch")
	}
	if len(a) < 4 {
		// The 4-wide main loop below runs zero iterations for dim < 4,
		// so the scalar tail IS the whole computation: same ops, none of
		// the unrolled preamble or accumulator merge.
		s := 0.0
		for i, av := range a {
			s += av * b[i]
		}
		return s
	}
	if len(a) == 8 {
		return dot8(a, b)
	}
	b = b[:len(a)] // bounds-check elimination hint
	var s0, s1, s2, s3 float64
	i := 0
	for ; i <= len(a)-4; i += 4 {
		s0 += a[i] * b[i]
		s1 += a[i+1] * b[i+1]
		s2 += a[i+2] * b[i+2]
		s3 += a[i+3] * b[i+3]
	}
	s := (s0 + s2) + (s1 + s3)
	for ; i < len(a); i++ {
		s += a[i] * b[i]
	}
	return s
}

// dot8 is the straight-line dim-8 inner product: the two 4-wide
// iterations and lane merge of the generic loop, fully unrolled with no
// loop control. Lane association — ((0+p0)+p4) etc., then
// (s0+s2)+(s1+s3) — matches the generic path exactly; the leading 0+
// is not folded by the compiler (unsound for -0), so the result is
// bit-identical for every input.
func dot8(a, b []float64) float64 {
	a, b = a[:8:8], b[:8:8]
	s0 := 0 + a[0]*b[0] + a[4]*b[4]
	s1 := 0 + a[1]*b[1] + a[5]*b[5]
	s2 := 0 + a[2]*b[2] + a[6]*b[6]
	s3 := 0 + a[3]*b[3] + a[7]*b[7]
	return (s0 + s2) + (s1 + s3)
}

// SqDist returns the squared Euclidean distance between a and b.
//
// Unrolled 4-wide like Dot, with the same bit-identical dim < 4 and
// dim == 8 fast paths (here the lane terms are squares, which are
// never -0, so the straight-line form needs no explicit zero seeds);
// see BenchmarkSqDist.
func SqDist(a, b []float64) float64 {
	if len(a) != len(b) {
		panic("stats: SqDist length mismatch")
	}
	if len(a) < 4 {
		s := 0.0
		for i, av := range a {
			d := av - b[i]
			s += d * d
		}
		return s
	}
	if len(a) == 8 {
		return sqDist8(a, b)
	}
	b = b[:len(a)] // bounds-check elimination hint
	var s0, s1, s2, s3 float64
	i := 0
	for ; i <= len(a)-4; i += 4 {
		d0 := a[i] - b[i]
		d1 := a[i+1] - b[i+1]
		d2 := a[i+2] - b[i+2]
		d3 := a[i+3] - b[i+3]
		s0 += d0 * d0
		s1 += d1 * d1
		s2 += d2 * d2
		s3 += d3 * d3
	}
	s := (s0 + s2) + (s1 + s3)
	for ; i < len(a); i++ {
		d := a[i] - b[i]
		s += d * d
	}
	return s
}

// sqDist8 is the straight-line dim-8 squared distance, association
// identical to two generic 4-wide iterations plus the lane merge.
func sqDist8(a, b []float64) float64 {
	a, b = a[:8:8], b[:8:8]
	d0, d1, d2, d3 := a[0]-b[0], a[1]-b[1], a[2]-b[2], a[3]-b[3]
	d4, d5, d6, d7 := a[4]-b[4], a[5]-b[5], a[6]-b[6], a[7]-b[7]
	s0 := d0*d0 + d4*d4
	s1 := d1*d1 + d5*d5
	s2 := d2*d2 + d6*d6
	s3 := d3*d3 + d7*d7
	return (s0 + s2) + (s1 + s3)
}

// Dist returns the Euclidean distance between a and b.
func Dist(a, b []float64) float64 { return math.Sqrt(SqDist(a, b)) }

// Norm returns the Euclidean norm of a.
func Norm(a []float64) float64 { return math.Sqrt(Dot(a, a)) }

// AddTo adds src into dst element-wise. It panics on length mismatch.
func AddTo(dst, src []float64) {
	if len(dst) != len(src) {
		panic("stats: AddTo length mismatch")
	}
	for i := range dst {
		dst[i] += src[i]
	}
}

// AddScaledTo adds c·src into dst element-wise. It panics on length
// mismatch. With c = ±1 every element update is bit-identical to
// AddTo/SubFrom (multiplication by one and sign flips are exact in
// IEEE-754), which is what lets the weighted clustering kernels treat
// unit weights as a transparent special case.
func AddScaledTo(dst, src []float64, c float64) {
	if len(dst) != len(src) {
		panic("stats: AddScaledTo length mismatch")
	}
	for i := range dst {
		dst[i] += c * src[i]
	}
}

// SubFrom subtracts src from dst element-wise. It panics on length
// mismatch.
func SubFrom(dst, src []float64) {
	if len(dst) != len(src) {
		panic("stats: SubFrom length mismatch")
	}
	for i := range dst {
		dst[i] -= src[i]
	}
}

// Scale multiplies dst by c in place.
func Scale(dst []float64, c float64) {
	for i := range dst {
		dst[i] *= c
	}
}

// Clone returns a copy of a.
func Clone(a []float64) []float64 { return append([]float64(nil), a...) }

// Zeros returns a fresh zero vector of length n.
func Zeros(n int) []float64 { return make([]float64, n) }

// MeanVector returns the element-wise mean of the given rows. It panics
// if rows is empty or rows have mismatched lengths.
func MeanVector(rows [][]float64) []float64 {
	if len(rows) == 0 {
		panic("stats: MeanVector of no rows")
	}
	m := make([]float64, len(rows[0]))
	for _, r := range rows {
		AddTo(m, r)
	}
	Scale(m, 1/float64(len(rows)))
	return m
}
