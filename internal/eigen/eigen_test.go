package eigen

import (
	"math"
	"testing"

	"repro/internal/stats"
)

func TestKnownEigenvalues(t *testing.T) {
	// [[2,1],[1,2]] has eigenvalues 1 and 3.
	vals, vecs, err := SymEigen([][]float64{{2, 1}, {1, 2}})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(vals[0]-1) > 1e-10 || math.Abs(vals[1]-3) > 1e-10 {
		t.Errorf("values = %v, want [1 3]", vals)
	}
	// Eigenvector for 1 is ±(1,-1)/√2.
	if math.Abs(math.Abs(vecs[0][0])-1/math.Sqrt2) > 1e-9 {
		t.Errorf("vector = %v", vecs[0])
	}
}

func TestDiagonalMatrix(t *testing.T) {
	vals, _, err := SymEigen([][]float64{{5, 0, 0}, {0, -2, 0}, {0, 0, 1}})
	if err != nil {
		t.Fatal(err)
	}
	want := []float64{-2, 1, 5}
	for i := range want {
		if math.Abs(vals[i]-want[i]) > 1e-12 {
			t.Errorf("vals = %v, want %v", vals, want)
		}
	}
}

// TestRandomMatricesSatisfyDefinition: for random symmetric A, check
// A·v = λ·v, orthonormality of eigenvectors and trace preservation.
func TestRandomMatricesSatisfyDefinition(t *testing.T) {
	rng := stats.NewRNG(9)
	for trial := 0; trial < 20; trial++ {
		n := 2 + rng.Intn(12)
		a := make([][]float64, n)
		for i := range a {
			a[i] = make([]float64, n)
		}
		for i := 0; i < n; i++ {
			for j := i; j < n; j++ {
				v := rng.Gaussian(0, 2)
				a[i][j], a[j][i] = v, v
			}
		}
		vals, vecs, err := SymEigen(a)
		if err != nil {
			t.Fatal(err)
		}
		// Eigen equation.
		for e := 0; e < n; e++ {
			av := MatVec(a, vecs[e])
			for i := 0; i < n; i++ {
				if math.Abs(av[i]-vals[e]*vecs[e][i]) > 1e-7*(1+math.Abs(vals[e])) {
					t.Fatalf("trial %d: A·v ≠ λ·v at eigenpair %d component %d: %v vs %v",
						trial, e, i, av[i], vals[e]*vecs[e][i])
				}
			}
		}
		// Orthonormality.
		for e1 := 0; e1 < n; e1++ {
			for e2 := e1; e2 < n; e2++ {
				dot := stats.Dot(vecs[e1], vecs[e2])
				want := 0.0
				if e1 == e2 {
					want = 1
				}
				if math.Abs(dot-want) > 1e-8 {
					t.Fatalf("trial %d: <v%d,v%d> = %v, want %v", trial, e1, e2, dot, want)
				}
			}
		}
		// Trace preservation.
		trace, sum := 0.0, 0.0
		for i := 0; i < n; i++ {
			trace += a[i][i]
			sum += vals[i]
		}
		if math.Abs(trace-sum) > 1e-8*(1+math.Abs(trace)) {
			t.Fatalf("trial %d: trace %v vs eigenvalue sum %v", trial, trace, sum)
		}
		// Values sorted ascending.
		for i := 1; i < n; i++ {
			if vals[i] < vals[i-1]-1e-12 {
				t.Fatalf("trial %d: values not sorted: %v", trial, vals)
			}
		}
	}
}

func TestSymEigenErrors(t *testing.T) {
	if _, _, err := SymEigen(nil); err == nil {
		t.Error("empty matrix accepted")
	}
	if _, _, err := SymEigen([][]float64{{1, 2}, {3}}); err == nil {
		t.Error("ragged matrix accepted")
	}
	if _, _, err := SymEigen([][]float64{{1, 2}, {5, 1}}); err == nil {
		t.Error("asymmetric matrix accepted")
	}
}

func TestMatHelpers(t *testing.T) {
	a := [][]float64{{1, 2}, {3, 4}}
	b := [][]float64{{5, 6}, {7, 8}}
	ab := MatMul(a, b)
	want := [][]float64{{19, 22}, {43, 50}}
	for i := range want {
		for j := range want[i] {
			if ab[i][j] != want[i][j] {
				t.Errorf("MatMul[%d][%d] = %v, want %v", i, j, ab[i][j], want[i][j])
			}
		}
	}
	at := Transpose(a)
	if at[0][1] != 3 || at[1][0] != 2 {
		t.Errorf("Transpose = %v", at)
	}
	if Transpose(nil) != nil {
		t.Error("Transpose(nil) should be nil")
	}
	x := MatVec(a, []float64{1, 1})
	if x[0] != 3 || x[1] != 7 {
		t.Errorf("MatVec = %v", x)
	}
}

func TestGramSchmidt(t *testing.T) {
	rows := [][]float64{
		{1, 0, 0},
		{1, 1, 0},
		{2, 1, 0}, // dependent on the first two
		{0, 0, 3},
	}
	basis := GramSchmidt(rows)
	if len(basis) != 3 {
		t.Fatalf("basis size = %d, want 3", len(basis))
	}
	for i := range basis {
		for j := i; j < len(basis); j++ {
			dot := stats.Dot(basis[i], basis[j])
			want := 0.0
			if i == j {
				want = 1
			}
			if math.Abs(dot-want) > 1e-10 {
				t.Errorf("<b%d,b%d> = %v, want %v", i, j, dot, want)
			}
		}
	}
}

func TestNullSpaceBasis(t *testing.T) {
	// Constraint x1 + x2 + x3 = 0 over R³: null space has dim 2 and
	// every basis vector must satisfy the constraint.
	f := [][]float64{{1, 1, 1}}
	basis := NullSpaceBasis(f, 3)
	if len(basis) != 2 {
		t.Fatalf("null space dim = %d, want 2", len(basis))
	}
	for _, b := range basis {
		if s := b[0] + b[1] + b[2]; math.Abs(s) > 1e-9 {
			t.Errorf("basis vector %v violates constraint (sum %v)", b, s)
		}
	}
	// Rank-deficient constraints: duplicates must not shrink the space.
	basis2 := NullSpaceBasis([][]float64{{1, 1, 1}, {2, 2, 2}}, 3)
	if len(basis2) != 2 {
		t.Errorf("duplicate constraints gave dim %d, want 2", len(basis2))
	}
	// No constraints: the whole space.
	basis3 := NullSpaceBasis(nil, 3)
	if len(basis3) != 3 {
		t.Errorf("empty constraints gave dim %d, want 3", len(basis3))
	}
}
