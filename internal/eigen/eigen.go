// Package eigen provides a dense symmetric eigensolver (cyclic Jacobi
// rotations) and the small matrix helpers the spectral-clustering
// substrate needs.
//
// No numerical library exists offline, so the solver is written from
// scratch. Jacobi iteration is exact to machine precision for symmetric
// matrices, unconditionally stable, and O(n³) per sweep — perfectly
// adequate for the graph sizes spectral fair clustering is run on in
// this repository (hundreds to a few thousands of nodes).
package eigen

//fairvet:floateq av==0 skips exact zeros in the sparse multiply; an epsilon would change results

import (
	"errors"
	"fmt"
	"math"
	"sort"
)

// MaxSweeps bounds Jacobi sweeps; convergence is typically < 15 sweeps.
const MaxSweeps = 60

// SymEigen computes all eigenvalues and orthonormal eigenvectors of the
// symmetric matrix a (only symmetry up to 1e-9 is required; the strict
// upper triangle is mirrored). Results are sorted by ascending
// eigenvalue; vectors[i] is the eigenvector for values[i]. The input is
// not modified.
func SymEigen(a [][]float64) (values []float64, vectors [][]float64, err error) {
	n := len(a)
	if n == 0 {
		return nil, nil, errors.New("eigen: empty matrix")
	}
	for i, row := range a {
		if len(row) != n {
			return nil, nil, fmt.Errorf("eigen: row %d has %d columns, want %d", i, len(row), n)
		}
	}
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			if d := math.Abs(a[i][j] - a[j][i]); d > 1e-9*(1+math.Abs(a[i][j])) {
				return nil, nil, fmt.Errorf("eigen: matrix not symmetric at (%d,%d): %v vs %v", i, j, a[i][j], a[j][i])
			}
		}
	}

	// Working copy (symmetrized) and accumulated rotations.
	m := make([][]float64, n)
	v := make([][]float64, n)
	for i := 0; i < n; i++ {
		m[i] = make([]float64, n)
		v[i] = make([]float64, n)
		v[i][i] = 1
		for j := 0; j < n; j++ {
			m[i][j] = 0.5 * (a[i][j] + a[j][i])
		}
	}

	for sweep := 0; sweep < MaxSweeps; sweep++ {
		off := offDiagNorm(m)
		if off < 1e-12*(1+frobenius(m)) {
			break
		}
		for p := 0; p < n-1; p++ {
			for q := p + 1; q < n; q++ {
				if math.Abs(m[p][q]) < 1e-15 {
					continue
				}
				rotate(m, v, p, q)
			}
		}
	}

	values = make([]float64, n)
	for i := 0; i < n; i++ {
		values[i] = m[i][i]
	}
	// Column i of v is the eigenvector for values[i]; extract and sort.
	vectors = make([][]float64, n)
	for i := 0; i < n; i++ {
		vec := make([]float64, n)
		for r := 0; r < n; r++ {
			vec[r] = v[r][i]
		}
		vectors[i] = vec
	}
	idx := make([]int, n)
	for i := range idx {
		idx[i] = i
	}
	sort.Slice(idx, func(x, y int) bool { return values[idx[x]] < values[idx[y]] })
	sortedVals := make([]float64, n)
	sortedVecs := make([][]float64, n)
	for rank, i := range idx {
		sortedVals[rank] = values[i]
		sortedVecs[rank] = vectors[i]
	}
	return sortedVals, sortedVecs, nil
}

// rotate applies one Jacobi rotation zeroing m[p][q], accumulating the
// rotation into v.
func rotate(m, v [][]float64, p, q int) {
	n := len(m)
	theta := (m[q][q] - m[p][p]) / (2 * m[p][q])
	t := 1 / (math.Abs(theta) + math.Sqrt(theta*theta+1))
	if theta < 0 {
		t = -t
	}
	c := 1 / math.Sqrt(t*t+1)
	s := t * c

	mpp, mqq, mpq := m[p][p], m[q][q], m[p][q]
	m[p][p] = c*c*mpp - 2*s*c*mpq + s*s*mqq
	m[q][q] = s*s*mpp + 2*s*c*mpq + c*c*mqq
	m[p][q] = 0
	m[q][p] = 0
	for i := 0; i < n; i++ {
		if i == p || i == q {
			continue
		}
		mip, miq := m[i][p], m[i][q]
		m[i][p] = c*mip - s*miq
		m[p][i] = m[i][p]
		m[i][q] = s*mip + c*miq
		m[q][i] = m[i][q]
	}
	for i := 0; i < n; i++ {
		vip, viq := v[i][p], v[i][q]
		v[i][p] = c*vip - s*viq
		v[i][q] = s*vip + c*viq
	}
}

func offDiagNorm(m [][]float64) float64 {
	s := 0.0
	for i := range m {
		for j := range m[i] {
			if i != j {
				s += m[i][j] * m[i][j]
			}
		}
	}
	return math.Sqrt(s)
}

func frobenius(m [][]float64) float64 {
	s := 0.0
	for i := range m {
		for j := range m[i] {
			s += m[i][j] * m[i][j]
		}
	}
	return math.Sqrt(s)
}

// MatVec returns a·x for a dense matrix.
func MatVec(a [][]float64, x []float64) []float64 {
	out := make([]float64, len(a))
	for i, row := range a {
		s := 0.0
		for j, v := range row {
			s += v * x[j]
		}
		out[i] = s
	}
	return out
}

// MatMul returns a·b for dense matrices (len(a[0]) must equal len(b)).
func MatMul(a, b [][]float64) [][]float64 {
	rows, inner, cols := len(a), len(b), len(b[0])
	out := make([][]float64, rows)
	for i := 0; i < rows; i++ {
		out[i] = make([]float64, cols)
		for t := 0; t < inner; t++ {
			av := a[i][t]
			if av == 0 {
				continue
			}
			for j := 0; j < cols; j++ {
				out[i][j] += av * b[t][j]
			}
		}
	}
	return out
}

// Transpose returns aᵀ.
func Transpose(a [][]float64) [][]float64 {
	if len(a) == 0 {
		return nil
	}
	rows, cols := len(a), len(a[0])
	out := make([][]float64, cols)
	for j := 0; j < cols; j++ {
		out[j] = make([]float64, rows)
		for i := 0; i < rows; i++ {
			out[j][i] = a[i][j]
		}
	}
	return out
}

// GramSchmidt orthonormalizes the given row vectors in place order,
// dropping (near-)linearly-dependent rows. It returns the orthonormal
// basis of their span.
func GramSchmidt(rows [][]float64) [][]float64 {
	var basis [][]float64
	for _, r := range rows {
		v := append([]float64(nil), r...)
		for _, b := range basis {
			dot := 0.0
			for i := range v {
				dot += v[i] * b[i]
			}
			for i := range v {
				v[i] -= dot * b[i]
			}
		}
		norm := 0.0
		for _, x := range v {
			norm += x * x
		}
		norm = math.Sqrt(norm)
		if norm < 1e-10 {
			continue
		}
		for i := range v {
			v[i] /= norm
		}
		basis = append(basis, v)
	}
	return basis
}

// NullSpaceBasis returns an orthonormal basis (as rows) of the null
// space {x : Fx = 0} of the given constraint rows F, computed by
// projecting the standard basis off the span of F's rows. The basis has
// n − rank(F) vectors.
func NullSpaceBasis(constraints [][]float64, n int) [][]float64 {
	span := GramSchmidt(constraints)
	var basis [][]float64
	for e := 0; e < n; e++ {
		v := make([]float64, n)
		v[e] = 1
		for _, b := range span {
			d := 0.0
			for i := range v {
				d += v[i] * b[i]
			}
			for i := range v {
				v[i] -= d * b[i]
			}
		}
		for _, b := range basis {
			d := 0.0
			for i := range v {
				d += v[i] * b[i]
			}
			for i := range v {
				v[i] -= d * b[i]
			}
		}
		norm := 0.0
		for _, x := range v {
			norm += x * x
		}
		norm = math.Sqrt(norm)
		if norm < 1e-8 {
			continue
		}
		for i := range v {
			v[i] /= norm
		}
		basis = append(basis, v)
	}
	return basis
}
