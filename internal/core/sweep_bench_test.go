package core

import (
	"fmt"
	"sync"
	"testing"

	"repro/internal/data/adult"
	"repro/internal/dataset"
	"repro/internal/engine"
	"repro/internal/stats"
)

// benchAdult lazily generates the Adult-scale benchmark workload from
// the acceptance criteria: n >= 6000, five categorical sensitive
// attributes with domain sizes up to 41 (so the per-value kernel has
// Σ_S |Values(S)| = 61 inner iterations per candidate to amortize).
var (
	benchAdultOnce sync.Once
	benchAdultDS   *dataset.Dataset
)

const benchK = 15

func benchAdultDataset(b *testing.B) *dataset.Dataset {
	b.Helper()
	benchAdultOnce.Do(func() {
		ds, err := adult.Generate(adult.Config{Seed: 7, Rows: 6500, SkipParity: true})
		if err != nil {
			b.Fatalf("generating Adult: %v", err)
		}
		ds.MinMaxNormalize()
		benchAdultDS = ds
	})
	return benchAdultDS
}

func benchState(b *testing.B, ds *dataset.Dataset, naive bool) *state {
	b.Helper()
	cfg := Config{K: benchK, AutoLambda: true, Seed: 5, naiveKernel: naive}
	lambda := DefaultLambda(ds.N(), cfg.K)
	assign := engine.InitAssignment(ds.Features, cfg.K, cfg.Init, stats.NewRNG(cfg.Seed))
	return newState(ds, &cfg, lambda, assign, nil)
}

// BenchmarkSweep measures one full coordinate-descent pass (the FairKM
// hot path) with the O(1) aggregate kernel versus the per-value
// reference kernel. The acceptance bar for this PR is aggregate >= 2x
// faster than naive at this scale.
func BenchmarkSweep(b *testing.B) {
	ds := benchAdultDataset(b)
	for _, mode := range []struct {
		name  string
		naive bool
	}{{"aggregate", false}, {"naive", true}} {
		b.Run(mode.name, func(b *testing.B) {
			st := benchState(b, ds, mode.naive)
			sw := engine.NewFullSweep(st)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				sw.Sweep()
			}
		})
	}
}

// BenchmarkBestMove measures the per-point scoring kernel alone: one
// bestMove call scores k candidate clusters across all sensitive
// attributes.
func BenchmarkBestMove(b *testing.B) {
	ds := benchAdultDataset(b)
	for _, mode := range []struct {
		name  string
		naive bool
	}{{"aggregate", false}, {"naive", true}} {
		b.Run(mode.name, func(b *testing.B) {
			st := benchState(b, ds, mode.naive)
			b.ResetTimer()
			row := 0
			for i := 0; i < b.N; i++ {
				st.bestMove(row, st.assign[row])
				row++
				if row == st.n {
					row = 0
				}
			}
		})
	}
}

// BenchmarkSweepParallel measures the frozen-statistics parallel sweep
// at several worker counts (p=1 isolates the frozen-snapshot overhead
// versus BenchmarkSweep/aggregate).
func BenchmarkSweepParallel(b *testing.B) {
	ds := benchAdultDataset(b)
	for _, p := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("p=%d", p), func(b *testing.B) {
			st := benchState(b, ds, false)
			sw := engine.NewFrozenSweep(st, engine.FrozenOpts{Workers: p, Revalidate: true})
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				sw.Sweep()
			}
		})
	}
}

// BenchmarkRunAdult is the end-to-end wall-clock view: a full FairKM
// run (up to 10 iterations) sequentially versus with an auto-sized
// parallel sweep.
func BenchmarkRunAdult(b *testing.B) {
	ds := benchAdultDataset(b)
	for _, mode := range []struct {
		name string
		par  int
	}{{"sequential", 0}, {"parallel", ParallelismAuto}} {
		b.Run(mode.name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := Run(ds, Config{
					K: benchK, AutoLambda: true, Seed: 5, MaxIter: 10,
					Parallelism: mode.par,
				}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
