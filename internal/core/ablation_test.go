package core

import (
	"math"
	"testing"

	"repro/internal/dataset"
	"repro/internal/stats"
)

// TestDeltaMatchesNaiveUnderAblationKnobs extends the central delta
// property to the ablation configuration space: arbitrary cluster-
// weight exponents, disabled domain normalization and per-attribute
// weights must all keep the incremental solver consistent with the
// from-scratch evaluation.
func TestDeltaMatchesNaiveUnderAblationKnobs(t *testing.T) {
	rng := stats.NewRNG(101)
	for trial := 0; trial < 20; trial++ {
		n := 10 + rng.Intn(25)
		k := 2 + rng.Intn(3)
		ds := randomDataset(t, rng, n, 2, 2, 1)
		cfg := Config{
			K:                     k,
			Lambda:                []float64{1, 10, 200}[rng.Intn(3)],
			ClusterWeightExponent: []float64{1, 1.5, 2, 3}[rng.Intn(4)],
			NoDomainNormalization: rng.Bernoulli(0.5),
			SkewCompensation:      rng.Bernoulli(0.5),
			Weights: map[string]float64{
				"cat0": 0.5 + rng.Float64(),
				"cat1": rng.Float64() * 2,
				"num0": rng.Float64(),
			},
		}
		assign := make([]int, n)
		for i := range assign {
			assign[i] = rng.Intn(k)
		}
		st := newState(ds, &cfg, cfg.Lambda, append([]int(nil), assign...), nil)

		baseFair, err := FairnessDeviationWith(ds, assign, k, cfg)
		if err != nil {
			t.Fatal(err)
		}
		for probe := 0; probe < 8; probe++ {
			i := rng.Intn(n)
			from := st.assign[i]
			to := rng.Intn(k)
			if to == from {
				continue
			}
			dFair := (st.deviationWithDelta(from, i, -1) - st.devCache[from]) +
				(st.deviationWithDelta(to, i, +1) - st.devCache[to])

			moved := append([]int(nil), st.assign...)
			moved[i] = to
			afterFair, err := FairnessDeviationWith(ds, moved, k, cfg)
			if err != nil {
				t.Fatal(err)
			}
			naive := afterFair - baseFair
			if math.Abs(dFair-naive) > 1e-9+1e-7*math.Abs(naive) {
				t.Fatalf("trial %d probe %d: fairness delta %v, naive %v (cfg %+v)",
					trial, probe, dFair, naive, cfg)
			}
			st.move(i, from, to)
			baseFair = afterFair
		}
	}
}

// TestExponentOneRewardsSkew verifies the phenomenon Section 4.1 warns
// about: with a linear cluster weight (e=1) the fairness loss of a
// maximally skewed 2-cluster split is weighted less aggressively than
// with the paper's e=2 relative to a balanced split, i.e. the squared
// weighting penalizes large skewed clusters harder.
func TestExponentExposesClusterWeightTradeoff(t *testing.T) {
	rng := stats.NewRNG(7)
	ds := randomDataset(t, rng, 40, 2, 1, 0)
	assign := make([]int, 40)
	// One giant cluster with 39 points, one singleton.
	for i := range assign {
		assign[i] = 0
	}
	assign[0] = 1
	dev1, err := FairnessDeviationWith(ds, assign, 2, Config{ClusterWeightExponent: 1})
	if err != nil {
		t.Fatal(err)
	}
	dev2, err := FairnessDeviationWith(ds, assign, 2, Config{ClusterWeightExponent: 2})
	if err != nil {
		t.Fatal(err)
	}
	// The giant cluster nearly mirrors the dataset (tiny deviation) and
	// the singleton is maximally skewed. e=1 weights the singleton by
	// 1/40, e=2 by 1/1600: the linear exponent must yield the larger
	// total, showing why it can be gamed less easily... and the squared
	// one must not be larger.
	if dev2 > dev1 {
		t.Errorf("e=2 deviation %v exceeds e=1 %v on skewed split", dev2, dev1)
	}
}

// TestNoDomainNormalizationAmplifiesWideAttrs: without Eq. 4's
// normalization a high-cardinality attribute contributes |Values(S)|
// times more, so the total deviation must grow.
func TestNoDomainNormalizationAmplifiesWideAttrs(t *testing.T) {
	rng := stats.NewRNG(13)
	ds := randomDataset(t, rng, 30, 2, 2, 0)
	assign := make([]int, 30)
	for i := range assign {
		assign[i] = rng.Intn(3)
	}
	norm, err := FairnessDeviationWith(ds, assign, 3, Config{})
	if err != nil {
		t.Fatal(err)
	}
	raw, err := FairnessDeviationWith(ds, assign, 3, Config{NoDomainNormalization: true})
	if err != nil {
		t.Fatal(err)
	}
	if raw < norm {
		t.Errorf("unnormalized deviation %v smaller than normalized %v", raw, norm)
	}
}

// TestRunWithAblationKnobs: Run must work end-to-end with non-default
// knobs and stay self-consistent with the matching evaluator.
func TestRunWithAblationKnobs(t *testing.T) {
	rng := stats.NewRNG(17)
	ds := randomDataset(t, rng, 50, 3, 2, 1)
	cfg := Config{K: 3, Lambda: 20, Seed: 4, ClusterWeightExponent: 1, NoDomainNormalization: true}
	res, err := Run(ds, cfg)
	if err != nil {
		t.Fatal(err)
	}
	fair, err := FairnessDeviationWith(ds, res.Assign, 3, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(res.FairnessTerm-fair) > 1e-9+1e-7*fair {
		t.Errorf("FairnessTerm %v, want %v", res.FairnessTerm, fair)
	}
}

// TestSkewCompensationAmplifiesRareValues: with a 90/10 binary split,
// skew compensation multiplies both value deviations by 1/(0.9·0.1) ≈
// 11.1, so the compensated deviation of any clustering must be that
// factor larger (both values share the same multiplier for a binary
// attribute).
func TestSkewCompensationAmplifiesRareValues(t *testing.T) {
	b := dataset.NewBuilder("x")
	b.AddCategoricalSensitive("g")
	for i := 0; i < 30; i++ {
		v := "major"
		if i%10 == 0 {
			v = "minor"
		}
		b.Row([]float64{float64(i)}, []string{v}, nil)
	}
	ds, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	assign := make([]int, 30)
	for i := range assign {
		assign[i] = i % 3
	}
	plain, err := FairnessDeviationWith(ds, assign, 3, Config{})
	if err != nil {
		t.Fatal(err)
	}
	comp, err := FairnessDeviationWith(ds, assign, 3, Config{SkewCompensation: true})
	if err != nil {
		t.Fatal(err)
	}
	fr := 0.1
	wantFactor := 1 / (fr * (1 - fr))
	if plain == 0 {
		t.Skip("clustering happened to be perfectly fair")
	}
	if math.Abs(comp/plain-wantFactor) > 1e-9 {
		t.Errorf("compensation factor = %v, want %v", comp/plain, wantFactor)
	}
}

// TestSkewCompensationHelpsSkewedAttribute: on data with an 87%-skewed
// attribute (the paper's Race case), the compensated run must achieve
// at-least-as-good fairness on that attribute as the plain run, at
// matched λ.
func TestSkewCompensationHelpsSkewedAttribute(t *testing.T) {
	b := dataset.NewBuilder("x", "y")
	b.AddCategoricalSensitive("race")
	rng := stats.NewRNG(71)
	for i := 0; i < 200; i++ {
		v := "white"
		if i%8 == 0 {
			v = "other"
		}
		blob := 0.0
		// Rare value concentrates in one blob, like real census data.
		if v == "other" || rng.Bernoulli(0.3) {
			blob = 4
		}
		b.Row([]float64{rng.Gaussian(blob, 0.6), rng.Gaussian(0, 1)}, []string{v}, nil)
	}
	ds, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	plain, err := Run(ds, Config{K: 3, Lambda: 3000, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	comp, err := Run(ds, Config{K: 3, Lambda: 3000, Seed: 2, SkewCompensation: true})
	if err != nil {
		t.Fatal(err)
	}
	devPlain, err := FairnessDeviation(ds, plain.Assign, 3, nil)
	if err != nil {
		t.Fatal(err)
	}
	devComp, err := FairnessDeviation(ds, comp.Assign, 3, nil)
	if err != nil {
		t.Fatal(err)
	}
	if devComp > devPlain+1e-9 {
		t.Errorf("skew compensation worsened plain-metric fairness: %v vs %v", devComp, devPlain)
	}
}
