package core

import (
	"fmt"
	"math"
	"testing"

	"repro/internal/data/adult"
	"repro/internal/dataset"
	"repro/internal/stats"
)

// parityAdult generates a reduced Adult dataset once for the parity and
// determinism tests (Adult-shaped: five categorical attributes, domain
// sizes up to 41, eight correlated numeric features).
func parityAdult(t testing.TB) *dataset.Dataset {
	t.Helper()
	ds, err := adult.Generate(adult.Config{Seed: 11, Rows: 2000, SkipParity: true})
	if err != nil {
		t.Fatalf("generating Adult: %v", err)
	}
	ds.MinMaxNormalize()
	return ds
}

// parityConfigs enumerates the kernel-relevant configuration corners:
// plain, skew compensation, per-attribute weights, numeric sensitive
// attributes, ablation knobs, mini-batching.
func parityConfigs(attrWeights map[string]float64) []Config {
	return []Config{
		{K: 7, AutoLambda: true, Seed: 3},
		{K: 7, AutoLambda: true, Seed: 3, SkewCompensation: true},
		{K: 5, Lambda: 40, Seed: 9, Weights: attrWeights},
		{K: 5, Lambda: 40, Seed: 9, ClusterWeightExponent: 1},
		{K: 4, Lambda: 7, Seed: 1, NoDomainNormalization: true},
		{K: 6, AutoLambda: true, Seed: 2, MiniBatch: 100},
	}
}

// compareTrajectories asserts that two runs took the same optimization
// path: identical move decisions throughout and therefore identical
// final assignments. Objective values are compared within a tight
// relative tolerance — the aggregate kernel evaluates the same sums in
// a different floating-point association than the per-value reference,
// so last-ulp differences are expected, but any decision divergence
// would show up as an assignment or move-count mismatch.
func compareTrajectories(t *testing.T, label string, a, b *Result) {
	t.Helper()
	if a.Iterations != b.Iterations || a.Converged != b.Converged || a.TotalMoves != b.TotalMoves {
		t.Fatalf("%s: trajectory mismatch: iters %d/%d converged %v/%v moves %d/%d",
			label, a.Iterations, b.Iterations, a.Converged, b.Converged, a.TotalMoves, b.TotalMoves)
	}
	for i := range a.Assign {
		if a.Assign[i] != b.Assign[i] {
			t.Fatalf("%s: assignment mismatch at row %d: %d vs %d", label, i, a.Assign[i], b.Assign[i])
		}
	}
	if len(a.History) != len(b.History) {
		t.Fatalf("%s: history length %d vs %d", label, len(a.History), len(b.History))
	}
	relClose := func(x, y float64) bool {
		scale := math.Max(1, math.Max(math.Abs(x), math.Abs(y)))
		return math.Abs(x-y) <= 1e-9*scale
	}
	for it := range a.History {
		ha, hb := a.History[it], b.History[it]
		if ha.Moves != hb.Moves {
			t.Fatalf("%s: iteration %d made %d vs %d moves", label, it+1, ha.Moves, hb.Moves)
		}
		if !relClose(ha.Objective, hb.Objective) {
			t.Fatalf("%s: iteration %d objective %v vs %v", label, it+1, ha.Objective, hb.Objective)
		}
	}
	if !relClose(a.Objective, b.Objective) || !relClose(a.KMeansTerm, b.KMeansTerm) || !relClose(a.FairnessTerm, b.FairnessTerm) {
		t.Fatalf("%s: final objective %v/%v/%v vs %v/%v/%v", label,
			a.KMeansTerm, a.FairnessTerm, a.Objective, b.KMeansTerm, b.FairnessTerm, b.Objective)
	}
}

// TestAggregateKernelParity is the tentpole's central correctness
// claim: routing scoring through the O(1) aggregate closed forms
// produces the same objective trajectory as the per-value reference
// kernel — same moves, same assignments, same objectives — across the
// configuration corners, on both synthetic mixed data and Adult.
func TestAggregateKernelParity(t *testing.T) {
	rng := stats.NewRNG(21)
	synth := randomDataset(t, rng, 400, 6, 3, 0)
	synthNum := randomDataset(t, rng, 300, 4, 2, 2) // numeric sensitive attrs
	adultDS := parityAdult(t)

	datasets := []struct {
		name string
		ds   *dataset.Dataset
	}{
		{"synth", synth},
		{"synth+numeric", synthNum},
		{"adult", adultDS},
	}
	for _, d := range datasets {
		weights := map[string]float64{d.ds.Sensitive[0].Name: 2.5}
		for ci, base := range parityConfigs(weights) {
			cfg := base
			cfg.RecordHistory = true
			label := fmt.Sprintf("%s/cfg%d", d.name, ci)
			t.Run(label, func(t *testing.T) {
				agg := cfg
				agg.naiveKernel = false
				naive := cfg
				naive.naiveKernel = true
				ra, err := Run(d.ds, agg)
				if err != nil {
					t.Fatalf("aggregate run: %v", err)
				}
				rn, err := Run(d.ds, naive)
				if err != nil {
					t.Fatalf("naive run: %v", err)
				}
				compareTrajectories(t, label, ra, rn)

				// With identical assignments, the from-scratch Eq. 1/7/22
				// evaluation of both results is bit-identical by
				// construction; check it agrees with the incremental
				// bookkeeping too.
				ov, err := EvaluateObjective(d.ds, ra.Assign, cfg.K, ra.Lambda, cfg.Weights)
				if err != nil {
					t.Fatalf("evaluating objective: %v", err)
				}
				onlyDefaults := !cfg.SkewCompensation && cfg.ClusterWeightExponent == 0 && !cfg.NoDomainNormalization
				if onlyDefaults {
					scale := math.Max(1, math.Abs(ov.Objective))
					if math.Abs(ov.Objective-ra.Objective) > 1e-6*scale {
						t.Fatalf("from-scratch objective %v vs incremental %v", ov.Objective, ra.Objective)
					}
				}
			})
		}
	}
}

// TestParallelSweepDeterminism asserts the frozen-statistics parallel
// sweep gives bit-identical results for every worker count: the batch
// boundaries and per-point proposals are independent of how the batch
// is chunked across goroutines, and moves apply sequentially.
func TestParallelSweepDeterminism(t *testing.T) {
	rng := stats.NewRNG(33)
	synth := randomDataset(t, rng, 500, 5, 3, 1)
	adultDS := parityAdult(t)

	datasets := []struct {
		name string
		ds   *dataset.Dataset
	}{
		{"synth", synth},
		{"adult", adultDS},
	}
	for _, d := range datasets {
		for _, base := range []Config{
			{K: 8, AutoLambda: true, Seed: 4, RecordHistory: true},
			{K: 8, AutoLambda: true, Seed: 4, RecordHistory: true, SkewCompensation: true, MiniBatch: 128},
		} {
			var ref *Result
			for _, p := range []int{1, 2, 8, ParallelismAuto} {
				cfg := base
				cfg.Parallelism = p
				res, err := Run(d.ds, cfg)
				if err != nil {
					t.Fatalf("%s parallelism=%d: %v", d.name, p, err)
				}
				if ref == nil {
					ref = res
					continue
				}
				if res.Objective != ref.Objective || res.KMeansTerm != ref.KMeansTerm ||
					res.FairnessTerm != ref.FairnessTerm ||
					res.Iterations != ref.Iterations || res.TotalMoves != ref.TotalMoves {
					t.Fatalf("%s parallelism=%d diverged: obj %v vs %v, iters %d vs %d, moves %d vs %d",
						d.name, p, res.Objective, ref.Objective,
						res.Iterations, ref.Iterations, res.TotalMoves, ref.TotalMoves)
				}
				for i := range res.Assign {
					if res.Assign[i] != ref.Assign[i] {
						t.Fatalf("%s parallelism=%d: assignment mismatch at row %d", d.name, p, i)
					}
				}
			}
		}
	}
}

// TestParallelSweepKernelParity runs the parallel sweep under both
// kernels: the frozen-view scoring must make the same decisions too.
func TestParallelSweepKernelParity(t *testing.T) {
	ds := parityAdult(t)
	for _, base := range []Config{
		{K: 6, AutoLambda: true, Seed: 8, Parallelism: 4, RecordHistory: true},
		{K: 6, AutoLambda: true, Seed: 8, Parallelism: 4, RecordHistory: true, SkewCompensation: true},
	} {
		agg := base
		naive := base
		naive.naiveKernel = true
		ra, err := Run(ds, agg)
		if err != nil {
			t.Fatalf("aggregate: %v", err)
		}
		rn, err := Run(ds, naive)
		if err != nil {
			t.Fatalf("naive: %v", err)
		}
		compareTrajectories(t, "parallel-kernels", ra, rn)
	}
}

// TestParallelSweepMonotoneObjective checks the re-validation step
// keeps parallel descent monotone: the recorded per-iteration objective
// never increases.
func TestParallelSweepMonotoneObjective(t *testing.T) {
	rng := stats.NewRNG(55)
	ds := randomDataset(t, rng, 600, 5, 3, 1)
	res, err := Run(ds, Config{K: 9, AutoLambda: true, Seed: 6, Parallelism: 8, RecordHistory: true})
	if err != nil {
		t.Fatal(err)
	}
	prev := math.Inf(1)
	for _, h := range res.History {
		if h.Objective > prev*(1+1e-12) {
			t.Fatalf("objective rose at iteration %d: %v -> %v", h.Iteration, prev, h.Objective)
		}
		prev = h.Objective
	}
}
