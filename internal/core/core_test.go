package core

import (
	"math"
	"testing"

	"repro/internal/dataset"
	"repro/internal/kmeans"
	"repro/internal/stats"
)

// randomDataset builds a small random mixed dataset for white-box tests.
func randomDataset(t *testing.T, rng *stats.RNG, n, dim, nCat, nNum int) *dataset.Dataset {
	t.Helper()
	b := dataset.NewBuilder(featureNames(dim)...)
	catDomains := make([][]string, nCat)
	for a := 0; a < nCat; a++ {
		b.AddCategoricalSensitive(catName(a))
		size := 2 + rng.Intn(4)
		dom := make([]string, size)
		for v := range dom {
			dom[v] = string(rune('a' + v))
		}
		catDomains[a] = dom
	}
	for a := 0; a < nNum; a++ {
		b.AddNumericSensitive(numName(a))
	}
	for i := 0; i < n; i++ {
		feats := make([]float64, dim)
		for j := range feats {
			feats[j] = rng.Gaussian(0, 2)
		}
		cats := make([]string, nCat)
		for a := range cats {
			cats[a] = catDomains[a][rng.Intn(len(catDomains[a]))]
		}
		nums := make([]float64, nNum)
		for a := range nums {
			nums[a] = rng.Gaussian(40, 10)
		}
		b.Row(feats, cats, nums)
	}
	ds, err := b.Build()
	if err != nil {
		t.Fatalf("building random dataset: %v", err)
	}
	return ds
}

func featureNames(dim int) []string {
	names := make([]string, dim)
	for i := range names {
		names[i] = "f" + string(rune('0'+i))
	}
	return names
}

func catName(i int) string { return "cat" + string(rune('0'+i)) }
func numName(i int) string { return "num" + string(rune('0'+i)) }

// TestDeltaMatchesNaiveObjective is the central correctness property:
// the incremental move deltas used by bestMove must equal the difference
// of full from-scratch objective evaluations (Eqs. 1, 7, 22).
func TestDeltaMatchesNaiveObjective(t *testing.T) {
	rng := stats.NewRNG(7)
	for trial := 0; trial < 30; trial++ {
		n := 8 + rng.Intn(30)
		k := 2 + rng.Intn(4)
		if k > n {
			k = n
		}
		ds := randomDataset(t, rng, n, 1+rng.Intn(4), 1+rng.Intn(3), rng.Intn(2))
		lambda := []float64{0, 0.5, 3, 50}[rng.Intn(4)]
		cfg := Config{K: k, Lambda: lambda}
		assign := make([]int, n)
		for i := range assign {
			assign[i] = rng.Intn(k)
		}
		st := newState(ds, &cfg, lambda, append([]int(nil), assign...), nil)

		base, err := EvaluateObjective(ds, assign, k, lambda, nil)
		if err != nil {
			t.Fatalf("trial %d: naive objective: %v", trial, err)
		}
		for probe := 0; probe < 10; probe++ {
			i := rng.Intn(n)
			from := st.assign[i]
			to := rng.Intn(k)
			if to == from {
				continue
			}
			// Incremental delta, exactly as bestMove computes it.
			dKM := st.kmeansOutDelta(i, from) + st.kmeansInDelta(i, to)
			dFair := (st.deviationWithDelta(from, i, -1) - st.devCache[from]) +
				(st.deviationWithDelta(to, i, +1) - st.devCache[to])
			incr := dKM + lambda*dFair

			moved := append([]int(nil), st.assign...)
			moved[i] = to
			after, err := EvaluateObjective(ds, moved, k, lambda, nil)
			if err != nil {
				t.Fatalf("trial %d: naive objective after move: %v", trial, err)
			}
			naive := after.Objective - base.Objective
			if math.Abs(incr-naive) > 1e-7*(1+math.Abs(naive)) {
				t.Fatalf("trial %d probe %d: delta mismatch: incremental %v naive %v (lambda=%v)",
					trial, probe, incr, naive, lambda)
			}
			// Apply the move so subsequent probes start from fresh state.
			st.move(i, from, to)
			base = after
		}
	}
}

// TestRunResultSelfConsistent verifies the final Result decomposition
// matches a from-scratch evaluation of the returned assignment.
func TestRunResultSelfConsistent(t *testing.T) {
	rng := stats.NewRNG(11)
	for trial := 0; trial < 10; trial++ {
		n := 20 + rng.Intn(40)
		k := 2 + rng.Intn(4)
		ds := randomDataset(t, rng, n, 3, 2, 1)
		res, err := Run(ds, Config{K: k, Lambda: 5, Seed: int64(trial), MaxIter: 15})
		if err != nil {
			t.Fatalf("trial %d: Run: %v", trial, err)
		}
		want, err := EvaluateObjective(ds, res.Assign, k, 5, nil)
		if err != nil {
			t.Fatalf("trial %d: evaluate: %v", trial, err)
		}
		if math.Abs(res.KMeansTerm-want.KMeansTerm) > 1e-6*(1+want.KMeansTerm) {
			t.Errorf("trial %d: KMeansTerm = %v, want %v", trial, res.KMeansTerm, want.KMeansTerm)
		}
		if math.Abs(res.FairnessTerm-want.FairnessTerm) > 1e-9+1e-6*want.FairnessTerm {
			t.Errorf("trial %d: FairnessTerm = %v, want %v", trial, res.FairnessTerm, want.FairnessTerm)
		}
		if math.Abs(res.Objective-want.Objective) > 1e-6*(1+want.Objective) {
			t.Errorf("trial %d: Objective = %v, want %v", trial, res.Objective, want.Objective)
		}
	}
}

// TestObjectiveNeverIncreases: coordinate descent must be monotone in
// the objective across iterations.
func TestObjectiveNeverIncreases(t *testing.T) {
	rng := stats.NewRNG(13)
	ds := randomDataset(t, rng, 60, 4, 3, 1)
	res, err := Run(ds, Config{K: 4, Lambda: 10, Seed: 3, MaxIter: 20, RecordHistory: true})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if len(res.History) == 0 {
		t.Fatal("expected recorded history")
	}
	for i := 1; i < len(res.History); i++ {
		prev, cur := res.History[i-1].Objective, res.History[i].Objective
		if cur > prev+1e-8*(1+math.Abs(prev)) {
			t.Errorf("objective increased at iteration %d: %v -> %v", i+1, prev, cur)
		}
	}
}

// TestLambdaZeroIgnoresSensitive: with λ=0 the sensitive attributes must
// not influence the clustering; FairKM should match a run on the same
// dataset with sensitive attributes stripped.
func TestLambdaZeroIgnoresSensitive(t *testing.T) {
	rng := stats.NewRNG(17)
	ds := randomDataset(t, rng, 50, 3, 2, 1)
	blind := &dataset.Dataset{FeatureNames: ds.FeatureNames, Features: ds.Features}
	a, err := Run(ds, Config{K: 3, Lambda: 0, Seed: 42})
	if err != nil {
		t.Fatalf("Run with sensitive: %v", err)
	}
	b, err := Run(blind, Config{K: 3, Lambda: 0, Seed: 42})
	if err != nil {
		t.Fatalf("Run blind: %v", err)
	}
	for i := range a.Assign {
		if a.Assign[i] != b.Assign[i] {
			t.Fatalf("assignment %d differs: %d vs %d", i, a.Assign[i], b.Assign[i])
		}
	}
}

// TestHighLambdaImprovesFairness: cranking λ must not worsen the
// fairness term relative to λ=0, on a dataset engineered so that
// feature-coherent clusters are unfair.
func TestHighLambdaImprovesFairness(t *testing.T) {
	// Two feature blobs, each blob dominated by one sensitive value.
	b := dataset.NewBuilder("x")
	b.AddCategoricalSensitive("group")
	rng := stats.NewRNG(23)
	for i := 0; i < 40; i++ {
		g := "m"
		if i%10 == 0 {
			g = "f"
		}
		b.Row([]float64{rng.Gaussian(0, 0.5)}, []string{g}, nil)
	}
	for i := 0; i < 40; i++ {
		g := "f"
		if i%10 == 0 {
			g = "m"
		}
		b.Row([]float64{rng.Gaussian(10, 0.5)}, []string{g}, nil)
	}
	ds, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	unfair, err := Run(ds, Config{K: 2, Lambda: 0, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	// The blobs are 10 apart so per-point SSE penalties are ~100; a λ
	// large relative to that is needed to force cross-blob mixing.
	fair, err := Run(ds, Config{K: 2, Lambda: 1e6, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if fair.FairnessTerm >= unfair.FairnessTerm {
		t.Errorf("fairness term with λ=1e6 (%v) not better than λ=0 (%v)",
			fair.FairnessTerm, unfair.FairnessTerm)
	}
}

func TestValidateErrors(t *testing.T) {
	rng := stats.NewRNG(29)
	ds := randomDataset(t, rng, 10, 2, 1, 0)
	cases := []struct {
		name string
		cfg  Config
	}{
		{"k too small", Config{K: 0}},
		{"k too large", Config{K: 11}},
		{"negative lambda", Config{K: 2, Lambda: -1}},
		{"negative minibatch", Config{K: 2, MiniBatch: -5}},
		{"negative weight", Config{K: 2, Weights: map[string]float64{"cat0": -1}}},
		{"unknown weight attr", Config{K: 2, Weights: map[string]float64{"nope": 1}}},
	}
	for _, tc := range cases {
		if _, err := Run(ds, tc.cfg); err == nil {
			t.Errorf("%s: expected error", tc.name)
		}
	}
	if _, err := Run(nil, Config{K: 2}); err == nil {
		t.Error("nil dataset: expected error")
	}
	if _, err := Run(&dataset.Dataset{}, Config{K: 1}); err == nil {
		t.Error("empty dataset: expected error")
	}
}

func TestDefaultLambda(t *testing.T) {
	if got := DefaultLambda(15682, 5); math.Abs(got-9837004.96) > 1e-6 {
		// (15682/5)² = 3136.4² = 9837004.96 — the paper rounds this to
		// "10⁶" order of magnitude in Section 5.4.
		t.Errorf("DefaultLambda(15682,5) = %v", got)
	}
	if got := DefaultLambda(1000, 10); got != 10000 {
		t.Errorf("DefaultLambda(1000,10) = %v, want 10000", got)
	}
}

// TestFairnessDeviationZeroForProportionalClusters: a clustering whose
// clusters each mirror the dataset distribution exactly must have zero
// fairness deviation.
func TestFairnessDeviationZeroForProportionalClusters(t *testing.T) {
	b := dataset.NewBuilder("x")
	b.AddCategoricalSensitive("g")
	// 4 copies of each (cluster, value) combination: clusters 0 and 1
	// each get 2 "a" and 2 "b".
	vals := []string{"a", "a", "b", "b", "a", "a", "b", "b"}
	for i, v := range vals {
		b.Row([]float64{float64(i)}, []string{v}, nil)
	}
	ds, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	assign := []int{0, 0, 0, 0, 1, 1, 1, 1}
	dev, err := FairnessDeviation(ds, assign, 2, nil)
	if err != nil {
		t.Fatal(err)
	}
	if dev != 0 {
		t.Errorf("deviation = %v, want 0", dev)
	}
	// And a maximally skewed clustering must be strictly positive.
	skew := []int{0, 0, 1, 1, 0, 0, 1, 1}
	dev2, err := FairnessDeviation(ds, skew, 2, nil)
	if err != nil {
		t.Fatal(err)
	}
	if dev2 <= 0 {
		t.Errorf("skewed deviation = %v, want > 0", dev2)
	}
}

// TestWeightsScaleFairnessTerm: doubling all attribute weights must
// double the fairness deviation.
func TestWeightsScaleFairnessTerm(t *testing.T) {
	rng := stats.NewRNG(31)
	ds := randomDataset(t, rng, 30, 2, 2, 1)
	assign := make([]int, 30)
	for i := range assign {
		assign[i] = rng.Intn(3)
	}
	w1 := map[string]float64{"cat0": 1, "cat1": 1, "num0": 1}
	w2 := map[string]float64{"cat0": 2, "cat1": 2, "num0": 2}
	d1, err := FairnessDeviation(ds, assign, 3, w1)
	if err != nil {
		t.Fatal(err)
	}
	d2, err := FairnessDeviation(ds, assign, 3, w2)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(d2-2*d1) > 1e-12 {
		t.Errorf("doubling weights: %v vs 2*%v", d2, d1)
	}
}

// TestZeroWeightDisablesAttribute: an attribute with weight 0 must not
// contribute; deviation should equal a dataset without it.
func TestZeroWeightDisablesAttribute(t *testing.T) {
	rng := stats.NewRNG(37)
	ds := randomDataset(t, rng, 30, 2, 2, 0)
	assign := make([]int, 30)
	for i := range assign {
		assign[i] = rng.Intn(3)
	}
	dZero, err := FairnessDeviation(ds, assign, 3, map[string]float64{"cat1": 0})
	if err != nil {
		t.Fatal(err)
	}
	only, err := ds.WithSensitive("cat0")
	if err != nil {
		t.Fatal(err)
	}
	dOnly, err := FairnessDeviation(only, assign, 3, nil)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(dZero-dOnly) > 1e-12 {
		t.Errorf("zero weight %v vs attribute removed %v", dZero, dOnly)
	}
}

// TestMiniBatchTerminates verifies the mini-batch variant runs and
// yields a valid self-consistent result.
func TestMiniBatchTerminates(t *testing.T) {
	rng := stats.NewRNG(41)
	ds := randomDataset(t, rng, 80, 3, 2, 0)
	res, err := Run(ds, Config{K: 4, Lambda: 3, Seed: 5, MiniBatch: 16, MaxIter: 25})
	if err != nil {
		t.Fatalf("Run minibatch: %v", err)
	}
	want, err := EvaluateObjective(ds, res.Assign, 4, 3, nil)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(res.Objective-want.Objective) > 1e-6*(1+want.Objective) {
		t.Errorf("minibatch objective %v, want %v", res.Objective, want.Objective)
	}
}

// TestNumericSensitiveOnly exercises the Eq. 22 extension without any
// categorical attribute: clusters should pull their numeric-sensitive
// means towards the dataset mean as λ grows.
func TestNumericSensitiveOnly(t *testing.T) {
	b := dataset.NewBuilder("x")
	b.AddNumericSensitive("age")
	rng := stats.NewRNG(43)
	for i := 0; i < 50; i++ {
		// Feature correlates with age: blob 0 young, blob 1 old.
		if i < 25 {
			b.Row([]float64{rng.Gaussian(0, 1)}, nil, []float64{rng.Gaussian(25, 2)})
		} else {
			b.Row([]float64{rng.Gaussian(8, 1)}, nil, []float64{rng.Gaussian(55, 2)})
		}
	}
	ds, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	loose, err := Run(ds, Config{K: 2, Lambda: 0, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	tight, err := Run(ds, Config{K: 2, Lambda: 1e6, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	if tight.FairnessTerm >= loose.FairnessTerm {
		t.Errorf("numeric fairness term did not improve: λ=1e6 %v vs λ=0 %v",
			tight.FairnessTerm, loose.FairnessTerm)
	}
}

// TestSweepMatchesKMeansStyleDescent: with a single cluster there is
// nothing to optimize and the result must be stable immediately.
func TestSingleCluster(t *testing.T) {
	rng := stats.NewRNG(47)
	ds := randomDataset(t, rng, 12, 2, 1, 0)
	res, err := Run(ds, Config{K: 1, Lambda: 4, Seed: 0})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Converged {
		t.Error("single-cluster run did not converge")
	}
	if res.Sizes[0] != 12 {
		t.Errorf("size = %d, want 12", res.Sizes[0])
	}
	// With one cluster, cluster distribution == dataset distribution.
	if res.FairnessTerm > 1e-15 {
		t.Errorf("fairness term %v, want 0 for k=1", res.FairnessTerm)
	}
}

// TestInitMethods: all init methods must produce valid assignments.
func TestInitMethods(t *testing.T) {
	rng := stats.NewRNG(53)
	ds := randomDataset(t, rng, 30, 3, 1, 0)
	for _, init := range []kmeans.InitMethod{kmeans.RandomPartition, kmeans.KMeansPlusPlus, kmeans.RandomPoints} {
		res, err := Run(ds, Config{K: 3, Lambda: 1, Seed: 9, Init: init})
		if err != nil {
			t.Fatalf("init %v: %v", init, err)
		}
		for i, c := range res.Assign {
			if c < 0 || c >= 3 {
				t.Fatalf("init %v: row %d assigned to %d", init, i, c)
			}
		}
	}
}

// TestDeterminism: identical seeds must give identical results.
func TestDeterminism(t *testing.T) {
	rng := stats.NewRNG(59)
	ds := randomDataset(t, rng, 40, 3, 2, 1)
	a, err := Run(ds, Config{K: 3, AutoLambda: true, Seed: 77})
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(ds, Config{K: 3, AutoLambda: true, Seed: 77})
	if err != nil {
		t.Fatal(err)
	}
	if a.Objective != b.Objective {
		t.Errorf("objectives differ across identical runs: %v vs %v", a.Objective, b.Objective)
	}
	for i := range a.Assign {
		if a.Assign[i] != b.Assign[i] {
			t.Fatalf("assignment %d differs", i)
		}
	}
}

func TestPredict(t *testing.T) {
	rng := stats.NewRNG(61)
	ds := randomDataset(t, rng, 40, 3, 1, 0)
	res, err := Run(ds, Config{K: 3, Lambda: 1, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	// Predicting a training point must return a cluster whose centroid
	// is at least as close as the assigned one (assignment under the
	// fairness term may differ from nearest-centroid).
	for i := 0; i < ds.N(); i++ {
		c := res.Predict(ds.Features[i])
		dPred := stats.SqDist(ds.Features[i], res.Centroids[c])
		dAssigned := stats.SqDist(ds.Features[i], res.Centroids[res.Assign[i]])
		if dPred > dAssigned+1e-12 {
			t.Fatalf("row %d: predicted cluster %d farther than assigned %d", i, c, res.Assign[i])
		}
	}
	// Dimensionality mismatch panics.
	defer func() {
		if recover() == nil {
			t.Error("expected panic on dimension mismatch")
		}
	}()
	res.Predict([]float64{1})
}
