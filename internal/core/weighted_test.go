package core

import (
	"math"
	"testing"

	"repro/internal/dataset"
	"repro/internal/stats"
	"repro/internal/testfix"
)

// unitWeights returns an explicit all-ones weight vector.
func unitWeights(n int) []float64 {
	w := make([]float64, n)
	for i := range w {
		w[i] = 1
	}
	return w
}

// TestWeightedUnitParity: RunWeighted with unit weights must reproduce
// Run bit-for-bit — same assignments, same iteration count, identical
// IEEE-754 objective bits — across kernel corners and sweep strategies.
// This is the contract that makes the weighted kernel a strict
// generalization rather than a second solver.
func TestWeightedUnitParity(t *testing.T) {
	datasets := map[string]*dataset.Dataset{
		"synth": testfix.Synth(21, 400, 6, 3, 0),
		"mixed": testfix.Synth(22, 300, 4, 2, 2),
		"adult": testfix.Adult(11, 1500),
	}
	configs := map[string]Config{
		"seq":        {K: 7, AutoLambda: true, Seed: 3},
		"skew":       {K: 5, AutoLambda: true, Seed: 3, SkewCompensation: true},
		"weights":    {K: 5, Lambda: 40, Seed: 9, Weights: map[string]float64{"cat0": 2.5}},
		"minibatch":  {K: 6, AutoLambda: true, Seed: 2, MiniBatch: 100},
		"par2":       {K: 7, AutoLambda: true, Seed: 3, Parallelism: 2},
		"partition":  {K: 7, AutoLambda: true, Seed: 3, Init: 1 /* RandomPartition */},
		"exponent1":  {K: 6, Lambda: 25, Seed: 4, ClusterWeightExponent: 1},
		"nodomnorm":  {K: 6, Lambda: 25, Seed: 4, NoDomainNormalization: true},
		"naivekern":  {K: 5, AutoLambda: true, Seed: 7, naiveKernel: true},
		"tolbounded": {K: 6, AutoLambda: true, Seed: 5, Tol: 1e-6},
	}
	for dsName, ds := range datasets {
		for cfgName, cfg := range configs {
			if cfgName == "weights" && dsName == "adult" {
				continue // adult has no cat0 attribute
			}
			ref, err := Run(ds, cfg)
			if err != nil {
				t.Fatalf("%s/%s: Run: %v", dsName, cfgName, err)
			}
			got, err := RunWeighted(ds, unitWeights(ds.N()), cfg)
			if err != nil {
				t.Fatalf("%s/%s: RunWeighted: %v", dsName, cfgName, err)
			}
			if got.Iterations != ref.Iterations || got.Converged != ref.Converged {
				t.Errorf("%s/%s: iterations %d/%v vs %d/%v", dsName, cfgName,
					got.Iterations, got.Converged, ref.Iterations, ref.Converged)
			}
			for i := range ref.Assign {
				if got.Assign[i] != ref.Assign[i] {
					t.Fatalf("%s/%s: assign[%d] = %d, want %d", dsName, cfgName, i, got.Assign[i], ref.Assign[i])
				}
			}
			if math.Float64bits(got.Objective) != math.Float64bits(ref.Objective) {
				t.Errorf("%s/%s: objective bits differ: %v vs %v", dsName, cfgName, got.Objective, ref.Objective)
			}
			if math.Float64bits(got.KMeansTerm) != math.Float64bits(ref.KMeansTerm) ||
				math.Float64bits(got.FairnessTerm) != math.Float64bits(ref.FairnessTerm) {
				t.Errorf("%s/%s: decomposition differs: (%v, %v) vs (%v, %v)", dsName, cfgName,
					got.KMeansTerm, got.FairnessTerm, ref.KMeansTerm, ref.FairnessTerm)
			}
			if got.Masses == nil {
				t.Errorf("%s/%s: weighted run did not report Masses", dsName, cfgName)
			}
		}
	}
}

// blobDataset builds k well-separated Gaussian blobs with a correlated
// binary sensitive attribute — structure clear enough that weighted
// descent and descent over explicit duplicates reach the same optimum.
func blobDataset(seed int64, n, blobs int) *dataset.Dataset {
	rng := stats.NewRNG(seed)
	b := dataset.NewBuilder("x", "y")
	b.AddCategoricalSensitive("g")
	for i := 0; i < n; i++ {
		blob := i % blobs
		v := "a"
		if rng.Float64() < 0.2+0.1*float64(blob) {
			v = "b"
		}
		b.Row([]float64{
			rng.Gaussian(float64(blob)*12, 0.8),
			rng.Gaussian(float64(blob%2)*9, 0.8),
		}, []string{v}, nil)
	}
	ds, err := b.Build()
	if err != nil {
		panic(err)
	}
	return ds
}

// duplicate expands ds and a per-row integer weight vector into the
// explicit multiset (copies adjacent), returning the expanded dataset
// and a map from expanded row to source row.
func duplicate(ds *dataset.Dataset, w []int) (*dataset.Dataset, []int) {
	var idx []int
	for i, wi := range w {
		for r := 0; r < wi; r++ {
			idx = append(idx, i)
		}
	}
	return ds.Subset(idx), idx
}

// TestWeightedDuplicationParity: FairKM over integer-weighted rows must
// match FairKM over the explicitly duplicated dataset — same final
// assignment for every duplicate group, objective equal within 1e-9
// relative — when both start from the same partition.
func TestWeightedDuplicationParity(t *testing.T) {
	ds := blobDataset(5, 240, 4)
	rng := stats.NewRNG(17)
	w := make([]int, ds.N())
	wf := make([]float64, ds.N())
	for i := range w {
		w[i] = 1 + rng.Intn(3)
		wf[i] = float64(w[i])
	}
	dup, src := duplicate(ds, w)

	const k = 4
	const lambda = 200
	initW := make([]int, ds.N())
	for i := range initW {
		initW[i] = i % k
	}
	initD := make([]int, dup.N())
	for j, i := range src {
		initD[j] = initW[i]
	}

	wres, err := RunWeighted(ds, wf, Config{K: k, Lambda: lambda, InitAssign: initW})
	if err != nil {
		t.Fatal(err)
	}
	dres, err := Run(dup, Config{K: k, Lambda: lambda, InitAssign: initD})
	if err != nil {
		t.Fatal(err)
	}

	// Every duplicate must sit where its weighted original sits.
	for j, i := range src {
		if dres.Assign[j] != wres.Assign[i] {
			t.Fatalf("duplicate %d (source row %d): cluster %d, weighted run says %d",
				j, i, dres.Assign[j], wres.Assign[i])
		}
	}
	if rel := math.Abs(wres.Objective-dres.Objective) / math.Abs(dres.Objective); rel > 1e-9 {
		t.Errorf("objective %v (weighted) vs %v (duplicated): rel err %v", wres.Objective, dres.Objective, rel)
	}
	if rel := math.Abs(wres.FairnessTerm-dres.FairnessTerm) / (1 + math.Abs(dres.FairnessTerm)); rel > 1e-9 {
		t.Errorf("fairness term %v vs %v", wres.FairnessTerm, dres.FairnessTerm)
	}
	// Cluster masses must equal duplicated cardinalities.
	for c := 0; c < k; c++ {
		if math.Abs(wres.Masses[c]-float64(dres.Sizes[c])) > 1e-9 {
			t.Errorf("cluster %d mass %v, duplicated size %d", c, wres.Masses[c], dres.Sizes[c])
		}
	}
}

// TestEvaluateObjectiveWeightedAgainstDuplication: the from-scratch
// weighted objective of ANY assignment must equal the unweighted
// objective of the duplicated data under the corresponding assignment —
// the static form of duplication parity, free of trajectory concerns.
func TestEvaluateObjectiveWeightedAgainstDuplication(t *testing.T) {
	ds := testfix.Synth(31, 150, 5, 2, 1)
	rng := stats.NewRNG(8)
	w := make([]int, ds.N())
	wf := make([]float64, ds.N())
	for i := range w {
		w[i] = 1 + rng.Intn(4)
		wf[i] = float64(w[i])
	}
	dup, src := duplicate(ds, w)
	const k = 6
	for trial := 0; trial < 5; trial++ {
		assign := make([]int, ds.N())
		for i := range assign {
			assign[i] = rng.Intn(k)
		}
		expanded := make([]int, dup.N())
		for j, i := range src {
			expanded[j] = assign[i]
		}
		wv, err := EvaluateObjectiveWeighted(ds, wf, assign, k, 50, nil)
		if err != nil {
			t.Fatal(err)
		}
		dv, err := EvaluateObjective(dup, expanded, k, 50, nil)
		if err != nil {
			t.Fatal(err)
		}
		if rel := math.Abs(wv.Objective-dv.Objective) / (1 + math.Abs(dv.Objective)); rel > 1e-9 {
			t.Errorf("trial %d: objective %v vs duplicated %v", trial, wv.Objective, dv.Objective)
		}
		if rel := math.Abs(wv.FairnessTerm-dv.FairnessTerm) / (1 + math.Abs(dv.FairnessTerm)); rel > 1e-9 {
			t.Errorf("trial %d: fairness %v vs duplicated %v", trial, wv.FairnessTerm, dv.FairnessTerm)
		}
	}
}

// TestEvaluateObjectiveWeightedUnitMatchesUnweighted: with nil (unit)
// weights the weighted evaluator must agree with EvaluateObjective to
// the bit.
func TestEvaluateObjectiveWeightedUnitMatchesUnweighted(t *testing.T) {
	ds := testfix.Synth(33, 120, 4, 2, 1)
	rng := stats.NewRNG(2)
	const k = 5
	assign := make([]int, ds.N())
	for i := range assign {
		assign[i] = rng.Intn(k)
	}
	a, err := EvaluateObjectiveWeighted(ds, nil, assign, k, 30, nil)
	if err != nil {
		t.Fatal(err)
	}
	b, err := EvaluateObjective(ds, assign, k, 30, nil)
	if err != nil {
		t.Fatal(err)
	}
	if math.Float64bits(a.KMeansTerm) != math.Float64bits(b.KMeansTerm) {
		t.Errorf("KM term %v vs %v", a.KMeansTerm, b.KMeansTerm)
	}
	if math.Abs(a.FairnessTerm-b.FairnessTerm) > 1e-12*(1+math.Abs(b.FairnessTerm)) {
		t.Errorf("fairness term %v vs %v", a.FairnessTerm, b.FairnessTerm)
	}
}

// TestRunWeightedStateMatchesReference: the incremental weighted
// sufficient statistics must land on the same objective the from-
// scratch weighted evaluator reports for the final assignment.
func TestRunWeightedStateMatchesReference(t *testing.T) {
	ds := testfix.Synth(41, 200, 5, 2, 1)
	rng := stats.NewRNG(12)
	wf := make([]float64, ds.N())
	for i := range wf {
		wf[i] = 0.25 + 3*rng.Float64() // fractional masses too
	}
	res, err := RunWeighted(ds, wf, Config{K: 6, Lambda: 75, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	ref, err := EvaluateObjectiveWeighted(ds, wf, res.Assign, 6, 75, nil)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(res.Objective-ref.Objective) > 1e-9*(1+math.Abs(ref.Objective)) {
		t.Errorf("incremental objective %v vs reference %v", res.Objective, ref.Objective)
	}
	if math.Abs(res.KMeansTerm-ref.KMeansTerm) > 1e-9*(1+ref.KMeansTerm) {
		t.Errorf("KM term %v vs %v", res.KMeansTerm, ref.KMeansTerm)
	}
	if math.Abs(res.FairnessTerm-ref.FairnessTerm) > 1e-9*(1+ref.FairnessTerm) {
		t.Errorf("fairness term %v vs %v", res.FairnessTerm, ref.FairnessTerm)
	}
}

// TestBestMoveBatchWeighted pins the mini-batch proxy semantics for
// weighted rows: the frozen-prototype K-Means delta must carry the
// row's mass (w·(d_to − d_from)), matching the scale of the live
// fairness delta — a historical bug scored the K-Means term
// unweighted, so heavy rows saw their distance cost understated by a
// factor of w.
func TestBestMoveBatchWeighted(t *testing.T) {
	ds := testfix.Synth(61, 180, 4, 2, 0)
	rng := stats.NewRNG(6)
	wf := make([]float64, ds.N())
	for i := range wf {
		wf[i] = 1 + float64(rng.Intn(40))
	}
	cfg := Config{K: 5, Lambda: 2000}
	assign := make([]int, ds.N())
	for i := range assign {
		assign[i] = i % cfg.K
	}
	st := newState(ds, &cfg, cfg.Lambda, assign, wf)
	st.RefreshBatchView()

	flips := 0
	for i := 0; i < ds.N(); i++ {
		from := st.assign[i]
		got := st.BestMoveBatch(i, from)

		// Brute-force the intended proxy: weighted Lloyd K-Means delta
		// against the frozen prototypes plus the exact live fairness
		// delta.
		w := wf[i]
		x := ds.Features[i]
		dDevOut := st.deviationWithDelta(from, i, -1) - st.devCache[from]
		dFrom := stats.SqDist(x, st.batchProtos[from])
		best, bestDelta := from, 0.0
		bestUnweighted, bestUnweightedDelta := from, 0.0
		for c := 0; c < st.k; c++ {
			if c == from {
				continue
			}
			dFair := dDevOut + (st.deviationWithDelta(c, i, +1) - st.devCache[c])
			kmDiff := stats.SqDist(x, st.batchProtos[c]) - dFrom
			if delta := w*kmDiff + st.lambda*dFair; delta < bestDelta {
				best, bestDelta = c, delta
			}
			if delta := kmDiff + st.lambda*dFair; delta < bestUnweightedDelta {
				bestUnweighted, bestUnweightedDelta = c, delta
			}
		}
		if got != best {
			t.Fatalf("row %d (w=%v): BestMoveBatch=%d, weighted proxy says %d", i, w, got, best)
		}
		if best != bestUnweighted {
			flips++
		}
	}
	// The fixture must actually discriminate: for some rows the
	// unweighted proxy (the historical bug) picks a different cluster.
	if flips == 0 {
		t.Fatal("fixture does not discriminate weighted from unweighted proxy; strengthen it")
	}
}

// TestRunWeightedValidation: weight vector hygiene.
func TestRunWeightedValidationCore(t *testing.T) {
	ds := testfix.Synth(51, 30, 3, 1, 0)
	if _, err := RunWeighted(ds, make([]float64, 10), Config{K: 3}); err == nil {
		t.Error("arity mismatch accepted")
	}
	bad := unitWeights(ds.N())
	bad[4] = 0
	if _, err := RunWeighted(ds, bad, Config{K: 3}); err == nil {
		t.Error("zero weight accepted")
	}
	bad[4] = math.NaN()
	if _, err := RunWeighted(ds, bad, Config{K: 3}); err == nil {
		t.Error("NaN weight accepted")
	}
	if _, err := Run(ds, Config{K: 3, InitAssign: []int{0}}); err == nil {
		t.Error("short InitAssign accepted")
	}
	if _, err := Run(ds, Config{K: 3, InitAssign: make([]int, ds.N()-1)}); err == nil {
		t.Error("short InitAssign accepted")
	}
	badAssign := make([]int, ds.N())
	badAssign[7] = 3
	if _, err := Run(ds, Config{K: 3, InitAssign: badAssign}); err == nil {
		t.Error("out-of-range InitAssign accepted")
	}
}
