package core

//fairvet:floateq ClusterWeightExponent==0 is an exact "unset" sentinel, never the result of arithmetic

import (
	"fmt"
	"math"

	"repro/internal/dataset"
	"repro/internal/stats"
)

// ObjectiveValue decomposes the FairKM objective evaluated on a given
// assignment.
type ObjectiveValue struct {
	KMeansTerm   float64
	FairnessTerm float64
	// Objective is KMeansTerm + Lambda·FairnessTerm.
	Objective float64
	Lambda    float64
}

// EvaluateObjective computes the FairKM objective for an arbitrary
// assignment from scratch, literally following Eqs. 1, 7 and 22 with no
// incremental bookkeeping. It exists so tests and benchmarks can verify
// the optimized sufficient-statistic implementation against a direct
// transcription of the paper, and so external callers can score
// clusterings produced by other algorithms.
//
// weights maps sensitive attribute names to w_S (Eq. 23); nil means all
// ones.
func EvaluateObjective(ds *dataset.Dataset, assign []int, k int, lambda float64, weights map[string]float64) (ObjectiveValue, error) {
	if err := ds.Validate(); err != nil {
		return ObjectiveValue{}, fmt.Errorf("fairkm: %w", err)
	}
	n := ds.N()
	if len(assign) != n {
		return ObjectiveValue{}, fmt.Errorf("fairkm: assignment has %d entries, want %d", len(assign), n)
	}
	for i, c := range assign {
		if c < 0 || c >= k {
			return ObjectiveValue{}, fmt.Errorf("fairkm: row %d assigned to cluster %d outside [0,%d)", i, c, k)
		}
	}

	// K-Means term: Σ_C Σ_{X∈C} ‖X − μ_C‖² over features.
	members := make([][]int, k)
	for i, c := range assign {
		members[c] = append(members[c], i)
	}
	km := 0.0
	for c := 0; c < k; c++ {
		if len(members[c]) == 0 {
			continue
		}
		mu := make([]float64, ds.Dim())
		for _, i := range members[c] {
			stats.AddTo(mu, ds.Features[i])
		}
		stats.Scale(mu, 1/float64(len(members[c])))
		for _, i := range members[c] {
			km += stats.SqDist(ds.Features[i], mu)
		}
	}

	fair, err := FairnessDeviation(ds, assign, k, weights)
	if err != nil {
		return ObjectiveValue{}, err
	}
	return ObjectiveValue{
		KMeansTerm:   km,
		FairnessTerm: fair,
		Objective:    km + lambda*fair,
		Lambda:       lambda,
	}, nil
}

// FairnessDeviation computes deviation_S(C, X) (Eq. 7 for categorical
// attributes, Eq. 22 for numeric ones, with optional Eq. 23 weights)
// for an arbitrary assignment, from scratch.
func FairnessDeviation(ds *dataset.Dataset, assign []int, k int, weights map[string]float64) (float64, error) {
	return FairnessDeviationWith(ds, assign, k, Config{Weights: weights})
}

// FairnessDeviationWith is FairnessDeviation honouring the fairness-
// term knobs of cfg (Weights, ClusterWeightExponent,
// NoDomainNormalization); other Config fields are ignored. It is the
// from-scratch reference the optimized solver is tested against.
func FairnessDeviationWith(ds *dataset.Dataset, assign []int, k int, cfg Config) (float64, error) {
	n := ds.N()
	if len(assign) != n {
		return 0, fmt.Errorf("fairkm: assignment has %d entries, want %d", len(assign), n)
	}
	exponent := cfg.ClusterWeightExponent
	if exponent == 0 {
		exponent = 2
	}
	counts := make([]int, k)
	for _, c := range assign {
		counts[c]++
	}
	weight := func(c int) float64 {
		return math.Pow(float64(counts[c])/float64(n), exponent)
	}
	total := 0.0
	for _, s := range ds.Sensitive {
		w := 1.0
		if cfg.Weights != nil {
			if cw, ok := cfg.Weights[s.Name]; ok {
				w = cw
			}
		}
		switch s.Kind {
		case dataset.Categorical:
			frX := ds.Fractions(s)
			mult := skewMultipliers(frX, cfg.SkewCompensation)
			clusterCounts := make([][]int, k)
			for c := range clusterCounts {
				clusterCounts[c] = make([]int, len(s.Values))
			}
			for i, c := range assign {
				clusterCounts[c][s.Codes[i]]++
			}
			for c := 0; c < k; c++ {
				if counts[c] == 0 {
					continue // Eq. 3: empty clusters contribute 0
				}
				sum := 0.0
				for v := range frX {
					d := float64(clusterCounts[c][v])/float64(counts[c]) - frX[v]
					sum += mult[v] * d * d
				}
				if !cfg.NoDomainNormalization {
					sum /= float64(len(s.Values))
				}
				total += weight(c) * w * sum
			}
		case dataset.Numeric:
			meanX := stats.Mean(s.Reals)
			sums := make([]float64, k)
			for i, c := range assign {
				sums[c] += s.Reals[i]
			}
			for c := 0; c < k; c++ {
				if counts[c] == 0 {
					continue
				}
				d := sums[c]/float64(counts[c]) - meanX
				total += weight(c) * w * d * d
			}
		}
	}
	return total, nil
}
