package core

import (
	"math"
	"testing"

	"repro/internal/engine"
	"repro/internal/kmeans"
	"repro/internal/stats"
)

// repairSeed finds a seed whose RAW random partition (before repair)
// leaves at least one of k clusters empty, so runs started from it
// genuinely exercise the engine's empty-cluster repair.
func repairSeed(t *testing.T, n, k int) int64 {
	t.Helper()
	for seed := int64(0); seed < 500; seed++ {
		rng := stats.NewRNG(seed)
		sizes := make([]int, k)
		for i := 0; i < n; i++ {
			sizes[rng.Intn(k)]++
		}
		for _, s := range sizes {
			if s == 0 {
				return seed
			}
		}
	}
	t.Fatal("no seed with an empty raw partition found")
	return 0
}

// TestEmptyClusterRepairThroughSweepPaths starts FairKM from a random
// partition that needs empty-cluster repair and drives it through the
// sequential, mini-batch and frozen-parallel sweep paths. Each run
// must see k non-empty clusters at initialization (the engine
// invariant) and produce a valid, correctly-scored clustering.
func TestEmptyClusterRepairThroughSweepPaths(t *testing.T) {
	rng := stats.NewRNG(77)
	ds := randomDataset(t, rng, 24, 3, 2, 0)
	const k = 12
	seed := repairSeed(t, ds.N(), k)

	// The engine's initializer must have repaired the raw partition.
	init := engine.InitAssignment(ds.Features, k, engine.RandomPartition, stats.NewRNG(seed))
	sizes := make([]int, k)
	for _, c := range init {
		sizes[c]++
	}
	for c, s := range sizes {
		if s == 0 {
			t.Fatalf("cluster %d empty after repair", c)
		}
	}

	for _, tc := range []struct {
		name string
		cfg  Config
	}{
		{"sequential", Config{}},
		{"minibatch", Config{MiniBatch: 5}},
		{"parallel", Config{Parallelism: 3}},
		{"parallel-minibatch", Config{Parallelism: 2, MiniBatch: 4}},
	} {
		t.Run(tc.name, func(t *testing.T) {
			cfg := tc.cfg
			cfg.K = k
			cfg.Seed = seed
			cfg.AutoLambda = true
			cfg.Init = kmeans.RandomPartition
			res, err := Run(ds, cfg)
			if err != nil {
				t.Fatal(err)
			}
			for i, c := range res.Assign {
				if c < 0 || c >= k {
					t.Fatalf("row %d assigned out-of-range cluster %d", i, c)
				}
			}
			ov, err := EvaluateObjective(ds, res.Assign, k, res.Lambda, nil)
			if err != nil {
				t.Fatal(err)
			}
			scale := math.Max(1, math.Abs(ov.Objective))
			if math.Abs(ov.Objective-res.Objective) > 1e-6*scale {
				t.Fatalf("incremental objective %v, from-scratch %v", res.Objective, ov.Objective)
			}
		})
	}
}
