// Package core implements FairKM, the fair clustering algorithm of
// Abraham, Deepak P and Sundaram, "Fairness in Clustering with Multiple
// Sensitive Attributes" (EDBT 2020).
//
// FairKM minimizes the objective (paper Eq. 1)
//
//	O = Σ_C Σ_{X∈C} dist_N(X, C)  +  λ · deviation_S(C, X)
//
// where the first term is the classical K-Means SSE over the
// non-sensitive attributes N and the second penalizes, for every
// sensitive attribute S and value s, the squared difference between the
// fractional representation of s inside each cluster and in the whole
// dataset — weighted by the squared fractional cluster cardinality and
// normalized by the attribute's domain cardinality (Eq. 7).
//
// Optimization is coordinate descent over objects in round-robin order
// (Section 4.2): each object is moved to the cluster that minimizes the
// objective given all other assignments, with cluster prototypes and
// fractional representations updated incrementally after every move.
//
// # Architecture
//
// This package is the FairKM *objective* for the shared descent engine
// (internal/engine): state holds the sufficient statistics and scores/
// applies single-point moves, while initialization, sweep scheduling
// (full, mini-batch, frozen-parallel), convergence policies
// (zero-moves, Tol, MaxIter, wall-clock Budget) and the per-iteration
// Observer hook are the engine's, shared bit-for-bit with the K-Means
// and ZGYA solvers. See DESIGN.md for the layering and the parallelism
// contract; golden-trajectory tests (internal/goldencase) pin this
// split to the pre-engine behaviour.
//
// # Sweep complexity
//
// A direct implementation of the per-candidate fairness delta rescans
// every value of every categorical sensitive attribute, so one
// round-robin sweep costs O(n·k·(|N| + Σ_S |Values(S)|)). This package
// instead maintains, per (attribute, cluster) pair, the quadratic
// aggregates Σ_v mult·cc², Σ_v mult·cc·Fr_X and the constant
// Σ_v mult·Fr_X² (see state), which turn each candidate evaluation into
// an O(1)-per-attribute closed form; a sweep is O(n·k·(|N| + #attrs)),
// independent of the attribute domain sizes — the Σ_S |Values(S)|
// factor Section 6.1's scalability discussion worries about is gone
// (41 values of native-country cost the same as 2 of gender).
//
// # Parallel sweeps
//
// Config.Parallelism additionally spreads candidate scoring over
// worker goroutines via the engine's frozen sweep: points are
// processed in fixed-size batches, each batch is scored concurrently
// against statistics frozen at its start (generalizing the Section 6.1
// frozen-prototype mini-batch heuristic to all sufficient statistics),
// and accepted moves are applied sequentially in row order after
// re-validating their objective delta against the live statistics.
// Results are deterministic and identical for every worker count; they
// can differ from the strictly sequential Algorithm 1 (Parallelism 0)
// because points within a batch do not see each other's moves — the
// same relaxation the paper itself proposes for mini-batching.
// Re-validation keeps descent monotone, so convergence guarantees are
// preserved.
//
// The package also implements the paper's extensions: numeric sensitive
// attributes (Eq. 22), per-attribute fairness weights (Eq. 23), and the
// mini-batch prototype-update heuristic sketched as future work in
// Section 6.1.
package core

import (
	"errors"
	"fmt"
	"math"
	"time"

	"repro/internal/dataset"
	"repro/internal/engine"
	"repro/internal/kmeans"
)

// DefaultMaxIter is the iteration cap used in the paper's experiments
// (Section 5.4).
const DefaultMaxIter = 30

// Config parameterizes a FairKM run.
type Config struct {
	// K is the number of clusters; required, 1 <= K <= n.
	K int
	// Lambda is the fairness weight λ from Eq. 1. When AutoLambda is
	// set, Lambda is ignored and the paper's heuristic λ = (n/K)² from
	// Section 5.4 is used instead.
	Lambda float64
	// AutoLambda selects the λ = (n/K)² heuristic.
	AutoLambda bool
	// MaxIter bounds round-robin iterations; zero means DefaultMaxIter.
	MaxIter int
	// Tol, when positive, additionally stops the run once the
	// objective improves by less than Tol between iterations (the
	// engine's shared policy, identical for K-Means and ZGYA). The
	// zero default keeps Algorithm 1's exact convergence: stop only
	// when a full sweep moves no object.
	Tol float64
	// Budget, when positive, stops the run at the first iteration
	// boundary after the wall-clock budget is spent.
	Budget time.Duration
	// Seed drives the random initialization.
	Seed int64
	// Init selects the initial clustering. The zero value is k-means++
	// (the repository-wide default, so FairKM and the K-Means baseline
	// start from comparable configurations); the paper's Algorithm 1
	// random partition is kmeans.RandomPartition.
	Init kmeans.InitMethod
	// InitAssign, when non-nil, overrides Init with an explicit initial
	// assignment (length n, clusters in [0, K)); the Seed is then not
	// consumed for initialization. Used for warm starts — e.g. refining
	// a streaming summary solve on fresh data — and by parity tests
	// that need both of two runs to start from the same partition.
	InitAssign []int
	// Weights optionally assigns per-attribute fairness weights w_S
	// (Eq. 23), keyed by sensitive attribute name. Attributes absent
	// from the map get weight 1. Negative weights are an error.
	Weights map[string]float64
	// ClusterWeightExponent is the exponent of the fractional-
	// cardinality cluster weight (|C|/|X|)^e in Eq. 7. Zero means the
	// paper's e=2; e=1 is the cardinality-weighted sum the paper
	// rejects in Section 4.1 ("Cluster Weighting") — exposed as an
	// ablation knob.
	ClusterWeightExponent float64
	// NoDomainNormalization drops the 1/|Values(S)| factor of Eq. 4,
	// letting high-cardinality attributes dominate — the behaviour the
	// normalization exists to prevent. Ablation knob.
	NoDomainNormalization bool
	// SkewCompensation divides each value's squared deviation by
	// Fr_X(s)·(1−Fr_X(s)) — a χ²-style normalization that amplifies
	// deviations on rare values, addressing the poor behaviour on
	// highly skewed attributes the paper observes for Race in Section
	// 5.6 and lists as future work (Section 6.1, second direction).
	// Values with dataset frequency 0 or 1 contribute nothing (their
	// deviation is structurally 0 anyway).
	SkewCompensation bool
	// MiniBatch, when m > 0, defers prototype and fractional-
	// representation updates so they happen once per batch of m
	// assignment decisions instead of after every move (the Section 6.1
	// scalability heuristic). Zero reproduces the paper's per-move
	// updates. Under a parallel sweep (Parallelism != 0) it instead
	// sets the frozen-statistics batch size.
	MiniBatch int
	// Parallelism selects the sweep execution mode. Zero (the default)
	// runs the paper's strictly sequential Algorithm 1. A positive
	// value scores candidate moves with that many worker goroutines
	// against per-batch frozen statistics, applying accepted moves
	// sequentially; any negative value (see ParallelismAuto) uses
	// GOMAXPROCS workers. Results are deterministic and identical for
	// every Parallelism >= 1, but may differ from the sequential sweep
	// (see the package docs, "Parallel sweeps").
	Parallelism int
	// RecordHistory, when set, stores per-iteration objective values in
	// Result.History (used by the λ-sweep figures and by tests).
	RecordHistory bool
	// Observer, when non-nil, receives per-iteration statistics
	// (moves, objective, elapsed wall-clock) as the run progresses —
	// the engine's trace hook, used by the CLIs' -trace flags.
	Observer engine.Observer

	// naiveKernel routes scoring through the per-value reference
	// kernel instead of the O(1) aggregate closed forms. Test-only:
	// parity tests and benchmarks in this package compare the two.
	naiveKernel bool
}

// ParallelismAuto is a Config.Parallelism value selecting GOMAXPROCS
// worker goroutines.
const ParallelismAuto = -1

// DefaultLambda returns the paper's λ heuristic (|X|/k)² (Section 5.4).
func DefaultLambda(n, k int) float64 {
	r := float64(n) / float64(k)
	return r * r
}

// IterStats records the objective decomposition after one round-robin
// iteration.
type IterStats struct {
	Iteration int
	// Moves is the number of objects that changed cluster this iteration.
	Moves int
	// KMeansTerm is the SSE over N attributes (first term of Eq. 1).
	KMeansTerm float64
	// FairnessTerm is deviation_S(C, X) (Eq. 7 / Eq. 22), unweighted
	// by λ.
	FairnessTerm float64
	// Objective is KMeansTerm + λ·FairnessTerm.
	Objective float64
}

// Result is a completed FairKM clustering.
type Result struct {
	// Assign maps each row to its cluster in [0, K).
	Assign []int
	// Centroids are cluster means over the feature space; empty
	// clusters have zero vectors. For weighted runs these are weighted
	// means.
	Centroids [][]float64
	// Sizes are per-cluster row cardinalities (summary rows, for
	// weighted runs).
	Sizes []int
	// Masses are per-cluster total weights — how many original points
	// each cluster represents. Nil for unweighted runs (where it would
	// equal Sizes).
	Masses []float64
	// KMeansTerm, FairnessTerm and Objective decompose the final
	// objective value; Objective = KMeansTerm + λ·FairnessTerm.
	KMeansTerm   float64
	FairnessTerm float64
	Objective    float64
	// Lambda is the λ actually used (after the AutoLambda heuristic).
	Lambda float64
	// Iterations is the number of full round-robin passes executed.
	Iterations int
	// Converged reports whether a full pass completed with no moves.
	Converged bool
	// TotalMoves counts assignment changes across all iterations.
	TotalMoves int
	// History holds per-iteration stats when Config.RecordHistory is set.
	History []IterStats
}

// K returns the number of clusters in the result.
func (r *Result) K() int { return len(r.Centroids) }

// Predict assigns a new feature vector to the nearest cluster centroid
// (the fairness term has no per-point form for unseen data, so
// prediction is distance-only — the standard deployment rule for
// K-Means-family models). It panics if x's dimensionality differs from
// the training features.
func (r *Result) Predict(x []float64) int {
	if len(r.Centroids) == 0 {
		panic("fairkm: Predict on an empty result")
	}
	if len(x) != len(r.Centroids[0]) {
		panic(fmt.Sprintf("fairkm: Predict with %d features, trained on %d", len(x), len(r.Centroids[0])))
	}
	best, bestD := 0, math.Inf(1)
	for c, cen := range r.Centroids {
		d := 0.0
		for j := range x {
			diff := x[j] - cen[j]
			d += diff * diff
		}
		if d < bestD {
			best, bestD = c, d
		}
	}
	return best
}

func validate(ds *dataset.Dataset, cfg *Config) error {
	if ds == nil {
		return errors.New("fairkm: nil dataset")
	}
	if err := ds.Validate(); err != nil {
		return fmt.Errorf("fairkm: %w", err)
	}
	n := ds.N()
	if n == 0 {
		return errors.New("fairkm: empty dataset")
	}
	if cfg.K < 1 || cfg.K > n {
		return fmt.Errorf("fairkm: K=%d out of range [1,%d]", cfg.K, n)
	}
	if cfg.Lambda < 0 {
		return fmt.Errorf("fairkm: negative lambda %v", cfg.Lambda)
	}
	if cfg.MiniBatch < 0 {
		return fmt.Errorf("fairkm: negative mini-batch size %d", cfg.MiniBatch)
	}
	if cfg.Tol < 0 {
		return fmt.Errorf("fairkm: negative tolerance %v", cfg.Tol)
	}
	if cfg.InitAssign != nil {
		if len(cfg.InitAssign) != n {
			return fmt.Errorf("fairkm: InitAssign has %d entries, want %d", len(cfg.InitAssign), n)
		}
		for i, c := range cfg.InitAssign {
			if c < 0 || c >= cfg.K {
				return fmt.Errorf("fairkm: InitAssign[%d] = %d outside [0,%d)", i, c, cfg.K)
			}
		}
	}
	for name, w := range cfg.Weights {
		if w < 0 {
			return fmt.Errorf("fairkm: negative weight %v for attribute %q", w, name)
		}
		if ds.SensitiveByName(name) == nil {
			return fmt.Errorf("fairkm: weight for unknown sensitive attribute %q", name)
		}
	}
	return nil
}
