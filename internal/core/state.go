package core

//fairvet:floateq exponent==0/==2 are exact config sentinels (default + fast path), never results of arithmetic

import (
	"math"

	"repro/internal/dataset"
	"repro/internal/stats"
)

// state holds the sufficient statistics FairKM maintains so every
// candidate move is evaluated in O(|N| + #attrs) — constant time per
// sensitive attribute — instead of rescanning cluster members or
// attribute domains (the optimization Section 4.2.1 motivates, taken
// one step further than the paper's O(Σ_S |Values(S)|) bookkeeping).
//
// Per cluster c it tracks:
//   - counts[c]: cardinality |c|
//   - sums[c]: per-feature sums (so the prototype is sums[c]/counts[c])
//   - ssqs[c]: Σ_{x∈c} ‖x‖², giving SSE_c = ssqs[c] − ‖sums[c]‖²/|c|
//   - catCounts[a][c][v]: members taking value v of categorical attr a
//   - numSums[a][c]: sum of numeric sensitive attr a over members
//   - devCache[c]: the cluster's current fairness deviation
//     contribution (the (|c|/n)²·ND_C term of Eq. 7 plus Eq. 22 terms)
//
// On top of the raw value counts, the scoring kernel maintains three
// quadratic aggregates per (categorical attribute, cluster) pair:
//
//	catSq[a][c]    = Σ_v mult[v]·cc[v]²
//	catCross[a][c] = Σ_v mult[v]·cc[v]·Fr_X(v)
//	catConst[a]    = Σ_v mult[v]·Fr_X(v)²   (assignment-independent)
//
// Expanding Eq. 7's Σ_v mult[v]·(cc[v]/m − Fr_X(v))² gives the closed
// form (1/m²)·catSq − (2/m)·catCross + catConst, so both
// clusterDeviation and deviationWithDelta cost O(1) per attribute.
// When a point with value code moves in or out, only cc[code] changes,
// so the aggregates update in O(1) too:
//
//	catSq    += mult[code]·(±2·cc[code] + 1)
//	catCross += ±mult[code]·Fr_X(code)
//
// The pre-aggregate per-value kernel is kept as the *Naive methods; the
// unexported Config.naiveKernel knob routes scoring through it so parity
// tests and benchmarks can compare the two end to end.
//
// # Weighted points
//
// Every sufficient statistic is a weighted mass: row i carries weight
// rowW[i] (rowW == nil means unit weights), cluster "size" is the mass
// Σ_{i∈c} w_i, the cc value counts, numeric sums, feature sums and the
// SSE term all accumulate w_i-scaled contributions, and the Eq. 7
// fractions compare weighted cluster masses against weighted dataset
// masses. This is what lets a coreset row standing for w original
// points (internal/coreset) reproduce the objective those w points
// would have contributed — the summarize-then-solve pipeline's
// substrate. The unweighted solver is exactly the w ≡ 1 special case,
// and every weighted expression is arranged so that multiplying by a
// unit weight is an IEEE-754 no-op: the unit-weight trajectory is
// bit-identical to the historical unweighted kernel (pinned by the
// goldencase suite and TestWeightedUnitParity).
//
// counts keeps the plain row cardinality alongside mass: emptiness and
// singleton guards are structural (row-count) questions, while all
// arithmetic uses mass.
type state struct {
	ds      *dataset.Dataset
	k       int
	lambda  float64
	n       int
	dim     int
	weights []float64 // per sensitive attribute, aligned with ds.Sensitive

	exponent float64 // cluster-weight exponent, paper default 2
	domNorm  bool    // divide by |Values(S)| (Eq. 4), paper default true
	naive    bool    // score with the per-value reference kernel

	rowW      []float64 // per-row weights; nil means unit weights
	totalMass float64   // Σ rowW (float64(n) when rowW == nil)

	assign []int
	counts []int     // per-cluster row counts (structural guards only)
	mass   []float64 // per-cluster weighted masses (all arithmetic)
	sums   [][]float64
	ssqs   []float64
	xsq    []float64 // xsq[i] = ‖Features[i]‖², computed once per run

	catAttrs []int // indexes into ds.Sensitive with Kind == Categorical
	numAttrs []int // indexes into ds.Sensitive with Kind == Numeric

	// frX[ai] is the dataset fraction vector for categorical attribute
	// ds.Sensitive[ai]; meanX[ai] the dataset mean for numeric ones.
	// Both are indexed by the attribute's position in ds.Sensitive (so
	// slots of the other kind are nil/zero).
	frX   [][]float64
	meanX []float64
	// frMult[ai][v] multiplies value v's squared deviation: all ones by
	// default, 1/(fr·(1−fr)) under Config.SkewCompensation.
	frMult [][]float64
	// catScale[ai] folds the Eq. 23 weight and the Eq. 4 domain
	// normalization into one factor: w_S/|Values(S)| (or w_S without
	// domain normalization).
	catScale []float64

	catCounts [][][]float64 // [attr][cluster][value] masses, attr indexed as ds.Sensitive
	numSums   [][]float64   // [attr][cluster]

	catSq    [][]float64 // [attr][cluster] Σ_v mult·cc²
	catCross [][]float64 // [attr][cluster] Σ_v mult·cc·frX
	catConst []float64   // [attr] Σ_v mult·frX²

	devCache []float64

	// batchProtos are the frozen prototypes mini-batch sweeps score the
	// K-Means term against, re-materialized by RefreshBatchView.
	batchProtos [][]float64
}

// newState builds the sufficient statistics for assign. rowW carries
// per-row weights; nil means unit weights (the paper's raw-point
// setting, bit-identical to the historical unweighted kernel).
func newState(ds *dataset.Dataset, cfg *Config, lambda float64, assign []int, rowW []float64) *state {
	n := ds.N()
	st := &state{
		ds:       ds,
		k:        cfg.K,
		lambda:   lambda,
		n:        n,
		dim:      ds.Dim(),
		rowW:     rowW,
		assign:   assign,
		exponent: cfg.ClusterWeightExponent,
		domNorm:  !cfg.NoDomainNormalization,
		naive:    cfg.naiveKernel,
	}
	if st.exponent == 0 {
		st.exponent = 2
	}
	if rowW == nil {
		st.totalMass = float64(n)
	} else {
		st.totalMass = stats.Sum(rowW)
	}
	st.weights = make([]float64, len(ds.Sensitive))
	for i, s := range ds.Sensitive {
		w := 1.0
		if cfg.Weights != nil {
			if cw, ok := cfg.Weights[s.Name]; ok {
				w = cw
			}
		}
		st.weights[i] = w
	}
	st.counts = make([]int, st.k)
	st.mass = make([]float64, st.k)
	st.sums = make([][]float64, st.k)
	for c := range st.sums {
		st.sums[c] = make([]float64, st.dim)
	}
	st.ssqs = make([]float64, st.k)
	st.xsq = make([]float64, n)
	for i, x := range ds.Features {
		st.xsq[i] = stats.Dot(x, x)
	}
	st.frX = make([][]float64, len(ds.Sensitive))
	st.meanX = make([]float64, len(ds.Sensitive))
	st.frMult = make([][]float64, len(ds.Sensitive))
	st.catScale = make([]float64, len(ds.Sensitive))
	st.catCounts = make([][][]float64, len(ds.Sensitive))
	st.numSums = make([][]float64, len(ds.Sensitive))
	st.catSq = make([][]float64, len(ds.Sensitive))
	st.catCross = make([][]float64, len(ds.Sensitive))
	st.catConst = make([]float64, len(ds.Sensitive))
	for ai, s := range ds.Sensitive {
		switch s.Kind {
		case dataset.Categorical:
			st.catAttrs = append(st.catAttrs, ai)
			if rowW == nil {
				st.frX[ai] = ds.Fractions(s)
			} else {
				st.frX[ai] = weightedFractions(s, rowW, st.totalMass)
			}
			st.frMult[ai] = skewMultipliers(st.frX[ai], cfg.SkewCompensation)
			st.catScale[ai] = st.weights[ai]
			if st.domNorm {
				st.catScale[ai] /= float64(len(s.Values))
			}
			cc := make([][]float64, st.k)
			for c := range cc {
				cc[c] = make([]float64, len(s.Values))
			}
			st.catCounts[ai] = cc
			st.catSq[ai] = make([]float64, st.k)
			st.catCross[ai] = make([]float64, st.k)
			cnst := 0.0
			for v, fr := range st.frX[ai] {
				cnst += st.frMult[ai][v] * fr * fr
			}
			st.catConst[ai] = cnst
		case dataset.Numeric:
			st.numAttrs = append(st.numAttrs, ai)
			if rowW == nil {
				st.meanX[ai] = stats.Mean(s.Reals)
			} else {
				st.meanX[ai] = weightedMean(s.Reals, rowW, st.totalMass)
			}
			st.numSums[ai] = make([]float64, st.k)
		}
	}
	for i := 0; i < n; i++ {
		st.accumulate(i, assign[i])
	}
	st.devCache = make([]float64, st.k)
	for c := 0; c < st.k; c++ {
		st.devCache[c] = st.clusterDeviation(c)
	}
	return st
}

// wOf returns row i's weight (1 under unit weights).
func (st *state) wOf(i int) float64 {
	if st.rowW == nil {
		return 1
	}
	return st.rowW[i]
}

// accumulate adds row i's mass-w contribution to cluster c's statistics
// (assignment bookkeeping only; devCache is managed by callers). The
// quadratic aggregates absorb (cc+w)² − cc² = w·(2·cc + w).
func (st *state) accumulate(i, c int) {
	x := st.ds.Features[i]
	w := st.wOf(i)
	st.counts[c]++
	st.mass[c] += w
	stats.AddScaledTo(st.sums[c], x, w)
	st.ssqs[c] += w * st.xsq[i]
	for _, ai := range st.catAttrs {
		code := st.ds.Sensitive[ai].Codes[i]
		cc := st.catCounts[ai][c]
		old := cc[code]
		cc[code] = old + w
		mult := st.frMult[ai][code]
		st.catSq[ai][c] += mult * (w * (2*old + w))
		st.catCross[ai][c] += mult * w * st.frX[ai][code]
	}
	for _, ai := range st.numAttrs {
		st.numSums[ai][c] += w * st.ds.Sensitive[ai].Reals[i]
	}
}

// remove subtracts row i's mass-w contribution from cluster c's
// statistics: cc² − (cc−w)² = w·(2·cc − w).
func (st *state) remove(i, c int) {
	x := st.ds.Features[i]
	w := st.wOf(i)
	st.counts[c]--
	st.mass[c] -= w
	stats.AddScaledTo(st.sums[c], x, -w)
	st.ssqs[c] -= w * st.xsq[i]
	for _, ai := range st.catAttrs {
		code := st.ds.Sensitive[ai].Codes[i]
		cc := st.catCounts[ai][c]
		old := cc[code]
		cc[code] = old - w
		mult := st.frMult[ai][code]
		st.catSq[ai][c] -= mult * (w * (2*old - w))
		st.catCross[ai][c] -= mult * w * st.frX[ai][code]
	}
	for _, ai := range st.numAttrs {
		st.numSums[ai][c] -= w * st.ds.Sensitive[ai].Reals[i]
	}
}

// move transfers row i from cluster from to cluster to, refreshing the
// deviation cache of both clusters.
func (st *state) move(i, from, to int) {
	st.remove(i, from)
	st.accumulate(i, to)
	st.assign[i] = to
	st.devCache[from] = st.clusterDeviation(from)
	st.devCache[to] = st.clusterDeviation(to)
}

// sseCluster returns the K-Means SSE contribution of cluster c from its
// sufficient statistics: Σw‖x‖² − ‖Σwx‖²/mass.
func (st *state) sseCluster(c int) float64 {
	if st.counts[c] == 0 {
		return 0
	}
	s := st.ssqs[c] - stats.Dot(st.sums[c], st.sums[c])/st.mass[c]
	if s < 0 {
		s = 0 // floating-point cancellation guard
	}
	return s
}

// sseTotal returns the full K-Means term.
func (st *state) sseTotal() float64 {
	total := 0.0
	for c := 0; c < st.k; c++ {
		total += st.sseCluster(c)
	}
	return total
}

// clusterDeviation returns cluster c's fairness contribution:
//
//	(|c|/n)² · [ Σ_cat w_S · Σ_s (Fr_C(s) − Fr_X(s))² / |Values(S)|
//	           + Σ_num w_S · (mean_C(S) − mean_X(S))² ]
//
// Empty clusters contribute 0 (Eq. 3). The categorical inner sum is the
// O(1) closed form (1/m²)·catSq − (2/m)·catCross + catConst.
func (st *state) clusterDeviation(c int) float64 {
	if st.naive {
		return st.clusterDeviationNaive(c)
	}
	if st.counts[c] == 0 {
		return 0
	}
	inv := 1.0 / st.mass[c]
	nd := 0.0
	for _, ai := range st.catAttrs {
		sum := inv*inv*st.catSq[ai][c] - 2*inv*st.catCross[ai][c] + st.catConst[ai]
		if sum < 0 {
			sum = 0 // floating-point cancellation guard
		}
		nd += st.catScale[ai] * sum
	}
	for _, ai := range st.numAttrs {
		d := st.numSums[ai][c]*inv - st.meanX[ai]
		nd += st.weights[ai] * d * d
	}
	return st.clusterWeight(st.mass[c]) * nd
}

// clusterDeviationNaive is the per-value reference form of
// clusterDeviation — a direct transcription of Eqs. 3–7 that rescans
// every value of every categorical attribute. O(Σ_S |Values(S)|).
func (st *state) clusterDeviationNaive(c int) float64 {
	if st.counts[c] == 0 {
		return 0
	}
	inv := 1.0 / st.mass[c]
	nd := 0.0
	for _, ai := range st.catAttrs {
		frX := st.frX[ai]
		mult := st.frMult[ai]
		cc := st.catCounts[ai][c]
		sum := 0.0
		for v := range frX {
			d := cc[v]*inv - frX[v]
			sum += mult[v] * d * d
		}
		if st.domNorm {
			sum /= float64(len(frX))
		}
		nd += st.weights[ai] * sum
	}
	for _, ai := range st.numAttrs {
		d := st.numSums[ai][c]*inv - st.meanX[ai]
		nd += st.weights[ai] * d * d
	}
	return st.clusterWeight(st.mass[c]) * nd
}

// clusterWeight returns (mass_C/mass_X)^e, with the common e=2
// fast-pathed. Under unit weights this is the paper's (|C|/|X|)^e.
func (st *state) clusterWeight(m float64) float64 {
	frac := m / st.totalMass
	if st.exponent == 2 {
		return frac * frac
	}
	return math.Pow(frac, st.exponent)
}

// fairnessTotal returns deviation_S(C, X) across all clusters using the
// cache.
func (st *state) fairnessTotal() float64 {
	total := 0.0
	for _, d := range st.devCache {
		total += d
	}
	return total
}

// deviationWithDelta computes what cluster c's fairness contribution
// would become if row i were added (sign=+1) or removed (sign=-1),
// without mutating state. Only cc[code] shifts by sign·w, so the
// aggregates adjust in O(1) per attribute:
//
//	catSq'    = catSq + mult[code]·(sign·w·(2·cc[code] + sign·w))
//	catCross' = catCross + mult[code]·sign·w·Fr_X(code)
func (st *state) deviationWithDelta(c, i, sign int) float64 {
	if st.naive {
		return st.deviationWithDeltaNaive(c, i, sign)
	}
	if st.counts[c]+sign == 0 {
		return 0
	}
	sw := float64(sign) * st.wOf(i)
	m := st.mass[c] + sw
	inv := 1.0 / m
	nd := 0.0
	for _, ai := range st.catAttrs {
		code := st.ds.Sensitive[ai].Codes[i]
		mult := st.frMult[ai][code]
		sq := st.catSq[ai][c] + mult*(sw*(2*st.catCounts[ai][c][code]+sw))
		cross := st.catCross[ai][c] + mult*sw*st.frX[ai][code]
		sum := inv*inv*sq - 2*inv*cross + st.catConst[ai]
		if sum < 0 {
			sum = 0 // floating-point cancellation guard
		}
		nd += st.catScale[ai] * sum
	}
	for _, ai := range st.numAttrs {
		val := st.numSums[ai][c] + sw*st.ds.Sensitive[ai].Reals[i]
		d := val*inv - st.meanX[ai]
		nd += st.weights[ai] * d * d
	}
	return st.clusterWeight(m) * nd
}

// deviationWithDeltaNaive is the per-value reference form of
// deviationWithDelta. O(Σ_S |Values(S)|).
func (st *state) deviationWithDeltaNaive(c, i, sign int) float64 {
	if st.counts[c]+sign == 0 {
		return 0
	}
	sw := float64(sign) * st.wOf(i)
	m := st.mass[c] + sw
	inv := 1.0 / m
	nd := 0.0
	for _, ai := range st.catAttrs {
		frX := st.frX[ai]
		mult := st.frMult[ai]
		cc := st.catCounts[ai][c]
		code := st.ds.Sensitive[ai].Codes[i]
		sum := 0.0
		for v := range frX {
			cnt := cc[v]
			if v == code {
				cnt += sw
			}
			d := cnt*inv - frX[v]
			sum += mult[v] * d * d
		}
		if st.domNorm {
			sum /= float64(len(frX))
		}
		nd += st.weights[ai] * sum
	}
	for _, ai := range st.numAttrs {
		val := st.numSums[ai][c] + sw*st.ds.Sensitive[ai].Reals[i]
		d := val*inv - st.meanX[ai]
		nd += st.weights[ai] * d * d
	}
	return st.clusterWeight(m) * nd
}

// kmeansOutDelta returns the change in the K-Means term from removing
// row i (mass w) from its cluster c (Eq. 12 in closed sufficient-
// statistic form: −m·w/(m−w)·‖x−μ‖², 0 when the cluster is a
// singleton row).
func (st *state) kmeansOutDelta(i, c int) float64 {
	if st.counts[c] <= 1 {
		return 0
	}
	m := st.mass[c]
	w := st.wOf(i)
	x := st.ds.Features[i]
	d2 := sqDistToMean(x, st.sums[c], m)
	return -m * w / (m - w) * d2
}

// kmeansInDelta returns the change in the K-Means term from adding row
// i (mass w) to cluster c (Eq. 14 in closed form: +m·w/(m+w)·‖x−μ‖²,
// 0 for an empty cluster).
func (st *state) kmeansInDelta(i, c int) float64 {
	if st.counts[c] == 0 {
		return 0
	}
	m := st.mass[c]
	w := st.wOf(i)
	x := st.ds.Features[i]
	d2 := sqDistToMean(x, st.sums[c], m)
	return m * w / (m + w) * d2
}

// moveDelta returns the exact objective change δ(O) of moving row i
// from cluster from to cluster to against the live statistics.
func (st *state) moveDelta(i, from, to int) float64 {
	dKM := st.kmeansOutDelta(i, from) + st.kmeansInDelta(i, to)
	dFair := (st.deviationWithDelta(from, i, -1) - st.devCache[from]) +
		(st.deviationWithDelta(to, i, +1) - st.devCache[to])
	return dKM + st.lambda*dFair
}

// sqDistToMean returns ‖x − sum/m‖² without materializing the mean.
func sqDistToMean(x, sum []float64, m float64) float64 {
	inv := 1.0 / m
	s := 0.0
	for j := range x {
		d := x[j] - sum[j]*inv
		s += d * d
	}
	return s
}

// centroids materializes the cluster prototypes (weighted means).
func (st *state) centroids() [][]float64 {
	out := make([][]float64, st.k)
	for c := 0; c < st.k; c++ {
		out[c] = make([]float64, st.dim)
		if st.counts[c] > 0 {
			inv := 1.0 / st.mass[c]
			for j := 0; j < st.dim; j++ {
				out[c][j] = st.sums[c][j] * inv
			}
		}
	}
	return out
}

// weightedFractions is ds.Fractions under per-row masses: Fr_X(v) =
// Σ_{i: code_i = v} w_i / Σ w.
func weightedFractions(s *dataset.SensitiveAttr, rowW []float64, totalMass float64) []float64 {
	fr := make([]float64, len(s.Values))
	for i, c := range s.Codes {
		fr[c] += rowW[i]
	}
	for i := range fr {
		fr[i] /= totalMass
	}
	return fr
}

// weightedMean is stats.Mean under per-row masses.
func weightedMean(xs, rowW []float64, totalMass float64) float64 {
	s := 0.0
	for i, x := range xs {
		s += rowW[i] * x
	}
	return s / totalMass
}

// newFrozen allocates a snapshot buffer shaped like st, for reuse
// across freezeInto calls.
func (st *state) newFrozen() *state {
	fz := &state{}
	fz.counts = make([]int, st.k)
	fz.mass = make([]float64, st.k)
	fz.sums = make([][]float64, st.k)
	for c := range fz.sums {
		fz.sums[c] = make([]float64, st.dim)
	}
	fz.catCounts = make([][][]float64, len(st.catCounts))
	fz.catSq = make([][]float64, len(st.catSq))
	fz.catCross = make([][]float64, len(st.catCross))
	fz.numSums = make([][]float64, len(st.numSums))
	for _, ai := range st.catAttrs {
		cc := make([][]float64, st.k)
		for c := range cc {
			cc[c] = make([]float64, len(st.catCounts[ai][c]))
		}
		fz.catCounts[ai] = cc
		fz.catSq[ai] = make([]float64, st.k)
		fz.catCross[ai] = make([]float64, st.k)
	}
	for _, ai := range st.numAttrs {
		fz.numSums[ai] = make([]float64, st.k)
	}
	fz.devCache = make([]float64, st.k)
	return fz
}

// freezeInto copies st's mutable statistics into the snapshot buffer fz
// (allocated by newFrozen) and shares the immutable ones, yielding a
// read-only view safe for concurrent scoring while st keeps mutating.
// fz.assign and fz.ssqs stay nil: scoring never touches them.
func (st *state) freezeInto(fz *state) {
	fz.ds = st.ds
	fz.k = st.k
	fz.lambda = st.lambda
	fz.n = st.n
	fz.dim = st.dim
	fz.weights = st.weights
	fz.exponent = st.exponent
	fz.domNorm = st.domNorm
	fz.naive = st.naive
	fz.rowW = st.rowW
	fz.totalMass = st.totalMass
	fz.catAttrs = st.catAttrs
	fz.numAttrs = st.numAttrs
	fz.frX = st.frX
	fz.meanX = st.meanX
	fz.frMult = st.frMult
	fz.catScale = st.catScale
	fz.catConst = st.catConst
	fz.xsq = st.xsq

	copy(fz.counts, st.counts)
	copy(fz.mass, st.mass)
	for c := range st.sums {
		copy(fz.sums[c], st.sums[c])
	}
	for _, ai := range st.catAttrs {
		for c := 0; c < st.k; c++ {
			copy(fz.catCounts[ai][c], st.catCounts[ai][c])
		}
		copy(fz.catSq[ai], st.catSq[ai])
		copy(fz.catCross[ai], st.catCross[ai])
	}
	for _, ai := range st.numAttrs {
		copy(fz.numSums[ai], st.numSums[ai])
	}
	copy(fz.devCache, st.devCache)
}

// skewMultipliers returns the per-value deviation multipliers: all ones
// normally, 1/(fr·(1−fr)) under skew compensation (0 for degenerate
// values whose deviation is structurally zero).
func skewMultipliers(frX []float64, compensate bool) []float64 {
	mult := make([]float64, len(frX))
	for v, fr := range frX {
		switch {
		case !compensate:
			mult[v] = 1
		case fr <= 0 || fr >= 1:
			mult[v] = 0
		default:
			mult[v] = 1 / (fr * (1 - fr))
		}
	}
	return mult
}
