package core

//fairvet:floateq exponent==0 is an unset sentinel; mass[c]==0 is exact emptiness of a sum of positive weights

import (
	"fmt"
	"math"

	"repro/internal/dataset"
	"repro/internal/stats"
)

// RunWeighted executes FairKM over weighted points: row i stands for
// weights[i] original points. The objective is the weighted Eq. 1 —
// the K-Means term becomes Σ_C Σ_{X∈C} w_X·dist_N(X, C), cluster
// prototypes become weighted means, and every fractional representation
// in the fairness term (cluster masses, value masses, dataset
// fractions) is computed over weights instead of row counts.
//
// This is the solve stage of the summarize-then-solve pipeline: a fair
// coreset (internal/coreset) compresses an unbounded stream to O(m·log
// n) weighted rows whose weighted objective approximates the full
// stream's, and RunWeighted descends on that summary at summary cost.
//
// Semantics relative to the unweighted solver:
//
//   - Unit weights reproduce Run bit-for-bit (same RNG stream, same
//     trajectory, same objective bits) — tested in weighted_test.go.
//   - Integer weights approximate solving the explicitly duplicated
//     dataset. The objective of corresponding assignments agrees to
//     floating-point accumulation order (≈1e-9 relative); trajectories
//     agree when descent moves whole duplicate groups together, which
//     coordinate descent encourages (a weighted row moves atomically).
//   - AutoLambda uses λ = (W/K)² with W = Σ weights, so a summary
//     standing for W points solves at the λ the full data would use.
//
// Weights must be positive and finite. Fairness is measured within the
// weighted rows; for stream summaries, report full-data metrics with a
// second pass (internal/pipeline.Evaluate) rather than on the summary.
func RunWeighted(ds *dataset.Dataset, weights []float64, cfg Config) (*Result, error) {
	if err := validate(ds, &cfg); err != nil {
		return nil, err
	}
	if len(weights) != ds.N() {
		return nil, fmt.Errorf("fairkm: %d weights for %d rows", len(weights), ds.N())
	}
	for i, w := range weights {
		if w <= 0 || math.IsNaN(w) || math.IsInf(w, 0) {
			return nil, fmt.Errorf("fairkm: weight[%d] = %v must be positive and finite", i, w)
		}
	}
	return runWith(ds, cfg, weights)
}

// EvaluateObjectiveWeighted computes the weighted FairKM objective for
// an arbitrary assignment from scratch, with no incremental
// bookkeeping — the weighted counterpart of EvaluateObjective and the
// reference RunWeighted's sufficient statistics are tested against.
// weights == nil means unit weights (then it matches EvaluateObjective
// exactly).
func EvaluateObjectiveWeighted(ds *dataset.Dataset, rowW []float64, assign []int, k int, lambda float64, attrWeights map[string]float64) (ObjectiveValue, error) {
	if err := ds.Validate(); err != nil {
		return ObjectiveValue{}, fmt.Errorf("fairkm: %w", err)
	}
	n := ds.N()
	if len(assign) != n {
		return ObjectiveValue{}, fmt.Errorf("fairkm: assignment has %d entries, want %d", len(assign), n)
	}
	if rowW != nil && len(rowW) != n {
		return ObjectiveValue{}, fmt.Errorf("fairkm: %d weights for %d rows", len(rowW), n)
	}
	for i, c := range assign {
		if c < 0 || c >= k {
			return ObjectiveValue{}, fmt.Errorf("fairkm: row %d assigned to cluster %d outside [0,%d)", i, c, k)
		}
	}
	wOf := func(i int) float64 {
		if rowW == nil {
			return 1
		}
		return rowW[i]
	}

	// Weighted K-Means term: Σ_C Σ_{X∈C} w_X·‖X − μ_C‖² with μ_C the
	// weighted mean.
	members := make([][]int, k)
	for i, c := range assign {
		members[c] = append(members[c], i)
	}
	km := 0.0
	for c := 0; c < k; c++ {
		if len(members[c]) == 0 {
			continue
		}
		mu := make([]float64, ds.Dim())
		mass := 0.0
		for _, i := range members[c] {
			stats.AddScaledTo(mu, ds.Features[i], wOf(i))
			mass += wOf(i)
		}
		stats.Scale(mu, 1/mass)
		for _, i := range members[c] {
			km += wOf(i) * stats.SqDist(ds.Features[i], mu)
		}
	}

	fair, err := FairnessDeviationWeighted(ds, rowW, assign, k, Config{Weights: attrWeights})
	if err != nil {
		return ObjectiveValue{}, err
	}
	return ObjectiveValue{
		KMeansTerm:   km,
		FairnessTerm: fair,
		Objective:    km + lambda*fair,
		Lambda:       lambda,
	}, nil
}

// FairnessDeviationWeighted computes deviation_S(C, X) over weighted
// rows for an arbitrary assignment, from scratch, honouring the
// fairness-term knobs of cfg (Weights, ClusterWeightExponent,
// NoDomainNormalization, SkewCompensation). rowW == nil means unit
// weights, reproducing FairnessDeviationWith.
func FairnessDeviationWeighted(ds *dataset.Dataset, rowW []float64, assign []int, k int, cfg Config) (float64, error) {
	n := ds.N()
	if len(assign) != n {
		return 0, fmt.Errorf("fairkm: assignment has %d entries, want %d", len(assign), n)
	}
	if rowW != nil && len(rowW) != n {
		return 0, fmt.Errorf("fairkm: %d weights for %d rows", len(rowW), n)
	}
	wOf := func(i int) float64 {
		if rowW == nil {
			return 1
		}
		return rowW[i]
	}
	exponent := cfg.ClusterWeightExponent
	if exponent == 0 {
		exponent = 2
	}
	mass := make([]float64, k)
	totalMass := 0.0
	for i, c := range assign {
		mass[c] += wOf(i)
		totalMass += wOf(i)
	}
	weight := func(c int) float64 {
		return math.Pow(mass[c]/totalMass, exponent)
	}
	total := 0.0
	for _, s := range ds.Sensitive {
		w := 1.0
		if cfg.Weights != nil {
			if cw, ok := cfg.Weights[s.Name]; ok {
				w = cw
			}
		}
		switch s.Kind {
		case dataset.Categorical:
			var frX []float64
			if rowW == nil {
				frX = ds.Fractions(s)
			} else {
				frX = weightedFractions(s, rowW, totalMass)
			}
			mult := skewMultipliers(frX, cfg.SkewCompensation)
			clusterMass := make([][]float64, k)
			for c := range clusterMass {
				clusterMass[c] = make([]float64, len(s.Values))
			}
			for i, c := range assign {
				clusterMass[c][s.Codes[i]] += wOf(i)
			}
			for c := 0; c < k; c++ {
				if mass[c] == 0 {
					continue // Eq. 3: empty clusters contribute 0
				}
				sum := 0.0
				for v := range frX {
					d := clusterMass[c][v]/mass[c] - frX[v]
					sum += mult[v] * d * d
				}
				if !cfg.NoDomainNormalization {
					sum /= float64(len(s.Values))
				}
				total += weight(c) * w * sum
			}
		case dataset.Numeric:
			var meanX float64
			if rowW == nil {
				meanX = stats.Mean(s.Reals)
			} else {
				meanX = weightedMean(s.Reals, rowW, totalMass)
			}
			sums := make([]float64, k)
			for i, c := range assign {
				sums[c] += wOf(i) * s.Reals[i]
			}
			for c := 0; c < k; c++ {
				if mass[c] == 0 {
					continue
				}
				d := sums[c]/mass[c] - meanX
				total += weight(c) * w * d * d
			}
		}
	}
	return total, nil
}
