package core

import (
	"runtime"

	"repro/internal/dataset"
	"repro/internal/engine"
	"repro/internal/stats"
)

// Run executes FairKM (Algorithm 1) on the dataset.
//
// Orchestration — initialization, sweep scheduling, parallelism,
// convergence policies and observation — is delegated to
// internal/engine; this package contributes the FairKM objective
// (state) and assembles the Result.
func Run(ds *dataset.Dataset, cfg Config) (*Result, error) {
	if err := validate(ds, &cfg); err != nil {
		return nil, err
	}
	return runWith(ds, cfg, nil)
}

// runWith is the shared driver behind Run and RunWeighted: rowW == nil
// is the paper's raw-point solve, otherwise every statistic is
// rowW-weighted (see state). cfg must already be validated.
func runWith(ds *dataset.Dataset, cfg Config, rowW []float64) (*Result, error) {
	lambda := cfg.Lambda
	if cfg.AutoLambda {
		if rowW == nil {
			lambda = DefaultLambda(ds.N(), cfg.K)
		} else {
			// The λ=(n/K)² heuristic with n the represented population:
			// a summary standing for W original points should solve at
			// the λ the full data would have used.
			r := stats.Sum(rowW) / float64(cfg.K)
			lambda = r * r
		}
	}
	maxIter := cfg.MaxIter
	if maxIter <= 0 {
		maxIter = DefaultMaxIter
	}
	workers := cfg.Parallelism
	if workers < 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	var assign []int
	if cfg.InitAssign != nil {
		assign = append([]int(nil), cfg.InitAssign...)
	} else {
		assign = engine.InitAssignmentWeighted(ds.Features, rowW, cfg.K, cfg.Init, stats.NewRNG(cfg.Seed))
	}
	st := newState(ds, &cfg, lambda, assign, rowW)

	var sw engine.Sweeper
	switch {
	case workers >= 1:
		sw = engine.NewFrozenSweep(st, engine.FrozenOpts{
			Workers:    workers,
			Batch:      cfg.MiniBatch,
			Revalidate: true,
		})
	case cfg.MiniBatch > 0:
		sw = engine.NewMiniBatchSweep(st, cfg.MiniBatch)
	default:
		sw = engine.NewFullSweep(st)
	}

	res := &Result{Lambda: lambda}
	var observer engine.Observer
	if cfg.RecordHistory || cfg.Observer != nil {
		observer = func(ev engine.IterEvent) {
			if cfg.RecordHistory {
				km := st.sseTotal()
				fair := st.fairnessTotal()
				res.History = append(res.History, IterStats{
					Iteration:    ev.Iteration,
					Moves:        ev.Moves,
					KMeansTerm:   km,
					FairnessTerm: fair,
					Objective:    km + lambda*fair,
				})
			}
			if cfg.Observer != nil {
				cfg.Observer(ev)
			}
		}
	}

	er := engine.Solve(st, sw, engine.Config{
		MaxIter:  maxIter,
		Tol:      cfg.Tol,
		Budget:   cfg.Budget,
		Observer: observer,
	})

	res.Iterations = er.Iterations
	res.TotalMoves = er.TotalMoves
	res.Converged = er.Converged
	res.Assign = st.assign
	res.Centroids = st.centroids()
	res.Sizes = append([]int(nil), st.counts...)
	if rowW != nil {
		res.Masses = append([]float64(nil), st.mass...)
	}
	res.KMeansTerm = st.sseTotal()
	res.FairnessTerm = st.fairnessTotal()
	res.Objective = res.KMeansTerm + lambda*res.FairnessTerm
	return res, nil
}

// ---- engine.Objective ----

// N returns the number of rows.
func (st *state) N() int { return st.n }

// K returns the number of clusters.
func (st *state) K() int { return st.k }

// Current returns row i's cluster.
func (st *state) Current(i int) int { return st.assign[i] }

// BestMove scores row i against live statistics (Eq. 10).
func (st *state) BestMove(i, from int) int { return st.bestMove(i, from) }

// Delta returns the exact objective change of moving row i, against
// live statistics.
func (st *state) Delta(i, from, to int) float64 { return st.moveDelta(i, from, to) }

// Move applies the move (Sections 4.2.1–4.2.3 incremental updates).
func (st *state) Move(i, from, to int) { st.move(i, from, to) }

// Value returns the current objective O = SSE + λ·deviation.
func (st *state) Value() float64 { return st.sseTotal() + st.lambda*st.fairnessTotal() }

// ---- engine.BatchObjective (Section 6.1 mini-batch heuristic) ----

// RefreshBatchView re-materializes the frozen prototypes the mini-batch
// sweep scores the K-Means term against; the (cheap) fairness
// statistics stay live.
func (st *state) RefreshBatchView() { st.batchProtos = st.centroids() }

// BestMoveBatch scores row i with the K-Means term against the frozen
// prototypes and the fairness term against live statistics.
func (st *state) BestMoveBatch(i, from int) int {
	return st.bestMoveAgainst(i, from, st.batchProtos)
}

// ---- engine.SnapshotObjective (frozen-statistics parallel sweeps) ----

// stateSnap is a reusable frozen copy of all mutable statistics,
// sharing the immutable ones with the live state.
type stateSnap struct {
	live   *state
	frozen *state
}

// NewSnapshot allocates the snapshot buffer.
func (st *state) NewSnapshot() engine.Snapshot {
	return &stateSnap{live: st, frozen: st.newFrozen()}
}

// Freeze copies the live statistics into the buffer.
func (s *stateSnap) Freeze() { s.live.freezeInto(s.frozen) }

// BestMove scores row i against the frozen statistics; safe for
// concurrent calls because the frozen state is read-only between
// freezes.
func (s *stateSnap) BestMove(i, from int) int { return s.frozen.bestMove(i, from) }

// bestMove returns the cluster minimizing the objective change δ(O) of
// Eq. 10 for row i, which currently sits in cluster from, with every
// term scored against live statistics. Ties keep the current cluster
// (δ = 0 for staying put).
func (st *state) bestMove(i, from int) int { return st.bestMoveAgainst(i, from, nil) }

// bestMoveAgainst is the single scoring kernel behind every sweep
// strategy. With frozen == nil both objective terms use the live
// sufficient statistics (the strictly sequential Algorithm 1). With a
// frozen prototype matrix, the K-Means term becomes the classic
// nearest-centroid rule against those prototypes while the fairness
// term stays live — the Section 6.1 mini-batch heuristic. The two
// variants differ only in the K-Means delta, so the candidate loop is
// specialized per variant to keep the branch out of the hot path.
//
//fairvet:hotpath
func (st *state) bestMoveAgainst(i, from int, frozen [][]float64) int {
	// Leaving `from` costs the same regardless of destination; compute
	// those pieces once.
	dDevOut := st.deviationWithDelta(from, i, -1) - st.devCache[from]

	best := from
	bestDelta := 0.0
	if frozen == nil {
		kmOut := st.kmeansOutDelta(i, from)
		for c := 0; c < st.k; c++ {
			if c == from {
				continue
			}
			dKM := kmOut + st.kmeansInDelta(i, c)
			dFair := dDevOut + (st.deviationWithDelta(c, i, +1) - st.devCache[c])
			delta := dKM + st.lambda*dFair
			if delta < bestDelta {
				bestDelta = delta
				best = c
			}
		}
		return best
	}
	x := st.ds.Features[i]
	// The proxy K-Means delta must carry the row's mass like the exact
	// kmeansIn/OutDelta does, or weighted rows would score the two
	// objective terms on incompatible scales (w·1 under unit weights is
	// an IEEE no-op, preserving the unweighted path bit-for-bit).
	w := st.wOf(i)
	dFrom := stats.SqDist(x, frozen[from])
	for c := 0; c < st.k; c++ {
		if c == from {
			continue
		}
		dKM := w * (stats.SqDist(x, frozen[c]) - dFrom)
		dFair := dDevOut + (st.deviationWithDelta(c, i, +1) - st.devCache[c])
		delta := dKM + st.lambda*dFair
		if delta < bestDelta {
			bestDelta = delta
			best = c
		}
	}
	return best
}
