package core

import (
	"runtime"
	"sync"

	"repro/internal/dataset"
	"repro/internal/kmeans"
	"repro/internal/stats"
)

// Run executes FairKM (Algorithm 1) on the dataset.
func Run(ds *dataset.Dataset, cfg Config) (*Result, error) {
	if err := validate(ds, &cfg); err != nil {
		return nil, err
	}
	lambda := cfg.Lambda
	if cfg.AutoLambda {
		lambda = DefaultLambda(ds.N(), cfg.K)
	}
	maxIter := cfg.MaxIter
	if maxIter <= 0 {
		maxIter = DefaultMaxIter
	}
	workers := cfg.Parallelism
	if workers < 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	assign := initialAssignment(ds.Features, cfg)
	st := newState(ds, &cfg, lambda, assign)

	var par *parallelSweeper
	if workers >= 1 {
		par = newParallelSweeper(st, workers, cfg.MiniBatch)
	}

	res := &Result{Lambda: lambda}
	for iter := 1; iter <= maxIter; iter++ {
		res.Iterations = iter
		var moves int
		switch {
		case par != nil:
			moves = par.sweep()
		case cfg.MiniBatch > 0:
			moves = st.sweepMiniBatch(cfg.MiniBatch)
		default:
			moves = st.sweep()
		}
		res.TotalMoves += moves
		if cfg.RecordHistory {
			km := st.sseTotal()
			fair := st.fairnessTotal()
			res.History = append(res.History, IterStats{
				Iteration:    iter,
				Moves:        moves,
				KMeansTerm:   km,
				FairnessTerm: fair,
				Objective:    km + lambda*fair,
			})
		}
		if moves == 0 {
			res.Converged = true
			break
		}
	}
	res.Assign = st.assign
	res.Centroids = st.centroids()
	res.Sizes = append([]int(nil), st.counts...)
	res.KMeansTerm = st.sseTotal()
	res.FairnessTerm = st.fairnessTotal()
	res.Objective = res.KMeansTerm + lambda*res.FairnessTerm
	return res, nil
}

// sweep performs one round-robin pass over all objects, applying the
// best move for each (Eq. 9) immediately, with prototype and
// fractional-representation updates after every move (Sections
// 4.2.1–4.2.3). It returns the number of objects that changed cluster.
func (st *state) sweep() int {
	moves := 0
	for i := 0; i < st.n; i++ {
		from := st.assign[i]
		to := st.bestMove(i, from)
		if to != from {
			st.move(i, from, to)
			moves++
		}
	}
	return moves
}

// sweepMiniBatch is the Section 6.1 heuristic, which the paper frames
// as "centroid updates are done only once every mini-batch of
// clustering assignment updates": assignments and the (cheap)
// fractional-representation bookkeeping still update after every move,
// but the K-Means term is evaluated against cluster prototypes frozen
// at the start of each batch, so the expensive prototype refresh
// happens once per batch instead of once per move.
func (st *state) sweepMiniBatch(batch int) int {
	moves := 0
	frozen := st.centroids()
	sinceRefresh := 0
	for i := 0; i < st.n; i++ {
		from := st.assign[i]
		to := st.bestMoveFrozen(i, from, frozen)
		if to != from {
			st.move(i, from, to)
			moves++
		}
		sinceRefresh++
		if sinceRefresh == batch {
			frozen = st.centroids()
			sinceRefresh = 0
		}
	}
	return moves
}

// defaultParallelBatch is the frozen-statistics batch size of parallel
// sweeps when Config.MiniBatch doesn't override it. Smaller batches
// keep statistics fresher (fewer stale proposals rejected at apply
// time); larger ones amortize the snapshot copy and goroutine handoff.
const defaultParallelBatch = 1024

// parallelSweeper runs frozen-statistics parallel sweeps over a state,
// holding the reusable snapshot and proposal buffers.
type parallelSweeper struct {
	st        *state
	frozen    *state
	proposals []int
	workers   int
	batch     int
}

func newParallelSweeper(st *state, workers, batch int) *parallelSweeper {
	if batch <= 0 {
		batch = defaultParallelBatch
	}
	if workers < 1 {
		workers = 1
	}
	return &parallelSweeper{
		st:        st,
		frozen:    st.newFrozen(),
		proposals: make([]int, min(batch, st.n)),
		workers:   workers,
		batch:     batch,
	}
}

// sweep performs one round-robin pass in fixed-size batches: each
// batch's candidate moves are scored concurrently against statistics
// frozen at the batch start, then applied sequentially in row order,
// each re-validated against the live statistics so the objective only
// ever decreases. The batch size and per-point proposals are
// independent of the worker count, so results are bit-identical for
// every Parallelism >= 1.
func (ps *parallelSweeper) sweep() int {
	st := ps.st
	moves := 0
	for b0 := 0; b0 < st.n; b0 += ps.batch {
		b1 := min(b0+ps.batch, st.n)
		st.freezeInto(ps.frozen)

		span := b1 - b0
		workers := min(ps.workers, span)
		chunk := (span + workers - 1) / workers
		var wg sync.WaitGroup
		for w := 0; w < workers; w++ {
			lo := b0 + w*chunk
			if lo >= b1 {
				break
			}
			hi := min(lo+chunk, b1)
			wg.Add(1)
			go func(lo, hi int) {
				defer wg.Done()
				for i := lo; i < hi; i++ {
					// st.assign is stable during the scoring phase;
					// the frozen view is read-only.
					ps.proposals[i-b0] = ps.frozen.bestMove(i, st.assign[i])
				}
			}(lo, hi)
		}
		wg.Wait()

		for i := b0; i < b1; i++ {
			to := ps.proposals[i-b0]
			from := st.assign[i]
			if to == from {
				continue
			}
			// Earlier moves in this batch may have invalidated the
			// frozen-state proposal; accept it only if it still
			// improves the live objective.
			if st.moveDelta(i, from, to) < 0 {
				st.move(i, from, to)
				moves++
			}
		}
	}
	return moves
}

// bestMoveFrozen mirrors bestMove but scores the K-Means term against
// frozen prototypes (the classic nearest-centroid rule) while the
// fairness term uses live statistics.
func (st *state) bestMoveFrozen(i, from int, frozen [][]float64) int {
	x := st.ds.Features[i]
	dFrom := stats.SqDist(x, frozen[from])
	devFromBefore := st.devCache[from]
	devFromAfter := st.deviationWithDelta(from, i, -1)

	best := from
	bestDelta := 0.0
	for c := 0; c < st.k; c++ {
		if c == from {
			continue
		}
		dKM := stats.SqDist(x, frozen[c]) - dFrom
		dFair := (devFromAfter - devFromBefore) +
			(st.deviationWithDelta(c, i, +1) - st.devCache[c])
		delta := dKM + st.lambda*dFair
		if delta < bestDelta {
			bestDelta = delta
			best = c
		}
	}
	return best
}

// bestMove returns the cluster minimizing the objective change δ(O) of
// Eq. 10 for row i, which currently sits in cluster from. Ties keep the
// current cluster (δ = 0 for staying put).
func (st *state) bestMove(i, from int) int {
	// Leaving `from` costs the same regardless of destination; compute
	// those pieces once.
	kmOut := st.kmeansOutDelta(i, from)
	devFromBefore := st.devCache[from]
	devFromAfter := st.deviationWithDelta(from, i, -1)

	best := from
	bestDelta := 0.0
	for c := 0; c < st.k; c++ {
		if c == from {
			continue
		}
		dKM := kmOut + st.kmeansInDelta(i, c)
		dFair := (devFromAfter - devFromBefore) +
			(st.deviationWithDelta(c, i, +1) - st.devCache[c])
		delta := dKM + st.lambda*dFair
		if delta < bestDelta {
			bestDelta = delta
			best = c
		}
	}
	return best
}

// initialAssignment produces the starting partition per Config.Init.
func initialAssignment(features [][]float64, cfg Config) []int {
	n := len(features)
	rng := stats.NewRNG(cfg.Seed)
	assign := make([]int, n)
	switch cfg.Init {
	case kmeans.KMeansPlusPlus:
		centroids := kmeans.PlusPlusCentroids(features, cfg.K, rng)
		for i, x := range features {
			best, bestD := 0, stats.SqDist(x, centroids[0])
			for c := 1; c < len(centroids); c++ {
				if d := stats.SqDist(x, centroids[c]); d < bestD {
					best, bestD = c, d
				}
			}
			assign[i] = best
		}
	case kmeans.RandomPoints:
		pts := rng.SampleWithoutReplacement(n, cfg.K)
		for i, x := range features {
			best, bestD := 0, stats.SqDist(x, features[pts[0]])
			for c := 1; c < len(pts); c++ {
				if d := stats.SqDist(x, features[pts[c]]); d < bestD {
					best, bestD = c, d
				}
			}
			assign[i] = best
		}
	default: // RandomPartition — Algorithm 1 step 1
		for i := range assign {
			assign[i] = rng.Intn(cfg.K)
		}
		// Repair empty clusters so k-cluster invariants hold from the
		// start (n >= k is guaranteed by validate).
		sizes := make([]int, cfg.K)
		for _, c := range assign {
			sizes[c]++
		}
		for c := 0; c < cfg.K; c++ {
			for sizes[c] == 0 {
				i := rng.Intn(n)
				if sizes[assign[i]] > 1 {
					sizes[assign[i]]--
					assign[i] = c
					sizes[c]++
				}
			}
		}
	}
	return assign
}
