// Package spectral implements normalized spectral clustering and its
// fair variant with group-fairness constraints (Kleindessner, Samadi,
// Awasthi, Morgenstern — "Guarantees for Spectral Clustering with
// Fairness Constraints", 2019), surveyed as reference [14] in the
// FairKM paper's Table 1.
//
// Vanilla spectral clustering embeds points via the bottom eigenvectors
// of the graph Laplacian L = D − W of a similarity graph and runs
// K-Means in that embedding. The fair variant adds the linear
// constraint FᵀH = 0, where F's columns are, for every non-redundant
// sensitive value s, the group-membership indicator recentered by the
// group's dataset share:
//
//	f_s(i) = 1{X_i.S = s} − |V_s|/n
//
// Requiring the embedding H to be orthogonal to every f_s forces each
// cluster (a coordinate direction in embedding space) to contain
// sensitive groups in dataset proportion. Following the paper, the
// constrained problem min Tr(HᵀLH), HᵀH=I, FᵀH=0 is solved by
// substituting H = Z·Y where Z's columns span the null space of Fᵀ,
// and taking the bottom eigenvectors of ZᵀLZ.
//
// Cost: dense eigendecomposition, O(n³) — practical to a few thousand
// points, which is exactly the scalability contrast the FairKM paper
// draws (Section 4.3.1).
package spectral

//fairvet:floateq sigma==0 is an exact unset/degenerate sentinel

import (
	"errors"
	"fmt"
	"math"

	"repro/internal/dataset"
	"repro/internal/eigen"
	"repro/internal/kmeans"
	"repro/internal/stats"
)

// Config parameterizes a spectral clustering run.
type Config struct {
	// K is the number of clusters.
	K int
	// Sigma is the Gaussian-kernel bandwidth for the similarity graph
	// W_ij = exp(−‖x_i−x_j‖²/(2σ²)). Zero means the local-scale
	// heuristic: the median over points of the distance to their 7th
	// nearest neighbour (a global median would land on the between-
	// cluster scale and wash out graph structure).
	Sigma float64
	// Fair toggles the group-fairness constraint over all categorical
	// sensitive attributes of the dataset.
	Fair bool
	// Seed drives the K-Means stage in embedding space.
	Seed int64
	// MaxIter bounds the K-Means stage; zero means its default.
	MaxIter int
}

// Result is a completed spectral clustering.
type Result struct {
	// Assign maps each row to its cluster in [0, K).
	Assign []int
	// Embedding holds the n×K spectral embedding rows fed to K-Means.
	Embedding [][]float64
	// Eigenvalues are the K smallest (constrained) Laplacian
	// eigenvalues.
	Eigenvalues []float64
	// Sigma is the kernel bandwidth actually used.
	Sigma float64
}

// Run performs (fair) spectral clustering on the dataset.
func Run(ds *dataset.Dataset, cfg Config) (*Result, error) {
	if ds == nil {
		return nil, errors.New("spectral: nil dataset")
	}
	if err := ds.Validate(); err != nil {
		return nil, fmt.Errorf("spectral: %w", err)
	}
	n := ds.N()
	if cfg.K < 1 || cfg.K > n {
		return nil, fmt.Errorf("spectral: K=%d out of range [1,%d]", cfg.K, n)
	}
	if cfg.Sigma < 0 {
		return nil, fmt.Errorf("spectral: negative sigma %v", cfg.Sigma)
	}

	sigma := cfg.Sigma
	if sigma == 0 {
		sigma = localScale(ds.Features)
		if sigma == 0 {
			sigma = 1 // all points identical; any bandwidth works
		}
	}

	lap := laplacian(ds.Features, sigma)

	var basis [][]float64 // rows: orthonormal basis of the feasible space
	if cfg.Fair {
		constraints := fairnessConstraints(ds)
		basis = eigen.NullSpaceBasis(constraints, n)
		if len(basis) < cfg.K {
			return nil, fmt.Errorf("spectral: only %d feasible dimensions after %d fairness constraints; need K=%d",
				len(basis), len(constraints), cfg.K)
		}
	} else {
		basis = identityBasis(n)
	}

	// Reduced Laplacian ZᵀLZ over the feasible space.
	z := eigen.Transpose(basis) // n×m, columns = basis vectors
	reduced := eigen.MatMul(eigen.MatMul(basis, lap), z)
	vals, vecs, err := eigen.SymEigen(reduced)
	if err != nil {
		return nil, fmt.Errorf("spectral: eigensolve: %w", err)
	}

	// Embedding: H = Z·Y with Y the K bottom eigenvectors (as columns).
	embedding := make([][]float64, n)
	for i := range embedding {
		embedding[i] = make([]float64, cfg.K)
	}
	for e := 0; e < cfg.K; e++ {
		// h_e = Z·vecs[e]: expand the reduced eigenvector.
		for i := 0; i < n; i++ {
			s := 0.0
			for b := range basis {
				s += basis[b][i] * vecs[e][b]
			}
			embedding[i][e] = s
		}
	}

	km, err := kmeans.Run(embedding, kmeans.Config{K: cfg.K, Seed: cfg.Seed, MaxIter: cfg.MaxIter})
	if err != nil {
		return nil, fmt.Errorf("spectral: embedding K-Means: %w", err)
	}
	return &Result{
		Assign:      km.Assign,
		Embedding:   embedding,
		Eigenvalues: vals[:cfg.K],
		Sigma:       sigma,
	}, nil
}

// laplacian builds the dense unnormalized Laplacian of the Gaussian
// similarity graph.
func laplacian(features [][]float64, sigma float64) [][]float64 {
	n := len(features)
	l := make([][]float64, n)
	for i := range l {
		l[i] = make([]float64, n)
	}
	inv := 1 / (2 * sigma * sigma)
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			w := math.Exp(-stats.SqDist(features[i], features[j]) * inv)
			l[i][j] = -w
			l[j][i] = -w
			l[i][i] += w
			l[j][j] += w
		}
	}
	return l
}

// fairnessConstraints returns, for every categorical attribute and
// every value but the last (the full set is linearly dependent: the
// rows of one attribute sum to 0), the recentered group indicator row.
func fairnessConstraints(ds *dataset.Dataset) [][]float64 {
	n := ds.N()
	var rows [][]float64
	for _, s := range ds.Sensitive {
		if s.Kind != dataset.Categorical {
			continue
		}
		fr := ds.Fractions(s)
		for v := 0; v < len(s.Values)-1; v++ {
			row := make([]float64, n)
			for i, c := range s.Codes {
				row[i] = -fr[v]
				if c == v {
					row[i] = 1 - fr[v]
				}
			}
			rows = append(rows, row)
		}
	}
	return rows
}

func identityBasis(n int) [][]float64 {
	basis := make([][]float64, n)
	for i := range basis {
		basis[i] = make([]float64, n)
		basis[i][i] = 1
	}
	return basis
}

// localScale returns the median over (subsampled) points of the
// distance to their 7th nearest neighbour — the standard local-scale
// bandwidth heuristic for Gaussian similarity graphs.
func localScale(features [][]float64) float64 {
	n := len(features)
	if n < 2 {
		return 0
	}
	idx := make([]int, n)
	for i := range idx {
		idx[i] = i
	}
	if n > 500 {
		rng := stats.NewRNG(1)
		idx = rng.SampleWithoutReplacement(n, 500)
	}
	kth := 7
	if kth > n-1 {
		kth = n - 1
	}
	scales := make([]float64, 0, len(idx))
	dists := make([]float64, 0, n-1)
	for _, i := range idx {
		dists = dists[:0]
		for j := 0; j < n; j++ {
			if j != i {
				dists = append(dists, stats.Dist(features[i], features[j]))
			}
		}
		scales = append(scales, kthSmallest(dists, kth))
	}
	return stats.Median(scales)
}

// kthSmallest returns the k-th smallest element (1-based) of xs
// without mutating it (quickselect would be overkill at these sizes).
func kthSmallest(xs []float64, k int) float64 {
	cp := append([]float64(nil), xs...)
	// Partial selection sort up to k.
	for i := 0; i < k; i++ {
		min := i
		for j := i + 1; j < len(cp); j++ {
			if cp[j] < cp[min] {
				min = j
			}
		}
		cp[i], cp[min] = cp[min], cp[i]
	}
	return cp[k-1]
}
