package spectral

import (
	"testing"

	"repro/internal/dataset"
	"repro/internal/metrics"
	"repro/internal/stats"
)

// blobDataset builds two well-separated blobs whose sensitive value
// correlates with blob membership.
func blobDataset(t *testing.T, n int) *dataset.Dataset {
	t.Helper()
	b := dataset.NewBuilder("x", "y")
	b.AddCategoricalSensitive("g")
	rng := stats.NewRNG(2)
	for i := 0; i < n/2; i++ {
		v := "a"
		if i%4 == 0 {
			v = "b"
		}
		b.Row([]float64{rng.Gaussian(0, 0.3), rng.Gaussian(0, 0.3)}, []string{v}, nil)
	}
	for i := 0; i < n/2; i++ {
		v := "b"
		if i%4 == 0 {
			v = "a"
		}
		b.Row([]float64{rng.Gaussian(4, 0.3), rng.Gaussian(4, 0.3)}, []string{v}, nil)
	}
	ds, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	return ds
}

func TestVanillaRecoversBlobs(t *testing.T) {
	ds := blobDataset(t, 60)
	res, err := Run(ds, Config{K: 2, Seed: 1})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	for i := 1; i < 30; i++ {
		if res.Assign[i] != res.Assign[0] {
			t.Fatalf("blob 1 split at %d", i)
		}
	}
	for i := 31; i < 60; i++ {
		if res.Assign[i] != res.Assign[30] {
			t.Fatalf("blob 2 split at %d", i)
		}
	}
	if res.Assign[0] == res.Assign[30] {
		t.Error("blobs merged")
	}
	// The smallest Laplacian eigenvalue of a connected-ish graph is ~0.
	if res.Eigenvalues[0] > 1e-6 {
		t.Errorf("first eigenvalue = %v, want ~0", res.Eigenvalues[0])
	}
}

func TestFairVariantBalancesGroups(t *testing.T) {
	ds := blobDataset(t, 60)
	vanilla, err := Run(ds, Config{K: 2, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	fair, err := Run(ds, Config{K: 2, Seed: 1, Fair: true})
	if err != nil {
		t.Fatal(err)
	}
	g := ds.SensitiveByName("g")
	fv := metrics.Fairness(ds, g, vanilla.Assign, 2)
	ff := metrics.Fairness(ds, g, fair.Assign, 2)
	if ff.AE >= fv.AE {
		t.Errorf("fair spectral AE %v not better than vanilla %v", ff.AE, fv.AE)
	}
}

func TestFairConstraintOrthogonality(t *testing.T) {
	ds := blobDataset(t, 40)
	res, err := Run(ds, Config{K: 2, Seed: 3, Fair: true})
	if err != nil {
		t.Fatal(err)
	}
	// Every embedding column must be orthogonal to the recentered group
	// indicator.
	g := ds.SensitiveByName("g")
	fr := ds.Fractions(g)
	for col := 0; col < 2; col++ {
		dot := 0.0
		for i := 0; i < ds.N(); i++ {
			f := -fr[0]
			if g.Codes[i] == 0 {
				f = 1 - fr[0]
			}
			dot += f * res.Embedding[i][col]
		}
		if dot > 1e-6 || dot < -1e-6 {
			t.Errorf("embedding column %d not orthogonal to fairness constraint: %v", col, dot)
		}
	}
}

func TestErrors(t *testing.T) {
	ds := blobDataset(t, 20)
	if _, err := Run(nil, Config{K: 2}); err == nil {
		t.Error("nil dataset accepted")
	}
	if _, err := Run(ds, Config{K: 0}); err == nil {
		t.Error("K=0 accepted")
	}
	if _, err := Run(ds, Config{K: 21}); err == nil {
		t.Error("K>n accepted")
	}
	if _, err := Run(ds, Config{K: 2, Sigma: -1}); err == nil {
		t.Error("negative sigma accepted")
	}
}

func TestIdenticalPointsDoNotCrash(t *testing.T) {
	b := dataset.NewBuilder("x")
	b.AddCategoricalSensitive("g")
	for i := 0; i < 8; i++ {
		v := "a"
		if i%2 == 0 {
			v = "b"
		}
		b.Row([]float64{1}, []string{v}, nil)
	}
	ds, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Run(ds, Config{K: 2, Seed: 1}); err != nil {
		t.Fatalf("identical points: %v", err)
	}
}

func TestDeterminism(t *testing.T) {
	ds := blobDataset(t, 30)
	a, err := Run(ds, Config{K: 3, Seed: 5, Fair: true})
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(ds, Config{K: 3, Seed: 5, Fair: true})
	if err != nil {
		t.Fatal(err)
	}
	for i := range a.Assign {
		if a.Assign[i] != b.Assign[i] {
			t.Fatalf("assignment %d differs", i)
		}
	}
}
