package fairproj

import (
	"math"
	"testing"

	"repro/internal/dataset"
	"repro/internal/kmeans"
	"repro/internal/metrics"
	"repro/internal/stats"
)

// genderShifted builds data where group means differ along one
// direction, so the blind clustering splits by group.
func genderShifted(t *testing.T, n int) *dataset.Dataset {
	t.Helper()
	b := dataset.NewBuilder("x", "y", "z")
	b.AddCategoricalSensitive("g")
	rng := stats.NewRNG(3)
	for i := 0; i < n; i++ {
		g := "a"
		shift := 4.0
		if i%2 == 0 {
			g = "b"
			shift = 0
		}
		b.Row([]float64{
			rng.Gaussian(shift, 0.8),
			rng.Gaussian(0, 1),
			rng.Gaussian(0, 1),
		}, []string{g}, nil)
	}
	ds, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	return ds
}

func TestProjectionEqualizesGroupMeans(t *testing.T) {
	ds := genderShifted(t, 200)
	proj, err := MeanDifferenceProjection(ds)
	if err != nil {
		t.Fatalf("projection: %v", err)
	}
	g := proj.SensitiveByName("g")
	dim := proj.Dim()
	means := make([][]float64, 2)
	counts := make([]int, 2)
	for v := range means {
		means[v] = make([]float64, dim)
	}
	for i := 0; i < proj.N(); i++ {
		stats.AddTo(means[g.Codes[i]], proj.Features[i])
		counts[g.Codes[i]]++
	}
	for v := range means {
		stats.Scale(means[v], 1/float64(counts[v]))
	}
	for j := 0; j < dim; j++ {
		if d := math.Abs(means[0][j] - means[1][j]); d > 1e-9 {
			t.Errorf("group means differ at dim %d by %v after projection", j, d)
		}
	}
}

func TestProjectionImprovesClusterFairness(t *testing.T) {
	ds := genderShifted(t, 300)
	km, err := kmeans.Run(ds.Features, kmeans.Config{K: 2, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	proj, err := MeanDifferenceProjection(ds)
	if err != nil {
		t.Fatal(err)
	}
	kmP, err := kmeans.Run(proj.Features, kmeans.Config{K: 2, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	g := ds.SensitiveByName("g")
	before := metrics.Fairness(ds, g, km.Assign, 2)
	after := metrics.Fairness(proj, g, kmP.Assign, 2)
	if after.AE >= before.AE {
		t.Errorf("projection did not improve fairness: %v -> %v", before.AE, after.AE)
	}
}

func TestPCARecoversVarianceOrdering(t *testing.T) {
	// Data with variance 9 along x, 1 along y, 0.01 along z: pc1 must
	// align with x.
	b := dataset.NewBuilder("x", "y", "z")
	b.AddCategoricalSensitive("g")
	rng := stats.NewRNG(5)
	for i := 0; i < 400; i++ {
		b.Row([]float64{
			rng.Gaussian(0, 3), rng.Gaussian(0, 1), rng.Gaussian(0, 0.1),
		}, []string{"a"}, nil)
	}
	ds, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	red, err := PCA(ds, 2)
	if err != nil {
		t.Fatal(err)
	}
	if red.Dim() != 2 {
		t.Fatalf("Dim = %d", red.Dim())
	}
	// Variance of pc1 column ≈ 9, pc2 ≈ 1.
	var v1, v2 []float64
	for i := 0; i < red.N(); i++ {
		v1 = append(v1, red.Features[i][0])
		v2 = append(v2, red.Features[i][1])
	}
	if stats.Variance(v1) < stats.Variance(v2) {
		t.Errorf("pc1 variance %v below pc2 %v", stats.Variance(v1), stats.Variance(v2))
	}
	if math.Abs(stats.Variance(v1)-9) > 2 {
		t.Errorf("pc1 variance %v, want ~9", stats.Variance(v1))
	}
}

func TestFairPCAPipeline(t *testing.T) {
	ds := genderShifted(t, 250)
	red, err := FairPCA(ds, 2)
	if err != nil {
		t.Fatalf("FairPCA: %v", err)
	}
	if red.Dim() != 2 || red.N() != ds.N() {
		t.Fatalf("shape %dx%d", red.N(), red.Dim())
	}
	// Group means equal in the reduced space too (projection commutes
	// with the linear PCA map).
	g := red.SensitiveByName("g")
	means := make([][]float64, 2)
	counts := make([]int, 2)
	for v := range means {
		means[v] = make([]float64, 2)
	}
	for i := 0; i < red.N(); i++ {
		stats.AddTo(means[g.Codes[i]], red.Features[i])
		counts[g.Codes[i]]++
	}
	for j := 0; j < 2; j++ {
		d := math.Abs(means[0][j]/float64(counts[0]) - means[1][j]/float64(counts[1]))
		if d > 1e-9 {
			t.Errorf("reduced group means differ at %d by %v", j, d)
		}
	}
}

func TestErrors(t *testing.T) {
	if _, err := MeanDifferenceProjection(nil); err == nil {
		t.Error("nil dataset accepted")
	}
	if _, err := PCA(nil, 1); err == nil {
		t.Error("nil dataset accepted by PCA")
	}
	ds := genderShifted(t, 20)
	if _, err := PCA(ds, 0); err == nil {
		t.Error("k=0 accepted")
	}
	if _, err := PCA(ds, 99); err == nil {
		t.Error("k>dim accepted")
	}
}
