// Package fairproj implements fair space-transformation preprocessing,
// the first family in the FairKM paper's related-work taxonomy
// (Section 2.1): represent the points in a "fair" space, then run any
// vanilla clustering algorithm on them.
//
// Two transforms are provided, both stdlib-only:
//
//   - MeanDifferenceProjection removes, for every categorical sensitive
//     attribute, the span of its group-mean-difference directions: in
//     the projected space all groups of every attribute share the same
//     mean, so no LINEAR statistic of the features reveals group
//     membership on average. This is the linear core of fair-PCA-style
//     methods (Olfat & Aswani 2019 [17]) and of projection-based
//     de-biasing (Anagnostopoulos et al. 2019 [2]): those works add
//     convex programs over covariance constraints, but the mean
//     constraint is what drives most of the clustering effect at this
//     scale.
//
//   - PCA reduces dimensionality by projecting onto the top
//     eigenvectors of the covariance matrix (computed exactly with the
//     Jacobi solver in internal/eigen). Composed with the mean-
//     difference projection it yields a "fair PCA" pipeline: project
//     off group directions, then compress.
//
// Limitations are inherent to the family and are what motivates FairKM
// (Section 2.2): removing linear group information cannot control
// cluster-level proportions directly, so residual nonlinear structure
// may still produce skewed clusters.
package fairproj

import (
	"errors"
	"fmt"

	"repro/internal/dataset"
	"repro/internal/eigen"
	"repro/internal/stats"
)

// MeanDifferenceProjection returns a copy of ds whose features have
// been orthogonally projected off the span of every sensitive group's
// recentered mean direction (μ_group − μ_all, for every value of every
// categorical attribute). The resulting dataset has identical feature
// dimensionality; sensitive columns are shared with the input.
func MeanDifferenceProjection(ds *dataset.Dataset) (*dataset.Dataset, error) {
	if ds == nil {
		return nil, errors.New("fairproj: nil dataset")
	}
	if err := ds.Validate(); err != nil {
		return nil, fmt.Errorf("fairproj: %w", err)
	}
	n, dim := ds.N(), ds.Dim()
	if n == 0 {
		return nil, errors.New("fairproj: empty dataset")
	}
	mu := make([]float64, dim)
	for _, x := range ds.Features {
		stats.AddTo(mu, x)
	}
	stats.Scale(mu, 1/float64(n))

	// Collect group-mean-difference directions.
	var dirs [][]float64
	for _, s := range ds.Sensitive {
		if s.Kind != dataset.Categorical {
			continue
		}
		sums := make([][]float64, len(s.Values))
		counts := make([]int, len(s.Values))
		for v := range sums {
			sums[v] = make([]float64, dim)
		}
		for i, code := range s.Codes {
			stats.AddTo(sums[code], ds.Features[i])
			counts[code]++
		}
		for v := range sums {
			if counts[v] == 0 {
				continue
			}
			d := make([]float64, dim)
			for j := 0; j < dim; j++ {
				d[j] = sums[v][j]/float64(counts[v]) - mu[j]
			}
			dirs = append(dirs, d)
		}
	}
	basis := eigen.GramSchmidt(dirs)

	out := &dataset.Dataset{
		FeatureNames: ds.FeatureNames,
		Features:     make([][]float64, n),
		Sensitive:    ds.Sensitive,
	}
	for i, x := range ds.Features {
		p := stats.Clone(x)
		for _, b := range basis {
			d := stats.Dot(p, b)
			for j := range p {
				p[j] -= d * b[j]
			}
		}
		out.Features[i] = p
	}
	return out, nil
}

// PCA projects the dataset's features onto the top-k principal
// components (eigenvectors of the covariance matrix), returning a new
// dataset with k-dimensional features. Sensitive columns are shared.
func PCA(ds *dataset.Dataset, k int) (*dataset.Dataset, error) {
	if ds == nil {
		return nil, errors.New("fairproj: nil dataset")
	}
	if err := ds.Validate(); err != nil {
		return nil, fmt.Errorf("fairproj: %w", err)
	}
	n, dim := ds.N(), ds.Dim()
	if n == 0 {
		return nil, errors.New("fairproj: empty dataset")
	}
	if k < 1 || k > dim {
		return nil, fmt.Errorf("fairproj: k=%d out of range [1,%d]", k, dim)
	}
	mu := make([]float64, dim)
	for _, x := range ds.Features {
		stats.AddTo(mu, x)
	}
	stats.Scale(mu, 1/float64(n))
	cov := make([][]float64, dim)
	for a := range cov {
		cov[a] = make([]float64, dim)
	}
	for _, x := range ds.Features {
		for a := 0; a < dim; a++ {
			da := x[a] - mu[a]
			for b := a; b < dim; b++ {
				cov[a][b] += da * (x[b] - mu[b])
			}
		}
	}
	for a := 0; a < dim; a++ {
		for b := a; b < dim; b++ {
			cov[a][b] /= float64(n)
			cov[b][a] = cov[a][b]
		}
	}
	_, vecs, err := eigen.SymEigen(cov)
	if err != nil {
		return nil, fmt.Errorf("fairproj: %w", err)
	}
	// SymEigen sorts ascending; principal components are the last k.
	comps := vecs[len(vecs)-k:]

	names := make([]string, k)
	for j := range names {
		names[j] = fmt.Sprintf("pc%d", j+1)
	}
	out := &dataset.Dataset{
		FeatureNames: names,
		Features:     make([][]float64, n),
		Sensitive:    ds.Sensitive,
	}
	for i, x := range ds.Features {
		centered := stats.Clone(x)
		stats.SubFrom(centered, mu)
		row := make([]float64, k)
		for j := 0; j < k; j++ {
			// Reverse order so pc1 is the top component.
			row[j] = stats.Dot(centered, comps[k-1-j])
		}
		out.Features[i] = row
	}
	return out, nil
}

// FairPCA composes the two transforms: remove group-mean directions,
// then keep the top-k principal components of what remains.
func FairPCA(ds *dataset.Dataset, k int) (*dataset.Dataset, error) {
	proj, err := MeanDifferenceProjection(ds)
	if err != nil {
		return nil, err
	}
	return PCA(proj, k)
}
