package mcmf

import (
	"math"
	"testing"

	"repro/internal/hungarian"
	"repro/internal/stats"
)

func TestSimplePath(t *testing.T) {
	// s→a→t with caps 3,2: max flow 2, cost 2*(1+1)=4.
	g := New(3)
	g.AddEdge(0, 1, 3, 1)
	g.AddEdge(1, 2, 2, 1)
	flow, cost, err := g.MinCostFlow(0, 2, -1)
	if err != nil {
		t.Fatal(err)
	}
	if flow != 2 || math.Abs(cost-4) > 1e-12 {
		t.Errorf("flow=%d cost=%v, want 2/4", flow, cost)
	}
}

func TestPrefersCheaperPath(t *testing.T) {
	// Two parallel 1-cap paths with costs 1 and 5; asking for 1 unit
	// must use the cheap one.
	g := New(4)
	g.AddEdge(0, 1, 1, 1)
	g.AddEdge(1, 3, 1, 0)
	g.AddEdge(0, 2, 1, 5)
	g.AddEdge(2, 3, 1, 0)
	flow, cost, err := g.MinCostFlow(0, 3, 1)
	if err != nil {
		t.Fatal(err)
	}
	if flow != 1 || math.Abs(cost-1) > 1e-12 {
		t.Errorf("flow=%d cost=%v, want 1/1", flow, cost)
	}
	// Second unit must take the expensive path.
	flow2, cost2, err := g.MinCostFlow(0, 3, 1)
	if err != nil {
		t.Fatal(err)
	}
	if flow2 != 1 || math.Abs(cost2-5) > 1e-12 {
		t.Errorf("second unit flow=%d cost=%v, want 1/5", flow2, cost2)
	}
}

func TestFlowCap(t *testing.T) {
	g := New(2)
	e := g.AddEdge(0, 1, 10, 2)
	flow, cost, err := g.MinCostFlow(0, 1, 4)
	if err != nil {
		t.Fatal(err)
	}
	if flow != 4 || math.Abs(cost-8) > 1e-12 {
		t.Errorf("flow=%d cost=%v, want 4/8", flow, cost)
	}
	if g.Flow(e) != 4 {
		t.Errorf("edge flow = %d, want 4", g.Flow(e))
	}
}

func TestDisconnected(t *testing.T) {
	g := New(3)
	g.AddEdge(0, 1, 1, 1)
	flow, cost, err := g.MinCostFlow(0, 2, -1)
	if err != nil {
		t.Fatal(err)
	}
	if flow != 0 || cost != 0 {
		t.Errorf("flow=%d cost=%v, want 0/0", flow, cost)
	}
}

func TestErrorsAndPanics(t *testing.T) {
	g := New(2)
	if _, _, err := g.MinCostFlow(0, 0, -1); err == nil {
		t.Error("s==t accepted")
	}
	if _, _, err := g.MinCostFlow(-1, 1, -1); err == nil {
		t.Error("bad source accepted")
	}
	for name, f := range map[string]func(){
		"bad node":     func() { g.AddEdge(0, 5, 1, 0) },
		"negative cap": func() { g.AddEdge(0, 1, -1, 0) },
		"zero nodes":   func() { New(0) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: expected panic", name)
				}
			}()
			f()
		}()
	}
}

// TestAssignmentAgainstHungarian: min-cost flow on a complete bipartite
// unit-capacity graph solves the assignment problem; cross-check with
// the Hungarian solver on random instances.
func TestAssignmentAgainstHungarian(t *testing.T) {
	rng := stats.NewRNG(4)
	for trial := 0; trial < 50; trial++ {
		n := 1 + rng.Intn(7)
		cost := make([][]float64, n)
		for i := range cost {
			cost[i] = make([]float64, n)
			for j := range cost[i] {
				cost[i][j] = rng.Float64() * 10
			}
		}
		_, want, err := hungarian.Solve(cost)
		if err != nil {
			t.Fatal(err)
		}
		// Nodes: 0=s, 1..n rows, n+1..2n cols, 2n+1=t.
		g := New(2*n + 2)
		s, tt := 0, 2*n+1
		for i := 0; i < n; i++ {
			g.AddEdge(s, 1+i, 1, 0)
			g.AddEdge(n+1+i, tt, 1, 0)
			for j := 0; j < n; j++ {
				g.AddEdge(1+i, n+1+j, 1, cost[i][j])
			}
		}
		flow, got, err := g.MinCostFlow(s, tt, -1)
		if err != nil {
			t.Fatal(err)
		}
		if flow != n {
			t.Fatalf("trial %d: flow %d, want %d", trial, flow, n)
		}
		if math.Abs(got-want) > 1e-9 {
			t.Fatalf("trial %d: MCMF %v, Hungarian %v", trial, got, want)
		}
	}
}

// TestFlowConservation: on a random graph, inflow must equal outflow at
// every interior node after solving.
func TestFlowConservation(t *testing.T) {
	rng := stats.NewRNG(12)
	for trial := 0; trial < 30; trial++ {
		n := 4 + rng.Intn(8)
		g := New(n)
		type edge struct{ id, u, v int }
		var edges []edge
		for i := 0; i < 3*n; i++ {
			u, v := rng.Intn(n), rng.Intn(n)
			if u == v {
				continue
			}
			id := g.AddEdge(u, v, 1+rng.Intn(5), rng.Float64()*4)
			edges = append(edges, edge{id, u, v})
		}
		if _, _, err := g.MinCostFlow(0, n-1, -1); err != nil {
			t.Fatal(err)
		}
		net := make([]int, n)
		for _, e := range edges {
			f := g.Flow(e.id)
			net[e.u] -= f
			net[e.v] += f
		}
		for v := 1; v < n-1; v++ {
			if net[v] != 0 {
				t.Fatalf("trial %d: node %d violates conservation: net %d", trial, v, net[v])
			}
		}
		if net[0] != -net[n-1] {
			t.Fatalf("trial %d: source/sink imbalance: %d vs %d", trial, net[0], net[n-1])
		}
	}
}
