// Package mcmf implements minimum-cost maximum-flow on directed graphs
// with integer capacities and float64 costs, using successive shortest
// augmenting paths with SPFA (Bellman-Ford queue) path search.
//
// It is the substrate for fairlet decomposition (internal/fairlet),
// whose (1,t)-fairlets are the min-cost assignment of majority-class
// points to minority-class points under degree bounds. SPFA tolerates
// the negative reduced costs that appear after the lower-bound
// transformation fairlet decomposition uses.
package mcmf

import (
	"errors"
	"fmt"
	"math"
)

// Graph is a flow network under construction. Nodes are integers
// [0, n). Add edges with AddEdge, then call MinCostFlow.
type Graph struct {
	n     int
	heads []int // per-node index of first edge in edges, -1 sentinel
	next  []int
	to    []int
	cap   []int
	cost  []float64
}

// New returns an empty graph with n nodes.
func New(n int) *Graph {
	if n <= 0 {
		panic(fmt.Sprintf("mcmf: non-positive node count %d", n))
	}
	heads := make([]int, n)
	for i := range heads {
		heads[i] = -1
	}
	return &Graph{n: n, heads: heads}
}

// N returns the node count.
func (g *Graph) N() int { return g.n }

// AddEdge adds a directed edge u→v with the given capacity and
// per-unit cost (its residual reverse edge is added automatically).
// It returns the edge id, usable with Flow after solving.
func (g *Graph) AddEdge(u, v, capacity int, cost float64) int {
	if u < 0 || u >= g.n || v < 0 || v >= g.n {
		panic(fmt.Sprintf("mcmf: edge (%d,%d) outside [0,%d)", u, v, g.n))
	}
	if capacity < 0 {
		panic(fmt.Sprintf("mcmf: negative capacity %d", capacity))
	}
	id := len(g.to)
	// Forward edge.
	g.to = append(g.to, v)
	g.cap = append(g.cap, capacity)
	g.cost = append(g.cost, cost)
	g.next = append(g.next, g.heads[u])
	g.heads[u] = id
	// Residual edge.
	g.to = append(g.to, u)
	g.cap = append(g.cap, 0)
	g.cost = append(g.cost, -cost)
	g.next = append(g.next, g.heads[v])
	g.heads[v] = id + 1
	return id
}

// Flow returns the flow routed through the edge returned by AddEdge,
// valid after MinCostFlow.
func (g *Graph) Flow(edgeID int) int {
	return g.cap[edgeID^1]
}

// MinCostFlow pushes up to maxFlow units from s to t along successive
// cheapest paths, returning the total flow pushed and its cost. Pass
// maxFlow < 0 for "as much as possible". An error is returned if a
// negative-cost cycle is reachable (malformed input).
func (g *Graph) MinCostFlow(s, t, maxFlow int) (flow int, cost float64, err error) {
	if s < 0 || s >= g.n || t < 0 || t >= g.n {
		return 0, 0, fmt.Errorf("mcmf: terminals (%d,%d) outside [0,%d)", s, t, g.n)
	}
	if s == t {
		return 0, 0, errors.New("mcmf: source equals sink")
	}
	if maxFlow < 0 {
		maxFlow = math.MaxInt
	}
	dist := make([]float64, g.n)
	inQueue := make([]bool, g.n)
	prevEdge := make([]int, g.n)
	visits := make([]int, g.n)

	for flow < maxFlow {
		// SPFA from s.
		for i := range dist {
			dist[i] = math.Inf(1)
			prevEdge[i] = -1
			visits[i] = 0
			inQueue[i] = false
		}
		dist[s] = 0
		queue := []int{s}
		inQueue[s] = true
		for len(queue) > 0 {
			u := queue[0]
			queue = queue[1:]
			inQueue[u] = false
			visits[u]++
			if visits[u] > g.n+1 {
				return flow, cost, errors.New("mcmf: negative-cost cycle detected")
			}
			for e := g.heads[u]; e != -1; e = g.next[e] {
				if g.cap[e] <= 0 {
					continue
				}
				v := g.to[e]
				if nd := dist[u] + g.cost[e]; nd < dist[v]-1e-12 {
					dist[v] = nd
					prevEdge[v] = e
					if !inQueue[v] {
						queue = append(queue, v)
						inQueue[v] = true
					}
				}
			}
		}
		if math.IsInf(dist[t], 1) {
			break // no augmenting path
		}
		// Bottleneck along the path.
		push := maxFlow - flow
		for v := t; v != s; {
			e := prevEdge[v]
			if g.cap[e] < push {
				push = g.cap[e]
			}
			v = g.to[e^1]
		}
		for v := t; v != s; {
			e := prevEdge[v]
			g.cap[e] -= push
			g.cap[e^1] += push
			v = g.to[e^1]
		}
		flow += push
		cost += float64(push) * dist[t]
	}
	return flow, cost, nil
}
