package telemetry

import (
	"strings"
	"testing"
	"time"
)

func mustPanic(t *testing.T, want string, fn func()) {
	t.Helper()
	defer func() {
		r := recover()
		if r == nil {
			t.Fatalf("no panic; want one containing %q", want)
		}
		if msg, ok := r.(string); !ok || !strings.Contains(msg, want) {
			t.Fatalf("panic %v; want one containing %q", r, want)
		}
	}()
	fn()
}

func TestRegistryInstrumentIdentity(t *testing.T) {
	r := NewRegistry()
	a := r.Counter("reqs_total", "Requests.", Label{Key: "model", Value: "m"})
	a.Add(3)
	// Same (family, labels) — label order must not matter.
	b := r.Counter("reqs_total", "Requests.",
		Label{Key: "model", Value: "m"})
	if b.Value() != 3 {
		t.Fatalf("re-registration lost the count: %d", b.Value())
	}
	two := r.Counter("multi_total", "Multi.",
		Label{Key: "b", Value: "2"}, Label{Key: "a", Value: "1"})
	two.Inc()
	same := r.Counter("multi_total", "Multi.",
		Label{Key: "a", Value: "1"}, Label{Key: "b", Value: "2"})
	if same.Value() != 1 {
		t.Fatal("label order changed instrument identity")
	}
}

func TestRegistryGaugeAndHistogram(t *testing.T) {
	r := NewRegistry()
	g := r.Gauge("depth", "Depth.")
	g.Set(2.5)
	if g.Value() != 2.5 {
		t.Fatalf("gauge = %v", g.Value())
	}
	h := r.Histogram("lat_seconds", "Latency.")
	h.Record(10 * time.Millisecond)
	h.Record(20 * time.Millisecond)
	if snap := h.Snapshot(); snap.Count() != 2 || snap.Min() != 10*time.Millisecond {
		t.Fatalf("histogram snapshot: %+v", snap.Summarize())
	}
}

func TestRegistryContractPanics(t *testing.T) {
	r := NewRegistry()
	r.Counter("ok_total", "OK.")
	mustPanic(t, "registered as counter and gauge", func() {
		r.Gauge("ok_total", "Not a counter.")
	})
	mustPanic(t, "invalid metric name", func() { r.Counter("0bad", "Leading digit.") })
	mustPanic(t, "invalid metric name", func() { r.Counter("sp ace", "Space.") })
	mustPanic(t, "invalid metric name", func() { r.Counter("", "Empty.") })
	mustPanic(t, "invalid label key", func() {
		r.Counter("lbl_total", "Bad key.", Label{Key: "a:b", Value: "v"})
	})
	r.CounterFunc("pull_total", "Pull.", func() uint64 { return 1 })
	mustPanic(t, "owned and pull-style", func() { r.Counter("pull_total", "Owned.") })
}

func TestRegistryFuncReplacement(t *testing.T) {
	r := NewRegistry()
	r.GaugeFunc("g", "Gauge.", func() float64 { return 1 })
	r.GaugeFunc("g", "Gauge.", func() float64 { return 2 })
	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), "\ng 2\n") {
		t.Fatalf("fn replacement not effective:\n%s", b.String())
	}
}

func TestRegistryOnScrape(t *testing.T) {
	r := NewRegistry()
	scrapes := 0
	r.OnScrape(func() {
		scrapes++
		n := uint64(scrapes)
		// Fresh closure per scrape — the fairserved pattern.
		r.CounterFunc("scrapes_total", "Scrapes.", func() uint64 { return n })
	})
	var b strings.Builder
	for i := 1; i <= 3; i++ {
		b.Reset()
		if err := r.WritePrometheus(&b); err != nil {
			t.Fatal(err)
		}
		want := "scrapes_total " + string(rune('0'+i)) + "\n"
		if !strings.Contains(b.String(), want) {
			t.Fatalf("scrape %d: missing %q in:\n%s", i, want, b.String())
		}
	}
	if scrapes != 3 {
		t.Fatalf("hook ran %d times, want 3", scrapes)
	}
}
