package telemetry

import (
	"encoding/json"
	"io"
	"os"
	"sync"

	"repro/internal/engine"
)

// RunLog is a JSONL training-run journal: one `iter` record per engine
// iteration plus one `summary` record per run, as emitted by the CLIs'
// -telemetry flags. Records are written in arrival order; the log is
// safe for concurrent observers (parallel experiment repetitions share
// one file).
//
// Determinism: with a fixed seed every field of every record is
// byte-identical across runs except elapsed_ns, which is stamped from
// the caller's wall-clock measurements (pinned by
// TestRunJournalDeterminism and cmd/fairkm's journal test).
type RunLog struct {
	mu     sync.Mutex
	w      io.Writer
	c      io.Closer
	closed bool
	err    error
}

// NewRunLog journals onto w, which the caller owns.
func NewRunLog(w io.Writer) *RunLog { return &RunLog{w: w} }

// CreateRunLog creates (truncating) path and journals into it; Close
// closes the file.
func CreateRunLog(path string) (*RunLog, error) {
	f, err := os.Create(path)
	if err != nil {
		return nil, err
	}
	return &RunLog{w: f, c: f}, nil
}

// iterRecord is one engine iteration.
type iterRecord struct {
	Type      string  `json:"type"` // "iter"
	Run       string  `json:"run"`
	Iter      int     `json:"iter"`
	Moves     int     `json:"moves"`
	Objective float64 `json:"objective"`
	ElapsedNS int64   `json:"elapsed_ns"`
}

// RunSummary is the final record of one run. Zero-valued optional
// fields (K, Lambda, Seed, Rows) are omitted, so tools without a
// natural value for them emit clean records.
type RunSummary struct {
	Tool         string  `json:"tool"`
	K            int     `json:"k,omitempty"`
	Lambda       float64 `json:"lambda,omitempty"`
	Seed         int64   `json:"seed,omitempty"`
	Rows         int     `json:"rows,omitempty"`
	Iterations   int     `json:"iterations"`
	TotalMoves   int     `json:"total_moves"`
	Converged    bool    `json:"converged"`
	Objective    float64 `json:"objective"`
	KMeansTerm   float64 `json:"kmeans_term,omitempty"`
	FairnessTerm float64 `json:"fairness_term,omitempty"`
	ElapsedNS    int64   `json:"elapsed_ns"`
}

type summaryRecord struct {
	Type string `json:"type"` // "summary"
	Run  string `json:"run"`
	RunSummary
}

// Observer returns an engine.Observer streaming per-iteration records
// tagged with run. Compose with a trace observer via engine.Observers.
func (l *RunLog) Observer(run string) engine.Observer {
	return func(ev engine.IterEvent) {
		l.write(iterRecord{
			Type:      "iter",
			Run:       run,
			Iter:      ev.Iteration,
			Moves:     ev.Moves,
			Objective: ev.Objective,
			ElapsedNS: ev.Elapsed.Nanoseconds(),
		})
	}
}

// WriteSummary appends run's summary record.
func (l *RunLog) WriteSummary(run string, s RunSummary) {
	l.write(summaryRecord{Type: "summary", Run: run, RunSummary: s})
}

// write marshals and appends one record, latching the first error.
func (l *RunLog) write(rec any) {
	line, err := json.Marshal(rec)
	l.mu.Lock()
	defer l.mu.Unlock()
	// Check the marshal error before the closed gate: a record arriving
	// after Close is dropped, but its marshal failure must still latch
	// only on a live log — checking err first keeps the error consumed
	// on every path.
	if err != nil {
		if l.err == nil && !l.closed {
			l.err = err
		}
		return
	}
	if l.closed {
		return
	}
	if _, werr := l.w.Write(append(line, '\n')); werr != nil && l.err == nil {
		l.err = werr
	}
}

// Close closes the underlying file (when CreateRunLog opened one) and
// returns the first error seen across the log's lifetime. Idempotent;
// records arriving after Close are dropped.
func (l *RunLog) Close() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return l.err
	}
	l.closed = true
	if l.c != nil {
		if cerr := l.c.Close(); cerr != nil && l.err == nil {
			l.err = cerr
		}
	}
	return l.err
}
