package telemetry

import (
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"
)

// ContentType is the Prometheus text exposition content type the
// writer conforms to.
const ContentType = "text/plain; version=0.0.4; charset=utf-8"

// WritePrometheus renders every registered family in the Prometheus
// text exposition format (version 0.0.4): one HELP and one TYPE line
// per family, then one sample line per instrument, with histograms
// expanded to cumulative `le` buckets plus `_sum` and `_count`.
//
// Output is deterministic: families are rendered in name order and
// instruments in label order, so two scrapes over frozen inputs are
// byte-identical (pinned by TestWritePrometheusDeterministic).
// OnScrape hooks run first, outside the registry lock.
func (r *Registry) WritePrometheus(w io.Writer) error {
	r.scrapeMu.Lock()
	hooks := append([]func(){}, r.onScrape...)
	r.scrapeMu.Unlock()
	for _, fn := range hooks {
		fn()
	}

	r.mu.Lock()
	names := make([]string, 0, len(r.families))
	for name := range r.families {
		names = append(names, name)
	}
	sort.Strings(names)

	var b strings.Builder
	for _, name := range names {
		fam := r.families[name]
		fmt.Fprintf(&b, "# HELP %s %s\n", fam.name, escapeHelp(fam.help))
		fmt.Fprintf(&b, "# TYPE %s %s\n", fam.name, fam.kind)
		suffixes := make([]string, 0, len(fam.instruments))
		for s := range fam.instruments {
			suffixes = append(suffixes, s)
		}
		sort.Strings(suffixes)
		for _, s := range suffixes {
			writeInstrument(&b, fam, fam.instruments[s])
		}
	}
	r.mu.Unlock()

	_, err := io.WriteString(w, b.String())
	return err
}

func writeInstrument(b *strings.Builder, fam *family, in *instrument) {
	switch fam.kind {
	case KindCounter:
		v := in.count.Load()
		if in.pull && in.countFn != nil {
			v = in.countFn()
		}
		fmt.Fprintf(b, "%s%s %s\n", fam.name, in.labels, strconv.FormatUint(v, 10))
	case KindGauge:
		g := Gauge{in: in}
		v := g.Value()
		if in.pull && in.gaugeFn != nil {
			v = in.gaugeFn()
		}
		fmt.Fprintf(b, "%s%s %s\n", fam.name, in.labels, formatFloat(v))
	case KindHistogram:
		var h *Histogram
		if in.pull {
			if in.histFn != nil {
				h = in.histFn()
			}
			if h == nil {
				h = &Histogram{}
			}
		} else {
			h = in.hist.Snapshot()
		}
		writeHistogram(b, fam.name, in.labels, h)
	}
}

// writeHistogram expands one Histogram into cumulative `le` buckets in
// SECONDS (Prometheus base-unit convention; recording is in
// nanoseconds). Only occupied buckets emit a line — the cumulative
// counts are exact regardless — plus the mandatory +Inf bucket, _sum
// and _count.
func writeHistogram(b *strings.Builder, name, labels string, h *Histogram) {
	var cum uint64
	for i, c := range h.counts {
		if c == 0 {
			continue
		}
		cum += c
		le := formatFloat(float64(bucketHigh(i)) / 1e9)
		fmt.Fprintf(b, "%s_bucket%s %d\n", name, bucketLabels(labels, le), cum)
	}
	fmt.Fprintf(b, "%s_bucket%s %d\n", name, bucketLabels(labels, "+Inf"), h.n)
	fmt.Fprintf(b, "%s_sum%s %s\n", name, labels, formatFloat(float64(h.sum)/1e9))
	fmt.Fprintf(b, "%s_count%s %d\n", name, labels, h.n)
}

// bucketLabels splices le into an instrument's rendered label suffix.
func bucketLabels(labels, le string) string {
	if labels == "" {
		return `{le="` + le + `"}`
	}
	return labels[:len(labels)-1] + `,le="` + le + `"}`
}

// formatFloat renders a float the Go-canonical shortest way ('g', the
// same convention the old hand-rolled exposition used via %g).
func formatFloat(v float64) string {
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// escapeHelp escapes a HELP line per the exposition format: backslash
// and newline.
func escapeHelp(s string) string {
	s = strings.ReplaceAll(s, `\`, `\\`)
	return strings.ReplaceAll(s, "\n", `\n`)
}

// escapeLabelValue escapes a label value: backslash, double quote and
// newline.
func escapeLabelValue(s string) string {
	s = strings.ReplaceAll(s, `\`, `\\`)
	s = strings.ReplaceAll(s, `"`, `\"`)
	return strings.ReplaceAll(s, "\n", `\n`)
}
