package telemetry

import (
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// Request outcomes, as recorded in Trace.Outcome.
const (
	// OutcomeOK: the request was scored and answered.
	OutcomeOK = "ok"
	// OutcomeShed: admission control rejected the request.
	OutcomeShed = "shed"
	// OutcomeDeadline: the request's context expired (queued or
	// mid-batch) before completion.
	OutcomeDeadline = "deadline"
)

// Stage names of the serve pipeline, as exposed in the per-stage
// histogram's `stage` label. See DESIGN.md "Telemetry" for the exact
// boundaries.
const (
	// StageAdmission is the whole admission-gate crossing: request
	// entry to slot acquisition (zero when no gate is configured).
	StageAdmission = "admission"
	// StageQueue is the measured blocking wait inside the gate's queue
	// (a sub-interval of admission; zero when the fast path admitted).
	StageQueue = "queue"
	// StageScore is everything after admission: micro-batch scoring
	// plus pool coordination.
	StageScore = "score"
	// StageTotal is the full request, entry to reply.
	StageTotal = "total"
)

// Trace is one request's span breakdown through the serve pipeline.
// Durations marshal as nanoseconds (the repository-wide _ns
// convention).
type Trace struct {
	// Seq orders traces within one tracer (1-based).
	Seq uint64 `json:"seq"`
	// Model is the served model's name.
	Model string `json:"model"`
	// Rows is the request's batch size.
	Rows int `json:"rows"`
	// Outcome is one of the Outcome* constants.
	Outcome string `json:"outcome"`
	// Admission, Queue, Score and Total are the stage durations (see
	// the Stage* constants). Denied requests have zero Score.
	Admission time.Duration `json:"admission_ns"`
	Queue     time.Duration `json:"queue_ns"`
	Score     time.Duration `json:"score_ns"`
	Total     time.Duration `json:"total_ns"`
}

// DefaultTraceKeep is the flight-recorder capacity when
// NewRequestTracer is given keep <= 0.
const DefaultTraceKeep = 32

// traceWindowPerKeep scales the flight recorder's rotation window:
// with keep slots the recorder retains the slowest traces of the
// current and previous keep*traceWindowPerKeep observations, so
// "recent" tracks traffic volume rather than wall-clock.
const traceWindowPerKeep = 128

// RequestTracer records per-request span traces for one model: every
// observed OK request feeds four per-stage histograms registered as
// `family{model=...,stage=...}`, and every request (any outcome) is
// offered to a bounded flight recorder that retains the slowest recent
// traces for GET /debug/traces.
//
// Observe is designed for the serve hot path: histogram records are
// wait-free, and the flight recorder's steady-state fast path is one
// atomic add plus one atomic load (a request faster than the current
// slowest-set floor never takes the recorder lock).
type RequestTracer struct {
	model string

	admission HistogramMetric
	queue     HistogramMetric
	score     HistogramMetric
	total     HistogramMetric

	seq atomic.Uint64
	rec flightRecorder
}

// NewRequestTracer registers the per-stage histograms for model in reg
// under the family name (help is the family help text; the family is
// shared across models) and returns the tracer. keep bounds the flight
// recorder (<= 0 means DefaultTraceKeep).
func NewRequestTracer(reg *Registry, familyName, help, model string, keep int) *RequestTracer {
	t := &RequestTracer{model: model}
	mk := func(stage string) HistogramMetric {
		return reg.Histogram(familyName, help,
			Label{Key: "model", Value: model}, Label{Key: "stage", Value: stage})
	}
	t.admission = mk(StageAdmission)
	t.queue = mk(StageQueue)
	t.score = mk(StageScore)
	t.total = mk(StageTotal)
	t.rec.init(keep)
	return t
}

// Model returns the traced model's name.
func (t *RequestTracer) Model() string { return t.model }

// Observe records one request trace. The tracer stamps Model and Seq;
// everything else is the caller's measurement. Stage histograms only
// accumulate OK requests (the anatomy of served traffic — denied
// requests are already counted by the shed/deadline counters and
// would flood the stage distributions with zeros); the flight recorder
// sees every outcome.
func (t *RequestTracer) Observe(tr Trace) {
	tr.Model = t.model
	tr.Seq = t.seq.Add(1)
	if tr.Outcome == OutcomeOK {
		t.admission.Record(tr.Admission)
		t.queue.Record(tr.Queue)
		t.score.Record(tr.Score)
		t.total.Record(tr.Total)
	}
	t.rec.observe(tr)
}

// Slowest returns the retained slowest recent traces, slowest first.
func (t *RequestTracer) Slowest() []Trace { return t.rec.slowest() }

// Snapshot materializes one stage histogram (a Stage* constant);
// unknown stages panic.
func (t *RequestTracer) Snapshot(stage string) *Histogram {
	switch stage {
	case StageAdmission:
		return t.admission.Snapshot()
	case StageQueue:
		return t.queue.Snapshot()
	case StageScore:
		return t.score.Snapshot()
	case StageTotal:
		return t.total.Snapshot()
	default:
		panic("telemetry: unknown stage " + stage)
	}
}

// flightRecorder keeps the `keep` slowest traces (by Total) of the
// current observation window plus the complete previous window, so a
// scrape right after rotation still sees a full set. The hot-path
// contract: once the current window's slowest set is full, a trace at
// or below its floor costs one atomic add and one atomic load.
type flightRecorder struct {
	keep   int
	window uint64

	obs   atomic.Uint64
	floor atomic.Int64 // min Total in cur once full; -1 otherwise

	mu        sync.Mutex
	cur, prev []Trace // cur is a min-heap on Total
}

func (f *flightRecorder) init(keep int) {
	if keep <= 0 {
		keep = DefaultTraceKeep
	}
	f.keep = keep
	f.window = uint64(keep) * traceWindowPerKeep
	f.floor.Store(-1)
	f.cur = make([]Trace, 0, keep)
	f.prev = make([]Trace, 0, keep)
}

func (f *flightRecorder) observe(tr Trace) {
	n := f.obs.Add(1)
	rotate := n%f.window == 0
	if !rotate {
		if fl := f.floor.Load(); fl >= 0 && int64(tr.Total) <= fl {
			return
		}
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	if rotate {
		f.cur, f.prev = f.prev[:0], f.cur
		f.floor.Store(-1)
	}
	if len(f.cur) < f.keep {
		f.cur = append(f.cur, tr)
		f.siftUp(len(f.cur) - 1)
		if len(f.cur) == f.keep {
			f.floor.Store(int64(f.cur[0].Total))
		}
		return
	}
	if tr.Total <= f.cur[0].Total {
		return // raced below the floor; not among the slowest
	}
	f.cur[0] = tr
	f.siftDown(0)
	f.floor.Store(int64(f.cur[0].Total))
}

func (f *flightRecorder) siftUp(i int) {
	for i > 0 {
		parent := (i - 1) / 2
		if f.cur[parent].Total <= f.cur[i].Total {
			return
		}
		f.cur[parent], f.cur[i] = f.cur[i], f.cur[parent]
		i = parent
	}
}

func (f *flightRecorder) siftDown(i int) {
	n := len(f.cur)
	for {
		least := i
		for _, c := range []int{2*i + 1, 2*i + 2} {
			if c < n && f.cur[c].Total < f.cur[least].Total {
				least = c
			}
		}
		if least == i {
			return
		}
		f.cur[i], f.cur[least] = f.cur[least], f.cur[i]
		i = least
	}
}

// slowest merges both windows, slowest Total first (ties broken by
// newer Seq first).
func (f *flightRecorder) slowest() []Trace {
	f.mu.Lock()
	out := make([]Trace, 0, len(f.cur)+len(f.prev))
	out = append(out, f.cur...)
	out = append(out, f.prev...)
	f.mu.Unlock()
	sort.Slice(out, func(i, j int) bool {
		if out[i].Total != out[j].Total {
			return out[i].Total > out[j].Total
		}
		return out[i].Seq > out[j].Seq
	})
	return out
}
