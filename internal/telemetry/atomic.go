package telemetry

import (
	"math"
	"sync/atomic"
	"time"
)

// atomicBuckets is the fixed bucket count of AtomicHistogram: enough
// for every non-negative int64 nanosecond value. The largest exponent
// the log-linear layout produces is e = 63−6 = 57 (bucketIndex), so
// the last bucket is 57·32 + 63 and the array is one longer.
const atomicBuckets = 57<<5 + 64

// AtomicHistogram is the concurrent counterpart of Histogram: the same
// log-linear bucket layout over a fixed-size array of atomic counters,
// so Record is wait-free (one atomic add per bucket update, CAS loops
// only to tighten min/max) and never blocks — or is blocked by — a
// reader. Snapshot materializes a plain Histogram for quantiles and
// exposition; under concurrent recording the snapshot is a slightly
// torn but monotone view (each counter is read once, atomically),
// which is the standard metrics-scrape contract.
//
// This is what fixes the old serve scrape cost: the previous tracker
// copied and sorted a 1024-entry latency ring under the same mutex the
// assign hot path took per request, so every /metrics scrape stalled
// serving. Recording into an AtomicHistogram shares nothing with
// readers.
type AtomicHistogram struct {
	counts [atomicBuckets]atomic.Uint64
	sum    atomic.Int64
	min    atomic.Int64 // math.MaxInt64 until the first record
	max    atomic.Int64
}

// NewAtomicHistogram returns an empty concurrent histogram.
func NewAtomicHistogram() *AtomicHistogram {
	h := &AtomicHistogram{}
	h.min.Store(math.MaxInt64)
	return h
}

// Record adds one observation. Safe for any number of concurrent
// callers; wait-free apart from the min/max CAS loops, which only
// retry while the extremes are actually moving.
//
//fairvet:hotpath
func (h *AtomicHistogram) Record(d time.Duration) {
	v := d.Nanoseconds()
	if v < 0 {
		v = 0
	}
	h.counts[bucketIndex(v)].Add(1)
	h.sum.Add(v)
	for {
		old := h.min.Load()
		if v >= old || h.min.CompareAndSwap(old, v) {
			break
		}
	}
	for {
		old := h.max.Load()
		if v <= old || h.max.CompareAndSwap(old, v) {
			break
		}
	}
}

// Snapshot copies the current counts into a plain Histogram. The
// result is independent of h: callers may Merge, Quantile and
// Summarize it freely while recording continues.
func (h *AtomicHistogram) Snapshot() *Histogram {
	snap := &Histogram{}
	top := -1
	var n uint64
	var counts [atomicBuckets]uint64
	for i := range h.counts {
		if c := h.counts[i].Load(); c > 0 {
			counts[i] = c
			n += c
			top = i
		}
	}
	if n == 0 {
		return snap
	}
	snap.counts = append([]uint64(nil), counts[:top+1]...)
	snap.n = n
	snap.sum = h.sum.Load()
	snap.min = h.min.Load()
	snap.max = h.max.Load()
	// Concurrent records between the count and extreme loads can leave
	// the extremes behind the counts; clamp so quantiles stay sane.
	if snap.min > snap.max {
		snap.min = snap.max
	}
	return snap
}
