// Package telemetry is the repository's stdlib-only observability
// layer: a typed metric registry with a conformant Prometheus text
// exposition writer (registry.go, prometheus.go), HDR-style log-linear
// latency histograms in single-writer (Histogram) and lock-free
// concurrent (AtomicHistogram) flavors, per-request span traces with a
// bounded flight recorder of the slowest requests (trace.go), and
// JSONL training run journals driven by the engine's per-iteration
// Observer hook (journal.go).
//
// # Determinism
//
// The package never reads the wall clock: every duration is handed in
// by the caller (serve measures request stages, the engine stamps
// IterEvent.Elapsed). That makes telemetry itself a deterministic
// package under fairvet's nodeterminism pass — given the same recorded
// values, every exposition and journal byte is reproducible — and
// confines nondeterminism to the measurement sites, which carry their
// own justified ignores.
package telemetry

import (
	"math"
	"math/bits"
	"time"
)

// histSubBuckets is the linear resolution inside each power-of-two
// range: 32 sub-buckets bound the relative quantization error by
// 1/32 ≈ 3%, the usual HDR-histogram two-significant-digits regime.
const histSubBuckets = 32

// Histogram is an HDR-style log-linear latency histogram: exact counts
// below 32ns, then 32 linear sub-buckets per power-of-two range, so the
// whole nanosecond-to-minutes span fits in a couple of thousand fixed
// buckets with ≤3% relative error. Unlike a reservoir or a quantile
// ring it keeps the FULL distribution — tail quantiles are read from
// cumulative counts, not a sample that coordinated omission can bias.
//
// The zero value is ready to use. Not safe for concurrent use — the
// caller serializes writes (internal/load's collector holds one under
// its mutex); concurrent recording sites use AtomicHistogram and read
// back a *Histogram via Snapshot.
type Histogram struct {
	counts []uint64
	n      uint64
	sum    int64
	min    int64
	max    int64
}

// bucketIndex maps a non-negative value to its bucket. Values < 32 map
// to themselves; a value with highest set bit b ≥ 5 shifts down to a
// 5-bit mantissa m ∈ [32,64), landing in bucket 32·(b−4)+(m−32)... laid
// out contiguously this is simply 32·e + (v>>e) with e = b−4.
func bucketIndex(v int64) int {
	if v < histSubBuckets {
		return int(v)
	}
	e := bits.Len64(uint64(v)) - 6 // v>>e ∈ [32, 64)
	return e<<5 + int(v>>uint(e))
}

// bucketHigh is the largest value mapping to bucket i — quantiles
// report it so they never under-state a latency.
func bucketHigh(i int) int64 {
	if i < histSubBuckets {
		return int64(i)
	}
	e := i>>5 - 1
	m := int64(i&31 + histSubBuckets)
	return (m+1)<<uint(e) - 1
}

// Record adds one observation.
func (h *Histogram) Record(d time.Duration) {
	v := d.Nanoseconds()
	if v < 0 {
		v = 0
	}
	i := bucketIndex(v)
	if i >= len(h.counts) {
		grown := make([]uint64, i+1)
		copy(grown, h.counts)
		h.counts = grown
	}
	h.counts[i]++
	h.sum += v
	if h.n == 0 || v < h.min {
		h.min = v
	}
	if v > h.max {
		h.max = v
	}
	h.n++
}

// Count returns the number of observations.
func (h *Histogram) Count() uint64 { return h.n }

// Min returns the smallest recorded value (0 when empty).
func (h *Histogram) Min() time.Duration {
	if h.n == 0 {
		return 0
	}
	return time.Duration(h.min)
}

// Max returns the largest recorded value (0 when empty).
func (h *Histogram) Max() time.Duration {
	if h.n == 0 {
		return 0
	}
	return time.Duration(h.max)
}

// Mean returns the arithmetic mean (0 when empty).
func (h *Histogram) Mean() time.Duration {
	if h.n == 0 {
		return 0
	}
	return time.Duration(h.sum / int64(h.n))
}

// Quantile returns the q-quantile (nearest-rank, the ⌈q·n⌉-th smallest
// observation's bucket upper bound, clamped to the observed max so the
// quantization never exceeds the true maximum). q outside (0,1] is
// clamped.
func (h *Histogram) Quantile(q float64) time.Duration {
	if h.n == 0 {
		return 0
	}
	rank := uint64(math.Ceil(q * float64(h.n)))
	if rank < 1 {
		rank = 1
	}
	if rank > h.n {
		rank = h.n
	}
	var cum uint64
	for i, c := range h.counts {
		cum += c
		if cum >= rank {
			v := bucketHigh(i)
			if v > h.max {
				v = h.max
			}
			return time.Duration(v)
		}
	}
	return time.Duration(h.max)
}

// Merge folds other into h.
func (h *Histogram) Merge(other *Histogram) {
	if other == nil || other.n == 0 {
		return
	}
	if len(other.counts) > len(h.counts) {
		grown := make([]uint64, len(other.counts))
		copy(grown, h.counts)
		h.counts = grown
	}
	for i, c := range other.counts {
		h.counts[i] += c
	}
	if h.n == 0 || other.min < h.min {
		h.min = other.min
	}
	if other.max > h.max {
		h.max = other.max
	}
	h.n += other.n
	h.sum += other.sum
}

// Summary condenses the histogram for reports.
type Summary struct {
	Count uint64        `json:"count"`
	Min   time.Duration `json:"min_ns"`
	Mean  time.Duration `json:"mean_ns"`
	P50   time.Duration `json:"p50_ns"`
	P90   time.Duration `json:"p90_ns"`
	P99   time.Duration `json:"p99_ns"`
	P999  time.Duration `json:"p999_ns"`
	Max   time.Duration `json:"max_ns"`
}

// Summarize snapshots the standard quantile set.
func (h *Histogram) Summarize() Summary {
	return Summary{
		Count: h.n,
		Min:   h.Min(),
		Mean:  h.Mean(),
		P50:   h.Quantile(0.50),
		P90:   h.Quantile(0.90),
		P99:   h.Quantile(0.99),
		P999:  h.Quantile(0.999),
		Max:   h.Max(),
	}
}
