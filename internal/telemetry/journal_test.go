package telemetry

import (
	"bytes"
	"encoding/json"
	"errors"
	"os"
	"path/filepath"
	"regexp"
	"testing"
	"time"

	"repro/internal/engine"
)

var elapsedField = regexp.MustCompile(`"elapsed_ns":\d+`)

func journalRun(elapsedScale time.Duration) []byte {
	var buf bytes.Buffer
	l := NewRunLog(&buf)
	obs := l.Observer("FairKM[k=3 seed=1]")
	for i := 1; i <= 3; i++ {
		obs(engine.IterEvent{
			Iteration: i,
			Moves:     40 - 10*i,
			Objective: 100.5 / float64(i),
			Elapsed:   time.Duration(i) * elapsedScale,
		})
	}
	l.WriteSummary("FairKM[k=3 seed=1]", RunSummary{
		Tool: "fairkm", K: 3, Lambda: 0.5, Seed: 1, Rows: 200,
		Iterations: 3, TotalMoves: 60, Converged: true,
		Objective: 33.5, KMeansTerm: 30, FairnessTerm: 3.5,
		ElapsedNS: (3 * elapsedScale).Nanoseconds(),
	})
	l.Close()
	return buf.Bytes()
}

// TestRunJournalDeterminism: two journals of the same fixed-seed run
// are byte-identical apart from the stamped elapsed_ns fields — the
// contract the CLI -telemetry flags inherit.
func TestRunJournalDeterminism(t *testing.T) {
	a := journalRun(time.Millisecond)
	b := journalRun(7 * time.Millisecond) // different wall-clock, same run
	if bytes.Equal(a, b) {
		t.Fatal("elapsed_ns should differ between the two runs")
	}
	na := elapsedField.ReplaceAll(a, []byte(`"elapsed_ns":X`))
	nb := elapsedField.ReplaceAll(b, []byte(`"elapsed_ns":X`))
	if !bytes.Equal(na, nb) {
		t.Fatalf("journals differ beyond elapsed_ns:\n%s\nvs:\n%s", na, nb)
	}
}

// TestRunJournalRecords checks the JSONL shape: typed records, one
// line each, iter fields verbatim from the IterEvent, summary embedded
// flat.
func TestRunJournalRecords(t *testing.T) {
	lines := bytes.Split(bytes.TrimSpace(journalRun(time.Millisecond)), []byte("\n"))
	if len(lines) != 4 {
		t.Fatalf("journal has %d lines, want 4", len(lines))
	}
	var first struct {
		Type      string  `json:"type"`
		Run       string  `json:"run"`
		Iter      int     `json:"iter"`
		Moves     int     `json:"moves"`
		Objective float64 `json:"objective"`
		ElapsedNS int64   `json:"elapsed_ns"`
	}
	if err := json.Unmarshal(lines[0], &first); err != nil {
		t.Fatal(err)
	}
	if first.Type != "iter" || first.Run != "FairKM[k=3 seed=1]" || first.Iter != 1 ||
		first.Moves != 30 || first.Objective != 100.5 || first.ElapsedNS != int64(time.Millisecond) {
		t.Fatalf("iter record = %+v", first)
	}
	var last struct {
		Type string `json:"type"`
		Run  string `json:"run"`
		RunSummary
	}
	if err := json.Unmarshal(lines[3], &last); err != nil {
		t.Fatal(err)
	}
	if last.Type != "summary" || last.Tool != "fairkm" || last.K != 3 ||
		last.TotalMoves != 60 || !last.Converged {
		t.Fatalf("summary record = %+v", last)
	}
}

func TestCreateRunLog(t *testing.T) {
	path := filepath.Join(t.TempDir(), "run.jsonl")
	l, err := CreateRunLog(path)
	if err != nil {
		t.Fatal(err)
	}
	l.Observer("r")(engine.IterEvent{Iteration: 1})
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	if err := l.Close(); err != nil { // idempotent
		t.Fatalf("second Close: %v", err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Contains(data, []byte(`"type":"iter"`)) {
		t.Fatalf("file content: %s", data)
	}
	// Records after Close are dropped, not written or panicking.
	l.WriteSummary("r", RunSummary{Tool: "x"})
	after, _ := os.ReadFile(path)
	if !bytes.Equal(data, after) {
		t.Fatal("write after Close reached the file")
	}
}

type failWriter struct{ err error }

func (f failWriter) Write([]byte) (int, error) { return 0, f.err }

func TestRunLogLatchesFirstError(t *testing.T) {
	want := errors.New("disk full")
	l := NewRunLog(failWriter{err: want})
	l.WriteSummary("r", RunSummary{Tool: "x"})
	l.WriteSummary("r", RunSummary{Tool: "y"})
	if err := l.Close(); !errors.Is(err, want) {
		t.Fatalf("Close = %v, want %v", err, want)
	}
}
