package telemetry

import (
	"math"
	"testing"
	"time"
)

func TestHistogramExactSmallValues(t *testing.T) {
	var h Histogram
	for _, v := range []time.Duration{0, 1, 5, 31} {
		h.Record(v)
	}
	if h.Count() != 4 || h.Min() != 0 || h.Max() != 31 {
		t.Fatalf("count/min/max = %d/%v/%v", h.Count(), h.Min(), h.Max())
	}
	// Below 32ns buckets are exact.
	if got := h.Quantile(0.5); got != 1 {
		t.Errorf("p50 = %v, want 1ns (nearest rank of {0,1,5,31})", got)
	}
	if got := h.Quantile(1.0); got != 31 {
		t.Errorf("p100 = %v, want 31", got)
	}
}

func TestHistogramRelativeError(t *testing.T) {
	values := []time.Duration{
		123 * time.Nanosecond,
		45 * time.Microsecond,
		3 * time.Millisecond,
		700 * time.Millisecond,
		12 * time.Second,
	}
	for _, v := range values {
		var single Histogram
		single.Record(v)
		got := single.Quantile(0.99)
		if got < v {
			t.Errorf("quantile %v under-reports recorded %v", got, v)
		}
		if rel := float64(got-v) / float64(v); rel > 1.0/histSubBuckets {
			t.Errorf("quantile %v off recorded %v by %.2f%% (> %.2f%% bound)", got, v, 100*rel, 100.0/histSubBuckets)
		}
	}
}

// TestHistogramQuantileRank pins nearest-rank semantics on a known
// sample: 100 values 1ms..100ms, p99 must cover the 99th value.
func TestHistogramQuantileRank(t *testing.T) {
	var h Histogram
	for i := 1; i <= 100; i++ {
		h.Record(time.Duration(i) * time.Millisecond)
	}
	p50 := h.Quantile(0.50)
	p99 := h.Quantile(0.99)
	if p50 < 50*time.Millisecond || float64(p50) > 50e6*1.04 {
		t.Errorf("p50 = %v, want ≈50ms (≥ true rank, ≤ +1 bucket)", p50)
	}
	if p99 < 99*time.Millisecond || float64(p99) > 99e6*1.04 {
		t.Errorf("p99 = %v, want ≈99ms", p99)
	}
	if h.Quantile(1) > h.Max() {
		t.Errorf("p100 %v exceeds max %v", h.Quantile(1), h.Max())
	}
	if mean := h.Mean(); mean < 50*time.Millisecond || mean > 51*time.Millisecond {
		t.Errorf("mean = %v, want 50.5ms", mean)
	}
}

func TestHistogramMerge(t *testing.T) {
	var a, b, whole Histogram
	for i := 1; i <= 200; i++ {
		v := time.Duration(i*i) * time.Microsecond
		whole.Record(v)
		if i%2 == 0 {
			a.Record(v)
		} else {
			b.Record(v)
		}
	}
	a.Merge(&b)
	if a.Count() != whole.Count() || a.Min() != whole.Min() || a.Max() != whole.Max() {
		t.Fatalf("merged count/min/max differ: %d/%v/%v vs %d/%v/%v",
			a.Count(), a.Min(), a.Max(), whole.Count(), whole.Min(), whole.Max())
	}
	for _, q := range []float64{0.1, 0.5, 0.9, 0.99, 1} {
		if a.Quantile(q) != whole.Quantile(q) {
			t.Errorf("q=%v: merged %v vs whole %v", q, a.Quantile(q), whole.Quantile(q))
		}
	}
	if a.Mean() != whole.Mean() {
		t.Errorf("merged mean %v vs whole %v", a.Mean(), whole.Mean())
	}
}

// TestHistogramBucketLayout sanity-checks the bucket functions: indexes
// are monotone in the value and every value lands at or below its
// bucket's upper bound.
func TestHistogramBucketLayout(t *testing.T) {
	prev := -1
	for _, v := range []int64{0, 1, 31, 32, 33, 63, 64, 65, 127, 128, 1 << 20, 1<<20 + 12345, math.MaxInt32} {
		i := bucketIndex(v)
		if i < prev {
			t.Errorf("bucketIndex(%d) = %d < previous %d (not monotone)", v, i, prev)
		}
		prev = i
		if hi := bucketHigh(i); v > hi {
			t.Errorf("value %d above its bucket %d upper bound %d", v, i, hi)
		}
		if i > 0 {
			if lowHi := bucketHigh(i - 1); v <= lowHi {
				t.Errorf("value %d also fits bucket %d (bound %d): buckets overlap", v, i-1, lowHi)
			}
		}
	}
}
