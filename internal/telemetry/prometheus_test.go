package telemetry

import (
	"strconv"
	"strings"
	"testing"
	"time"
)

// TestWritePrometheusGolden pins the full exposition byte-for-byte:
// HELP/TYPE per family, families in name order, instruments in label
// order, histograms as cumulative le buckets in seconds (occupied
// buckets only) plus +Inf, _sum and _count.
func TestWritePrometheusGolden(t *testing.T) {
	r := NewRegistry()
	r.Counter("test_requests_total", "Total requests.", Label{Key: "model", Value: "b"}).Add(5)
	r.Counter("test_requests_total", "Total requests.", Label{Key: "model", Value: "a"}).Add(3)
	r.Gauge("test_temp", "Current temperature.").Set(1.5)
	h := r.Histogram("test_lat_seconds", "Request latency.")
	h.Record(10 * time.Nanosecond)  // exact bucket: le 10ns = 1e-08s
	h.Record(100 * time.Nanosecond) // log-linear bucket [96,101]ns: le 1.01e-07s
	h.Record(100 * time.Nanosecond)

	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	golden := `# HELP test_lat_seconds Request latency.
# TYPE test_lat_seconds histogram
test_lat_seconds_bucket{le="1e-08"} 1
test_lat_seconds_bucket{le="1.01e-07"} 3
test_lat_seconds_bucket{le="+Inf"} 3
test_lat_seconds_sum 2.1e-07
test_lat_seconds_count 3
# HELP test_requests_total Total requests.
# TYPE test_requests_total counter
test_requests_total{model="a"} 3
test_requests_total{model="b"} 5
# HELP test_temp Current temperature.
# TYPE test_temp gauge
test_temp 1.5
`
	if b.String() != golden {
		t.Fatalf("exposition mismatch.\n--- got ---\n%s--- want ---\n%s", b.String(), golden)
	}
}

// TestWritePrometheusDeterministic: scraping twice over frozen inputs
// is byte-identical — map iteration order must never leak.
func TestWritePrometheusDeterministic(t *testing.T) {
	r := NewRegistry()
	for _, m := range []string{"zeta", "alpha", "mid"} {
		r.Counter("det_total", "Det.", Label{Key: "model", Value: m}).Add(uint64(len(m)))
		r.Histogram("det_lat_seconds", "Det latency.", Label{Key: "model", Value: m}).
			Record(time.Duration(len(m)) * time.Millisecond)
	}
	r.Gauge("det_gauge", "Det gauge.", Label{Key: "x", Value: "1"}).Set(7)
	var first strings.Builder
	if err := r.WritePrometheus(&first); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		var again strings.Builder
		if err := r.WritePrometheus(&again); err != nil {
			t.Fatal(err)
		}
		if again.String() != first.String() {
			t.Fatalf("scrape %d differs:\n%s\nvs:\n%s", i, again.String(), first.String())
		}
	}
}

// TestWritePrometheusEscaping: HELP escapes backslash and newline;
// label values additionally escape double quotes.
func TestWritePrometheusEscaping(t *testing.T) {
	r := NewRegistry()
	r.Counter("esc_total", "line1\nline2 \\ done.",
		Label{Key: "path", Value: "a\"b\\c\nd"}).Inc()
	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	if !strings.Contains(out, `# HELP esc_total line1\nline2 \\ done.`) {
		t.Fatalf("HELP not escaped:\n%s", out)
	}
	if !strings.Contains(out, `esc_total{path="a\"b\\c\nd"} 1`) {
		t.Fatalf("label value not escaped:\n%s", out)
	}
}

// TestWritePrometheusHistogramCumulative checks the le-bucket contract
// on a spread distribution: counts are cumulative, every le bound
// is at least the values it covers, and _count/_sum/+Inf agree with
// the recorded data.
func TestWritePrometheusHistogramCumulative(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("cum_seconds", "Cumulative.")
	var n uint64
	var sumNS int64
	for i := 1; i <= 1000; i++ {
		d := time.Duration(i) * 37 * time.Microsecond
		h.Record(d)
		n++
		sumNS += d.Nanoseconds()
	}
	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	var prevCum uint64
	var prevLE float64
	var infSeen bool
	for _, line := range strings.Split(b.String(), "\n") {
		if !strings.HasPrefix(line, "cum_seconds_bucket{le=") {
			continue
		}
		leStr := line[strings.Index(line, `"`)+1 : strings.LastIndex(line, `"`)]
		cum, err := strconv.ParseUint(line[strings.LastIndex(line, " ")+1:], 10, 64)
		if err != nil {
			t.Fatalf("bad bucket line %q: %v", line, err)
		}
		if leStr == "+Inf" {
			infSeen = true
			if cum != n {
				t.Fatalf("+Inf bucket %d, want %d", cum, n)
			}
			continue
		}
		le, err := strconv.ParseFloat(leStr, 64)
		if err != nil {
			t.Fatalf("bad le %q: %v", leStr, err)
		}
		if le <= prevLE && prevCum > 0 {
			t.Fatalf("le bounds not increasing: %v after %v", le, prevLE)
		}
		if cum < prevCum {
			t.Fatalf("bucket counts not cumulative: %d after %d", cum, prevCum)
		}
		// Nearest-rank check: the cum-th smallest recorded value must
		// not exceed the bucket bound (values are i*37µs, sorted).
		if got := float64(cum) * 37e-6; cum > 0 && float64(cum)*37e-6 > le+1e-12 {
			t.Fatalf("le %v under-covers its %d values (largest %v)", le, cum, got)
		}
		prevLE, prevCum = le, cum
	}
	if !infSeen {
		t.Fatal("no +Inf bucket emitted")
	}
	out := b.String()
	if !strings.Contains(out, "cum_seconds_count "+strconv.FormatUint(n, 10)+"\n") {
		t.Fatalf("_count missing or wrong:\n%s", out)
	}
	wantSum := formatFloat(float64(sumNS) / 1e9)
	if !strings.Contains(out, "cum_seconds_sum "+wantSum+"\n") {
		t.Fatalf("_sum %s missing:\n%s", wantSum, out)
	}
}

// TestWritePrometheusPullHistogram: HistogramFunc snapshots render the
// same as owned histograms, and a nil snapshot renders as empty.
func TestWritePrometheusPullHistogram(t *testing.T) {
	ah := NewAtomicHistogram()
	ah.Record(time.Millisecond)
	r := NewRegistry()
	r.HistogramFunc("pull_seconds", "Pull.", ah.Snapshot)
	r.HistogramFunc("empty_seconds", "Empty.", func() *Histogram { return nil })
	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	if !strings.Contains(out, "pull_seconds_count 1\n") {
		t.Fatalf("pull histogram not rendered:\n%s", out)
	}
	if !strings.Contains(out, "empty_seconds_count 0\n") ||
		!strings.Contains(out, `empty_seconds_bucket{le="+Inf"} 0`) {
		t.Fatalf("nil snapshot not rendered as empty:\n%s", out)
	}
}
