package telemetry

import (
	"fmt"
	"math"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// Kind is a metric family's type: every instrument of one family name
// shares it (Prometheus emits exactly one TYPE line per family).
type Kind int

const (
	// KindCounter is a monotonically increasing uint64.
	KindCounter Kind = iota
	// KindGauge is an instantaneous float64.
	KindGauge
	// KindHistogram is a log-linear latency histogram exposed with
	// cumulative le buckets in seconds.
	KindHistogram
)

func (k Kind) String() string {
	switch k {
	case KindCounter:
		return "counter"
	case KindGauge:
		return "gauge"
	case KindHistogram:
		return "histogram"
	default:
		return "unknown"
	}
}

// Label is one metric dimension. Instruments are keyed by the full
// sorted label set; the same (family, labels) always resolves to the
// same instrument, so counters survive re-registration (e.g. a model
// hot-swap re-creating its collectors).
type Label struct {
	Key   string
	Value string
}

// Registry is a set of metric families with deterministic Prometheus
// text exposition. All methods are safe for concurrent use.
// Registration panics on contract violations (invalid names, a family
// re-registered under a different kind) — these are programming
// errors at startup, and internal/cli.Main turns panics into exit 3.
type Registry struct {
	mu       sync.Mutex
	families map[string]*family

	scrapeMu sync.Mutex
	onScrape []func()
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{families: map[string]*family{}}
}

type family struct {
	name, help  string
	kind        Kind
	instruments map[string]*instrument // key: rendered label suffix
}

// instrument is one (family, labels) time series. Exactly one of the
// value fields is live, selected by the family kind and by whether the
// instrument was registered owned (the registry stores the value) or
// pull-style (a collector func is invoked at exposition time).
type instrument struct {
	labels string // rendered `{k="v",...}` suffix, "" when unlabelled
	pull   bool

	count atomic.Uint64 // counter
	gauge atomic.Uint64 // gauge, as math.Float64bits
	hist  *AtomicHistogram

	countFn func() uint64
	gaugeFn func() float64
	histFn  func() *Histogram
}

// Counter is a monotonically increasing metric handle.
type Counter struct{ in *instrument }

// Add increments the counter by n.
func (c Counter) Add(n uint64) { c.in.count.Add(n) }

// Inc increments the counter by one.
func (c Counter) Inc() { c.in.count.Add(1) }

// Value returns the current count.
func (c Counter) Value() uint64 { return c.in.count.Load() }

// Gauge is an instantaneous-value metric handle.
type Gauge struct{ in *instrument }

// Set stores the gauge value.
func (g Gauge) Set(v float64) { g.in.gauge.Store(math.Float64bits(v)) }

// Value returns the current gauge value.
func (g Gauge) Value() float64 { return math.Float64frombits(g.in.gauge.Load()) }

// HistogramMetric is a registered concurrent histogram handle.
type HistogramMetric struct{ in *instrument }

// Record adds one observation; wait-free (see AtomicHistogram).
func (h HistogramMetric) Record(d time.Duration) { h.in.hist.Record(d) }

// Snapshot materializes the current distribution.
func (h HistogramMetric) Snapshot() *Histogram { return h.in.hist.Snapshot() }

// Counter registers (or resolves) an owned counter.
func (r *Registry) Counter(name, help string, labels ...Label) Counter {
	return Counter{in: r.getOrCreate(name, help, KindCounter, false, labels)}
}

// Gauge registers (or resolves) an owned gauge.
func (r *Registry) Gauge(name, help string, labels ...Label) Gauge {
	return Gauge{in: r.getOrCreate(name, help, KindGauge, false, labels)}
}

// Histogram registers (or resolves) an owned histogram.
func (r *Registry) Histogram(name, help string, labels ...Label) HistogramMetric {
	in := r.getOrCreate(name, help, KindHistogram, false, labels)
	return HistogramMetric{in: in}
}

// CounterFunc registers a pull-style counter: fn is called once per
// exposition. Re-registering the same (name, labels) replaces fn —
// scrape hooks may refresh their closures every scrape. fn must not
// call back into the registry.
func (r *Registry) CounterFunc(name, help string, fn func() uint64, labels ...Label) {
	r.getOrCreate(name, help, KindCounter, true, labels).countFn = fn
}

// GaugeFunc registers a pull-style gauge; see CounterFunc.
func (r *Registry) GaugeFunc(name, help string, fn func() float64, labels ...Label) {
	r.getOrCreate(name, help, KindGauge, true, labels).gaugeFn = fn
}

// HistogramFunc registers a pull-style histogram; see CounterFunc. fn
// returns a snapshot (e.g. AtomicHistogram.Snapshot) the writer may
// read without synchronization.
func (r *Registry) HistogramFunc(name, help string, fn func() *Histogram, labels ...Label) {
	r.getOrCreate(name, help, KindHistogram, true, labels).histFn = fn
}

// OnScrape registers a hook that runs at the start of every
// WritePrometheus call, before any family is rendered — the place to
// snapshot external state (serving stats, drift reports) exactly once
// per scrape and (re-)register pull-style instruments over it. Hooks
// run serially in registration order.
func (r *Registry) OnScrape(fn func()) {
	r.scrapeMu.Lock()
	defer r.scrapeMu.Unlock()
	r.onScrape = append(r.onScrape, fn)
}

func (r *Registry) getOrCreate(name, help string, kind Kind, pull bool, labels []Label) *instrument {
	if !validMetricName(name) {
		panic(fmt.Sprintf("telemetry: invalid metric name %q", name))
	}
	suffix := renderLabels(labels)
	r.mu.Lock()
	defer r.mu.Unlock()
	fam := r.families[name]
	if fam == nil {
		fam = &family{name: name, help: help, kind: kind, instruments: map[string]*instrument{}}
		r.families[name] = fam
	} else if fam.kind != kind {
		panic(fmt.Sprintf("telemetry: metric %q registered as %s and %s", name, fam.kind, kind))
	}
	in := fam.instruments[suffix]
	if in == nil {
		in = &instrument{labels: suffix, pull: pull}
		if kind == KindHistogram && !pull {
			in.hist = NewAtomicHistogram()
		}
		fam.instruments[suffix] = in
	} else if in.pull != pull {
		panic(fmt.Sprintf("telemetry: metric %q%s registered both owned and pull-style", name, suffix))
	}
	return in
}

// renderLabels sorts labels by key and renders the canonical
// `{k="v",...}` suffix used both as the instrument identity and in the
// exposition output.
func renderLabels(labels []Label) string {
	if len(labels) == 0 {
		return ""
	}
	ls := append([]Label(nil), labels...)
	sort.Slice(ls, func(i, j int) bool { return ls[i].Key < ls[j].Key })
	var b strings.Builder
	b.WriteByte('{')
	for i, l := range ls {
		if !validLabelKey(l.Key) {
			panic(fmt.Sprintf("telemetry: invalid label key %q", l.Key))
		}
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(l.Key)
		b.WriteString(`="`)
		b.WriteString(escapeLabelValue(l.Value))
		b.WriteByte('"')
	}
	b.WriteByte('}')
	return b.String()
}

func validMetricName(s string) bool {
	if s == "" {
		return false
	}
	for i, c := range s {
		alpha := c >= 'a' && c <= 'z' || c >= 'A' && c <= 'Z' || c == '_' || c == ':'
		if !alpha && (i == 0 || c < '0' || c > '9') {
			return false
		}
	}
	return true
}

func validLabelKey(s string) bool {
	if s == "" || strings.ContainsRune(s, ':') {
		return false
	}
	return validMetricName(s)
}
