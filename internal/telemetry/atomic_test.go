package telemetry

import (
	"sync"
	"testing"
	"time"
)

// TestAtomicHistogramMatchesHistogram: serial recording of the same
// sequence into both flavors yields identical distributions.
func TestAtomicHistogramMatchesHistogram(t *testing.T) {
	ah := NewAtomicHistogram()
	var h Histogram
	for i := 0; i < 5000; i++ {
		d := time.Duration(i*i%777777) * time.Nanosecond
		ah.Record(d)
		h.Record(d)
	}
	snap := ah.Snapshot()
	if snap.Count() != h.Count() || snap.Min() != h.Min() || snap.Max() != h.Max() || snap.Mean() != h.Mean() {
		t.Fatalf("snapshot summary mismatch: %+v vs %+v", snap.Summarize(), h.Summarize())
	}
	for _, q := range []float64{0.01, 0.5, 0.9, 0.99, 0.999, 1} {
		if snap.Quantile(q) != h.Quantile(q) {
			t.Fatalf("q=%v: snapshot %v, histogram %v", q, snap.Quantile(q), h.Quantile(q))
		}
	}
}

// TestAtomicHistogramConcurrent: concurrent writers lose nothing —
// counts, sum and extremes are exact after the writers quiesce.
func TestAtomicHistogramConcurrent(t *testing.T) {
	const goroutines = 8
	const perG = 10000
	ah := NewAtomicHistogram()
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < perG; i++ {
				ah.Record(time.Duration(i%100+1) * time.Microsecond)
			}
		}(g)
	}
	wg.Wait()
	snap := ah.Snapshot()
	if want := uint64(goroutines * perG); snap.Count() != want {
		t.Fatalf("count = %d, want %d", snap.Count(), want)
	}
	var sumPerG int64
	for i := 0; i < perG; i++ {
		sumPerG += int64(i%100+1) * 1000
	}
	if want := time.Duration(goroutines * sumPerG / (goroutines * perG)); snap.Mean() != want {
		t.Fatalf("mean = %v, want %v", snap.Mean(), want)
	}
	if snap.Min() != time.Microsecond {
		t.Fatalf("min = %v, want 1µs", snap.Min())
	}
	if snap.Max() != 100*time.Microsecond {
		t.Fatalf("max = %v, want 100µs", snap.Max())
	}
}

// TestAtomicHistogramSnapshotDuringWrites: snapshots taken mid-flight
// are internally consistent (count matches bucket mass, min <= max) —
// the metrics-scrape contract under live traffic.
func TestAtomicHistogramSnapshotDuringWrites(t *testing.T) {
	ah := NewAtomicHistogram()
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
					ah.Record(time.Duration(i%1000) * time.Microsecond)
				}
			}
		}()
	}
	for s := 0; s < 50; s++ {
		snap := ah.Snapshot()
		var mass uint64
		for _, c := range snap.counts {
			mass += c
		}
		if mass != snap.n {
			t.Fatalf("snapshot %d: bucket mass %d != n %d", s, mass, snap.n)
		}
		if snap.n > 0 && snap.min > snap.max {
			t.Fatalf("snapshot %d: min %d > max %d", s, snap.min, snap.max)
		}
	}
	close(stop)
	wg.Wait()
}

// TestAtomicHistogramEmpty: the empty snapshot behaves like an empty
// Histogram.
func TestAtomicHistogramEmpty(t *testing.T) {
	snap := NewAtomicHistogram().Snapshot()
	if snap.Count() != 0 || snap.Min() != 0 || snap.Max() != 0 || snap.Quantile(0.99) != 0 {
		t.Fatalf("empty snapshot not zero: %+v", snap.Summarize())
	}
}

// TestAtomicHistogramNegativeClamped mirrors Histogram's clamp of
// negative durations to zero.
func TestAtomicHistogramNegativeClamped(t *testing.T) {
	ah := NewAtomicHistogram()
	ah.Record(-5 * time.Second)
	snap := ah.Snapshot()
	if snap.Min() != 0 || snap.Max() != 0 || snap.Count() != 1 {
		t.Fatalf("negative record not clamped: %+v", snap.Summarize())
	}
}
