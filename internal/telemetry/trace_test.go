package telemetry

import (
	"sync"
	"testing"
	"time"
)

func testTracer(t *testing.T, keep int) (*Registry, *RequestTracer) {
	t.Helper()
	r := NewRegistry()
	return r, NewRequestTracer(r, "trace_stage_seconds", "Per-stage latency.", "m", keep)
}

func TestRequestTracerStageHistograms(t *testing.T) {
	_, tr := testTracer(t, 0)
	tr.Observe(Trace{
		Rows: 4, Outcome: OutcomeOK,
		Admission: 2 * time.Microsecond, Queue: time.Microsecond,
		Score: 10 * time.Microsecond, Total: 12 * time.Microsecond,
	})
	tr.Observe(Trace{Rows: 1, Outcome: OutcomeShed, Admission: time.Microsecond, Total: time.Microsecond})
	// OK requests only in the stage histograms...
	for _, tc := range []struct {
		stage string
		h     HistogramMetric
		min   time.Duration
	}{
		{StageAdmission, tr.admission, 2 * time.Microsecond},
		{StageQueue, tr.queue, time.Microsecond},
		{StageScore, tr.score, 10 * time.Microsecond},
		{StageTotal, tr.total, 12 * time.Microsecond},
	} {
		snap := tc.h.Snapshot()
		if snap.Count() != 1 || snap.Min() != tc.min {
			t.Fatalf("stage %s: count=%d min=%v, want 1 obs of %v", tc.stage, snap.Count(), snap.Min(), tc.min)
		}
	}
	// ...but the flight recorder keeps every outcome, stamped.
	slow := tr.Slowest()
	if len(slow) != 2 {
		t.Fatalf("recorder has %d traces, want 2", len(slow))
	}
	if slow[0].Outcome != OutcomeOK || slow[0].Total != 12*time.Microsecond {
		t.Fatalf("slowest[0] = %+v", slow[0])
	}
	if slow[1].Outcome != OutcomeShed {
		t.Fatalf("slowest[1] = %+v", slow[1])
	}
	for i, s := range slow {
		if s.Model != "m" || s.Seq == 0 {
			t.Fatalf("trace %d not stamped: %+v", i, s)
		}
	}
}

func TestFlightRecorderKeepsSlowest(t *testing.T) {
	_, tr := testTracer(t, 4)
	// 100 observations, totals 1..100ns in a scrambled fixed order.
	for i := 0; i < 100; i++ {
		total := time.Duration((i*37)%100+1) * time.Nanosecond
		tr.Observe(Trace{Outcome: OutcomeOK, Total: total})
	}
	slow := tr.Slowest()
	if len(slow) != 4 {
		t.Fatalf("kept %d, want 4", len(slow))
	}
	for i, want := range []time.Duration{100, 99, 98, 97} {
		if slow[i].Total != want {
			t.Fatalf("slowest[%d].Total = %v, want %vns", i, slow[i].Total, want)
		}
	}
}

func TestFlightRecorderWindowRotation(t *testing.T) {
	_, tr := testTracer(t, 2)
	window := uint64(2 * traceWindowPerKeep)
	// First window: totals 1..window-1; the window-th observation
	// triggers rotation and seeds the fresh current window.
	for i := uint64(1); i <= window; i++ {
		tr.Observe(Trace{Outcome: OutcomeOK, Total: time.Duration(i)})
	}
	slow := tr.Slowest()
	want := []time.Duration{time.Duration(window), time.Duration(window - 1), time.Duration(window - 2)}
	if len(slow) != 3 {
		t.Fatalf("after rotation: %d traces, want 3 (cur 1 + prev 2)", len(slow))
	}
	for i := range want {
		if slow[i].Total != want[i] {
			t.Fatalf("slowest[%d].Total = %v, want %v", i, slow[i].Total, want[i])
		}
	}
	// Keep filling the new window; prev still contributes.
	tr.Observe(Trace{Outcome: OutcomeOK, Total: time.Duration(window + 1)})
	tr.Observe(Trace{Outcome: OutcomeOK, Total: 1})
	slow = tr.Slowest()
	if len(slow) != 4 || slow[0].Total != time.Duration(window+1) {
		t.Fatalf("post-rotation merge wrong: %+v", slow)
	}
}

// TestFlightRecorderFastReject: once the current window's slowest set
// is full, traces at or below the floor never enter the recorder.
func TestFlightRecorderFastReject(t *testing.T) {
	_, tr := testTracer(t, 2)
	tr.Observe(Trace{Outcome: OutcomeOK, Total: 100})
	tr.Observe(Trace{Outcome: OutcomeOK, Total: 200})
	if fl := tr.rec.floor.Load(); fl != 100 {
		t.Fatalf("floor = %d, want 100", fl)
	}
	for i := 0; i < 50; i++ {
		tr.Observe(Trace{Outcome: OutcomeOK, Total: 50})
	}
	slow := tr.Slowest()
	if len(slow) != 2 || slow[0].Total != 200 || slow[1].Total != 100 {
		t.Fatalf("below-floor traces leaked in: %+v", slow)
	}
	tr.Observe(Trace{Outcome: OutcomeOK, Total: 300})
	if fl := tr.rec.floor.Load(); fl != 200 {
		t.Fatalf("floor after displacement = %d, want 200", fl)
	}
}

// TestRequestTracerConcurrent exercises Observe and Slowest under the
// race detector and checks nothing is lost from the histograms.
func TestRequestTracerConcurrent(t *testing.T) {
	_, tr := testTracer(t, 8)
	const goroutines = 4
	const perG = 2000
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < perG; i++ {
				// Cyclic values: the maximum (100ns) recurs every 100
				// observations per goroutine, so regardless of window
				// rotation timing the retained set always has one.
				tr.Observe(Trace{
					Outcome: OutcomeOK,
					Total:   time.Duration(i%100+1) * time.Nanosecond,
				})
			}
		}(g)
	}
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < 100; i++ {
			tr.Slowest()
		}
	}()
	wg.Wait()
	<-done
	if n := tr.total.Snapshot().Count(); n != goroutines*perG {
		t.Fatalf("total histogram count = %d, want %d", n, goroutines*perG)
	}
	slow := tr.Slowest()
	if len(slow) == 0 {
		t.Fatal("recorder empty after load")
	}
	if slow[0].Total != 100*time.Nanosecond {
		t.Fatalf("slowest = %v, want 100ns", slow[0].Total)
	}
}
