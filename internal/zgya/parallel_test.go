package zgya

import (
	"math"
	"testing"

	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/stats"
)

// parallelDataset builds a mixed dataset with one clustered sensitive
// attribute for the engine-path tests.
func parallelDataset(t *testing.T, seed int64, n int) *dataset.Dataset {
	t.Helper()
	rng := stats.NewRNG(seed)
	b := dataset.NewBuilder("x", "y")
	b.AddCategoricalSensitive("g")
	for i := 0; i < n; i++ {
		center := float64(i % 4)
		b.Row(
			[]float64{rng.Gaussian(center*3, 1), rng.Gaussian(-center*2, 1)},
			[]string{string(rune('a' + i%3))},
			nil,
		)
	}
	ds, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	return ds
}

// TestParallelSweepDeterminism: the engine's parallelism contract now
// covers ZGYA — frozen-statistics parallel sweeps are bit-identical
// for every worker count.
func TestParallelSweepDeterminism(t *testing.T) {
	ds := parallelDataset(t, 41, 600)
	var ref *Result
	for _, p := range []int{1, 2, 4, core.ParallelismAuto} {
		res, err := Run(ds, "g", Config{K: 6, AutoLambda: true, Seed: 9, Parallelism: p})
		if err != nil {
			t.Fatalf("parallelism=%d: %v", p, err)
		}
		if ref == nil {
			ref = res
			continue
		}
		if res.Objective != ref.Objective || res.Iterations != ref.Iterations || res.Converged != ref.Converged {
			t.Fatalf("parallelism=%d diverged: objective %v vs %v, iters %d vs %d",
				p, res.Objective, ref.Objective, res.Iterations, ref.Iterations)
		}
		for i := range res.Assign {
			if res.Assign[i] != ref.Assign[i] {
				t.Fatalf("parallelism=%d: assignment mismatch at row %d", p, i)
			}
		}
	}
}

// TestParallelSweepMonotone: the re-validated parallel sweep keeps
// ZGYA's coordinate descent monotone.
func TestParallelSweepMonotone(t *testing.T) {
	ds := parallelDataset(t, 52, 400)
	s := ds.SensitiveByName("g")
	res, err := Run(ds, "g", Config{K: 5, Lambda: 25, Seed: 3, Parallelism: 4, MiniBatch: 64})
	if err != nil {
		t.Fatal(err)
	}
	// Final state must score identically under the from-scratch
	// objective used by the delta tests.
	naive := naiveObjective(ds, s, res.Assign, 5, 25)
	if math.Abs(naive-res.Objective) > 1e-7*(1+math.Abs(naive)) {
		t.Fatalf("incremental objective %v, from-scratch %v", res.Objective, naive)
	}
}

// TestMiniBatchSweepValid: the mini-batch path produces a valid
// clustering whose reported objective matches a from-scratch
// recomputation.
func TestMiniBatchSweepValid(t *testing.T) {
	ds := parallelDataset(t, 63, 300)
	s := ds.SensitiveByName("g")
	res, err := Run(ds, "g", Config{K: 4, Lambda: 10, Seed: 8, MiniBatch: 32})
	if err != nil {
		t.Fatal(err)
	}
	for i, c := range res.Assign {
		if c < 0 || c >= 4 {
			t.Fatalf("row %d assigned out-of-range cluster %d", i, c)
		}
	}
	naive := naiveObjective(ds, s, res.Assign, 4, 10)
	if math.Abs(naive-res.Objective) > 1e-7*(1+math.Abs(naive)) {
		t.Fatalf("incremental objective %v, from-scratch %v", res.Objective, naive)
	}
}
