package zgya

import (
	"math"
	"testing"

	"repro/internal/dataset"
	"repro/internal/engine"
	"repro/internal/stats"
)

// naiveObjective recomputes SSE + λ·Σ_C KL(U‖P_C) from scratch for an
// arbitrary assignment, mirroring the package objective definition.
func naiveObjective(ds *dataset.Dataset, s *dataset.SensitiveAttr, assign []int, k int, lambda float64) float64 {
	counts := make([]int, k)
	sums := make([][]float64, k)
	for c := range sums {
		sums[c] = make([]float64, ds.Dim())
	}
	valCounts := make([][]int, k)
	for c := range valCounts {
		valCounts[c] = make([]int, len(s.Values))
	}
	for i, c := range assign {
		counts[c]++
		stats.AddTo(sums[c], ds.Features[i])
		valCounts[c][s.Codes[i]]++
	}
	sse := 0.0
	for c := 0; c < k; c++ {
		if counts[c] == 0 {
			continue
		}
		mu := stats.Clone(sums[c])
		stats.Scale(mu, 1/float64(counts[c]))
		for i, a := range assign {
			if a == c {
				sse += stats.SqDist(ds.Features[i], mu)
			}
		}
	}
	u := ds.Fractions(s)
	kl := 0.0
	for c := 0; c < k; c++ {
		for j, uj := range u {
			if uj <= 0 {
				continue
			}
			p := epsilon
			if counts[c] > 0 {
				p = float64(valCounts[c][j]) / float64(counts[c])
				if p < epsilon {
					p = epsilon
				}
			}
			kl += uj * math.Log(uj/p)
		}
	}
	return sse + lambda*kl
}

// TestMoveDeltaMatchesNaive verifies that the incremental move deltas
// the solver uses equal full objective recomputation.
func TestMoveDeltaMatchesNaive(t *testing.T) {
	rng := stats.NewRNG(77)
	for trial := 0; trial < 25; trial++ {
		n := 10 + rng.Intn(30)
		k := 2 + rng.Intn(3)
		nvals := 2 + rng.Intn(3)
		b := dataset.NewBuilder("x", "y")
		b.AddCategoricalSensitive("g")
		for i := 0; i < n; i++ {
			b.Row([]float64{rng.Gaussian(0, 3), rng.Gaussian(0, 3)},
				[]string{string(rune('a' + rng.Intn(nvals)))}, nil)
		}
		ds, err := b.Build()
		if err != nil {
			t.Fatal(err)
		}
		s := ds.SensitiveByName("g")
		lambda := []float64{0, 1, 25}[rng.Intn(3)]

		st := newSolver(ds, s, Config{K: k, Lambda: lambda, Seed: int64(trial)})
		base := naiveObjective(ds, s, st.assign, k, lambda)
		for probe := 0; probe < 8; probe++ {
			i := rng.Intn(n)
			from := st.assign[i]
			to := rng.Intn(k)
			if to == from {
				continue
			}
			// Incremental delta exactly as bestMove computes it.
			x := st.features[i]
			var dSSE float64
			if m := st.counts[from]; m > 1 {
				dSSE -= float64(m) / float64(m-1) * sqDistToMean(x, st.sums[from], m)
			}
			if m := st.counts[to]; m > 0 {
				dSSE += float64(m) / float64(m+1) * sqDistToMean(x, st.sums[to], m)
			}
			dKL := (st.klWithDelta(from, i, -1) - st.klCache[from]) +
				(st.klWithDelta(to, i, +1) - st.klCache[to])
			incr := dSSE + lambda*dKL

			moved := append([]int(nil), st.assign...)
			moved[i] = to
			naive := naiveObjective(ds, s, moved, k, lambda) - base

			if math.Abs(incr-naive) > 1e-7*(1+math.Abs(naive)) {
				t.Fatalf("trial %d probe %d: delta %v, naive %v (λ=%v)", trial, probe, incr, naive, lambda)
			}
			// Apply and continue from the new state.
			st.del(i, from)
			st.add(i, to)
			st.assign[i] = to
			st.klCache[from] = st.klCluster(from)
			st.klCache[to] = st.klCluster(to)
			base += naive
		}
	}
}

// TestSweepMonotone: each coordinate-descent sweep must not increase
// the objective.
func TestSweepMonotone(t *testing.T) {
	rng := stats.NewRNG(88)
	b := dataset.NewBuilder("x")
	b.AddCategoricalSensitive("g")
	for i := 0; i < 50; i++ {
		b.Row([]float64{rng.Gaussian(float64(i%3)*4, 1)}, []string{string(rune('a' + i%2))}, nil)
	}
	ds, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	s := ds.SensitiveByName("g")
	st := newSolver(ds, s, Config{K: 3, Lambda: 30, Seed: 5})
	sw := engine.NewFullSweep(st)
	prev := naiveObjective(ds, s, st.assign, 3, 30)
	for iter := 0; iter < 10; iter++ {
		moves := sw.Sweep()
		cur := naiveObjective(ds, s, st.assign, 3, 30)
		if cur > prev+1e-7*(1+math.Abs(prev)) {
			t.Fatalf("iteration %d increased objective: %v -> %v", iter, prev, cur)
		}
		prev = cur
		if moves == 0 {
			break
		}
	}
}
