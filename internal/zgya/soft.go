package zgya

import (
	"fmt"
	"math"

	"repro/internal/dataset"
	"repro/internal/kmeans"
	"repro/internal/stats"
)

// RunSoft is the literal soft-assignment bound-optimization solver from
// Ziko et al.'s paper: maintain a probability vector s_p over clusters
// per point, iterate the fairness-regularized fixed point
//
//	s_pk ∝ exp(−(d_pk + λ·g_pk)),  g_pk = (1 − U_j/p_kj)/b_k
//
// with damping, harden by argmax, recompute centroids, repeat.
//
// It is provided alongside the default hard coordinate-descent solver
// (Run) as a documented research artifact: the experiments in
// EXPERIMENTS.md note that the soft dynamics are fragile — the KL
// gradient grows without bound as a cluster's soft share of a value
// approaches zero (flooring required), simultaneous updates herd
// same-value points, and at the fair soft equilibrium the gradient
// vanishes so argmax hardening falls back to pure distances, undoing
// the fairness the soft solution encodes. The package tests demonstrate
// the last effect. Prefer Run for actual use.
func RunSoft(ds *dataset.Dataset, attr string, cfg Config) (*Result, error) {
	if err := validateSoft(ds, attr, cfg); err != nil {
		return nil, err
	}
	s := ds.SensitiveByName(attr)
	n := ds.N()
	k := cfg.K
	maxIter := cfg.MaxIter
	if maxIter <= 0 {
		maxIter = DefaultMaxIter
	}
	innerIter := 10

	rng := stats.NewRNG(cfg.Seed)
	features := ds.Features
	groups := s.Codes
	nvals := len(s.Values)
	u := ds.Fractions(s)

	centroids := kmeans.PlusPlusCentroids(features, k, rng)
	dists := make([][]float64, n)
	for p := range dists {
		dists[p] = make([]float64, k)
	}
	computeDists := func() {
		for p, x := range features {
			for c, cen := range centroids {
				dists[p][c] = stats.SqDist(x, cen)
			}
		}
	}
	computeDists()

	lambda := cfg.Lambda
	if cfg.AutoLambda {
		mean := 0.0
		for p := range dists {
			mean += stats.Mean(dists[p])
		}
		mean /= float64(n)
		lambda = 0.25 * (mean + 1) * float64(n) / float64(k)
	}

	soft := make([][]float64, n)
	for p := range soft {
		soft[p] = make([]float64, k)
		softmaxNeg(dists[p], soft[p])
	}
	assign := make([]int, n)
	hardAssign(soft, assign)

	res := &Result{Lambda: lambda}
	akj := make([][]float64, k)
	for c := range akj {
		akj[c] = make([]float64, nvals)
	}
	bk := make([]float64, k)
	cost := make([]float64, k)
	next := make([]float64, k)

	for iter := 1; iter <= maxIter; iter++ {
		res.Iterations = iter
		for in := 0; in < innerIter; in++ {
			for c := 0; c < k; c++ {
				bk[c] = 0
				for j := 0; j < nvals; j++ {
					akj[c][j] = 0
				}
			}
			for p := range soft {
				g := groups[p]
				for c := 0; c < k; c++ {
					akj[c][g] += soft[p][c]
					bk[c] += soft[p][c]
				}
			}
			for p := range soft {
				g := groups[p]
				for c := 0; c < k; c++ {
					grad := 0.0
					if bk[c] > 1e-12 {
						pkj := akj[c][g] / bk[c]
						if floor := u[g] / 10; pkj < floor {
							pkj = floor // cap the value-starved attraction
						}
						grad = (1 - u[g]/pkj) / bk[c]
					}
					cost[c] = dists[p][c] + lambda*grad
				}
				softmaxNeg(cost, next)
				for c := 0; c < k; c++ {
					soft[p][c] = 0.5*soft[p][c] + 0.5*next[c] // damping
				}
			}
		}
		changed := hardAssign(soft, assign)
		refreshCentroids(features, assign, centroids, rng)
		computeDists()
		if changed == 0 {
			res.Converged = true
			break
		}
	}

	res.Assign = assign
	res.Centroids = centroids
	res.Sizes = kmeans.Sizes(assign, k)
	res.SSE = kmeans.SSE(features, assign, kmeans.Centroids(features, assign, k))
	res.KLPenalty = hardKL(assign, groups, u, k, nvals)
	res.Objective = res.SSE + lambda*res.KLPenalty
	return res, nil
}

func validateSoft(ds *dataset.Dataset, attr string, cfg Config) error {
	if ds == nil {
		return fmt.Errorf("zgya: nil dataset")
	}
	if err := ds.Validate(); err != nil {
		return fmt.Errorf("zgya: %w", err)
	}
	s := ds.SensitiveByName(attr)
	if s == nil {
		return fmt.Errorf("zgya: no sensitive attribute %q", attr)
	}
	if s.Kind != dataset.Categorical {
		return fmt.Errorf("zgya: attribute %q is not categorical", attr)
	}
	if cfg.K < 1 || cfg.K > ds.N() {
		return fmt.Errorf("zgya: K=%d out of range [1,%d]", cfg.K, ds.N())
	}
	if cfg.Lambda < 0 {
		return fmt.Errorf("zgya: negative lambda %v", cfg.Lambda)
	}
	return nil
}

// softmaxNeg writes softmax(−cost) into out with min-subtraction for
// numerical stability.
func softmaxNeg(cost []float64, out []float64) {
	minC := cost[0]
	for _, v := range cost[1:] {
		if v < minC {
			minC = v
		}
	}
	total := 0.0
	for i, v := range cost {
		e := math.Exp(-(v - minC))
		out[i] = e
		total += e
	}
	for i := range out {
		out[i] /= total
	}
}

// hardAssign sets assign[p] = argmax_k soft[p][k], returning how many
// entries changed.
func hardAssign(soft [][]float64, assign []int) int {
	changed := 0
	for p, sp := range soft {
		best, bestV := 0, sp[0]
		for c := 1; c < len(sp); c++ {
			if sp[c] > bestV {
				best, bestV = c, sp[c]
			}
		}
		if assign[p] != best {
			assign[p] = best
			changed++
		}
	}
	return changed
}

// refreshCentroids recomputes hard means; empty clusters re-seed from a
// random point.
func refreshCentroids(features [][]float64, assign []int, centroids [][]float64, rng *stats.RNG) {
	k := len(centroids)
	counts := make([]int, k)
	for c := range centroids {
		for j := range centroids[c] {
			centroids[c][j] = 0
		}
	}
	for p, x := range features {
		stats.AddTo(centroids[assign[p]], x)
		counts[assign[p]]++
	}
	for c := range centroids {
		if counts[c] > 0 {
			stats.Scale(centroids[c], 1/float64(counts[c]))
		} else {
			copy(centroids[c], features[rng.Intn(len(features))])
		}
	}
}

// hardKL computes Σ_C KL(U‖P_C) over hard assignments with flooring,
// matching the coordinate-descent solver's scoring.
func hardKL(assign, groups []int, u []float64, k, nvals int) float64 {
	counts := make([]int, k)
	valCounts := make([][]int, k)
	for c := range valCounts {
		valCounts[c] = make([]int, nvals)
	}
	for p, c := range assign {
		counts[c]++
		valCounts[c][groups[p]]++
	}
	total := 0.0
	for c := 0; c < k; c++ {
		for j, uj := range u {
			if uj <= 0 {
				continue
			}
			p := epsilon
			if counts[c] > 0 {
				p = float64(valCounts[c][j]) / float64(counts[c])
				if p < epsilon {
					p = epsilon
				}
			}
			total += uj * math.Log(uj/p)
		}
	}
	return total
}
