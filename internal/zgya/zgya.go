// Package zgya implements the fair clustering baseline of Ziko, Granger,
// Yuan and Ben Ayed, "Clustering with Fairness Constraints: A Flexible
// and Scalable Approach" (2019) — the method the FairKM paper calls
// ZGYA and uses as its primary baseline (reference [22], Section 5.3).
//
// ZGYA augments the K-Means objective with a KL-divergence fairness
// penalty for a SINGLE multi-valued sensitive attribute:
//
//	E = Σ_C Σ_{X∈C} ‖X − μ_C‖²  +  λ · Σ_C KL(U ‖ P_C)
//
// where U is the dataset-level proportion vector of the sensitive
// attribute's values and P_C the value proportions inside cluster C.
//
// The published method optimizes a soft-assignment relaxation by bound
// optimization and hardens the result. Soft simultaneous updates are
// delicate to stabilize (the KL gradient explodes as a cluster's soft
// proportion of a value approaches zero), so this implementation
// optimizes the same objective directly over hard assignments with the
// round-robin coordinate descent also used by FairKM: each point moves
// to the cluster that most decreases E, which is monotone and
// convergent by construction. Cluster proportions are floored at a
// small epsilon inside the KL (the standard smoothing, also required by
// the soft solver), and an empty cluster is scored as maximally unfair
// so the penalty cannot be gamed by collapsing clusters.
//
// Because the formulation admits exactly one sensitive attribute, the
// FairKM evaluation invokes ZGYA once per attribute (ZGYA(S)).
package zgya

import (
	"errors"
	"fmt"
	"math"

	"repro/internal/dataset"
	"repro/internal/kmeans"
	"repro/internal/stats"
)

// DefaultMaxIter bounds round-robin iterations when Config.MaxIter is
// zero, mirroring FairKM's experimental setting.
const DefaultMaxIter = 30

// Config parameterizes a ZGYA run.
type Config struct {
	// K is the number of clusters; required, 1 <= K <= n.
	K int
	// Lambda is the fairness trade-off weight. When AutoLambda is set,
	// λ = ¼·(d̄+1)·n/k where d̄ is the mean point-to-initial-centroid
	// squared distance: moving one point changes the KL penalty by
	// O(k/n), so this scaling makes the fairness force comparable to
	// the distance force on individual points. The result is the
	// trade-off profile the FairKM paper reports for ZGYA — a moderate
	// fairness gain bought with a visible clustering-quality loss,
	// collapsing on high-cardinality attributes where the floored KL
	// explodes (see EXPERIMENTS.md).
	Lambda float64
	// AutoLambda selects the heuristic above.
	AutoLambda bool
	// MaxIter bounds round-robin iterations; zero means DefaultMaxIter.
	MaxIter int
	// Seed drives initialization.
	Seed int64
	// Init selects the initial clustering (default k-means++ hard
	// assignment).
	Init kmeans.InitMethod
}

// Result is a completed ZGYA clustering.
type Result struct {
	// Assign is the cluster assignment.
	Assign []int
	// Centroids are the final cluster means.
	Centroids [][]float64
	// Sizes are per-cluster cardinalities.
	Sizes []int
	// SSE is the K-Means component of the objective.
	SSE float64
	// KLPenalty is Σ_C KL(U‖P_C).
	KLPenalty float64
	// Objective is SSE + λ·KLPenalty.
	Objective float64
	// Lambda is the λ actually used.
	Lambda float64
	// Iterations counts round-robin passes executed.
	Iterations int
	// Converged reports whether a full pass completed with no moves.
	Converged bool
}

const epsilon = 1e-6

// Run clusters ds fairly with respect to the single named categorical
// sensitive attribute.
func Run(ds *dataset.Dataset, attr string, cfg Config) (*Result, error) {
	if ds == nil {
		return nil, errors.New("zgya: nil dataset")
	}
	if err := ds.Validate(); err != nil {
		return nil, fmt.Errorf("zgya: %w", err)
	}
	s := ds.SensitiveByName(attr)
	if s == nil {
		return nil, fmt.Errorf("zgya: no sensitive attribute %q", attr)
	}
	if s.Kind != dataset.Categorical {
		return nil, fmt.Errorf("zgya: attribute %q is numeric; ZGYA handles a single categorical attribute", attr)
	}
	n := ds.N()
	if cfg.K < 1 || cfg.K > n {
		return nil, fmt.Errorf("zgya: K=%d out of range [1,%d]", cfg.K, n)
	}
	if cfg.Lambda < 0 {
		return nil, fmt.Errorf("zgya: negative lambda %v", cfg.Lambda)
	}
	maxIter := cfg.MaxIter
	if maxIter <= 0 {
		maxIter = DefaultMaxIter
	}

	st := newSolver(ds, s, cfg)
	res := &Result{Lambda: st.lambda}
	for iter := 1; iter <= maxIter; iter++ {
		res.Iterations = iter
		if st.sweep() == 0 {
			res.Converged = true
			break
		}
	}
	res.Assign = st.assign
	res.Centroids = st.centroids()
	res.Sizes = append([]int(nil), st.counts...)
	res.SSE = st.sseTotal()
	res.KLPenalty = st.klTotal()
	res.Objective = res.SSE + st.lambda*res.KLPenalty
	return res, nil
}

// solver carries the sufficient statistics for coordinate descent on
// the ZGYA objective: per-cluster counts, feature sums, squared norms,
// and per-value counts for the sensitive attribute.
type solver struct {
	features [][]float64
	groups   []int
	u        []float64
	k        int
	n        int
	dim      int
	lambda   float64

	assign    []int
	counts    []int
	sums      [][]float64
	ssqs      []float64
	valCounts [][]int
	klCache   []float64
}

func newSolver(ds *dataset.Dataset, s *dataset.SensitiveAttr, cfg Config) *solver {
	n := ds.N()
	st := &solver{
		features: ds.Features,
		groups:   s.Codes,
		u:        ds.Fractions(s),
		k:        cfg.K,
		n:        n,
		dim:      ds.Dim(),
	}
	rng := stats.NewRNG(cfg.Seed)

	// Initial hard assignment from centroids (k-means++ by default).
	var centroids [][]float64
	switch cfg.Init {
	case kmeans.RandomPoints, kmeans.RandomPartition:
		pts := rng.SampleWithoutReplacement(n, st.k)
		centroids = make([][]float64, st.k)
		for i, p := range pts {
			centroids[i] = stats.Clone(st.features[p])
		}
	default:
		centroids = kmeans.PlusPlusCentroids(st.features, st.k, rng)
	}
	st.assign = make([]int, n)
	meanD := 0.0
	for i, x := range st.features {
		best, bestD, sumD := 0, math.Inf(1), 0.0
		for c, cen := range centroids {
			d := stats.SqDist(x, cen)
			sumD += d
			if d < bestD {
				best, bestD = c, d
			}
		}
		st.assign[i] = best
		meanD += sumD / float64(st.k)
	}
	meanD /= float64(n)

	st.lambda = cfg.Lambda
	if cfg.AutoLambda {
		st.lambda = 0.25 * (meanD + 1) * float64(n) / float64(st.k)
	}

	st.counts = make([]int, st.k)
	st.sums = make([][]float64, st.k)
	for c := range st.sums {
		st.sums[c] = make([]float64, st.dim)
	}
	st.ssqs = make([]float64, st.k)
	st.valCounts = make([][]int, st.k)
	for c := range st.valCounts {
		st.valCounts[c] = make([]int, len(st.u))
	}
	for i := range st.features {
		st.add(i, st.assign[i])
	}
	st.klCache = make([]float64, st.k)
	for c := 0; c < st.k; c++ {
		st.klCache[c] = st.klCluster(c)
	}
	return st
}

func (st *solver) add(i, c int) {
	x := st.features[i]
	st.counts[c]++
	stats.AddTo(st.sums[c], x)
	st.ssqs[c] += stats.Dot(x, x)
	st.valCounts[c][st.groups[i]]++
}

func (st *solver) del(i, c int) {
	x := st.features[i]
	st.counts[c]--
	stats.SubFrom(st.sums[c], x)
	st.ssqs[c] -= stats.Dot(x, x)
	st.valCounts[c][st.groups[i]]--
}

// klCluster returns KL(U ‖ P_c) with proportions floored at epsilon. An
// empty cluster is treated as all-floor (maximally unfair), so the
// penalty cannot be reduced by emptying clusters.
func (st *solver) klCluster(c int) float64 {
	return st.klOf(st.valCounts[c], st.counts[c])
}

func (st *solver) klOf(valCounts []int, count int) float64 {
	total := 0.0
	for j, uj := range st.u {
		if uj <= 0 {
			continue
		}
		p := epsilon
		if count > 0 {
			p = float64(valCounts[j]) / float64(count)
			if p < epsilon {
				p = epsilon
			}
		}
		total += uj * math.Log(uj/p)
	}
	return total
}

// klWithDelta returns what KL(U‖P_c) becomes if point i is added
// (sign=+1) or removed (sign=-1), without mutating state.
func (st *solver) klWithDelta(c, i, sign int) float64 {
	count := st.counts[c] + sign
	if count == 0 {
		return st.klOf(nil, 0)
	}
	g := st.groups[i]
	inv := 1.0 / float64(count)
	total := 0.0
	for j, uj := range st.u {
		if uj <= 0 {
			continue
		}
		cnt := float64(st.valCounts[c][j])
		if j == g {
			cnt += float64(sign)
		}
		p := cnt * inv
		if p < epsilon {
			p = epsilon
		}
		total += uj * math.Log(uj/p)
	}
	return total
}

func (st *solver) sseCluster(c int) float64 {
	m := st.counts[c]
	if m == 0 {
		return 0
	}
	s := st.ssqs[c] - stats.Dot(st.sums[c], st.sums[c])/float64(m)
	if s < 0 {
		s = 0
	}
	return s
}

func (st *solver) sseTotal() float64 {
	total := 0.0
	for c := 0; c < st.k; c++ {
		total += st.sseCluster(c)
	}
	return total
}

func (st *solver) klTotal() float64 {
	total := 0.0
	for c := 0; c < st.k; c++ {
		total += st.klCache[c]
	}
	return total
}

func (st *solver) sweep() int {
	moves := 0
	for i := 0; i < st.n; i++ {
		from := st.assign[i]
		to := st.bestMove(i, from)
		if to != from {
			st.del(i, from)
			st.add(i, to)
			st.assign[i] = to
			st.klCache[from] = st.klCluster(from)
			st.klCache[to] = st.klCluster(to)
			moves++
		}
	}
	return moves
}

func (st *solver) bestMove(i, from int) int {
	x := st.features[i]
	var sseOut float64
	if m := st.counts[from]; m > 1 {
		sseOut = -float64(m) / float64(m-1) * sqDistToMean(x, st.sums[from], m)
	}
	klFromAfter := st.klWithDelta(from, i, -1)

	best := from
	bestDelta := 0.0
	for c := 0; c < st.k; c++ {
		if c == from {
			continue
		}
		dSSE := sseOut
		if m := st.counts[c]; m > 0 {
			dSSE += float64(m) / float64(m+1) * sqDistToMean(x, st.sums[c], m)
		}
		dKL := (klFromAfter - st.klCache[from]) + (st.klWithDelta(c, i, +1) - st.klCache[c])
		if delta := dSSE + st.lambda*dKL; delta < bestDelta {
			bestDelta = delta
			best = c
		}
	}
	return best
}

func sqDistToMean(x, sum []float64, m int) float64 {
	inv := 1.0 / float64(m)
	s := 0.0
	for j := range x {
		d := x[j] - sum[j]*inv
		s += d * d
	}
	return s
}

func (st *solver) centroids() [][]float64 {
	out := make([][]float64, st.k)
	for c := 0; c < st.k; c++ {
		out[c] = make([]float64, st.dim)
		if st.counts[c] > 0 {
			inv := 1.0 / float64(st.counts[c])
			for j := 0; j < st.dim; j++ {
				out[c][j] = st.sums[c][j] * inv
			}
		}
	}
	return out
}
