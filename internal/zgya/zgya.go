// Package zgya implements the fair clustering baseline of Ziko, Granger,
// Yuan and Ben Ayed, "Clustering with Fairness Constraints: A Flexible
// and Scalable Approach" (2019) — the method the FairKM paper calls
// ZGYA and uses as its primary baseline (reference [22], Section 5.3).
//
// ZGYA augments the K-Means objective with a KL-divergence fairness
// penalty for a SINGLE multi-valued sensitive attribute:
//
//	E = Σ_C Σ_{X∈C} ‖X − μ_C‖²  +  λ · Σ_C KL(U ‖ P_C)
//
// where U is the dataset-level proportion vector of the sensitive
// attribute's values and P_C the value proportions inside cluster C.
//
// The published method optimizes a soft-assignment relaxation by bound
// optimization and hardens the result. Soft simultaneous updates are
// delicate to stabilize (the KL gradient explodes as a cluster's soft
// proportion of a value approaches zero), so this implementation
// optimizes the same objective directly over hard assignments with the
// round-robin coordinate descent also used by FairKM: each point moves
// to the cluster that most decreases E, which is monotone and
// convergent by construction. Cluster proportions are floored at a
// small epsilon inside the KL (the standard smoothing, also required by
// the soft solver), and an empty cluster is scored as maximally unfair
// so the penalty cannot be gamed by collapsing clusters.
//
// Because the formulation admits exactly one sensitive attribute, the
// FairKM evaluation invokes ZGYA once per attribute (ZGYA(S)).
package zgya

import (
	"errors"
	"fmt"
	"math"
	"runtime"
	"time"

	"repro/internal/dataset"
	"repro/internal/engine"
	"repro/internal/kmeans"
	"repro/internal/stats"
)

// DefaultMaxIter bounds round-robin iterations when Config.MaxIter is
// zero, mirroring FairKM's experimental setting.
const DefaultMaxIter = 30

// Config parameterizes a ZGYA run.
type Config struct {
	// K is the number of clusters; required, 1 <= K <= n.
	K int
	// Lambda is the fairness trade-off weight. When AutoLambda is set,
	// λ = ¼·(d̄+1)·n/k where d̄ is the mean point-to-initial-centroid
	// squared distance: moving one point changes the KL penalty by
	// O(k/n), so this scaling makes the fairness force comparable to
	// the distance force on individual points. The result is the
	// trade-off profile the FairKM paper reports for ZGYA — a moderate
	// fairness gain bought with a visible clustering-quality loss,
	// collapsing on high-cardinality attributes where the floored KL
	// explodes (see EXPERIMENTS.md).
	Lambda float64
	// AutoLambda selects the heuristic above.
	AutoLambda bool
	// MaxIter bounds round-robin iterations; zero means DefaultMaxIter.
	MaxIter int
	// Tol, when positive, additionally stops the run once the
	// objective improves by less than Tol between iterations (the
	// engine's shared policy, identical for FairKM and K-Means). The
	// zero default keeps exact zero-moves convergence.
	Tol float64
	// Budget, when positive, stops the run at the first iteration
	// boundary after the wall-clock budget is spent.
	Budget time.Duration
	// Seed drives initialization.
	Seed int64
	// Init selects the initial clustering (default k-means++ hard
	// assignment).
	Init kmeans.InitMethod
	// MiniBatch, when m > 0, scores the SSE term against cluster
	// prototypes frozen once per batch of m assignment decisions (the
	// same Section 6.1 heuristic FairKM supports) instead of live
	// statistics. Under a parallel sweep it instead sets the
	// frozen-statistics batch size.
	MiniBatch int
	// Parallelism selects the sweep execution mode, with exactly
	// FairKM's semantics: 0 (the default) is the strictly sequential
	// round-robin sweep; a positive value scores candidate moves with
	// that many workers against per-batch frozen statistics, applying
	// re-validated moves sequentially; any negative value uses
	// GOMAXPROCS workers. Results are deterministic and bit-identical
	// for every Parallelism >= 1.
	Parallelism int
	// Observer, when non-nil, receives per-iteration statistics
	// (moves, objective, elapsed wall-clock).
	Observer engine.Observer
}

// Result is a completed ZGYA clustering.
type Result struct {
	// Assign is the cluster assignment.
	Assign []int
	// Centroids are the final cluster means.
	Centroids [][]float64
	// Sizes are per-cluster cardinalities.
	Sizes []int
	// SSE is the K-Means component of the objective.
	SSE float64
	// KLPenalty is Σ_C KL(U‖P_C).
	KLPenalty float64
	// Objective is SSE + λ·KLPenalty.
	Objective float64
	// Lambda is the λ actually used.
	Lambda float64
	// Iterations counts round-robin passes executed.
	Iterations int
	// Converged reports whether a full pass completed with no moves.
	Converged bool
}

const epsilon = 1e-6

// Run clusters ds fairly with respect to the single named categorical
// sensitive attribute.
func Run(ds *dataset.Dataset, attr string, cfg Config) (*Result, error) {
	if ds == nil {
		return nil, errors.New("zgya: nil dataset")
	}
	if err := ds.Validate(); err != nil {
		return nil, fmt.Errorf("zgya: %w", err)
	}
	s := ds.SensitiveByName(attr)
	if s == nil {
		return nil, fmt.Errorf("zgya: no sensitive attribute %q", attr)
	}
	if s.Kind != dataset.Categorical {
		return nil, fmt.Errorf("zgya: attribute %q is numeric; ZGYA handles a single categorical attribute", attr)
	}
	n := ds.N()
	if cfg.K < 1 || cfg.K > n {
		return nil, fmt.Errorf("zgya: K=%d out of range [1,%d]", cfg.K, n)
	}
	if cfg.Lambda < 0 {
		return nil, fmt.Errorf("zgya: negative lambda %v", cfg.Lambda)
	}
	if cfg.Tol < 0 {
		return nil, fmt.Errorf("zgya: negative tolerance %v", cfg.Tol)
	}
	if cfg.MiniBatch < 0 {
		return nil, fmt.Errorf("zgya: negative mini-batch size %d", cfg.MiniBatch)
	}
	maxIter := cfg.MaxIter
	if maxIter <= 0 {
		maxIter = DefaultMaxIter
	}
	workers := cfg.Parallelism
	if workers < 0 {
		workers = runtime.GOMAXPROCS(0)
	}

	st := newSolver(ds, s, cfg)

	var sw engine.Sweeper
	switch {
	case workers >= 1:
		sw = engine.NewFrozenSweep(st, engine.FrozenOpts{
			Workers:    workers,
			Batch:      cfg.MiniBatch,
			Revalidate: true,
		})
	case cfg.MiniBatch > 0:
		sw = engine.NewMiniBatchSweep(st, cfg.MiniBatch)
	default:
		sw = engine.NewFullSweep(st)
	}

	er := engine.Solve(st, sw, engine.Config{
		MaxIter:  maxIter,
		Tol:      cfg.Tol,
		Budget:   cfg.Budget,
		Observer: cfg.Observer,
	})

	res := &Result{Lambda: st.lambda}
	res.Iterations = er.Iterations
	res.Converged = er.Converged
	res.Assign = st.assign
	res.Centroids = st.centroids()
	res.Sizes = append([]int(nil), st.counts...)
	res.SSE = st.sseTotal()
	res.KLPenalty = st.klTotal()
	res.Objective = res.SSE + st.lambda*res.KLPenalty
	return res, nil
}

// solver carries the sufficient statistics for coordinate descent on
// the ZGYA objective: per-cluster counts, feature sums, squared norms,
// and per-value counts for the sensitive attribute.
type solver struct {
	features [][]float64
	groups   []int
	u        []float64
	k        int
	n        int
	dim      int
	lambda   float64

	assign    []int
	counts    []int
	sums      [][]float64
	ssqs      []float64
	valCounts [][]int
	klCache   []float64

	// batchProtos are the frozen prototypes mini-batch sweeps score
	// the SSE term against, re-materialized by RefreshBatchView.
	batchProtos [][]float64
}

func newSolver(ds *dataset.Dataset, s *dataset.SensitiveAttr, cfg Config) *solver {
	n := ds.N()
	st := &solver{
		features: ds.Features,
		groups:   s.Codes,
		u:        ds.Fractions(s),
		k:        cfg.K,
		n:        n,
		dim:      ds.Dim(),
	}
	rng := stats.NewRNG(cfg.Seed)

	// Initial hard assignment from centroids (k-means++ by default).
	var centroids [][]float64
	switch cfg.Init {
	case kmeans.RandomPoints, kmeans.RandomPartition:
		pts := rng.SampleWithoutReplacement(n, st.k)
		centroids = make([][]float64, st.k)
		for i, p := range pts {
			centroids[i] = stats.Clone(st.features[p])
		}
	default:
		centroids = kmeans.PlusPlusCentroids(st.features, st.k, rng)
	}
	st.assign = make([]int, n)
	meanD := 0.0
	for i, x := range st.features {
		best, bestD, sumD := 0, math.Inf(1), 0.0
		for c, cen := range centroids {
			d := stats.SqDist(x, cen)
			sumD += d
			if d < bestD {
				best, bestD = c, d
			}
		}
		st.assign[i] = best
		meanD += sumD / float64(st.k)
	}
	meanD /= float64(n)

	st.lambda = cfg.Lambda
	if cfg.AutoLambda {
		st.lambda = 0.25 * (meanD + 1) * float64(n) / float64(st.k)
	}

	st.counts = make([]int, st.k)
	st.sums = make([][]float64, st.k)
	for c := range st.sums {
		st.sums[c] = make([]float64, st.dim)
	}
	st.ssqs = make([]float64, st.k)
	st.valCounts = make([][]int, st.k)
	for c := range st.valCounts {
		st.valCounts[c] = make([]int, len(st.u))
	}
	for i := range st.features {
		st.add(i, st.assign[i])
	}
	st.klCache = make([]float64, st.k)
	for c := 0; c < st.k; c++ {
		st.klCache[c] = st.klCluster(c)
	}
	return st
}

func (st *solver) add(i, c int) {
	x := st.features[i]
	st.counts[c]++
	stats.AddTo(st.sums[c], x)
	st.ssqs[c] += stats.Dot(x, x)
	st.valCounts[c][st.groups[i]]++
}

func (st *solver) del(i, c int) {
	x := st.features[i]
	st.counts[c]--
	stats.SubFrom(st.sums[c], x)
	st.ssqs[c] -= stats.Dot(x, x)
	st.valCounts[c][st.groups[i]]--
}

// klCluster returns KL(U ‖ P_c) with proportions floored at epsilon. An
// empty cluster is treated as all-floor (maximally unfair), so the
// penalty cannot be reduced by emptying clusters.
func (st *solver) klCluster(c int) float64 {
	return st.klOf(st.valCounts[c], st.counts[c])
}

func (st *solver) klOf(valCounts []int, count int) float64 {
	total := 0.0
	for j, uj := range st.u {
		if uj <= 0 {
			continue
		}
		p := epsilon
		if count > 0 {
			p = float64(valCounts[j]) / float64(count)
			if p < epsilon {
				p = epsilon
			}
		}
		total += uj * math.Log(uj/p)
	}
	return total
}

// klWithDelta returns what KL(U‖P_c) becomes if point i is added
// (sign=+1) or removed (sign=-1), without mutating state.
func (st *solver) klWithDelta(c, i, sign int) float64 {
	count := st.counts[c] + sign
	if count == 0 {
		return st.klOf(nil, 0)
	}
	g := st.groups[i]
	inv := 1.0 / float64(count)
	total := 0.0
	for j, uj := range st.u {
		if uj <= 0 {
			continue
		}
		cnt := float64(st.valCounts[c][j])
		if j == g {
			cnt += float64(sign)
		}
		p := cnt * inv
		if p < epsilon {
			p = epsilon
		}
		total += uj * math.Log(uj/p)
	}
	return total
}

func (st *solver) sseCluster(c int) float64 {
	m := st.counts[c]
	if m == 0 {
		return 0
	}
	s := st.ssqs[c] - stats.Dot(st.sums[c], st.sums[c])/float64(m)
	if s < 0 {
		s = 0
	}
	return s
}

func (st *solver) sseTotal() float64 {
	total := 0.0
	for c := 0; c < st.k; c++ {
		total += st.sseCluster(c)
	}
	return total
}

func (st *solver) klTotal() float64 {
	total := 0.0
	for c := 0; c < st.k; c++ {
		total += st.klCache[c]
	}
	return total
}

// ---- engine.Objective ----

// N returns the number of rows.
func (st *solver) N() int { return st.n }

// K returns the number of clusters.
func (st *solver) K() int { return st.k }

// Current returns row i's cluster.
func (st *solver) Current(i int) int { return st.assign[i] }

// BestMove scores row i against live statistics.
func (st *solver) BestMove(i, from int) int { return st.bestMoveAgainst(i, from, nil) }

// Delta returns the exact objective change of moving row i, against
// live statistics.
func (st *solver) Delta(i, from, to int) float64 {
	x := st.features[i]
	dSSE := 0.0
	if m := st.counts[from]; m > 1 {
		dSSE -= float64(m) / float64(m-1) * sqDistToMean(x, st.sums[from], m)
	}
	if m := st.counts[to]; m > 0 {
		dSSE += float64(m) / float64(m+1) * sqDistToMean(x, st.sums[to], m)
	}
	dKL := (st.klWithDelta(from, i, -1) - st.klCache[from]) +
		(st.klWithDelta(to, i, +1) - st.klCache[to])
	return dSSE + st.lambda*dKL
}

// Move applies the move, refreshing the KL cache of both clusters.
func (st *solver) Move(i, from, to int) {
	st.del(i, from)
	st.add(i, to)
	st.assign[i] = to
	st.klCache[from] = st.klCluster(from)
	st.klCache[to] = st.klCluster(to)
}

// Value returns the current objective E = SSE + λ·Σ_C KL(U‖P_C).
func (st *solver) Value() float64 { return st.sseTotal() + st.lambda*st.klTotal() }

// ---- engine.BatchObjective (mini-batch heuristic) ----

// RefreshBatchView re-materializes the frozen prototypes the
// mini-batch sweep scores the SSE term against; the KL statistics stay
// live.
func (st *solver) RefreshBatchView() { st.batchProtos = st.centroids() }

// BestMoveBatch scores row i with the SSE term against the frozen
// prototypes.
func (st *solver) BestMoveBatch(i, from int) int {
	return st.bestMoveAgainst(i, from, st.batchProtos)
}

// ---- engine.SnapshotObjective (frozen-statistics parallel sweeps) ----

// solverSnap is a reusable frozen copy of the mutable statistics.
type solverSnap struct {
	live   *solver
	frozen *solver
}

// NewSnapshot allocates the snapshot buffer.
func (st *solver) NewSnapshot() engine.Snapshot {
	fz := &solver{
		counts: make([]int, st.k),
		sums:   make([][]float64, st.k),
		ssqs:   make([]float64, st.k),
	}
	for c := range fz.sums {
		fz.sums[c] = make([]float64, st.dim)
	}
	fz.valCounts = make([][]int, st.k)
	for c := range fz.valCounts {
		fz.valCounts[c] = make([]int, len(st.u))
	}
	fz.klCache = make([]float64, st.k)
	return &solverSnap{live: st, frozen: fz}
}

// Freeze copies the live statistics into the buffer and shares the
// immutable ones.
func (s *solverSnap) Freeze() {
	st, fz := s.live, s.frozen
	fz.features = st.features
	fz.groups = st.groups
	fz.u = st.u
	fz.k = st.k
	fz.n = st.n
	fz.dim = st.dim
	fz.lambda = st.lambda
	copy(fz.counts, st.counts)
	for c := range st.sums {
		copy(fz.sums[c], st.sums[c])
	}
	copy(fz.ssqs, st.ssqs)
	for c := range st.valCounts {
		copy(fz.valCounts[c], st.valCounts[c])
	}
	copy(fz.klCache, st.klCache)
}

// BestMove scores row i against the frozen statistics; safe for
// concurrent calls because the frozen solver is read-only between
// freezes.
func (s *solverSnap) BestMove(i, from int) int { return s.frozen.bestMoveAgainst(i, from, nil) }

// bestMoveAgainst is the single scoring kernel behind every sweep
// strategy: with frozen == nil the SSE term uses the live sufficient
// statistics; with a frozen prototype matrix it is the classic
// nearest-centroid comparison against those prototypes, while the KL
// term always stays live.
func (st *solver) bestMoveAgainst(i, from int, frozen [][]float64) int {
	x := st.features[i]
	klFromAfter := st.klWithDelta(from, i, -1)

	best := from
	bestDelta := 0.0
	if frozen == nil {
		var sseOut float64
		if m := st.counts[from]; m > 1 {
			sseOut = -float64(m) / float64(m-1) * sqDistToMean(x, st.sums[from], m)
		}
		for c := 0; c < st.k; c++ {
			if c == from {
				continue
			}
			dSSE := sseOut
			if m := st.counts[c]; m > 0 {
				dSSE += float64(m) / float64(m+1) * sqDistToMean(x, st.sums[c], m)
			}
			dKL := (klFromAfter - st.klCache[from]) + (st.klWithDelta(c, i, +1) - st.klCache[c])
			if delta := dSSE + st.lambda*dKL; delta < bestDelta {
				bestDelta = delta
				best = c
			}
		}
		return best
	}
	dFrom := stats.SqDist(x, frozen[from])
	for c := 0; c < st.k; c++ {
		if c == from {
			continue
		}
		dSSE := stats.SqDist(x, frozen[c]) - dFrom
		dKL := (klFromAfter - st.klCache[from]) + (st.klWithDelta(c, i, +1) - st.klCache[c])
		if delta := dSSE + st.lambda*dKL; delta < bestDelta {
			bestDelta = delta
			best = c
		}
	}
	return best
}

func sqDistToMean(x, sum []float64, m int) float64 {
	inv := 1.0 / float64(m)
	s := 0.0
	for j := range x {
		d := x[j] - sum[j]*inv
		s += d * d
	}
	return s
}

func (st *solver) centroids() [][]float64 {
	out := make([][]float64, st.k)
	for c := 0; c < st.k; c++ {
		out[c] = make([]float64, st.dim)
		if st.counts[c] > 0 {
			inv := 1.0 / float64(st.counts[c])
			for j := 0; j < st.dim; j++ {
				out[c][j] = st.sums[c][j] * inv
			}
		}
	}
	return out
}
