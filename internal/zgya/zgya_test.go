package zgya

import (
	"testing"

	"repro/internal/dataset"
	"repro/internal/kmeans"
	"repro/internal/metrics"
	"repro/internal/stats"
)

// correlatedDataset builds two feature blobs where the sensitive value
// correlates strongly with blob membership, so S-blind clustering is
// maximally unfair.
func correlatedDataset(t *testing.T, n int) *dataset.Dataset {
	t.Helper()
	b := dataset.NewBuilder("x", "y")
	b.AddCategoricalSensitive("g")
	rng := stats.NewRNG(5)
	for i := 0; i < n/2; i++ {
		g := "a"
		if i%5 == 0 {
			g = "b"
		}
		b.Row([]float64{rng.Gaussian(0, 0.4), rng.Gaussian(0, 0.4)}, []string{g}, nil)
	}
	for i := 0; i < n/2; i++ {
		g := "b"
		if i%5 == 0 {
			g = "a"
		}
		b.Row([]float64{rng.Gaussian(4, 0.4), rng.Gaussian(4, 0.4)}, []string{g}, nil)
	}
	ds, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	return ds
}

func TestImprovesFairnessOverKMeans(t *testing.T) {
	ds := correlatedDataset(t, 120)
	km, err := kmeans.Run(ds.Features, kmeans.Config{K: 2, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	zg, err := Run(ds, "g", Config{K: 2, Lambda: 2000, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	g := ds.SensitiveByName("g")
	fKM := metrics.Fairness(ds, g, km.Assign, 2)
	fZG := metrics.Fairness(ds, g, zg.Assign, 2)
	if fZG.AE >= fKM.AE {
		t.Errorf("ZGYA AE %v not better than K-Means %v", fZG.AE, fKM.AE)
	}
	if fZG.AW >= fKM.AW {
		t.Errorf("ZGYA AW %v not better than K-Means %v", fZG.AW, fKM.AW)
	}
}

func TestLambdaZeroActsLikeKMeans(t *testing.T) {
	ds := correlatedDataset(t, 80)
	zg, err := Run(ds, "g", Config{K: 2, Lambda: 0, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	// With λ=0 the soft assignment is a pure softmax over distances and
	// hardening recovers nearest-centroid clusters: the two blobs.
	for i := 1; i < 40; i++ {
		if zg.Assign[i] != zg.Assign[0] {
			t.Fatalf("blob 1 split at %d", i)
		}
	}
	for i := 41; i < 80; i++ {
		if zg.Assign[i] != zg.Assign[40] {
			t.Fatalf("blob 2 split at %d", i)
		}
	}
	if zg.Assign[0] == zg.Assign[40] {
		t.Error("blobs merged")
	}
}

func TestKLPenaltyDecreasesWithLambda(t *testing.T) {
	ds := correlatedDataset(t, 100)
	weak, err := Run(ds, "g", Config{K: 2, Lambda: 0, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	strong, err := Run(ds, "g", Config{K: 2, Lambda: 2000, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	if strong.KLPenalty >= weak.KLPenalty {
		t.Errorf("KL penalty did not decrease: strong %v weak %v", strong.KLPenalty, weak.KLPenalty)
	}
}

func TestErrors(t *testing.T) {
	ds := correlatedDataset(t, 20)
	if _, err := Run(nil, "g", Config{K: 2}); err == nil {
		t.Error("nil dataset accepted")
	}
	if _, err := Run(ds, "nope", Config{K: 2}); err == nil {
		t.Error("unknown attribute accepted")
	}
	if _, err := Run(ds, "g", Config{K: 0}); err == nil {
		t.Error("K=0 accepted")
	}
	if _, err := Run(ds, "g", Config{K: 21}); err == nil {
		t.Error("K>n accepted")
	}
	if _, err := Run(ds, "g", Config{K: 2, Lambda: -1}); err == nil {
		t.Error("negative lambda accepted")
	}
	// Numeric attribute must be rejected.
	b := dataset.NewBuilder("x")
	b.AddNumericSensitive("age")
	b.Row([]float64{1}, nil, []float64{30})
	b.Row([]float64{2}, nil, []float64{40})
	dsNum, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Run(dsNum, "age", Config{K: 2}); err == nil {
		t.Error("numeric attribute accepted")
	}
}

func TestDeterminism(t *testing.T) {
	ds := correlatedDataset(t, 60)
	a, err := Run(ds, "g", Config{K: 3, AutoLambda: true, Seed: 11})
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(ds, "g", Config{K: 3, AutoLambda: true, Seed: 11})
	if err != nil {
		t.Fatal(err)
	}
	for i := range a.Assign {
		if a.Assign[i] != b.Assign[i] {
			t.Fatalf("assignment %d differs", i)
		}
	}
	if a.Objective != b.Objective {
		t.Errorf("objectives differ")
	}
}

func TestSizesAndObjectiveConsistent(t *testing.T) {
	ds := correlatedDataset(t, 60)
	res, err := Run(ds, "g", Config{K: 3, AutoLambda: true, Seed: 13})
	if err != nil {
		t.Fatal(err)
	}
	total := 0
	for _, s := range res.Sizes {
		total += s
	}
	if total != 60 {
		t.Errorf("sizes sum to %d", total)
	}
	if res.Objective < res.SSE {
		t.Errorf("objective %v < SSE %v with non-negative penalty", res.Objective, res.SSE)
	}
	if res.KLPenalty < 0 {
		t.Errorf("negative KL penalty %v", res.KLPenalty)
	}
}
