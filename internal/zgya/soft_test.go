package zgya

import (
	"testing"

	"repro/internal/metrics"
)

func TestSoftSolverRunsAndValidates(t *testing.T) {
	ds := correlatedDataset(t, 80)
	res, err := RunSoft(ds, "g", Config{K: 2, AutoLambda: true, Seed: 1})
	if err != nil {
		t.Fatalf("RunSoft: %v", err)
	}
	if len(res.Assign) != 80 {
		t.Fatalf("assignment length %d", len(res.Assign))
	}
	total := 0
	for _, s := range res.Sizes {
		total += s
	}
	if total != 80 {
		t.Errorf("sizes sum to %d", total)
	}
	if _, err := RunSoft(nil, "g", Config{K: 2}); err == nil {
		t.Error("nil dataset accepted")
	}
	if _, err := RunSoft(ds, "nope", Config{K: 2}); err == nil {
		t.Error("unknown attribute accepted")
	}
	if _, err := RunSoft(ds, "g", Config{K: 0}); err == nil {
		t.Error("K=0 accepted")
	}
}

// TestSoftHardeningGapDocumented captures WHY the package defaults to
// coordinate descent: on sensitive-correlated blob data the hard solver
// achieves at-least-as-good fairness as the soft-then-argmax pipeline
// at the same λ, because the soft equilibrium's fairness information is
// lost in the argmax (gradients vanish at the fair fixed point and
// distances take over).
func TestSoftHardeningGapDocumented(t *testing.T) {
	ds := correlatedDataset(t, 120)
	g := ds.SensitiveByName("g")
	hard, err := Run(ds, "g", Config{K: 2, Lambda: 2000, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	soft, err := RunSoft(ds, "g", Config{K: 2, Lambda: 2000, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	fHard := metrics.Fairness(ds, g, hard.Assign, 2)
	fSoft := metrics.Fairness(ds, g, soft.Assign, 2)
	if fHard.AE > fSoft.AE+1e-9 {
		t.Errorf("hard solver AE %v worse than soft %v — the documented gap inverted; revisit EXPERIMENTS.md",
			fHard.AE, fSoft.AE)
	}
	// The hard solver must also never do worse on its own objective.
	if hard.Objective > soft.Objective+1e-6*(1+soft.Objective) {
		t.Errorf("hard objective %v worse than soft %v", hard.Objective, soft.Objective)
	}
}

func TestSoftDeterminism(t *testing.T) {
	ds := correlatedDataset(t, 60)
	a, err := RunSoft(ds, "g", Config{K: 3, AutoLambda: true, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	b, err := RunSoft(ds, "g", Config{K: 3, AutoLambda: true, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	for i := range a.Assign {
		if a.Assign[i] != b.Assign[i] {
			t.Fatalf("assignment %d differs", i)
		}
	}
}
