// Package goldencase enumerates the frozen solver configurations whose
// trajectories are pinned by testdata/golden.json. The goldens were
// recorded against the pre-engine solvers (the hand-rolled loops of
// commit 9c464aa) on the internal/testfix fixtures; the golden test
// re-runs every case against the current solvers and requires
// bit-identical assignments and objectives. This is the contract that
// the internal/engine port — and any future orchestration change — is
// a pure refactor of the optimization trajectory.
package goldencase

import (
	"math"

	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/kmeans"
	"repro/internal/testfix"
	"repro/internal/zgya"
)

// Record is one pinned trajectory. Objective and Lambda are stored as
// IEEE-754 bit patterns so the JSON round-trip is exact.
type Record struct {
	Name       string `json:"name"`
	Assign     []int  `json:"assign"`
	Objective  uint64 `json:"objective_bits"`
	Lambda     uint64 `json:"lambda_bits,omitempty"`
	Iterations int    `json:"iterations"`
	Converged  bool   `json:"converged"`
	TotalMoves int    `json:"total_moves,omitempty"`
}

// Fixtures returns the three frozen datasets, keyed by the names used
// in case labels.
func Fixtures() map[string]*dataset.Dataset {
	return map[string]*dataset.Dataset{
		"synthA": testfix.Synth(21, 400, 6, 3, 0),
		"synthB": testfix.Synth(22, 300, 4, 2, 2),
		"adult":  testfix.Adult(11, 1500),
	}
}

// All runs every golden case against the current solvers and returns
// the records in a fixed order.
func All() ([]Record, error) {
	fx := Fixtures()
	var out []Record

	fairKM := func(name, ds string, cfg core.Config) error {
		res, err := core.Run(fx[ds], cfg)
		if err != nil {
			return err
		}
		out = append(out, Record{
			Name:       "fairkm/" + ds + "/" + name,
			Assign:     res.Assign,
			Objective:  math.Float64bits(res.Objective),
			Lambda:     math.Float64bits(res.Lambda),
			Iterations: res.Iterations,
			Converged:  res.Converged,
			TotalMoves: res.TotalMoves,
		})
		return nil
	}
	kMeans := func(name, ds string, cfg kmeans.Config) error {
		res, err := kmeans.Run(fx[ds].Features, cfg)
		if err != nil {
			return err
		}
		out = append(out, Record{
			Name:       "kmeans/" + ds + "/" + name,
			Assign:     res.Assign,
			Objective:  math.Float64bits(res.Objective),
			Iterations: res.Iterations,
			Converged:  res.Converged,
		})
		return nil
	}
	zgyaRun := func(name, ds, attr string, cfg zgya.Config) error {
		if attr == "" {
			attr = fx[ds].Sensitive[0].Name
		}
		res, err := zgya.Run(fx[ds], attr, cfg)
		if err != nil {
			return err
		}
		out = append(out, Record{
			Name:       "zgya/" + ds + "/" + name,
			Assign:     res.Assign,
			Objective:  math.Float64bits(res.Objective),
			Lambda:     math.Float64bits(res.Lambda),
			Iterations: res.Iterations,
			Converged:  res.Converged,
		})
		return nil
	}

	steps := []func() error{
		// FairKM: kernel corners, every sweep strategy, every initializer.
		func() error { return fairKM("seq", "synthA", core.Config{K: 7, AutoLambda: true, Seed: 3}) },
		func() error {
			return fairKM("skew", "synthA", core.Config{K: 7, AutoLambda: true, Seed: 3, SkewCompensation: true})
		},
		func() error {
			return fairKM("weights", "synthA", core.Config{K: 5, Lambda: 40, Seed: 9, Weights: map[string]float64{"cat0": 2.5}})
		},
		func() error {
			return fairKM("minibatch", "synthA", core.Config{K: 6, AutoLambda: true, Seed: 2, MiniBatch: 100})
		},
		func() error {
			return fairKM("par1", "synthA", core.Config{K: 7, AutoLambda: true, Seed: 3, Parallelism: 1})
		},
		func() error {
			return fairKM("par4-minibatch", "synthA", core.Config{K: 7, AutoLambda: true, Seed: 3, Parallelism: 4, MiniBatch: 128})
		},
		func() error {
			return fairKM("init-partition", "synthA", core.Config{K: 7, AutoLambda: true, Seed: 3, Init: kmeans.RandomPartition})
		},
		func() error {
			return fairKM("init-points", "synthA", core.Config{K: 7, AutoLambda: true, Seed: 3, Init: kmeans.RandomPoints})
		},
		func() error { return fairKM("seq", "synthB", core.Config{K: 5, AutoLambda: true, Seed: 2}) },
		func() error {
			return fairKM("par2", "synthB", core.Config{K: 5, AutoLambda: true, Seed: 2, Parallelism: 2})
		},
		func() error { return fairKM("seq", "adult", core.Config{K: 7, AutoLambda: true, Seed: 3}) },
		func() error {
			return fairKM("par2", "adult", core.Config{K: 7, AutoLambda: true, Seed: 3, Parallelism: 2})
		},
		func() error {
			return fairKM("par4", "adult", core.Config{K: 7, AutoLambda: true, Seed: 3, Parallelism: 4})
		},

		// K-Means: every initializer, Tol stop, MaxIter stop.
		func() error { return kMeans("kmpp", "synthA", kmeans.Config{K: 6, Seed: 5}) },
		func() error {
			return kMeans("partition", "synthA", kmeans.Config{K: 6, Seed: 5, Init: kmeans.RandomPartition})
		},
		func() error {
			return kMeans("points", "synthA", kmeans.Config{K: 6, Seed: 5, Init: kmeans.RandomPoints})
		},
		func() error { return kMeans("tol", "synthA", kmeans.Config{K: 6, Seed: 5, Tol: 1e-4}) },
		func() error { return kMeans("kmpp", "adult", kmeans.Config{K: 8, Seed: 2}) },
		func() error { return kMeans("maxiter", "adult", kmeans.Config{K: 8, Seed: 2, MaxIter: 5}) },

		// ZGYA: auto-λ heuristic, fixed λ, both centroid initializers.
		func() error { return zgyaRun("auto", "synthA", "cat0", zgya.Config{K: 5, AutoLambda: true, Seed: 4}) },
		func() error {
			return zgyaRun("points", "synthA", "cat0", zgya.Config{K: 5, Lambda: 10, Seed: 4, Init: kmeans.RandomPoints})
		},
		func() error { return zgyaRun("auto", "adult", "", zgya.Config{K: 6, AutoLambda: true, Seed: 2}) },
		func() error {
			return zgyaRun("partition", "adult", "", zgya.Config{K: 6, AutoLambda: true, Seed: 2, Init: kmeans.RandomPartition})
		},
	}
	for _, step := range steps {
		if err := step(); err != nil {
			return nil, err
		}
	}
	return out, nil
}
