package goldencase

import (
	"encoding/json"
	"math"
	"os"
	"testing"
)

// TestGoldenTrajectories re-runs every pinned configuration and
// requires bit-identical results to the recordings made against the
// pre-engine solvers: same assignment for every row, same IEEE-754
// objective and λ bits, same iteration count and convergence flag.
// Any divergence means the descent engine changed the optimization
// trajectory — which is a behaviour change, not a refactor.
func TestGoldenTrajectories(t *testing.T) {
	if testing.Short() {
		t.Skip("golden trajectories run the full solver matrix; skipped with -short")
	}
	buf, err := os.ReadFile("testdata/golden.json")
	if err != nil {
		t.Fatalf("reading goldens: %v", err)
	}
	var want []Record
	if err := json.Unmarshal(buf, &want); err != nil {
		t.Fatalf("parsing goldens: %v", err)
	}
	got, err := All()
	if err != nil {
		t.Fatalf("running golden cases: %v", err)
	}
	if len(got) != len(want) {
		t.Fatalf("case count changed: got %d, golden has %d — regenerate testdata/golden.json deliberately if cases were added", len(got), len(want))
	}
	for i := range want {
		w, g := want[i], got[i]
		if g.Name != w.Name {
			t.Fatalf("case %d: name %q, golden %q", i, g.Name, w.Name)
		}
		t.Run(w.Name, func(t *testing.T) {
			if g.Iterations != w.Iterations || g.Converged != w.Converged {
				t.Errorf("trajectory shape: iterations %d converged %v, golden %d/%v",
					g.Iterations, g.Converged, w.Iterations, w.Converged)
			}
			if g.TotalMoves != w.TotalMoves {
				t.Errorf("total moves %d, golden %d", g.TotalMoves, w.TotalMoves)
			}
			if g.Objective != w.Objective {
				t.Errorf("objective %v (bits %#x), golden %v (bits %#x)",
					math.Float64frombits(g.Objective), g.Objective,
					math.Float64frombits(w.Objective), w.Objective)
			}
			if g.Lambda != w.Lambda {
				t.Errorf("lambda bits %#x, golden %#x", g.Lambda, w.Lambda)
			}
			if len(g.Assign) != len(w.Assign) {
				t.Fatalf("assignment length %d, golden %d", len(g.Assign), len(w.Assign))
			}
			diff := 0
			for r := range w.Assign {
				if g.Assign[r] != w.Assign[r] {
					if diff == 0 {
						t.Errorf("first assignment mismatch at row %d: %d, golden %d", r, g.Assign[r], w.Assign[r])
					}
					diff++
				}
			}
			if diff > 0 {
				t.Errorf("%d/%d assignments diverged", diff, len(w.Assign))
			}
		})
	}
}
