package fairlet

import (
	"testing"

	"repro/internal/dataset"
	"repro/internal/metrics"
	"repro/internal/stats"
)

// binaryDataset builds two feature blobs with a binary attribute at the
// given global ratio minority:majority = 1:ratio, minority concentrated
// in blob 1.
func binaryDataset(t *testing.T, perBlob, ratio int) *dataset.Dataset {
	t.Helper()
	b := dataset.NewBuilder("x", "y")
	b.AddCategoricalSensitive("g")
	rng := stats.NewRNG(6)
	for i := 0; i < perBlob; i++ {
		v := "maj"
		if i%(ratio+1) == 0 {
			v = "min"
		}
		b.Row([]float64{rng.Gaussian(0, 0.3), rng.Gaussian(0, 0.3)}, []string{v}, nil)
	}
	for i := 0; i < perBlob; i++ {
		v := "maj"
		if i%(2*(ratio+1)) == 0 {
			v = "min"
		}
		b.Row([]float64{rng.Gaussian(5, 0.3), rng.Gaussian(5, 0.3)}, []string{v}, nil)
	}
	ds, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	return ds
}

func TestFairletStructure(t *testing.T) {
	ds := binaryDataset(t, 40, 3)
	res, err := Run(ds, "g", Config{K: 3, Seed: 1})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	g := ds.SensitiveByName("g")
	minIdx := 0
	if g.Values[1] == "min" {
		minIdx = 1
	}
	seen := make([]bool, ds.N())
	for f, members := range res.Fairlets {
		if g.Codes[members[0]] != minIdx {
			t.Errorf("fairlet %d leader is not a minority point", f)
		}
		majCount := 0
		for mi, i := range members {
			if seen[i] {
				t.Fatalf("point %d is in two fairlets", i)
			}
			seen[i] = true
			if mi > 0 {
				if g.Codes[i] == minIdx {
					t.Errorf("fairlet %d has a second minority point", f)
				}
				majCount++
			}
		}
		if majCount < 1 || majCount > res.T {
			t.Errorf("fairlet %d has %d majority points, want 1..%d", f, majCount, res.T)
		}
	}
	for i, ok := range seen {
		if !ok {
			t.Errorf("point %d is in no fairlet", i)
		}
	}
}

// TestBalanceGuarantee: every cluster is a union of fairlets, so its
// balance must be at least 1/T.
func TestBalanceGuarantee(t *testing.T) {
	ds := binaryDataset(t, 60, 3)
	res, err := Run(ds, "g", Config{K: 4, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	g := ds.SensitiveByName("g")
	bal := metrics.Balance(g, res.Assign, 4)
	want := 1 / float64(res.T)
	if bal < want-1e-9 {
		t.Errorf("cluster balance %v below fairlet guarantee %v (T=%d)", bal, want, res.T)
	}
}

// TestImprovesFairnessOverBlindKMeans on a dataset engineered so blind
// clustering is unbalanced.
func TestImprovesFairnessOverBlindKMeans(t *testing.T) {
	ds := binaryDataset(t, 50, 3)
	res, err := Run(ds, "g", Config{K: 2, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	g := ds.SensitiveByName("g")
	fair := metrics.Fairness(ds, g, res.Assign, 2)
	// The two blobs have minority rates 1/4 vs 1/8; blind clustering
	// reproduces that skew. Fairlets must cut the deviation.
	if fair.ME > 0.25 {
		t.Errorf("fairlet clustering ME = %v, want < 0.25", fair.ME)
	}
}

func TestAutoTMatchesDatasetBalance(t *testing.T) {
	ds := binaryDataset(t, 40, 3)
	res, err := Run(ds, "g", Config{K: 2, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	// Global ratio is roughly 1:5.3 here (blob 2 is sparser in
	// minorities), so the auto T must be at least 5 and the
	// decomposition feasible.
	if res.T < 5 {
		t.Errorf("auto T = %d, want >= 5", res.T)
	}
}

func TestDecompositionCostOptimalTinyCase(t *testing.T) {
	// 2 minority, 2 majority on a line: optimal (1,1)-pairing is
	// (0,1), (2,3) with cost 1+1=2, not the crossing 3+3.
	b := dataset.NewBuilder("x")
	b.AddCategoricalSensitive("g")
	b.Row([]float64{0}, []string{"min"}, nil)
	b.Row([]float64{1}, []string{"maj"}, nil)
	b.Row([]float64{4}, []string{"min"}, nil)
	b.Row([]float64{5}, []string{"maj"}, nil)
	ds, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	res, err := Run(ds, "g", Config{K: 1, T: 1, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if res.DecompositionCost != 2 {
		t.Errorf("decomposition cost = %v, want 2", res.DecompositionCost)
	}
}

// TestDecomposeCostAgreement pins the min-cost-flow objective against
// the realized decomposition cost re-summed from the emitted fairlets'
// edges: they are the same quantity computed two ways (every auxiliary
// edge carries cost 0), and decompose used to discard the flow's cost
// outright, so a cost-model change could silently diverge from the
// decomposition it reports. Several (n, ratio, t) shapes keep the
// merge tree honest.
func TestDecomposeCostAgreement(t *testing.T) {
	cases := []struct {
		perBlob, ratio, t int
	}{
		{12, 2, 0},
		{30, 3, 0},
		{30, 3, 7},
		{45, 4, 6},
	}
	for _, c := range cases {
		ds := binaryDataset(t, c.perBlob, c.ratio)
		s := ds.SensitiveByName("g")
		var byValue [2][]int
		for i, code := range s.Codes {
			byValue[code] = append(byValue[code], i)
		}
		minority, majority := byValue[0], byValue[1]
		if len(minority) > len(majority) {
			minority, majority = majority, minority
		}
		tt := c.t
		if tt == 0 {
			tt = (len(majority) + len(minority) - 1) / len(minority)
		}
		fairlets, flowCost, realized, err := decompose(ds.Features, minority, majority, tt)
		if err != nil {
			t.Fatalf("%+v: %v", c, err)
		}
		if len(fairlets) != len(minority) {
			t.Fatalf("%+v: %d fairlets for %d minority points", c, len(fairlets), len(minority))
		}
		if d := flowCost - realized; d > 1e-9*(1+realized) || d < -1e-9*(1+realized) {
			t.Errorf("%+v: flow objective %v vs realized decomposition cost %v (diff %v)", c, flowCost, realized, d)
		}
		if flowCost <= 0 {
			t.Errorf("%+v: non-positive decomposition cost %v", c, flowCost)
		}
	}
}

func TestErrors(t *testing.T) {
	ds := binaryDataset(t, 20, 3)
	if _, err := Run(nil, "g", Config{K: 2}); err == nil {
		t.Error("nil dataset accepted")
	}
	if _, err := Run(ds, "nope", Config{K: 2}); err == nil {
		t.Error("unknown attribute accepted")
	}
	if _, err := Run(ds, "g", Config{K: 0}); err == nil {
		t.Error("K=0 accepted")
	}
	if _, err := Run(ds, "g", Config{K: 2, T: 1}); err == nil {
		t.Error("infeasible T accepted")
	}
	// Non-binary attribute.
	b := dataset.NewBuilder("x")
	b.AddCategoricalSensitive("tri")
	b.Row([]float64{1}, []string{"a"}, nil)
	b.Row([]float64{2}, []string{"b"}, nil)
	b.Row([]float64{3}, []string{"c"}, nil)
	tri, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Run(tri, "tri", Config{K: 1}); err == nil {
		t.Error("ternary attribute accepted")
	}
}

func TestDeterminism(t *testing.T) {
	ds := binaryDataset(t, 30, 2)
	a, err := Run(ds, "g", Config{K: 3, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(ds, "g", Config{K: 3, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	for i := range a.Assign {
		if a.Assign[i] != b.Assign[i] {
			t.Fatalf("assignment %d differs", i)
		}
	}
}
