// Package fairlet implements fairlet-decomposition fair clustering
// (Chierichetti, Kumar, Lattanzi, Vassilvitskii — "Fair Clustering
// Through Fairlets", NIPS 2017), the seminal pre-processing baseline
// the FairKM paper surveys as reference [6].
//
// The method applies to a SINGLE BINARY sensitive attribute. Points
// are first grouped into "fairlets": micro-clusters containing exactly
// one minority-class point and between 1 and t majority-class points,
// so every fairlet has balance at least 1/t. Clustering fairlets
// instead of points then guarantees every output cluster inherits that
// balance, because clusters are unions of fairlets.
//
// The (1, t)-fairlet decomposition minimizing total intra-fairlet
// distance is computed exactly as a minimum-cost flow (with the
// lower-bound-to-excess transformation): source → each minority point
// with capacity [1, t], minority → majority edges with unit capacity
// and distance cost, majority → sink with capacity [1, 1]. Fairlet
// centers (medoids) are then clustered with K-Means and every point
// inherits its fairlet's cluster.
//
// Cost note: the flow graph has |R|·|B| edges, so this baseline suits
// datasets up to a few thousand points — which is exactly why FairKM-
// style in-objective methods exist; see the paper's Section 4.3.1
// complexity discussion.
package fairlet

import (
	"errors"
	"fmt"
	"math"

	"repro/internal/dataset"
	"repro/internal/kmeans"
	"repro/internal/mcmf"
	"repro/internal/stats"
)

// Config parameterizes a fairlet-clustering run.
type Config struct {
	// K is the number of output clusters.
	K int
	// T bounds majority points per fairlet: balance ≥ 1/T. Zero means
	// the smallest feasible value ceil(|majority|/|minority|), i.e. the
	// dataset's own balance.
	T int
	// Seed drives the K-Means stage over fairlet centers.
	Seed int64
	// MaxIter bounds the K-Means stage; zero means its default.
	MaxIter int
}

// Result is a completed fairlet clustering.
type Result struct {
	// Assign maps each row to its cluster in [0, K).
	Assign []int
	// Fairlets lists each fairlet's member row indexes; Fairlets[f][0]
	// is always the minority point.
	Fairlets [][]int
	// Centers holds the medoid row index of each fairlet.
	Centers []int
	// FairletAssign maps each fairlet to its cluster.
	FairletAssign []int
	// DecompositionCost is the total minority→majority distance of the
	// optimal (1,T)-decomposition.
	DecompositionCost float64
	// T is the majority bound actually used.
	T int
}

// Run clusters ds fairly with respect to the single named binary
// attribute.
func Run(ds *dataset.Dataset, attr string, cfg Config) (*Result, error) {
	if ds == nil {
		return nil, errors.New("fairlet: nil dataset")
	}
	if err := ds.Validate(); err != nil {
		return nil, fmt.Errorf("fairlet: %w", err)
	}
	s := ds.SensitiveByName(attr)
	if s == nil {
		return nil, fmt.Errorf("fairlet: no sensitive attribute %q", attr)
	}
	if s.Kind != dataset.Categorical || len(s.Values) != 2 {
		return nil, fmt.Errorf("fairlet: attribute %q is not binary categorical", attr)
	}
	n := ds.N()

	// Split into minority (R) and majority (B) by the attribute.
	var byValue [2][]int
	for i, c := range s.Codes {
		byValue[c] = append(byValue[c], i)
	}
	minority, majority := byValue[0], byValue[1]
	if len(minority) > len(majority) {
		minority, majority = majority, minority
	}
	if len(minority) == 0 {
		return nil, fmt.Errorf("fairlet: attribute %q has an empty class; nothing to balance", attr)
	}
	t := cfg.T
	minT := (len(majority) + len(minority) - 1) / len(minority)
	if t == 0 {
		t = minT
	}
	if t < minT {
		return nil, fmt.Errorf("fairlet: T=%d infeasible; %d majority points over %d minority points need T >= %d",
			t, len(majority), len(minority), minT)
	}
	if cfg.K < 1 || cfg.K > len(minority) {
		return nil, fmt.Errorf("fairlet: K=%d out of range [1,%d] (one cluster needs at least one fairlet)", cfg.K, len(minority))
	}

	fairlets, flowCost, cost, err := decompose(ds.Features, minority, majority, t)
	if err != nil {
		return nil, err
	}
	// The solver's objective and the realized edge-distance sum are the
	// same quantity computed two ways; a cost-model change that breaks
	// this equality would silently decouple the optimization from the
	// decomposition it emits.
	if d := math.Abs(flowCost - cost); d > 1e-9*(1+cost) {
		return nil, fmt.Errorf("fairlet: internal error: min-cost-flow objective %v differs from realized decomposition cost %v", flowCost, cost)
	}

	// Fairlet centers are medoids: the member minimizing total distance
	// to the rest of the fairlet.
	centers := make([]int, len(fairlets))
	for f, members := range fairlets {
		centers[f] = medoid(ds.Features, members)
	}

	// Cluster the centers; every point inherits its fairlet's cluster.
	centerFeatures := make([][]float64, len(centers))
	for f, c := range centers {
		centerFeatures[f] = ds.Features[c]
	}
	km, err := kmeans.Run(centerFeatures, kmeans.Config{K: cfg.K, Seed: cfg.Seed, MaxIter: cfg.MaxIter})
	if err != nil {
		return nil, fmt.Errorf("fairlet: clustering fairlet centers: %w", err)
	}

	assign := make([]int, n)
	for f, members := range fairlets {
		for _, i := range members {
			assign[i] = km.Assign[f]
		}
	}
	return &Result{
		Assign:            assign,
		Fairlets:          fairlets,
		Centers:           centers,
		FairletAssign:     km.Assign,
		DecompositionCost: cost,
		T:                 t,
	}, nil
}

// decompose computes the minimum-cost (1,t)-fairlet decomposition via
// min-cost flow with lower bounds. It returns the fairlets, the flow
// solver's own objective (the sum of costs on saturated minority→
// majority edges — every auxiliary edge is cost 0, so this IS the
// decomposition cost), and the realized cost re-summed from the
// emitted fairlets' edge distances. The two must agree to float
// round-off; TestDecomposeCostAgreement pins it.
func decompose(features [][]float64, minority, majority []int, t int) ([][]int, float64, float64, error) {
	nR, nB := len(minority), len(majority)
	// Node layout: 0 = source, 1 = sink, 2.. minority, then majority,
	// then super-source and super-sink for the lower-bound transform.
	src, sink := 0, 1
	rBase := 2
	bBase := rBase + nR
	superSrc := bBase + nB
	superSink := superSrc + 1
	g := mcmf.New(superSink + 1)

	excess := make([]int, superSink+1)
	// source → minority r: capacity [1, t] → residual cap t-1 plus
	// excess bookkeeping for the mandatory unit.
	for ri := range minority {
		g.AddEdge(src, rBase+ri, t-1, 0)
		excess[rBase+ri]++
		excess[src]--
	}
	// minority → majority: cap 1, cost = distance.
	pairEdges := make([][]int, nR)
	for ri, r := range minority {
		pairEdges[ri] = make([]int, nB)
		for bi, b := range majority {
			pairEdges[ri][bi] = g.AddEdge(rBase+ri, bBase+bi, 1, stats.Dist(features[r], features[b]))
		}
	}
	// majority → sink: capacity [1, 1] → residual cap 0 + excess.
	for bi := range majority {
		g.AddEdge(bBase+bi, sink, 0, 0)
		excess[sink]++
		excess[bBase+bi]--
	}
	// Circulation edge and super terminals.
	g.AddEdge(sink, src, nB, 0)
	need := 0
	for v, e := range excess {
		if e > 0 {
			g.AddEdge(superSrc, v, e, 0)
			need += e
		} else if e < 0 {
			g.AddEdge(v, superSink, -e, 0)
		}
	}
	flow, cost, err := g.MinCostFlow(superSrc, superSink, -1)
	if err != nil {
		return nil, 0, 0, fmt.Errorf("fairlet: %w", err)
	}
	if flow != need {
		return nil, 0, 0, fmt.Errorf("fairlet: decomposition infeasible (matched %d of %d mandatory units)", flow, need)
	}

	fairlets := make([][]int, nR)
	total := 0.0
	for ri, r := range minority {
		fairlets[ri] = []int{r}
		for bi, b := range majority {
			if g.Flow(pairEdges[ri][bi]) > 0 {
				fairlets[ri] = append(fairlets[ri], b)
				total += stats.Dist(features[r], features[b])
			}
		}
	}
	// Sanity: every fairlet must have at least one majority point.
	for ri, members := range fairlets {
		if len(members) < 2 {
			return nil, 0, 0, fmt.Errorf("fairlet: internal error: fairlet %d has no majority points", ri)
		}
	}
	return fairlets, cost, total, nil
}

// medoid returns the member with minimum summed distance to the others.
func medoid(features [][]float64, members []int) int {
	best, bestSum := members[0], math.Inf(1)
	for _, i := range members {
		sum := 0.0
		for _, j := range members {
			sum += stats.Dist(features[i], features[j])
		}
		if sum < bestSum {
			best, bestSum = i, sum
		}
	}
	return best
}
