package lp

import (
	"math"
	"testing"

	"repro/internal/stats"
)

func solveOK(t *testing.T, p Problem) *Solution {
	t.Helper()
	s, err := Solve(p)
	if err != nil {
		t.Fatalf("Solve: %v", err)
	}
	return s
}

func TestTextbookMaximization(t *testing.T) {
	// max 3x+5y s.t. x<=4, 2y<=12, 3x+2y<=18  (classic Dantzig example)
	// => min -3x-5y; optimum x=2, y=6, value 36.
	s := solveOK(t, Problem{
		C: []float64{-3, -5},
		A: [][]float64{
			{1, 0},
			{0, 2},
			{3, 2},
		},
		Ops: []Op{LE, LE, LE},
		B:   []float64{4, 12, 18},
	})
	if s.Status != Optimal {
		t.Fatalf("status = %v", s.Status)
	}
	if math.Abs(s.Objective-(-36)) > 1e-6 {
		t.Errorf("objective = %v, want -36", s.Objective)
	}
	if math.Abs(s.X[0]-2) > 1e-6 || math.Abs(s.X[1]-6) > 1e-6 {
		t.Errorf("x = %v, want [2 6]", s.X)
	}
}

func TestEqualityAndGE(t *testing.T) {
	// min x+2y s.t. x+y=10, x>=3, y>=2 → x=8,y=2, value 12.
	s := solveOK(t, Problem{
		C: []float64{1, 2},
		A: [][]float64{
			{1, 1},
			{1, 0},
			{0, 1},
		},
		Ops: []Op{EQ, GE, GE},
		B:   []float64{10, 3, 2},
	})
	if s.Status != Optimal {
		t.Fatalf("status = %v", s.Status)
	}
	if math.Abs(s.Objective-12) > 1e-6 {
		t.Errorf("objective = %v, want 12", s.Objective)
	}
}

func TestInfeasible(t *testing.T) {
	// x <= 1 and x >= 2.
	s := solveOK(t, Problem{
		C:   []float64{1},
		A:   [][]float64{{1}, {1}},
		Ops: []Op{LE, GE},
		B:   []float64{1, 2},
	})
	if s.Status != Infeasible {
		t.Errorf("status = %v, want infeasible", s.Status)
	}
}

func TestUnbounded(t *testing.T) {
	// min -x with only x >= 0 and x >= 1: unbounded below.
	s := solveOK(t, Problem{
		C:   []float64{-1},
		A:   [][]float64{{1}},
		Ops: []Op{GE},
		B:   []float64{1},
	})
	if s.Status != Unbounded {
		t.Errorf("status = %v, want unbounded", s.Status)
	}
}

func TestNegativeRHS(t *testing.T) {
	// -x <= -2 is x >= 2; min x → 2.
	s := solveOK(t, Problem{
		C:   []float64{1},
		A:   [][]float64{{-1}},
		Ops: []Op{LE},
		B:   []float64{-2},
	})
	if s.Status != Optimal || math.Abs(s.Objective-2) > 1e-6 {
		t.Errorf("got %v obj %v, want optimal 2", s.Status, s.Objective)
	}
}

func TestDegenerateNoCycle(t *testing.T) {
	// Beale's classic cycling example (cycles under Dantzig's rule,
	// must terminate under Bland's).
	s := solveOK(t, Problem{
		C: []float64{-0.75, 150, -0.02, 6},
		A: [][]float64{
			{0.25, -60, -0.04, 9},
			{0.5, -90, -0.02, 3},
			{0, 0, 1, 0},
		},
		Ops: []Op{LE, LE, LE},
		B:   []float64{0, 0, 1},
	})
	if s.Status != Optimal {
		t.Fatalf("status = %v", s.Status)
	}
	if math.Abs(s.Objective-(-0.05)) > 1e-6 {
		t.Errorf("objective = %v, want -0.05", s.Objective)
	}
}

func TestErrors(t *testing.T) {
	if _, err := Solve(Problem{}); err == nil {
		t.Error("empty problem accepted")
	}
	if _, err := Solve(Problem{C: []float64{1}, A: [][]float64{{1, 2}}, Ops: []Op{LE}, B: []float64{1}}); err == nil {
		t.Error("ragged constraint accepted")
	}
	if _, err := Solve(Problem{C: []float64{1}, A: [][]float64{{1}}, Ops: []Op{LE}, B: []float64{1, 2}}); err == nil {
		t.Error("rhs length mismatch accepted")
	}
}

// TestRandomProblemsAgainstVertexEnumeration cross-checks the simplex
// against brute-force enumeration of constraint-intersection vertices
// on random bounded 2-variable LPs.
func TestRandomProblemsAgainstVertexEnumeration(t *testing.T) {
	rng := stats.NewRNG(9)
	for trial := 0; trial < 300; trial++ {
		// Random LE constraints with positive rhs keep the origin
		// feasible; a box keeps the problem bounded.
		m := 2 + rng.Intn(4)
		p := Problem{C: []float64{rng.Float64()*4 - 2, rng.Float64()*4 - 2}}
		for i := 0; i < m; i++ {
			p.A = append(p.A, []float64{rng.Float64()*2 - 0.5, rng.Float64()*2 - 0.5})
			p.Ops = append(p.Ops, LE)
			p.B = append(p.B, rng.Float64()*3+0.5)
		}
		p.A = append(p.A, []float64{1, 0}, []float64{0, 1})
		p.Ops = append(p.Ops, LE, LE)
		p.B = append(p.B, 5, 5)

		s := solveOK(t, p)
		if s.Status != Optimal {
			t.Fatalf("trial %d: status %v for a feasible bounded LP", trial, s.Status)
		}
		want := bruteForce2D(p)
		if math.Abs(s.Objective-want) > 1e-6*(1+math.Abs(want)) {
			t.Fatalf("trial %d: simplex %v, vertex enumeration %v", trial, s.Objective, want)
		}
		// The returned point must be feasible.
		for i := range p.A {
			lhs := p.A[i][0]*s.X[0] + p.A[i][1]*s.X[1]
			if lhs > p.B[i]+1e-6 {
				t.Fatalf("trial %d: solution violates constraint %d: %v > %v", trial, i, lhs, p.B[i])
			}
		}
	}
}

// bruteForce2D enumerates all pairwise constraint intersections (plus
// axes) and returns the best feasible objective.
func bruteForce2D(p Problem) float64 {
	type line struct{ a, b, c float64 } // a·x + b·y = c
	var lines []line
	for i := range p.A {
		lines = append(lines, line{p.A[i][0], p.A[i][1], p.B[i]})
	}
	lines = append(lines, line{1, 0, 0}, line{0, 1, 0}) // x=0, y=0
	feasible := func(x, y float64) bool {
		if x < -1e-9 || y < -1e-9 {
			return false
		}
		for i := range p.A {
			if p.A[i][0]*x+p.A[i][1]*y > p.B[i]+1e-9 {
				return false
			}
		}
		return true
	}
	best := math.Inf(1)
	for i := 0; i < len(lines); i++ {
		for j := i + 1; j < len(lines); j++ {
			det := lines[i].a*lines[j].b - lines[j].a*lines[i].b
			if math.Abs(det) < 1e-12 {
				continue
			}
			x := (lines[i].c*lines[j].b - lines[j].c*lines[i].b) / det
			y := (lines[i].a*lines[j].c - lines[j].a*lines[i].c) / det
			if feasible(x, y) {
				if v := p.C[0]*x + p.C[1]*y; v < best {
					best = v
				}
			}
		}
	}
	return best
}
