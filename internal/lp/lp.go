// Package lp implements a dense two-phase simplex solver for linear
// programs in inequality form:
//
//	minimize    c·x
//	subject to  A_i·x (≤ | = | ≥) b_i   for each row i
//	            x ≥ 0
//
// There is no LP-solver ecosystem available offline, so this solver is
// written from scratch; it underlies the Bera et al. fair-assignment
// baseline (internal/bera). It uses Bland's pivoting rule, which makes
// termination guaranteed (no cycling) at the cost of speed — fine for
// the problem sizes the baselines produce.
package lp

//fairvet:floateq factor==0 skips exactly-zero tableau entries; an epsilon would change the simplex arithmetic

import (
	"errors"
	"fmt"
	"math"
)

// Op is a constraint comparator.
type Op int

const (
	// LE is A_i·x ≤ b_i.
	LE Op = iota
	// EQ is A_i·x = b_i.
	EQ
	// GE is A_i·x ≥ b_i.
	GE
)

// Problem is a linear program. All slices must agree on dimensions:
// len(A) == len(B) == len(Ops), and every A row has len(C) entries.
type Problem struct {
	// C is the objective (minimized).
	C []float64
	// A holds constraint coefficient rows.
	A [][]float64
	// Ops holds one comparator per constraint row.
	Ops []Op
	// B holds right-hand sides.
	B []float64
}

// Status reports how solving ended.
type Status int

const (
	// Optimal: an optimal basic feasible solution was found.
	Optimal Status = iota
	// Infeasible: the constraints admit no solution.
	Infeasible
	// Unbounded: the objective decreases without bound.
	Unbounded
)

// String implements fmt.Stringer.
func (s Status) String() string {
	switch s {
	case Optimal:
		return "optimal"
	case Infeasible:
		return "infeasible"
	case Unbounded:
		return "unbounded"
	default:
		return fmt.Sprintf("Status(%d)", int(s))
	}
}

// Solution is the solver output. X and Objective are meaningful only
// when Status == Optimal.
type Solution struct {
	X         []float64
	Objective float64
	Status    Status
}

const eps = 1e-9

// Solve runs two-phase simplex on the problem.
func Solve(p Problem) (*Solution, error) {
	n := len(p.C)
	m := len(p.A)
	if n == 0 {
		return nil, errors.New("lp: empty objective")
	}
	if len(p.B) != m || len(p.Ops) != m {
		return nil, fmt.Errorf("lp: %d constraint rows, %d rhs, %d ops", m, len(p.B), len(p.Ops))
	}
	for i, row := range p.A {
		if len(row) != n {
			return nil, fmt.Errorf("lp: constraint %d has %d coefficients, want %d", i, len(row), n)
		}
	}

	// Normalize to b >= 0 by negating rows, flipping comparators.
	a := make([][]float64, m)
	b := make([]float64, m)
	ops := make([]Op, m)
	for i := range p.A {
		a[i] = append([]float64(nil), p.A[i]...)
		b[i] = p.B[i]
		ops[i] = p.Ops[i]
		if b[i] < 0 {
			for j := range a[i] {
				a[i][j] = -a[i][j]
			}
			b[i] = -b[i]
			switch ops[i] {
			case LE:
				ops[i] = GE
			case GE:
				ops[i] = LE
			}
		}
	}

	// Count auxiliary columns: slack for LE, surplus+artificial for GE,
	// artificial for EQ.
	nSlack, nArt := 0, 0
	for _, op := range ops {
		switch op {
		case LE:
			nSlack++
		case GE:
			nSlack++
			nArt++
		case EQ:
			nArt++
		}
	}
	total := n + nSlack + nArt
	// Tableau: m rows of [coefficients | rhs].
	t := make([][]float64, m)
	basis := make([]int, m)
	slackCol, artCol := n, n+nSlack
	artRows := []int{}
	for i := 0; i < m; i++ {
		t[i] = make([]float64, total+1)
		copy(t[i], a[i])
		t[i][total] = b[i]
		switch ops[i] {
		case LE:
			t[i][slackCol] = 1
			basis[i] = slackCol
			slackCol++
		case GE:
			t[i][slackCol] = -1
			slackCol++
			t[i][artCol] = 1
			basis[i] = artCol
			artCol++
			artRows = append(artRows, i)
		case EQ:
			t[i][artCol] = 1
			basis[i] = artCol
			artCol++
		default:
			return nil, fmt.Errorf("lp: constraint %d has unknown op %d", i, ops[i])
		}
	}

	// Phase 1: minimize the sum of artificial variables.
	if nArt > 0 {
		phase1 := make([]float64, total)
		for j := n + nSlack; j < total; j++ {
			phase1[j] = 1
		}
		obj, status := simplex(t, basis, phase1, total)
		if status == Unbounded {
			return nil, errors.New("lp: phase 1 unbounded (internal error)")
		}
		if obj > eps {
			return &Solution{Status: Infeasible}, nil
		}
		// Drive any remaining artificial variables out of the basis.
		for i := range basis {
			if basis[i] < n+nSlack {
				continue
			}
			pivoted := false
			for j := 0; j < n+nSlack; j++ {
				if math.Abs(t[i][j]) > eps {
					pivot(t, basis, i, j, total)
					pivoted = true
					break
				}
			}
			if !pivoted {
				// Row is all-zero over real variables: redundant
				// constraint; the artificial stays basic at value 0,
				// which is harmless.
				_ = pivoted
			}
		}
	}

	// Phase 2: minimize the true objective over columns [0, n+nSlack),
	// keeping artificial columns blocked.
	phase2 := make([]float64, total)
	copy(phase2, p.C)
	blockArtificials(t, total, n+nSlack)
	obj, status := simplex(t, basis, phase2, total)
	if status == Unbounded {
		return &Solution{Status: Unbounded}, nil
	}

	x := make([]float64, n)
	for i, bv := range basis {
		if bv < n {
			x[bv] = t[i][total]
		}
	}
	return &Solution{X: x, Objective: obj, Status: Optimal}, nil
}

// blockArtificials zeroes artificial columns so phase 2 can never
// re-introduce them.
func blockArtificials(t [][]float64, total, realCols int) {
	for i := range t {
		for j := realCols; j < total; j++ {
			t[i][j] = 0
		}
	}
}

// simplex minimizes c over the tableau with Bland's rule. It returns
// the objective value and Optimal or Unbounded.
func simplex(t [][]float64, basis []int, c []float64, total int) (float64, Status) {
	m := len(t)
	// Reduced costs: z_j = c_j − c_B·B⁻¹A_j, maintained implicitly by
	// recomputation each iteration (dense and simple; fine at our
	// problem sizes).
	for iter := 0; ; iter++ {
		// Compute reduced costs.
		entering := -1
		for j := 0; j < total; j++ {
			r := c[j]
			for i := 0; i < m; i++ {
				r -= c[basis[i]] * t[i][j]
			}
			if r < -eps {
				entering = j // Bland: first improving column
				break
			}
		}
		if entering == -1 {
			obj := 0.0
			for i := 0; i < m; i++ {
				obj += c[basis[i]] * t[i][total]
			}
			return obj, Optimal
		}
		// Ratio test with Bland tie-break on smallest basis index.
		leaving := -1
		bestRatio := math.Inf(1)
		for i := 0; i < m; i++ {
			if t[i][entering] > eps {
				ratio := t[i][total] / t[i][entering]
				if ratio < bestRatio-eps ||
					(math.Abs(ratio-bestRatio) <= eps && (leaving == -1 || basis[i] < basis[leaving])) {
					bestRatio = ratio
					leaving = i
				}
			}
		}
		if leaving == -1 {
			return 0, Unbounded
		}
		pivot(t, basis, leaving, entering, total)
	}
}

// pivot makes column j basic in row i.
func pivot(t [][]float64, basis []int, i, j, total int) {
	pv := t[i][j]
	for col := 0; col <= total; col++ {
		t[i][col] /= pv
	}
	for row := range t {
		if row == i {
			continue
		}
		factor := t[row][j]
		if factor == 0 {
			continue
		}
		for col := 0; col <= total; col++ {
			t[row][col] -= factor * t[i][col]
		}
	}
	basis[i] = j
}
