// Package load is the open-loop traffic harness for the fairserved
// serving stack: it replays heavy-tailed (Zipf) assignment traffic at a
// fixed offered rate and reports the full latency distribution, SLO
// attainment and a shed/deadline/error breakdown.
//
// # Open loop, not closed loop
//
// A closed-loop benchmark (issue request, wait, issue the next) lets a
// slow server throttle its own load: every stall pauses the generator,
// so the recorded latencies silently omit exactly the moments the
// server was worst — coordinated omission. This harness is open-loop:
// the complete request schedule is computed up front from the offered
// rate (request i fires at i/rate), and a request is launched at its
// scheduled time whether or not earlier ones have returned. A server
// that cannot keep up accumulates queue, sheds, or blows deadlines —
// all of which the report shows — but it can never slow the offered
// load down.
//
// # Determinism
//
// Build derives the entire workload — send times, Zipf batch sizes,
// Zipf model choices, feature payloads — from Config.Seed via
// stats.RNG before anything is sent. At a fixed seed the schedule and
// payload byte sequence are identical across runs and independent of
// server speed (pinned by Workload.Fingerprint in the tests). Run only
// consumes the prebuilt workload; it draws no randomness.
//
// Targets: RegistryTarget drives an in-process serve.Registry (race-
// clean deterministic tests, no network noise); HTTPTarget drives a
// live fairserved over keep-alive connections (cmd/fairload).
package load

// The workload-construction half of the package (Build and everything
// it calls) is deterministic by contract — see the Determinism section
// above; Fingerprint pins it in the tests. Run (report.go) is the
// wall-clock half and stays out of scope.
//fairvet:deterministic

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"time"

	"repro/internal/stats"
)

// Defaults for Config fields left zero.
const (
	DefaultMaxBatch  = 16
	DefaultZipfBatch = 1.2
	DefaultZipfModel = 1.1
)

// Config parameterizes a workload.
type Config struct {
	// Rate is the offered load in requests/second (> 0). Send times are
	// fixed up front: request i fires at i/Rate.
	Rate float64 `json:"rate_rps"`
	// Requests is how many requests the workload contains (> 0).
	Requests int `json:"requests"`
	// Seed drives every random choice (batch sizes, model picks,
	// feature payloads).
	Seed int64 `json:"seed"`
	// Dim is the feature dimensionality of generated rows (> 0; must
	// match the served model).
	Dim int `json:"dim"`
	// MaxBatch bounds the Zipf-distributed rows-per-request batch size;
	// <= 0 means DefaultMaxBatch. Batch b has probability ∝ 1/b^ZipfBatch
	// — mostly singletons with a heavy tail of big batches.
	MaxBatch int `json:"max_batch"`
	// ZipfBatch is the batch-size Zipf exponent; <= 0 means
	// DefaultZipfBatch (must be >= 1 otherwise).
	ZipfBatch float64 `json:"zipf_batch"`
	// Models are the served model names traffic is spread over with
	// Zipf(ZipfModel) popularity (first name is the hottest). Empty
	// means one request stream to the server's default model.
	Models []string `json:"models,omitempty"`
	// ZipfModel is the model-popularity Zipf exponent; <= 0 means
	// DefaultZipfModel (must be >= 1 otherwise).
	ZipfModel float64 `json:"zipf_model"`
	// Timeout is the per-request client deadline; requests that exceed
	// it count as deadline failures. 0 = none.
	Timeout time.Duration `json:"timeout_ns,omitempty"`
	// SLO, when > 0, is the target p99 latency the report grades
	// accepted requests against (rows/s at p99 ≤ SLO).
	SLO time.Duration `json:"slo_ns,omitempty"`
}

func (c Config) withDefaults() (Config, error) {
	if !(c.Rate > 0) {
		return c, fmt.Errorf("load: rate %v must be positive", c.Rate)
	}
	if c.Requests <= 0 {
		return c, fmt.Errorf("load: requests %d must be positive", c.Requests)
	}
	if c.Dim <= 0 {
		return c, fmt.Errorf("load: dim %d must be positive", c.Dim)
	}
	if c.MaxBatch <= 0 {
		c.MaxBatch = DefaultMaxBatch
	}
	if c.ZipfBatch <= 0 {
		c.ZipfBatch = DefaultZipfBatch
	}
	if c.ZipfModel <= 0 {
		c.ZipfModel = DefaultZipfModel
	}
	if c.ZipfBatch < 1 || c.ZipfModel < 1 {
		return c, fmt.Errorf("load: zipf exponents (%v, %v) must be >= 1", c.ZipfBatch, c.ZipfModel)
	}
	if c.Timeout < 0 || c.SLO < 0 {
		return c, fmt.Errorf("load: timeout %v and slo %v must be non-negative", c.Timeout, c.SLO)
	}
	return c, nil
}

// Request is one scheduled request of the workload.
type Request struct {
	// N is the request's position in the schedule.
	N int
	// At is the scheduled send offset from the run start. It depends
	// only on N and Config.Rate — never on how the server behaves.
	At time.Duration
	// Model is the target model name ("" = server default).
	Model string
	// Rows are the feature payloads.
	Rows [][]float64
}

// Body renders the request as the canonical /v1/assign JSON body. The
// encoding is deterministic (fixed field order, shortest-round-trip
// floats), so the workload's payload byte sequence is reproducible.
func (r *Request) Body() []byte {
	type row struct {
		Features []float64 `json:"features"`
	}
	payload := struct {
		Model string `json:"model,omitempty"`
		Rows  []row  `json:"rows"`
	}{Model: r.Model}
	payload.Rows = make([]row, len(r.Rows))
	for i, x := range r.Rows {
		payload.Rows[i] = row{Features: x}
	}
	b, err := json.Marshal(payload)
	if err != nil {
		// Rows are finite float64s generated here; Marshal cannot fail.
		panic(fmt.Sprintf("load: encoding request body: %v", err))
	}
	return b
}

// Workload is a fully materialized open-loop request schedule.
type Workload struct {
	Config    Config
	Requests  []Request
	TotalRows int
}

// Duration is the span of the schedule: the last send offset plus one
// inter-arrival gap.
func (w *Workload) Duration() time.Duration {
	if len(w.Requests) == 0 {
		return 0
	}
	return w.Requests[len(w.Requests)-1].At + time.Duration(float64(time.Second)/w.Config.Rate)
}

// Fingerprint hashes the complete schedule and payload byte sequence —
// two workloads with equal fingerprints would put identical bytes on
// the wire at identical offsets.
func (w *Workload) Fingerprint() string {
	h := sha256.New()
	for i := range w.Requests {
		r := &w.Requests[i]
		fmt.Fprintf(h, "%d|%d|", r.N, r.At.Nanoseconds())
		// The directive below also covers the next line.
		h.Write(r.Body()) //fairvet:ignore errflow -- hash.Hash.Write never returns an error
		h.Write([]byte{'\n'})
	}
	return hex.EncodeToString(h.Sum(nil))
}

// Build materializes the workload for cfg: the full schedule and every
// payload, before anything is sent. Deterministic in Config.Seed.
func Build(cfg Config) (*Workload, error) {
	cfg, err := cfg.withDefaults()
	if err != nil {
		return nil, err
	}
	rng := stats.NewRNG(cfg.Seed)
	interval := float64(time.Second) / cfg.Rate
	w := &Workload{Config: cfg, Requests: make([]Request, cfg.Requests)}
	for i := range w.Requests {
		batch := 1 + rng.Zipf(cfg.MaxBatch, cfg.ZipfBatch)
		name := ""
		if len(cfg.Models) > 0 {
			name = cfg.Models[rng.Zipf(len(cfg.Models), cfg.ZipfModel)]
		}
		rows := make([][]float64, batch)
		for r := range rows {
			x := make([]float64, cfg.Dim)
			for j := range x {
				x[j] = rng.Gaussian(0, 1)
			}
			rows[r] = x
		}
		w.Requests[i] = Request{
			N:     i,
			At:    time.Duration(float64(i) * interval),
			Model: name,
			Rows:  rows,
		}
		w.TotalRows += batch
	}
	return w, nil
}
