package load

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"time"

	"repro/internal/serve"
)

// Class is the outcome classification of one request.
type Class int

const (
	// ClassOK: the request was accepted and answered.
	ClassOK Class = iota
	// ClassShed: the server rejected the request under admission
	// control (ShedError in-process, HTTP 429 over the wire).
	ClassShed
	// ClassDeadline: the request's deadline expired — client timeout,
	// context expiry, or a server 503.
	ClassDeadline
	// ClassError: anything else (transport failure, 4xx/5xx).
	ClassError
)

// String names the class for reports.
func (c Class) String() string {
	switch c {
	case ClassOK:
		return "ok"
	case ClassShed:
		return "shed"
	case ClassDeadline:
		return "deadline"
	default:
		return "error"
	}
}

// Outcome is what one request produced.
type Outcome struct {
	Class Class
	// Latency is send-to-response wall time (filled by Run when the
	// target leaves it zero).
	Latency time.Duration
	// Rows is how many rows were labelled (ClassOK only).
	Rows int
	// Err samples the failure for the report's first-error line.
	Err error
}

// Target consumes one scheduled request. Implementations must be safe
// for concurrent use: the open-loop runner fires overlapping requests.
type Target interface {
	Do(ctx context.Context, req *Request) Outcome
}

// RegistryTarget drives an in-process serve.Registry — the harness and
// the serving stack in one process, deterministic and race-checkable,
// with no network in the measurement.
type RegistryTarget struct {
	Registry *serve.Registry
}

// Do resolves the model and scores the batch under ctx.
func (t *RegistryTarget) Do(ctx context.Context, req *Request) Outcome {
	e, err := t.Registry.Get(req.Model)
	if err != nil {
		return Outcome{Class: ClassError, Err: err}
	}
	_, _, err = e.Assigner().AssignBatchCtx(ctx, req.Rows, nil)
	switch {
	case err == nil:
		return Outcome{Class: ClassOK, Rows: len(req.Rows)}
	case serve.IsShed(err):
		return Outcome{Class: ClassShed, Err: err}
	case errors.Is(err, context.DeadlineExceeded) || errors.Is(err, context.Canceled):
		return Outcome{Class: ClassDeadline, Err: err}
	default:
		return Outcome{Class: ClassError, Err: err}
	}
}

// HTTPTarget drives a live fairserved over HTTP, reusing keep-alive
// connections so the harness measures the server, not TCP handshakes.
type HTTPTarget struct {
	// BaseURL is the server root, e.g. "http://127.0.0.1:8080".
	BaseURL string
	// Client overrides the default keep-alive client when non-nil.
	Client *http.Client
}

// httpClient is the shared keep-alive client: enough idle connections
// per host that an open-loop burst never pays connection setup.
var httpClient = &http.Client{
	Transport: &http.Transport{
		MaxIdleConns:        512,
		MaxIdleConnsPerHost: 512,
		IdleConnTimeout:     90 * time.Second,
	},
}

func (t *HTTPTarget) client() *http.Client {
	if t.Client != nil {
		return t.Client
	}
	return httpClient
}

// Do POSTs the request body to /v1/assign and classifies the response:
// 200 OK, 429 shed, 503 (or a context/client timeout) deadline,
// anything else an error.
func (t *HTTPTarget) Do(ctx context.Context, req *Request) Outcome {
	hreq, err := http.NewRequestWithContext(ctx, http.MethodPost, t.BaseURL+"/v1/assign", bytes.NewReader(req.Body()))
	if err != nil {
		return Outcome{Class: ClassError, Err: err}
	}
	hreq.Header.Set("Content-Type", "application/json")
	resp, err := t.client().Do(hreq)
	if err != nil {
		if errors.Is(err, context.DeadlineExceeded) || ctx.Err() != nil {
			return Outcome{Class: ClassDeadline, Err: err}
		}
		return Outcome{Class: ClassError, Err: err}
	}
	// Drain so the connection returns to the keep-alive pool.
	defer func() {
		// The directive below also covers the Close on the next line.
		io.Copy(io.Discard, resp.Body) //fairvet:ignore errflow -- best-effort drain and close for connection reuse; the outcome was already classified
		resp.Body.Close()
	}()
	switch resp.StatusCode {
	case http.StatusOK:
		return Outcome{Class: ClassOK, Rows: len(req.Rows)}
	case http.StatusTooManyRequests:
		return Outcome{Class: ClassShed, Err: fmt.Errorf("shed (retry after %ss)", resp.Header.Get("Retry-After"))}
	case http.StatusServiceUnavailable:
		return Outcome{Class: ClassDeadline, Err: errors.New("server deadline (503)")}
	default:
		return Outcome{Class: ClassError, Err: fmt.Errorf("http %d", resp.StatusCode)}
	}
}

// FetchDim asks a fairserved instance for the feature dimensionality of
// model (`""` = its default model) via GET /v1/models, so fairload can
// generate matching payloads without a local artifact.
func FetchDim(baseURL, model string) (int, error) {
	resp, err := httpClient.Get(baseURL + "/v1/models")
	if err != nil {
		return 0, fmt.Errorf("load: fetching model schema: %w", err)
	}
	defer resp.Body.Close() //fairvet:ignore errflow -- response body close; nothing was buffered to lose
	if resp.StatusCode != http.StatusOK {
		return 0, fmt.Errorf("load: fetching model schema: http %d", resp.StatusCode)
	}
	var body struct {
		Default string `json:"default"`
		Models  []struct {
			Name string `json:"name"`
			Dim  int    `json:"dim"`
		} `json:"models"`
	}
	if err := json.NewDecoder(io.LimitReader(resp.Body, 4<<20)).Decode(&body); err != nil {
		return 0, fmt.Errorf("load: decoding model schema: %w", err)
	}
	if model == "" {
		model = body.Default
	}
	for _, m := range body.Models {
		if m.Name == model {
			if m.Dim <= 0 {
				return 0, fmt.Errorf("load: model %q reports dim %d", model, m.Dim)
			}
			return m.Dim, nil
		}
	}
	return 0, fmt.Errorf("load: server does not serve model %q", model)
}
