package load

import (
	"context"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/model"
	"repro/internal/serve"
	"repro/internal/testfix"
)

// trainModel fits FairKM on a synthetic fixture and wraps it as an
// artifact for serving.
func trainModel(t testing.TB, ds *dataset.Dataset, k int, seed int64) *model.Model {
	t.Helper()
	res, err := core.Run(ds, core.Config{K: k, AutoLambda: true, Seed: seed})
	if err != nil {
		t.Fatal(err)
	}
	m, err := model.New(ds, nil, res, model.Provenance{Tool: "loadtest", Seed: seed})
	if err != nil {
		t.Fatal(err)
	}
	m.Name = fmt.Sprintf("m%d", seed)
	return m
}

func newRegistry(t testing.TB, opts serve.Options, dim int) *serve.Registry {
	t.Helper()
	ds := testfix.Synth(23, 240, dim, 1, 0)
	m := trainModel(t, ds, 4, 7)
	reg := serve.NewRegistry(opts)
	if _, err := reg.Install("prod", "", m); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(reg.Close)
	return reg
}

// TestBuildDeterministic pins the open-loop determinism contract: at a
// fixed seed the schedule and payload byte sequence are identical
// across builds; a different seed produces different payloads but the
// identical schedule (send times depend only on rate).
func TestBuildDeterministic(t *testing.T) {
	cfg := Config{Rate: 500, Requests: 200, Seed: 42, Dim: 5, Models: []string{"a", "b", "c"}}
	w1, err := Build(cfg)
	if err != nil {
		t.Fatal(err)
	}
	w2, err := Build(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if w1.Fingerprint() != w2.Fingerprint() {
		t.Fatal("same seed produced different workloads")
	}
	if w1.TotalRows != w2.TotalRows {
		t.Fatalf("row totals differ: %d vs %d", w1.TotalRows, w2.TotalRows)
	}

	cfg.Seed = 43
	w3, err := Build(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if w3.Fingerprint() == w1.Fingerprint() {
		t.Error("different seeds produced identical workloads")
	}
	for i := range w3.Requests {
		if w3.Requests[i].At != w1.Requests[i].At {
			t.Fatalf("request %d scheduled at %v vs %v: schedule must depend only on the rate", i, w3.Requests[i].At, w1.Requests[i].At)
		}
	}

	// The schedule is exactly i/rate — open loop, computed up front.
	for i, r := range w1.Requests {
		want := time.Duration(float64(i) * float64(time.Second) / cfg.Rate)
		if r.At != want {
			t.Fatalf("request %d at %v, want %v", i, r.At, want)
		}
	}
}

func TestBuildZipfShapes(t *testing.T) {
	w, err := Build(Config{Rate: 1000, Requests: 3000, Seed: 1, Dim: 3, MaxBatch: 32, Models: []string{"hot", "warm", "cold"}})
	if err != nil {
		t.Fatal(err)
	}
	ones, big := 0, 0
	byModel := map[string]int{}
	for i := range w.Requests {
		r := &w.Requests[i]
		if len(r.Rows) == 1 {
			ones++
		}
		if len(r.Rows) > 8 {
			big++
		}
		if len(r.Rows) < 1 || len(r.Rows) > 32 {
			t.Fatalf("batch size %d outside [1,32]", len(r.Rows))
		}
		byModel[r.Model]++
	}
	if ones < 3000/4 {
		t.Errorf("only %d/3000 singleton batches; Zipf should favor rank 1", ones)
	}
	if big == 0 {
		t.Error("no batches above 8 rows; tail missing")
	}
	if !(byModel["hot"] > byModel["warm"] && byModel["warm"] > byModel["cold"]) {
		t.Errorf("model popularity not Zipf-ranked: %v", byModel)
	}
	if byModel["cold"] == 0 {
		t.Error("cold model never selected")
	}
}

func TestBuildValidation(t *testing.T) {
	bad := []Config{
		{Rate: 0, Requests: 10, Dim: 3},
		{Rate: -5, Requests: 10, Dim: 3},
		{Rate: 10, Requests: 0, Dim: 3},
		{Rate: 10, Requests: 10, Dim: 0},
		{Rate: 10, Requests: 10, Dim: 3, ZipfBatch: 0.5},
		{Rate: 10, Requests: 10, Dim: 3, Timeout: -time.Second},
	}
	for i, cfg := range bad {
		if _, err := Build(cfg); err == nil {
			t.Errorf("config %d accepted: %+v", i, cfg)
		}
	}
}

// slowTarget answers correctly but slowly, counting concurrent
// in-flight requests so the test can prove the generator overlapped
// them (open loop) instead of serializing (closed loop).
type slowTarget struct {
	delay    time.Duration
	inflight atomic.Int64
	peak     atomic.Int64
}

func (s *slowTarget) Do(ctx context.Context, req *Request) Outcome {
	n := s.inflight.Add(1)
	defer s.inflight.Add(-1)
	for {
		p := s.peak.Load()
		if n <= p || s.peak.CompareAndSwap(p, n) {
			break
		}
	}
	select {
	case <-time.After(s.delay):
		return Outcome{Class: ClassOK, Rows: len(req.Rows)}
	case <-ctx.Done():
		return Outcome{Class: ClassDeadline, Err: ctx.Err()}
	}
}

// TestOpenLoopIndependentOfServerSpeed: a server 20× slower than the
// inter-arrival gap must not throttle the offered load — every request
// fires on schedule (so requests pile up concurrently), and the
// workload bytes are identical to what a fast run sends.
func TestOpenLoopIndependentOfServerSpeed(t *testing.T) {
	cfg := Config{Rate: 400, Requests: 80, Seed: 7, Dim: 4}
	w, err := Build(cfg)
	if err != nil {
		t.Fatal(err)
	}
	before := w.Fingerprint()

	slow := &slowTarget{delay: 50 * time.Millisecond} // 20× the 2.5ms gap
	rep := Run(context.Background(), w, slow)
	if rep.Sent != cfg.Requests || rep.Unsent != 0 {
		t.Fatalf("sent %d/%d: a slow server throttled the open loop", rep.Sent, cfg.Requests)
	}
	if rep.OK != cfg.Requests {
		t.Fatalf("ok %d, errors? %s", rep.OK, rep.FirstError)
	}
	if peak := slow.peak.Load(); peak < 10 {
		t.Errorf("peak in-flight %d; open-loop generator should overlap a slow server far deeper", peak)
	}
	if after := w.Fingerprint(); after != before {
		t.Error("running the workload mutated it")
	}

	// A fast run sends byte-identical traffic.
	w2, err := Build(cfg)
	if err != nil {
		t.Fatal(err)
	}
	Run(context.Background(), w2, &slowTarget{delay: 0})
	if w2.Fingerprint() != before {
		t.Error("fast and slow runs sent different workloads")
	}
}

// TestRunRegistryTarget drives a real in-process registry and checks
// the report's arithmetic: outcome classes partition Sent, accepted
// rows are counted, and the latency histogram covers exactly the
// accepted requests.
func TestRunRegistryTarget(t *testing.T) {
	reg := newRegistry(t, serve.Options{Workers: 2, BatchSize: 32}, 4)
	w, err := Build(Config{Rate: 2000, Requests: 400, Seed: 11, Dim: 4, Models: []string{"prod"}, SLO: 2 * time.Second})
	if err != nil {
		t.Fatal(err)
	}
	rep := Run(context.Background(), w, &RegistryTarget{Registry: reg})
	if rep.Sent != 400 {
		t.Fatalf("sent %d, want 400", rep.Sent)
	}
	if rep.OK+rep.Shed+rep.DeadlineExceeded+rep.Errors != rep.Sent {
		t.Fatalf("outcomes don't partition sent: %+v", rep)
	}
	if rep.OK != 400 {
		t.Fatalf("ok %d (first error: %s)", rep.OK, rep.FirstError)
	}
	if rep.RowsOK != w.TotalRows {
		t.Errorf("rows ok %d, want all %d", rep.RowsOK, w.TotalRows)
	}
	if rep.Latency.Count != uint64(rep.OK) {
		t.Errorf("latency histogram has %d samples for %d accepted", rep.Latency.Count, rep.OK)
	}
	if rep.Latency.P50 <= 0 || rep.Latency.P99 < rep.Latency.P50 || rep.Latency.Max < rep.Latency.P999 {
		t.Errorf("implausible latency summary %+v", rep.Latency)
	}
	if rep.AcceptedRowsPerSec <= 0 {
		t.Error("no goodput computed")
	}
	if rep.SLO == nil || !rep.SLO.Met {
		t.Errorf("2s SLO should be trivially met: %+v", rep.SLO)
	}
	var secOK int
	for _, s := range rep.Seconds {
		secOK += s.OK
	}
	if secOK != rep.OK {
		t.Errorf("per-second series sums to %d ok, want %d", secOK, rep.OK)
	}

	// Unknown model traffic is an error class, not a crash.
	w2, err := Build(Config{Rate: 2000, Requests: 50, Seed: 11, Dim: 4, Models: []string{"ghost"}})
	if err != nil {
		t.Fatal(err)
	}
	rep2 := Run(context.Background(), w2, &RegistryTarget{Registry: reg})
	if rep2.Errors != 50 || rep2.FirstError == "" {
		t.Errorf("ghost-model run: %d errors (first %q), want 50", rep2.Errors, rep2.FirstError)
	}
}

// TestRunCancel stops the pacer mid-schedule: remaining requests count
// as unsent, in-flight ones still complete.
func TestRunCancel(t *testing.T) {
	reg := newRegistry(t, serve.Options{Workers: 1}, 4)
	w, err := Build(Config{Rate: 100, Requests: 1000, Seed: 3, Dim: 4, Models: []string{"prod"}})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 300*time.Millisecond)
	defer cancel()
	rep := Run(ctx, w, &RegistryTarget{Registry: reg})
	if rep.Unsent == 0 || rep.Sent+rep.Unsent != 1000 {
		t.Errorf("cancel accounting: sent %d unsent %d", rep.Sent, rep.Unsent)
	}
}

// TestShedDontCollapse is the acceptance pin for the overload story,
// run under -race in CI: an in-process fairserved registry with a
// stalled-worker fault injected must shed traffic (429s rise) while the
// p99 of ACCEPTED requests stays inside the latency budget — the
// admission gate converts overload into fast rejections instead of an
// unbounded queue.
func TestShedDontCollapse(t *testing.T) {
	const (
		serviceDelay = 5 * time.Millisecond   // per-request scoring cost under fault
		stallFor     = 700 * time.Millisecond // one worker wedges for the whole run
		slo          = 150 * time.Millisecond
	)
	var stalled atomic.Bool
	hook := func(rows int) {
		if stalled.CompareAndSwap(false, true) {
			time.Sleep(stallFor) // the injected fault: a wedged worker
			return
		}
		time.Sleep(serviceDelay)
	}
	ds := testfix.Synth(23, 240, 4, 1, 0)
	m := trainModel(t, ds, 4, 7)
	reg := serve.NewRegistry(serve.Options{
		Workers:       2,
		BatchSize:     64,
		MaxConcurrent: 2,
		MaxQueue:      8,
		QueueBudget:   25 * time.Millisecond,
		ScoreHook:     hook,
	})
	if _, err := reg.Install("prod", "", m); err != nil {
		t.Fatal(err)
	}
	defer reg.Close()

	// Offered 400 req/s vs ~200 req/s effective capacity (one of two
	// slots wedged, 5ms per request on the other): the server MUST shed.
	w, err := Build(Config{
		Rate:     400,
		Requests: 240,
		Seed:     99,
		Dim:      4,
		MaxBatch: 4,
		Models:   []string{"prod"},
		Timeout:  500 * time.Millisecond,
		SLO:      slo,
	})
	if err != nil {
		t.Fatal(err)
	}
	rep := Run(context.Background(), w, &RegistryTarget{Registry: reg})

	if rep.Sent != 240 {
		t.Fatalf("open loop broke: sent %d/240", rep.Sent)
	}
	if rep.OK == 0 {
		t.Fatalf("server collapsed: zero accepted requests (first error: %s)", rep.FirstError)
	}
	if rep.Shed < rep.Sent/10 {
		t.Errorf("shed %d of %d: overload must produce substantial shedding", rep.Shed, rep.Sent)
	}
	if rep.Errors > 0 {
		t.Errorf("%d hard errors under fault (first: %s); overload must shed, not fail", rep.Errors, rep.FirstError)
	}
	if rep.SLO == nil || !rep.SLO.Met {
		t.Errorf("accepted-request p99 %v blew the %v budget: queueing leaked into accepted latency (report: ok=%d shed=%d deadline=%d)",
			rep.Latency.P99, slo, rep.OK, rep.Shed, rep.DeadlineExceeded)
	}

	// The wedged request itself must have been failed by its deadline,
	// not reported as a (very slow) success.
	if rep.DeadlineExceeded == 0 {
		t.Error("the stalled request should surface as a deadline failure")
	}

	// Shed-don't-collapse: the registry still serves cleanly after the
	// storm.
	e, err := reg.Get("prod")
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := e.Assigner().AssignBatch(ds.Features[:8], nil); err != nil {
		t.Fatalf("server unhealthy after overload: %v", err)
	}
	st := e.Assigner().Stats()
	if st.Shed == 0 || st.Deadline == 0 {
		t.Errorf("serving stats missed the storm: %+v", st)
	}
}

// TestHTTPTargetClassification maps wire statuses to outcome classes
// against a scripted server, and checks FetchDim model discovery.
func TestHTTPTargetClassification(t *testing.T) {
	var calls atomic.Int64
	mux := http.NewServeMux()
	mux.HandleFunc("/v1/assign", func(w http.ResponseWriter, r *http.Request) {
		if !strings.HasPrefix(r.Header.Get("Content-Type"), "application/json") {
			t.Errorf("content type %q", r.Header.Get("Content-Type"))
		}
		switch calls.Add(1) {
		case 1:
			fmt.Fprint(w, `{"assignments":[]}`)
		case 2:
			w.Header().Set("Retry-After", "1")
			w.WriteHeader(http.StatusTooManyRequests)
		case 3:
			w.WriteHeader(http.StatusServiceUnavailable)
		default:
			w.WriteHeader(http.StatusInternalServerError)
		}
	})
	mux.HandleFunc("/v1/models", func(w http.ResponseWriter, r *http.Request) {
		fmt.Fprint(w, `{"default":"prod","models":[{"name":"prod","dim":6},{"name":"alt","dim":3}]}`)
	})
	ts := httptest.NewServer(mux)
	defer ts.Close()

	tgt := &HTTPTarget{BaseURL: ts.URL}
	req := &Request{Rows: [][]float64{{1, 2}, {3, 4}}}
	wantClasses := []Class{ClassOK, ClassShed, ClassDeadline, ClassError}
	for i, want := range wantClasses {
		o := tgt.Do(context.Background(), req)
		if o.Class != want {
			t.Errorf("call %d classified %v, want %v", i+1, o.Class, want)
		}
		if want == ClassOK && o.Rows != 2 {
			t.Errorf("ok call counted %d rows, want 2", o.Rows)
		}
	}

	// Client-side timeout → deadline class.
	ctx, cancel := context.WithTimeout(context.Background(), time.Nanosecond)
	defer cancel()
	time.Sleep(time.Millisecond)
	if o := tgt.Do(ctx, req); o.Class != ClassDeadline {
		t.Errorf("expired ctx classified %v, want deadline", o.Class)
	}

	if dim, err := FetchDim(ts.URL, ""); err != nil || dim != 6 {
		t.Errorf("FetchDim default = %d, %v; want 6", dim, err)
	}
	if dim, err := FetchDim(ts.URL, "alt"); err != nil || dim != 3 {
		t.Errorf("FetchDim alt = %d, %v; want 3", dim, err)
	}
	if _, err := FetchDim(ts.URL, "ghost"); err == nil {
		t.Error("FetchDim of unknown model succeeded")
	}
}

// TestConcurrentCollect hammers the collector from many goroutines so
// -race has something to bite on.
func TestConcurrentCollect(t *testing.T) {
	col := &collector{seconds: map[int]*SecondStats{}}
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				col.record(time.Duration(i)*time.Millisecond, Outcome{Class: Class(i % 4), Latency: time.Millisecond, Rows: 1})
			}
		}(g)
	}
	wg.Wait()
	if got := col.rep.OK + col.rep.Shed + col.rep.DeadlineExceeded + col.rep.Errors; got != 4000 {
		t.Errorf("collected %d outcomes, want 4000", got)
	}
}
