package load

import "repro/internal/telemetry"

// Histogram is internal/telemetry's HDR-style log-linear latency
// histogram. It started life in this package; the implementation (and
// its merge/nearest-rank-quantile tests) moved to telemetry when the
// serving stack grew registry-backed metrics, and load consumes it
// from there — one histogram, two consumers, identical bucket math on
// both sides of the open-loop comparison.
type Histogram = telemetry.Histogram

// Summary is the condensed quantile set reports embed (telemetry's
// Histogram.Summarize output).
type Summary = telemetry.Summary
