package load

import (
	"context"
	"fmt"
	"testing"
	"time"

	"repro/internal/serve"
)

// BenchmarkLoad records the rows/s-at-SLO trajectory: each sub-bench
// offers a fixed open-loop rate at an in-process registry and reports
// accepted goodput, accepted-request p99, and the shed fraction. Run
// with -benchtime 1x — one iteration IS the experiment; iterating
// would just repeat the same deterministic workload.
func BenchmarkLoad(b *testing.B) {
	const slo = 20 * time.Millisecond
	for _, rate := range []float64{500, 2000, 8000} {
		b.Run(fmt.Sprintf("rate=%v", rate), func(b *testing.B) {
			reg := newRegistry(b, serve.Options{
				Workers:       2,
				BatchSize:     64,
				MaxConcurrent: 4,
				MaxQueue:      32,
				QueueBudget:   slo / 2,
			}, 4)
			w, err := Build(Config{
				Rate:     rate,
				Requests: int(rate / 2), // ~500ms of traffic per operating point
				Seed:     42,
				Dim:      4,
				MaxBatch: 8,
				Models:   []string{"prod"},
				Timeout:  200 * time.Millisecond,
				SLO:      slo,
			})
			if err != nil {
				b.Fatal(err)
			}
			tgt := &RegistryTarget{Registry: reg}
			b.ResetTimer()
			var rep *Report
			for i := 0; i < b.N; i++ {
				rep = Run(context.Background(), w, tgt)
			}
			b.StopTimer()
			if rep.Sent != len(w.Requests) {
				b.Fatalf("sent %d/%d", rep.Sent, len(w.Requests))
			}
			b.ReportMetric(rep.AcceptedRowsPerSec, "rows/s")
			b.ReportMetric(float64(rep.Latency.P99)/float64(time.Millisecond), "p99-ms")
			b.ReportMetric(float64(rep.Shed)/float64(rep.Sent), "shed-frac")
			met := 0.0
			if rep.SLO != nil && rep.SLO.Met {
				met = 1
			}
			b.ReportMetric(met, "slo-met")
		})
	}
}
