package load

import (
	"context"
	"fmt"
	"io"
	"sync"
	"time"

	"repro/internal/cli"
)

// SecondStats is one second of the run, bucketed by completion time.
type SecondStats struct {
	Second   int `json:"second"`
	OK       int `json:"ok"`
	Shed     int `json:"shed"`
	Deadline int `json:"deadline"`
	Errors   int `json:"errors"`
	RowsOK   int `json:"rows_ok"`
}

// SLOResult grades accepted-request tail latency against the target.
type SLOResult struct {
	// Target is the p99 bound the run was graded against.
	Target time.Duration `json:"target_p99_ns"`
	// P99 is the achieved accepted-request p99.
	P99 time.Duration `json:"p99_ns"`
	// Met reports p99 <= Target.
	Met bool `json:"met"`
	// AcceptedRowsPerSec is the goodput at this operating point — the
	// "rows/s at p99 ≤ X ms" number the BENCH_load trajectory records.
	AcceptedRowsPerSec float64 `json:"accepted_rows_per_sec"`
}

// Report is the result of one open-loop run.
type Report struct {
	Config Config        `json:"config"`
	Wall   time.Duration `json:"wall_ns"`

	// Sent is how many scheduled requests were fired (all of them
	// unless the run context was canceled); Unsent counts the rest.
	Sent   int `json:"sent"`
	Unsent int `json:"unsent,omitempty"`
	// The outcome breakdown: Sent = OK + Shed + DeadlineExceeded + Errors.
	OK               int `json:"ok"`
	Shed             int `json:"shed"`
	DeadlineExceeded int `json:"deadline_exceeded"`
	Errors           int `json:"errors"`
	// RowsOK counts rows labelled by accepted requests.
	RowsOK int `json:"rows_ok"`

	// OfferedRate is the configured open-loop rate; AcceptedRowsPerSec
	// is RowsOK over the wall clock.
	OfferedRate        float64 `json:"offered_rate_rps"`
	AcceptedRowsPerSec float64 `json:"accepted_rows_per_sec"`

	// Latency is the accepted-request latency distribution. Shed and
	// expired requests are counted above, never mixed into it.
	Latency Summary `json:"latency"`

	// Seconds is the per-second throughput/outcome series.
	Seconds []SecondStats `json:"seconds"`

	// SLO is present when Config.SLO > 0.
	SLO *SLOResult `json:"slo,omitempty"`

	// FirstError samples the first non-OK outcome's error text.
	FirstError string `json:"first_error,omitempty"`
}

// collector accumulates outcomes; one mutex is plenty at harness rates
// and keeps the histogram simple.
type collector struct {
	mu      sync.Mutex
	rep     Report
	hist    Histogram
	seconds map[int]*SecondStats
}

func (c *collector) record(at time.Duration, o Outcome) {
	c.mu.Lock()
	defer c.mu.Unlock()
	sec := int(at / time.Second)
	cell := c.seconds[sec]
	if cell == nil {
		cell = &SecondStats{Second: sec}
		c.seconds[sec] = cell
	}
	switch o.Class {
	case ClassOK:
		c.rep.OK++
		c.rep.RowsOK += o.Rows
		cell.OK++
		cell.RowsOK += o.Rows
		c.hist.Record(o.Latency)
	case ClassShed:
		c.rep.Shed++
		cell.Shed++
	case ClassDeadline:
		c.rep.DeadlineExceeded++
		cell.Deadline++
	default:
		c.rep.Errors++
		cell.Errors++
	}
	if o.Class != ClassOK && o.Err != nil && c.rep.FirstError == "" {
		c.rep.FirstError = cli.FirstLine(o.Err)
	}
}

// Run fires the workload open-loop at tgt: each request launches at its
// precomputed offset on its own goroutine, never waiting for earlier
// responses. Canceling ctx stops the pacer (remaining requests count as
// Unsent) and waits for in-flight requests to finish.
func Run(ctx context.Context, w *Workload, tgt Target) *Report {
	col := &collector{seconds: map[int]*SecondStats{}}
	col.rep.Config = w.Config
	col.rep.OfferedRate = w.Config.Rate

	var wg sync.WaitGroup
	start := time.Now()
	for i := range w.Requests {
		req := &w.Requests[i]
		if d := time.Until(start.Add(req.At)); d > 0 {
			select {
			case <-time.After(d):
			case <-ctx.Done():
			}
		}
		if ctx.Err() != nil {
			col.rep.Unsent = len(w.Requests) - i
			break
		}
		col.rep.Sent++
		wg.Add(1)
		go func(req *Request) {
			defer wg.Done()
			rctx := ctx
			if w.Config.Timeout > 0 {
				var cancel context.CancelFunc
				rctx, cancel = context.WithTimeout(ctx, w.Config.Timeout)
				defer cancel()
			}
			sent := time.Now()
			o := tgt.Do(rctx, req)
			if o.Latency == 0 {
				o.Latency = time.Since(sent)
			}
			col.record(time.Since(start), o)
		}(req)
	}
	wg.Wait()

	rep := col.rep
	rep.Wall = time.Since(start)
	rep.Latency = col.hist.Summarize()
	if secs := rep.Wall.Seconds(); secs > 0 {
		rep.AcceptedRowsPerSec = float64(rep.RowsOK) / secs
	}
	maxSec := -1
	for s := range col.seconds {
		if s > maxSec {
			maxSec = s
		}
	}
	rep.Seconds = make([]SecondStats, maxSec+1)
	for s := 0; s <= maxSec; s++ {
		rep.Seconds[s] = SecondStats{Second: s}
		if cell := col.seconds[s]; cell != nil {
			rep.Seconds[s] = *cell
		}
	}
	if w.Config.SLO > 0 {
		rep.SLO = &SLOResult{
			Target:             w.Config.SLO,
			P99:                rep.Latency.P99,
			Met:                rep.Latency.P99 <= w.Config.SLO,
			AcceptedRowsPerSec: rep.AcceptedRowsPerSec,
		}
	}
	return &rep
}

// ms renders a duration as fractional milliseconds.
func ms(d time.Duration) string { return fmt.Sprintf("%.3fms", float64(d)/float64(time.Millisecond)) }

// Render writes the human-readable summary.
func (r *Report) Render(w io.Writer) {
	fmt.Fprintf(w, "open-loop: offered %.6g req/s for %d requests (%.2fs wall, seed %d)\n",
		r.OfferedRate, r.Sent+r.Unsent, r.Wall.Seconds(), r.Config.Seed)
	fmt.Fprintf(w, "outcomes:  ok %d  shed %d  deadline %d  error %d", r.OK, r.Shed, r.DeadlineExceeded, r.Errors)
	if r.Unsent > 0 {
		fmt.Fprintf(w, "  unsent %d", r.Unsent)
	}
	fmt.Fprintln(w)
	if r.FirstError != "" {
		fmt.Fprintf(w, "first-err: %s\n", r.FirstError)
	}
	fmt.Fprintf(w, "goodput:   %d rows accepted = %.6g rows/s\n", r.RowsOK, r.AcceptedRowsPerSec)
	l := r.Latency
	fmt.Fprintf(w, "latency:   n=%d min %s p50 %s p90 %s p99 %s p99.9 %s max %s (accepted only)\n",
		l.Count, ms(l.Min), ms(l.P50), ms(l.P90), ms(l.P99), ms(l.P999), ms(l.Max))
	if r.SLO != nil {
		verdict := "MET"
		if !r.SLO.Met {
			verdict = "MISSED"
		}
		fmt.Fprintf(w, "slo:       p99 %s vs target %s → %s (%.6g rows/s at the SLO gate)\n",
			ms(r.SLO.P99), ms(r.SLO.Target), verdict, r.SLO.AcceptedRowsPerSec)
	}
	if len(r.Seconds) > 1 {
		fmt.Fprintf(w, "per-second (ok/shed/deadline/err rows):\n")
		for _, s := range r.Seconds {
			fmt.Fprintf(w, "  t=%2ds  %5d %5d %5d %5d  %7d\n", s.Second, s.OK, s.Shed, s.Deadline, s.Errors, s.RowsOK)
		}
	}
}
