//fairvet:climain fixture: stands in for a package under cmd/
package cliexit

import (
	"errors"
	"fmt"
	"log"
	"os"
)

func exits() {
	os.Exit(1) // want `os\.Exit in a command`
}

func fatals(err error) {
	log.Fatalf("boom: %v", err) // want `log\.Fatalf in a command`
}

func fatalLn() {
	log.Fatalln("boom") // want `log\.Fatalln in a command`
}

func panics() {
	panic("boom") // want `panic in a command`
}

// Returning an error is the sanctioned failure path.
func returnsErrOK(bad bool) error {
	if bad {
		return errors.New("bad input")
	}
	return nil
}

// Plain logging and printing are fine; only the terminating variants
// bypass the contract.
func logsOK() {
	log.Printf("progress")
	fmt.Println("done")
}
