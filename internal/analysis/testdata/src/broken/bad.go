package broken

// Deliberately does not type-check: the loader must surface a
// diagnostic error, not panic or return a half-checked package.
func Bad() string { return 42 }
