//fairvet:deterministic fixture: opts this file into the deterministic scope
package nodeterminism

import (
	"fmt"
	"io"
	"math/rand"
	"sort"
	"time"
)

func wallClock() time.Time {
	return time.Now() // want `time\.Now in deterministic code`
}

func elapsed(start time.Time) time.Duration {
	return time.Since(start) // want `time\.Since in deterministic code`
}

func globalRand() int {
	return rand.Intn(10) // want `math/rand\.Intn in deterministic code`
}

func localButStillGlobalPackage(seed int64) *rand.Rand {
	return rand.New(rand.NewSource(seed)) // want `math/rand\.New in deterministic code` `math/rand\.NewSource in deterministic code`
}

// Type references to math/rand carry no global state and stay legal
// (stats.RNG itself holds a *rand.Rand).
func typeRefOK(r *rand.Rand) int64 { return r.Int63() }

func mapRangeUnsortedAppend(m map[string]int) []string {
	var keys []string
	for k := range m { // want `map range appends to a slice the function never sorts`
		keys = append(keys, k)
	}
	return keys
}

func mapRangeSortedAppend(m map[string]int) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

func mapRangeWriter(w io.Writer, m map[string]int) {
	for k, v := range m { // want `map range calls Fprintf`
		fmt.Fprintf(w, "%s=%d\n", k, v)
	}
}

func mapRangeStringConcat(m map[string]int) string {
	out := ""
	for k := range m { // want `map range concatenates a string`
		out += k
	}
	return out
}

func mapRangeSliceIndexWrite(m map[int]float64, out []float64) {
	for k, v := range m { // want `map range writes through a slice index`
		out[k] = v
	}
}

// Reading from a map in random order into an order-free reduction is
// deterministic and stays legal.
func mapRangeReduceOK(m map[string]float64) float64 {
	total := 0.0
	for _, v := range m {
		total += v
	}
	return total
}

// Ranging a slice is always fine.
func sliceRangeOK(xs []string, w io.Writer) {
	for _, x := range xs {
		fmt.Fprintln(w, x)
	}
}
