package suppress

// A justified suppression silences the finding.
func justified(a, b float64) bool {
	return a == b //fairvet:ignore floateq -- exact sentinel comparison, both sides copied from the same source
}

// An unjustified suppression keeps the finding and adds a second one
// demanding a reason.
func unjustified(a, b float64) bool {
	return a == b //fairvet:ignore floateq // want `== on floating-point values` `fairvet:ignore directive needs a justification`
}

// A directive naming a different pass does not suppress.
func wrongPass(a, b float64) bool {
	return a == b //fairvet:ignore cliexit -- not the right pass // want `== on floating-point values`
}

// A directive on its own line covers the next line.
func precedingLine(a, b float64) bool {
	//fairvet:ignore floateq -- deliberate bitwise check pinned by tests
	return a == b
}
