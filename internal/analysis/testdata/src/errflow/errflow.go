package errflow

import (
	"errors"
	"fmt"
	"strings"
)

func mk() error          { return errors.New("x") }
func two() (int, error)  { return 0, nil }
func pair() (int, error) { return 1, nil }

// ---- syntactic: blank assignment and dropped results ------------------

func blank() {
	_ = mk() // want `error result assigned to _`
}

func blankTuple() int {
	v, _ := two() // want `error result assigned to _`
	return v
}

func dropped() {
	mk() // want `call drops its error result`
}

func droppedGo() {
	go mk() // want `go call drops its error result`
}

func droppedDefer() {
	defer mk() // want `defer call drops its error result`
}

// fmt's print family and in-memory sinks never return a live error.
func exemptCallees(sb *strings.Builder) {
	fmt.Println("ok")
	sb.WriteString("ok")
}

// ---- flow-sensitive: overwrite and abandonment ------------------------

func overwrite() error {
	err := mk()
	err = mk() // want `overwrites the error err assigned at line \d+`
	return err
}

func checkedOK() error {
	err := mk()
	if err != nil {
		return err
	}
	return nil
}

func reuseOK() (int, error) {
	v, err := two()
	if err != nil {
		return 0, err
	}
	w, err := two()
	if err != nil {
		return 0, err
	}
	return v + w, nil
}

func abandoned(b bool) error {
	err := mk() // want `error assigned to err is never used on some path`
	if b {
		return nil
	}
	return err
}

// Loop retention: self-overwrite across iterations keeps the last
// error on purpose; the return reads it.
func retainLastOK(xs []int) error {
	var err error
	for _, x := range xs {
		if x < 0 {
			err = mk()
		}
	}
	return err
}

// Captured or aliased variables leave the intra-procedural domain.
func capturedOK() error {
	var err error
	f := func() { err = mk() }
	f()
	return err
}

func aliasedOK() error {
	err := mk()
	p := &err
	_ = p
	return nil
}

// Named results are used by the return by construction.
func namedOK() (err error) {
	err = mk()
	return
}

// err = nil resets the state; nothing outstanding afterwards.
func nilResetOK() error {
	err := mk()
	if err != nil {
		err = nil
	}
	return err
}

// A use in a deferred call's arguments counts at the defer statement,
// where the arguments are evaluated.
func handle(error) {}

func deferredUseOK() {
	err := mk()
	defer handle(err)
}
