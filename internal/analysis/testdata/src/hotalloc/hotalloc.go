package hotalloc

import "fmt"

//fairvet:hotpath
func hotAppend(xs []int) []int {
	return append(xs, 1) // want `append may grow its backing array`
}

// append into a reslice of an existing backing array is the sanctioned
// allocation-free shape.
//
//fairvet:hotpath
func hotResliceOK(buf []int, n int) []int {
	return append(buf[:0], n)
}

//fairvet:hotpath
func hotLiterals() int {
	xs := []int{1, 2}     // want `slice literal allocates`
	m := map[string]int{} // want `map literal allocates`
	return len(xs) + len(m)
}

type point struct{ x, y int }

//fairvet:hotpath
func hotAddr() *point {
	return &point{x: 1, y: 2} // want `&composite literal allocates`
}

// A value struct literal is a stack value: clean.
//
//fairvet:hotpath
func hotValueOK() point {
	return point{x: 1, y: 2}
}

//fairvet:hotpath
func hotClosure() func() int {
	return func() int { return 1 } // want `closure literal allocates`
}

//fairvet:hotpath
func hotMake() []int {
	return make([]int, 4) // want `make allocates`
}

//fairvet:hotpath
func hotNew() *point {
	return new(point) // want `new allocates`
}

//fairvet:hotpath
func hotFmt(x int) string {
	return fmt.Sprintf("%d", x) // want `fmt\.Sprintf allocates its formatted output`
}

//fairvet:hotpath
func hotConcat(a, b string) string {
	return a + b // want `non-constant string concatenation allocates`
}

// Constant-folded concatenation is free.
//
//fairvet:hotpath
func hotConstConcatOK() string {
	return "a" + "b"
}

//fairvet:hotpath
func hotBytes(s string) []byte {
	return []byte(s) // want `string to \[\]byte/\[\]rune conversion copies`
}

//fairvet:hotpath
func hotString(b []byte) string {
	return string(b) // want `\[\]byte/\[\]rune to string conversion copies`
}

//fairvet:hotpath
func hotBox(x int) any {
	return any(x) // want `conversion to interface boxes a int value`
}

func sink(v any) int { return 0 }

func sinkv(vs ...any) int { return len(vs) }

//fairvet:hotpath
func hotBoxedArg(x int) int {
	return sink(x) // want `passing int to an interface parameter boxes it`
}

// Pointer-shaped values fit the interface word without boxing.
//
//fairvet:hotpath
func hotPtrArgOK(p *point) int {
	return sink(p)
}

//fairvet:hotpath
func hotVariadic(xs []any) int {
	a := sinkv(xs...) // slice passed through: no per-element boxing
	b := sinkv(7)     // want `passing int to an interface parameter boxes it`
	return a + b
}

//fairvet:hotpath
func hotGo() {
	go hotValueOK() // want `go statement allocates a goroutine`
}

// Unmarked functions may allocate freely.
func coldAllocOK() []int {
	return append([]int{}, 1, 2)
}
