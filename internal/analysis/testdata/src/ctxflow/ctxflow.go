package ctxflow

import "context"

func work(ctx context.Context) error {
	<-ctx.Done()
	return ctx.Err()
}

func neverUses(ctx context.Context, n int) int { // want `neverUses receives ctx context\.Context but never uses it`
	return n * 2
}

func freshRoot(ctx context.Context) error { // want `freshRoot receives ctx context\.Context but never uses it`
	return work(context.Background()) // want `context\.Background\(\) inside freshRoot`
}

func freshTODO(ctx context.Context) error {
	_ = ctx.Err()
	return work(context.TODO()) // want `context\.TODO\(\) inside freshTODO`
}

func nilContext() error {
	return work(nil) // want `nil passed as context\.Context`
}

func propagatesOK(ctx context.Context) error {
	return work(ctx)
}

func derivesOK(ctx context.Context) error {
	sub, cancel := context.WithCancel(ctx)
	defer cancel()
	return work(sub)
}

// A blank parameter is a visible, deliberate discard and stays legal.
func blankOK(_ context.Context) int {
	return 1
}

// Functions without a context may start a root: that is where roots
// belong.
func rootOK() error {
	return work(context.Background())
}
