//fairvet:floateq fixture: bitwise equality is the contract under test here
package floateq

// The file-level marker opts every comparison in this file out.
func exactParity(a, b float64) bool {
	return a == b
}
