package floateq

func equalFloats(a, b float64) bool {
	return a == b // want `== on floating-point values`
}

func notEqualFloats(a, b float32) bool {
	return a != b // want `!= on floating-point values`
}

func constantCompare(x float64) bool {
	return x == 0 // want `== on floating-point values`
}

func nanCheck(x float64) bool {
	return x != x // want `!= on floating-point values`
}

func intCompareOK(a, b int) bool {
	return a == b
}

func stringCompareOK(a, b string) bool {
	return a == b
}

func orderedCompareOK(a, b float64) bool {
	return a < b || a > b
}
