package testonly

import "testing"

// The only file in this package is a test file; the loader must report
// that cleanly instead of fabricating an empty package.
func TestNothing(t *testing.T) {}
