package atomicfield

import "sync/atomic"

type counters struct {
	hits   uint64 // accessed via sync/atomic below
	misses uint64
	limit  int // plain field, never atomic
}

func (c *counters) hit() {
	atomic.AddUint64(&c.hits, 1)
}

func (c *counters) miss() {
	atomic.AddUint64(&c.misses, 1)
}

func (c *counters) racyRead() uint64 {
	return c.hits // want `non-atomic access to field hits`
}

func (c *counters) racyWrite() {
	c.misses = 0 // want `non-atomic access to field misses`
}

func (c *counters) atomicReadOK() uint64 {
	return atomic.LoadUint64(&c.hits)
}

func (c *counters) plainFieldOK() int {
	return c.limit
}

// Typed atomics are immune by construction: their state is unexported,
// so a non-atomic access cannot typecheck.
type typedCounter struct {
	n atomic.Int64
}

func (t *typedCounter) inc()       { t.n.Add(1) }
func (t *typedCounter) get() int64 { return t.n.Load() }
