// CI runs fairvet against this package and asserts a nonzero exit
// with all eight pass names present, proving the installed binary
// still detects each contract violation end to end.
//
//fairvet:deterministic self-check fixture: one known violation per pass
//fairvet:climain self-check fixture: one known violation per pass
package selfcheck

import (
	"context"
	"os"
	"sync"
	"sync/atomic"
	"time"
)

type gauge struct {
	n uint64
}

func (g *gauge) inc() {
	atomic.AddUint64(&g.n, 1)
}

// atomicfield: plain read of an atomically-written field.
func (g *gauge) broken() uint64 {
	return g.n
}

// nodeterminism: wall-clock read in deterministic scope.
func stamp() int64 {
	return time.Now().UnixNano()
}

// ctxflow: receives a context and drops it.
func drop(ctx context.Context) {
	<-context.Background().Done()
}

// floateq: accidental bitwise comparison.
func same(a, b float64) bool {
	return a == b
}

// cliexit: hard exit outside internal/cli.Main.
func bail() {
	os.Exit(3)
}

// lockcheck: guarded field touched without the mutex.
type box struct {
	mu sync.Mutex
	v  int // guarded by mu
}

func (b *box) peek() int {
	return b.v
}

// errflow: error result dropped at statement position.
func scrub() {
	os.Remove("nope")
}

// hotalloc: growth append on a declared hot path.
//
//fairvet:hotpath
func churn(xs []int) []int {
	return append(xs, 1)
}
