//go:build fairvet_never_enabled

package buildtags

// This file must be excluded by its build constraint: it references an
// identifier that exists nowhere, so including it breaks the
// type-check and the loader test fails loudly.
func Broken() int { return definitelyNotDefined }
