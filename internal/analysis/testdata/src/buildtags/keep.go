package buildtags

// Keep is the only declaration visible under the default build
// context; excluded.go would fail to type-check if it leaked in.
func Keep() int { return 1 }
