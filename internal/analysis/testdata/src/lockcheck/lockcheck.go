package lockcheck

import (
	"sync"
	"sync/atomic"
)

type counter struct {
	mu sync.Mutex
	n  int // guarded by mu
}

func (c *counter) inc() {
	c.mu.Lock()
	c.n++
	c.mu.Unlock()
}

func (c *counter) deferredOK() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.n
}

func (c *counter) racyRead() int {
	return c.n // want `field n is read without holding mu`
}

func (c *counter) racyWrite() {
	c.n = 0 // want `field n is written without holding mu`
}

// Lock on one branch only: the access is not protected on every path.
func (c *counter) branchUnlocked(b bool) {
	if b {
		c.mu.Lock()
	}
	c.n++ // want `field n is written without holding mu`
	if b {
		c.mu.Unlock()
	}
}

// Early return under the lock: the fallthrough path still holds it.
func (c *counter) earlyReturnOK(b bool) int {
	c.mu.Lock()
	if b {
		c.mu.Unlock()
		return 0
	}
	v := c.n
	c.mu.Unlock()
	return v
}

// Held across a loop: the back edge re-enters with the lock held.
func (c *counter) loopHeldOK(k int) {
	c.mu.Lock()
	for i := 0; i < k; i++ {
		c.n++
	}
	c.mu.Unlock()
}

// A closure does not inherit the creation site's held set.
func (c *counter) closure() func() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return func() int {
		return c.n // want `field n is read without holding mu`
	}
}

// Constructor-local values are unpublished: no lock required yet.
func newCounter() *counter {
	c := &counter{}
	c.n = 7
	return c
}

func newCounterVar() counter {
	var c counter
	c.n = 1
	return c
}

type gauge struct {
	rw  sync.RWMutex
	val int // guarded by rw
}

func (g *gauge) readOK() int {
	g.rw.RLock()
	defer g.rw.RUnlock()
	return g.val
}

func (g *gauge) writeUnderRLock() {
	g.rw.RLock()
	g.val = 1 // want `field val is written while rw is only read-locked`
	g.rw.RUnlock()
}

func (g *gauge) writeOK() {
	g.rw.Lock()
	g.val = 2
	g.rw.Unlock()
}

// Typed atomics need no guard even when annotated.
type mixed struct {
	mu   sync.Mutex
	hits atomic.Int64 // guarded by mu
}

func (m *mixed) load() int64 {
	return m.hits.Load()
}

// Malformed annotations are themselves findings.
type broken struct {
	n int // guarded by missing // want `guarded by missing: struct has no field missing`
}

type notMutex struct {
	g int
	n int // guarded by g // want `guarded by g: g is int, not a sync\.Mutex or sync\.RWMutex`
}
