package stale

// A directive that suppresses a real finding earns its keep: the
// full-suite run must not warn about it.
func live(a, b float64) bool {
	return a == b //fairvet:ignore floateq -- pinned bitwise comparison
}

// A directive with nothing to suppress is stale: the code it excused
// was fixed, so the directive must go with it.
func stale(a, b int) bool {
	return a == b //fairvet:ignore floateq -- ints compare exactly
}

// A directive naming a pass outside the running suite cannot be judged
// stale; it is left alone.
func foreign(a, b int) bool {
	return a == b //fairvet:ignore otherlinter -- not a fairvet pass
}
