package analysis

import (
	"go/ast"
	"go/token"
)

// CFG is the intra-procedural control-flow graph of one function body,
// the substrate of the flow-sensitive passes (lockcheck, errflow). It
// is built from syntax alone — no types — so it can be constructed for
// any parsed function, and it makes three simplifications that are
// sound for the analyses built on top of it:
//
//   - Statements with no internal control flow land whole in a block's
//     node list; conditions and switch tags are appended as bare
//     expression nodes, so a transfer function sees every evaluated
//     expression in order. Function literals are NOT expanded — each
//     FuncLit body is its own CFG; transfer functions must not walk
//     into them.
//   - defer is modeled with may-run exit edges: every return (and the
//     fall-off-the-end path) routes through a synthetic exit prelude
//     that replays each deferred call, innermost-last, wrapped in a
//     *DeferredNode so transfers can tell replayed calls from inline
//     ones. A DeferStmt's own node stays in its home block because its
//     arguments are evaluated there; only the call's EFFECT is
//     deferred.
//   - panic(...) statements terminate their block through the exit
//     prelude (defers run on panic), and goto edges jump to the
//     labeled block, so the early-return and restart-loop shapes in
//     this repository (stats.CentroidIndex.Nearest) build correctly.
type CFG struct {
	Blocks []*Block
	Entry  *Block
	// Exit is the single synthetic exit block (always empty); every
	// terminating path reaches it through the defer prelude.
	Exit *Block
	// Defers lists every defer statement in the body, in source order.
	Defers []*ast.DeferStmt
}

// Block is one straight-line run of nodes. Nodes are statements
// without internal control flow, bare condition/tag expressions, or
// *DeferredNode markers in the exit prelude.
type Block struct {
	Index int
	Nodes []ast.Node
	Succs []*Block
	Preds []*Block
}

// DeferredNode marks one deferred call replayed on the exit path. The
// wrapped call's arguments were already evaluated at the DeferStmt;
// only the call itself runs here.
type DeferredNode struct {
	Call *ast.CallExpr
}

func (d *DeferredNode) Pos() token.Pos { return d.Call.Pos() }
func (d *DeferredNode) End() token.Pos { return d.Call.End() }

// NewCFG builds the control-flow graph of one function body.
func NewCFG(body *ast.BlockStmt) *CFG {
	b := &cfgBuilder{
		cfg:    &CFG{},
		labels: map[string]*Block{},
	}
	b.cfg.Entry = b.newBlock()
	b.cur = b.cfg.Entry
	// prelude and Exit are allocated up front so returns anywhere in
	// the body have a stable target; prelude nodes (the deferred-call
	// replays) are filled in once every defer has been seen.
	b.prelude = b.newBlock()
	b.cfg.Exit = b.newBlock()
	b.edge(b.prelude, b.cfg.Exit)

	b.stmtList(body.List)
	if b.cur != nil {
		b.edge(b.cur, b.prelude)
	}
	for i := len(b.cfg.Defers) - 1; i >= 0; i-- {
		b.prelude.Nodes = append(b.prelude.Nodes, &DeferredNode{Call: b.cfg.Defers[i].Call})
	}
	for _, blk := range b.cfg.Blocks {
		for _, s := range blk.Succs {
			s.Preds = append(s.Preds, blk)
		}
	}
	return b.cfg
}

type loopFrame struct {
	label      string
	breakTo    *Block
	continueTo *Block // nil for switch/select frames (break only)
}

type cfgBuilder struct {
	cfg     *CFG
	cur     *Block // nil while flow is unreachable
	prelude *Block
	frames  []*loopFrame
	labels  map[string]*Block // goto / labeled-loop targets
}

func (b *cfgBuilder) newBlock() *Block {
	blk := &Block{Index: len(b.cfg.Blocks)}
	b.cfg.Blocks = append(b.cfg.Blocks, blk)
	return blk
}

func (b *cfgBuilder) edge(from, to *Block) {
	for _, s := range from.Succs {
		if s == to {
			return
		}
	}
	from.Succs = append(from.Succs, to)
}

// reach ensures there is a current block to append to; statements after
// a terminator land in a fresh unreachable block (no preds), which the
// solver reports as unreached.
func (b *cfgBuilder) reach() *Block {
	if b.cur == nil {
		b.cur = b.newBlock()
	}
	return b.cur
}

func (b *cfgBuilder) add(n ast.Node) {
	blk := b.reach()
	blk.Nodes = append(blk.Nodes, n)
}

// labelBlock returns (creating if needed) the target block of a label,
// so forward gotos can reference blocks not yet laid out.
func (b *cfgBuilder) labelBlock(name string) *Block {
	if blk, ok := b.labels[name]; ok {
		return blk
	}
	blk := b.newBlock()
	b.labels[name] = blk
	return blk
}

func (b *cfgBuilder) stmtList(list []ast.Stmt) {
	for _, s := range list {
		b.stmt(s, "")
	}
}

func (b *cfgBuilder) stmt(s ast.Stmt, label string) {
	switch s := s.(type) {
	case *ast.BlockStmt:
		b.stmtList(s.List)
	case *ast.LabeledStmt:
		switch s.Stmt.(type) {
		case *ast.ForStmt, *ast.RangeStmt, *ast.SwitchStmt, *ast.TypeSwitchStmt, *ast.SelectStmt:
			// The loop head doubles as the goto target for the label.
			b.stmt(s.Stmt, s.Label.Name)
		default:
			target := b.labelBlock(s.Label.Name)
			if b.cur != nil {
				b.edge(b.cur, target)
			}
			b.cur = target
			b.stmt(s.Stmt, "")
		}
	case *ast.IfStmt:
		b.ifStmt(s)
	case *ast.ForStmt:
		b.forStmt(s, label)
	case *ast.RangeStmt:
		b.rangeStmt(s, label)
	case *ast.SwitchStmt:
		b.switchStmt(s, label)
	case *ast.TypeSwitchStmt:
		b.typeSwitchStmt(s, label)
	case *ast.SelectStmt:
		b.selectStmt(s, label)
	case *ast.ReturnStmt:
		b.add(s)
		b.edge(b.cur, b.prelude)
		b.cur = nil
	case *ast.BranchStmt:
		b.branchStmt(s)
	case *ast.DeferStmt:
		b.cfg.Defers = append(b.cfg.Defers, s)
		b.add(s)
	case *ast.ExprStmt:
		b.add(s)
		if call, ok := s.X.(*ast.CallExpr); ok {
			if id, ok := call.Fun.(*ast.Ident); ok && id.Name == "panic" {
				b.edge(b.cur, b.prelude)
				b.cur = nil
			}
		}
	case *ast.EmptyStmt:
		// nothing
	default:
		// AssignStmt, DeclStmt, IncDecStmt, SendStmt, GoStmt, ...
		b.add(s)
	}
}

func (b *cfgBuilder) ifStmt(s *ast.IfStmt) {
	if s.Init != nil {
		b.add(s.Init)
	}
	b.add(s.Cond)
	cond := b.reach()

	thenB := b.newBlock()
	b.edge(cond, thenB)
	b.cur = thenB
	b.stmtList(s.Body.List)
	thenEnd := b.cur

	var elseEnd *Block
	hasElse := s.Else != nil
	if hasElse {
		elseB := b.newBlock()
		b.edge(cond, elseB)
		b.cur = elseB
		b.stmt(s.Else, "")
		elseEnd = b.cur
	}

	join := b.newBlock()
	if thenEnd != nil {
		b.edge(thenEnd, join)
	}
	if hasElse {
		if elseEnd != nil {
			b.edge(elseEnd, join)
		}
	} else {
		b.edge(cond, join)
	}
	b.cur = join
}

func (b *cfgBuilder) forStmt(s *ast.ForStmt, label string) {
	if s.Init != nil {
		b.add(s.Init)
	}
	var head *Block
	if label != "" {
		head = b.labelBlock(label)
	} else {
		head = b.newBlock()
	}
	b.edge(b.reach(), head)
	b.cur = head
	if s.Cond != nil {
		b.add(s.Cond)
	}
	condEnd := b.cur // cond may not split the head; keep it simple

	bodyB := b.newBlock()
	b.edge(condEnd, bodyB)
	done := b.newBlock()
	if s.Cond != nil {
		b.edge(condEnd, done)
	}

	post := b.newBlock()
	if s.Post != nil {
		post.Nodes = append(post.Nodes, s.Post)
	}
	b.edge(post, head)

	b.frames = append(b.frames, &loopFrame{label: label, breakTo: done, continueTo: post})
	b.cur = bodyB
	b.stmtList(s.Body.List)
	if b.cur != nil {
		b.edge(b.cur, post)
	}
	b.frames = b.frames[:len(b.frames)-1]
	b.cur = done
}

func (b *cfgBuilder) rangeStmt(s *ast.RangeStmt, label string) {
	b.add(s.X)
	var head *Block
	if label != "" {
		head = b.labelBlock(label)
	} else {
		head = b.newBlock()
	}
	b.edge(b.reach(), head)

	bodyB := b.newBlock()
	done := b.newBlock()
	b.edge(head, bodyB)
	b.edge(head, done)

	b.frames = append(b.frames, &loopFrame{label: label, breakTo: done, continueTo: head})
	b.cur = bodyB
	b.stmtList(s.Body.List)
	if b.cur != nil {
		b.edge(b.cur, head)
	}
	b.frames = b.frames[:len(b.frames)-1]
	b.cur = done
}

func (b *cfgBuilder) switchStmt(s *ast.SwitchStmt, label string) {
	if s.Init != nil {
		b.add(s.Init)
	}
	if s.Tag != nil {
		b.add(s.Tag)
	}
	head := b.reach()
	if label != "" {
		// A labeled switch: goto/break label resolve to its blocks.
		b.labels[label] = head
	}
	done := b.newBlock()
	b.frames = append(b.frames, &loopFrame{label: label, breakTo: done})

	var clauses []*ast.CaseClause
	for _, c := range s.Body.List {
		clauses = append(clauses, c.(*ast.CaseClause))
	}
	blocks := make([]*Block, len(clauses))
	hasDefault := false
	for i, c := range clauses {
		blocks[i] = b.newBlock()
		b.edge(head, blocks[i])
		if c.List == nil {
			hasDefault = true
		}
	}
	if !hasDefault {
		b.edge(head, done)
	}
	for i, c := range clauses {
		b.cur = blocks[i]
		for _, e := range c.List {
			b.add(e)
		}
		fallsThrough := false
		for _, st := range c.Body {
			if br, ok := st.(*ast.BranchStmt); ok && br.Tok == token.FALLTHROUGH {
				fallsThrough = true
				continue
			}
			b.stmt(st, "")
		}
		if b.cur != nil {
			if fallsThrough && i+1 < len(blocks) {
				b.edge(b.cur, blocks[i+1])
			} else {
				b.edge(b.cur, done)
			}
		}
	}
	b.frames = b.frames[:len(b.frames)-1]
	b.cur = done
}

func (b *cfgBuilder) typeSwitchStmt(s *ast.TypeSwitchStmt, label string) {
	if s.Init != nil {
		b.add(s.Init)
	}
	b.add(s.Assign)
	head := b.reach()
	if label != "" {
		b.labels[label] = head
	}
	done := b.newBlock()
	b.frames = append(b.frames, &loopFrame{label: label, breakTo: done})
	hasDefault := false
	for _, st := range s.Body.List {
		c := st.(*ast.CaseClause)
		if c.List == nil {
			hasDefault = true
		}
		blk := b.newBlock()
		b.edge(head, blk)
		b.cur = blk
		b.stmtList(c.Body)
		if b.cur != nil {
			b.edge(b.cur, done)
		}
	}
	if !hasDefault {
		b.edge(head, done)
	}
	b.frames = b.frames[:len(b.frames)-1]
	b.cur = done
}

func (b *cfgBuilder) selectStmt(s *ast.SelectStmt, label string) {
	head := b.reach()
	if label != "" {
		b.labels[label] = head
	}
	done := b.newBlock()
	b.frames = append(b.frames, &loopFrame{label: label, breakTo: done})
	for _, st := range s.Body.List {
		c := st.(*ast.CommClause)
		blk := b.newBlock()
		b.edge(head, blk)
		b.cur = blk
		if c.Comm != nil {
			b.add(c.Comm)
		}
		b.stmtList(c.Body)
		if b.cur != nil {
			b.edge(b.cur, done)
		}
	}
	b.frames = b.frames[:len(b.frames)-1]
	b.cur = done
}

func (b *cfgBuilder) branchStmt(s *ast.BranchStmt) {
	switch s.Tok {
	case token.GOTO:
		target := b.labelBlock(s.Label.Name)
		b.edge(b.reach(), target)
		b.cur = nil
	case token.BREAK:
		for i := len(b.frames) - 1; i >= 0; i-- {
			f := b.frames[i]
			if s.Label == nil || f.label == s.Label.Name {
				b.edge(b.reach(), f.breakTo)
				b.cur = nil
				return
			}
		}
		b.cur = nil // break with no matching frame: malformed, drop flow
	case token.CONTINUE:
		for i := len(b.frames) - 1; i >= 0; i-- {
			f := b.frames[i]
			if f.continueTo == nil {
				continue // switch/select frames are not continue targets
			}
			if s.Label == nil || f.label == s.Label.Name {
				b.edge(b.reach(), f.continueTo)
				b.cur = nil
				return
			}
		}
		b.cur = nil
	case token.FALLTHROUGH:
		// handled in switchStmt; a stray fallthrough terminates flow
		b.cur = nil
	}
}
