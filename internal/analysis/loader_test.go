package analysis_test

import (
	"strings"
	"testing"

	"repro/internal/analysis"
)

// The loader edge cases: build-constrained files stay out, a package
// with only test files is a clean error, and a type-check failure is a
// diagnostic — never a panic or a half-checked package.

func TestLoadDirBuildTagExcluded(t *testing.T) {
	pkg, err := analysis.NewLoader().LoadDir("testdata/src/buildtags", "fairvettest/buildtags")
	if err != nil {
		t.Fatalf("LoadDir: %v (the constrained-out file leaked into the type-check?)", err)
	}
	if len(pkg.Files) != 1 {
		t.Fatalf("loaded %d files, want 1 (excluded.go carries a //go:build constraint)", len(pkg.Files))
	}
}

func TestLoadDirTestOnlyPackage(t *testing.T) {
	_, err := analysis.NewLoader().LoadDir("testdata/src/testonly", "fairvettest/testonly")
	if err == nil {
		t.Fatal("LoadDir succeeded on a package with only _test.go files")
	}
	if !strings.Contains(err.Error(), "no non-test .go files") {
		t.Errorf("error %q does not name the cause", err)
	}
}

func TestLoadDirTypeCheckFailure(t *testing.T) {
	_, err := analysis.NewLoader().LoadDir("testdata/src/broken", "fairvettest/broken")
	if err == nil {
		t.Fatal("LoadDir succeeded on a package that cannot type-check")
	}
	if !strings.Contains(err.Error(), "typecheck") {
		t.Errorf("error %q is not the typecheck diagnostic", err)
	}
}

// TestLoadPatternsOrderStable pins the concurrency contract: however
// the worker pool schedules, results come back in go-list order.
func TestLoadPatternsOrderStable(t *testing.T) {
	loader := analysis.NewLoader()
	dirs := []string{"./testdata/src/buildtags", "./testdata/src/stale"}
	var prev []string
	for round := 0; round < 2; round++ {
		pkgs, err := loader.LoadPatterns(dirs...)
		if err != nil {
			t.Fatal(err)
		}
		var got []string
		for _, p := range pkgs {
			got = append(got, p.Path)
		}
		if len(got) != 2 {
			t.Fatalf("round %d: loaded %d packages, want 2", round, len(got))
		}
		if round > 0 && (got[0] != prev[0] || got[1] != prev[1]) {
			t.Fatalf("package order changed across runs: %v then %v", prev, got)
		}
		prev = got
	}
}
