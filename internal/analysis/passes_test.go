package analysis_test

import (
	"strings"
	"testing"

	"repro/internal/analysis"
	"repro/internal/analysis/analysistest"
)

// Each pass runs over its golden fixture package: every // want
// comment must be produced and nothing else may be reported. The
// fixtures hold at least one positive and one negative case per rule.

func TestNoDeterminism(t *testing.T) {
	analysistest.Run(t, "testdata/src/nodeterminism", analysis.NoDeterminism)
}

func TestAtomicField(t *testing.T) {
	analysistest.Run(t, "testdata/src/atomicfield", analysis.AtomicField)
}

func TestCtxFlow(t *testing.T) {
	analysistest.Run(t, "testdata/src/ctxflow", analysis.CtxFlow)
}

func TestCLIExit(t *testing.T) {
	analysistest.Run(t, "testdata/src/cliexit", analysis.CLIExit)
}

func TestFloatEq(t *testing.T) {
	analysistest.Run(t, "testdata/src/floateq", analysis.FloatEq)
}

func TestLockCheck(t *testing.T) {
	analysistest.Run(t, "testdata/src/lockcheck", analysis.LockCheck)
}

func TestErrFlow(t *testing.T) {
	analysistest.Run(t, "testdata/src/errflow", analysis.ErrFlow)
}

func TestHotAlloc(t *testing.T) {
	analysistest.Run(t, "testdata/src/hotalloc", analysis.HotAlloc)
}

// TestSuppression pins the //fairvet:ignore contract: justified
// directives silence, unjustified ones add a finding, mismatched pass
// names do nothing, own-line directives cover the next line.
func TestSuppression(t *testing.T) {
	analysistest.Run(t, "testdata/src/suppress", analysis.FloatEq)
}

// TestStaleDirective pins the RunSuite-only staleness rule: a
// justified directive that suppresses nothing is itself a finding,
// while one that earns its keep — or one naming a pass outside the
// suite — is not. Single-pass RunPass must never warn: it cannot know
// whether another pass would have matched.
func TestStaleDirective(t *testing.T) {
	loader := analysis.NewLoader()
	pkg, err := loader.LoadDir("testdata/src/stale", "fairvettest/stale")
	if err != nil {
		t.Fatal(err)
	}
	diags, err := analysis.RunSuite(analysis.Analyzers(), pkg)
	if err != nil {
		t.Fatal(err)
	}
	if len(diags) != 1 {
		t.Fatalf("RunSuite got %d diagnostics, want exactly the stale-directive warning: %+v", len(diags), diags)
	}
	if want := "suppresses no finding"; !strings.Contains(diags[0].Message, want) {
		t.Errorf("diagnostic %q does not contain %q", diags[0].Message, want)
	}
	single, err := analysis.RunPass(analysis.FloatEq, pkg)
	if err != nil {
		t.Fatal(err)
	}
	if len(single) != 0 {
		t.Errorf("RunPass warned about staleness it cannot judge: %+v", single)
	}
}

// TestSelfCheckFixtureTripsEveryPass mirrors the CI self-check
// in-process: the selfcheck fixture must produce at least one finding
// from each of the five passes.
func TestSelfCheckFixtureTripsEveryPass(t *testing.T) {
	loader := analysis.NewLoader()
	pkg, err := loader.LoadDir("testdata/src/selfcheck", "fairvettest/selfcheck")
	if err != nil {
		t.Fatal(err)
	}
	for _, a := range analysis.Analyzers() {
		diags, err := analysis.RunPass(a, pkg)
		if err != nil {
			t.Fatalf("%s: %v", a.Name, err)
		}
		if len(diags) == 0 {
			t.Errorf("pass %s found nothing in the selfcheck fixture; the CI self-check would pass vacuously", a.Name)
		}
	}
}

// TestAnalyzersStable pins the suite composition: renaming or dropping
// a pass silently would also silence its suppression directives.
func TestAnalyzersStable(t *testing.T) {
	want := []string{"nodeterminism", "atomicfield", "ctxflow", "cliexit", "floateq", "lockcheck", "errflow", "hotalloc"}
	got := analysis.Analyzers()
	if len(got) != len(want) {
		t.Fatalf("got %d analyzers, want %d", len(got), len(want))
	}
	for i, a := range got {
		if a.Name != want[i] {
			t.Errorf("analyzer %d = %q, want %q", i, a.Name, want[i])
		}
		if a.Doc == "" || a.Run == nil {
			t.Errorf("analyzer %q missing Doc or Run", a.Name)
		}
	}
}
