// Package analysis is fairvet's static-analysis framework: a
// dependency-free mirror of the golang.org/x/tools/go/analysis API
// shape (Analyzer / Pass / Diagnostic) built on the standard library's
// go/ast + go/types with the "source" importer, so the repository's
// determinism, concurrency and CLI contracts can be machine-checked
// without adding a module dependency the build environment may not
// have.
//
// The eight passes promote contracts that DESIGN.md previously stated
// only in prose:
//
//   - nodeterminism: no time.Now / global math/rand / map-range into
//     ordered output inside the deterministic packages.
//   - atomicfield: a struct field ever passed to sync/atomic must
//     never be read or written non-atomically.
//   - ctxflow: a function that receives a context.Context must not
//     drop it (unused param, or context.Background()/TODO()/nil fed to
//     a callee that accepts a context).
//   - cliexit: commands under cmd/ must route termination through
//     internal/cli.Main — no os.Exit / log.Fatal* / panic.
//   - floateq: no ==/!= on floating-point operands outside files that
//     opt in with a //fairvet:floateq marker.
//   - lockcheck: a struct field annotated `guarded by <mutex>` must
//     only be touched while that mutex is held on every path
//     (flow-sensitive over the per-function CFG; defer-aware).
//   - errflow: error results must not be blank-assigned, dropped at
//     statement position, or overwritten/abandoned before any use on
//     some path (flow-sensitive).
//   - hotalloc: functions marked //fairvet:hotpath must contain no
//     allocating constructs.
//
// The last three run on a shared flow-sensitive layer: a per-function
// control-flow graph (cfg.go) and a generic forward worklist solver
// (dataflow.go), both stdlib-only.
//
// Escape hatch: a finding can be suppressed with an inline
// justification comment on the same line or the line above:
//
//	//fairvet:ignore <pass>[,<pass>...] -- <why this is sound>
//
// A suppression without a justification is itself reported, and — when
// the full suite runs (RunSuite) — so is a directive that suppresses
// nothing, so stale suppressions cannot linger after the code they
// excused is fixed. File-level markers (//fairvet:deterministic,
// //fairvet:climain, //fairvet:floateq) opt a file in or out of
// scope-limited passes; see each pass's Doc.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"regexp"
	"sort"
	"strings"
)

// Analyzer is one named pass. Run inspects a fully type-checked
// package via the Pass and reports findings with Pass.Reportf.
type Analyzer struct {
	Name string
	Doc  string
	Run  func(*Pass) error
}

// Pass carries one type-checked package through one Analyzer.
type Pass struct {
	Analyzer *Analyzer
	// Path is the package's import path (fabricated for analysistest
	// fixture packages; scope-limited passes must therefore also honor
	// their file markers).
	Path      string
	Fset      *token.FileSet
	Files     []*ast.File
	Pkg       *types.Package
	TypesInfo *types.Info

	diags []Diagnostic
}

// Diagnostic is one finding at one position.
type Diagnostic struct {
	Pos     token.Pos
	Message string
	// Pass names the Analyzer that produced the finding (set by the
	// driver; used for suppression matching and rendering).
	Pass string
}

// Reportf records a finding.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.diags = append(p.diags, Diagnostic{Pos: pos, Message: fmt.Sprintf(format, args...), Pass: p.Analyzer.Name})
}

// RunPass executes one analyzer over one loaded package, applies the
// //fairvet:ignore suppression filter, and returns the surviving
// diagnostics sorted by position. Zero-match directive warnings are
// not emitted here — a single pass cannot know whether a directive
// aimed at another pass is stale; use RunSuite for that.
func RunPass(a *Analyzer, pkg *Package) ([]Diagnostic, error) {
	return runAnalyzers([]*Analyzer{a}, pkg, false)
}

// RunSuite executes every analyzer in as over one loaded package,
// applies the //fairvet:ignore filter once across the combined
// findings, and additionally reports directives that matched nothing —
// a suppression that no longer suppresses is stale and must go.
func RunSuite(as []*Analyzer, pkg *Package) ([]Diagnostic, error) {
	return runAnalyzers(as, pkg, true)
}

func runAnalyzers(as []*Analyzer, pkg *Package, wantZeroMatch bool) ([]Diagnostic, error) {
	var all []Diagnostic
	for _, a := range as {
		pass := &Pass{
			Analyzer:  a,
			Path:      pkg.Path,
			Fset:      pkg.Fset,
			Files:     pkg.Files,
			Pkg:       pkg.Types,
			TypesInfo: pkg.Info,
		}
		if err := a.Run(pass); err != nil {
			return nil, fmt.Errorf("%s: %s: %w", a.Name, pkg.Path, err)
		}
		all = append(all, pass.diags...)
	}
	var ranPasses []string
	if wantZeroMatch {
		for _, a := range as {
			ranPasses = append(ranPasses, a.Name)
		}
	}
	diags := applySuppressions(pkg, all, ranPasses)
	sort.SliceStable(diags, func(i, j int) bool {
		pi, pj := pkg.Fset.Position(diags[i].Pos), pkg.Fset.Position(diags[j].Pos)
		if pi.Filename != pj.Filename {
			return pi.Filename < pj.Filename
		}
		if pi.Line != pj.Line {
			return pi.Line < pj.Line
		}
		if pi.Column != pj.Column {
			return pi.Column < pj.Column
		}
		return diags[i].Message < diags[j].Message
	})
	return diags, nil
}

// Analyzers is the full fairvet suite in stable order.
func Analyzers() []*Analyzer {
	return []*Analyzer{
		NoDeterminism,
		AtomicField,
		CtxFlow,
		CLIExit,
		FloatEq,
		LockCheck,
		ErrFlow,
		HotAlloc,
	}
}

// ---- markers & suppressions -------------------------------------------

// ignoreRe matches one suppression directive:
// //fairvet:ignore pass1,pass2 -- reason. A line comment runs to end
// of line, so an analysistest `// want` annotation after a directive
// lands inside the same comment; the final group strips it from the
// captured reason.
var ignoreRe = regexp.MustCompile(`^//fairvet:ignore\s+([a-z,]+)(?:\s*--\s*(.*?))?(?:\s*// want\s.*)?$`)

type ignoreDirective struct {
	passes []string
	reason string
	pos    token.Pos
	// matched counts suppressed findings; bareHit marks an unjustified
	// directive that would have suppressed something. Both feed the
	// stale-directive warning, and sharing one *ignoreDirective between
	// the two covered lines keeps the counts unified.
	matched int
	bareHit bool
}

// fileIgnores maps source line -> directives that apply to findings on
// that line, and returns all directives in source order. A directive
// on its own line covers the next line; a trailing directive covers
// its own line.
func fileIgnores(fset *token.FileSet, f *ast.File) (map[int][]*ignoreDirective, []*ignoreDirective) {
	out := map[int][]*ignoreDirective{}
	var all []*ignoreDirective
	for _, cg := range f.Comments {
		for _, c := range cg.List {
			m := ignoreRe.FindStringSubmatch(c.Text)
			if m == nil {
				continue
			}
			d := &ignoreDirective{
				passes: strings.Split(m[1], ","),
				reason: strings.TrimSpace(m[2]),
				pos:    c.Pos(),
			}
			all = append(all, d)
			line := fset.Position(c.Pos()).Line
			// Trailing comment: the line holds code before the comment.
			// Own-line comment: the comment starts the line. Covering both
			// the directive's line and the next is simpler and safe — a
			// trailing directive's "next line" is almost always unrelated
			// code whose findings (if any) a reviewer would see anyway,
			// and the reason requirement keeps suppressions auditable.
			out[line] = append(out[line], d)
			out[line+1] = append(out[line+1], d)
		}
	}
	return out, all
}

func (d *ignoreDirective) matches(pass string) bool {
	for _, p := range d.passes {
		if p == pass {
			return true
		}
	}
	return false
}

// applySuppressions drops diagnostics covered by a justified
// //fairvet:ignore directive and reports unjustified directives that
// would otherwise have suppressed something. When ranPasses is
// non-empty (full-suite mode), a directive naming at least one pass
// that ran but matching zero findings is reported as stale.
func applySuppressions(pkg *Package, diags []Diagnostic, ranPasses []string) []Diagnostic {
	ignores := map[string]map[int][]*ignoreDirective{}
	var directives []*ignoreDirective
	for _, f := range pkg.Files {
		name := pkg.Fset.Position(f.Pos()).Filename
		byLine, all := fileIgnores(pkg.Fset, f)
		ignores[name] = byLine
		directives = append(directives, all...)
	}
	var out []Diagnostic
	flaggedBare := map[token.Pos]bool{}
	for _, d := range diags {
		pos := pkg.Fset.Position(d.Pos)
		suppressed := false
		for _, dir := range ignores[pos.Filename][pos.Line] {
			if !dir.matches(d.Pass) {
				continue
			}
			if dir.reason == "" {
				dir.bareHit = true
				if !flaggedBare[dir.pos] {
					flaggedBare[dir.pos] = true
					out = append(out, Diagnostic{
						Pos:     dir.pos,
						Pass:    d.Pass,
						Message: "fairvet:ignore directive needs a justification: write //fairvet:ignore " + strings.Join(dir.passes, ",") + " -- <reason>",
					})
				}
				continue
			}
			dir.matched++
			suppressed = true
			break
		}
		if !suppressed {
			out = append(out, d)
		}
	}
	for _, dir := range directives {
		if dir.matched > 0 || dir.bareHit {
			continue
		}
		ran := ""
		for _, p := range dir.passes {
			for _, r := range ranPasses {
				if p == r {
					ran = p
					break
				}
			}
			if ran != "" {
				break
			}
		}
		if ran == "" {
			continue // can't judge staleness: none of its passes ran
		}
		out = append(out, Diagnostic{
			Pos:     dir.pos,
			Pass:    ran,
			Message: "fairvet:ignore " + strings.Join(dir.passes, ",") + " suppresses no finding; delete the stale directive",
		})
	}
	return out
}

// hasFileMarker reports whether a file carries a //fairvet:<name>
// marker comment (anywhere in the file, conventionally near the top).
// Trailing text after the marker is a free-form justification.
func hasFileMarker(f *ast.File, name string) bool {
	prefix := "//fairvet:" + name
	for _, cg := range f.Comments {
		for _, c := range cg.List {
			if c.Text == prefix || strings.HasPrefix(c.Text, prefix+" ") {
				return true
			}
		}
	}
	return false
}

// ---- shared type helpers ----------------------------------------------

// isPkgCall reports whether call is pkgpath.name(...) resolved through
// the type info (robust to import renames).
func isPkgCall(info *types.Info, call *ast.CallExpr, pkgPath, name string) bool {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return false
	}
	obj := info.Uses[sel.Sel]
	if obj == nil || obj.Pkg() == nil {
		return false
	}
	return obj.Pkg().Path() == pkgPath && obj.Name() == name
}

// selectsPackage resolves a selector's qualifier to an imported
// package, returning its path ("" when the selector is not a package
// selection).
func selectsPackage(info *types.Info, sel *ast.SelectorExpr) string {
	id, ok := sel.X.(*ast.Ident)
	if !ok {
		return ""
	}
	pn, ok := info.Uses[id].(*types.PkgName)
	if !ok {
		return ""
	}
	return pn.Imported().Path()
}

// isContextType reports whether t is context.Context.
func isContextType(t types.Type) bool {
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj != nil && obj.Pkg() != nil && obj.Pkg().Path() == "context" && obj.Name() == "Context"
}

// isFloat reports whether t's underlying type is a floating-point
// type (including untyped float constants).
func isFloat(t types.Type) bool {
	b, ok := t.Underlying().(*types.Basic)
	if !ok {
		return false
	}
	return b.Info()&types.IsFloat != 0
}
