package analysis

import (
	"go/ast"
	"go/types"
	"strings"
)

// detPackages are the import paths whose every file must be
// deterministic: given the same inputs and seed they must produce
// bit-identical outputs regardless of wall-clock, scheduling or global
// RNG state. (internal/load is deliberately absent: only its workload
// construction is deterministic, and load.go opts in with a
// //fairvet:deterministic file marker.)
var detPackages = map[string]bool{
	"repro/internal/core":      true,
	"repro/internal/engine":    true,
	"repro/internal/kmeans":    true,
	"repro/internal/stats":     true,
	"repro/internal/coreset":   true,
	"repro/internal/pipeline":  true,
	"repro/internal/model":     true,
	"repro/internal/dataset":   true,
	"repro/internal/telemetry": true,
}

// NoDeterminism flags nondeterminism escape hatches inside the
// deterministic packages (or any file marked //fairvet:deterministic):
// wall-clock reads (time.Now/Since/Until), the global math/rand source
// (all randomness must flow through a seeded stats.RNG), and ranging
// over a map while building ordered output (slice appends, indexed
// slice writes, string building, io/encode calls) — map iteration
// order would leak into bytes that are contractually reproducible.
var NoDeterminism = &Analyzer{
	Name: "nodeterminism",
	Doc:  "forbid time.Now, global math/rand and ordered-output map ranges in deterministic packages",
	Run:  runNoDeterminism,
}

func runNoDeterminism(pass *Pass) error {
	for _, f := range pass.Files {
		if !detPackages[pass.Path] && !hasFileMarker(f, "deterministic") {
			continue
		}
		for _, decl := range f.Decls {
			// Slice appends inside a map range are only order-hazardous
			// when the collected slice is never sorted: the canonical
			// deterministic idiom (append keys, sort, iterate sorted)
			// must stay clean, so append triggers are gated on the
			// enclosing function never touching sort/slices.
			sorts := false
			if fd, ok := decl.(*ast.FuncDecl); ok {
				sorts = referencesSortPkg(pass, fd)
			}
			ast.Inspect(decl, func(n ast.Node) bool {
				switch n := n.(type) {
				case *ast.SelectorExpr:
					checkDetSelector(pass, n)
				case *ast.RangeStmt:
					checkMapRangeOrder(pass, n, sorts)
				}
				return true
			})
		}
	}
	return nil
}

// referencesSortPkg reports whether the function mentions the sort or
// slices packages anywhere in its body.
func referencesSortPkg(pass *Pass, fd *ast.FuncDecl) bool {
	if fd.Body == nil {
		return false
	}
	found := false
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		if found {
			return false
		}
		if sel, ok := n.(*ast.SelectorExpr); ok {
			switch selectsPackage(pass.TypesInfo, sel) {
			case "sort", "slices":
				found = true
			}
		}
		return true
	})
	return found
}

func checkDetSelector(pass *Pass, sel *ast.SelectorExpr) {
	pkgPath := selectsPackage(pass.TypesInfo, sel)
	switch pkgPath {
	case "time":
		switch sel.Sel.Name {
		case "Now", "Since", "Until":
			pass.Reportf(sel.Pos(), "time.%s in deterministic code: results must not depend on wall-clock", sel.Sel.Name)
		}
	case "math/rand", "math/rand/v2":
		// Type references (rand.Rand, rand.Source) carry no global
		// state; functions, variables and method values do.
		if _, isType := pass.TypesInfo.Uses[sel.Sel].(*types.TypeName); !isType {
			pass.Reportf(sel.Pos(), "%s.%s in deterministic code: randomness must flow through a seeded stats.RNG", pkgPath, sel.Sel.Name)
		}
	}
}

// checkMapRangeOrder flags `for ... := range m` over a map when the
// loop body observably depends on iteration order: it appends to a
// slice (unless the enclosing function sorts afterwards), writes
// through a slice index, concatenates strings, or calls
// write/encode-style sinks.
func checkMapRangeOrder(pass *Pass, rng *ast.RangeStmt, sortsLater bool) {
	t := pass.TypesInfo.Types[rng.X].Type
	if t == nil {
		return
	}
	if _, isMap := t.Underlying().(*types.Map); !isMap {
		return
	}
	ordered := ""
	ast.Inspect(rng.Body, func(n ast.Node) bool {
		if ordered != "" {
			return false
		}
		switch n := n.(type) {
		case *ast.CallExpr:
			if id, ok := n.Fun.(*ast.Ident); ok && id.Name == "append" && !sortsLater {
				if _, isBuiltin := pass.TypesInfo.Uses[id].(*types.Builtin); isBuiltin {
					ordered = "appends to a slice the function never sorts"
				}
			}
			if s, ok := n.Fun.(*ast.SelectorExpr); ok && orderedSinkMethod(s.Sel.Name) {
				ordered = "calls " + s.Sel.Name
			}
		case *ast.AssignStmt:
			for _, lhs := range n.Lhs {
				ix, ok := lhs.(*ast.IndexExpr)
				if !ok {
					continue
				}
				bt := pass.TypesInfo.Types[ix.X].Type
				if bt == nil {
					continue
				}
				if _, isSlice := bt.Underlying().(*types.Slice); isSlice {
					ordered = "writes through a slice index"
				}
			}
			if n.Tok.String() == "+=" && len(n.Lhs) == 1 {
				lt := pass.TypesInfo.Types[n.Lhs[0]].Type
				if lt != nil {
					if b, ok := lt.Underlying().(*types.Basic); ok && b.Info()&types.IsString != 0 {
						ordered = "concatenates a string"
					}
				}
			}
		}
		return true
	})
	if ordered != "" {
		pass.Reportf(rng.Pos(), "map range %s: iteration order is random, so ordered output becomes nondeterministic; iterate a sorted key slice instead", ordered)
	}
}

func orderedSinkMethod(name string) bool {
	switch name {
	case "Write", "WriteString", "WriteByte", "WriteRune", "Encode",
		"Print", "Printf", "Println", "Fprint", "Fprintf", "Fprintln":
		return true
	}
	return strings.HasPrefix(name, "Write")
}
