package analysis

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/build"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"runtime"
	"sort"
	"strings"
	"sync"
)

// Package is one loaded, parsed and fully type-checked package ready
// to be run through the analyzers.
type Package struct {
	Path  string // import path
	Dir   string
	Fset  *token.FileSet
	Files []*ast.File
	Types *types.Package
	Info  *types.Info
}

// Loader parses and type-checks packages with one shared FileSet and
// one shared source importer, so the (expensive) from-source
// type-check of common dependencies happens once per process, not once
// per analyzed package.
//
// LoadPatterns type-checks the listed packages concurrently in a
// bounded worker pool. The shared pieces are safe for that: the
// FileSet serializes internally, and the source importer is wrapped in
// a single-flight mutex (it is not concurrency-safe, and serializing
// it also means a dependency is only ever type-checked once). The
// returned package order is the `go list` order regardless of which
// worker finishes first.
type Loader struct {
	fset *token.FileSet
	imp  types.Importer
}

// NewLoader returns a Loader. The process must be inside the module
// being analyzed (the source importer resolves module-local imports
// through the go command, which needs a module context).
func NewLoader() *Loader {
	fset := token.NewFileSet()
	return &Loader{fset: fset, imp: &lockedImporter{imp: importer.ForCompiler(fset, "source", nil)}}
}

// lockedImporter makes the stdlib source importer usable from the
// concurrent type-check workers: Import calls are serialized, and the
// importer's own package cache keeps repeat imports cheap.
type lockedImporter struct {
	mu  sync.Mutex
	imp types.Importer
}

func (li *lockedImporter) Import(path string) (*types.Package, error) {
	li.mu.Lock()
	defer li.mu.Unlock()
	return li.imp.Import(path)
}

// LoadDir loads the single package rooted at dir (non-test .go files
// only, honoring build constraints) under the given import path. It
// does not consult the go command, so it also works for fixture
// packages under testdata/ that package patterns never match.
func (l *Loader) LoadDir(dir, importPath string) (*Package, error) {
	ents, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var names []string
	for _, e := range ents {
		n := e.Name()
		if e.IsDir() || !strings.HasSuffix(n, ".go") || strings.HasSuffix(n, "_test.go") {
			continue
		}
		// Honor //go:build constraints and GOOS/GOARCH file suffixes the
		// same way the go command would; a constrained-out file must not
		// leak findings (or type errors) into the analysis.
		if match, err := build.Default.MatchFile(dir, n); err != nil {
			return nil, fmt.Errorf("%s: %w", filepath.Join(dir, n), err)
		} else if !match {
			continue
		}
		names = append(names, n)
	}
	sort.Strings(names)
	if len(names) == 0 {
		return nil, fmt.Errorf("%s: no non-test .go files", dir)
	}
	return l.load(importPath, dir, names)
}

// LoadPatterns expands package patterns (./..., explicit directories,
// import paths) through `go list` and loads each resulting package.
// Explicit directory arguments are passed through go list too, so
// testdata fixture directories can be named directly even though
// wildcard patterns skip them.
func (l *Loader) LoadPatterns(patterns ...string) ([]*Package, error) {
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	metas, err := goList(patterns)
	if err != nil {
		return nil, err
	}
	// Parse and type-check concurrently: each worker owns one package,
	// results land in go-list order so downstream output is stable. The
	// pool is bounded — package loading is CPU-bound, and past NumCPU
	// extra workers only contend on the importer lock.
	workers := runtime.NumCPU()
	if workers > 8 {
		workers = 8
	}
	if workers < 1 {
		workers = 1
	}
	type result struct {
		pkg *Package
		err error
	}
	results := make([]result, len(metas))
	sem := make(chan struct{}, workers)
	var wg sync.WaitGroup
	for i, m := range metas {
		if len(m.GoFiles) == 0 {
			continue
		}
		wg.Add(1)
		go func(i int, m listMeta) {
			defer wg.Done()
			sem <- struct{}{}
			defer func() { <-sem }()
			p, err := l.load(m.ImportPath, m.Dir, m.GoFiles)
			results[i] = result{pkg: p, err: err}
		}(i, m)
	}
	wg.Wait()
	var pkgs []*Package
	for i := range results {
		if results[i].err != nil {
			return nil, results[i].err
		}
		if results[i].pkg != nil {
			pkgs = append(pkgs, results[i].pkg)
		}
	}
	return pkgs, nil
}

func (l *Loader) load(importPath, dir string, fileNames []string) (*Package, error) {
	var files []*ast.File
	for _, name := range fileNames {
		f, err := parser.ParseFile(l.fset, filepath.Join(dir, name), nil, parser.ParseComments)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	info := &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
		Implicits:  map[ast.Node]types.Object{},
	}
	conf := types.Config{Importer: l.imp}
	pkg, err := conf.Check(importPath, l.fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("typecheck %s: %w", importPath, err)
	}
	return &Package{Path: importPath, Dir: dir, Fset: l.fset, Files: files, Types: pkg, Info: info}, nil
}

type listMeta struct {
	ImportPath string
	Dir        string
	GoFiles    []string
	Error      *struct{ Err string }
}

func goList(patterns []string) ([]listMeta, error) {
	args := append([]string{"list", "-json"}, patterns...)
	cmd := exec.Command("go", args...)
	var out, stderr bytes.Buffer
	cmd.Stdout = &out
	cmd.Stderr = &stderr
	if err := cmd.Run(); err != nil {
		msg := strings.TrimSpace(stderr.String())
		if msg == "" {
			msg = err.Error()
		}
		return nil, fmt.Errorf("go list %s: %s", strings.Join(patterns, " "), msg)
	}
	dec := json.NewDecoder(&out)
	var metas []listMeta
	for {
		var m listMeta
		if err := dec.Decode(&m); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("go list: %w", err)
		}
		if m.Error != nil {
			return nil, fmt.Errorf("go list %s: %s", m.ImportPath, m.Error.Err)
		}
		metas = append(metas, m)
	}
	return metas, nil
}

// ChdirModuleRoot walks up from the working directory to the enclosing
// go.mod and makes that directory both the process working directory
// and the default build context root, so fairvet behaves identically
// no matter which subdirectory it is launched from.
func ChdirModuleRoot() (string, error) {
	dir, err := os.Getwd()
	if err != nil {
		return "", err
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			if err := os.Chdir(dir); err != nil {
				return "", err
			}
			build.Default.Dir = dir
			return dir, nil
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			return "", fmt.Errorf("no go.mod found above %s", dir)
		}
		dir = parent
	}
}
