package analysis

import (
	"go/ast"
	"go/parser"
	"go/token"
	"testing"
)

// The CFG tests build graphs from bare syntax (the builder is
// type-free) and check the shapes the flow-sensitive passes depend on:
// every return routes through the defer prelude, early returns leave
// the fallthrough arm live, goto loops terminate, and the solver's
// must-join takes the weakest state across merging paths.

func parseFuncBody(t *testing.T, body string) *ast.BlockStmt {
	t.Helper()
	src := "package p\nfunc f() {\n" + body + "\n}\n"
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "f.go", src, 0)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	return f.Decls[0].(*ast.FuncDecl).Body
}

// lockDepthLattice is a miniature must-analysis: the state is the
// guaranteed lock depth, joins take the minimum.
var lockDepthLattice = Lattice[int]{
	Clone: func(s int) int { return s },
	Join: func(dst, src int) int {
		if src < dst {
			return src
		}
		return dst
	},
	Equal: func(a, b int) bool { return a == b },
}

// lockDepth interprets calls to the identifiers lock/unlock, including
// replayed deferred calls.
func lockDepth(s int, n ast.Node) int {
	if d, ok := n.(*DeferredNode); ok {
		return lockDepth(s, d.Call)
	}
	if _, ok := n.(*ast.DeferStmt); ok {
		return s // effect replays at exit
	}
	ast.Inspect(n, func(c ast.Node) bool {
		if call, ok := c.(*ast.CallExpr); ok {
			if id, ok := call.Fun.(*ast.Ident); ok {
				switch id.Name {
				case "lock":
					s++
				case "unlock":
					s--
				}
			}
		}
		return true
	})
	return s
}

// probeBlock finds the block holding the `probe()` statement.
func probeBlock(t *testing.T, g *CFG) *Block {
	t.Helper()
	for _, blk := range g.Blocks {
		for _, n := range blk.Nodes {
			es, ok := n.(*ast.ExprStmt)
			if !ok {
				continue
			}
			if call, ok := es.X.(*ast.CallExpr); ok {
				if id, ok := call.Fun.(*ast.Ident); ok && id.Name == "probe" {
					return blk
				}
			}
		}
	}
	t.Fatal("no probe() statement in CFG")
	return nil
}

func solveDepth(g *CFG) FlowResult[int] {
	return Solve(g, lockDepthLattice, 0, lockDepth)
}

func TestCFGExitSinglePrelude(t *testing.T) {
	g := NewCFG(parseFuncBody(t, `
		x := 1
		_ = x
	`))
	if len(g.Exit.Preds) != 1 {
		t.Fatalf("Exit has %d preds, want exactly the prelude", len(g.Exit.Preds))
	}
	if len(g.Exit.Nodes) != 0 {
		t.Errorf("Exit block is not empty: %d nodes", len(g.Exit.Nodes))
	}
}

func TestCFGEarlyReturn(t *testing.T) {
	g := NewCFG(parseFuncBody(t, `
		lock()
		if c {
			unlock()
			return
		}
		probe()
		unlock()
	`))
	res := solveDepth(g)
	for _, blk := range g.Blocks {
		if len(blk.Nodes) > 0 && !res.Reached[blk.Index] {
			t.Errorf("block %d with nodes is unreached", blk.Index)
		}
	}
	// The early return peeled off the unlocked path; the fallthrough
	// arm still holds the lock.
	pb := probeBlock(t, g)
	if got := res.In[pb.Index]; got != 1 {
		t.Errorf("lock depth at probe() = %d, want 1 (early return must not drain the fallthrough arm)", got)
	}
	// Both arms unlock, so the exit is balanced.
	if got := res.In[g.Exit.Index]; got != 0 {
		t.Errorf("lock depth at exit = %d, want 0", got)
	}
}

func TestCFGBranchMustJoin(t *testing.T) {
	g := NewCFG(parseFuncBody(t, `
		if c {
			lock()
		}
		probe()
	`))
	res := solveDepth(g)
	pb := probeBlock(t, g)
	if got := res.In[pb.Index]; got != 0 {
		t.Errorf("lock depth at probe() = %d, want 0 (held on one path only is not held)", got)
	}
}

func TestCFGDeferUnlock(t *testing.T) {
	g := NewCFG(parseFuncBody(t, `
		lock()
		defer unlock()
		if c {
			return
		}
		probe()
	`))
	if len(g.Defers) != 1 {
		t.Fatalf("recorded %d defers, want 1", len(g.Defers))
	}
	prelude := g.Exit.Preds[0]
	deferred := 0
	for _, n := range prelude.Nodes {
		if _, ok := n.(*DeferredNode); ok {
			deferred++
		}
	}
	if deferred != 1 {
		t.Fatalf("prelude replays %d deferred calls, want 1", deferred)
	}
	if len(prelude.Preds) < 2 {
		t.Errorf("prelude has %d preds, want >=2 (early return and fall-off end)", len(prelude.Preds))
	}
	res := solveDepth(g)
	// The deferred unlock has not run yet at probe()...
	pb := probeBlock(t, g)
	if got := res.In[pb.Index]; got != 1 {
		t.Errorf("lock depth at probe() = %d, want 1 (defer must not release early)", got)
	}
	// ...but has on entry to Exit, on every path.
	if got := res.In[g.Exit.Index]; got != 0 {
		t.Errorf("lock depth at exit = %d, want 0 (prelude must replay the deferred unlock)", got)
	}
}

func TestCFGDefersReplayInReverse(t *testing.T) {
	g := NewCFG(parseFuncBody(t, `
		defer first()
		defer second()
	`))
	prelude := g.Exit.Preds[0]
	var order []string
	for _, n := range prelude.Nodes {
		if d, ok := n.(*DeferredNode); ok {
			order = append(order, d.Call.Fun.(*ast.Ident).Name)
		}
	}
	if len(order) != 2 || order[0] != "second" || order[1] != "first" {
		t.Errorf("deferred replay order = %v, want [second first] (LIFO)", order)
	}
}

func TestCFGGotoLoop(t *testing.T) {
	// The restart-loop shape of stats.CentroidIndex.Nearest: a backward
	// goto forming a loop and a forward goto jumping out.
	g := NewCFG(parseFuncBody(t, `
	restart:
		n++
		if n < k {
			goto restart
		}
		if d {
			goto out
		}
		probe()
	out:
		return
	`))
	res := solveDepth(g)
	for _, blk := range g.Blocks {
		if len(blk.Nodes) > 0 && !res.Reached[blk.Index] {
			t.Errorf("block %d with nodes is unreached", blk.Index)
		}
	}
	if !res.Reached[g.Exit.Index] {
		t.Error("exit unreached: goto loop did not terminate in the solver")
	}
}

func TestCFGDeadCodeUnreached(t *testing.T) {
	g := NewCFG(parseFuncBody(t, `
		return
		probe()
	`))
	res := solveDepth(g)
	pb := probeBlock(t, g)
	if res.Reached[pb.Index] {
		t.Error("statements after return must land in an unreached block")
	}
}

func TestCFGLoopBackEdgeKeepsState(t *testing.T) {
	g := NewCFG(parseFuncBody(t, `
		lock()
		for i := 0; i < k; i++ {
			probe()
		}
		unlock()
	`))
	res := solveDepth(g)
	pb := probeBlock(t, g)
	if got := res.In[pb.Index]; got != 1 {
		t.Errorf("lock depth in loop body = %d, want 1 (back edge re-enters held)", got)
	}
	if got := res.In[g.Exit.Index]; got != 0 {
		t.Errorf("lock depth at exit = %d, want 0", got)
	}
}
