// Package analysistest runs one fairvet analyzer over a golden fixture
// package and checks its diagnostics against // want comments, the
// same contract as golang.org/x/tools/go/analysis/analysistest:
//
//	return time.Now() // want `time\.Now in deterministic code`
//
// Each want comment holds one or more quoted regular expressions that
// must match, one-to-one, the diagnostics reported on that line;
// diagnostics on lines without a matching want (and wants left
// unmatched) fail the test. Suppression directives are applied before
// matching, so fixtures can also pin the //fairvet:ignore behavior.
package analysistest

import (
	"path/filepath"
	"regexp"
	"strconv"
	"sync"
	"testing"

	"repro/internal/analysis"
)

// loader is shared across tests in a process: the source importer
// caches every type-checked dependency, so the stdlib is checked once,
// not once per fixture.
var (
	loaderOnce sync.Once
	loader     *analysis.Loader
)

func sharedLoader() *analysis.Loader {
	loaderOnce.Do(func() { loader = analysis.NewLoader() })
	return loader
}

// Run loads the fixture package in dir (relative to the test's working
// directory), runs a over it, and compares diagnostics with the
// fixture's // want comments.
func Run(t *testing.T, dir string, a *analysis.Analyzer) {
	t.Helper()
	abs, err := filepath.Abs(dir)
	if err != nil {
		t.Fatal(err)
	}
	pkg, err := sharedLoader().LoadDir(abs, "fairvettest/"+filepath.Base(abs))
	if err != nil {
		t.Fatalf("load %s: %v", dir, err)
	}
	diags, err := analysis.RunPass(a, pkg)
	if err != nil {
		t.Fatalf("run %s on %s: %v", a.Name, dir, err)
	}

	type key struct {
		file string
		line int
	}
	wants := map[key][]*regexp.Regexp{}
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				patterns, ok := parseWant(c.Text)
				if !ok {
					continue
				}
				pos := pkg.Fset.Position(c.Pos())
				k := key{pos.Filename, pos.Line}
				for _, p := range patterns {
					re, err := regexp.Compile(p)
					if err != nil {
						t.Fatalf("%s:%d: bad want pattern %q: %v", pos.Filename, pos.Line, p, err)
					}
					wants[k] = append(wants[k], re)
				}
			}
		}
	}

	for _, d := range diags {
		pos := pkg.Fset.Position(d.Pos)
		k := key{pos.Filename, pos.Line}
		matched := -1
		for i, re := range wants[k] {
			if re != nil && re.MatchString(d.Message) {
				matched = i
				break
			}
		}
		if matched < 0 {
			t.Errorf("%s:%d: unexpected diagnostic: [%s] %s", pos.Filename, pos.Line, d.Pass, d.Message)
			continue
		}
		wants[k][matched] = nil // consumed
	}
	for k, res := range wants {
		for _, re := range res {
			if re != nil {
				t.Errorf("%s:%d: expected diagnostic matching %q, got none", k.file, k.line, re)
			}
		}
	}
}

var wantRe = regexp.MustCompile(`//\s*want\s+(.*)$`)
var patRe = regexp.MustCompile("`[^`]*`|\"(?:[^\"\\\\]|\\\\.)*\"")

// parseWant extracts the quoted regexps from a // want comment.
func parseWant(text string) ([]string, bool) {
	m := wantRe.FindStringSubmatch(text)
	if m == nil {
		return nil, false
	}
	var out []string
	for _, q := range patRe.FindAllString(m[1], -1) {
		s, err := strconv.Unquote(q)
		if err != nil {
			continue
		}
		out = append(out, s)
	}
	return out, len(out) > 0
}
