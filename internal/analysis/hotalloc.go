package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// HotAlloc enforces zero-allocation discipline in functions whose doc
// comment carries the //fairvet:hotpath marker — the per-row serving
// kernels, the telemetry record path and the Lloyd sweep inner loops,
// where one heap allocation per call turns into millions per run and
// the allocs/op benchmarks gate the build.
//
// Inside a marked function the pass rejects every construct the
// compiler may lower to a heap allocation:
//
//   - append (growth reallocates; the one sanctioned shape is
//     appending into a reslice of an existing backing array, x[:0]),
//   - slice, map and struct composite literals, &composite, closures,
//   - make and new,
//   - fmt calls and non-constant string concatenation,
//   - string <-> []byte / []rune conversions,
//   - interface conversions of non-pointer-shaped values (boxing);
//     pointers, maps, chans and funcs box without allocating.
//
// The pass is deliberately conservative in the other direction: it
// does not attempt escape analysis, so a construct the compiler would
// stack-allocate is still rejected — hot-path code should not rely on
// escape analysis staying clever across compiler versions. The marker
// is the contract; TestHotPathAllocs measures the same functions
// dynamically and the two must agree.
var HotAlloc = &Analyzer{
	Name: "hotalloc",
	Doc:  "//fairvet:hotpath functions must not contain allocating constructs",
	Run:  runHotAlloc,
}

const hotpathMarker = "//fairvet:hotpath"

func runHotAlloc(pass *Pass) error {
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil || !isHotpath(fd) {
				continue
			}
			ha := &hotAlloc{pass: pass, fn: fd.Name.Name}
			ha.check(fd.Body)
		}
	}
	return nil
}

func isHotpath(fd *ast.FuncDecl) bool {
	if fd.Doc == nil {
		return false
	}
	for _, c := range fd.Doc.List {
		if strings.HasPrefix(strings.TrimSpace(c.Text), hotpathMarker) {
			return true
		}
	}
	return false
}

type hotAlloc struct {
	pass *Pass
	fn   string
}

func (ha *hotAlloc) reportf(n ast.Node, format string, args ...any) {
	args = append(args, ha.fn)
	ha.pass.Reportf(n.Pos(), format+" in hotpath function %s; hoist it out of the hot path or drop the //fairvet:hotpath marker", args...)
}

func (ha *hotAlloc) check(body *ast.BlockStmt) {
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			ha.reportf(n, "closure literal allocates")
			return false // the finding covers the whole literal
		case *ast.CompositeLit:
			ha.compositeLit(n)
			return false
		case *ast.UnaryExpr:
			if n.Op == token.AND {
				if _, ok := unparen(n.X).(*ast.CompositeLit); ok {
					ha.reportf(n, "&composite literal allocates")
					return false
				}
			}
		case *ast.CallExpr:
			return ha.call(n)
		case *ast.BinaryExpr:
			ha.binary(n)
		case *ast.GoStmt:
			ha.reportf(n, "go statement allocates a goroutine")
		}
		return true
	})
}

// compositeLit flags literals whose backing store lives on the heap:
// slices and maps. Value struct and array literals are stack values
// and pass (taking their address is flagged at the & instead).
func (ha *hotAlloc) compositeLit(lit *ast.CompositeLit) {
	t := ha.pass.TypesInfo.Types[lit].Type
	if t == nil {
		return
	}
	switch t.Underlying().(type) {
	case *types.Slice:
		ha.reportf(lit, "slice literal allocates")
	case *types.Map:
		ha.reportf(lit, "map literal allocates")
	}
}

// call handles builtins, conversions and fmt; returns whether the
// walk should descend into the call's children.
func (ha *hotAlloc) call(call *ast.CallExpr) bool {
	if tv, ok := ha.pass.TypesInfo.Types[call.Fun]; ok && tv.IsType() {
		ha.conversion(call, tv.Type)
		return true
	}
	if id, ok := unparen(call.Fun).(*ast.Ident); ok {
		if b, ok := ha.pass.TypesInfo.Uses[id].(*types.Builtin); ok {
			switch b.Name() {
			case "append":
				if !ha.isReslice(call.Args) {
					ha.reportf(call, "append may grow its backing array")
				}
			case "make":
				ha.reportf(call, "make allocates")
			case "new":
				ha.reportf(call, "new allocates")
			}
			return true
		}
	}
	if sel, ok := call.Fun.(*ast.SelectorExpr); ok {
		if selectsPackage(ha.pass.TypesInfo, sel) == "fmt" {
			ha.reportf(call, "fmt.%s allocates its formatted output", sel.Sel.Name)
			return true
		}
	}
	ha.boxedArgs(call)
	return true
}

// isReslice recognises the sanctioned append target append(x[:0], ...):
// reuse of an existing backing array, allocation-free while the
// result fits the original capacity.
func (ha *hotAlloc) isReslice(args []ast.Expr) bool {
	if len(args) == 0 {
		return false
	}
	sl, ok := unparen(args[0]).(*ast.SliceExpr)
	if !ok {
		return false
	}
	if sl.Low != nil && !ha.isZeroConst(sl.Low) {
		return false
	}
	return sl.High != nil && ha.isZeroConst(sl.High)
}

func (ha *hotAlloc) isZeroConst(e ast.Expr) bool {
	tv, ok := ha.pass.TypesInfo.Types[e]
	return ok && tv.Value != nil && tv.Value.String() == "0"
}

func (ha *hotAlloc) conversion(call *ast.CallExpr, to types.Type) {
	if len(call.Args) != 1 {
		return
	}
	from := ha.pass.TypesInfo.Types[call.Args[0]].Type
	if from == nil {
		return
	}
	toU, fromU := to.Underlying(), from.Underlying()
	if isString(toU) && isByteOrRuneSlice(fromU) {
		ha.reportf(call, "[]byte/[]rune to string conversion copies")
		return
	}
	if isByteOrRuneSlice(toU) && isString(fromU) {
		ha.reportf(call, "string to []byte/[]rune conversion copies")
		return
	}
	if types.IsInterface(toU) && !types.IsInterface(fromU) && !pointerShaped(fromU) {
		ha.reportf(call, "conversion to interface boxes a %s value", from.String())
	}
}

func isString(t types.Type) bool {
	b, ok := t.(*types.Basic)
	return ok && b.Info()&types.IsString != 0
}

func isByteOrRuneSlice(t types.Type) bool {
	sl, ok := t.(*types.Slice)
	if !ok {
		return false
	}
	b, ok := sl.Elem().Underlying().(*types.Basic)
	return ok && (b.Kind() == types.Byte || b.Kind() == types.Rune ||
		b.Kind() == types.Uint8 || b.Kind() == types.Int32)
}

// pointerShaped reports whether values of t fit an interface word
// without boxing: pointers, channels, maps, funcs, unsafe.Pointer.
func pointerShaped(t types.Type) bool {
	switch t.(type) {
	case *types.Pointer, *types.Chan, *types.Map, *types.Signature:
		return true
	case *types.Basic:
		return t.(*types.Basic).Kind() == types.UnsafePointer
	}
	return false
}

// boxedArgs flags non-pointer-shaped concrete values passed to
// interface-typed parameters — each such call boxes its argument.
func (ha *hotAlloc) boxedArgs(call *ast.CallExpr) {
	tv, ok := ha.pass.TypesInfo.Types[call.Fun]
	if !ok || tv.Type == nil {
		return
	}
	sig, ok := tv.Type.Underlying().(*types.Signature)
	if !ok {
		return
	}
	for i, arg := range call.Args {
		var pt types.Type
		if sig.Variadic() && i >= sig.Params().Len()-1 {
			if call.Ellipsis.IsValid() {
				continue // slice passed through, no per-element boxing
			}
			pt = sig.Params().At(sig.Params().Len() - 1).Type()
			if sl, ok := pt.Underlying().(*types.Slice); ok {
				pt = sl.Elem()
			}
		} else if i < sig.Params().Len() {
			pt = sig.Params().At(i).Type()
		}
		if pt == nil || !types.IsInterface(pt.Underlying()) {
			continue
		}
		at := ha.pass.TypesInfo.Types[arg].Type
		if at == nil || types.IsInterface(at.Underlying()) || pointerShaped(at.Underlying()) {
			continue
		}
		if ha.pass.TypesInfo.Types[arg].IsNil() {
			continue
		}
		ha.reportf(arg, "passing %s to an interface parameter boxes it", at.String())
	}
}

func (ha *hotAlloc) binary(b *ast.BinaryExpr) {
	if b.Op != token.ADD {
		return
	}
	tv := ha.pass.TypesInfo.Types[b]
	if tv.Type == nil || !isString(tv.Type.Underlying()) {
		return
	}
	if tv.Value != nil {
		return // constant-folded at compile time
	}
	ha.reportf(b, "non-constant string concatenation allocates")
}
