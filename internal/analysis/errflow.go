package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
)

// ErrFlow flags error values that never reach a handler:
//
//   - an error result assigned to _ (`v, _ := f()`, `_ = f()`),
//   - a call statement (plain, go or defer) whose error result is
//     discarded entirely,
//   - flow-sensitively, an error variable assigned and then
//     overwritten — or still unread at function exit — before ANY use
//     on some path. "Use" is any read: a comparison, an argument, a
//     return, an errors.Is target.
//
// The flow analysis runs on the per-function CFG as a may-analysis
// (a drop on one branch is a finding even if another branch handles
// the error), and a use in a branch condition covers every path the
// condition dominates, so the `err := f(); if err != nil { ... }`
// idiom is clean by construction.
//
// Deliberately out of scope, to keep the signal tight: named error
// results (assigning one IS the handling — the return uses it),
// variables captured by a closure or address-taken (aliased uses are
// invisible to an intra-procedural pass), and callees whose error is
// dead by API contract — the fmt print family and the Write methods
// of bytes.Buffer / strings.Builder, which are documented to never
// return a meaningful error. Test files never reach this pass: the
// loader analyzes non-test sources only.
var ErrFlow = &Analyzer{
	Name: "errflow",
	Doc:  "error results must not be discarded, dropped, or overwritten before use",
	Run:  runErrFlow,
}

func runErrFlow(pass *Pass) error {
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			checkErrBody(pass, fd.Body)
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				if fl, ok := n.(*ast.FuncLit); ok {
					checkErrBody(pass, fl.Body)
				}
				return true
			})
		}
	}
	return nil
}

var errorType = types.Universe.Lookup("error").Type()

func isErrorType(t types.Type) bool {
	return t != nil && types.Identical(t, errorType)
}

// errFlow is the per-function context: tracked error-typed locals and
// the syntactic finding sites.
type errFlow struct {
	pass    *Pass
	tracked map[*types.Var]bool
	vetoes  map[*types.Var]bool
}

// errState maps a tracked variable to the position of its outstanding
// (not yet used) assignment. Absence means clean: unassigned, reset to
// nil, or used since the last assignment.
type errState map[*types.Var]token.Pos

var errLattice = Lattice[errState]{
	Clone: func(s errState) errState {
		out := make(errState, len(s))
		for k, v := range s {
			out[k] = v
		}
		return out
	},
	// May-analysis: an assignment unused on either path stays
	// outstanding; ties keep the earliest position for determinism.
	Join: func(dst, src errState) errState {
		for k, p := range src {
			if q, ok := dst[k]; !ok || p < q {
				dst[k] = p
			}
		}
		return dst
	},
	Equal: func(a, b errState) bool {
		if len(a) != len(b) {
			return false
		}
		for k, v := range a {
			if b[k] != v {
				return false
			}
		}
		return true
	},
}

func checkErrBody(pass *Pass, body *ast.BlockStmt) {
	ef := &errFlow{pass: pass, tracked: map[*types.Var]bool{}}
	ef.syntactic(body)
	ef.collectTracked(body)
	if len(ef.tracked) == 0 {
		return
	}
	g := NewCFG(body)
	res := Solve(g, errLattice, errState{}, func(s errState, n ast.Node) errState {
		ef.transfer(s, n, false)
		return s
	})
	for _, blk := range g.Blocks {
		if !res.Reached[blk.Index] {
			continue
		}
		s := errLattice.Clone(res.In[blk.Index])
		for _, nd := range blk.Nodes {
			ef.transfer(s, nd, true)
		}
	}
	// Exit: anything still outstanding was dropped on some path. The
	// exit in-state is the prelude's out-state (deferred uses counted).
	if res.Reached[g.Exit.Index] {
		exit := res.In[g.Exit.Index]
		var vars []*types.Var
		for v := range exit {
			vars = append(vars, v)
		}
		// map-range over tracked vars: order the report positions.
		for _, v := range sortVarsByPos(exit, vars) {
			pass.Reportf(exit[v], "error assigned to %s is never used on some path to return; handle it or return it", v.Name())
		}
	}
}

func sortVarsByPos(s errState, vars []*types.Var) []*types.Var {
	for i := 1; i < len(vars); i++ {
		for j := i; j > 0 && s[vars[j]] < s[vars[j-1]]; j-- {
			vars[j], vars[j-1] = vars[j-1], vars[j]
		}
	}
	return vars
}

// syntactic reports blank-assigned and wholly dropped error results;
// these need no flow analysis.
func (ef *errFlow) syntactic(body *ast.BlockStmt) {
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			return n == nil // nested literals get their own checkErrBody
		case *ast.AssignStmt:
			ef.checkBlank(n)
		case *ast.ExprStmt:
			if call, ok := n.X.(*ast.CallExpr); ok {
				ef.checkDropped(call, "")
			}
		case *ast.GoStmt:
			ef.checkDropped(n.Call, "go ")
		case *ast.DeferStmt:
			ef.checkDropped(n.Call, "defer ")
		}
		return true
	})
}

// checkBlank flags `_` receiving an error from a call: `v, _ := f()`,
// `_ = f()`. Assigning an existing variable to _ is not flagged — that
// is an explicit discard of a value, not of a fresh result.
func (ef *errFlow) checkBlank(as *ast.AssignStmt) {
	fromCall := len(as.Rhs) == 1 && isCallExpr(as.Rhs[0])
	if !fromCall && len(as.Rhs) != len(as.Lhs) {
		return
	}
	for i, lhs := range as.Lhs {
		id, ok := lhs.(*ast.Ident)
		if !ok || id.Name != "_" {
			continue
		}
		var t types.Type
		if len(as.Rhs) == len(as.Lhs) {
			if !isCallExpr(as.Rhs[i]) {
				continue
			}
			t = ef.pass.TypesInfo.Types[as.Rhs[i]].Type
		} else {
			tup, ok := ef.pass.TypesInfo.Types[as.Rhs[0]].Type.(*types.Tuple)
			if !ok || i >= tup.Len() {
				continue
			}
			t = tup.At(i).Type()
		}
		if isErrorType(t) {
			ef.pass.Reportf(id.Pos(), "error result assigned to _; handle it, or suppress with //fairvet:ignore errflow -- <why it cannot fail>")
		}
	}
}

func isCallExpr(e ast.Expr) bool {
	c, ok := e.(*ast.CallExpr)
	return ok && c != nil
}

// checkDropped flags a statement-position call that returns an error
// nobody receives.
func (ef *errFlow) checkDropped(call *ast.CallExpr, prefix string) {
	tv, ok := ef.pass.TypesInfo.Types[call.Fun]
	if ok && tv.IsType() {
		return // conversion, not a call
	}
	t := ef.pass.TypesInfo.Types[call].Type
	if t == nil {
		return
	}
	hasErr := false
	switch t := t.(type) {
	case *types.Tuple:
		for i := 0; i < t.Len(); i++ {
			if isErrorType(t.At(i).Type()) {
				hasErr = true
			}
		}
	default:
		hasErr = isErrorType(t)
	}
	if !hasErr || ef.dropExempt(call) {
		return
	}
	ef.pass.Reportf(call.Pos(), "%scall drops its error result; assign and handle it, or suppress with //fairvet:ignore errflow -- <why it cannot fail>", prefix)
}

// dropExempt lists callees whose error is dead by documented contract:
// the fmt print family, and writes into in-memory sinks
// (bytes.Buffer, strings.Builder) which always return a nil error.
func (ef *errFlow) dropExempt(call *ast.CallExpr) bool {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return false
	}
	if selectsPackage(ef.pass.TypesInfo, sel) == "fmt" {
		return true
	}
	fn, ok := ef.pass.TypesInfo.Uses[sel.Sel].(*types.Func)
	if !ok {
		return false
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return false
	}
	rt := sig.Recv().Type()
	if p, ok := rt.(*types.Pointer); ok {
		rt = p.Elem()
	}
	named, ok := rt.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	if obj == nil || obj.Pkg() == nil {
		return false
	}
	switch obj.Pkg().Path() + "." + obj.Name() {
	case "bytes.Buffer", "strings.Builder":
		return true
	}
	return false
}

// collectTracked gathers error-typed variables declared in this body,
// excluding any captured by a nested closure or address-taken — their
// uses are invisible to an intra-procedural analysis.
func (ef *errFlow) collectTracked(body *ast.BlockStmt) {
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			if n != nil {
				ast.Inspect(n.Body, func(inner ast.Node) bool {
					if id, ok := inner.(*ast.Ident); ok {
						if v, ok := ef.pass.TypesInfo.Uses[id].(*types.Var); ok {
							delete(ef.tracked, v)
							ef.trackedVeto(v)
						}
					}
					return true
				})
				return false
			}
		case *ast.Ident:
			if v, ok := ef.pass.TypesInfo.Defs[n].(*types.Var); ok && isErrorType(v.Type()) {
				if !ef.vetoed(v) {
					ef.tracked[v] = true
				}
			}
		case *ast.UnaryExpr:
			if n.Op == token.AND {
				if id, ok := unparen(n.X).(*ast.Ident); ok {
					if v, ok := ef.pass.TypesInfo.Uses[id].(*types.Var); ok {
						delete(ef.tracked, v)
						ef.trackedVeto(v)
					}
				}
			}
		}
		return true
	})
}

func unparen(e ast.Expr) ast.Expr {
	for {
		p, ok := e.(*ast.ParenExpr)
		if !ok {
			return e
		}
		e = p.X
	}
}

// veto bookkeeping: a var removed for capture/aliasing must not be
// re-added when its Def is visited later in the walk.
func (ef *errFlow) trackedVeto(v *types.Var) {
	if ef.vetoes == nil {
		ef.vetoes = map[*types.Var]bool{}
	}
	ef.vetoes[v] = true
}

func (ef *errFlow) vetoed(v *types.Var) bool { return ef.vetoes[v] }

// transfer applies one CFG node: reads clear outstanding assignments,
// assignments report overwrites (in the replay phase) and become
// outstanding.
func (ef *errFlow) transfer(s errState, n ast.Node, report bool) {
	switch n := n.(type) {
	case *DeferredNode:
		return // arguments were evaluated at the DeferStmt
	case *ast.DeferStmt:
		ef.scanUses(s, n.Call)
		return
	case *ast.AssignStmt:
		ef.assign(s, n, report)
		return
	case *ast.DeclStmt:
		if gd, ok := n.Decl.(*ast.GenDecl); ok {
			for _, spec := range gd.Specs {
				if vs, ok := spec.(*ast.ValueSpec); ok {
					ef.valueSpec(s, vs, report)
				}
			}
		}
		return
	}
	ef.scanUses(s, n)
}

// scanUses clears the outstanding mark of every tracked variable read
// inside n (skipping nested function literals).
func (ef *errFlow) scanUses(s errState, n ast.Node) {
	ast.Inspect(n, func(c ast.Node) bool {
		if _, ok := c.(*ast.FuncLit); ok {
			return false
		}
		if id, ok := c.(*ast.Ident); ok {
			if v, ok := ef.pass.TypesInfo.Uses[id].(*types.Var); ok && ef.tracked[v] {
				delete(s, v)
			}
		}
		return true
	})
}

func (ef *errFlow) assign(s errState, as *ast.AssignStmt, report bool) {
	for _, rhs := range as.Rhs {
		ef.scanUses(s, rhs)
	}
	// Index/selector writes (m[k] = err is not tracked) still read
	// their operands.
	for _, lhs := range as.Lhs {
		if _, ok := lhs.(*ast.Ident); !ok {
			ef.scanUses(s, lhs)
		}
	}
	tuple := len(as.Rhs) == 1 && len(as.Lhs) > 1
	for i, lhs := range as.Lhs {
		id, ok := lhs.(*ast.Ident)
		if !ok || id.Name == "_" {
			continue
		}
		var v *types.Var
		if vd, ok := ef.pass.TypesInfo.Defs[id].(*types.Var); ok {
			v = vd
		} else if vu, ok := ef.pass.TypesInfo.Uses[id].(*types.Var); ok {
			v = vu
		}
		if v == nil || !ef.tracked[v] {
			continue
		}
		var rhs ast.Expr
		if !tuple && i < len(as.Rhs) {
			rhs = as.Rhs[i]
		}
		ef.assignEvent(s, v, id.Pos(), rhs, report)
	}
}

func (ef *errFlow) valueSpec(s errState, vs *ast.ValueSpec, report bool) {
	for _, val := range vs.Values {
		ef.scanUses(s, val)
	}
	tuple := len(vs.Values) == 1 && len(vs.Names) > 1
	for i, id := range vs.Names {
		v, ok := ef.pass.TypesInfo.Defs[id].(*types.Var)
		if !ok || !ef.tracked[v] {
			continue
		}
		if len(vs.Values) == 0 {
			delete(s, v) // var err error — zero value, clean
			continue
		}
		var rhs ast.Expr
		if !tuple && i < len(vs.Values) {
			rhs = vs.Values[i]
		}
		ef.assignEvent(s, v, id.Pos(), rhs, report)
	}
}

// assignEvent processes one assignment to a tracked error variable.
// rhs is nil for tuple assignments (always a call — never nil-able).
func (ef *errFlow) assignEvent(s errState, v *types.Var, pos token.Pos, rhs ast.Expr, report bool) {
	if rhs != nil && ef.pass.TypesInfo.Types[rhs].IsNil() {
		delete(s, v) // err = nil resets, it does not carry a new error
		return
	}
	// prev == pos is the same statement reached around a loop back edge
	// ("remember the last error" idiom) — overwriting oneself across
	// iterations is deliberate retention, not a drop, and the exit check
	// still fires if the retained error is never read after the loop.
	if prev, outstanding := s[v]; outstanding && report && prev != pos {
		ef.pass.Reportf(pos, "this assignment overwrites the error %s assigned at line %d before any use of it", v.Name(), ef.pass.Fset.Position(prev).Line)
	}
	s[v] = pos
}
