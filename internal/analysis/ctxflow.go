package analysis

import (
	"go/ast"
	"go/types"
)

// CtxFlow enforces context propagation: a function that receives a
// context.Context must actually thread it to its callees. Three ways
// to drop a context are flagged:
//
//  1. the ctx parameter is never mentioned in the body (deadlines and
//     cancellation silently stop at this frame);
//  2. the body calls context.Background() or context.TODO(), starting
//     a fresh root context even though one was handed in — the exact
//     bug class the serve admission/queue/stride chain guards against;
//  3. any call site passes a literal nil where the callee expects a
//     context.Context (stdlib APIs panic on nil contexts).
//
// Functions whose ctx parameter is blank (_) are exempt from (1): the
// discard is already visible in the signature. Interface
// implementations that genuinely cannot use their context should
// suppress with //fairvet:ignore ctxflow -- <reason>.
var CtxFlow = &Analyzer{
	Name: "ctxflow",
	Doc:  "functions receiving a context must propagate it, not drop or shadow it",
	Run:  runCtxFlow,
}

func runCtxFlow(pass *Pass) error {
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.FuncDecl:
				if n.Body != nil {
					checkCtxParams(pass, n)
				}
			case *ast.CallExpr:
				checkNilContextArg(pass, n)
			}
			return true
		})
	}
	return nil
}

func checkCtxParams(pass *Pass, fn *ast.FuncDecl) {
	var ctxParams []*types.Var
	if fn.Type.Params != nil {
		for _, field := range fn.Type.Params.List {
			for _, name := range field.Names {
				obj, ok := pass.TypesInfo.Defs[name].(*types.Var)
				if !ok || name.Name == "_" {
					continue
				}
				if isContextType(obj.Type()) {
					ctxParams = append(ctxParams, obj)
				}
			}
		}
	}
	if len(ctxParams) == 0 {
		return
	}
	used := map[*types.Var]bool{}
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.Ident:
			if v, ok := pass.TypesInfo.Uses[n].(*types.Var); ok {
				used[v] = true
			}
		case *ast.CallExpr:
			if isPkgCall(pass.TypesInfo, n, "context", "Background") || isPkgCall(pass.TypesInfo, n, "context", "TODO") {
				sel := n.Fun.(*ast.SelectorExpr)
				pass.Reportf(n.Pos(), "context.%s() inside %s, which already receives a context: the incoming deadline/cancellation is dropped here", sel.Sel.Name, fn.Name.Name)
			}
		}
		return true
	})
	for _, p := range ctxParams {
		if !used[p] {
			pass.Reportf(fn.Name.Pos(), "%s receives %s %s but never uses it: cancellation and deadlines stop propagating at this frame (use _ to discard explicitly)", fn.Name.Name, p.Name(), "context.Context")
		}
	}
}

// checkNilContextArg flags passing a literal nil where the callee's
// parameter is a context.Context.
func checkNilContextArg(pass *Pass, call *ast.CallExpr) {
	tv, ok := pass.TypesInfo.Types[call.Fun]
	if !ok {
		return
	}
	sig, ok := tv.Type.(*types.Signature)
	if !ok {
		return
	}
	params := sig.Params()
	for i, arg := range call.Args {
		id, ok := arg.(*ast.Ident)
		if !ok || id.Name != "nil" {
			continue
		}
		if _, isNil := pass.TypesInfo.Uses[id].(*types.Nil); !isNil {
			continue
		}
		pi := i
		if sig.Variadic() && pi >= params.Len() {
			pi = params.Len() - 1
		}
		if pi < 0 || pi >= params.Len() {
			continue
		}
		if isContextType(params.At(pi).Type()) {
			pass.Reportf(arg.Pos(), "nil passed as context.Context: use context.Background() at roots or propagate the caller's ctx")
		}
	}
}
