package analysis

import "go/ast"

// Lattice describes one dataflow domain for the forward solver. There
// is no explicit bottom element: an edge is either reached (and
// carries a state) or not, tracked separately in FlowResult.Reached.
// The ownership contract keeps state copies explicit and cheap:
//
//   - Clone returns an independent copy; the solver clones before
//     handing a state to a transfer chain, so transfers may mutate
//     their argument and return it.
//   - Join merges its second argument INTO its first and returns the
//     result; it must not mutate the second argument.
//   - Equal reports lattice-value equality (fixpoint detection).
//
// Both solver clients are standard finite-height domains: lockcheck's
// held-mutex set is a must-analysis (Join = intersection), errflow's
// unused-error map is a may-analysis (Join = union, min position), so
// termination is by monotonicity as usual.
type Lattice[S any] struct {
	Clone func(S) S
	Join  func(dst, src S) S
	Equal func(S, S) bool
}

// FlowResult carries the solved in-states: In[b.Index] is the state on
// entry to block b, valid only where Reached[b.Index]. Unreached
// blocks are dead code (no path from entry); passes skip them rather
// than diagnose from a fabricated state.
type FlowResult[S any] struct {
	In      []S
	Reached []bool
}

// Solve runs transfer forward over g to fixpoint, starting from
// boundary at the entry block. The worklist is drained in block-index
// order, so iteration — and therefore any diagnostic produced while
// replaying transfers — is deterministic.
func Solve[S any](g *CFG, lat Lattice[S], boundary S, transfer func(S, ast.Node) S) FlowResult[S] {
	n := len(g.Blocks)
	res := FlowResult[S]{In: make([]S, n), Reached: make([]bool, n)}
	inQueue := make([]bool, n)

	res.In[g.Entry.Index] = boundary
	res.Reached[g.Entry.Index] = true

	queue := []int{g.Entry.Index}
	inQueue[g.Entry.Index] = true
	for len(queue) > 0 {
		// Pop the lowest block index: deterministic and close to
		// reverse post-order for the structured CFGs the builder emits.
		bi, mi := queue[0], 0
		for i, q := range queue[1:] {
			if q < bi {
				bi, mi = q, i+1
			}
		}
		queue[mi] = queue[len(queue)-1]
		queue = queue[:len(queue)-1]
		inQueue[bi] = false

		blk := g.Blocks[bi]
		out := lat.Clone(res.In[bi])
		for _, nd := range blk.Nodes {
			out = transfer(out, nd)
		}
		for _, succ := range blk.Succs {
			si := succ.Index
			if !res.Reached[si] {
				res.In[si] = lat.Clone(out)
				res.Reached[si] = true
			} else {
				merged := lat.Join(lat.Clone(res.In[si]), out)
				if lat.Equal(merged, res.In[si]) {
					continue
				}
				res.In[si] = merged
			}
			if !inQueue[si] {
				queue = append(queue, si)
				inQueue[si] = true
			}
		}
	}
	return res
}
