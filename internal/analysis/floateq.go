package analysis

import (
	"go/ast"
	"go/token"
)

// FloatEq flags == and != between floating-point operands. Almost all
// such comparisons in numeric code are accidents that break under
// reassociated arithmetic; the few deliberate sites this repository
// has — exact tie-breaks that ARE the determinism contract (nearest-
// centroid "d == best → lower index wins"), IEEE-parity assertions,
// and exact sentinel checks — opt in per file with a
//
//	//fairvet:floateq <why bitwise comparison is correct here>
//
// marker, so any future float comparison added to an unmarked file is
// caught at lint time instead of as a flaky parity test.
var FloatEq = &Analyzer{
	Name: "floateq",
	Doc:  "forbid ==/!= on floats outside files opted in with //fairvet:floateq",
	Run:  runFloatEq,
}

func runFloatEq(pass *Pass) error {
	for _, f := range pass.Files {
		if hasFileMarker(f, "floateq") {
			continue
		}
		ast.Inspect(f, func(n ast.Node) bool {
			bin, ok := n.(*ast.BinaryExpr)
			if !ok || (bin.Op != token.EQL && bin.Op != token.NEQ) {
				return true
			}
			xt, yt := pass.TypesInfo.Types[bin.X].Type, pass.TypesInfo.Types[bin.Y].Type
			if xt == nil || yt == nil {
				return true
			}
			if isFloat(xt) || isFloat(yt) {
				pass.Reportf(bin.OpPos, "%s on floating-point values: compare with an epsilon, or mark the file //fairvet:floateq if bitwise equality is the contract", bin.Op)
			}
			return true
		})
	}
	return nil
}
