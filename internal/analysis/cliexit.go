package analysis

import (
	"go/ast"
	"go/types"
	"strings"
)

// CLIExit guards the repository's CLI failure contract: every command
// terminates through internal/cli.Main, which prints one line to
// stderr and exits with a defined code — so under cmd/ (or any file
// marked //fairvet:climain) direct os.Exit, log.Fatal*/log.Panic* and
// bare panic calls are forbidden; they would bypass the contract and
// leak stack traces or undocumented exit codes to scripts. Command
// bodies return errors from their run(args, out) function instead.
var CLIExit = &Analyzer{
	Name: "cliexit",
	Doc:  "commands must exit through internal/cli.Main, never os.Exit/log.Fatal/panic",
	Run:  runCLIExit,
}

func runCLIExit(pass *Pass) error {
	inCmd := strings.Contains(pass.Path, "/cmd/") || strings.HasPrefix(pass.Path, "cmd/")
	for _, f := range pass.Files {
		if !inCmd && !hasFileMarker(f, "climain") {
			continue
		}
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			switch fun := call.Fun.(type) {
			case *ast.Ident:
				if fun.Name == "panic" {
					if _, isBuiltin := pass.TypesInfo.Uses[fun].(*types.Builtin); isBuiltin {
						pass.Reportf(call.Pos(), "panic in a command: return an error from run so internal/cli.Main can apply the one-line/exit-code contract")
					}
				}
			case *ast.SelectorExpr:
				switch selectsPackage(pass.TypesInfo, fun) {
				case "os":
					if fun.Sel.Name == "Exit" {
						pass.Reportf(call.Pos(), "os.Exit in a command: exit codes are owned by internal/cli.Main; return an error from run instead")
					}
				case "log":
					switch fun.Sel.Name {
					case "Fatal", "Fatalf", "Fatalln", "Panic", "Panicf", "Panicln":
						pass.Reportf(call.Pos(), "log.%s in a command: it bypasses internal/cli.Main's one-line stderr/exit-code contract; return an error from run instead", fun.Sel.Name)
					}
				}
			}
			return true
		})
	}
	return nil
}
