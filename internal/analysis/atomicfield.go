package analysis

import (
	"go/ast"
	"go/types"
)

// AtomicField enforces all-or-nothing atomicity per struct field: a
// field whose address is ever passed to a sync/atomic function
// (atomic.AddUint64(&s.n, 1), atomic.StoreInt64(&s.v, x), ...) must
// never be read or written through a plain selector anywhere else in
// the package — a single non-atomic access invalidates every atomic
// one. Fields typed atomic.Uint64/Int64/... (the preferred style in
// this repository: serve's Stats counters, the kmeans scan telemetry,
// the assigner's stride counter) are immune by construction since
// their state is unexported. Composite-literal keys are not flagged:
// the zero value needs no atomicity and literal construction precedes
// publication.
var AtomicField = &Analyzer{
	Name: "atomicfield",
	Doc:  "fields touched by sync/atomic must never be accessed non-atomically",
	Run:  runAtomicField,
}

func runAtomicField(pass *Pass) error {
	// Phase 1: collect fields whose address flows into sync/atomic
	// calls, and remember those exact selector nodes as sanctioned.
	atomicFields := map[*types.Var]string{} // field -> atomic func name seen
	sanctioned := map[*ast.SelectorExpr]bool{}
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			sel, ok := call.Fun.(*ast.SelectorExpr)
			if !ok || selectsPackage(pass.TypesInfo, sel) != "sync/atomic" {
				return true
			}
			for _, arg := range call.Args {
				un, ok := arg.(*ast.UnaryExpr)
				if !ok || un.Op.String() != "&" {
					continue
				}
				fieldSel, ok := un.X.(*ast.SelectorExpr)
				if !ok {
					continue
				}
				if v := fieldVar(pass.TypesInfo, fieldSel); v != nil {
					atomicFields[v] = sel.Sel.Name
					sanctioned[fieldSel] = true
				}
			}
			return true
		})
	}
	if len(atomicFields) == 0 {
		return nil
	}
	// Phase 2: any other selector reaching one of those fields is a
	// plain (racy) access.
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			sel, ok := n.(*ast.SelectorExpr)
			if !ok || sanctioned[sel] {
				return true
			}
			v := fieldVar(pass.TypesInfo, sel)
			if v == nil {
				return true
			}
			if fn, isAtomic := atomicFields[v]; isAtomic {
				pass.Reportf(sel.Pos(), "non-atomic access to field %s, which is accessed with atomic.%s elsewhere; use sync/atomic consistently or a typed sync/atomic value", v.Name(), fn)
			}
			return true
		})
	}
	return nil
}

// fieldVar resolves a selector to the struct field it selects, or nil
// when the selector is not a field selection.
func fieldVar(info *types.Info, sel *ast.SelectorExpr) *types.Var {
	s, ok := info.Selections[sel]
	if !ok || s.Kind() != types.FieldVal {
		return nil
	}
	v, _ := s.Obj().(*types.Var)
	return v
}
