package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
	"regexp"
)

// LockCheck enforces annotated lock discipline flow-sensitively: a
// struct field carrying a
//
//	guarded by <mutex>
//
// comment (on the field's line or in its doc comment, naming a sibling
// sync.Mutex or sync.RWMutex field) may only be read while the mutex
// is held (Lock or RLock) and only written under the full Lock. Held
// regions are computed on the per-function CFG with a must-analysis —
// a mutex counts as held at a point only if every path to that point
// holds it — so an early return that skips an Unlock, or a branch that
// unlocks on one arm only, is modeled exactly. `defer mu.Unlock()`
// keeps the mutex held through every subsequent access (the unlock
// replays on the exit prelude).
//
// Exemptions: fields whose type comes from sync/atomic need no guard
// and are skipped; accesses through a variable constructed locally
// (`t := &T{...}`; `var t T`; `t := new(T)`) are constructor-local —
// the value is unpublished, so no lock can be required yet.
//
// Known imprecision, deliberate for v2: the held-set keys on the
// mutex FIELD, not the instance path, so a function that locks a.mu
// and then touches b.n (same field, different instance) is not
// flagged. Functions in this repository operate on one receiver, which
// is the case the analysis is precise for.
var LockCheck = &Analyzer{
	Name: "lockcheck",
	Doc:  "fields annotated 'guarded by <mu>' must only be accessed while the mutex is held",
	Run:  runLockCheck,
}

var guardedByRe = regexp.MustCompile(`guarded by ([A-Za-z_][A-Za-z0-9_]*)`)

// lockState maps a held mutex field/variable to the strength it is
// held with.
const (
	heldRead  = 1 // RLock
	heldWrite = 2 // Lock
)

type lockState map[*types.Var]int

var lockLattice = Lattice[lockState]{
	Clone: func(s lockState) lockState {
		out := make(lockState, len(s))
		for k, v := range s {
			out[k] = v
		}
		return out
	},
	// Must-analysis: held only if held on every joined path, at the
	// weaker of the two strengths.
	Join: func(dst, src lockState) lockState {
		for k, v := range dst {
			sv, ok := src[k]
			if !ok {
				delete(dst, k)
			} else if sv < v {
				dst[k] = sv
			}
		}
		return dst
	},
	Equal: func(a, b lockState) bool {
		if len(a) != len(b) {
			return false
		}
		for k, v := range a {
			if b[k] != v {
				return false
			}
		}
		return true
	},
}

func runLockCheck(pass *Pass) error {
	guards := collectGuards(pass)
	if len(guards) == 0 {
		return nil
	}
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			checkLockFunc(pass, guards, fd.Body)
			// Function literals get their own CFG with an empty held
			// set: a closure must acquire the lock itself (or be
			// constructor-local) — inheriting the creation site's locks
			// would be unsound for closures that outlive them.
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				if fl, ok := n.(*ast.FuncLit); ok {
					checkLockFunc(pass, guards, fl.Body)
				}
				return true
			})
		}
	}
	return nil
}

// collectGuards parses `guarded by <name>` field annotations into a
// guarded-field -> mutex-field map, reporting malformed annotations
// (unknown sibling, non-mutex guard).
func collectGuards(pass *Pass) map[*types.Var]*types.Var {
	guards := map[*types.Var]*types.Var{}
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			st, ok := n.(*ast.StructType)
			if !ok || st.Fields == nil {
				return true
			}
			for _, field := range st.Fields.List {
				guardName := fieldGuardName(field)
				if guardName == "" {
					continue
				}
				guard := findSiblingField(pass, st, guardName)
				if guard == nil {
					pass.Reportf(field.Pos(), "guarded by %s: struct has no field %s", guardName, guardName)
					continue
				}
				if !isMutexType(guard.Type()) {
					pass.Reportf(field.Pos(), "guarded by %s: %s is %s, not a sync.Mutex or sync.RWMutex", guardName, guardName, guard.Type())
					continue
				}
				for _, name := range field.Names {
					v, ok := pass.TypesInfo.Defs[name].(*types.Var)
					if !ok {
						continue
					}
					if fromAtomicPkg(v.Type()) {
						continue // atomic-typed fields need no guard
					}
					guards[v] = guard
				}
			}
			return true
		})
	}
	return guards
}

// fieldGuardName extracts the mutex name from a field's line or doc
// comment, "" when unannotated.
func fieldGuardName(field *ast.Field) string {
	for _, cg := range []*ast.CommentGroup{field.Comment, field.Doc} {
		if cg == nil {
			continue
		}
		for _, c := range cg.List {
			if m := guardedByRe.FindStringSubmatch(c.Text); m != nil {
				return m[1]
			}
		}
	}
	return ""
}

func findSiblingField(pass *Pass, st *ast.StructType, name string) *types.Var {
	for _, field := range st.Fields.List {
		for _, id := range field.Names {
			if id.Name == name {
				v, _ := pass.TypesInfo.Defs[id].(*types.Var)
				return v
			}
		}
	}
	return nil
}

func isMutexType(t types.Type) bool {
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	if obj == nil || obj.Pkg() == nil || obj.Pkg().Path() != "sync" {
		return false
	}
	return obj.Name() == "Mutex" || obj.Name() == "RWMutex"
}

func fromAtomicPkg(t types.Type) bool {
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj != nil && obj.Pkg() != nil && obj.Pkg().Path() == "sync/atomic"
}

// lockFunc is the per-function analysis context.
type lockFunc struct {
	pass    *Pass
	guards  map[*types.Var]*types.Var
	writes  map[*ast.SelectorExpr]bool // selectors in write position
	lockFun map[*ast.SelectorExpr]bool // the mu.Lock selector of lock/unlock calls
	locals  map[types.Object]bool      // constructor-local bases (exempt)
}

func checkLockFunc(pass *Pass, guards map[*types.Var]*types.Var, body *ast.BlockStmt) {
	// Fast path: skip functions that never touch a guarded field.
	touches := false
	ast.Inspect(body, func(n ast.Node) bool {
		if sel, ok := n.(*ast.SelectorExpr); ok && !touches {
			if v := fieldVar(pass.TypesInfo, sel); v != nil {
				if _, ok := guards[v]; ok {
					touches = true
				}
			}
		}
		return !touches
	})
	if !touches {
		return
	}

	lf := &lockFunc{
		pass:    pass,
		guards:  guards,
		writes:  map[*ast.SelectorExpr]bool{},
		lockFun: map[*ast.SelectorExpr]bool{},
		locals:  map[types.Object]bool{},
	}
	lf.prescan(body)

	g := NewCFG(body)
	res := Solve(g, lockLattice, lockState{}, func(s lockState, n ast.Node) lockState {
		lf.transfer(s, n, false)
		return s
	})
	// Replay with reporting, deterministically by block index.
	for _, blk := range g.Blocks {
		if !res.Reached[blk.Index] {
			continue
		}
		s := lockLattice.Clone(res.In[blk.Index])
		for _, nd := range blk.Nodes {
			lf.transfer(s, nd, true)
		}
	}
}

// prescan classifies write-position selectors, marks the receivers of
// Lock/Unlock calls (so they are not themselves treated as accesses),
// and collects constructor-local variables.
func (lf *lockFunc) prescan(body *ast.BlockStmt) {
	markWrite := func(e ast.Expr) {
		for {
			switch x := e.(type) {
			case *ast.IndexExpr:
				e = x.X
			case *ast.StarExpr:
				e = x.X
			case *ast.ParenExpr:
				e = x.X
			case *ast.SelectorExpr:
				lf.writes[x] = true
				return
			default:
				return
			}
		}
	}
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			for _, lhs := range n.Lhs {
				markWrite(lhs)
			}
			// Constructor-local collection: v := &T{...} / T{} / new(T).
			if n.Tok == token.DEFINE && len(n.Lhs) == len(n.Rhs) {
				for i, lhs := range n.Lhs {
					id, ok := lhs.(*ast.Ident)
					if !ok {
						continue
					}
					if isFreshValue(n.Rhs[i]) {
						if obj := lf.pass.TypesInfo.Defs[id]; obj != nil {
							lf.locals[obj] = true
						}
					}
				}
			}
		case *ast.ValueSpec:
			for i, id := range n.Names {
				if len(n.Values) == 0 || (i < len(n.Values) && isFreshValue(n.Values[i])) {
					if obj := lf.pass.TypesInfo.Defs[id]; obj != nil {
						// `var t T` zero values are fresh; `var t *T` is
						// nil until assigned, and any later non-fresh
						// assignment is not tracked — acceptable, the
						// variable then crashes before it races.
						lf.locals[obj] = true
					}
				}
			}
		case *ast.IncDecStmt:
			markWrite(n.X)
		case *ast.UnaryExpr:
			if n.Op == token.AND {
				markWrite(n.X)
			}
		case *ast.CallExpr:
			if sel, ok := n.Fun.(*ast.SelectorExpr); ok {
				if _, kind := lf.lockEffect(n); kind != 0 {
					lf.lockFun[sel] = true
				}
			}
		}
		return true
	})
}

// isFreshValue reports whether e constructs a brand-new value
// (composite literal, &composite, new(T)).
func isFreshValue(e ast.Expr) bool {
	switch e := e.(type) {
	case *ast.CompositeLit:
		return true
	case *ast.UnaryExpr:
		_, ok := e.X.(*ast.CompositeLit)
		return e.Op == token.AND && ok
	case *ast.CallExpr:
		id, ok := e.Fun.(*ast.Ident)
		return ok && id.Name == "new"
	}
	return false
}

// lockEffect classifies call as a Lock/RLock (+strength) or
// Unlock/RUnlock (-strength) on a resolvable mutex variable. kind 0
// means not a lock call.
func (lf *lockFunc) lockEffect(call *ast.CallExpr) (mu *types.Var, kind int) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return nil, 0
	}
	fn, ok := lf.pass.TypesInfo.Uses[sel.Sel].(*types.Func)
	if !ok || fn.Pkg() == nil || fn.Pkg().Path() != "sync" {
		return nil, 0
	}
	switch fn.Name() {
	case "Lock":
		kind = heldWrite
	case "RLock":
		kind = heldRead
	case "Unlock", "RUnlock":
		kind = -1
	default:
		return nil, 0
	}
	mu = mutexVarOf(lf.pass.TypesInfo, sel.X)
	if mu == nil {
		return nil, 0
	}
	return mu, kind
}

// mutexVarOf resolves the receiver expression of a Lock call to the
// variable or field holding the mutex.
func mutexVarOf(info *types.Info, e ast.Expr) *types.Var {
	switch e := e.(type) {
	case *ast.Ident:
		v, _ := info.Uses[e].(*types.Var)
		return v
	case *ast.SelectorExpr:
		if v := fieldVar(info, e); v != nil {
			return v
		}
		v, _ := info.Uses[e.Sel].(*types.Var)
		return v
	case *ast.ParenExpr:
		return mutexVarOf(info, e.X)
	case *ast.UnaryExpr:
		return mutexVarOf(info, e.X)
	}
	return nil
}

// transfer applies one CFG node's lock effects to s, reporting guarded
// accesses outside their lock when report is set (the post-fixpoint
// replay).
func (lf *lockFunc) transfer(s lockState, n ast.Node, report bool) {
	switch n := n.(type) {
	case *DeferredNode:
		// Deferred lock-call effects replay at exit (the usual case is
		// `defer mu.Unlock()`); arguments were already evaluated.
		if mu, kind := lf.lockEffect(n.Call); kind != 0 {
			applyLock(s, mu, kind)
		}
		return
	case *ast.DeferStmt:
		// Arguments are evaluated now; the call's effect is not.
		for _, arg := range n.Call.Args {
			lf.scan(s, arg, report)
		}
		return
	}
	lf.scan(s, n, report)
}

func applyLock(s lockState, mu *types.Var, kind int) {
	if kind < 0 {
		delete(s, mu)
	} else {
		s[mu] = kind
	}
}

func (lf *lockFunc) scan(s lockState, n ast.Node, report bool) {
	ast.Inspect(n, func(c ast.Node) bool {
		switch c := c.(type) {
		case *ast.FuncLit:
			return false // analyzed separately with its own CFG
		case *ast.CallExpr:
			if mu, kind := lf.lockEffect(c); kind != 0 {
				applyLock(s, mu, kind)
			}
			return true
		case *ast.SelectorExpr:
			if lf.lockFun[c] {
				return false // the mu.Lock receiver is not an access
			}
			if report {
				lf.checkAccess(s, c)
			}
			return true
		}
		return true
	})
}

func (lf *lockFunc) checkAccess(s lockState, sel *ast.SelectorExpr) {
	v := fieldVar(lf.pass.TypesInfo, sel)
	if v == nil {
		return
	}
	mu, guarded := lf.guards[v]
	if !guarded {
		return
	}
	if base := lf.selectorBase(sel); base != nil && lf.locals[base] {
		return // constructor-local: unpublished value
	}
	need, verb := heldRead, "read"
	if lf.writes[sel] {
		need, verb = heldWrite, "written"
	}
	held := s[mu]
	switch {
	case held == 0:
		lf.pass.Reportf(sel.Pos(), "field %s is %s without holding %s (annotated 'guarded by %s'; lock on every path to this access)", v.Name(), verb, mu.Name(), mu.Name())
	case held < need:
		lf.pass.Reportf(sel.Pos(), "field %s is written while %s is only read-locked; writes need the full Lock", v.Name(), mu.Name())
	}
}

// selectorBase walks to the root object of a selector chain
// (s.a.b -> object of s), nil when the root is not a simple
// identifier.
func (lf *lockFunc) selectorBase(sel *ast.SelectorExpr) types.Object {
	e := sel.X
	for {
		switch x := e.(type) {
		case *ast.SelectorExpr:
			e = x.X
		case *ast.ParenExpr:
			e = x.X
		case *ast.StarExpr:
			e = x.X
		case *ast.IndexExpr:
			e = x.X
		case *ast.Ident:
			return lf.pass.TypesInfo.Uses[x]
		default:
			return nil
		}
	}
}
