// Package testfix builds the deterministic datasets shared by the
// engine golden-trajectory tests and cross-package benchmarks. The
// fixtures are frozen: the goldens in
// internal/goldencase/testdata/golden.json were recorded against the
// pre-engine solvers (commit 9c464aa) on exactly these datasets, so
// changing a fixture invalidates the goldens.
package testfix

import (
	"fmt"

	"repro/internal/data/adult"
	"repro/internal/dataset"
	"repro/internal/stats"
)

// Synth builds a small random mixed dataset: dim Gaussian features,
// nCat categorical sensitive attributes with random domain sizes in
// [2,5], and nNum numeric sensitive attributes. The construction
// consumes the RNG stream in a fixed order, so (seed, n, dim, nCat,
// nNum) fully determines the dataset.
func Synth(seed int64, n, dim, nCat, nNum int) *dataset.Dataset {
	rng := stats.NewRNG(seed)
	names := make([]string, dim)
	for i := range names {
		names[i] = fmt.Sprintf("f%d", i)
	}
	b := dataset.NewBuilder(names...)
	catDomains := make([][]string, nCat)
	for a := 0; a < nCat; a++ {
		b.AddCategoricalSensitive(fmt.Sprintf("cat%d", a))
		size := 2 + rng.Intn(4)
		dom := make([]string, size)
		for v := range dom {
			dom[v] = string(rune('a' + v))
		}
		catDomains[a] = dom
	}
	for a := 0; a < nNum; a++ {
		b.AddNumericSensitive(fmt.Sprintf("num%d", a))
	}
	for i := 0; i < n; i++ {
		feats := make([]float64, dim)
		for j := range feats {
			feats[j] = rng.Gaussian(0, 2)
		}
		cats := make([]string, nCat)
		for a := range cats {
			cats[a] = catDomains[a][rng.Intn(len(catDomains[a]))]
		}
		nums := make([]float64, nNum)
		for a := range nums {
			nums[a] = rng.Gaussian(40, 10)
		}
		b.Row(feats, cats, nums)
	}
	ds, err := b.Build()
	if err != nil {
		panic(fmt.Sprintf("testfix: building synthetic dataset: %v", err))
	}
	return ds
}

// Adult generates the reduced synthetic Adult dataset used by the
// golden tests: rows rows, min-max normalized features, parity
// undersampling skipped (faster, and domain sizes stay Adult-shaped).
func Adult(seed int64, rows int) *dataset.Dataset {
	ds, err := adult.Generate(adult.Config{Seed: seed, Rows: rows, SkipParity: true})
	if err != nil {
		panic(fmt.Sprintf("testfix: generating Adult: %v", err))
	}
	ds.MinMaxNormalize()
	return ds
}
