package engine

import (
	"math"
	"testing"
	"time"

	"repro/internal/stats"
)

// scripted is a fake objective whose per-sweep behaviour is fully
// scripted: during sweep s, rows 0..movesPer[s]-1 want to move to the
// next cluster; Value returns values[s] after sweep s.
type scripted struct {
	n, k     int
	assign   []int
	movesPer []int
	values   []float64
	sweeps   int
}

func newScripted(n, k int, movesPer []int, values []float64) *scripted {
	return &scripted{n: n, k: k, assign: make([]int, n), movesPer: movesPer, values: values}
}

func (s *scripted) N() int            { return s.n }
func (s *scripted) K() int            { return s.k }
func (s *scripted) Current(i int) int { return s.assign[i] }
func (s *scripted) BestMove(i, from int) int {
	to := from
	if s.sweeps < len(s.movesPer) && i < s.movesPer[s.sweeps] {
		to = (from + 1) % s.k
	}
	if i == s.n-1 {
		s.sweeps++
	}
	return to
}
func (s *scripted) Delta(i, from, to int) float64 { return -1 }
func (s *scripted) Move(i, from, to int)          { s.assign[i] = to }
func (s *scripted) Value() float64 {
	idx := s.sweeps - 1
	if idx < 0 {
		idx = 0
	}
	if idx >= len(s.values) {
		idx = len(s.values) - 1
	}
	return s.values[idx]
}

func TestSolveStopsOnNoMoves(t *testing.T) {
	obj := newScripted(5, 3, []int{3, 1, 0}, []float64{10, 9, 9})
	res := Solve(obj, NewFullSweep(obj), Config{MaxIter: 30})
	if !res.Converged || res.Reason != StopNoMoves {
		t.Fatalf("want no-moves convergence, got converged=%v reason=%v", res.Converged, res.Reason)
	}
	if res.Iterations != 3 || res.TotalMoves != 4 {
		t.Fatalf("want 3 iterations / 4 moves, got %d / %d", res.Iterations, res.TotalMoves)
	}
}

func TestSolveStopsOnMaxIter(t *testing.T) {
	obj := newScripted(5, 3, []int{1, 1, 1, 1, 1, 1, 1, 1}, []float64{1})
	res := Solve(obj, NewFullSweep(obj), Config{MaxIter: 5})
	if res.Converged || res.Reason != StopMaxIter || res.Iterations != 5 {
		t.Fatalf("want max-iter stop at 5, got converged=%v reason=%v iters=%d",
			res.Converged, res.Reason, res.Iterations)
	}
}

func TestSolveStopsOnTol(t *testing.T) {
	// Objective drops 100 -> 50 -> 49.99995: the third improvement
	// (5e-5) is below Tol=1e-3 even though moves continue.
	obj := newScripted(5, 3, []int{1, 1, 1, 1, 1, 1}, []float64{100, 50, 49.99995, 49.9999, 49.9998})
	res := Solve(obj, NewFullSweep(obj), Config{MaxIter: 30, Tol: 1e-3})
	if !res.Converged || res.Reason != StopTol {
		t.Fatalf("want Tol convergence, got converged=%v reason=%v", res.Converged, res.Reason)
	}
	if res.Iterations != 3 {
		t.Fatalf("want stop at iteration 3, got %d", res.Iterations)
	}
}

func TestSolveStopsOnBudget(t *testing.T) {
	obj := newScripted(5, 3, []int{1, 1, 1, 1, 1, 1}, []float64{1})
	res := Solve(obj, NewFullSweep(obj), Config{MaxIter: 30, Budget: time.Nanosecond})
	if res.Converged || res.Reason != StopBudget {
		t.Fatalf("want budget stop, got converged=%v reason=%v", res.Converged, res.Reason)
	}
	if res.Iterations != 1 {
		t.Fatalf("a started solve must complete at least one sweep; stopped at %d", res.Iterations)
	}
}

func TestSolveObserverSeesEveryIteration(t *testing.T) {
	obj := newScripted(4, 2, []int{2, 1, 0}, []float64{30, 20, 20})
	var events []IterEvent
	res := Solve(obj, NewFullSweep(obj), Config{MaxIter: 30, Observer: func(ev IterEvent) {
		events = append(events, ev)
	}})
	if len(events) != res.Iterations {
		t.Fatalf("observer saw %d events for %d iterations", len(events), res.Iterations)
	}
	wantMoves := []int{2, 1, 0}
	wantObj := []float64{30, 20, 20}
	for i, ev := range events {
		if ev.Iteration != i+1 || ev.Moves != wantMoves[i] || ev.Objective != wantObj[i] {
			t.Fatalf("event %d = %+v, want iteration %d moves %d objective %v",
				i, ev, i+1, wantMoves[i], wantObj[i])
		}
	}
}

// lineObj is a miniature real objective — 1-D K-Means under coordinate
// descent with live sufficient statistics — used to exercise the sweep
// strategies end to end.
type lineObj struct {
	xs     []float64
	k      int
	assign []int
	sum    []float64
	cnt    []int
}

func newLineObj(xs []float64, k int, assign []int) *lineObj {
	o := &lineObj{xs: xs, k: k, assign: assign, sum: make([]float64, k), cnt: make([]int, k)}
	for i, c := range assign {
		o.sum[c] += xs[i]
		o.cnt[c]++
	}
	return o
}

func (o *lineObj) N() int            { return len(o.xs) }
func (o *lineObj) K() int            { return o.k }
func (o *lineObj) Current(i int) int { return o.assign[i] }

func (o *lineObj) delta(i, from, to int) float64 {
	x := o.xs[i]
	d := 0.0
	if m := o.cnt[from]; m > 1 {
		mu := o.sum[from] / float64(m)
		d -= float64(m) / float64(m-1) * (x - mu) * (x - mu)
	}
	if m := o.cnt[to]; m > 0 {
		mu := o.sum[to] / float64(m)
		d += float64(m) / float64(m+1) * (x - mu) * (x - mu)
	}
	return d
}

func (o *lineObj) BestMove(i, from int) int {
	best, bestD := from, 0.0
	for c := 0; c < o.k; c++ {
		if c == from {
			continue
		}
		if d := o.delta(i, from, c); d < bestD {
			best, bestD = c, d
		}
	}
	return best
}

func (o *lineObj) Delta(i, from, to int) float64 { return o.delta(i, from, to) }

func (o *lineObj) Move(i, from, to int) {
	o.sum[from] -= o.xs[i]
	o.cnt[from]--
	o.sum[to] += o.xs[i]
	o.cnt[to]++
	o.assign[i] = to
}

func (o *lineObj) Value() float64 {
	v := 0.0
	for i, c := range o.assign {
		if o.cnt[c] == 0 {
			continue
		}
		mu := o.sum[c] / float64(o.cnt[c])
		v += (o.xs[i] - mu) * (o.xs[i] - mu)
	}
	return v
}

type lineSnap struct {
	live *lineObj
	obj  lineObj
}

func (o *lineObj) NewSnapshot() Snapshot {
	return &lineSnap{live: o, obj: lineObj{xs: o.xs, k: o.k, sum: make([]float64, o.k), cnt: make([]int, o.k)}}
}

func (s *lineSnap) Freeze() {
	copy(s.obj.sum, s.live.sum)
	copy(s.obj.cnt, s.live.cnt)
}

func (s *lineSnap) BestMove(i, from int) int { return s.obj.BestMove(i, from) }

func lineFixture(seed int64, n, k int) *lineObj {
	rng := stats.NewRNG(seed)
	xs := make([]float64, n)
	for i := range xs {
		xs[i] = rng.Gaussian(float64(i%k)*10, 3)
	}
	assign := make([]int, n)
	RandomPartitionAssign(rng, assign, k)
	return newLineObj(xs, k, assign)
}

// TestFrozenSweepWorkerDeterminism: the parallelism contract — results
// are bit-identical for every worker count.
func TestFrozenSweepWorkerDeterminism(t *testing.T) {
	var ref *lineObj
	var refRes Result
	for _, workers := range []int{1, 2, 3, 8, 33} {
		obj := lineFixture(7, 500, 6)
		sw := NewFrozenSweep(obj, FrozenOpts{Workers: workers, Batch: 64, Revalidate: true})
		res := Solve(obj, sw, Config{MaxIter: 50})
		if ref == nil {
			ref, refRes = obj, res
			continue
		}
		if res.Iterations != refRes.Iterations || res.TotalMoves != refRes.TotalMoves {
			t.Fatalf("workers=%d trajectory diverged: iters %d vs %d, moves %d vs %d",
				workers, res.Iterations, refRes.Iterations, res.TotalMoves, refRes.TotalMoves)
		}
		for i := range obj.assign {
			if obj.assign[i] != ref.assign[i] {
				t.Fatalf("workers=%d: assignment mismatch at row %d", workers, i)
			}
		}
	}
}

// TestFrozenSweepRevalidationMonotone: with Revalidate, the objective
// never increases across sweeps even though batches score against
// stale statistics.
func TestFrozenSweepRevalidationMonotone(t *testing.T) {
	obj := lineFixture(11, 400, 5)
	sw := NewFrozenSweep(obj, FrozenOpts{Workers: 4, Batch: 32, Revalidate: true})
	prev := math.Inf(1)
	Solve(obj, sw, Config{MaxIter: 50, Observer: func(ev IterEvent) {
		if ev.Objective > prev*(1+1e-12) {
			t.Fatalf("objective rose at iteration %d: %v -> %v", ev.Iteration, prev, ev.Objective)
		}
		prev = ev.Objective
	}})
}

// lloydLine adapts lineObj to Lloyd semantics: its snapshot scores
// nearest frozen (non-empty) mean, recomputed from scratch on Freeze —
// the shape the kmeans port uses.
type lloydLine struct{ *lineObj }

func (l lloydLine) NewSnapshot() Snapshot {
	return &nearestSnap{live: l.lineObj, sum: make([]float64, l.k), cnt: make([]int, l.k)}
}

type nearestSnap struct {
	live *lineObj
	sum  []float64
	cnt  []int
}

func (s *nearestSnap) Freeze() {
	for c := range s.sum {
		s.sum[c], s.cnt[c] = 0, 0
	}
	for i, c := range s.live.assign {
		s.sum[c] += s.live.xs[i]
		s.cnt[c]++
	}
}

func (s *nearestSnap) BestMove(i, from int) int {
	best, bestD := from, math.Inf(1)
	for c := range s.sum {
		if s.cnt[c] == 0 {
			continue
		}
		mu := s.sum[c] / float64(s.cnt[c])
		if d := (s.live.xs[i] - mu) * (s.live.xs[i] - mu); d < bestD {
			best, bestD = c, d
		}
	}
	return best
}

// TestLloydSweepMatchesReference: NewLloydSweep reproduces the
// classic assign-to-frozen-means iteration exactly.
func TestLloydSweepMatchesReference(t *testing.T) {
	obj := lineFixture(3, 300, 4)
	ref := append([]int(nil), obj.assign...)
	xs := obj.xs

	res := Solve(obj, NewLloydSweep(lloydLine{obj}, 3), Config{MaxIter: 40})

	// Reference Lloyd on a copy of the same start.
	iters := 0
	for ; iters < 40; iters++ {
		sum := make([]float64, obj.k)
		cnt := make([]int, obj.k)
		for i, c := range ref {
			sum[c] += xs[i]
			cnt[c]++
		}
		changed := 0
		for i := range xs {
			best, bestD := ref[i], math.Inf(1)
			for c := 0; c < obj.k; c++ {
				if cnt[c] == 0 {
					continue
				}
				mu := sum[c] / float64(cnt[c])
				if d := (xs[i] - mu) * (xs[i] - mu); d < bestD {
					best, bestD = c, d
				}
			}
			if best != ref[i] {
				ref[i] = best
				changed++
			}
		}
		if changed == 0 {
			iters++
			break
		}
	}
	if res.Iterations != iters {
		t.Fatalf("engine Lloyd took %d iterations, reference %d", res.Iterations, iters)
	}
	for i := range ref {
		if obj.assign[i] != ref[i] {
			t.Fatalf("assignment mismatch at row %d: %d vs reference %d", i, obj.assign[i], ref[i])
		}
	}
}

// batchCounter wraps lineObj to count batch-view refreshes.
type batchCounter struct {
	*lineObj
	refreshes int
}

func (b *batchCounter) RefreshBatchView()             { b.refreshes++ }
func (b *batchCounter) BestMoveBatch(i, from int) int { return b.BestMove(i, from) }

func TestMiniBatchRefreshCadence(t *testing.T) {
	obj := &batchCounter{lineObj: lineFixture(5, 10, 2)}
	sw := NewMiniBatchSweep(obj, 3)
	sw.Sweep()
	// One refresh at sweep start plus one after rows 3, 6 and 9.
	if obj.refreshes != 4 {
		t.Fatalf("10 rows at batch 3: want 4 refreshes per sweep, got %d", obj.refreshes)
	}
}

func TestRandomPartitionAssignRepairsEmptyClusters(t *testing.T) {
	for seed := int64(0); seed < 64; seed++ {
		rng := stats.NewRNG(seed)
		assign := make([]int, 9)
		k := 7 // k close to n: raw uniform assignment leaves empties often
		RandomPartitionAssign(rng, assign, k)
		sizes := make([]int, k)
		for _, c := range assign {
			if c < 0 || c >= k {
				t.Fatalf("seed %d: cluster %d out of range", seed, c)
			}
			sizes[c]++
		}
		for c, s := range sizes {
			if s == 0 {
				t.Fatalf("seed %d: cluster %d left empty after repair", seed, c)
			}
		}
	}
}

func TestInitAssignmentDeterminism(t *testing.T) {
	rngData := stats.NewRNG(9)
	features := make([][]float64, 40)
	for i := range features {
		features[i] = []float64{rngData.Gaussian(0, 1), rngData.Gaussian(0, 1)}
	}
	for _, m := range []InitMethod{KMeansPlusPlus, RandomPartition, RandomPoints} {
		a := InitAssignment(features, 5, m, stats.NewRNG(4))
		b := InitAssignment(features, 5, m, stats.NewRNG(4))
		for i := range a {
			if a[i] != b[i] {
				t.Fatalf("%v: nondeterministic assignment at row %d", m, i)
			}
		}
		for i, c := range a {
			if c < 0 || c >= 5 {
				t.Fatalf("%v: row %d assigned out-of-range cluster %d", m, i, c)
			}
		}
	}
}
