// Package engine is the shared descent orchestrator behind every
// clustering solver in this repository: FairKM (internal/core),
// K-Means (internal/kmeans) and ZGYA (internal/zgya).
//
// The architecture splits each solver into two levels (the
// shared-memory process-pool layering of Biborski et al., see
// PAPERS.md, adapted to in-process clustering):
//
//   - the OBJECTIVE level — solver-specific sufficient statistics that
//     can score and apply single-point cluster moves (the Objective
//     interface and its optional BatchObjective / SnapshotObjective
//     capabilities);
//   - the ORCHESTRATION level — everything about how a descent run is
//     scheduled and observed: initialization (init.go), sweep order,
//     batching and parallelism (sweep.go), convergence policy and
//     per-iteration observation (Solve).
//
// A solver supplies an Objective plus a Sweeper and gets, for free and
// identically to every other solver: the zero-moves / Tol / MaxIter /
// wall-clock-budget stopping rules, per-iteration observer hooks, and
// the frozen-statistics parallel sweep contract described below.
//
// # Parallelism contract
//
// Frozen-statistics sweeps (NewFrozenSweep, NewLloydSweep) process
// points in fixed-size batches. Each batch is scored concurrently
// against a Snapshot frozen at the batch start, then accepted moves are
// applied sequentially in row order. Batch boundaries and per-point
// proposals are independent of the worker count, so results are
// bit-identical for every Workers >= 1. With Revalidate set, each
// proposal is re-scored against the live statistics before applying
// (Objective.Delta < 0), which keeps coordinate descent monotone even
// though in-batch proposals cannot see each other's moves; without it
// every proposal is applied unconditionally, which is exactly Lloyd
// iteration when the batch spans the whole dataset.
package engine

import (
	"math"
	"time"
)

// Objective is the solver level of the engine: the sufficient
// statistics of one clustering objective over a fixed dataset, able to
// score and apply moves of single points between clusters. Rows are
// indexed 0..N()-1, clusters 0..K()-1.
type Objective interface {
	// N returns the number of rows.
	N() int
	// K returns the number of clusters.
	K() int
	// Current returns row i's current cluster.
	Current(i int) int
	// BestMove returns the cluster minimizing the objective change of
	// moving row i out of cluster from, scored against live
	// statistics; it returns from itself when no move improves.
	BestMove(i, from int) int
	// Delta returns the exact objective change of moving row i from
	// cluster from to cluster to, against live statistics.
	Delta(i, from, to int) float64
	// Move applies the move, updating all statistics and Current(i).
	Move(i, from, to int)
	// Value returns the current total objective. The engine calls it
	// once per iteration at most (Tol convergence and observers); it
	// should be cheap relative to a sweep.
	Value() float64
}

// BatchObjective is implemented by objectives supporting the
// mini-batch heuristic (FairKM paper, Section 6.1): scoring against a
// solver-chosen view — typically frozen cluster prototypes — that is
// refreshed only once per batch while the cheap bookkeeping stays
// live.
type BatchObjective interface {
	Objective
	// RefreshBatchView re-derives the batch-scoring view from the live
	// statistics.
	RefreshBatchView()
	// BestMoveBatch is BestMove scored against the batch view.
	BestMoveBatch(i, from int) int
}

// SnapshotObjective is implemented by objectives supporting
// frozen-statistics parallel sweeps.
type SnapshotObjective interface {
	Objective
	// NewSnapshot allocates a reusable snapshot buffer. The engine
	// alternates Freeze with concurrent BestMove calls; the two are
	// never concurrent with each other or with Move.
	NewSnapshot() Snapshot
}

// Snapshot is a read-only frozen view of an objective's statistics.
type Snapshot interface {
	// Freeze copies the live statistics into the snapshot.
	Freeze()
	// BestMove scores row i against the frozen statistics. It must be
	// safe for concurrent calls (the snapshot is not mutated).
	BestMove(i, from int) int
}

// IterEvent is the per-iteration record passed to observers.
type IterEvent struct {
	// Iteration counts sweeps, starting at 1.
	Iteration int
	// Moves is the number of points that changed cluster this sweep.
	Moves int
	// Objective is the total objective after the sweep. It is computed
	// only when an observer is installed or Tol is positive; see
	// Config.Observer.
	Objective float64
	// Elapsed is the wall-clock time since Solve started.
	Elapsed time.Duration
}

// Observer receives one IterEvent after every sweep, before
// convergence is evaluated (so the final, converging iteration is
// observed too). Observers run on the solving goroutine; slow
// observers slow the solve.
type Observer func(IterEvent)

// StopReason says which policy ended a Solve.
type StopReason int

const (
	// StopMaxIter: the iteration cap was reached with moves still
	// occurring.
	StopMaxIter StopReason = iota
	// StopNoMoves: a full sweep moved no point — the exact convergence
	// of Algorithm 1, and the default policy.
	StopNoMoves
	// StopTol: the objective improved by less than Tol between
	// consecutive iterations.
	StopTol
	// StopBudget: the wall-clock budget expired between iterations.
	StopBudget
)

// String implements fmt.Stringer.
func (r StopReason) String() string {
	switch r {
	case StopMaxIter:
		return "max-iter"
	case StopNoMoves:
		return "no-moves"
	case StopTol:
		return "tol"
	case StopBudget:
		return "budget"
	default:
		return "unknown"
	}
}

// Config is the orchestration-level configuration of a Solve. The
// convergence policies compose: the run stops at whichever of
// zero-moves, Tol, MaxIter or Budget triggers first.
type Config struct {
	// MaxIter caps the number of sweeps; <= 0 means no cap (rely on
	// the other policies).
	MaxIter int
	// Tol, when positive, stops the run once the objective improves by
	// less than Tol between consecutive iterations. Zero — the default
	// everywhere in this repository — keeps the exact zero-moves
	// convergence of the paper's Algorithm 1.
	Tol float64
	// Budget, when positive, stops the run at the first iteration
	// boundary after the wall-clock budget is spent. A started sweep
	// always completes, and at least one sweep runs.
	Budget time.Duration
	// Observer, when non-nil, receives an IterEvent after every sweep.
	Observer Observer
}

// Result summarizes a completed Solve.
type Result struct {
	// Iterations is the number of sweeps executed.
	Iterations int
	// TotalMoves counts cluster changes across all sweeps.
	TotalMoves int
	// Converged reports whether a convergence policy (zero-moves or
	// Tol) ended the run, as opposed to the MaxIter or Budget caps.
	Converged bool
	// Reason is the specific policy that ended the run.
	Reason StopReason
	// Elapsed is the total wall-clock time of the solve.
	Elapsed time.Duration
}

// Solve runs coordinate descent (or Lloyd iteration, depending on the
// sweeper) to convergence under cfg's policies.
func Solve(obj Objective, sw Sweeper, cfg Config) Result {
	start := time.Now() //fairvet:ignore nodeterminism -- wall-clock feeds only the Budget stop policy and Elapsed telemetry, both documented as nondeterministic (Budget=0 in deterministic runs)
	needValue := cfg.Tol > 0 || cfg.Observer != nil
	prev := math.Inf(1)
	var res Result
	res.Reason = StopMaxIter
	for iter := 1; cfg.MaxIter <= 0 || iter <= cfg.MaxIter; iter++ {
		res.Iterations = iter
		moves := sw.Sweep()
		res.TotalMoves += moves
		var value float64
		if needValue {
			value = obj.Value()
		}
		if cfg.Observer != nil {
			//fairvet:ignore nodeterminism -- Elapsed is observer telemetry, never an input to the descent
			cfg.Observer(IterEvent{Iteration: iter, Moves: moves, Objective: value, Elapsed: time.Since(start)})
		}
		if moves == 0 {
			res.Converged = true
			res.Reason = StopNoMoves
			break
		}
		if cfg.Tol > 0 && prev-value < cfg.Tol {
			res.Converged = true
			res.Reason = StopTol
			break
		}
		prev = value
		//fairvet:ignore nodeterminism -- the wall-clock Budget stop is an explicitly nondeterministic policy, off by default
		if cfg.Budget > 0 && time.Since(start) >= cfg.Budget {
			res.Reason = StopBudget
			break
		}
	}
	res.Elapsed = time.Since(start) //fairvet:ignore nodeterminism -- Elapsed is result telemetry, not solver state
	return res
}
