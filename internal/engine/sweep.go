package engine

import "sync"

// Sweeper performs one full pass over the rows of its objective,
// applying improving moves, and returns how many rows changed cluster.
// A Sweeper is bound to one objective at construction so it can hold
// reusable buffers (snapshots, proposal slices) across sweeps.
type Sweeper interface {
	Sweep() int
}

// NewFullSweep returns the paper's strictly sequential round-robin
// sweep (Algorithm 1): each row's best move is scored against live
// statistics and applied immediately, so every decision sees all
// earlier ones.
func NewFullSweep(obj Objective) Sweeper {
	return &fullSweep{obj: obj}
}

type fullSweep struct{ obj Objective }

func (s *fullSweep) Sweep() int {
	obj := s.obj
	n := obj.N()
	moves := 0
	for i := 0; i < n; i++ {
		from := obj.Current(i)
		if to := obj.BestMove(i, from); to != from {
			obj.Move(i, from, to)
			moves++
		}
	}
	return moves
}

// NewMiniBatchSweep returns the Section 6.1 mini-batch sweep: rows are
// still visited one at a time with moves applied immediately, but
// scoring uses the objective's batch view, refreshed at the sweep
// start and then once per batch of `batch` visited rows.
func NewMiniBatchSweep(obj BatchObjective, batch int) Sweeper {
	if batch < 1 {
		batch = 1
	}
	return &miniBatchSweep{obj: obj, batch: batch}
}

type miniBatchSweep struct {
	obj   BatchObjective
	batch int
}

func (s *miniBatchSweep) Sweep() int {
	obj := s.obj
	n := obj.N()
	obj.RefreshBatchView()
	moves := 0
	sinceRefresh := 0
	for i := 0; i < n; i++ {
		from := obj.Current(i)
		if to := obj.BestMoveBatch(i, from); to != from {
			obj.Move(i, from, to)
			moves++
		}
		sinceRefresh++
		if sinceRefresh == s.batch {
			obj.RefreshBatchView()
			sinceRefresh = 0
		}
	}
	return moves
}

// DefaultFrozenBatch is the frozen-statistics batch size of parallel
// sweeps when FrozenOpts.Batch doesn't override it. Smaller batches
// keep statistics fresher (fewer stale proposals rejected at apply
// time); larger ones amortize the snapshot copy and goroutine handoff.
const DefaultFrozenBatch = 1024

// FrozenOpts parameterizes a frozen-statistics sweep.
type FrozenOpts struct {
	// Workers is the number of scoring goroutines; values < 1 mean 1.
	Workers int
	// Batch is the frozen-statistics batch size; <= 0 means
	// DefaultFrozenBatch.
	Batch int
	// Revalidate re-scores each accepted proposal against the live
	// statistics before applying it (Objective.Delta < 0), keeping
	// descent monotone. Leave it unset only when unconditional
	// application is the intended semantics (Lloyd iteration).
	Revalidate bool
}

// NewFrozenSweep returns the frozen-statistics parallel sweep
// described in the package docs ("Parallelism contract"): batches
// scored concurrently against a snapshot, moves applied sequentially
// in row order. Results are deterministic and bit-identical for every
// worker count.
func NewFrozenSweep(obj SnapshotObjective, opts FrozenOpts) Sweeper {
	batch := opts.Batch
	if batch <= 0 {
		batch = DefaultFrozenBatch
	}
	if batch > obj.N() {
		batch = obj.N()
	}
	workers := opts.Workers
	if workers < 1 {
		workers = 1
	}
	return &frozenSweep{
		obj:        obj,
		snap:       obj.NewSnapshot(),
		proposals:  make([]int, batch),
		workers:    workers,
		batch:      batch,
		revalidate: opts.Revalidate,
	}
}

// NewLloydSweep returns classical Lloyd iteration expressed as a
// frozen sweep: one batch spanning the whole dataset, scored against
// statistics (for K-Means: centroids) frozen at the iteration start,
// with every proposal applied unconditionally. This is exactly the
// assign-then-recompute loop of textbook K-Means, and it parallelizes
// over workers with bit-identical results because scoring against a
// frozen view is pure.
func NewLloydSweep(obj SnapshotObjective, workers int) Sweeper {
	return NewFrozenSweep(obj, FrozenOpts{Workers: workers, Batch: obj.N(), Revalidate: false})
}

type frozenSweep struct {
	obj        SnapshotObjective
	snap       Snapshot
	proposals  []int
	workers    int
	batch      int
	revalidate bool
}

func (s *frozenSweep) Sweep() int {
	obj := s.obj
	n := obj.N()
	moves := 0
	for b0 := 0; b0 < n; b0 += s.batch {
		b1 := min(b0+s.batch, n)
		s.snap.Freeze()

		span := b1 - b0
		workers := min(s.workers, span)
		chunk := (span + workers - 1) / workers
		var wg sync.WaitGroup
		for w := 0; w < workers; w++ {
			lo := b0 + w*chunk
			if lo >= b1 {
				break
			}
			hi := min(lo+chunk, b1)
			wg.Add(1)
			go func(lo, hi int) {
				defer wg.Done()
				for i := lo; i < hi; i++ {
					// Current(i) is stable during the scoring phase;
					// the snapshot is read-only.
					s.proposals[i-b0] = s.snap.BestMove(i, obj.Current(i))
				}
			}(lo, hi)
		}
		wg.Wait()

		for i := b0; i < b1; i++ {
			to := s.proposals[i-b0]
			from := obj.Current(i)
			if to == from {
				continue
			}
			// Earlier moves in this batch may have invalidated the
			// frozen-state proposal; under Revalidate, accept it only
			// if it still improves the live objective.
			if !s.revalidate || obj.Delta(i, from, to) < 0 {
				obj.Move(i, from, to)
				moves++
			}
		}
	}
	return moves
}
