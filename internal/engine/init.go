package engine

import (
	"fmt"

	"repro/internal/stats"
)

// InitMethod selects how a solver's initial clustering is chosen. It
// lives in the engine so FairKM, K-Means and ZGYA share one
// implementation (and therefore start from comparable configurations,
// the premise of the paper's evaluation); internal/kmeans re-exports
// the type and constants for its public API.
type InitMethod int

const (
	// KMeansPlusPlus picks initial centroids with the k-means++
	// D²-weighting scheme (Arthur & Vassilvitskii 2007). It is the
	// zero value, i.e. the default of every solver in this repository.
	KMeansPlusPlus InitMethod = iota
	// RandomPartition assigns every point to a uniformly random
	// cluster and repairs empty clusters, matching "Initialize k
	// clusters randomly" in FairKM's Algorithm 1.
	RandomPartition
	// RandomPoints picks k distinct data points as initial centroids.
	RandomPoints
)

// String implements fmt.Stringer.
func (m InitMethod) String() string {
	switch m {
	case KMeansPlusPlus:
		return "kmeans++"
	case RandomPartition:
		return "random-partition"
	case RandomPoints:
		return "random-points"
	default:
		return fmt.Sprintf("InitMethod(%d)", int(m))
	}
}

// InitAssignment produces a starting partition of the feature rows
// into k clusters: nearest-centroid assignment for the centroid-seeded
// methods, a repaired random partition for RandomPartition. The RNG
// stream is consumed in a fixed order per method, so (features, k,
// method, seed) fully determines the result.
func InitAssignment(features [][]float64, k int, method InitMethod, rng *stats.RNG) []int {
	n := len(features)
	assign := make([]int, n)
	switch method {
	case KMeansPlusPlus:
		centroids := PlusPlusCentroids(features, k, rng)
		nearestInto(assign, features, centroids)
	case RandomPoints:
		pts := rng.SampleWithoutReplacement(n, k)
		centroids := make([][]float64, k)
		for c, p := range pts {
			centroids[c] = features[p]
		}
		nearestInto(assign, features, centroids)
	default: // RandomPartition — Algorithm 1 step 1
		RandomPartitionAssign(rng, assign, k)
	}
	return assign
}

// InitAssignmentWeighted is InitAssignment over weighted rows: the
// k-means++ D² sampling scales each candidate's distance by its mass
// (a row standing for w points is w times as likely to seed a
// centroid), while RandomPoints and RandomPartition stay row-level.
// weights == nil delegates to InitAssignment; unit weights consume the
// RNG stream identically to InitAssignment, so the two are
// bit-identical in that case — the property the weighted solvers'
// unit-parity contract rests on.
func InitAssignmentWeighted(features [][]float64, weights []float64, k int, method InitMethod, rng *stats.RNG) []int {
	if weights == nil {
		return InitAssignment(features, k, method, rng)
	}
	n := len(features)
	assign := make([]int, n)
	switch method {
	case KMeansPlusPlus:
		centroids := PlusPlusCentroidsWeighted(features, weights, k, rng)
		nearestInto(assign, features, centroids)
	case RandomPoints:
		pts := rng.SampleWithoutReplacement(n, k)
		centroids := make([][]float64, k)
		for c, p := range pts {
			centroids[c] = features[p]
		}
		nearestInto(assign, features, centroids)
	default: // RandomPartition — Algorithm 1 step 1
		RandomPartitionAssign(rng, assign, k)
	}
	return assign
}

// nearestInto assigns every row to its nearest centroid (squared
// Euclidean distance, lowest cluster index on ties).
func nearestInto(assign []int, features, centroids [][]float64) {
	for i, x := range features {
		best, bestD := 0, stats.SqDist(x, centroids[0])
		for c := 1; c < len(centroids); c++ {
			if d := stats.SqDist(x, centroids[c]); d < bestD {
				best, bestD = c, d
			}
		}
		assign[i] = best
	}
}

// RandomPartitionAssign fills assign uniformly at random, then repairs
// any empty cluster by stealing a random point from a cluster with more
// than one member, so every cluster is non-empty whenever len(assign)
// >= k. The repair preserves the k-cluster invariants solvers assume
// from their first sweep.
func RandomPartitionAssign(rng *stats.RNG, assign []int, k int) {
	for i := range assign {
		assign[i] = rng.Intn(k)
	}
	sizes := make([]int, k)
	for _, c := range assign {
		sizes[c]++
	}
	for c := 0; c < k; c++ {
		for sizes[c] == 0 {
			i := rng.Intn(len(assign))
			if sizes[assign[i]] > 1 {
				sizes[assign[i]]--
				assign[i] = c
				sizes[c]++
			}
		}
	}
}

// PlusPlusCentroidsWeighted is PlusPlusCentroids with mass-scaled D²
// sampling: candidate probabilities are w_i·d(x_i)². The first centroid
// is drawn uniformly over rows — exactly as in the unweighted routine,
// so unit weights replay its RNG stream bit-for-bit (w·d² with w = 1
// is an IEEE no-op); for genuinely weighted rows the subsequent D²
// draws carry all the mass sensitivity that matters.
func PlusPlusCentroidsWeighted(features [][]float64, weights []float64, k int, rng *stats.RNG) [][]float64 {
	n := len(features)
	centroids := make([][]float64, 0, k)
	first := rng.Intn(n)
	centroids = append(centroids, stats.Clone(features[first]))
	d2 := make([]float64, n)
	for i := range d2 {
		d2[i] = weights[i] * stats.SqDist(features[i], centroids[0])
	}
	for len(centroids) < k {
		total := stats.Sum(d2)
		var next int
		if total <= 0 {
			next = rng.Intn(n)
		} else {
			next = rng.Categorical(d2)
		}
		c := stats.Clone(features[next])
		centroids = append(centroids, c)
		for i := range d2 {
			if d := weights[i] * stats.SqDist(features[i], c); d < d2[i] {
				d2[i] = d
			}
		}
	}
	return centroids
}

// PlusPlusCentroids returns k centroids chosen by the k-means++
// D²-sampling procedure.
func PlusPlusCentroids(features [][]float64, k int, rng *stats.RNG) [][]float64 {
	n := len(features)
	centroids := make([][]float64, 0, k)
	first := rng.Intn(n)
	centroids = append(centroids, stats.Clone(features[first]))
	d2 := make([]float64, n)
	for i := range d2 {
		d2[i] = stats.SqDist(features[i], centroids[0])
	}
	for len(centroids) < k {
		total := stats.Sum(d2)
		var next int
		if total <= 0 {
			// All remaining points coincide with chosen centroids; fall
			// back to uniform choice to keep the procedure total.
			next = rng.Intn(n)
		} else {
			next = rng.Categorical(d2)
		}
		c := stats.Clone(features[next])
		centroids = append(centroids, c)
		for i := range d2 {
			if d := stats.SqDist(features[i], c); d < d2[i] {
				d2[i] = d
			}
		}
	}
	return centroids
}
