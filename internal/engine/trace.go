package engine

import (
	"fmt"
	"io"
	"sync"
	"time"
)

// traceMu serializes trace lines across observers, so concurrent
// solves (e.g. parallel experiment restarts) interleave whole lines,
// never fragments.
var traceMu sync.Mutex

// TraceObserver returns an Observer writing one line per iteration to
// w, tagged with label — the implementation behind the CLIs' -trace
// flags and the experiment harness's Options.Trace.
func TraceObserver(w io.Writer, label string) Observer {
	return func(ev IterEvent) {
		traceMu.Lock()
		defer traceMu.Unlock()
		fmt.Fprintf(w, "%s: iter=%d moves=%d objective=%.6g elapsed=%s\n",
			label, ev.Iteration, ev.Moves, ev.Objective, ev.Elapsed.Round(time.Microsecond))
	}
}
