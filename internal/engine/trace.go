package engine

import (
	"fmt"
	"io"
	"sync"
	"time"
)

// traceMu serializes trace lines across observers, so concurrent
// solves (e.g. parallel experiment restarts) interleave whole lines,
// never fragments.
var traceMu sync.Mutex

// TraceObserver returns an Observer writing one line per iteration to
// w, tagged with label — the implementation behind the CLIs' -trace
// flags and the experiment harness's Options.Trace.
func TraceObserver(w io.Writer, label string) Observer {
	return func(ev IterEvent) {
		traceMu.Lock()
		defer traceMu.Unlock()
		fmt.Fprintf(w, "%s: iter=%d moves=%d objective=%.6g elapsed=%s\n",
			label, ev.Iteration, ev.Moves, ev.Objective, ev.Elapsed.Round(time.Microsecond))
	}
}

// Observers composes observers into one, skipping nils: the CLIs stack
// a human-readable -trace observer and a -telemetry run journal on the
// same solve. Returns nil when none remain (so Config.Observer stays
// nil and Solve skips the per-iteration Value() computation), and the
// sole survivor unwrapped.
func Observers(obs ...Observer) Observer {
	live := make([]Observer, 0, len(obs))
	for _, o := range obs {
		if o != nil {
			live = append(live, o)
		}
	}
	switch len(live) {
	case 0:
		return nil
	case 1:
		return live[0]
	}
	return func(ev IterEvent) {
		for _, o := range live {
			o(ev)
		}
	}
}
