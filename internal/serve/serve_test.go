package serve

import (
	"fmt"
	"math"
	"reflect"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"

	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/model"
	"repro/internal/testfix"
)

// trainModel fits FairKM on a fixture and wraps it as an artifact.
func trainModel(t testing.TB, ds *dataset.Dataset, k int, seed int64) *model.Model {
	t.Helper()
	res, err := core.Run(ds, core.Config{K: k, AutoLambda: true, Seed: seed})
	if err != nil {
		t.Fatal(err)
	}
	m, err := model.New(ds, nil, res, model.Provenance{Tool: "test", Seed: seed})
	if err != nil {
		t.Fatal(err)
	}
	m.Name = fmt.Sprintf("m%d", seed)
	return m
}

// sequential is the reference labelling: a plain scan on one goroutine.
func sequential(m *model.Model, rows [][]float64) []int {
	out := make([]int, len(rows))
	for i, x := range rows {
		out[i] = m.Assign(x)
	}
	return out
}

// TestAssignerDeterministic pins the concurrency contract: every
// worker count × batch size yields exactly the sequential labelling,
// in order. Run under -race in CI.
func TestAssignerDeterministic(t *testing.T) {
	ds := testfix.Synth(21, 700, 5, 2, 0)
	m := trainModel(t, ds, 6, 3)
	want := sequential(m, ds.Features)

	for _, workers := range []int{1, 2, 3, 8} {
		for _, batch := range []int{1, 7, 64, 1000} {
			t.Run(fmt.Sprintf("w%d_b%d", workers, batch), func(t *testing.T) {
				a, err := NewAssigner(m, Options{Workers: workers, BatchSize: batch})
				if err != nil {
					t.Fatal(err)
				}
				defer a.Close()
				got, dists, err := a.AssignBatch(ds.Features, nil)
				if err != nil {
					t.Fatal(err)
				}
				if !reflect.DeepEqual(got, want) {
					t.Fatal("batch labelling differs from sequential scan")
				}
				for i, x := range ds.Features {
					c, d, err := a.Assign(x, nil)
					if err != nil {
						t.Fatal(err)
					}
					if c != want[i] || d != dists[i] {
						t.Fatalf("single query %d: (%d,%v) vs batch (%d,%v)", i, c, d, want[i], dists[i])
					}
				}
			})
		}
	}
}

// TestAssignerConcurrentClients hammers one assigner from many
// goroutines; every client must see the reference labelling.
func TestAssignerConcurrentClients(t *testing.T) {
	ds := testfix.Synth(4, 500, 4, 1, 0)
	m := trainModel(t, ds, 5, 9)
	want := sequential(m, ds.Features)
	a, err := NewAssigner(m, Options{Workers: 4, BatchSize: 32})
	if err != nil {
		t.Fatal(err)
	}
	defer a.Close()

	var wg sync.WaitGroup
	errs := make(chan error, 16)
	for g := 0; g < 16; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			got, _, err := a.AssignBatch(ds.Features, nil)
			if err != nil {
				errs <- err
				return
			}
			if !reflect.DeepEqual(got, want) {
				errs <- fmt.Errorf("concurrent client got a different labelling")
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
	st := a.Stats()
	if st.Requests != 16 || st.Rows != uint64(16*ds.N()) {
		t.Errorf("stats = %d req / %d rows, want 16 / %d", st.Requests, st.Rows, 16*ds.N())
	}
	if st.P50 <= 0 || st.P99 < st.P50 {
		t.Errorf("implausible latency quantiles p50=%v p99=%v", st.P50, st.P99)
	}
}

// TestAssignerDimensionMismatch: malformed queries error, never panic.
func TestAssignerDimensionMismatch(t *testing.T) {
	ds := testfix.Synth(8, 100, 3, 1, 0)
	a, err := NewAssigner(trainModel(t, ds, 3, 1), Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer a.Close()
	if _, _, err := a.Assign([]float64{1}, nil); err == nil {
		t.Error("short vector accepted")
	}
	if _, _, err := a.AssignBatch([][]float64{{1, 2, 3}, {1}}, nil); err == nil {
		t.Error("ragged batch accepted")
	}
	if _, _, err := a.AssignBatch(ds.Features[:3], make([]map[string]string, 2)); err == nil {
		t.Error("mismatched sensitive slice accepted")
	}
}

// TestAssignAfterClose: a request that raced past a swap still gets
// correct results from a closed assigner (inline path).
func TestAssignAfterClose(t *testing.T) {
	ds := testfix.Synth(5, 300, 4, 1, 0)
	m := trainModel(t, ds, 4, 2)
	want := sequential(m, ds.Features)
	a, err := NewAssigner(m, Options{Workers: 4, BatchSize: 16})
	if err != nil {
		t.Fatal(err)
	}
	a.Close()
	a.Close() // idempotent
	got, _, err := a.AssignBatch(ds.Features, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatal("closed assigner labels differently")
	}
}

// TestRegistryHotSwap swaps models under concurrent load and checks
// that every response is consistent with ONE of the two models — never
// a torn mix — and that late responses eventually come from the new
// model only.
func TestRegistryHotSwap(t *testing.T) {
	ds := testfix.Synth(31, 400, 4, 1, 0)
	mA := trainModel(t, ds, 4, 100) // different seeds → different centroids
	mB := trainModel(t, ds, 4, 200)
	wantA := sequential(mA, ds.Features)
	wantB := sequential(mB, ds.Features)
	if reflect.DeepEqual(wantA, wantB) {
		t.Fatal("fixture models agree everywhere; hot-swap test needs distinguishable models")
	}

	reg := NewRegistry(Options{Workers: 2, BatchSize: 32})
	if _, err := reg.Install("prod", "", mA); err != nil {
		t.Fatal(err)
	}
	defer reg.Close()

	var stop atomic.Bool
	var sawA, sawB, torn atomic.Uint64
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for !stop.Load() {
				e, err := reg.Get("prod")
				if err != nil {
					t.Error(err)
					return
				}
				got, _, err := e.Assigner().AssignBatch(ds.Features, nil)
				if err != nil {
					t.Error(err)
					return
				}
				switch {
				case reflect.DeepEqual(got, wantA):
					sawA.Add(1)
				case reflect.DeepEqual(got, wantB):
					sawB.Add(1)
				default:
					torn.Add(1)
				}
			}
		}()
	}

	// Swap A→B→A→…→B under load, letting clients get responses in
	// between so the race window is actually exercised.
	models := []*model.Model{mB, mA, mB, mA, mB}
	for _, m := range models {
		seen := sawA.Load() + sawB.Load()
		for sawA.Load()+sawB.Load() < seen+4 {
			runtime.Gosched()
		}
		if _, err := reg.Install("prod", "", m); err != nil {
			t.Fatal(err)
		}
	}
	for sawA.Load()+sawB.Load() < 64 {
		runtime.Gosched()
	}
	stop.Store(true)
	wg.Wait()

	if torn.Load() > 0 {
		t.Fatalf("%d torn responses (neither model A nor model B)", torn.Load())
	}
	if sawA.Load()+sawB.Load() == 0 {
		t.Fatal("no responses observed")
	}
	// After the dust settles the registry must serve exactly model B.
	e, err := reg.Get("prod")
	if err != nil {
		t.Fatal(err)
	}
	got, _, err := e.Assigner().AssignBatch(ds.Features, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, wantB) {
		t.Fatal("final model is not the last installed one")
	}
	if e.Generation != 6 {
		t.Errorf("generation = %d after 6 installs, want 6", e.Generation)
	}
}

func TestRegistryNamesAndDefault(t *testing.T) {
	ds := testfix.Synth(6, 120, 3, 1, 0)
	reg := NewRegistry(Options{})
	defer reg.Close()
	if _, err := reg.Get(""); err == nil {
		t.Error("empty registry resolved a model")
	}
	m1 := trainModel(t, ds, 3, 1)
	m2 := trainModel(t, ds, 3, 2)
	if _, err := reg.Install("alpha", "", m1); err != nil {
		t.Fatal(err)
	}
	if _, err := reg.Install("beta", "", m2); err != nil {
		t.Fatal(err)
	}
	if reg.Default() != "alpha" {
		t.Errorf("default = %q, want alpha (first installed)", reg.Default())
	}
	e, err := reg.Get("")
	if err != nil || e.Name != "alpha" {
		t.Errorf("Get(\"\") = %v, %v; want alpha", e, err)
	}
	if _, err := reg.Get("gamma"); err == nil {
		t.Error("unknown name resolved")
	}
	list := reg.List()
	if len(list) != 2 || list[0].Name != "alpha" || list[1].Name != "beta" {
		t.Errorf("List() = %v", list)
	}
	if _, err := reg.Reload("alpha", ""); err == nil {
		t.Error("Reload of a pathless model succeeded")
	}
	if _, err := reg.Reload("gamma", ""); err == nil {
		t.Error("Reload of an unknown model succeeded")
	}
}

// TestDrift feeds the assigner traffic with a sensitive mix that is
// deliberately skewed relative to training and checks the report sees
// it.
func TestDrift(t *testing.T) {
	ds := testfix.Synth(13, 400, 3, 1, 0)
	m := trainModel(t, ds, 3, 5)
	attr := m.Sensitive[m.CategoricalAttrs()[0]]
	a, err := NewAssigner(m, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer a.Close()

	// Before any traffic: training side only.
	reps := a.Drift()
	if len(reps) == 0 {
		t.Fatal("no drift reports for a model with categorical attributes")
	}
	if reps[0].ObservedRows != 0 || reps[0].MaxTV != 0 {
		t.Errorf("pre-traffic drift report = %+v", reps[0])
	}

	// Replay the training rows with their true values. Serving assigns
	// nearest-centroid while FairKM's training assignment also weighed
	// the fairness term, so the observed mix is close to — but not
	// exactly — the training distributions: small TV distance, nowhere
	// near the skewed-traffic level below.
	src := ds.SensitiveByName(attr.Name)
	for i, x := range ds.Features {
		sv := map[string]string{attr.Name: src.Values[src.Codes[i]]}
		if _, _, err := a.Assign(x, sv); err != nil {
			t.Fatal(err)
		}
	}
	reps = a.Drift()
	if reps[0].ObservedRows != uint64(ds.N()) {
		t.Errorf("observed %d rows, want %d", reps[0].ObservedRows, ds.N())
	}
	replayTV := reps[0].MaxTV
	if replayTV > 0.1 {
		t.Errorf("replaying training data drifted MaxTV=%v", replayTV)
	}
	if math.Abs(reps[0].Observed.AE-reps[0].Training.AE) > 0.1 {
		t.Errorf("replayed AE %v far from training AE %v", reps[0].Observed.AE, reps[0].Training.AE)
	}

	// Now hammer one value (including an unseen one): drift must rise.
	b, err := NewAssigner(m, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer b.Close()
	for i, x := range ds.Features {
		v := attr.Values[0]
		if i%5 == 0 {
			v = "unseen-segment"
		}
		if _, _, err := b.Assign(x, map[string]string{attr.Name: v}); err != nil {
			t.Fatal(err)
		}
	}
	reps = b.Drift()
	if reps[0].MaxTV < 0.1 || reps[0].MaxTV <= replayTV {
		t.Errorf("skewed traffic reported MaxTV=%v (replay was %v), want substantial drift", reps[0].MaxTV, replayTV)
	}
	if reps[0].Observed.AE == reps[0].Training.AE {
		t.Error("skewed traffic did not move the observed fairness report")
	}
}
