package serve

import (
	"context"
	"errors"
	"reflect"
	"runtime"
	"sync"
	"testing"
	"time"

	"repro/internal/testfix"
)

// waitFor polls cond until it holds or the deadline passes.
func waitFor(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatalf("timed out waiting for %s", what)
		}
		runtime.Gosched()
		time.Sleep(time.Millisecond)
	}
}

// stallGate is a ScoreHook that blocks every scoring task until
// released — the canonical stalled-worker fault.
type stallGate struct {
	entered chan struct{} // one token per task that reached the hook
	release chan struct{} // closed to un-stall everything
}

func newStallGate() *stallGate {
	return &stallGate{entered: make(chan struct{}, 128), release: make(chan struct{})}
}

func (s *stallGate) hook(rows int) {
	s.entered <- struct{}{}
	<-s.release
}

// TestAdmissionQueueFullSheds pins the bounded-queue contract: with one
// slot and a one-deep queue, the third concurrent request is rejected
// with a ShedError while the first two eventually complete.
func TestAdmissionQueueFullSheds(t *testing.T) {
	ds := testfix.Synth(3, 60, 3, 1, 0)
	m := trainModel(t, ds, 3, 1)
	stall := newStallGate()
	a, err := NewAssigner(m, Options{
		Workers:       1,
		MaxConcurrent: 1,
		MaxQueue:      1,
		ScoreHook:     stall.hook,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer a.Close()
	want := sequential(m, ds.Features[:4])

	type result struct {
		out []int
		err error
	}
	results := make(chan result, 2)
	run := func() {
		out, _, err := a.AssignBatch(ds.Features[:4], nil)
		results <- result{out, err}
	}

	go run()
	<-stall.entered // request 1 holds the slot, stalled in scoring
	go run()
	waitFor(t, "request 2 to queue", func() bool { return a.Stats().Queued == 1 })

	// Request 3 arrives with the slot held and the queue full: shed.
	_, _, err = a.AssignBatch(ds.Features[:4], nil)
	var shed *ShedError
	if !errors.As(err, &shed) {
		t.Fatalf("third request got %v, want ShedError", err)
	}
	if !IsShed(err) {
		t.Error("IsShed does not recognize the ShedError")
	}
	if shed.RetryAfter <= 0 {
		t.Errorf("ShedError.RetryAfter = %v, want > 0", shed.RetryAfter)
	}

	close(stall.release)
	for i := 0; i < 2; i++ {
		r := <-results
		if r.err != nil {
			t.Fatalf("admitted request failed: %v", r.err)
		}
		if !reflect.DeepEqual(r.out, want) {
			t.Error("admitted request labelled differently from sequential scan")
		}
	}
	st := a.Stats()
	if st.Shed != 1 || st.Requests != 2 {
		t.Errorf("stats = %+v, want Shed 1 / Requests 2", st)
	}
	if st.Inflight != 0 || st.Queued != 0 {
		t.Errorf("gauges not drained: %+v", st)
	}
}

// TestAdmissionDeadlineWhileQueued: a queued request whose context
// expires is rejected with an error wrapping context.DeadlineExceeded
// and counted in Stats.Deadline, and the stalled slot-holder still
// completes once the fault clears.
func TestAdmissionDeadlineWhileQueued(t *testing.T) {
	ds := testfix.Synth(5, 60, 3, 1, 0)
	m := trainModel(t, ds, 3, 2)
	stall := newStallGate()
	a, err := NewAssigner(m, Options{
		Workers:       1,
		MaxConcurrent: 1,
		MaxQueue:      8,
		ScoreHook:     stall.hook,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer a.Close()

	done := make(chan error, 1)
	go func() {
		_, _, err := a.AssignBatch(ds.Features[:4], nil)
		done <- err
	}()
	<-stall.entered

	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
	defer cancel()
	_, _, err = a.AssignBatchCtx(ctx, ds.Features[:4], nil)
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("queued request got %v, want DeadlineExceeded", err)
	}
	if IsShed(err) {
		t.Error("deadline expiry misclassified as shed")
	}

	// Single-query path honors the deadline the same way.
	if _, _, err := a.AssignCtx(ctx, ds.Features[0], nil); !errors.Is(err, context.DeadlineExceeded) {
		t.Errorf("AssignCtx after expiry got %v, want DeadlineExceeded", err)
	}

	close(stall.release)
	if err := <-done; err != nil {
		t.Fatalf("slot holder failed: %v", err)
	}
	st := a.Stats()
	if st.Deadline != 2 {
		t.Errorf("Deadline = %d, want 2", st.Deadline)
	}
}

// TestAdmissionBudgetSheds: once the wait estimator has learned the
// service time, an arrival whose estimated queue wait exceeds
// QueueBudget is shed immediately instead of queueing.
func TestAdmissionBudgetSheds(t *testing.T) {
	ds := testfix.Synth(7, 60, 3, 1, 0)
	m := trainModel(t, ds, 3, 3)
	stall := newStallGate()
	var hook func(int)
	slow := false
	hook = func(rows int) {
		if slow {
			stall.hook(rows)
			return
		}
		time.Sleep(30 * time.Millisecond) // seed the EWMA well above budget
	}
	a, err := NewAssigner(m, Options{
		Workers:       1,
		MaxConcurrent: 1,
		MaxQueue:      64,
		QueueBudget:   5 * time.Millisecond,
		ScoreHook:     func(rows int) { hook(rows) },
	})
	if err != nil {
		t.Fatal(err)
	}
	defer a.Close()

	// First request completes in ~30ms, seeding the service-time EWMA.
	if _, _, err := a.AssignBatch(ds.Features[:4], nil); err != nil {
		t.Fatal(err)
	}

	// Now stall the slot and queue one arrival behind it: its estimated
	// wait (1 × ~30ms / 1 slot) blows the 5ms budget → shed.
	slow = true
	holder := make(chan error, 1)
	go func() {
		_, _, err := a.AssignBatch(ds.Features[:4], nil)
		holder <- err
	}()
	<-stall.entered

	_, _, err = a.AssignBatch(ds.Features[:4], nil)
	var shed *ShedError
	if !errors.As(err, &shed) {
		t.Fatalf("over-budget arrival got %v, want ShedError", err)
	}
	if shed.RetryAfter < 5*time.Millisecond {
		t.Errorf("RetryAfter = %v, want >= the estimated wait", shed.RetryAfter)
	}

	close(stall.release)
	if err := <-holder; err != nil {
		t.Fatalf("slot holder failed: %v", err)
	}
}

// TestDeadlineMidBatchPooled: a pooled batch whose context expires
// mid-flight returns DeadlineExceeded promptly — even though one
// micro-batch is still pinned on a stalled worker — and the orphaned
// task drains without racing Close.
func TestDeadlineMidBatchPooled(t *testing.T) {
	ds := testfix.Synth(9, 300, 4, 1, 0)
	m := trainModel(t, ds, 4, 4)
	stall := newStallGate()
	first := true
	var mu sync.Mutex
	a, err := NewAssigner(m, Options{
		Workers:   2,
		BatchSize: 16,
		ScoreHook: func(rows int) {
			mu.Lock()
			f := first
			first = false
			mu.Unlock()
			if f {
				stall.hook(rows) // first micro-batch stalls hard
			}
		},
	})
	if err != nil {
		t.Fatal(err)
	}

	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	start := time.Now()
	_, _, err = a.AssignBatchCtx(ctx, ds.Features, nil)
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("stalled batch got %v, want DeadlineExceeded", err)
	}
	if waited := time.Since(start); waited > 3*time.Second {
		t.Errorf("request stuck %v behind a stalled worker; deadline should free it", waited)
	}
	if st := a.Stats(); st.Deadline != 1 {
		t.Errorf("Deadline = %d, want 1", st.Deadline)
	}

	// Un-stall and close: the orphaned micro-batch must drain cleanly.
	close(stall.release)
	a.Close()

	// A fresh assigner still serves correct results (no shared damage).
	b, err := NewAssigner(m, Options{Workers: 2, BatchSize: 16})
	if err != nil {
		t.Fatal(err)
	}
	defer b.Close()
	got, _, err := b.AssignBatch(ds.Features, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, sequential(m, ds.Features)) {
		t.Error("post-fault labelling differs from sequential scan")
	}
}

// TestGatedDeterminism: admission control must never change what a row
// scores against — gated results are identical to the ungated
// sequential scan for every pool shape.
func TestGatedDeterminism(t *testing.T) {
	ds := testfix.Synth(11, 400, 5, 2, 0)
	m := trainModel(t, ds, 5, 5)
	want := sequential(m, ds.Features)
	for _, workers := range []int{1, 4} {
		a, err := NewAssigner(m, Options{
			Workers:       workers,
			BatchSize:     32,
			MaxConcurrent: 2,
			MaxQueue:      4,
			QueueBudget:   time.Second,
		})
		if err != nil {
			t.Fatal(err)
		}
		var wg sync.WaitGroup
		errs := make(chan error, 8)
		for g := 0; g < 8; g++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				got, _, err := a.AssignBatchCtx(context.Background(), ds.Features, nil)
				if err != nil {
					errs <- err
					return
				}
				if !reflect.DeepEqual(got, want) {
					errs <- errors.New("gated labelling differs from sequential scan")
				}
			}()
		}
		wg.Wait()
		close(errs)
		for err := range errs {
			// Background contexts never expire and MaxQueue 4 < 8
			// clients can shed under load; sheds are acceptable here,
			// wrong labels are not.
			if !IsShed(err) {
				t.Error(err)
			}
		}
		a.Close()
	}
}
