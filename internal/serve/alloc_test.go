package serve

import (
	"testing"

	"repro/internal/telemetry"
	"repro/internal/testfix"
)

// TestHotPathAllocs pins the steady-state allocation budget of the
// serving hot paths. AssignBatch may allocate only its two result
// slices (labels + distances); the pool machinery (jobs, scratch,
// worker wakeups) must come from sync.Pools after warm-up. Assign
// must be allocation-free when the caller supplies no gate. A
// regression here shows up long before it shows up in ns/op — GC
// pressure under open-loop load is what breaks the SLO tail.
func TestHotPathAllocs(t *testing.T) {
	if raceEnabled {
		t.Skip("race-detector instrumentation inflates allocation counts")
	}
	ds := testfix.Adult(1, 512)
	m := trainModel(t, ds, 15, 1)
	rows := ds.Features

	a, err := NewAssigner(m, Options{Workers: 2, BatchSize: 64})
	if err != nil {
		t.Fatal(err)
	}
	defer a.Close()

	// Warm the job/scratch pools before measuring.
	for i := 0; i < 4; i++ {
		if _, _, err := a.AssignBatch(rows, nil); err != nil {
			t.Fatal(err)
		}
	}

	batch := testing.AllocsPerRun(20, func() {
		if _, _, err := a.AssignBatch(rows, nil); err != nil {
			t.Fatal(err)
		}
	})
	// out + dists, with headroom for a pool refill on an unlucky GC.
	if batch > 3 {
		t.Errorf("AssignBatch allocs/op = %.1f, want <= 3", batch)
	}

	x := rows[0]
	single := testing.AllocsPerRun(100, func() {
		if _, _, err := a.Assign(x, nil); err != nil {
			t.Fatal(err)
		}
	})
	if single > 0.5 {
		t.Errorf("Assign allocs/op = %.1f, want 0", single)
	}

	// Tracing on: the span bookkeeping (stage histogram records, flight
	// recorder) must add nothing beyond the trace-done defer itself.
	at, err := NewAssigner(m, Options{Workers: 2, BatchSize: 64,
		TracerFor: func(model string) *telemetry.RequestTracer {
			return telemetry.NewRequestTracer(telemetry.NewRegistry(),
				"alloc_request_stage_seconds", "Alloc stages.", model, 0)
		}})
	if err != nil {
		t.Fatal(err)
	}
	defer at.Close()
	for i := 0; i < 4; i++ {
		if _, _, err := at.AssignBatch(rows, nil); err != nil {
			t.Fatal(err)
		}
	}
	traced := testing.AllocsPerRun(20, func() {
		if _, _, err := at.AssignBatch(rows, nil); err != nil {
			t.Fatal(err)
		}
	})
	if traced > batch+1 {
		t.Errorf("traced AssignBatch allocs/op = %.1f, want <= untraced %.1f + 1", traced, batch)
	}
}
