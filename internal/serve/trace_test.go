package serve

import (
	"context"
	"testing"
	"time"

	"repro/internal/telemetry"
	"repro/internal/testfix"
)

// tracedAssigner builds an Assigner whose batches report into a fresh
// RequestTracer, returning both.
func tracedAssigner(t *testing.T, opts Options) (*Assigner, *telemetry.RequestTracer) {
	t.Helper()
	ds := testfix.Adult(1, 256)
	m := trainModel(t, ds, 5, 1)
	reg := telemetry.NewRegistry()
	var tracer *telemetry.RequestTracer
	opts.TracerFor = func(model string) *telemetry.RequestTracer {
		tracer = telemetry.NewRequestTracer(reg, "stage_seconds", "Stages.", model, 0)
		return tracer
	}
	a, err := NewAssigner(m, opts)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(a.Close)
	return a, tracer
}

// TestAssignBatchTraced: an OK batch produces one trace with a
// consistent stage breakdown and feeds the per-stage histograms.
func TestAssignBatchTraced(t *testing.T) {
	a, tracer := tracedAssigner(t, Options{Workers: 2, BatchSize: 16})
	rows := testfix.Adult(1, 256).Features
	for i := 0; i < 3; i++ {
		if _, _, err := a.AssignBatch(rows, nil); err != nil {
			t.Fatal(err)
		}
	}
	slow := tracer.Slowest()
	if len(slow) != 3 {
		t.Fatalf("recorder has %d traces, want 3", len(slow))
	}
	for _, tr := range slow {
		if tr.Outcome != telemetry.OutcomeOK || tr.Rows != len(rows) {
			t.Fatalf("trace = %+v", tr)
		}
		if tr.Total <= 0 || tr.Score <= 0 || tr.Score > tr.Total {
			t.Fatalf("stage breakdown inconsistent: %+v", tr)
		}
		// No gate configured: the request was admitted instantly and
		// never queued.
		if tr.Queue != 0 {
			t.Fatalf("queue wait without a gate: %+v", tr)
		}
		if tr.Admission+tr.Score > tr.Total {
			t.Fatalf("stages exceed total: %+v", tr)
		}
	}
	// Untraced single queries must not reach the recorder.
	if _, _, err := a.Assign(rows[0], nil); err != nil {
		t.Fatal(err)
	}
	if got := len(tracer.Slowest()); got != 3 {
		t.Fatalf("single query was traced: %d traces", got)
	}
}

// TestAssignBatchTracedOutcomes: shed and deadline requests land in
// the flight recorder with their outcome, but stay out of the OK-only
// stage histograms.
func TestAssignBatchTracedOutcomes(t *testing.T) {
	entered := make(chan struct{}, 1)
	release := make(chan struct{})
	a, tracer := tracedAssigner(t, Options{
		Workers:       1,
		BatchSize:     16,
		MaxConcurrent: 1,
		MaxQueue:      1,
		ScoreHook: func(rows int) {
			select {
			case entered <- struct{}{}:
				<-release // first scorer wedges until released
			default:
			}
		},
	})
	rows := testfix.Adult(1, 256).Features

	firstDone := make(chan error, 1)
	go func() {
		_, _, err := a.AssignBatch(rows, nil)
		firstDone <- err
	}()
	<-entered // slot held

	// Queued request with an already-short deadline: expires waiting.
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Millisecond)
	defer cancel()
	if _, _, err := a.AssignBatchCtx(ctx, rows, nil); err == nil {
		t.Fatal("queued request beat a wedged slot")
	}

	// Queue may still hold the expired waiter's slot briefly; spin until
	// the gate shows empty, then overflow it twice: occupy + shed.
	waitDone := make(chan error, 1)
	go func() {
		_, _, err := a.AssignBatchCtx(context.Background(), rows, nil)
		waitDone <- err
	}()
	deadline := time.Now().Add(2 * time.Second)
	for a.Stats().Queued < 1 {
		if time.Now().After(deadline) {
			t.Fatal("third request never queued")
		}
		time.Sleep(time.Millisecond)
	}
	if _, _, err := a.AssignBatch(rows, nil); !IsShed(err) {
		t.Fatalf("over-queue request err = %v, want shed", err)
	}

	close(release)
	if err := <-firstDone; err != nil {
		t.Fatalf("wedged request failed: %v", err)
	}
	if err := <-waitDone; err != nil {
		t.Fatalf("queued request failed: %v", err)
	}

	var ok, shed, dead int
	for _, tr := range tracer.Slowest() {
		switch tr.Outcome {
		case telemetry.OutcomeOK:
			ok++
			if tr.Score <= 0 {
				t.Errorf("OK trace without score stage: %+v", tr)
			}
		case telemetry.OutcomeShed:
			shed++
			if tr.Score != 0 || tr.Admission != tr.Total {
				t.Errorf("shed trace should be all admission: %+v", tr)
			}
		case telemetry.OutcomeDeadline:
			dead++
		}
	}
	if ok != 2 || shed != 1 || dead != 1 {
		t.Fatalf("outcomes ok/shed/deadline = %d/%d/%d, want 2/1/1", ok, shed, dead)
	}
	// Stage histograms accumulate OK requests only.
	if n := tracer.Snapshot(telemetry.StageTotal).Count(); n != 2 {
		t.Fatalf("total stage histogram has %d records, want 2 (OK only)", n)
	}
	// The queued-then-admitted OK request measured a real queue wait.
	if n := tracer.Snapshot(telemetry.StageQueue).Count(); n != 2 {
		t.Fatalf("queue stage histogram has %d records, want 2", n)
	}
	if tracer.Snapshot(telemetry.StageQueue).Max() <= 0 {
		t.Fatal("no queue wait measured for the queued OK request")
	}
}
