package serve

import (
	"sync"
	"testing"
	"time"

	"repro/internal/telemetry"
)

func newLatTracker() *tracker {
	return &tracker{lat: telemetry.NewAtomicHistogram()}
}

// TestSnapshotQuantiles drives the tracker's histogram-backed
// quantiles: with latencies 1..100ms the snapshot's P50/P99 must land
// on the nearest-rank elements within the histogram's ≤1/32 bucket
// quantization (and never above the observed max).
func TestSnapshotQuantiles(t *testing.T) {
	const n = 100
	tr := newLatTracker()
	for i := 1; i <= n; i++ {
		tr.record(1, time.Duration(i)*time.Millisecond)
	}
	s := tr.snapshot()
	check := func(name string, got, exact time.Duration) {
		t.Helper()
		if got < exact || float64(got) > float64(exact)*(1+1.0/32) {
			t.Errorf("%s = %v, want within [%v, %v+3.2%%]", name, got, exact, exact)
		}
	}
	check("P50", s.P50, 50*time.Millisecond)
	check("P99", s.P99, 99*time.Millisecond)
	if s.P999 < 99*time.Millisecond || s.P999 > 100*time.Millisecond {
		t.Errorf("P999 = %v, want in [99ms, max=100ms]", s.P999)
	}
	if s.Requests != n || s.Rows != n {
		t.Errorf("requests/rows = %d/%d, want %d/%d", s.Requests, s.Rows, n, n)
	}

	// Single sample: every quantile is that sample's bucket, clamped to
	// the exact max.
	tr2 := newLatTracker()
	tr2.record(1, 5*time.Millisecond)
	s2 := tr2.snapshot()
	if s2.P50 != 5*time.Millisecond || s2.P99 != 5*time.Millisecond || s2.P999 != 5*time.Millisecond {
		t.Errorf("single-sample quantiles = %v/%v/%v, want 5ms each", s2.P50, s2.P99, s2.P999)
	}

	// Empty tracker: all zeros, no panic.
	if s0 := newLatTracker().snapshot(); s0.P50 != 0 || s0.P99 != 0 || s0.P999 != 0 {
		t.Errorf("empty snapshot quantiles = %+v", s0)
	}
}

// TestSnapshotDoesNotBlockRecording is the scrape-contention
// regression test: the old tracker copied and sorted its latency ring
// under the same mutex record() took, so every /metrics scrape stalled
// the assign hot path. The histogram tracker shares NO lock between
// the two sides. This test hammers snapshot() and latency() from
// scraper goroutines while recorders run flat out — under -race it
// proves the lock-free design sound, and the exact final counts prove
// no record is lost to a scrape, however often one is in flight.
func TestSnapshotDoesNotBlockRecording(t *testing.T) {
	const recorders = 4
	const perR = 20000
	tr := newLatTracker()
	stop := make(chan struct{})
	var scrapers sync.WaitGroup
	for s := 0; s < 2; s++ {
		scrapers.Add(1)
		go func() {
			defer scrapers.Done()
			for {
				select {
				case <-stop:
					return
				default:
					snap := tr.snapshot()
					if snap.P50 > snap.P99 || snap.P99 > snap.P999 {
						t.Errorf("inconsistent mid-flight snapshot: %+v", snap)
						return
					}
					// record() bumps the request counter before the
					// histogram, so a later histogram read can trail the
					// earlier counter read only by the recorders caught
					// mid-record.
					if h := tr.latency(); h.Count()+recorders < snap.Requests {
						t.Errorf("latency histogram lost records: %d well behind counter %d", h.Count(), snap.Requests)
						return
					}
				}
			}
		}()
	}
	var recordersWG sync.WaitGroup
	for r := 0; r < recorders; r++ {
		recordersWG.Add(1)
		go func() {
			defer recordersWG.Done()
			for i := 0; i < perR; i++ {
				tr.record(1, time.Duration(i%1000+1)*time.Microsecond)
			}
		}()
	}
	recordersWG.Wait()
	close(stop)
	scrapers.Wait()
	s := tr.snapshot()
	if want := uint64(recorders * perR); s.Requests != want || tr.latency().Count() != want {
		t.Fatalf("lost records under concurrent scraping: requests=%d histogram=%d, want %d",
			s.Requests, tr.latency().Count(), want)
	}
}
