package serve

import (
	"testing"
	"time"
)

// TestQuantileNearestRank pins the nearest-rank estimator ⌈q·n⌉−1 on
// known samples. The previous int(q·(n−1)) floor read ≈P98.8 for P99
// over a full window, systematically under-reporting tail latency.
func TestQuantileNearestRank(t *testing.T) {
	ascending := func(n int) []time.Duration {
		s := make([]time.Duration, n)
		for i := range s {
			s[i] = time.Duration(i+1) * time.Millisecond
		}
		return s
	}
	ms := func(d int) time.Duration { return time.Duration(d) * time.Millisecond }

	cases := []struct {
		name   string
		sorted []time.Duration
		q      float64
		want   time.Duration
	}{
		{"single element P50", ascending(1), 0.50, ms(1)},
		{"single element P99", ascending(1), 0.99, ms(1)},
		{"two elements P50", ascending(2), 0.50, ms(1)},
		{"two elements P99", ascending(2), 0.99, ms(2)},
		{"P50 of 4 is rank 2", ascending(4), 0.50, ms(2)},
		{"P50 of 5 is rank 3", ascending(5), 0.50, ms(3)},
		{"P99 of 100 is rank 99", ascending(100), 0.99, ms(99)},
		{"P99 of 200 is rank 198", ascending(200), 0.99, ms(198)},
		// The motivating case: a full 1024-entry latency ring. The old
		// floor picked rank 1012 (≈P98.8); nearest rank is ⌈0.99·1024⌉
		// = 1014.
		{"P99 of full 1024 ring", ascending(1024), 0.99, ms(1014)},
		{"P100 is the max", ascending(7), 1.0, ms(7)},
	}
	for _, c := range cases {
		if got := quantile(c.sorted, c.q); got != c.want {
			t.Errorf("%s: quantile(n=%d, q=%v) = %v, want %v", c.name, len(c.sorted), c.q, got, c.want)
		}
	}
}

// TestSnapshotQuantiles drives the estimator through the tracker's
// ring: with latencies 1..window ms recorded in order, the snapshot's
// P50/P99 must be the nearest-rank elements, not the floored ones.
func TestSnapshotQuantiles(t *testing.T) {
	const window = 100
	tr := &tracker{ring: make([]time.Duration, window)}
	for i := 1; i <= window; i++ {
		tr.record(1, time.Duration(i)*time.Millisecond)
	}
	s := tr.snapshot()
	if want := 50 * time.Millisecond; s.P50 != want {
		t.Errorf("P50 = %v, want %v", s.P50, want)
	}
	if want := 99 * time.Millisecond; s.P99 != want {
		t.Errorf("P99 = %v, want %v", s.P99, want)
	}
	// Partially filled ring: quantiles over just the recorded prefix.
	tr2 := &tracker{ring: make([]time.Duration, window)}
	tr2.record(1, 5*time.Millisecond)
	s2 := tr2.snapshot()
	if s2.P50 != 5*time.Millisecond || s2.P99 != 5*time.Millisecond {
		t.Errorf("single-sample P50/P99 = %v/%v, want 5ms/5ms", s2.P50, s2.P99)
	}
}
