package serve

import (
	"os"
	"path/filepath"
	"reflect"
	"runtime"
	"strings"
	"sync"
	"sync/atomic"
	"testing"

	"repro/internal/model"
	"repro/internal/testfix"
)

// TestReloadFaultInjectionUnderTraffic extends the hot-swap hammer with
// corrupted-artifact faults: while clients hammer the registry, Reload
// is pointed at truncated, garbage, NaN-poisoned and semantically
// invalid artifact files. Every such reload must fail cleanly, leave
// the incumbent model serving with zero dropped in-flight requests, and
// leave the generation untouched; a good artifact afterwards still
// swaps in.
func TestReloadFaultInjectionUnderTraffic(t *testing.T) {
	dir := t.TempDir()
	ds := testfix.Synth(17, 300, 4, 1, 0)
	mA := trainModel(t, ds, 4, 300)
	mB := trainModel(t, ds, 4, 400)
	wantA := sequential(mA, ds.Features)
	wantB := sequential(mB, ds.Features)
	if reflect.DeepEqual(wantA, wantB) {
		t.Fatal("fixture models agree everywhere; fault test needs distinguishable models")
	}

	goodA := filepath.Join(dir, "a.json")
	goodB := filepath.Join(dir, "b.json")
	if err := model.Save(goodA, mA); err != nil {
		t.Fatal(err)
	}
	if err := model.Save(goodB, mB); err != nil {
		t.Fatal(err)
	}
	raw, err := os.ReadFile(goodA)
	if err != nil {
		t.Fatal(err)
	}

	// The fault menu: every file must fail model.Load, each through a
	// different layer (io/JSON/schema validation).
	write := func(name string, data []byte) string {
		p := filepath.Join(dir, name)
		if err := os.WriteFile(p, data, 0o644); err != nil {
			t.Fatal(err)
		}
		return p
	}
	text := string(raw)
	if !strings.Contains(text, `"k": 4`) || !strings.Contains(text, `"lambda"`) {
		t.Fatalf("artifact shape changed; fault fixtures need updating:\n%.200s", text)
	}
	faults := map[string]string{
		"truncated": write("trunc.json", raw[:len(raw)/2]),
		"garbage":   write("garbage.json", []byte("{not json at all")),
		// NaN is not valid JSON, so a poisoned artifact dies in Decode.
		"nan-poisoned": write("nan.json", []byte(strings.Replace(text, `"lambda": `, `"lambda": NaN, "was": `, 1))),
		// Valid JSON, structurally broken: only Validate catches it.
		"semantic": write("semantic.json", []byte(strings.Replace(text, `"k": 4`, `"k": 0`, 1))),
		"empty":    write("empty.json", nil),
	}
	for name, p := range faults {
		if _, err := model.Load(p); err == nil {
			t.Fatalf("fault fixture %q unexpectedly loads", name)
		}
	}

	reg := NewRegistry(Options{Workers: 2, BatchSize: 32})
	defer reg.Close()
	if _, err := reg.Load("prod", goodA); err != nil {
		t.Fatal(err)
	}

	// Hammer: clients must only ever see model A or model B labellings,
	// and no request may error while faulty reloads fly.
	var stop atomic.Bool
	var served, dropped, torn atomic.Uint64
	var wg sync.WaitGroup
	for g := 0; g < 6; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for !stop.Load() {
				e, err := reg.Get("prod")
				if err != nil {
					dropped.Add(1)
					continue
				}
				got, _, err := e.Assigner().AssignBatch(ds.Features, nil)
				if err != nil {
					dropped.Add(1)
					continue
				}
				switch {
				case reflect.DeepEqual(got, wantA), reflect.DeepEqual(got, wantB):
					served.Add(1)
				default:
					torn.Add(1)
				}
			}
		}()
	}

	for name, p := range faults {
		before := served.Load()
		for served.Load() < before+2 { // let traffic interleave the fault
			runtime.Gosched()
		}
		if _, err := reg.Reload("prod", p); err == nil {
			t.Errorf("reload of %s artifact succeeded", name)
		}
		e, err := reg.Get("prod")
		if err != nil {
			t.Fatalf("after %s reload: %v", name, err)
		}
		if e.Generation != 1 {
			t.Errorf("after %s reload generation = %d, want 1 (incumbent untouched)", name, e.Generation)
		}
		if got := e.Model().Provenance.Seed; got != mA.Provenance.Seed {
			t.Errorf("after %s reload serving seed %d, want incumbent %d", name, got, mA.Provenance.Seed)
		}
	}

	// A good artifact still swaps in after the fault storm.
	if _, err := reg.Reload("prod", goodB); err != nil {
		t.Fatalf("good reload after faults: %v", err)
	}
	for served.Load() < 16 {
		runtime.Gosched()
	}
	stop.Store(true)
	wg.Wait()

	if d := dropped.Load(); d != 0 {
		t.Errorf("%d in-flight requests dropped during faulty reloads, want 0", d)
	}
	if tn := torn.Load(); tn != 0 {
		t.Errorf("%d torn responses during faulty reloads, want 0", tn)
	}
	e, err := reg.Get("prod")
	if err != nil {
		t.Fatal(err)
	}
	if e.Generation != 2 || e.Model().Provenance.Seed != mB.Provenance.Seed {
		t.Errorf("final entry gen=%d seed=%d, want gen 2 serving model B", e.Generation, e.Model().Provenance.Seed)
	}
	got, _, err := e.Assigner().AssignBatch(ds.Features, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, wantB) {
		t.Error("post-swap labelling is not model B")
	}
}
