package serve

import (
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/dataset"
	"repro/internal/metrics"
	"repro/internal/model"
	"repro/internal/telemetry"
)

// Stats is a point-in-time snapshot of one Assigner's serving counters.
type Stats struct {
	// Requests counts completed Assign/AssignBatch calls; Rows counts
	// labelled feature vectors (a batch of 100 is 1 request, 100 rows).
	Requests uint64
	Rows     uint64
	// Shed counts requests rejected by admission control (ShedError);
	// Deadline counts requests whose context expired — queued or
	// mid-batch — before completion. Neither contributes to
	// Requests/Rows or the latency quantiles.
	Shed     uint64
	Deadline uint64
	// Inflight and Queued are instantaneous admission-gate gauges:
	// requests holding scoring slots and requests waiting for one.
	// Always zero when admission control is off.
	Inflight int
	Queued   int
	// P50, P99 and P999 are request latency quantiles over ALL accepted
	// requests since the assigner started (zero until the first
	// request), read from a full-fidelity log-linear histogram — no
	// sampling window, no coordinated-omission bias in the tail.
	P50  time.Duration
	P99  time.Duration
	P999 time.Duration
}

// tracker accumulates counters, the latency histogram and the drift
// state for one Assigner.
type tracker struct {
	model *model.Model

	requests atomic.Uint64
	rows     atomic.Uint64
	shed     atomic.Uint64
	deadline atomic.Uint64

	// lat replaces the old 1024-sample quantile ring: recording is
	// wait-free (no mutex shared with scrapes) and quantiles come from
	// the full distribution instead of a recent-window sort. See
	// telemetry.AtomicHistogram for why this keeps /metrics scrapes off
	// the assign hot path (pinned by TestSnapshotDoesNotBlockRecording).
	lat *telemetry.AtomicHistogram

	driftMu sync.Mutex
	attrs   []*driftAttr // guarded by driftMu
}

// driftAttr accumulates the observed sensitive-value mix per cluster
// for one categorical attribute, against the model's training state.
type driftAttr struct {
	ai     int // index into model.Sensitive
	name   string
	dom    *dataset.DomainIndex // training snapshot + unseen serving values
	counts [][]float64          // [cluster][value], value slices grow with dom
	seen   uint64               // observed rows carrying this attribute
	// training is the fairness report of the model's per-cluster
	// training distributions, computed once here: it never changes
	// after load (values first seen while serving have training
	// frequency 0 everywhere, which leaves the report's distances
	// untouched), so per-scrape recomputation would only serialize the
	// observe hot path for nothing.
	training metrics.FairnessReport
}

func newTracker(m *model.Model) *tracker {
	t := &tracker{lat: telemetry.NewAtomicHistogram()}
	for _, ai := range m.CategoricalAttrs() {
		dom, err := m.DomainIndex(ai)
		if err != nil {
			continue // Validate already rejects broken domains
		}
		s := m.Sensitive[ai]
		trainSizes := make([]float64, m.K)
		trainDists := make([][]float64, m.K)
		for c := 0; c < m.K; c++ {
			trainSizes[c] = m.Clusters[c].Mass
			trainDists[c] = m.Clusters[c].Distributions[ai]
		}
		da := &driftAttr{
			ai:       ai,
			name:     s.Name,
			dom:      dom,
			counts:   make([][]float64, m.K),
			training: metrics.FairnessFromDistributions(s.Name, s.TrainFractions, trainSizes, trainDists),
		}
		for c := range da.counts {
			da.counts[c] = make([]float64, dom.Len())
		}
		t.attrs = append(t.attrs, da)
	}
	t.model = m
	return t
}

// record counts one completed request on the wait-free counters; it is
// on the per-request serving path.
//
//fairvet:hotpath
func (t *tracker) record(rows int, d time.Duration) {
	t.requests.Add(1)
	t.rows.Add(uint64(rows))
	t.lat.Record(d)
}

// observe records one labelled row's sensitive values (keyed by
// attribute name; attributes absent from the map are skipped).
func (t *tracker) observe(cluster int, sensitive map[string]string) {
	t.driftMu.Lock()
	defer t.driftMu.Unlock()
	for _, da := range t.attrs {
		v, ok := sensitive[da.name]
		if !ok {
			continue
		}
		code := da.dom.Code(v)
		cc := da.counts[cluster]
		for code >= len(cc) {
			cc = append(cc, 0)
		}
		cc[code]++
		da.counts[cluster] = cc
		da.seen++
	}
}

// snapshot reads the counters and derives the latency quantiles from a
// histogram snapshot. Unlike the old ring (copy + sort of 1024 samples
// under the same mutex record() took), this shares no lock with the
// assign hot path: a scrape costs the reader a bucket-array scan and
// costs writers nothing.
func (t *tracker) snapshot() Stats {
	s := Stats{
		Requests: t.requests.Load(),
		Rows:     t.rows.Load(),
		Shed:     t.shed.Load(),
		Deadline: t.deadline.Load(),
	}
	h := t.lat.Snapshot()
	if h.Count() == 0 {
		return s
	}
	s.P50 = h.Quantile(0.50)
	s.P99 = h.Quantile(0.99)
	s.P999 = h.Quantile(0.999)
	return s
}

// latency snapshots the full accepted-request latency distribution —
// the histogram behind the Stats quantiles, for exposition as
// Prometheus le buckets.
func (t *tracker) latency() *telemetry.Histogram { return t.lat.Snapshot() }

// DriftReport compares the sensitive-value mix observed in serving
// traffic against the model's training distributions, per categorical
// attribute.
type DriftReport struct {
	// Attribute names the sensitive attribute.
	Attribute string
	// ObservedRows is how many labelled rows carried this attribute.
	ObservedRows uint64
	// Training is the fairness report of the model's per-cluster
	// training distributions against its training Fr_X; Observed is the
	// same measure over serving traffic. Divergence between the two is
	// drift: the fair clustering was balanced for the training mix, not
	// the one now arriving.
	Training metrics.FairnessReport
	Observed metrics.FairnessReport
	// MaxTV is the largest total-variation distance between any
	// cluster's observed mix and its training distribution (clusters
	// with no observed rows are skipped). 0 = traffic matches training,
	// 1 = completely disjoint.
	MaxTV float64
}

// drift materializes the current drift reports. Attributes with no
// observations yet report only the training side.
func (t *tracker) drift() []DriftReport {
	t.driftMu.Lock()
	defer t.driftMu.Unlock()
	m := t.model
	var reps []DriftReport
	for _, da := range t.attrs {
		s := m.Sensitive[da.ai]
		rep := DriftReport{
			Attribute:    s.Name,
			ObservedRows: da.seen,
			Training:     da.training,
		}
		if da.seen > 0 {
			nvals := da.dom.Len()
			// Training frX and distributions padded with zeros for values
			// first seen while serving (their training frequency is 0 by
			// definition).
			frX := make([]float64, nvals)
			copy(frX, s.TrainFractions)
			trainDists := make([][]float64, m.K)
			for c := range trainDists {
				td := make([]float64, nvals)
				copy(td, m.Clusters[c].Distributions[da.ai])
				trainDists[c] = td
			}
			obsSizes := make([]float64, m.K)
			obsDists := make([][]float64, m.K)
			for c := range obsDists {
				od := make([]float64, nvals)
				total := 0.0
				for v, cnt := range da.counts[c] {
					od[v] = cnt
					total += cnt
				}
				obsSizes[c] = total
				if total > 0 {
					for v := range od {
						od[v] /= total
					}
					tv := 0.0
					for v := range od {
						d := od[v] - trainDists[c][v]
						if d < 0 {
							d = -d
						}
						tv += d
					}
					tv /= 2
					if tv > rep.MaxTV {
						rep.MaxTV = tv
					}
				}
				obsDists[c] = od
			}
			rep.Observed = metrics.FairnessFromDistributions(s.Name, frX, obsSizes, obsDists)
		}
		reps = append(reps, rep)
	}
	return reps
}
