//go:build race

package serve

// raceEnabled reports whether the race detector is active; its
// instrumentation inflates allocation counts, so alloc-budget
// assertions skip themselves under -race.
const raceEnabled = true
