package serve

//fairvet:deterministic snapshot/listing code: /v1/models and /metrics output order must not depend on map iteration (List sorts after collecting)

import (
	"fmt"
	"sort"
	"sync"
	"time"

	"repro/internal/model"
	"repro/internal/telemetry"
)

// Entry is one registered model: an immutable Assigner plus load
// metadata. Entries are themselves immutable — a reload installs a new
// Entry rather than mutating the old one, so a request that resolved an
// Entry keeps a consistent (model, stats) pair for its whole lifetime.
type Entry struct {
	// Name is the registry key.
	Name string
	// Path is where the artifact was loaded from ("" for in-memory
	// registrations); Reload re-reads it.
	Path string
	// LoadedAt is when this Entry was installed.
	LoadedAt time.Time
	// Generation increments on every swap of this name, starting at 1.
	Generation int

	assigner *Assigner
}

// Assigner returns the entry's immutable assigner.
func (e *Entry) Assigner() *Assigner { return e.assigner }

// Model returns the entry's immutable model.
func (e *Entry) Model() *model.Model { return e.assigner.Model() }

// Registry is a named set of served models with atomic hot-swap.
//
// The swap contract: Get returns a fully-constructed immutable Entry or
// nothing — never a partially-loaded model. Install loads and validates
// the incoming artifact completely before publishing it, then swaps the
// map binding under the write lock; requests already holding the old
// Entry finish on the old model (its worker pool drains before closing,
// see Assigner.Close), requests resolving the name afterwards get the
// new one. A failed load leaves the old Entry serving untouched.
type Registry struct {
	mu      sync.RWMutex
	entries map[string]*Entry
	defName string
	opts    Options
}

// NewRegistry returns an empty registry; opts configure every Assigner
// it constructs.
func NewRegistry(opts Options) *Registry {
	return &Registry{entries: map[string]*Entry{}, opts: opts}
}

// Install registers (or hot-swaps) a model under name. The first
// installed model becomes the default. path records where Reload should
// re-read the artifact from; it may be empty for in-memory models.
func (r *Registry) Install(name, path string, m *model.Model) (*Entry, error) {
	if name == "" {
		name = m.Name
	}
	if name == "" {
		return nil, fmt.Errorf("serve: model has no name")
	}
	opts := r.opts
	if opts.TracerFor != nil {
		// Bind the tracer factory to the SERVING name (the registry
		// key), not the artifact's internal name: that is the identity
		// every other metric labels with, and it is stable across hot
		// reloads that swap in artifacts with different internal names.
		factory, served := opts.TracerFor, name
		opts.TracerFor = func(string) *telemetry.RequestTracer { return factory(served) }
	}
	a, err := NewAssigner(m, opts)
	if err != nil {
		return nil, err
	}
	//fairvet:ignore nodeterminism -- LoadedAt is operational provenance shown in /v1/models, never an input to scoring
	e := &Entry{Name: name, Path: path, LoadedAt: time.Now(), Generation: 1, assigner: a}

	r.mu.Lock()
	old := r.entries[name]
	if old != nil {
		e.Generation = old.Generation + 1
	}
	r.entries[name] = e
	if r.defName == "" {
		r.defName = name
	}
	r.mu.Unlock()

	if old != nil {
		// Drain the displaced pool in the background: in-flight requests
		// holding the old Entry finish on the old model.
		go old.assigner.Close()
	}
	return e, nil
}

// Load reads the artifact at path and installs it. An empty name keys
// the model by its artifact name (file base name as a fallback).
func (r *Registry) Load(name, path string) (*Entry, error) {
	m, err := model.Load(path)
	if err != nil {
		return nil, err
	}
	return r.Install(name, path, m)
}

// Reload re-reads an installed model's artifact from its recorded path
// (or a new path, when given) and hot-swaps it. The old model keeps
// serving until the new one is fully loaded and validated; on error the
// registry is unchanged.
func (r *Registry) Reload(name, path string) (*Entry, error) {
	r.mu.RLock()
	old := r.entries[name]
	r.mu.RUnlock()
	if old == nil {
		return nil, fmt.Errorf("serve: no model %q", name)
	}
	if path == "" {
		path = old.Path
	}
	if path == "" {
		return nil, fmt.Errorf("serve: model %q has no artifact path to reload from", name)
	}
	return r.Load(name, path)
}

// Get resolves a model name; the empty string means the default model.
func (r *Registry) Get(name string) (*Entry, error) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	if name == "" {
		name = r.defName
	}
	e := r.entries[name]
	if e == nil {
		if len(r.entries) == 0 {
			return nil, fmt.Errorf("serve: no models registered")
		}
		return nil, fmt.Errorf("serve: no model %q", name)
	}
	return e, nil
}

// Default returns the default model's name ("" when empty).
func (r *Registry) Default() string {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return r.defName
}

// List snapshots all entries, sorted by name.
func (r *Registry) List() []*Entry {
	r.mu.RLock()
	out := make([]*Entry, 0, len(r.entries))
	for _, e := range r.entries {
		out = append(out, e)
	}
	r.mu.RUnlock()
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// Close drains every model's worker pool.
func (r *Registry) Close() {
	r.mu.Lock()
	entries := r.entries
	r.entries = map[string]*Entry{}
	r.defName = ""
	r.mu.Unlock()
	for _, e := range entries {
		e.assigner.Close()
	}
}
