package serve

import (
	"context"
	"errors"
	"fmt"
	"sync/atomic"
	"time"
)

// DefaultMaxQueue is the admission queue bound when Options.MaxConcurrent
// is set but Options.MaxQueue is not: how many requests may wait for a
// scoring slot before arrivals are shed.
const DefaultMaxQueue = 64

// defaultRetryAfter is the Retry-After hint when the gate has no wait
// estimate yet (no request has completed since construction).
const defaultRetryAfter = 100 * time.Millisecond

// ShedError is an admission-control rejection: the server is over its
// configured capacity and refused the request instead of queueing it
// unboundedly. RetryAfter is the server's estimate of when capacity
// frees up (cmd/fairserved maps it to HTTP 429 + a Retry-After header).
type ShedError struct {
	// RetryAfter estimates how long the caller should back off.
	RetryAfter time.Duration
	// Reason says which bound tripped ("queue full" or "queue wait
	// exceeds budget").
	Reason string
}

func (e *ShedError) Error() string {
	return fmt.Sprintf("serve: overloaded (%s), retry after %v", e.Reason, e.RetryAfter)
}

// IsShed reports whether err is an admission-control rejection
// (shed-don't-collapse: the caller should back off and retry, the
// server is healthy).
func IsShed(err error) bool {
	var s *ShedError
	return errors.As(err, &s)
}

// gate is a per-model admission controller: a slot semaphore bounding
// concurrent scoring, a bounded wait queue, and an optional latency
// budget that sheds arrivals whose estimated queue wait is already
// hopeless. The estimate is queued·EWMA(service time)/slots — the wait
// a new arrival would see if every queued request takes about as long
// as recent ones did.
//
// The gate bounds *requests*, not pool workers: a request that gives up
// on its deadline releases its slot even if a stalled micro-batch still
// pins a pool goroutine, so capacity degrades gracefully instead of
// deadlocking behind a fault.
type gate struct {
	slots    chan struct{}
	maxQueue int64
	budget   time.Duration

	queued atomic.Int64
	// ewma is the smoothed admitted-service time in nanoseconds
	// (α = 1/8), seeded by the first completion.
	ewma atomic.Int64
}

// newGate returns nil (admission control off) unless MaxConcurrent > 0.
func newGate(o Options) *gate {
	if o.MaxConcurrent <= 0 {
		return nil
	}
	return &gate{
		slots:    make(chan struct{}, o.MaxConcurrent),
		maxQueue: int64(o.MaxQueue),
		budget:   o.QueueBudget,
	}
}

// acquire admits the request or rejects it: *ShedError when a capacity
// bound trips, ctx.Err() when the request's deadline expires while
// queued. A nil error means the caller holds a slot and must
// release(). queueWait is the measured blocking wait in the queue —
// the span-trace "queue" stage — and is zero on the uncontended fast
// path (which stays clock-free) and on shed rejections (the request
// never queued).
func (g *gate) acquire(ctx context.Context) (queueWait time.Duration, err error) {
	select {
	case g.slots <- struct{}{}:
		return 0, nil
	default:
	}
	q := g.queued.Add(1)
	if q > g.maxQueue {
		g.queued.Add(-1)
		return 0, &ShedError{Reason: "queue full", RetryAfter: g.retryAfter(q)}
	}
	if g.budget > 0 {
		if wait := g.estimate(q); wait > g.budget {
			g.queued.Add(-1)
			return 0, &ShedError{Reason: "queue wait exceeds budget", RetryAfter: wait}
		}
	}
	defer g.queued.Add(-1)
	enqueued := time.Now()
	select {
	case g.slots <- struct{}{}:
		return time.Since(enqueued), nil
	case <-ctx.Done():
		return time.Since(enqueued), ctx.Err()
	}
}

// release frees a slot and folds the observed service time (admission
// to completion, queue wait excluded) into the wait estimator.
func (g *gate) release(served time.Duration) {
	<-g.slots
	n := served.Nanoseconds()
	if n < 0 {
		n = 0
	}
	for {
		old := g.ewma.Load()
		next := n
		if old > 0 {
			next = old + (n-old)/8
		}
		if g.ewma.CompareAndSwap(old, next) {
			return
		}
	}
}

// estimate predicts the queue wait for an arrival with q requests
// already waiting: zero until the first completion seeds the EWMA.
func (g *gate) estimate(q int64) time.Duration {
	return time.Duration(q * g.ewma.Load() / int64(cap(g.slots)))
}

// retryAfter picks a back-off hint for a shed response: the wait
// estimate when one exists, else the configured budget, else a default.
func (g *gate) retryAfter(q int64) time.Duration {
	if w := g.estimate(q); w > 0 {
		return w
	}
	if g.budget > 0 {
		return g.budget
	}
	return defaultRetryAfter
}

// depth snapshots the gauges: requests holding slots and requests
// waiting for one.
func (g *gate) depth() (inflight, queued int) {
	return len(g.slots), int(g.queued.Load())
}
