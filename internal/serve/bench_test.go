package serve

import (
	"fmt"
	"testing"

	"repro/internal/model"
	"repro/internal/stats"
	"repro/internal/telemetry"
	"repro/internal/testfix"
)

// syntheticModel builds a minimal valid model whose k centroids are
// evenly-strided copies of the given rows — the shape a trained model
// has (centroids inside the data's hull) without running a training
// job: the k-sweep benchmarks only exercise the scoring kernels.
func syntheticModel(tb testing.TB, rows [][]float64, k int) *model.Model {
	tb.Helper()
	m := &model.Model{
		Format:   model.Format,
		Version:  model.Version,
		Name:     fmt.Sprintf("synth-k%d", k),
		K:        k,
		Clusters: make([]model.ClusterProfile, k),
	}
	m.Centroids = make([][]float64, k)
	stride := len(rows) / k
	for c := range m.Centroids {
		m.Centroids[c] = append([]float64(nil), rows[c*stride]...)
	}
	if err := m.Validate(); err != nil {
		tb.Fatal(err)
	}
	return m
}

// BenchmarkServe measures batch-assign throughput through the
// micro-batching worker pool across batch sizes and worker counts, on
// an Adult-shaped model (k=15, min-max scaled features). `make bench`
// records the event stream to BENCH_serve.json; rows/op is fixed at
// 4096 so ns/op across variants compare directly (lower = faster).
func BenchmarkServe(b *testing.B) {
	ds := testfix.Adult(1, 4096)
	m := trainModel(b, ds, 15, 1)
	rows := ds.Features

	for _, workers := range []int{1, 2, 4} {
		for _, batch := range []int{16, 64, 256, 1024} {
			b.Run(fmt.Sprintf("workers=%d/batch=%d", workers, batch), func(b *testing.B) {
				a, err := NewAssigner(m, Options{Workers: workers, BatchSize: batch})
				if err != nil {
					b.Fatal(err)
				}
				defer a.Close()
				b.SetBytes(int64(len(rows)))
				b.ReportAllocs()
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					if _, _, err := a.AssignBatch(rows, nil); err != nil {
						b.Fatal(err)
					}
				}
			})
		}
	}

	// k-sweep: the indexed serving kernel (what every Assigner scores
	// with) against the naive model.AssignDist scan on the same rows,
	// for centroid counts spanning small to wide deployments — both as
	// bare kernel loops, so the ratio is pure kernel (pool overhead is
	// the workers×batch grid above). It must grow with k; the naive
	// scan stays in the codebase exactly so this reference keeps
	// meaning. Models are built directly (not trained) so k=150 costs
	// no setup time.
	for _, k := range []int{5, 15, 50, 150} {
		km := syntheticModel(b, rows, k)
		b.Run(fmt.Sprintf("kernel=naive/k=%d", k), func(b *testing.B) {
			out := make([]int, len(rows))
			b.SetBytes(int64(len(rows)))
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				for r, x := range rows {
					out[r], _ = km.AssignDist(x)
				}
			}
		})
		b.Run(fmt.Sprintf("kernel=indexed/k=%d", k), func(b *testing.B) {
			ix := stats.NewCentroidIndex(km.Centroids)
			sc := ix.NewScratch()
			out := make([]int, len(rows))
			b.SetBytes(int64(len(rows)))
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				for r, x := range rows {
					out[r], _ = ix.Nearest(x, sc)
				}
			}
		})
	}

	// Single-query path: the per-request floor the batch variants
	// amortize.
	b.Run("single", func(b *testing.B) {
		a, err := NewAssigner(m, Options{})
		if err != nil {
			b.Fatal(err)
		}
		defer a.Close()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, _, err := a.Assign(rows[i%len(rows)], nil); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkServeTelemetry pins the cost of span tracing on the batch
// path: the same workers=2/batch=64 workload with and without a live
// RequestTracer (registry-backed stage histograms plus the flight
// recorder). The `BenchmarkServe` prefix gets the pair recorded into
// BENCH_serve.json by `make bench`, and bench-check's dedicated
// -rename comparison holds telemetry=on within the ±5% bar of
// telemetry=off (see Makefile).
func BenchmarkServeTelemetry(b *testing.B) {
	ds := testfix.Adult(1, 4096)
	m := trainModel(b, ds, 15, 1)
	rows := ds.Features

	variants := []struct {
		name string
		opts Options
	}{
		{"telemetry=off", Options{Workers: 2, BatchSize: 64}},
		{"telemetry=on", Options{Workers: 2, BatchSize: 64,
			TracerFor: func(model string) *telemetry.RequestTracer {
				return telemetry.NewRequestTracer(telemetry.NewRegistry(),
					"bench_request_stage_seconds", "Bench stages.", model, 0)
			}}},
	}
	for _, v := range variants {
		b.Run(v.name+"/workers=2/batch=64", func(b *testing.B) {
			a, err := NewAssigner(m, v.opts)
			if err != nil {
				b.Fatal(err)
			}
			defer a.Close()
			b.SetBytes(int64(len(rows)))
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, _, err := a.AssignBatch(rows, nil); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
