package serve

import (
	"fmt"
	"testing"

	"repro/internal/testfix"
)

// BenchmarkServe measures batch-assign throughput through the
// micro-batching worker pool across batch sizes and worker counts, on
// an Adult-shaped model (k=15, min-max scaled features). `make bench`
// records the event stream to BENCH_serve.json; rows/op is fixed at
// 4096 so ns/op across variants compare directly (lower = faster).
func BenchmarkServe(b *testing.B) {
	ds := testfix.Adult(1, 4096)
	m := trainModel(b, ds, 15, 1)
	rows := ds.Features

	for _, workers := range []int{1, 2, 4} {
		for _, batch := range []int{16, 64, 256, 1024} {
			b.Run(fmt.Sprintf("workers=%d/batch=%d", workers, batch), func(b *testing.B) {
				a, err := NewAssigner(m, Options{Workers: workers, BatchSize: batch})
				if err != nil {
					b.Fatal(err)
				}
				defer a.Close()
				b.SetBytes(int64(len(rows)))
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					if _, _, err := a.AssignBatch(rows, nil); err != nil {
						b.Fatal(err)
					}
				}
			})
		}
	}

	// Single-query path: the per-request floor the batch variants
	// amortize.
	b.Run("single", func(b *testing.B) {
		a, err := NewAssigner(m, Options{})
		if err != nil {
			b.Fatal(err)
		}
		defer a.Close()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, _, err := a.Assign(rows[i%len(rows)], nil); err != nil {
				b.Fatal(err)
			}
		}
	})
}
