// Package serve is the fair-assignment serving subsystem: it loads
// model artifacts (internal/model) and answers nearest-centroid
// assignment queries under concurrent traffic.
//
// The package has three pieces:
//
//   - Assigner: answers single and batch queries for one immutable
//     model through a micro-batching worker pool, and accumulates
//     per-model serving statistics (request/row counters, latency
//     quantiles, fairness drift, shed/deadline counts).
//   - Registry: a named set of Assigners with atomic hot-swap — a
//     reload under traffic lets in-flight requests finish on the model
//     they started with while new requests see the new one.
//   - Stats/DriftReport: snapshots for the /metrics and /v1/models
//     endpoints of cmd/fairserved.
//
// # Determinism
//
// Assignment is nearest-centroid per row (the only deployment rule the
// FairKM objective admits for unseen points — see core.Result.Predict),
// so rows are independent and the worker pool only changes *where* a
// row is scored, never *what* it scores against: results are identical
// for every worker count and batch size, and identical to a sequential
// scan. The micro-batch writes land in caller-allocated slots indexed
// by row position, so batch order is preserved. This contract is pinned
// by TestAssignerDeterministic (every worker×batch combination, under
// -race).
//
// # Overload
//
// With Options.MaxConcurrent set, each Assigner runs behind an
// admission gate: at most MaxConcurrent requests score at once, at most
// MaxQueue wait for a slot, and (with QueueBudget) arrivals whose
// estimated queue wait already exceeds the budget are rejected with a
// ShedError instead of queueing — shed, don't collapse. Request
// contexts propagate through AssignCtx/AssignBatchCtx: a deadline that
// expires while queued or mid-batch aborts the request (wrapping
// context.DeadlineExceeded) rather than scoring rows nobody is waiting
// for. Limits are per model: every Assigner a Registry constructs gets
// its own independent gate.
package serve

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/model"
	"repro/internal/stats"
	"repro/internal/telemetry"
)

// DefaultBatchSize is the micro-batch size when Options.BatchSize <= 0:
// how many rows one worker scores per task. Small enough to spread a
// big batch over the pool, large enough that channel traffic is
// amortized over many distance evaluations.
const DefaultBatchSize = 64

// Options parameterizes an Assigner.
type Options struct {
	// BatchSize is the micro-batch size (rows per worker task); <= 0
	// means DefaultBatchSize.
	BatchSize int
	// Workers is the scoring pool size; <= 0 means GOMAXPROCS.
	Workers int

	// TracerFor, when non-nil, is called once per Assigner construction
	// with the model's name and returns the span tracer batch requests
	// report into (nil disables tracing for that model). It is a
	// factory rather than a tracer because a Registry shares one
	// Options across every model it installs — including re-installs on
	// hot reload, which should keep feeding the model's existing
	// tracer.
	TracerFor func(model string) *telemetry.RequestTracer

	// MaxConcurrent caps how many requests may score on this model at
	// once; <= 0 disables admission control entirely (no queue bound,
	// no shedding — the pre-overload-control behavior).
	MaxConcurrent int
	// MaxQueue bounds how many requests may wait for a slot when
	// MaxConcurrent is set; <= 0 means DefaultMaxQueue. Arrivals beyond
	// the bound are rejected with a ShedError.
	MaxQueue int
	// QueueBudget, when positive, sheds arrivals whose estimated queue
	// wait (queued requests × smoothed service time / slots) already
	// exceeds it: the request would blow its latency budget anyway, so
	// reject it now and keep the queue short.
	QueueBudget time.Duration

	// ScoreHook, when non-nil, runs once per scoring task (micro-batch
	// in the pooled path, whole request in the inline path) before any
	// distances are computed. It exists ONLY for fault-injection tests —
	// simulating slow or stalled workers — and must be nil in
	// production.
	ScoreHook func(rows int)
}

func (o Options) withDefaults() Options {
	if o.BatchSize <= 0 {
		o.BatchSize = DefaultBatchSize
	}
	if o.Workers <= 0 {
		o.Workers = runtime.GOMAXPROCS(0)
	}
	if o.MaxConcurrent > 0 && o.MaxQueue <= 0 {
		o.MaxQueue = DefaultMaxQueue
	}
	return o
}

// batchJob is one batch request's shared work descriptor: participants
// (pool workers plus, for deadline-free requests, the caller itself)
// claim micro-batch strides with one atomic add each and score them
// into the caller's result slots. This replaces the old
// one-channel-send-per-micro-batch fan-out: dispatch cost is now one
// channel handoff per PARTICIPANT instead of one per micro-batch, so
// large batches no longer drown in pool overhead.
//
// wg counts participant EXITS, and a participant only exits once no
// unclaimed stride remains and its own claimed strides are scored —
// so wg.Wait() implies every stride is done, and implies no
// participant will touch the job again, which is what makes the
// sync.Pool reuse of jobs safe.
type batchJob struct {
	ctx   context.Context // non-nil only when cancellation can fire
	rows  [][]float64
	out   []int
	dists []float64
	batch int
	next  atomic.Int64 // next unclaimed row offset
	wg    sync.WaitGroup
}

// jobPool recycles batchJob descriptors so the steady-state batch path
// allocates nothing beyond the result slices it returns.
var jobPool = sync.Pool{New: func() any { return new(batchJob) }}

func newJob(ctx context.Context, rows [][]float64, out []int, dists []float64, batch int) *batchJob {
	j := jobPool.Get().(*batchJob)
	j.ctx, j.rows, j.out, j.dists, j.batch = ctx, rows, out, dists, batch
	j.next.Store(0)
	return j
}

// putJob must only be called after j.wg.Wait() has returned (or before
// the job was ever offered to a worker): the wg protocol guarantees no
// participant touches the job afterwards.
func putJob(j *batchJob) {
	j.ctx, j.rows, j.out, j.dists = nil, nil, nil, nil
	jobPool.Put(j)
}

// Assigner serves one immutable model. All methods are safe for
// concurrent use; the model is never mutated after construction.
type Assigner struct {
	m    *model.Model
	opts Options

	// ix is the sorted-neighbor centroid index — norms and neighbor
	// lists computed once per model install, never per batch — so all
	// scoring goes through the pruned fused kernel
	// (stats.CentroidIndex.Nearest): d² = ‖x‖² − 2·x·c + ‖c‖², with
	// triangle-inequality early termination over neighbors of the
	// running best. scratch pools the per-query visited marks so the
	// steady-state hot path allocates nothing.
	ix      *stats.CentroidIndex
	scratch sync.Pool

	jobs chan *batchJob
	gate *gate // nil when admission control is off

	// closeMu serializes request entry against Close, so the pool is
	// only torn down once every admitted request has drained. Requests
	// admitted before Close finish normally; requests arriving after
	// are scored inline on the caller's goroutine (same results, no
	// pool).
	closeMu  sync.RWMutex
	closed   bool
	inflight sync.WaitGroup

	stats *tracker
	// tracer, when non-nil, receives one span Trace per batch request
	// (every outcome). Single-query AssignCtx stays untraced: its whole
	// budget is a few hundred nanoseconds and the trace would cost more
	// than the work it measures.
	tracer *telemetry.RequestTracer
}

// NewAssigner validates the model and starts the scoring pool.
func NewAssigner(m *model.Model, opts Options) (*Assigner, error) {
	if m == nil {
		return nil, fmt.Errorf("serve: nil model")
	}
	if err := m.Validate(); err != nil {
		return nil, err
	}
	opts = opts.withDefaults()
	a := &Assigner{
		m:     m,
		opts:  opts,
		ix:    stats.NewCentroidIndex(m.Centroids),
		jobs:  make(chan *batchJob),
		gate:  newGate(opts),
		stats: newTracker(m),
	}
	if opts.TracerFor != nil {
		a.tracer = opts.TracerFor(m.Name)
	}
	a.scratch.New = func() any { return a.ix.NewScratch() }
	for w := 0; w < opts.Workers; w++ {
		go a.worker()
	}
	return a, nil
}

// Model returns the immutable model being served.
func (a *Assigner) Model() *model.Model { return a.m }

// Options returns the (defaulted) pool configuration.
func (a *Assigner) Options() Options { return a.opts }

func (a *Assigner) worker() {
	for j := range a.jobs {
		a.runJob(j)
		j.wg.Done()
	}
}

// runJob claims and scores strides until none remain. Stride claiming
// is one atomic add; the per-stride context check keeps the old
// semantics that a worker never burns time scoring rows whose request
// already gave up (it still drains the claims so wg settles).
func (a *Assigner) runJob(j *batchJob) {
	n := len(j.rows)
	for {
		lo := int(j.next.Add(int64(j.batch))) - j.batch
		if lo >= n {
			return
		}
		hi := min(lo+j.batch, n)
		if j.ctx != nil && j.ctx.Err() != nil {
			continue // request abandoned: drain without scoring
		}
		a.score(j.rows[lo:hi], j.out[lo:hi], j.dists[lo:hi])
	}
}

// invite offers the job to up to n idle workers without blocking; each
// successful handoff registers one participant. Busy workers are
// simply not invited — whoever is already participating (for
// deadline-free requests, at least the caller) covers the strides.
func (a *Assigner) invite(j *batchJob, n int) {
	for w := 0; w < n; w++ {
		j.wg.Add(1)
		select {
		case a.jobs <- j:
		default:
			j.wg.Done()
			return
		}
	}
}

// score labels rows into the caller's slots via the pruned fused
// kernel — the exact kernel single queries use, so batch and single
// results are identical bit for bit.
//
//fairvet:hotpath
func (a *Assigner) score(rows [][]float64, out []int, dists []float64) {
	if h := a.opts.ScoreHook; h != nil {
		h(len(rows))
	}
	sc := a.scratch.Get().(*stats.CentroidScratch)
	for i, x := range rows {
		c, d := a.ix.Nearest(x, sc)
		out[i] = c
		if dists != nil {
			dists[i] = d
		}
	}
	a.scratch.Put(sc)
}

// enter admits a request into the pool, or reports that the pool is
// closed and the request must score inline.
func (a *Assigner) enter() bool {
	a.closeMu.RLock()
	defer a.closeMu.RUnlock()
	if a.closed {
		return false
	}
	a.inflight.Add(1)
	return true
}

// Close drains in-flight requests and stops the worker pool. Requests
// that raced past a registry swap and still hold this Assigner keep
// working — they score inline — so hot-swap never truncates traffic.
func (a *Assigner) Close() {
	a.closeMu.Lock()
	if a.closed {
		a.closeMu.Unlock()
		return
	}
	a.closed = true
	a.closeMu.Unlock()
	a.inflight.Wait()
	close(a.jobs)
}

// admitErr classifies a gate rejection for the caller: shed errors pass
// through (IsShed), context errors are counted and wrapped so
// errors.Is(err, context.DeadlineExceeded) still works.
func (a *Assigner) admitErr(err error) error {
	if IsShed(err) {
		a.stats.shed.Add(1)
		return err
	}
	return a.ctxErr(err, "while queued")
}

// traceDone assembles and records one batch request's span trace:
// admission = entry to slot acquisition (the whole request when the
// gate denied it), queue = the measured blocking wait inside the gate,
// score = everything after admission, total = entry to return. Runs
// deferred, after the stats/gate bookkeeping of the path taken.
func (a *Assigner) traceDone(err error, denied bool, rows int, start, admitted time.Time, queueWait time.Duration) {
	end := time.Now()
	tr := telemetry.Trace{Rows: rows, Queue: queueWait, Total: end.Sub(start)}
	switch {
	case err == nil:
		tr.Outcome = telemetry.OutcomeOK
	case IsShed(err):
		tr.Outcome = telemetry.OutcomeShed
	default:
		tr.Outcome = telemetry.OutcomeDeadline
	}
	if denied {
		tr.Admission = tr.Total
	} else {
		tr.Admission = admitted.Sub(start)
		tr.Score = end.Sub(admitted)
	}
	a.tracer.Observe(tr)
}

// ctxErr wraps a context expiry into the request error, counting it.
func (a *Assigner) ctxErr(err error, when string) error {
	a.stats.deadline.Add(1)
	if errors.Is(err, context.DeadlineExceeded) {
		return fmt.Errorf("serve: model %q: deadline exceeded %s: %w", a.m.Name, when, err)
	}
	return fmt.Errorf("serve: model %q: request canceled %s: %w", a.m.Name, when, err)
}

// Assign labels one feature vector (already in the model's trained
// space if the artifact carries Scaling — see AssignRaw). The
// sensitive values, when non-nil, feed the drift tracker; they are keyed
// by attribute name and never influence the assignment itself.
func (a *Assigner) Assign(x []float64, sensitive map[string]string) (cluster int, dist float64, err error) {
	return a.AssignCtx(context.Background(), x, sensitive)
}

// AssignCtx is Assign under a request context: it passes the admission
// gate (when configured) and honors the context's deadline while
// queued. Shed requests return a ShedError; expired ones wrap ctx.Err().
func (a *Assigner) AssignCtx(ctx context.Context, x []float64, sensitive map[string]string) (cluster int, dist float64, err error) {
	if len(x) != a.m.Dim() {
		return 0, 0, fmt.Errorf("serve: query has %d features, model %q expects %d", len(x), a.m.Name, a.m.Dim())
	}
	start := time.Now()
	if a.gate != nil {
		if _, err := a.gate.acquire(ctx); err != nil {
			return 0, 0, a.admitErr(err)
		}
		admitted := time.Now()
		defer func() { a.gate.release(time.Since(admitted)) }()
	}
	if err := ctx.Err(); err != nil {
		return 0, 0, a.ctxErr(err, "before scoring")
	}
	sc := a.scratch.Get().(*stats.CentroidScratch)
	cluster, dist = a.ix.Nearest(x, sc)
	a.scratch.Put(sc)
	a.stats.record(1, time.Since(start))
	if sensitive != nil {
		a.stats.observe(cluster, sensitive)
	}
	return cluster, dist, nil
}

// AssignBatch labels rows[i] into result slot i, spreading micro-batches
// of Options.BatchSize rows over the worker pool. sensitive, when
// non-nil, must have one entry per row (nil entries allowed) and feeds
// the drift tracker. Results are deterministic and identical for every
// pool configuration.
func (a *Assigner) AssignBatch(rows [][]float64, sensitive []map[string]string) ([]int, []float64, error) {
	return a.AssignBatchCtx(context.Background(), rows, sensitive)
}

// AssignBatchCtx is AssignBatch under a request context. The context's
// deadline is honored at every stage: while waiting for admission,
// between micro-batches, and while waiting for pool workers — an
// expired request returns an error wrapping context.DeadlineExceeded
// (no partial results) and frees the caller immediately, even if a
// stalled worker is still pinned on one of its micro-batches (the
// orphaned task writes into slots nothing reads anymore).
func (a *Assigner) AssignBatchCtx(ctx context.Context, rows [][]float64, sensitive []map[string]string) (_ []int, _ []float64, retErr error) {
	dim := a.m.Dim()
	for i, x := range rows {
		if len(x) != dim {
			return nil, nil, fmt.Errorf("serve: row %d has %d features, model %q expects %d", i, len(x), a.m.Name, dim)
		}
	}
	if sensitive != nil && len(sensitive) != len(rows) {
		return nil, nil, fmt.Errorf("serve: %d sensitive records for %d rows", len(sensitive), len(rows))
	}
	start := time.Now()
	// Span trace bookkeeping: admitted and queueWait are filled in by
	// the gate branch; denied marks an admission rejection (the whole
	// request was the admission stage). Malformed requests returned
	// above are not traced — they never entered the pipeline.
	admitted := start
	var queueWait time.Duration
	denied := false
	if a.tracer != nil {
		defer func() { a.traceDone(retErr, denied, len(rows), start, admitted, queueWait) }()
	}
	if a.gate != nil {
		qw, err := a.gate.acquire(ctx)
		if err != nil {
			denied = true
			queueWait = qw
			return nil, nil, a.admitErr(err)
		}
		queueWait = qw
		admitted = time.Now()
		defer func() { a.gate.release(time.Since(admitted)) }()
	}
	if err := ctx.Err(); err != nil {
		return nil, nil, a.ctxErr(err, "before scoring")
	}
	out := make([]int, len(rows))
	dists := make([]float64, len(rows))

	batch := a.opts.BatchSize
	if len(rows) <= batch || a.opts.Workers <= 1 || !a.enter() {
		// Small batches, single-worker pools and closed (swapped-out)
		// assigners score inline: identical results, no pool round trip.
		// The deadline is still checked between micro-batch strides.
		for lo := 0; lo < len(rows); lo += batch {
			if lo > 0 && ctx.Err() != nil {
				return nil, nil, a.ctxErr(ctx.Err(), "mid-batch")
			}
			hi := lo + batch
			if hi > len(rows) {
				hi = len(rows)
			}
			a.score(rows[lo:hi], out[lo:hi], dists[lo:hi])
		}
		if err := ctx.Err(); err != nil {
			// The deadline passed while scoring (e.g. a stalled stride):
			// the caller already gave up, so this is a late failure, not
			// a success whose latency belongs in the accepted stats.
			return nil, nil, a.ctxErr(err, "mid-batch")
		}
	} else if ctx.Done() == nil {
		// Deadline-free pooled path: the caller is a guaranteed
		// participant (it scores strides itself — no idle blocking, no
		// goroutine per request), and idle workers join via invite. One
		// channel handoff per joining worker is the entire dispatch
		// cost, however many micro-batches the request spans.
		//fairvet:ignore ctxflow -- nil is the documented deadline-free sentinel: batchJob.ctx is "non-nil only when cancellation can fire", and strides skip the per-claim ctx poll entirely
		j := newJob(nil, rows, out, dists, batch)
		strides := (len(rows) + batch - 1) / batch
		a.invite(j, min(a.opts.Workers, strides-1))
		a.runJob(j)
		j.wg.Wait()
		putJob(j)
		a.inflight.Done()
	} else {
		// Cancellable pooled path: the caller must never score (a
		// stalled stride would pin it past its own deadline), so the
		// first handoff blocks — bounded by the context — to guarantee
		// a scorer, and the rest are opportunistic.
		j := newJob(ctx, rows, out, dists, batch)
		j.wg.Add(1)
		submitted := false
		select {
		case a.jobs <- j:
			submitted = true
		case <-ctx.Done():
			j.wg.Done()
		}
		if !submitted {
			// Never offered: nothing else references the job.
			putJob(j)
			a.inflight.Done()
			return nil, nil, a.ctxErr(ctx.Err(), "mid-batch")
		}
		strides := (len(rows) + batch - 1) / batch
		a.invite(j, min(a.opts.Workers, strides)-1)
		// Wait for the participants, but never past the deadline: a
		// stalled worker must cost a pool goroutine, not the request.
		done := make(chan struct{})
		go func() { j.wg.Wait(); close(done) }()
		expired := false
		select {
		case <-done:
		case <-ctx.Done():
			expired = true
		}
		if expired {
			// Free the caller now; inflight drops (and the job recycles)
			// only once the orphaned strides drain, so Close still can't
			// truncate them.
			go func() { <-done; a.inflight.Done(); putJob(j) }()
			return nil, nil, a.ctxErr(ctx.Err(), "mid-batch")
		}
		err := ctx.Err()
		putJob(j)
		a.inflight.Done()
		if err != nil {
			// Participants may have drained strides unscored after
			// expiry; the slots are unreliable, so the request fails as
			// a whole.
			return nil, nil, a.ctxErr(err, "mid-batch")
		}
	}

	a.stats.record(len(rows), time.Since(start))
	for i, sv := range sensitive {
		if sv != nil {
			a.stats.observe(out[i], sv)
		}
	}
	return out, dists, nil
}

// AssignRaw is Assign for a vector in raw input space: the artifact's
// Scaling (if any) is applied to a copy first.
func (a *Assigner) AssignRaw(x []float64, sensitive map[string]string) (int, float64, error) {
	if a.m.Scaling != nil && len(x) == a.m.Dim() {
		scaled := append([]float64(nil), x...)
		a.m.Scaling.Apply(scaled)
		x = scaled
	}
	return a.Assign(x, sensitive)
}

// Stats snapshots the serving counters, including the admission gauges
// when a gate is configured.
func (a *Assigner) Stats() Stats {
	s := a.stats.snapshot()
	if a.gate != nil {
		s.Inflight, s.Queued = a.gate.depth()
	}
	return s
}

// Latency snapshots the full accepted-request latency distribution —
// the histogram behind the Stats quantiles, for Prometheus bucket
// exposition.
func (a *Assigner) Latency() *telemetry.Histogram { return a.stats.latency() }

// Drift reports observed-vs-training fairness per categorical
// attribute.
func (a *Assigner) Drift() []DriftReport { return a.stats.drift() }
