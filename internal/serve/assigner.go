// Package serve is the fair-assignment serving subsystem: it loads
// model artifacts (internal/model) and answers nearest-centroid
// assignment queries under concurrent traffic.
//
// The package has three pieces:
//
//   - Assigner: answers single and batch queries for one immutable
//     model through a micro-batching worker pool, and accumulates
//     per-model serving statistics (request/row counters, latency
//     quantiles, fairness drift).
//   - Registry: a named set of Assigners with atomic hot-swap — a
//     reload under traffic lets in-flight requests finish on the model
//     they started with while new requests see the new one.
//   - Stats/DriftReport: snapshots for the /metrics and /v1/models
//     endpoints of cmd/fairserved.
//
// # Determinism
//
// Assignment is nearest-centroid per row (the only deployment rule the
// FairKM objective admits for unseen points — see core.Result.Predict),
// so rows are independent and the worker pool only changes *where* a
// row is scored, never *what* it scores against: results are identical
// for every worker count and batch size, and identical to a sequential
// scan. The micro-batch writes land in caller-allocated slots indexed
// by row position, so batch order is preserved. This contract is pinned
// by TestAssignerDeterministic (every worker×batch combination, under
// -race).
package serve

import (
	"fmt"
	"runtime"
	"sync"
	"time"

	"repro/internal/model"
)

// DefaultBatchSize is the micro-batch size when Options.BatchSize <= 0:
// how many rows one worker scores per task. Small enough to spread a
// big batch over the pool, large enough that channel traffic is
// amortized over many distance evaluations.
const DefaultBatchSize = 64

// Options parameterizes an Assigner.
type Options struct {
	// BatchSize is the micro-batch size (rows per worker task); <= 0
	// means DefaultBatchSize.
	BatchSize int
	// Workers is the scoring pool size; <= 0 means GOMAXPROCS.
	Workers int
	// LatencyWindow is how many recent request latencies the p50/p99
	// estimates are computed over; <= 0 means 1024.
	LatencyWindow int
}

func (o Options) withDefaults() Options {
	if o.BatchSize <= 0 {
		o.BatchSize = DefaultBatchSize
	}
	if o.Workers <= 0 {
		o.Workers = runtime.GOMAXPROCS(0)
	}
	if o.LatencyWindow <= 0 {
		o.LatencyWindow = 1024
	}
	return o
}

// task is one micro-batch: score rows[i] and write the winning cluster
// (and squared distance) into the caller's result slots.
type task struct {
	rows  [][]float64
	out   []int
	dists []float64 // may be nil
	wg    *sync.WaitGroup
}

// Assigner serves one immutable model. All methods are safe for
// concurrent use; the model is never mutated after construction.
type Assigner struct {
	m    *model.Model
	opts Options

	tasks chan task

	// closeMu serializes request entry against Close, so the pool is
	// only torn down once every admitted request has drained. Requests
	// admitted before Close finish normally; requests arriving after
	// are scored inline on the caller's goroutine (same results, no
	// pool).
	closeMu  sync.RWMutex
	closed   bool
	inflight sync.WaitGroup

	stats *tracker
}

// NewAssigner validates the model and starts the scoring pool.
func NewAssigner(m *model.Model, opts Options) (*Assigner, error) {
	if m == nil {
		return nil, fmt.Errorf("serve: nil model")
	}
	if err := m.Validate(); err != nil {
		return nil, err
	}
	opts = opts.withDefaults()
	a := &Assigner{
		m:     m,
		opts:  opts,
		tasks: make(chan task),
		stats: newTracker(m, opts.LatencyWindow),
	}
	for w := 0; w < opts.Workers; w++ {
		go a.worker()
	}
	return a, nil
}

// Model returns the immutable model being served.
func (a *Assigner) Model() *model.Model { return a.m }

// Options returns the (defaulted) pool configuration.
func (a *Assigner) Options() Options { return a.opts }

func (a *Assigner) worker() {
	for t := range a.tasks {
		a.score(t.rows, t.out, t.dists)
		t.wg.Done()
	}
}

// score labels rows sequentially into the caller's slots.
func (a *Assigner) score(rows [][]float64, out []int, dists []float64) {
	for i, x := range rows {
		c, d := a.m.AssignDist(x)
		out[i] = c
		if dists != nil {
			dists[i] = d
		}
	}
}

// enter admits a request into the pool, or reports that the pool is
// closed and the request must score inline.
func (a *Assigner) enter() bool {
	a.closeMu.RLock()
	defer a.closeMu.RUnlock()
	if a.closed {
		return false
	}
	a.inflight.Add(1)
	return true
}

// Close drains in-flight requests and stops the worker pool. Requests
// that raced past a registry swap and still hold this Assigner keep
// working — they score inline — so hot-swap never truncates traffic.
func (a *Assigner) Close() {
	a.closeMu.Lock()
	if a.closed {
		a.closeMu.Unlock()
		return
	}
	a.closed = true
	a.closeMu.Unlock()
	a.inflight.Wait()
	close(a.tasks)
}

// Assign labels one feature vector (already in the model's trained
// space if the artifact carries Scaling — see AssignRaw). The
// sensitive values, when non-nil, feed the drift tracker; they are keyed
// by attribute name and never influence the assignment itself.
func (a *Assigner) Assign(x []float64, sensitive map[string]string) (cluster int, dist float64, err error) {
	if len(x) != a.m.Dim() {
		return 0, 0, fmt.Errorf("serve: query has %d features, model %q expects %d", len(x), a.m.Name, a.m.Dim())
	}
	start := time.Now()
	cluster, dist = a.m.AssignDist(x)
	a.stats.record(1, time.Since(start))
	if sensitive != nil {
		a.stats.observe(cluster, sensitive)
	}
	return cluster, dist, nil
}

// AssignBatch labels rows[i] into result slot i, spreading micro-batches
// of Options.BatchSize rows over the worker pool. sensitive, when
// non-nil, must have one entry per row (nil entries allowed) and feeds
// the drift tracker. Results are deterministic and identical for every
// pool configuration.
func (a *Assigner) AssignBatch(rows [][]float64, sensitive []map[string]string) ([]int, []float64, error) {
	dim := a.m.Dim()
	for i, x := range rows {
		if len(x) != dim {
			return nil, nil, fmt.Errorf("serve: row %d has %d features, model %q expects %d", i, len(x), a.m.Name, dim)
		}
	}
	if sensitive != nil && len(sensitive) != len(rows) {
		return nil, nil, fmt.Errorf("serve: %d sensitive records for %d rows", len(sensitive), len(rows))
	}
	start := time.Now()
	out := make([]int, len(rows))
	dists := make([]float64, len(rows))

	batch := a.opts.BatchSize
	if len(rows) <= batch || a.opts.Workers <= 1 || !a.enter() {
		// Small batches, single-worker pools and closed (swapped-out)
		// assigners score inline: identical results, no pool round trip.
		a.score(rows, out, dists)
	} else {
		var wg sync.WaitGroup
		for lo := 0; lo < len(rows); lo += batch {
			hi := lo + batch
			if hi > len(rows) {
				hi = len(rows)
			}
			wg.Add(1)
			a.tasks <- task{rows: rows[lo:hi], out: out[lo:hi], dists: dists[lo:hi], wg: &wg}
		}
		wg.Wait()
		a.inflight.Done()
	}

	a.stats.record(len(rows), time.Since(start))
	for i, sv := range sensitive {
		if sv != nil {
			a.stats.observe(out[i], sv)
		}
	}
	return out, dists, nil
}

// AssignRaw is Assign for a vector in raw input space: the artifact's
// Scaling (if any) is applied to a copy first.
func (a *Assigner) AssignRaw(x []float64, sensitive map[string]string) (int, float64, error) {
	if a.m.Scaling != nil && len(x) == a.m.Dim() {
		scaled := append([]float64(nil), x...)
		a.m.Scaling.Apply(scaled)
		x = scaled
	}
	return a.Assign(x, sensitive)
}

// Stats snapshots the serving counters.
func (a *Assigner) Stats() Stats { return a.stats.snapshot() }

// Drift reports observed-vs-training fairness per categorical
// attribute.
func (a *Assigner) Drift() []DriftReport { return a.stats.drift() }
