package model

import (
	"bytes"
	"math"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/testfix"
)

// train runs FairKM on ds and wraps the result as an artifact.
func train(t *testing.T, ds *dataset.Dataset, k int) (*core.Result, *Model) {
	t.Helper()
	res, err := core.Run(ds, core.Config{K: k, AutoLambda: true, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	m, err := New(ds, nil, res, Provenance{Tool: "test", Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	return res, m
}

// assignAll labels every dataset row with the model's nearest-centroid
// rule.
func assignAll(m *Model, ds *dataset.Dataset) []int {
	out := make([]int, ds.N())
	for i, x := range ds.Features {
		out[i] = m.Assign(x)
	}
	return out
}

// TestRoundTripBitIdentical is the artifact's core contract: a decoded
// model reproduces the in-memory model's batch assignments bit-for-bit
// and its objective within 1e-9, on both fixtures.
func TestRoundTripBitIdentical(t *testing.T) {
	fixtures := map[string]*dataset.Dataset{
		"synth": testfix.Synth(3, 400, 4, 2, 1),
		"adult": testfix.Adult(1, 900),
	}
	for name, ds := range fixtures {
		t.Run(name, func(t *testing.T) {
			_, m := train(t, ds, 5)

			var buf bytes.Buffer
			if err := m.Encode(&buf); err != nil {
				t.Fatal(err)
			}
			loaded, err := Decode(bytes.NewReader(buf.Bytes()))
			if err != nil {
				t.Fatal(err)
			}

			// Centroid and λ bit patterns survive the JSON envelope.
			if loaded.Lambda != m.Lambda {
				t.Fatalf("lambda changed: %x -> %x", math.Float64bits(m.Lambda), math.Float64bits(loaded.Lambda))
			}
			for c := range m.Centroids {
				for j := range m.Centroids[c] {
					a, b := m.Centroids[c][j], loaded.Centroids[c][j]
					if math.Float64bits(a) != math.Float64bits(b) {
						t.Fatalf("centroid [%d][%d] bits changed: %v -> %v", c, j, a, b)
					}
				}
			}

			want := assignAll(m, ds)
			got := assignAll(loaded, ds)
			if !reflect.DeepEqual(want, got) {
				t.Fatal("loaded model assigns differently from in-memory model")
			}

			ov1, err := core.EvaluateObjective(ds, want, m.K, m.Lambda, nil)
			if err != nil {
				t.Fatal(err)
			}
			ov2, err := core.EvaluateObjective(ds, got, loaded.K, loaded.Lambda, nil)
			if err != nil {
				t.Fatal(err)
			}
			if diff := math.Abs(ov1.Objective - ov2.Objective); diff > 1e-9 {
				t.Fatalf("objective drifted %g across round trip", diff)
			}
		})
	}
}

// TestEncodeDeterministic pins the codec: the same model always
// serializes to the same bytes.
func TestEncodeDeterministic(t *testing.T) {
	ds := testfix.Synth(11, 200, 3, 2, 0)
	_, m := train(t, ds, 4)
	var a, b bytes.Buffer
	if err := m.Encode(&a); err != nil {
		t.Fatal(err)
	}
	if err := m.Encode(&b); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Fatal("two encodings of the same model differ")
	}
	// And a decode→encode cycle is byte-stable too.
	loaded, err := Decode(bytes.NewReader(a.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	var c bytes.Buffer
	if err := loaded.Encode(&c); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Bytes(), c.Bytes()) {
		t.Fatal("decode→encode is not byte-stable")
	}
}

func TestSaveLoadFile(t *testing.T) {
	ds := testfix.Synth(2, 150, 3, 1, 0)
	_, m := train(t, ds, 3)
	path := filepath.Join(t.TempDir(), "tiny.model.json")
	if err := Save(path, m); err != nil {
		t.Fatal(err)
	}
	// Save stamps the written envelope, never its argument — m may be
	// concurrently served.
	if m.Provenance.CreatedAt != "" || m.Name != "" {
		t.Errorf("Save mutated its argument: name %q created %q", m.Name, m.Provenance.CreatedAt)
	}
	loaded, err := Load(path)
	if err != nil {
		t.Fatal(err)
	}
	if loaded.Provenance.CreatedAt == "" {
		t.Error("saved envelope has no CreatedAt stamp")
	}
	if loaded.Name != "tiny.model" {
		t.Errorf("saved envelope Name = %q, want tiny.model", loaded.Name)
	}
	if !reflect.DeepEqual(assignAll(m, ds), assignAll(loaded, ds)) {
		t.Fatal("file round trip changed assignments")
	}
	// No temp files left behind.
	entries, err := os.ReadDir(filepath.Dir(path))
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 1 {
		t.Errorf("Save left %d files in the directory, want 1", len(entries))
	}
}

func TestNewWeightedDistributions(t *testing.T) {
	ds := testfix.Synth(5, 120, 3, 2, 1)
	w := make([]float64, ds.N())
	for i := range w {
		w[i] = float64(1 + i%4)
	}
	res, err := core.RunWeighted(ds, w, core.Config{K: 3, Lambda: 10, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	m, err := New(ds, w, res, Provenance{Tool: "test"})
	if err != nil {
		t.Fatal(err)
	}
	// Cluster masses must match the solver's and distributions must be
	// probability vectors.
	for c, cl := range m.Clusters {
		if res.Masses != nil && math.Abs(cl.Mass-res.Masses[c]) > 1e-9 {
			t.Errorf("cluster %d mass %v != solver mass %v", c, cl.Mass, res.Masses[c])
		}
		for ai, s := range m.Sensitive {
			if s.Kind != KindCategorical || cl.Mass == 0 {
				continue
			}
			sum := 0.0
			for _, p := range cl.Distributions[ai] {
				sum += p
			}
			if math.Abs(sum-1) > 1e-9 {
				t.Errorf("cluster %d attr %q distribution sums to %v", c, s.Name, sum)
			}
		}
	}
	// Dataset-level fractions are mass-weighted.
	for _, s := range m.Sensitive {
		if s.Kind != KindCategorical {
			continue
		}
		sum := 0.0
		for _, f := range s.TrainFractions {
			sum += f
		}
		if math.Abs(sum-1) > 1e-9 {
			t.Errorf("attr %q train fractions sum to %v", s.Name, sum)
		}
	}
}

func TestDecodeRejectsBadEnvelopes(t *testing.T) {
	ds := testfix.Synth(4, 100, 2, 1, 0)
	_, m := train(t, ds, 2)
	var buf bytes.Buffer
	if err := m.Encode(&buf); err != nil {
		t.Fatal(err)
	}
	good := buf.String()

	cases := map[string]string{
		"wrong format":  strings.Replace(good, `"format": "fairclust-model"`, `"format": "csv"`, 1),
		"wrong version": strings.Replace(good, `"version": 1`, `"version": 99`, 1),
		"not json":      "cluster,x,y\n0,1,2\n",
		"empty":         "",
	}
	for name, doc := range cases {
		if doc == good {
			t.Fatalf("%s: replacement did not apply", name)
		}
		if _, err := Decode(strings.NewReader(doc)); err == nil {
			t.Errorf("%s: decoded without error", name)
		}
	}
}

func TestValidateRejectsNonFinite(t *testing.T) {
	ds := testfix.Synth(4, 100, 2, 1, 0)
	_, m := train(t, ds, 2)
	m.Centroids[0][0] = math.NaN()
	if err := m.Validate(); err == nil {
		t.Error("NaN centroid validated")
	}
	var buf bytes.Buffer
	if err := m.Encode(&buf); err == nil {
		t.Error("NaN centroid encoded")
	}
}

func TestScalingApply(t *testing.T) {
	ds := testfix.Synth(9, 200, 3, 1, 0)
	mins, ranges := ds.MinMaxNormalize()
	_, m := train(t, ds, 3)
	m.Scaling = &Scaling{Kind: "minmax", Mins: mins, Ranges: ranges}
	if err := m.Validate(); err != nil {
		t.Fatal(err)
	}
	// A raw point scaled through the artifact must land on the same
	// cluster as its pre-normalized twin.
	raw := make([]float64, len(mins))
	for j := range raw {
		raw[j] = mins[j] + 0.25*ranges[j]
	}
	scaled := append([]float64(nil), raw...)
	m.Scaling.Apply(scaled)
	for j := range scaled {
		want := 0.25
		if ranges[j] == 0 {
			want = 0
		}
		if math.Abs(scaled[j]-want) > 1e-12 {
			t.Fatalf("scaled[%d] = %v, want %v", j, scaled[j], want)
		}
	}
}

func TestDomainIndexResumesCodes(t *testing.T) {
	ds := testfix.Synth(4, 100, 2, 1, 0)
	_, m := train(t, ds, 2)
	ai := m.CategoricalAttrs()[0]
	dom, err := m.DomainIndex(ai)
	if err != nil {
		t.Fatal(err)
	}
	for code, v := range m.Sensitive[ai].Values {
		if got := dom.Code(v); got != code {
			t.Errorf("value %q got code %d, trained as %d", v, got, code)
		}
	}
	if got := dom.Code("never-seen"); got != len(m.Sensitive[ai].Values) {
		t.Errorf("unseen value got code %d, want %d", got, len(m.Sensitive[ai].Values))
	}
}
