// Package model defines the persistent FairKM model artifact: a
// versioned, self-describing snapshot of a trained clustering that can
// be saved, loaded and served without the training process or data.
//
// An artifact carries everything deployment needs:
//
//   - the cluster centroids (weighted means over the feature space) and
//     the feature schema they index,
//   - the fairness configuration that produced them (k, λ),
//   - per sensitive attribute: the categorical domain snapshot in stable
//     code order (a dataset.DomainIndex serialization) and the
//     dataset-level training distribution Fr_X,
//   - per cluster: training mass and the per-attribute sensitive-value
//     distributions inside the cluster — the reference point for serving-
//     time fairness drift reports (internal/serve),
//   - optional feature scaling parameters (min-max), so raw serving
//     inputs can be mapped into the trained feature space,
//   - provenance: which tool trained it, seed, row count and the final
//     objective decomposition.
//
// # Codec
//
// The on-disk form is a single JSON object (the envelope) whose first
// fields identify the format and version. Encoding is deterministic:
// struct field order is fixed, maps are never serialized, and floats use
// Go's shortest round-trip formatting, so Encode∘Decode is the identity
// on the float64 bit patterns. That determinism is load-bearing — a
// round-tripped model must reproduce in-memory assignments bit-for-bit
// (tested in model_test.go, required by the serving contract in
// DESIGN.md). NaN and Inf are rejected by Validate, so every artifact
// that encodes also decodes.
package model

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math"
	"os"
	"path/filepath"
	"time"

	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/stats"
)

// Format is the envelope's format marker.
const Format = "fairclust-model"

// Version is the current artifact format version. Decode accepts only
// versions it knows how to read (currently just this one).
const Version = 1

// SensitiveSchema describes one sensitive attribute as trained.
type SensitiveSchema struct {
	// Name is the attribute's column name.
	Name string `json:"name"`
	// Kind is "categorical" or "numeric".
	Kind string `json:"kind"`
	// Values is the categorical domain snapshot in stable code order
	// (the dataset.DomainIndex state at training time); nil for numeric
	// attributes.
	Values []string `json:"values,omitempty"`
	// TrainFractions is the dataset-level Fr_X per value, aligned with
	// Values; nil for numeric attributes.
	TrainFractions []float64 `json:"train_fractions,omitempty"`
	// TrainMean is the dataset-level mean for numeric attributes.
	TrainMean float64 `json:"train_mean,omitempty"`
}

// KindCategorical and KindNumeric are the SensitiveSchema.Kind values.
const (
	KindCategorical = "categorical"
	KindNumeric     = "numeric"
)

// ClusterProfile is one cluster's training-time summary.
type ClusterProfile struct {
	// Mass is the cluster's total weight at training time (row count
	// for unweighted solves, Σw for weighted/streaming ones).
	Mass float64 `json:"mass"`
	// Distributions[a] is the cluster's value distribution over
	// categorical attribute a (aligned with Model.Sensitive; numeric
	// attributes hold a one-element slice with the cluster mean).
	Distributions [][]float64 `json:"distributions"`
}

// Scaling records an input transform applied before training, so
// serving can map raw inputs into the trained feature space.
type Scaling struct {
	// Kind is currently always "minmax".
	Kind string `json:"kind"`
	// Mins and Ranges are per-feature-column; Apply maps
	// x → (x−min)/range (0 where range is 0).
	Mins   []float64 `json:"mins"`
	Ranges []float64 `json:"ranges"`
}

// Apply maps a raw feature vector into the trained space, in place.
func (s *Scaling) Apply(x []float64) {
	for j := range x {
		if s.Ranges[j] > 0 {
			x[j] = (x[j] - s.Mins[j]) / s.Ranges[j]
		} else {
			x[j] = 0
		}
	}
}

// Provenance records where an artifact came from.
type Provenance struct {
	// Tool is the trainer ("fairkm", "fairstream", ...).
	Tool string `json:"tool"`
	// CreatedAt is the RFC 3339 save time.
	CreatedAt string `json:"created_at,omitempty"`
	// Seed is the training RNG seed.
	Seed int64 `json:"seed"`
	// Rows is the number of training points the model stands for (the
	// streamed count for summarize-then-solve models).
	Rows int `json:"rows"`
	// Objective, KMeansTerm and FairnessTerm decompose the final
	// training objective; Iterations and Converged describe the solve.
	Objective    float64 `json:"objective"`
	KMeansTerm   float64 `json:"kmeans_term"`
	FairnessTerm float64 `json:"fairness_term"`
	Iterations   int     `json:"iterations"`
	Converged    bool    `json:"converged"`
}

// Model is a trained fair clustering, ready to serve.
type Model struct {
	// Format and Version identify the envelope; Encode fills them.
	Format  string `json:"format"`
	Version int    `json:"version"`
	// Name is an optional human-readable identifier (the serving
	// registry's default key; file base name when empty).
	Name string `json:"name,omitempty"`
	// K is the number of clusters; Lambda the fairness weight λ the
	// model was trained with.
	K      int     `json:"k"`
	Lambda float64 `json:"lambda"`
	// FeatureNames is the feature schema; Centroids[c] is cluster c's
	// prototype over exactly these columns, in order.
	FeatureNames []string    `json:"feature_names"`
	Centroids    [][]float64 `json:"centroids"`
	// Sensitive describes the sensitive attributes as trained, in
	// dataset order.
	Sensitive []SensitiveSchema `json:"sensitive"`
	// Clusters holds per-cluster training masses and sensitive-value
	// distributions, aligned with Centroids.
	Clusters []ClusterProfile `json:"clusters"`
	// Scaling, when non-nil, must be applied to raw inputs before
	// nearest-centroid assignment.
	Scaling *Scaling `json:"scaling,omitempty"`
	// Provenance records the training run.
	Provenance Provenance `json:"provenance"`
}

// Dim returns the feature dimensionality.
func (m *Model) Dim() int {
	if len(m.Centroids) > 0 {
		return len(m.Centroids[0])
	}
	return len(m.FeatureNames)
}

// New builds an artifact from a completed solve: the dataset (or
// weighted summary) it ran on, the per-row weights (nil for unit
// weights) and the result. Per-cluster distributions are computed from
// the final assignment; prov.CreatedAt is left for Save to stamp.
func New(ds *dataset.Dataset, weights []float64, res *core.Result, prov Provenance) (*Model, error) {
	if ds == nil || res == nil {
		return nil, errors.New("model: nil dataset or result")
	}
	n := ds.N()
	if len(res.Assign) != n {
		return nil, fmt.Errorf("model: result assigns %d rows, dataset has %d", len(res.Assign), n)
	}
	if weights != nil && len(weights) != n {
		return nil, fmt.Errorf("model: %d weights for %d rows", len(weights), n)
	}
	wOf := func(i int) float64 {
		if weights == nil {
			return 1
		}
		return weights[i]
	}
	k := res.K()
	prov.Objective = res.Objective
	prov.KMeansTerm = res.KMeansTerm
	prov.FairnessTerm = res.FairnessTerm
	prov.Iterations = res.Iterations
	prov.Converged = res.Converged
	if prov.Rows == 0 {
		prov.Rows = n
	}

	m := &Model{
		K:            k,
		Lambda:       res.Lambda,
		FeatureNames: append([]string(nil), ds.FeatureNames...),
		Centroids:    make([][]float64, k),
		Clusters:     make([]ClusterProfile, k),
		Provenance:   prov,
	}
	for c, cen := range res.Centroids {
		m.Centroids[c] = append([]float64(nil), cen...)
	}

	mass := make([]float64, k)
	total := 0.0
	for i, c := range res.Assign {
		mass[c] += wOf(i)
		total += wOf(i)
	}
	if total <= 0 {
		return nil, errors.New("model: zero total mass")
	}
	for c := range m.Clusters {
		m.Clusters[c] = ClusterProfile{
			Mass:          mass[c],
			Distributions: make([][]float64, len(ds.Sensitive)),
		}
	}
	for ai, attr := range ds.Sensitive {
		switch attr.Kind {
		case dataset.Categorical:
			frX := make([]float64, len(attr.Values))
			counts := make([][]float64, k)
			for c := range counts {
				counts[c] = make([]float64, len(attr.Values))
			}
			for i, code := range attr.Codes {
				w := wOf(i)
				frX[code] += w
				counts[res.Assign[i]][code] += w
			}
			for v := range frX {
				frX[v] /= total
			}
			for c := 0; c < k; c++ {
				if mass[c] > 0 {
					stats.Scale(counts[c], 1/mass[c])
				}
				m.Clusters[c].Distributions[ai] = counts[c]
			}
			m.Sensitive = append(m.Sensitive, SensitiveSchema{
				Name:           attr.Name,
				Kind:           KindCategorical,
				Values:         append([]string(nil), attr.Values...),
				TrainFractions: frX,
			})
		case dataset.Numeric:
			meanX, sums := 0.0, make([]float64, k)
			for i, v := range attr.Reals {
				w := wOf(i)
				meanX += w * v
				sums[res.Assign[i]] += w * v
			}
			meanX /= total
			for c := 0; c < k; c++ {
				mu := 0.0
				if mass[c] > 0 {
					mu = sums[c] / mass[c]
				}
				m.Clusters[c].Distributions[ai] = []float64{mu}
			}
			m.Sensitive = append(m.Sensitive, SensitiveSchema{
				Name:      attr.Name,
				Kind:      KindNumeric,
				TrainMean: meanX,
			})
		default:
			return nil, fmt.Errorf("model: attribute %q has unknown kind %v", attr.Name, attr.Kind)
		}
	}
	if err := m.Validate(); err != nil {
		return nil, err
	}
	return m, nil
}

// Validate checks structural consistency and finiteness (JSON cannot
// carry NaN/Inf, so rejecting them here keeps every valid Model
// encodable).
func (m *Model) Validate() error {
	if m.K < 1 {
		return fmt.Errorf("model: k=%d must be positive", m.K)
	}
	if len(m.Centroids) != m.K {
		return fmt.Errorf("model: %d centroids for k=%d", len(m.Centroids), m.K)
	}
	if len(m.Clusters) != m.K {
		return fmt.Errorf("model: %d cluster profiles for k=%d", len(m.Clusters), m.K)
	}
	if m.Lambda < 0 || !isFinite(m.Lambda) {
		return fmt.Errorf("model: lambda %v must be finite and non-negative", m.Lambda)
	}
	dim := m.Dim()
	if dim == 0 {
		return errors.New("model: zero feature dimensionality")
	}
	if len(m.FeatureNames) != 0 && len(m.FeatureNames) != dim {
		return fmt.Errorf("model: %d feature names for %d features", len(m.FeatureNames), dim)
	}
	for c, cen := range m.Centroids {
		if len(cen) != dim {
			return fmt.Errorf("model: centroid %d has %d features, want %d", c, len(cen), dim)
		}
		for j, v := range cen {
			if !isFinite(v) {
				return fmt.Errorf("model: centroid [%d][%d] is not finite", c, j)
			}
		}
	}
	for ai, s := range m.Sensitive {
		switch s.Kind {
		case KindCategorical:
			if len(s.Values) == 0 {
				return fmt.Errorf("model: categorical attribute %q has empty domain", s.Name)
			}
			if len(s.TrainFractions) != len(s.Values) {
				return fmt.Errorf("model: attribute %q has %d train fractions for %d values", s.Name, len(s.TrainFractions), len(s.Values))
			}
			seen := make(map[string]bool, len(s.Values))
			for _, v := range s.Values {
				if seen[v] {
					return fmt.Errorf("model: attribute %q has duplicate value %q", s.Name, v)
				}
				seen[v] = true
			}
			for _, f := range s.TrainFractions {
				if !isFinite(f) {
					return fmt.Errorf("model: attribute %q has non-finite train fraction", s.Name)
				}
			}
		case KindNumeric:
			if len(s.Values) != 0 || len(s.TrainFractions) != 0 {
				return fmt.Errorf("model: numeric attribute %q carries a categorical domain", s.Name)
			}
			if !isFinite(s.TrainMean) {
				return fmt.Errorf("model: attribute %q has non-finite train mean", s.Name)
			}
		default:
			return fmt.Errorf("model: attribute %q has unknown kind %q", s.Name, s.Kind)
		}
		for c := range m.Clusters {
			if len(m.Clusters[c].Distributions) != len(m.Sensitive) {
				return fmt.Errorf("model: cluster %d has %d distributions for %d attributes", c, len(m.Clusters[c].Distributions), len(m.Sensitive))
			}
			want := 1
			if s.Kind == KindCategorical {
				want = len(s.Values)
			}
			if got := len(m.Clusters[c].Distributions[ai]); got != want {
				return fmt.Errorf("model: cluster %d attribute %q distribution has %d entries, want %d", c, s.Name, got, want)
			}
			for _, p := range m.Clusters[c].Distributions[ai] {
				if !isFinite(p) {
					return fmt.Errorf("model: cluster %d attribute %q has a non-finite distribution entry", c, s.Name)
				}
			}
		}
	}
	for c := range m.Clusters {
		if !isFinite(m.Clusters[c].Mass) || m.Clusters[c].Mass < 0 {
			return fmt.Errorf("model: cluster %d mass %v must be finite and non-negative", c, m.Clusters[c].Mass)
		}
	}
	if m.Scaling != nil {
		if m.Scaling.Kind != "minmax" {
			return fmt.Errorf("model: unknown scaling kind %q", m.Scaling.Kind)
		}
		if len(m.Scaling.Mins) != dim || len(m.Scaling.Ranges) != dim {
			return fmt.Errorf("model: scaling has %d/%d columns for %d features", len(m.Scaling.Mins), len(m.Scaling.Ranges), dim)
		}
		for j := 0; j < dim; j++ {
			if !isFinite(m.Scaling.Mins[j]) || !isFinite(m.Scaling.Ranges[j]) {
				return fmt.Errorf("model: scaling column %d is not finite", j)
			}
		}
	}
	return nil
}

func isFinite(v float64) bool { return !math.IsNaN(v) && !math.IsInf(v, 0) }

// Assign returns the nearest centroid for a feature vector already in
// the trained space (Scaling, if any, must have been applied). It is
// the deployment rule of core.Result.Predict: the fairness term has no
// per-point form for unseen data, so assignment is distance-only.
func (m *Model) Assign(x []float64) int {
	c, _ := m.AssignDist(x)
	return c
}

// AssignDist is Assign returning the squared distance too.
func (m *Model) AssignDist(x []float64) (int, float64) {
	best, bestD := 0, math.Inf(1)
	for c, cen := range m.Centroids {
		if d := stats.SqDist(x, cen); d < bestD {
			best, bestD = c, d
		}
	}
	return best, bestD
}

// CategoricalAttrs returns the indexes into Sensitive with categorical
// kind, in order.
func (m *Model) CategoricalAttrs() []int {
	var idx []int
	for ai, s := range m.Sensitive {
		if s.Kind == KindCategorical {
			idx = append(idx, ai)
		}
	}
	return idx
}

// DomainIndex rebuilds the stable value→code mapping of sensitive
// attribute ai from its snapshot, ready to absorb unseen serving-time
// values.
func (m *Model) DomainIndex(ai int) (*dataset.DomainIndex, error) {
	s := m.Sensitive[ai]
	if s.Kind != KindCategorical {
		return nil, fmt.Errorf("model: attribute %q is not categorical", s.Name)
	}
	return dataset.NewDomainIndexFrom(s.Values)
}

// Encode writes the artifact as its canonical JSON envelope. The output
// is deterministic: identical models encode to identical bytes.
func (m *Model) Encode(w io.Writer) error {
	if err := m.Validate(); err != nil {
		return err
	}
	env := *m
	env.Format = Format
	env.Version = Version
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(&env)
}

// Decode reads and validates an artifact.
func Decode(r io.Reader) (*Model, error) {
	dec := json.NewDecoder(r)
	var m Model
	if err := dec.Decode(&m); err != nil {
		return nil, fmt.Errorf("model: decoding artifact: %w", err)
	}
	if m.Format != Format {
		return nil, fmt.Errorf("model: not a %s artifact (format %q)", Format, m.Format)
	}
	if m.Version != Version {
		return nil, fmt.Errorf("model: unsupported artifact version %d (supported: %d)", m.Version, Version)
	}
	if err := m.Validate(); err != nil {
		return nil, err
	}
	return &m, nil
}

// Save writes the artifact to path atomically (temp file + rename), so
// a serving process reloading the path never observes a torn write.
// The written envelope stamps Provenance.CreatedAt if unset and
// defaults Name to the file base name; m itself is never mutated (it
// may be concurrently served).
func Save(path string, m *Model) error {
	env := *m
	if env.Provenance.CreatedAt == "" {
		//fairvet:ignore nodeterminism -- provenance timestamp on a Save copy; the codec determinism contract is over a fixed envelope, and CreatedAt is caller-settable for reproducible bytes
		env.Provenance.CreatedAt = time.Now().UTC().Format(time.RFC3339)
	}
	if env.Name == "" {
		env.Name = strippedBase(path)
	}
	dir := filepath.Dir(path)
	tmp, err := os.CreateTemp(dir, ".model-*.json")
	if err != nil {
		return fmt.Errorf("model: %w", err)
	}
	defer os.Remove(tmp.Name()) //fairvet:ignore errflow -- best-effort temp cleanup; after a successful rename the name is gone
	if err := env.Encode(tmp); err != nil {
		tmp.Close() //fairvet:ignore errflow -- close on the encode error path; the encode error wins
		return err
	}
	if err := tmp.Close(); err != nil {
		return fmt.Errorf("model: %w", err)
	}
	if err := os.Rename(tmp.Name(), path); err != nil {
		return fmt.Errorf("model: %w", err)
	}
	return nil
}

// Load reads and validates the artifact at path.
func Load(path string) (*Model, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("model: %w", err)
	}
	defer f.Close() //fairvet:ignore errflow -- file opened read-only; nothing was buffered to lose
	m, err := Decode(f)
	if err != nil {
		return nil, fmt.Errorf("loading %s: %w", path, err)
	}
	if m.Name == "" {
		m.Name = strippedBase(path)
	}
	return m, nil
}

// strippedBase is the file base name without its extension.
func strippedBase(path string) string {
	base := filepath.Base(path)
	if ext := filepath.Ext(base); ext != "" && ext != base {
		base = base[:len(base)-len(ext)]
	}
	return base
}
