package doc2vec

import (
	"errors"
	"fmt"
	"math"
	"sort"

	"repro/internal/stats"
)

// TrainPVDM fits the Distributed Memory flavour of Paragraph Vectors
// (PV-DM, Le & Mikolov 2014): for every position, the document vector
// is AVERAGED with the embeddings of the surrounding context words and
// the combination predicts the centre word via negative sampling. PV-DM
// preserves word-order information that PV-DBOW discards, at roughly
// window-size times the training cost.
//
// The kinematics pipeline uses PV-DBOW (Train) by default; PV-DM is
// provided for parity with the gensim feature surface the paper's
// authors had available, and the tests assert both flavours separate
// lexical topics.
func TrainPVDM(docs [][]string, cfg Config) (*Model, error) {
	if len(docs) == 0 {
		return nil, errors.New("doc2vec: no documents")
	}
	dim := cfg.Dim
	if dim <= 0 {
		dim = 100
	}
	epochs := cfg.Epochs
	if epochs <= 0 {
		epochs = 40
	}
	negative := cfg.Negative
	if negative <= 0 {
		negative = 5
	}
	lr0 := cfg.LR
	if lr0 <= 0 {
		lr0 = 0.05
	}
	const window = 3

	counts := map[string]int{}
	total := 0
	for i, doc := range docs {
		if len(doc) == 0 {
			return nil, fmt.Errorf("doc2vec: document %d is empty", i)
		}
		for _, w := range doc {
			counts[w]++
			total++
		}
	}
	words := make([]string, 0, len(counts))
	for w := range counts {
		words = append(words, w)
	}
	sort.Strings(words)
	vocab := make(map[string]int, len(words))
	for i, w := range words {
		vocab[w] = i
	}
	negWeights := make([]float64, len(words))
	for i, w := range words {
		negWeights[i] = math.Pow(float64(counts[w]), 0.75)
	}
	negTable := newAliasTable(negWeights)

	rng := stats.NewRNG(cfg.Seed)
	docVecs := make([][]float64, len(docs))
	for i := range docVecs {
		docVecs[i] = randomVec(rng, dim)
	}
	// Input word embeddings (averaged with the doc vector) and output
	// vectors (prediction targets).
	wordIn := make([][]float64, len(words))
	wordOut := make([][]float64, len(words))
	for i := range words {
		wordIn[i] = randomVec(rng, dim)
		wordOut[i] = make([]float64, dim)
	}

	encoded := make([][]int, len(docs))
	for i, doc := range docs {
		enc := make([]int, len(doc))
		for j, w := range doc {
			enc[j] = vocab[w]
		}
		encoded[i] = enc
	}

	order := make([]int, len(docs))
	for i := range order {
		order[i] = i
	}
	steps, totalSteps := 0, epochs*total
	ctx := make([]float64, dim)
	grad := make([]float64, dim)
	for epoch := 0; epoch < epochs; epoch++ {
		rng.Shuffle(len(order), func(i, j int) { order[i], order[j] = order[j], order[i] })
		for _, d := range order {
			doc := encoded[d]
			for pos, target := range doc {
				lr := lr0 * (1 - 0.9*float64(steps)/float64(totalSteps))
				steps++
				// Context: doc vector + up to `window` words each side.
				for i := range ctx {
					ctx[i] = docVecs[d][i]
				}
				nCtx := 1
				for off := -window; off <= window; off++ {
					if off == 0 {
						continue
					}
					p := pos + off
					if p < 0 || p >= len(doc) {
						continue
					}
					stats.AddTo(ctx, wordIn[doc[p]])
					nCtx++
				}
				stats.Scale(ctx, 1/float64(nCtx))

				for i := range grad {
					grad[i] = 0
				}
				trainPair(ctx, wordOut[target], 1, lr, grad)
				for s := 0; s < negative; s++ {
					neg := negTable.sample(rng)
					if neg == target {
						continue
					}
					trainPair(ctx, wordOut[neg], 0, lr, grad)
				}
				// Distribute the context gradient to the doc vector and
				// each participating input word vector.
				stats.Scale(grad, 1/float64(nCtx))
				stats.AddTo(docVecs[d], grad)
				for off := -window; off <= window; off++ {
					if off == 0 {
						continue
					}
					p := pos + off
					if p < 0 || p >= len(doc) {
						continue
					}
					stats.AddTo(wordIn[doc[p]], grad)
				}
			}
		}
	}
	return &Model{DocVecs: docVecs, Vocab: vocab, WordVecs: wordOut}, nil
}
