package doc2vec

import "testing"

// FuzzTokenize checks the tokenizer never panics and always produces
// lowercase alphanumeric tokens or the <num> sentinel.
func FuzzTokenize(f *testing.F) {
	f.Add("A ball is thrown up at 12.5 m/s!")
	f.Add("")
	f.Add("  \t\n ... --- 0.0.0 αβγ 中文")
	f.Add("CAR-car_car 99bottles")
	f.Fuzz(func(t *testing.T, s string) {
		for _, tok := range Tokenize(s) {
			if tok == "" {
				t.Fatal("empty token")
			}
			if tok == "<num>" {
				continue
			}
			for _, r := range tok {
				if r < 'a' || r > 'z' {
					if r >= '0' && r <= '9' || r == '.' {
						continue // mixed alnum token like "99bottles"
					}
					t.Fatalf("token %q contains %q", tok, r)
				}
			}
		}
	})
}
