// Package doc2vec implements a from-scratch Paragraph Vector model in
// the PV-DBOW flavour (Le & Mikolov 2014) with negative sampling.
//
// The FairKM paper represents each kinematics word problem as a
// 100-dimensional Doc2Vec embedding (Section 5.1); this package is the
// stdlib-only substitute for gensim used by the kinematics dataset
// generator. PV-DBOW trains one vector per document by asking it to
// predict the words it contains: for every (document, word) pair the
// document vector receives a logistic-regression update against the
// word's output vector, with k negative words sampled from the
// unigram^0.75 distribution.
//
// Documents that share vocabulary therefore receive aligned updates and
// end up close in cosine distance — the property that makes lexical
// clustering of word problems meaningful.
package doc2vec

//fairvet:floateq norm==0 detects an exactly-zero vector before dividing

import (
	"errors"
	"fmt"
	"math"
	"sort"
	"strings"

	"repro/internal/stats"
)

// Config parameterizes training.
type Config struct {
	// Dim is the embedding dimensionality (the paper uses 100).
	Dim int
	// Epochs is the number of passes over the corpus; zero means 40.
	Epochs int
	// Negative is the number of negative samples per positive pair;
	// zero means 5.
	Negative int
	// LR is the initial learning rate (decays linearly to LR/10);
	// zero means 0.05.
	LR float64
	// Seed drives initialization and negative sampling.
	Seed int64
}

// Model is a trained PV-DBOW model.
type Model struct {
	// DocVecs[i] is the embedding of document i.
	DocVecs [][]float64
	// Vocab maps each word to its index in WordVecs.
	Vocab map[string]int
	// WordVecs holds the output (context) vectors.
	WordVecs [][]float64
}

// Tokenize lowercases text and splits it into alphanumeric word tokens;
// everything else is a separator. Numbers are collapsed to the token
// "<num>" so embeddings reflect problem structure rather than the
// particular constants sampled into a template.
func Tokenize(text string) []string {
	var tokens []string
	var cur strings.Builder
	isDigit := true
	flush := func() {
		if cur.Len() == 0 {
			return
		}
		if isDigit {
			tokens = append(tokens, "<num>")
		} else {
			tokens = append(tokens, cur.String())
		}
		cur.Reset()
		isDigit = true
	}
	for _, r := range strings.ToLower(text) {
		switch {
		case r >= 'a' && r <= 'z':
			cur.WriteRune(r)
			isDigit = false
		case r >= '0' && r <= '9' || r == '.':
			cur.WriteRune(r)
		default:
			flush()
		}
	}
	flush()
	return tokens
}

// Train fits PV-DBOW document vectors for the tokenized documents.
func Train(docs [][]string, cfg Config) (*Model, error) {
	if len(docs) == 0 {
		return nil, errors.New("doc2vec: no documents")
	}
	dim := cfg.Dim
	if dim <= 0 {
		dim = 100
	}
	epochs := cfg.Epochs
	if epochs <= 0 {
		epochs = 40
	}
	negative := cfg.Negative
	if negative <= 0 {
		negative = 5
	}
	lr0 := cfg.LR
	if lr0 <= 0 {
		lr0 = 0.05
	}

	// Build vocabulary with deterministic word order.
	counts := map[string]int{}
	total := 0
	for i, doc := range docs {
		if len(doc) == 0 {
			return nil, fmt.Errorf("doc2vec: document %d is empty", i)
		}
		for _, w := range doc {
			counts[w]++
			total++
		}
	}
	words := make([]string, 0, len(counts))
	for w := range counts {
		words = append(words, w)
	}
	sort.Strings(words)
	vocab := make(map[string]int, len(words))
	for i, w := range words {
		vocab[w] = i
	}

	// Negative-sampling distribution: unigram^0.75.
	negWeights := make([]float64, len(words))
	for i, w := range words {
		negWeights[i] = math.Pow(float64(counts[w]), 0.75)
	}
	negTable := newAliasTable(negWeights)

	rng := stats.NewRNG(cfg.Seed)
	docVecs := make([][]float64, len(docs))
	for i := range docVecs {
		docVecs[i] = randomVec(rng, dim)
	}
	wordVecs := make([][]float64, len(words))
	for i := range wordVecs {
		wordVecs[i] = make([]float64, dim) // zero-init outputs, as in word2vec
	}

	// Pre-encode documents as word indexes.
	encoded := make([][]int, len(docs))
	for i, doc := range docs {
		enc := make([]int, len(doc))
		for j, w := range doc {
			enc[j] = vocab[w]
		}
		encoded[i] = enc
	}

	order := make([]int, len(docs))
	for i := range order {
		order[i] = i
	}
	steps := 0
	totalSteps := epochs * total
	grad := make([]float64, dim)
	for epoch := 0; epoch < epochs; epoch++ {
		rng.Shuffle(len(order), func(i, j int) { order[i], order[j] = order[j], order[i] })
		for _, d := range order {
			dv := docVecs[d]
			for _, target := range encoded[d] {
				lr := lr0 * (1 - 0.9*float64(steps)/float64(totalSteps))
				steps++
				for i := range grad {
					grad[i] = 0
				}
				trainPair(dv, wordVecs[target], 1, lr, grad)
				for s := 0; s < negative; s++ {
					neg := negTable.sample(rng)
					if neg == target {
						continue
					}
					trainPair(dv, wordVecs[neg], 0, lr, grad)
				}
				stats.AddTo(dv, grad)
			}
		}
	}
	return &Model{DocVecs: docVecs, Vocab: vocab, WordVecs: wordVecs}, nil
}

// trainPair performs one logistic SGD step for (doc, word) with the
// given label, updating the word vector in place and accumulating the
// document gradient.
func trainPair(dv, wv []float64, label float64, lr float64, grad []float64) {
	z := stats.Dot(dv, wv)
	g := lr * (label - sigmoid(z))
	for i := range wv {
		grad[i] += g * wv[i]
		wv[i] += g * dv[i]
	}
}

func sigmoid(x float64) float64 {
	// Clamp to avoid overflow; beyond ±30 the result saturates anyway.
	if x > 30 {
		return 1
	}
	if x < -30 {
		return 0
	}
	return 1 / (1 + math.Exp(-x))
}

func randomVec(rng *stats.RNG, dim int) []float64 {
	v := make([]float64, dim)
	for i := range v {
		v[i] = (rng.Float64() - 0.5) / float64(dim)
	}
	return v
}

// InferVector embeds an unseen tokenized document against the trained
// model: a fresh document vector is fitted by the same PV-DBOW
// objective with all word vectors frozen. Unknown words are skipped;
// a document with no known words yields the zero vector. steps is the
// number of SGD passes over the document (zero means 50).
func (m *Model) InferVector(doc []string, dim int, steps int, seed int64) []float64 {
	if steps <= 0 {
		steps = 50
	}
	rng := stats.NewRNG(seed)
	dv := randomVec(rng, dim)
	var known []int
	for _, w := range doc {
		if idx, ok := m.Vocab[w]; ok {
			known = append(known, idx)
		}
	}
	if len(known) == 0 {
		return make([]float64, dim)
	}
	grad := make([]float64, dim)
	lr0 := 0.05
	total := steps * len(known)
	step := 0
	for s := 0; s < steps; s++ {
		for _, target := range known {
			lr := lr0 * (1 - 0.9*float64(step)/float64(total))
			step++
			for i := range grad {
				grad[i] = 0
			}
			// Positive pair only: word vectors are frozen, so negative
			// sampling would perturb them; instead fit against the
			// target words with the frozen outputs.
			z := stats.Dot(dv, m.WordVecs[target])
			g := lr * (1 - sigmoid(z))
			for i := range grad {
				grad[i] += g * m.WordVecs[target][i]
			}
			// A handful of frozen negatives keeps dv from blowing up.
			for neg := 0; neg < 3; neg++ {
				j := rng.Intn(len(m.WordVecs))
				if j == target {
					continue
				}
				zn := stats.Dot(dv, m.WordVecs[j])
				gn := lr * (0 - sigmoid(zn))
				for i := range grad {
					grad[i] += gn * m.WordVecs[j][i]
				}
			}
			stats.AddTo(dv, grad)
		}
	}
	return dv
}

// CosineSimilarity returns the cosine of the angle between a and b, or
// 0 if either is a zero vector.
func CosineSimilarity(a, b []float64) float64 {
	na, nb := stats.Norm(a), stats.Norm(b)
	if na == 0 || nb == 0 {
		return 0
	}
	return stats.Dot(a, b) / (na * nb)
}

// aliasTable supports O(1) sampling from a discrete distribution
// (Walker's alias method); used for negative sampling where millions of
// draws are made.
type aliasTable struct {
	prob  []float64
	alias []int
}

func newAliasTable(weights []float64) *aliasTable {
	n := len(weights)
	total := stats.Sum(weights)
	prob := make([]float64, n)
	alias := make([]int, n)
	scaled := make([]float64, n)
	for i, w := range weights {
		scaled[i] = w / total * float64(n)
	}
	var small, large []int
	for i, p := range scaled {
		if p < 1 {
			small = append(small, i)
		} else {
			large = append(large, i)
		}
	}
	for len(small) > 0 && len(large) > 0 {
		s := small[len(small)-1]
		small = small[:len(small)-1]
		l := large[len(large)-1]
		large = large[:len(large)-1]
		prob[s] = scaled[s]
		alias[s] = l
		scaled[l] -= 1 - scaled[s]
		if scaled[l] < 1 {
			small = append(small, l)
		} else {
			large = append(large, l)
		}
	}
	for _, i := range append(small, large...) {
		prob[i] = 1
		alias[i] = i
	}
	return &aliasTable{prob: prob, alias: alias}
}

func (t *aliasTable) sample(rng *stats.RNG) int {
	i := rng.Intn(len(t.prob))
	if rng.Float64() < t.prob[i] {
		return i
	}
	return t.alias[i]
}
