package doc2vec

import (
	"math"
	"testing"

	"repro/internal/stats"
)

func TestTokenize(t *testing.T) {
	cases := []struct {
		in   string
		want []string
	}{
		{"A ball is thrown up at 12.5 m/s!", []string{"a", "ball", "is", "thrown", "up", "at", "<num>", "m", "s"}},
		{"", nil},
		{"42", []string{"<num>"}},
		{"speed-of-light", []string{"speed", "of", "light"}},
		{"CAR car CaR", []string{"car", "car", "car"}},
	}
	for _, c := range cases {
		got := Tokenize(c.in)
		if len(got) != len(c.want) {
			t.Errorf("Tokenize(%q) = %v, want %v", c.in, got, c.want)
			continue
		}
		for i := range got {
			if got[i] != c.want[i] {
				t.Errorf("Tokenize(%q)[%d] = %q, want %q", c.in, i, got[i], c.want[i])
			}
		}
	}
}

// corpus builds two lexical "topics" with disjoint content words.
func topicCorpus(docsPerTopic, wordsPerDoc int) [][]string {
	topicA := []string{"car", "drives", "road", "engine", "wheel", "highway", "speed"}
	topicB := []string{"ball", "falls", "height", "gravity", "drop", "cliff", "tower"}
	rng := stats.NewRNG(99)
	var docs [][]string
	for _, topic := range [][]string{topicA, topicB} {
		for d := 0; d < docsPerTopic; d++ {
			doc := make([]string, wordsPerDoc)
			for w := range doc {
				doc[w] = topic[rng.Intn(len(topic))]
			}
			docs = append(docs, doc)
		}
	}
	return docs
}

func TestTopicsSeparateInEmbeddingSpace(t *testing.T) {
	docs := topicCorpus(10, 12)
	m, err := Train(docs, Config{Dim: 16, Epochs: 60, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	// Mean within-topic cosine must exceed mean across-topic cosine by
	// a clear margin.
	var within, across float64
	var nw, na int
	for i := 0; i < len(docs); i++ {
		for j := i + 1; j < len(docs); j++ {
			cs := CosineSimilarity(m.DocVecs[i], m.DocVecs[j])
			if (i < 10) == (j < 10) {
				within += cs
				nw++
			} else {
				across += cs
				na++
			}
		}
	}
	within /= float64(nw)
	across /= float64(na)
	if within < across+0.2 {
		t.Errorf("within-topic cosine %v not clearly above across-topic %v", within, across)
	}
}

func TestDeterminism(t *testing.T) {
	docs := topicCorpus(4, 8)
	a, err := Train(docs, Config{Dim: 8, Epochs: 5, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	b, err := Train(docs, Config{Dim: 8, Epochs: 5, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	for i := range a.DocVecs {
		for j := range a.DocVecs[i] {
			if a.DocVecs[i][j] != b.DocVecs[i][j] {
				t.Fatalf("doc vec [%d][%d] differs across identical runs", i, j)
			}
		}
	}
}

func TestTrainErrors(t *testing.T) {
	if _, err := Train(nil, Config{}); err == nil {
		t.Error("empty corpus accepted")
	}
	if _, err := Train([][]string{{"a"}, {}}, Config{}); err == nil {
		t.Error("empty document accepted")
	}
}

func TestModelShapes(t *testing.T) {
	docs := [][]string{{"a", "b"}, {"b", "c"}, {"c", "a"}}
	m, err := Train(docs, Config{Dim: 12, Epochs: 3, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	if len(m.DocVecs) != 3 {
		t.Errorf("DocVecs = %d, want 3", len(m.DocVecs))
	}
	for i, v := range m.DocVecs {
		if len(v) != 12 {
			t.Errorf("DocVecs[%d] dim = %d, want 12", i, len(v))
		}
		for _, x := range v {
			if math.IsNaN(x) || math.IsInf(x, 0) {
				t.Fatalf("DocVecs[%d] contains non-finite value", i)
			}
		}
	}
	if len(m.Vocab) != 3 || len(m.WordVecs) != 3 {
		t.Errorf("vocab size = %d/%d, want 3", len(m.Vocab), len(m.WordVecs))
	}
}

func TestCosineSimilarity(t *testing.T) {
	a := []float64{1, 0}
	b := []float64{0, 1}
	if got := CosineSimilarity(a, a); math.Abs(got-1) > 1e-12 {
		t.Errorf("cos(a,a) = %v", got)
	}
	if got := CosineSimilarity(a, b); math.Abs(got) > 1e-12 {
		t.Errorf("cos(orthogonal) = %v", got)
	}
	if got := CosineSimilarity(a, []float64{0, 0}); got != 0 {
		t.Errorf("cos with zero vector = %v, want 0", got)
	}
}

func TestAliasTableDistribution(t *testing.T) {
	weights := []float64{1, 2, 7}
	table := newAliasTable(weights)
	rng := stats.NewRNG(3)
	counts := make([]float64, 3)
	const n = 100000
	for i := 0; i < n; i++ {
		counts[table.sample(rng)]++
	}
	for i, w := range weights {
		want := w / 10
		got := counts[i] / n
		if math.Abs(got-want) > 0.01 {
			t.Errorf("alias sample %d frequency %v, want ~%v", i, got, want)
		}
	}
}

func TestInferVectorLandsNearTopic(t *testing.T) {
	docs := topicCorpus(10, 12)
	m, err := Train(docs, Config{Dim: 16, Epochs: 60, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	// Infer a fresh topic-A document; it must be closer (on average) to
	// topic-A training docs than topic-B ones.
	inferred := m.InferVector([]string{"car", "road", "engine", "speed", "highway", "wheel"}, 16, 80, 9)
	var simA, simB float64
	for i := 0; i < 10; i++ {
		simA += CosineSimilarity(inferred, m.DocVecs[i])
		simB += CosineSimilarity(inferred, m.DocVecs[10+i])
	}
	if simA <= simB {
		t.Errorf("inferred vector closer to wrong topic: A %v vs B %v", simA/10, simB/10)
	}
}

func TestInferVectorUnknownWords(t *testing.T) {
	docs := topicCorpus(3, 6)
	m, err := Train(docs, Config{Dim: 8, Epochs: 5, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	v := m.InferVector([]string{"zzz", "qqq"}, 8, 10, 1)
	for _, x := range v {
		if x != 0 {
			t.Fatalf("all-unknown doc should give zero vector, got %v", v)
		}
	}
}

func TestPVDMTopicsSeparate(t *testing.T) {
	docs := topicCorpus(10, 12)
	m, err := TrainPVDM(docs, Config{Dim: 16, Epochs: 40, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	var within, across float64
	var nw, na int
	for i := 0; i < len(docs); i++ {
		for j := i + 1; j < len(docs); j++ {
			cs := CosineSimilarity(m.DocVecs[i], m.DocVecs[j])
			if (i < 10) == (j < 10) {
				within += cs
				nw++
			} else {
				across += cs
				na++
			}
		}
	}
	within /= float64(nw)
	across /= float64(na)
	if within < across+0.15 {
		t.Errorf("PV-DM within-topic cosine %v not clearly above across-topic %v", within, across)
	}
}

func TestPVDMDeterminismAndErrors(t *testing.T) {
	docs := topicCorpus(3, 8)
	a, err := TrainPVDM(docs, Config{Dim: 8, Epochs: 4, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	b, err := TrainPVDM(docs, Config{Dim: 8, Epochs: 4, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	for i := range a.DocVecs {
		for j := range a.DocVecs[i] {
			if a.DocVecs[i][j] != b.DocVecs[i][j] {
				t.Fatalf("PV-DM non-deterministic at [%d][%d]", i, j)
			}
		}
	}
	if _, err := TrainPVDM(nil, Config{}); err == nil {
		t.Error("empty corpus accepted")
	}
	if _, err := TrainPVDM([][]string{{"a"}, {}}, Config{}); err == nil {
		t.Error("empty document accepted")
	}
}
