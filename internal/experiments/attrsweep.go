package experiments

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/kmeans"
	"repro/internal/metrics"
	"repro/internal/stats"
)

// The attribute sweep implements the paper's FIRST future-work
// direction (Section 6.1): "studying the performance trends of FairKM
// with increasing number of sensitive attributes as well as increasing
// number of values per sensitive attribute." Synthetic data with a
// controlled attribute grid makes both axes directly measurable.

// AttrPoint is one (number of attributes, cardinality) configuration.
type AttrPoint struct {
	Attrs       int
	Cardinality int
	// BlindAE / FairAE are mean fairness across attributes.
	BlindAE, FairAE float64
	// CORatio is FairKM CO divided by blind CO (quality cost).
	CORatio float64
}

// AttrSweep holds the grid results.
type AttrSweep struct {
	Points []AttrPoint
	Reps   int
	N      int
}

// synthAttrDataset builds n points in two feature blobs with `attrs`
// categorical sensitive attributes of the given cardinality, each
// correlated with blob membership (value distributions shifted between
// blobs) so blind clustering is unfair on every attribute.
func synthAttrDataset(n, attrs, card int, seed int64) (*dataset.Dataset, error) {
	rng := stats.NewRNG(seed)
	b := dataset.NewBuilder("x", "y")
	domains := make([][]string, attrs)
	for a := 0; a < attrs; a++ {
		dom := make([]string, card)
		for v := range dom {
			dom[v] = fmt.Sprintf("v%02d", v)
		}
		domains[a] = dom
		b.AddCategoricalSensitiveWithDomain(fmt.Sprintf("attr%02d", a), dom)
	}
	for i := 0; i < n; i++ {
		blob := i % 2
		feats := []float64{rng.Gaussian(float64(blob)*4, 0.6), rng.Gaussian(0, 1)}
		cats := make([]string, attrs)
		for a := 0; a < attrs; a++ {
			// Blob 0 prefers low value indexes, blob 1 high ones: a
			// triangular weight profile per blob.
			w := make([]float64, card)
			for v := range w {
				if blob == 0 {
					w[v] = float64(card - v)
				} else {
					w[v] = float64(v + 1)
				}
			}
			cats[a] = domains[a][rng.Categorical(w)]
		}
		b.Row(feats, cats, nil)
	}
	return b.Build()
}

// RunAttrSweep measures FairKM across the attribute grid.
func RunAttrSweep(opts Options) (*AttrSweep, error) {
	opts.normalize()
	const n = 600
	const k = 4
	sweep := &AttrSweep{Reps: opts.Reps, N: n}
	for _, attrs := range []int{1, 2, 4, 8} {
		for _, card := range []int{2, 8, 32} {
			var p AttrPoint
			p.Attrs, p.Cardinality = attrs, card
			var blindCO, fairCO float64
			for rep := 0; rep < opts.Reps; rep++ {
				seed := opts.Seed + int64(rep)
				ds, err := synthAttrDataset(n, attrs, card, seed)
				if err != nil {
					return nil, err
				}
				ds.MinMaxNormalize() // λ=(n/k)² assumes unit-scale features
				km, err := kmeans.Run(ds.Features, opts.KMeansConfig(k, seed))
				if err != nil {
					return nil, err
				}
				// λ heuristic (n/k)²: features are O(1)-scale here.
				fkmCfg := opts.FairKMConfig(k, seed)
				fkmCfg.AutoLambda = true
				fkm, err := core.Run(ds, fkmCfg)
				if err != nil {
					return nil, err
				}
				kmF := metrics.FairnessAll(ds, km.Assign, k)
				fkF := metrics.FairnessAll(ds, fkm.Assign, k)
				p.BlindAE += kmF[len(kmF)-1].AE
				p.FairAE += fkF[len(fkF)-1].AE
				blindCO += metrics.CO(ds.Features, km.Assign, k)
				fairCO += metrics.CO(ds.Features, fkm.Assign, k)
			}
			inv := 1 / float64(opts.Reps)
			p.BlindAE *= inv
			p.FairAE *= inv
			p.CORatio = fairCO / blindCO
			sweep.Points = append(sweep.Points, p)
		}
	}
	return sweep, nil
}

// Render prints the grid.
func (s *AttrSweep) Render() string {
	tt := newTextTable(fmt.Sprintf(
		"Sensitive-attribute scaling (paper future work §6.1): n=%d, 2 blobs, mean of %d restarts", s.N, s.Reps))
	tt.row("#attrs", "cardinality", "blind meanAE", "FairKM meanAE", "AE reduction", "CO ratio")
	tt.rule()
	for _, p := range s.Points {
		reduction := "—"
		if p.BlindAE > 0 {
			reduction = fmt.Sprintf("%.1fx", p.BlindAE/maxF(p.FairAE, 1e-9))
		}
		tt.row(fmt.Sprintf("%d", p.Attrs), fmt.Sprintf("%d", p.Cardinality),
			f4(p.BlindAE), f4(p.FairAE), reduction, f4(p.CORatio))
	}
	return tt.String()
}

func maxF(a, b float64) float64 {
	if a > b {
		return a
	}
	return b
}
