package experiments

import (
	"fmt"
	"sync"

	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/kmeans"
	"repro/internal/metrics"
)

// ComparisonFigure reproduces Figures 1–4: for every sensitive
// attribute S, one fairness measure compared across ZGYA(S),
// FairKM(All) and FairKM(S), at k=5.
type ComparisonFigure struct {
	Name    string // e.g. "Figure 1"
	Dataset string
	Measure string // "AW" or "MW"
	Suite   *Suite
}

// suiteWithSinglesCache shares the expensive per-attribute FairKM(S)
// suite between Figures 1/2 (Adult) and 3/4 (Kinematics).
var (
	figMu    sync.Mutex
	figCache = map[string]*Suite{}
)

func comparisonSuite(name string, load func(Options) (*dataset.Dataset, error), lambda func(Options) float64, opts Options) (*Suite, error) {
	opts.normalize()
	key := fmt.Sprintf("%s/%d/%d/%d", name, opts.Seed, opts.Reps, opts.AdultRows)
	figMu.Lock()
	defer figMu.Unlock()
	if s, ok := figCache[key]; ok {
		return s, nil
	}
	ds, err := load(opts)
	if err != nil {
		return nil, err
	}
	s, err := RunSuite(ds, 5, lambda(opts), opts, true)
	if err != nil {
		return nil, err
	}
	figCache[key] = s
	return s, nil
}

// RunFig1 reproduces Figure 1: Adult AW comparison.
func RunFig1(opts Options) (*ComparisonFigure, error) {
	s, err := comparisonSuite("adult", LoadAdult, func(o Options) float64 { return o.AdultLambda }, opts)
	if err != nil {
		return nil, err
	}
	return &ComparisonFigure{Name: "Figure 1", Dataset: "Adult", Measure: "AW", Suite: s}, nil
}

// RunFig2 reproduces Figure 2: Adult MW comparison.
func RunFig2(opts Options) (*ComparisonFigure, error) {
	s, err := comparisonSuite("adult", LoadAdult, func(o Options) float64 { return o.AdultLambda }, opts)
	if err != nil {
		return nil, err
	}
	return &ComparisonFigure{Name: "Figure 2", Dataset: "Adult", Measure: "MW", Suite: s}, nil
}

// RunFig3 reproduces Figure 3: Kinematics AW comparison.
func RunFig3(opts Options) (*ComparisonFigure, error) {
	s, err := comparisonSuite("kin", LoadKinematics, func(o Options) float64 { return o.KinLambda }, opts)
	if err != nil {
		return nil, err
	}
	return &ComparisonFigure{Name: "Figure 3", Dataset: "Kinematics", Measure: "AW", Suite: s}, nil
}

// RunFig4 reproduces Figure 4: Kinematics MW comparison.
func RunFig4(opts Options) (*ComparisonFigure, error) {
	s, err := comparisonSuite("kin", LoadKinematics, func(o Options) float64 { return o.KinLambda }, opts)
	if err != nil {
		return nil, err
	}
	return &ComparisonFigure{Name: "Figure 4", Dataset: "Kinematics", Measure: "MW", Suite: s}, nil
}

// Render prints the figure as one row per attribute with the three
// compared series (the paper plots these as grouped bars).
func (f *ComparisonFigure) Render() string {
	tt := newTextTable(fmt.Sprintf("%s: %s dataset, %s per sensitive attribute (k=5, mean of %d restarts)",
		f.Name, f.Dataset, f.Measure, f.Suite.Reps))
	tt.row("Attribute", "ZGYA(S)", "FairKM(All)", "FairKM(S)")
	tt.rule()
	for _, attr := range f.Suite.AttrNames {
		tt.row(attr,
			f4(f.Suite.ZGYAFair[attr].Get(f.Measure)),
			f4(f.Suite.FairKMFair[attr].Get(f.Measure)),
			f4(f.Suite.FairKMSingleFair[attr].Get(f.Measure)),
		)
	}
	tt.rule()
	tt.row(MeanAttr,
		f4(f.Suite.ZGYAFair[MeanAttr].Get(f.Measure)),
		f4(f.Suite.FairKMFair[MeanAttr].Get(f.Measure)),
		f4(f.Suite.FairKMSingleFair[MeanAttr].Get(f.Measure)),
	)
	return tt.String()
}

// LambdaPoint is one λ setting of the Figures 5–7 sweep with every
// measure recorded at that setting (averaged over restarts).
type LambdaPoint struct {
	Lambda float64
	QualityStats
	Fair metrics.FairnessReport // mean across attributes
}

// LambdaSweep reproduces the underlying experiment of Figures 5–7: a
// FairKM λ sweep on Kinematics from 1000 to 10000 in steps of 1000
// (Section 5.7).
type LambdaSweep struct {
	Points []LambdaPoint
	Reps   int
}

var (
	sweepMu    sync.Mutex
	sweepCache = map[string]*LambdaSweep{}
)

// RunLambdaSweep executes (or returns the cached) λ sweep.
func RunLambdaSweep(opts Options) (*LambdaSweep, error) {
	opts.normalize()
	key := fmt.Sprintf("%d/%d", opts.Seed, opts.Reps)
	sweepMu.Lock()
	defer sweepMu.Unlock()
	if s, ok := sweepCache[key]; ok {
		return s, nil
	}
	ds, err := LoadKinematics(opts)
	if err != nil {
		return nil, err
	}
	sweep := &LambdaSweep{Reps: opts.Reps}
	for lambda := 1000.0; lambda <= 10000; lambda += 1000 {
		var point LambdaPoint
		point.Lambda = lambda
		var fairAcc metrics.FairnessReport
		for rep := 0; rep < opts.Reps; rep++ {
			seed := opts.Seed + int64(rep)
			km, err := kmeans.Run(ds.Features, opts.KMeansConfig(5, seed))
			if err != nil {
				return nil, err
			}
			fkmCfg := opts.FairKMConfig(5, seed)
			fkmCfg.Lambda = lambda
			fkm, err := core.Run(ds, fkmCfg)
			if err != nil {
				return nil, err
			}
			point.QualityStats.add(quality(ds, fkm.Assign, km.Assign, 5, opts, seed))
			reps := metrics.FairnessAll(ds, fkm.Assign, 5)
			mean := reps[len(reps)-1]
			fairAcc.AE += mean.AE
			fairAcc.AW += mean.AW
			fairAcc.ME += mean.ME
			fairAcc.MW += mean.MW
		}
		inv := 1 / float64(opts.Reps)
		point.QualityStats.scale(inv)
		fairAcc.AE *= inv
		fairAcc.AW *= inv
		fairAcc.ME *= inv
		fairAcc.MW *= inv
		fairAcc.Attribute = MeanAttr
		point.Fair = fairAcc
		sweep.Points = append(sweep.Points, point)
	}
	sweepCache[key] = sweep
	return sweep, nil
}

// SweepFigure renders one of Figures 5–7 from the shared λ sweep.
type SweepFigure struct {
	Name    string
	Columns []string // which series to print
	Sweep   *LambdaSweep
}

// RunFig5 reproduces Figure 5: Kinematics CO and SH vs λ.
func RunFig5(opts Options) (*SweepFigure, error) {
	s, err := RunLambdaSweep(opts)
	if err != nil {
		return nil, err
	}
	return &SweepFigure{Name: "Figure 5: Kinematics (CO and SH) vs λ", Columns: []string{"CO", "SH"}, Sweep: s}, nil
}

// RunFig6 reproduces Figure 6: Kinematics DevC and DevO vs λ.
func RunFig6(opts Options) (*SweepFigure, error) {
	s, err := RunLambdaSweep(opts)
	if err != nil {
		return nil, err
	}
	return &SweepFigure{Name: "Figure 6: Kinematics (DevC and DevO) vs λ", Columns: []string{"DevC", "DevO"}, Sweep: s}, nil
}

// RunFig7 reproduces Figure 7: Kinematics fairness metrics vs λ.
func RunFig7(opts Options) (*SweepFigure, error) {
	s, err := RunLambdaSweep(opts)
	if err != nil {
		return nil, err
	}
	return &SweepFigure{Name: "Figure 7: Kinematics fairness metrics vs λ", Columns: []string{"AE", "AW", "ME", "MW"}, Sweep: s}, nil
}

// Render prints the sweep as one row per λ with the figure's series.
func (f *SweepFigure) Render() string {
	tt := newTextTable(fmt.Sprintf("%s (FairKM, k=5, mean of %d restarts)", f.Name, f.Sweep.Reps))
	tt.row(append([]string{"lambda"}, f.Columns...)...)
	tt.rule()
	for _, p := range f.Sweep.Points {
		row := []string{fmt.Sprintf("%.0f", p.Lambda)}
		for _, col := range f.Columns {
			switch col {
			case "CO":
				row = append(row, f4(p.CO))
			case "SH":
				row = append(row, f4(p.SH))
			case "DevC":
				row = append(row, f4(p.DevC))
			case "DevO":
				row = append(row, f4(p.DevO))
			default:
				row = append(row, f4(p.Fair.Get(col)))
			}
		}
		tt.row(row...)
	}
	return tt.String()
}
