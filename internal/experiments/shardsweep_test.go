package experiments

import (
	"strings"
	"testing"
)

// TestShardStudySmall runs the shard-scaling sweep at reduced scale
// (full scale belongs to cmd/experiments and BenchmarkShard) and
// checks the quality contract: sharded summaries keep the solve near
// the single-shard and full-data objectives.
func TestShardStudySmall(t *testing.T) {
	savedSizes, savedShards := ShardStudySizes, ShardStudyShards
	ShardStudySizes = []int{4000}
	ShardStudyShards = []int{1, 2, 4}
	defer func() { ShardStudySizes, ShardStudyShards = savedSizes, savedShards }()

	study, err := RunShardStudy(DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if len(study.Points) != 6 {
		t.Fatalf("%d points, want 6", len(study.Points))
	}
	for _, p := range study.Points {
		if p.SummaryRows <= 0 || p.SummaryRows >= p.N {
			t.Errorf("%s S=%d: summary %d rows of %d — no compression", p.Name, p.Shards, p.SummaryRows, p.N)
		}
		if p.Shards == 1 && p.RatioVsS1 != 1 {
			t.Errorf("%s: S=1 ratio-vs-S1 = %v, want 1", p.Name, p.RatioVsS1)
		}
		// Sharding the coreset must not degrade the solve materially:
		// the Adult acceptance bar stays the PR 3 one.
		if p.Name == "adult-6500" && p.RatioVsFull > 1.05 {
			t.Errorf("%s S=%d: merged-summary objective %.1f%% above full solve", p.Name, p.Shards, 100*(p.RatioVsFull-1))
		}
		if p.RatioVsFull > 1.5 || p.RatioVsFull <= 0 {
			t.Errorf("%s S=%d: ratio vs full %v way off", p.Name, p.Shards, p.RatioVsFull)
		}
	}
	out := study.Render()
	for _, want := range []string{"adult-6500", "synth-4000", "vs S=1", "vs full"} {
		if !strings.Contains(out, want) {
			t.Errorf("render missing %q:\n%s", want, out)
		}
	}
}
