package experiments

import (
	"strings"
	"testing"
)

func TestTextTableAlignment(t *testing.T) {
	tt := newTextTable("Title")
	tt.row("a", "bb", "ccc")
	tt.rule()
	tt.row("dddd", "e", "f")
	out := tt.String()
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 5 { // title, rule, row, rule, row
		t.Fatalf("got %d lines:\n%s", len(lines), out)
	}
	if lines[0] != "Title" {
		t.Errorf("title line = %q", lines[0])
	}
	// Columns align: "bb" and "e" start at the same offset.
	row1, row2 := lines[2], lines[4]
	if strings.Index(row1, "bb") != strings.Index(row2, "e") {
		t.Errorf("columns misaligned:\n%q\n%q", row1, row2)
	}
	// Separator lines are dashes.
	if !strings.HasPrefix(lines[3], "---") {
		t.Errorf("rule line = %q", lines[3])
	}
}

func TestTextTableRaggedRows(t *testing.T) {
	tt := newTextTable("T")
	tt.row("only")
	tt.row("two", "cells")
	out := tt.String()
	if !strings.Contains(out, "only") || !strings.Contains(out, "cells") {
		t.Errorf("ragged rows mishandled:\n%s", out)
	}
}

func TestFormatters(t *testing.T) {
	if f4(1.23456789) != "1.2346" {
		t.Errorf("f4 = %q", f4(1.23456789))
	}
	if f2(98.765) != "98.77" {
		t.Errorf("f2 = %q", f2(98.765))
	}
}
