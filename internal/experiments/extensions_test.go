package experiments

import (
	"strings"
	"testing"
)

func TestRunBaselinesCoversMethodZoo(t *testing.T) {
	opts := tinyOptions()
	cmp, err := RunBaselines(opts)
	if err != nil {
		t.Fatalf("RunBaselines: %v", err)
	}
	if len(cmp.Rows) != 9 {
		t.Fatalf("got %d methods, want 9", len(cmp.Rows))
	}
	var kmRow, fkmRow *MethodRow
	for i := range cmp.Rows {
		r := &cmp.Rows[i]
		if r.MeanAE < 0 || r.CO <= 0 {
			t.Errorf("%s: implausible measurements %+v", r.Method, r)
		}
		switch r.Method {
		case "K-Means(N)":
			kmRow = r
		case "FairKM(all)":
			fkmRow = r
		}
	}
	if kmRow == nil || fkmRow == nil {
		t.Fatal("missing the two principal methods")
	}
	if fkmRow.MeanAE >= kmRow.MeanAE {
		t.Errorf("FairKM AE %v not better than blind %v", fkmRow.MeanAE, kmRow.MeanAE)
	}
	out := cmp.Render()
	for _, want := range []string{"Fairlet", "Bera", "FairSC", "FairKCenter", "GreedyCapture", "FairProj"} {
		if !strings.Contains(out, want) {
			t.Errorf("render missing %q", want)
		}
	}
}

func TestRunScalabilityGrowsWithN(t *testing.T) {
	opts := tinyOptions()
	sc, err := RunScalability(opts)
	if err != nil {
		t.Fatalf("RunScalability: %v", err)
	}
	if len(sc.Points) != 4 {
		t.Fatalf("got %d points", len(sc.Points))
	}
	for i := 1; i < len(sc.Points); i++ {
		if sc.Points[i].N <= sc.Points[i-1].N {
			t.Errorf("sizes not increasing: %v", sc.Points)
		}
	}
	// Wall-clock is noisy; only check the endpoints differ by a sane
	// factor (8x data should not be faster than 1x).
	first, last := sc.Points[0], sc.Points[len(sc.Points)-1]
	if last.FairKMMillis < first.FairKMMillis {
		t.Logf("note: FairKM timing noisy: %v -> %v ms", first.FairKMMillis, last.FairKMMillis)
	}
	if !strings.Contains(sc.Render(), "FairKM ms") {
		t.Error("render missing header")
	}
}

func TestRunNumericSensitive(t *testing.T) {
	opts := tinyOptions()
	ns, err := RunNumericSensitive(opts)
	if err != nil {
		t.Fatalf("RunNumericSensitive: %v", err)
	}
	// Age correlates with the remaining features via the latent model,
	// so blind clusters separate by age; Eq. 22 must shrink the gap.
	if ns.FairKM.AvgGap >= ns.Blind.AvgGap {
		t.Errorf("FairKM age gap %v not better than blind %v", ns.FairKM.AvgGap, ns.Blind.AvgGap)
	}
	out := ns.Render()
	if !strings.Contains(out, "Eq. 22") || !strings.Contains(out, "FairKM") {
		t.Errorf("render incomplete:\n%s", out)
	}
}

func TestRunKSweep(t *testing.T) {
	opts := tinyOptions()
	s, err := RunKSweep(opts)
	if err != nil {
		t.Fatalf("RunKSweep: %v", err)
	}
	if len(s.Points) != 5 {
		t.Fatalf("got %d points", len(s.Points))
	}
	for _, p := range s.Points {
		if p.WideAttr != "native-country" {
			t.Errorf("wide attribute = %q", p.WideAttr)
		}
		// FairKM must be fairer than blind on the mean at every k.
		if p.FairMeanAE >= p.BlindMeanAE {
			t.Errorf("k=%d: FairKM meanAE %v not below blind %v", p.K, p.FairMeanAE, p.BlindMeanAE)
		}
		// CO improves (decreases) with k for both methods — check the
		// sweep is ordered.
		if p.K < 2 {
			t.Errorf("bad k %d", p.K)
		}
	}
	if !strings.Contains(s.Render(), "native-country") {
		t.Error("render missing wide attribute")
	}
}

func TestRunConvergence(t *testing.T) {
	opts := tinyOptions()
	c, err := RunConvergence(opts)
	if err != nil {
		t.Fatalf("RunConvergence: %v", err)
	}
	if len(c.Points) != 4 {
		t.Fatalf("got %d points", len(c.Points))
	}
	for _, p := range c.Points {
		if p.Iterations < 1 || p.Iterations > 30 {
			t.Errorf("λ=%v: iterations %v outside [1,30]", p.Lambda, p.Iterations)
		}
		if p.FinalObj > p.FirstObj+1e-9 {
			t.Errorf("λ=%v: final objective %v above first-iteration %v", p.Lambda, p.FinalObj, p.FirstObj)
		}
	}
	// λ=0 reduces to K-Means-style descent, which settles fastest.
	if c.Points[0].Iterations > c.Points[2].Iterations {
		t.Logf("note: λ=0 took %v iterations vs λ=4000's %v", c.Points[0].Iterations, c.Points[2].Iterations)
	}
	if !strings.Contains(c.Render(), "converged%") {
		t.Error("render missing header")
	}
}

func TestRunAttrSweep(t *testing.T) {
	opts := tinyOptions()
	s, err := RunAttrSweep(opts)
	if err != nil {
		t.Fatalf("RunAttrSweep: %v", err)
	}
	if len(s.Points) != 12 {
		t.Fatalf("got %d grid points, want 12", len(s.Points))
	}
	for _, p := range s.Points {
		if p.FairAE > p.BlindAE+1e-9 {
			t.Errorf("attrs=%d card=%d: FairKM AE %v above blind %v",
				p.Attrs, p.Cardinality, p.FairAE, p.BlindAE)
		}
		if p.CORatio <= 0 {
			t.Errorf("non-positive CO ratio %v", p.CORatio)
		}
	}
	// The headline trend: binary attributes are far easier to balance
	// than 32-value ones (compare reductions at the same attr count).
	var binAE, wideAE, binBlind, wideBlind float64
	for _, p := range s.Points {
		if p.Attrs == 4 && p.Cardinality == 2 {
			binAE, binBlind = p.FairAE, p.BlindAE
		}
		if p.Attrs == 4 && p.Cardinality == 32 {
			wideAE, wideBlind = p.FairAE, p.BlindAE
		}
	}
	if binAE/binBlind >= wideAE/wideBlind {
		t.Errorf("binary attrs (%v ratio) not easier than 32-value attrs (%v ratio)",
			binAE/binBlind, wideAE/wideBlind)
	}
	if !strings.Contains(s.Render(), "cardinality") {
		t.Error("render missing header")
	}
}
