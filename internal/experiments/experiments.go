// Package experiments reproduces every table and figure of the FairKM
// paper's evaluation (Section 5) on the synthetic stand-in datasets.
//
// Each experiment function returns a typed result with a Render method
// that prints the same rows/series the paper reports. The cmd/experiments
// binary exposes them behind flags; bench_test.go at the repository root
// wraps each one in a testing.B benchmark.
//
// Experiment map (see DESIGN.md for the full index):
//
//	Table5 / Table6  — Adult clustering quality / fairness, k ∈ {5, 15}
//	Table7 / Table8  — Kinematics clustering quality / fairness, k = 5
//	Fig1 / Fig2      — Adult AW / MW: ZGYA(S) vs FairKM(All) vs FairKM(S)
//	Fig3 / Fig4      — Kinematics AW / MW, same comparison
//	Fig5 / Fig6 / Fig7 — Kinematics λ sweep: (CO, SH), (DevC, DevO),
//	                     fairness metrics
package experiments

import (
	"fmt"
	"io"
	"sync"
	"time"

	"repro/internal/core"
	"repro/internal/data/adult"
	"repro/internal/data/kinematics"
	"repro/internal/dataset"
	"repro/internal/engine"
	"repro/internal/kmeans"
	"repro/internal/telemetry"
	"repro/internal/zgya"
)

// Options control experiment scale. The zero value is NOT runnable; use
// DefaultOptions as a base.
type Options struct {
	// Reps is the number of random restarts averaged per configuration.
	// The paper uses 100; the default here is 10 to keep a full
	// reproduction run in minutes. Raise it for tighter estimates.
	Reps int
	// Seed is the base seed; restart r of any algorithm uses Seed + r.
	Seed int64
	// AdultRows optionally reduces the Adult generation size (before
	// parity undersampling) for quick runs; zero means the paper's
	// 32561.
	AdultRows int
	// SilhouetteSample bounds the number of points whose silhouette
	// coefficients are averaged (each against the full dataset); zero
	// means 2000. The 161-point Kinematics dataset is always exact.
	SilhouetteSample int
	// AdultLambda is FairKM's λ for Adult; zero means the paper's 10⁶
	// (Section 5.4).
	AdultLambda float64
	// KinLambda is FairKM's λ for Kinematics; zero means 4·10³ — the
	// operating point equivalent to the paper's 10³ on our (smaller-
	// scale) synthetic embeddings; see EXPERIMENTS.md.
	KinLambda float64
	// MaxIter bounds FairKM/ZGYA iterations; zero means the paper's 30.
	MaxIter int
	// Parallelism is passed through to every solver's
	// Config.Parallelism: 0 reproduces the paper's sequential sweeps,
	// core.ParallelismAuto (-1) uses GOMAXPROCS workers. Since the
	// descent-engine refactor FairKM, K-Means and ZGYA all honour it
	// with identical frozen-sweep semantics.
	Parallelism int
	// Budget, when positive, bounds the wall-clock of every individual
	// solver run (the engine's budget policy); runs cut short report
	// Converged == false but remain valid clusterings.
	Budget time.Duration
	// Trace, when non-nil, receives one line per solver iteration
	// (labelled with method, k and seed). With parallel restarts the
	// lines interleave; each line is written atomically.
	Trace io.Writer
	// Journal, when non-nil, receives machine-readable per-iteration
	// records for every solver run, tagged with the same method/k/seed
	// labels as Trace. The RunLog serializes concurrent restarts;
	// cmd/experiments exposes it as -telemetry.
	Journal *telemetry.RunLog
}

// DefaultOptions returns the scale used by cmd/experiments by default.
func DefaultOptions() Options {
	return Options{
		Reps:             10,
		Seed:             1,
		SilhouetteSample: 2000,
		AdultLambda:      1e6,
		KinLambda:        4e3,
		MaxIter:          30,
	}
}

func (o *Options) normalize() {
	if o.Reps <= 0 {
		o.Reps = 10
	}
	if o.SilhouetteSample <= 0 {
		o.SilhouetteSample = 2000
	}
	if o.AdultLambda <= 0 {
		o.AdultLambda = 1e6
	}
	if o.KinLambda <= 0 {
		o.KinLambda = 4e3
	}
	if o.MaxIter <= 0 {
		o.MaxIter = 30
	}
}

// observer returns an engine.Observer writing per-iteration trace
// lines and/or telemetry journal records tagged with label (whole
// lines, serialized across the parallel restart goroutines), or nil
// when both sinks are off.
func (o Options) observer(label string) engine.Observer {
	var trace, journal engine.Observer
	if o.Trace != nil {
		trace = engine.TraceObserver(o.Trace, label)
	}
	if o.Journal != nil {
		journal = o.Journal.Observer(label)
	}
	return engine.Observers(trace, journal)
}

// FairKMConfig returns a core.Config carrying the orchestration
// options (MaxIter, Parallelism, Budget, trace observer) every
// experiment threads into FairKM runs.
func (o Options) FairKMConfig(k int, seed int64) core.Config {
	return core.Config{
		K: k, Seed: seed, MaxIter: o.MaxIter,
		Parallelism: o.Parallelism, Budget: o.Budget,
		Observer: o.observer(fmt.Sprintf("FairKM[k=%d seed=%d]", k, seed)),
	}
}

// KMeansConfig is FairKMConfig's counterpart for the S-blind baseline.
func (o Options) KMeansConfig(k int, seed int64) kmeans.Config {
	return kmeans.Config{
		K: k, Seed: seed, MaxIter: o.MaxIter,
		Parallelism: o.Parallelism, Budget: o.Budget,
		Observer: o.observer(fmt.Sprintf("K-Means[k=%d seed=%d]", k, seed)),
	}
}

// ZGYAConfig is FairKMConfig's counterpart for the ZGYA baseline runs
// dedicated to one sensitive attribute.
func (o Options) ZGYAConfig(attr string, k int, seed int64) zgya.Config {
	return zgya.Config{
		K: k, Seed: seed, MaxIter: o.MaxIter,
		Parallelism: o.Parallelism, Budget: o.Budget,
		Observer: o.observer(fmt.Sprintf("ZGYA(%s)[k=%d seed=%d]", attr, k, seed)),
	}
}

// Dataset caches: generation (especially Doc2Vec training) is costly
// and deterministic per (seed, rows), so share within a process.
var (
	cacheMu    sync.Mutex
	adultCache = map[string]*dataset.Dataset{}
	kinCache   = map[string]*dataset.Dataset{}
)

// LoadAdult generates (or returns the cached) synthetic Adult dataset
// with min-max normalized features.
func LoadAdult(opts Options) (*dataset.Dataset, error) {
	opts.normalize()
	key := fmt.Sprintf("%d/%d", opts.Seed, opts.AdultRows)
	cacheMu.Lock()
	defer cacheMu.Unlock()
	if ds, ok := adultCache[key]; ok {
		return ds, nil
	}
	ds, err := adult.Generate(adult.Config{Seed: opts.Seed, Rows: opts.AdultRows})
	if err != nil {
		return nil, err
	}
	ds.MinMaxNormalize()
	adultCache[key] = ds
	return ds, nil
}

// LoadKinematics generates (or returns the cached) kinematics dataset
// with the paper's 100-dimensional embeddings.
func LoadKinematics(opts Options) (*dataset.Dataset, error) {
	opts.normalize()
	key := fmt.Sprintf("%d", opts.Seed)
	cacheMu.Lock()
	defer cacheMu.Unlock()
	if ds, ok := kinCache[key]; ok {
		return ds, nil
	}
	ds, err := kinematics.Generate(kinematics.Config{Seed: opts.Seed})
	if err != nil {
		return nil, err
	}
	kinCache[key] = ds
	return ds, nil
}
