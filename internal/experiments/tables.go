package experiments

import "fmt"

// QualityTable reproduces Table 5 (Adult) or Table 7 (Kinematics):
// clustering-quality measures for K-Means(N), Avg-ZGYA and FairKM at
// each k.
type QualityTable struct {
	Dataset string
	Suites  []*Suite // one per k
}

// FairnessTable reproduces Table 6 (Adult) or Table 8 (Kinematics):
// per-attribute fairness for K-Means(N), the per-attribute ZGYA(S)
// invocations, and the all-attribute FairKM run, with the improvement
// column.
type FairnessTable struct {
	Dataset string
	Suites  []*Suite // one per k
}

// RunTable5 reproduces Table 5: clustering quality on Adult for
// k ∈ {5, 15}.
func RunTable5(opts Options) (*QualityTable, error) {
	opts.normalize()
	ds, err := LoadAdult(opts)
	if err != nil {
		return nil, err
	}
	t := &QualityTable{Dataset: "Adult"}
	for _, k := range []int{5, 15} {
		s, err := RunSuite(ds, k, opts.AdultLambda, opts, false)
		if err != nil {
			return nil, err
		}
		t.Suites = append(t.Suites, s)
	}
	return t, nil
}

// RunTable6 reproduces Table 6: fairness on Adult for k ∈ {5, 15}.
func RunTable6(opts Options) (*FairnessTable, error) {
	opts.normalize()
	ds, err := LoadAdult(opts)
	if err != nil {
		return nil, err
	}
	t := &FairnessTable{Dataset: "Adult"}
	for _, k := range []int{5, 15} {
		s, err := RunSuite(ds, k, opts.AdultLambda, opts, false)
		if err != nil {
			return nil, err
		}
		t.Suites = append(t.Suites, s)
	}
	return t, nil
}

// RunTable7 reproduces Table 7: clustering quality on Kinematics, k=5.
func RunTable7(opts Options) (*QualityTable, error) {
	opts.normalize()
	ds, err := LoadKinematics(opts)
	if err != nil {
		return nil, err
	}
	s, err := RunSuite(ds, 5, opts.KinLambda, opts, false)
	if err != nil {
		return nil, err
	}
	return &QualityTable{Dataset: "Kinematics", Suites: []*Suite{s}}, nil
}

// RunTable8 reproduces Table 8: fairness on Kinematics, k=5.
func RunTable8(opts Options) (*FairnessTable, error) {
	opts.normalize()
	ds, err := LoadKinematics(opts)
	if err != nil {
		return nil, err
	}
	s, err := RunSuite(ds, 5, opts.KinLambda, opts, false)
	if err != nil {
		return nil, err
	}
	return &FairnessTable{Dataset: "Kinematics", Suites: []*Suite{s}}, nil
}

// Render prints the quality table in the paper's layout: one row per
// measure, one method column group per k.
func (t *QualityTable) Render() string {
	tt := newTextTable(fmt.Sprintf("Clustering quality on %s (mean of %d restarts)", t.Dataset, t.Suites[0].Reps))
	header := []string{"Measure"}
	for _, s := range t.Suites {
		header = append(header,
			fmt.Sprintf("k=%d K-Means(N)", s.K),
			fmt.Sprintf("k=%d Avg.ZGYA", s.K),
			fmt.Sprintf("k=%d FairKM", s.K),
		)
	}
	tt.row(header...)
	tt.rule()
	type measure struct {
		name string
		get  func(QualityStats) float64
	}
	measures := []measure{
		{"CO ↓", func(q QualityStats) float64 { return q.CO }},
		{"SH ↑", func(q QualityStats) float64 { return q.SH }},
		{"DevC ↓", func(q QualityStats) float64 { return q.DevC }},
		{"DevO ↓", func(q QualityStats) float64 { return q.DevO }},
	}
	for _, m := range measures {
		row := []string{m.name}
		for _, s := range t.Suites {
			row = append(row, f4(m.get(s.KMeans)), f4(m.get(s.ZGYAAvg)), f4(m.get(s.FairKM)))
		}
		tt.row(row...)
	}
	return tt.String()
}

// Render prints the fairness table in the paper's layout: the mean
// block first, then one block per sensitive attribute, with columns
// K-Means(N), ZGYA(S), FairKM and FairKM Impr(%) for each k.
func (t *FairnessTable) Render() string {
	tt := newTextTable(fmt.Sprintf("Fairness on %s (mean of %d restarts; ZGYA(S) is per-attribute — the paper's favorable setting)", t.Dataset, t.Suites[0].Reps))
	header := []string{"Attribute", "Measure"}
	for _, s := range t.Suites {
		header = append(header,
			fmt.Sprintf("k=%d K-Means(N)", s.K),
			fmt.Sprintf("k=%d ZGYA(S)", s.K),
			fmt.Sprintf("k=%d FairKM", s.K),
			fmt.Sprintf("k=%d Impr(%%)", s.K),
		)
	}
	tt.row(header...)
	blocks := append([]string{MeanAttr}, t.Suites[0].AttrNames...)
	for _, attr := range blocks {
		tt.rule()
		for _, m := range []string{"AE", "AW", "ME", "MW"} {
			row := []string{attr, m + " ↓"}
			for _, s := range t.Suites {
				km := s.KMeansFair[attr].Get(m)
				zg := s.ZGYAFair[attr].Get(m)
				fk := s.FairKMFair[attr].Get(m)
				row = append(row, f4(km), f4(zg), f4(fk), f2(Improvement(fk, km, zg)))
			}
			tt.row(row...)
		}
	}
	return tt.String()
}
