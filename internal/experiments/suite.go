package experiments

//fairvet:floateq best==0 guards an exact division by zero

import (
	"fmt"
	"runtime"
	"sync"

	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/kmeans"
	"repro/internal/metrics"
	"repro/internal/zgya"
)

// QualityStats aggregates the Section 5.2.1 clustering-quality
// measures, averaged over restarts.
type QualityStats struct {
	CO   float64 // K-Means objective, lower better
	SH   float64 // silhouette, higher better
	DevC float64 // centroid deviation vs S-blind reference, lower better
	DevO float64 // object-pairwise deviation vs reference, lower better
}

func (q *QualityStats) add(o QualityStats) {
	q.CO += o.CO
	q.SH += o.SH
	q.DevC += o.DevC
	q.DevO += o.DevO
}

func (q *QualityStats) scale(f float64) {
	q.CO *= f
	q.SH *= f
	q.DevC *= f
	q.DevO *= f
}

// MeanAttr is the pseudo-attribute name under which fairness measures
// averaged across all sensitive attributes are reported (the "Mean
// across S Attributes" blocks of Tables 6 and 8).
const MeanAttr = "mean"

// Suite holds every measurement for one (dataset, k) configuration:
// quality for the three methods of Tables 5/7 and per-attribute
// fairness for the methods of Tables 6/8 and Figures 1–4.
type Suite struct {
	K         int
	Reps      int
	AttrNames []string // categorical sensitive attributes, dataset order

	// Quality (Tables 5 and 7).
	KMeans  QualityStats
	ZGYAAvg QualityStats
	FairKM  QualityStats

	// Fairness (Tables 6 and 8), keyed by attribute name plus MeanAttr.
	// ZGYAFair[S] comes from the ZGYA invocation dedicated to S (the
	// paper's "synthetic favorable setting"); FairKMFair[S] from the
	// single FairKM run over all attributes.
	KMeansFair map[string]metrics.FairnessReport
	ZGYAFair   map[string]metrics.FairnessReport
	FairKMFair map[string]metrics.FairnessReport

	// FairKMSingleFair[S] is FairKM instantiated with only attribute S
	// (Figures 1–4); populated only when RunSuite is asked for singles.
	FairKMSingleFair map[string]metrics.FairnessReport
}

// RunSuite executes the full method matrix on one dataset for one k:
// K-Means(N), FairKM over all S, one ZGYA(S) per sensitive attribute,
// and optionally one FairKM(S) per attribute, each restarted Reps times
// with seeds Seed, Seed+1, …, and all measures averaged.
func RunSuite(ds *dataset.Dataset, k int, lambda float64, opts Options, withSingles bool) (*Suite, error) {
	opts.normalize()
	var attrs []string
	for _, s := range ds.Sensitive {
		if s.Kind == dataset.Categorical {
			attrs = append(attrs, s.Name)
		}
	}
	if len(attrs) == 0 {
		return nil, fmt.Errorf("experiments: dataset has no categorical sensitive attributes")
	}
	suite := &Suite{
		K: k, Reps: opts.Reps, AttrNames: attrs,
		KMeansFair: map[string]metrics.FairnessReport{},
		ZGYAFair:   map[string]metrics.FairnessReport{},
		FairKMFair: map[string]metrics.FairnessReport{},
	}
	if withSingles {
		suite.FairKMSingleFair = map[string]metrics.FairnessReport{}
	}

	// Restarts are independent; run them in parallel (bounded by CPU
	// count) and aggregate sequentially in rep order, so results are
	// bit-identical to a serial run.
	results := make([]*repResult, opts.Reps)
	errs := make([]error, opts.Reps)
	sem := make(chan struct{}, runtime.NumCPU())
	var wg sync.WaitGroup
	for rep := 0; rep < opts.Reps; rep++ {
		wg.Add(1)
		go func(rep int) {
			defer wg.Done()
			sem <- struct{}{}
			defer func() { <-sem }()
			results[rep], errs[rep] = runRep(ds, k, lambda, attrs, opts, rep, withSingles)
		}(rep)
	}
	wg.Wait()
	for rep, err := range errs {
		if err != nil {
			return nil, fmt.Errorf("experiments: rep %d: %w", rep, err)
		}
	}
	for _, r := range results {
		suite.KMeans.add(r.kmQ)
		suite.FairKM.add(r.fkmQ)
		suite.ZGYAAvg.add(r.zgQ)
		mergeFairness(suite.KMeansFair, r.kmFair)
		mergeFairness(suite.FairKMFair, r.fkmFair)
		mergeFairness(suite.ZGYAFair, r.zgFair)
		if withSingles {
			mergeFairness(suite.FairKMSingleFair, r.singleFair)
		}
	}

	inv := 1 / float64(opts.Reps)
	suite.KMeans.scale(inv)
	suite.ZGYAAvg.scale(inv)
	suite.FairKM.scale(inv)
	scaleFairness(suite.KMeansFair, inv)
	scaleFairness(suite.ZGYAFair, inv)
	scaleFairness(suite.FairKMFair, inv)
	if withSingles {
		scaleFairness(suite.FairKMSingleFair, inv)
		addMeanReport(suite.FairKMSingleFair, attrs)
	}
	addMeanReport(suite.ZGYAFair, attrs)
	return suite, nil
}

// repResult carries one restart's measurements before aggregation.
type repResult struct {
	kmQ, fkmQ, zgQ QualityStats
	kmFair         map[string]metrics.FairnessReport
	fkmFair        map[string]metrics.FairnessReport
	zgFair         map[string]metrics.FairnessReport
	singleFair     map[string]metrics.FairnessReport
}

// runRep executes the full method matrix for one restart.
func runRep(ds *dataset.Dataset, k int, lambda float64, attrs []string, opts Options, rep int, withSingles bool) (*repResult, error) {
	seed := opts.Seed + int64(rep)
	out := &repResult{
		kmFair:  map[string]metrics.FairnessReport{},
		fkmFair: map[string]metrics.FairnessReport{},
		zgFair:  map[string]metrics.FairnessReport{},
	}

	km, err := kmeans.Run(ds.Features, opts.KMeansConfig(k, seed))
	if err != nil {
		return nil, fmt.Errorf("K-Means: %w", err)
	}
	fkmCfg := opts.FairKMConfig(k, seed)
	fkmCfg.Lambda = lambda
	fkm, err := core.Run(ds, fkmCfg)
	if err != nil {
		return nil, fmt.Errorf("FairKM: %w", err)
	}
	out.kmQ = quality(ds, km.Assign, km.Assign, k, opts, seed)
	out.fkmQ = quality(ds, fkm.Assign, km.Assign, k, opts, seed)
	addFairness(out.kmFair, ds, km.Assign, k)
	addFairness(out.fkmFair, ds, fkm.Assign, k)

	for _, attr := range attrs {
		zgCfg := opts.ZGYAConfig(attr, k, seed)
		zgCfg.AutoLambda = true
		zg, err := zgya.Run(ds, attr, zgCfg)
		if err != nil {
			return nil, fmt.Errorf("ZGYA(%s): %w", attr, err)
		}
		out.zgQ.add(quality(ds, zg.Assign, km.Assign, k, opts, seed))
		addAttrFairness(out.zgFair, ds, attr, zg.Assign, k)
	}
	out.zgQ.scale(1 / float64(len(attrs)))

	if withSingles {
		// FairKM's fairness term sums per-attribute deviations, so a
		// single-attribute instantiation sees 1/|S| of the pressure the
		// all-attribute run applies to each attribute at equal λ.
		// Scaling λ by |S| equalizes the per-attribute pressure, which
		// is the comparison Figures 1–4 make.
		out.singleFair = map[string]metrics.FairnessReport{}
		singleLambda := lambda * float64(len(attrs))
		for _, attr := range attrs {
			sub, err := ds.WithSensitive(attr)
			if err != nil {
				return nil, err
			}
			fsCfg := opts.FairKMConfig(k, seed)
			fsCfg.Lambda = singleLambda
			fs, err := core.Run(sub, fsCfg)
			if err != nil {
				return nil, fmt.Errorf("FairKM(%s): %w", attr, err)
			}
			addAttrFairness(out.singleFair, ds, attr, fs.Assign, k)
		}
	}
	return out, nil
}

// mergeFairness accumulates src's reports into acc.
func mergeFairness(acc, src map[string]metrics.FairnessReport) {
	for key, rep := range src {
		accumulate(acc, key, rep)
	}
}

// quality computes the Section 5.2.1 measures for one assignment
// against the S-blind reference assignment.
func quality(ds *dataset.Dataset, assign, ref []int, k int, opts Options, seed int64) QualityStats {
	return QualityStats{
		CO:   metrics.CO(ds.Features, assign, k),
		SH:   metrics.SilhouetteSampled(ds.Features, assign, k, opts.SilhouetteSample, seed),
		DevC: metrics.DevC(ds.Features, assign, ref, k),
		DevO: metrics.DevO(assign, ref, k, k),
	}
}

// addFairness accumulates FairnessAll reports (per attribute + mean)
// into acc.
func addFairness(acc map[string]metrics.FairnessReport, ds *dataset.Dataset, assign []int, k int) {
	for _, rep := range metrics.FairnessAll(ds, assign, k) {
		accumulate(acc, rep.Attribute, rep)
	}
}

// addAttrFairness accumulates the fairness of one attribute only (used
// for per-attribute method instantiations).
func addAttrFairness(acc map[string]metrics.FairnessReport, ds *dataset.Dataset, attr string, assign []int, k int) {
	s := ds.SensitiveByName(attr)
	accumulate(acc, attr, metrics.Fairness(ds, s, assign, k))
}

func accumulate(acc map[string]metrics.FairnessReport, key string, rep metrics.FairnessReport) {
	cur := acc[key]
	cur.Attribute = key
	cur.AE += rep.AE
	cur.AW += rep.AW
	cur.ME += rep.ME
	cur.MW += rep.MW
	acc[key] = cur
}

func scaleFairness(acc map[string]metrics.FairnessReport, f float64) {
	for key, rep := range acc {
		rep.AE *= f
		rep.AW *= f
		rep.ME *= f
		rep.MW *= f
		acc[key] = rep
	}
}

// addMeanReport fills acc[MeanAttr] with the average across attrs (for
// accumulations built per-attribute, where FairnessAll's own mean row
// is absent).
func addMeanReport(acc map[string]metrics.FairnessReport, attrs []string) {
	var mean metrics.FairnessReport
	mean.Attribute = MeanAttr
	for _, attr := range attrs {
		rep := acc[attr]
		mean.AE += rep.AE
		mean.AW += rep.AW
		mean.ME += rep.ME
		mean.MW += rep.MW
	}
	inv := 1 / float64(len(attrs))
	mean.AE *= inv
	mean.AW *= inv
	mean.ME *= inv
	mean.MW *= inv
	acc[MeanAttr] = mean
}

// Improvement returns the paper's "FairKM Impr(%)" column: the
// percentage gain of fairKM over the better (smaller) of the two
// baselines. Positive means FairKM is ahead.
func Improvement(fairKM, kmeansV, zgyaV float64) float64 {
	best := kmeansV
	if zgyaV < best {
		best = zgyaV
	}
	if best == 0 {
		return 0
	}
	return (best - fairKM) / best * 100
}
