package experiments

import (
	"fmt"
	"time"

	"repro/internal/core"
	"repro/internal/data/adult"
	"repro/internal/dataset"
	"repro/internal/pipeline"
	"repro/internal/testfix"
)

// The streaming study measures the summarize-then-solve pipeline
// (internal/pipeline) against full-data FairKM: how close the
// summary-solved objective lands, what the deployed centroids cost on
// the full data, and how the wall clocks compare as n grows past what
// per-sweep coordinate descent enjoys. It backs the EXPERIMENTS.md
// "Streaming operating points" section and BenchmarkStream.

// StreamPoint is one dataset in the streaming study.
type StreamPoint struct {
	Name        string
	N           int
	K           int
	SummaryRows int
	Groups      int
	// FullObjective and StreamObjective are the descent objectives of
	// the full-data solve and the (mass-calibrated) summary solve at
	// the same λ; Ratio is stream/full.
	FullObjective   float64
	StreamObjective float64
	Ratio           float64
	// DeployedFull and DeployedStream are the exact full-data
	// objectives of both solutions deployed by nearest-centroid
	// assignment (the paper's Predict rule), via the second pass.
	DeployedFull   float64
	DeployedStream float64
	// Wall-clock: full solve vs summarize+solve vs the metrics pass.
	FullMillis   float64
	StreamMillis float64
	EvalMillis   float64
}

// StreamStudy compares summary-solve against full-solve across
// datasets.
type StreamStudy struct {
	M      int
	Points []StreamPoint
}

// StreamStudySizes configures RunStreamStudy's synthetic scale; the
// default exercises n = 10⁵ as the scaling demonstration.
var StreamStudySizes = []int{100000}

// RunStreamStudy runs the pipeline and the full solver on Adult
// (n=6500, streamed in 500-row blocks, stratified on gender×race) and
// on synthetic mixtures of n ≥ 10⁵ points, reporting objective ratios
// and wall-clock for each.
func RunStreamStudy(opts Options) (*StreamStudy, error) {
	opts.normalize()
	const m = 160
	study := &StreamStudy{M: m}

	adultDS, err := adult.Generate(adult.Config{Seed: opts.Seed, Rows: 6500, SkipParity: true})
	if err != nil {
		return nil, err
	}
	adultDS.MinMaxNormalize()
	adultStrat, err := adultDS.WithSensitive("gender", "race")
	if err != nil {
		return nil, err
	}
	if err := study.measure("adult-6500", adultStrat, 7, 500, m, opts); err != nil {
		return nil, err
	}

	for _, n := range StreamStudySizes {
		synth := testfix.Synth(opts.Seed+100, n, 6, 2, 0)
		if err := study.measure(fmt.Sprintf("synth-%d", n), synth, 8, 2048, m, opts); err != nil {
			return nil, err
		}
	}
	return study, nil
}

// measure runs one dataset through both paths.
func (s *StreamStudy) measure(name string, ds *dataset.Dataset, k, chunk, m int, opts Options) error {
	pt := StreamPoint{Name: name, N: ds.N(), K: k}

	start := time.Now()
	src := pipeline.NewSliceSource(ds, chunk)
	res, err := pipeline.FitStream(src, pipeline.Config{
		K: k, AutoLambda: true, CoresetSize: m,
		Seed: opts.Seed, MaxIter: opts.MaxIter, Parallelism: opts.Parallelism,
	})
	if err != nil {
		return fmt.Errorf("experiments: stream %s: %w", name, err)
	}
	pt.StreamMillis = ms(start)
	pt.SummaryRows = res.Summary.N()
	pt.Groups = res.Groups
	pt.StreamObjective = res.Solve.Objective

	start = time.Now()
	full, err := core.Run(ds, core.Config{
		K: k, AutoLambda: true,
		Seed: opts.Seed, MaxIter: opts.MaxIter, Parallelism: opts.Parallelism,
	})
	if err != nil {
		return fmt.Errorf("experiments: full %s: %w", name, err)
	}
	pt.FullMillis = ms(start)
	pt.FullObjective = full.Objective
	pt.Ratio = pt.StreamObjective / pt.FullObjective

	start = time.Now()
	src.Reset()
	evStream, err := pipeline.Evaluate(src, res.Solve.Centroids, res.Lambda)
	if err != nil {
		return err
	}
	src.Reset()
	evFull, err := pipeline.Evaluate(src, full.Centroids, res.Lambda)
	if err != nil {
		return err
	}
	pt.EvalMillis = ms(start) / 2 // per pass
	pt.DeployedStream = evStream.Value.Objective
	pt.DeployedFull = evFull.Value.Objective

	s.Points = append(s.Points, pt)
	return nil
}

// Render prints the study.
func (s *StreamStudy) Render() string {
	tt := newTextTable(fmt.Sprintf("Summarize-then-solve vs full FairKM (coreset m=%d per stratum)", s.M))
	tt.row("dataset", "n", "k", "summary", "strata", "obj full", "obj stream", "ratio", "deploy full", "deploy stream", "full ms", "stream ms", "eval ms")
	tt.rule()
	for _, p := range s.Points {
		tt.row(p.Name, fmt.Sprintf("%d", p.N), fmt.Sprintf("%d", p.K),
			fmt.Sprintf("%d", p.SummaryRows), fmt.Sprintf("%d", p.Groups),
			f2(p.FullObjective), f2(p.StreamObjective), f4(p.Ratio),
			f2(p.DeployedFull), f2(p.DeployedStream),
			f2(p.FullMillis), f2(p.StreamMillis), f2(p.EvalMillis))
	}
	return tt.String()
}
