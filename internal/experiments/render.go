package experiments

import (
	"fmt"
	"strings"
)

// textTable accumulates rows of cells and renders them with aligned
// columns, which is how every table and figure in this package is
// printed.
type textTable struct {
	title string
	rows  [][]string
}

func newTextTable(title string) *textTable {
	return &textTable{title: title}
}

func (t *textTable) row(cells ...string) {
	t.rows = append(t.rows, cells)
}

// rule inserts a horizontal separator.
func (t *textTable) rule() {
	t.rows = append(t.rows, nil)
}

func (t *textTable) String() string {
	widths := []int{}
	for _, row := range t.rows {
		for i, c := range row {
			for len(widths) <= i {
				widths = append(widths, 0)
			}
			if len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	total := 0
	for _, w := range widths {
		total += w + 2
	}
	var b strings.Builder
	b.WriteString(t.title)
	b.WriteByte('\n')
	b.WriteString(strings.Repeat("=", min(total, 100)))
	b.WriteByte('\n')
	for _, row := range t.rows {
		if row == nil {
			b.WriteString(strings.Repeat("-", min(total, 100)))
			b.WriteByte('\n')
			continue
		}
		for i, c := range row {
			fmt.Fprintf(&b, "%-*s", widths[i]+2, c)
		}
		b.WriteByte('\n')
	}
	return b.String()
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}

// f4 formats a measurement the way the paper's tables do.
func f4(v float64) string { return fmt.Sprintf("%.4f", v) }

// f2 formats percentages.
func f2(v float64) string { return fmt.Sprintf("%.2f", v) }
