package experiments

import (
	"math"
	"strings"
	"testing"

	"repro/internal/dataset"
	"repro/internal/stats"
)

// tinyOptions keeps experiment tests fast: reduced Adult, few reps.
func tinyOptions() Options {
	opts := DefaultOptions()
	opts.Reps = 2
	opts.AdultRows = 2500
	opts.SilhouetteSample = 400
	return opts
}

// syntheticDataset builds a small two-blob dataset with two sensitive
// attributes for suite-level unit tests.
func syntheticDataset(t *testing.T) *dataset.Dataset {
	t.Helper()
	b := dataset.NewBuilder("x", "y")
	b.AddCategoricalSensitive("g")
	b.AddCategoricalSensitive("h")
	rng := stats.NewRNG(8)
	for i := 0; i < 60; i++ {
		blob := i % 2
		g := "a"
		if (i/2)%4 == 0 {
			g = "b"
		}
		h := "p"
		if i%3 == 0 {
			h = "q"
		}
		b.Row([]float64{rng.Gaussian(float64(blob)*5, 0.5), rng.Gaussian(0, 0.5)}, []string{g, h}, nil)
	}
	ds, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	return ds
}

func TestRunSuiteShapes(t *testing.T) {
	ds := syntheticDataset(t)
	opts := tinyOptions()
	s, err := RunSuite(ds, 3, 100, opts, true)
	if err != nil {
		t.Fatalf("RunSuite: %v", err)
	}
	if s.K != 3 || s.Reps != opts.Reps {
		t.Errorf("suite K/Reps = %d/%d", s.K, s.Reps)
	}
	if len(s.AttrNames) != 2 {
		t.Fatalf("attrs = %v", s.AttrNames)
	}
	for _, attr := range append([]string{MeanAttr}, s.AttrNames...) {
		for _, m := range map[string]map[string]float64{
			"KMeans": {"AE": s.KMeansFair[attr].AE},
			"ZGYA":   {"AE": s.ZGYAFair[attr].AE},
			"FairKM": {"AE": s.FairKMFair[attr].AE},
			"Single": {"AE": s.FairKMSingleFair[attr].AE},
		} {
			for name, v := range m {
				if math.IsNaN(v) || v < 0 {
					t.Errorf("%v fairness %s for %s = %v", m, name, attr, v)
				}
			}
		}
	}
	// The reference clustering must have zero deviation from itself.
	if s.KMeans.DevC != 0 || s.KMeans.DevO != 0 {
		t.Errorf("K-Means self-deviation DevC=%v DevO=%v, want 0", s.KMeans.DevC, s.KMeans.DevO)
	}
	// Mean report must be the average of per-attribute reports.
	wantAE := (s.FairKMFair["g"].AE + s.FairKMFair["h"].AE) / 2
	if math.Abs(s.FairKMFair[MeanAttr].AE-wantAE) > 1e-12 {
		t.Errorf("mean AE = %v, want %v", s.FairKMFair[MeanAttr].AE, wantAE)
	}
}

func TestRunSuiteNoCategoricalAttrs(t *testing.T) {
	b := dataset.NewBuilder("x")
	b.AddNumericSensitive("age")
	b.Row([]float64{1}, nil, []float64{3})
	b.Row([]float64{2}, nil, []float64{4})
	ds, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := RunSuite(ds, 2, 1, tinyOptions(), false); err == nil {
		t.Error("expected error for dataset without categorical sensitive attributes")
	}
}

func TestImprovement(t *testing.T) {
	cases := []struct {
		fairKM, km, zg, want float64
	}{
		{0.5, 1.0, 2.0, 50},   // beats the better baseline (K-Means) by 50%
		{0.5, 2.0, 1.0, 50},   // baseline order must not matter
		{2.0, 1.0, 1.5, -100}, // worse than the best baseline
		{1.0, 1.0, 1.0, 0},
		{1.0, 0.0, 0.0, 0}, // zero baseline guarded
	}
	for i, c := range cases {
		if got := Improvement(c.fairKM, c.km, c.zg); math.Abs(got-c.want) > 1e-9 {
			t.Errorf("case %d: Improvement = %v, want %v", i, got, c.want)
		}
	}
}

func TestKinematicsTablesShapes(t *testing.T) {
	opts := tinyOptions()
	t7, err := RunTable7(opts)
	if err != nil {
		t.Fatalf("Table7: %v", err)
	}
	if len(t7.Suites) != 1 || t7.Suites[0].K != 5 {
		t.Errorf("Table7 suites malformed")
	}
	out := t7.Render()
	for _, want := range []string{"CO", "SH", "DevC", "DevO", "FairKM", "ZGYA", "K-Means"} {
		if !strings.Contains(out, want) {
			t.Errorf("Table7 render missing %q:\n%s", want, out)
		}
	}
	t8, err := RunTable8(opts)
	if err != nil {
		t.Fatalf("Table8: %v", err)
	}
	out8 := t8.Render()
	for _, want := range []string{"Type-1", "Type-5", "mean", "AE", "MW", "Impr"} {
		if !strings.Contains(out8, want) {
			t.Errorf("Table8 render missing %q", want)
		}
	}
}

// TestKinematicsHeadlineShape asserts the paper's central claims on the
// kinematics dataset: FairKM improves fairness over K-Means(N) by a
// large factor at a modest clustering-quality cost.
func TestKinematicsHeadlineShape(t *testing.T) {
	opts := tinyOptions()
	opts.Reps = 3
	t7, err := RunTable7(opts)
	if err != nil {
		t.Fatal(err)
	}
	s := t7.Suites[0]
	if s.FairKM.CO < s.KMeans.CO {
		// FairKM trades coherence for fairness; equal or worse CO.
		t.Logf("note: FairKM CO %v beat K-Means %v (possible with restarts)", s.FairKM.CO, s.KMeans.CO)
	}
	if s.FairKM.CO > 2*s.KMeans.CO {
		t.Errorf("FairKM CO %v degraded more than 2x vs K-Means %v", s.FairKM.CO, s.KMeans.CO)
	}
	t8, err := RunTable8(opts)
	if err != nil {
		t.Fatal(err)
	}
	s8 := t8.Suites[0]
	kmAE := s8.KMeansFair[MeanAttr].AE
	fkAE := s8.FairKMFair[MeanAttr].AE
	if fkAE > kmAE/2 {
		t.Errorf("FairKM mean AE %v not at least 2x better than K-Means %v", fkAE, kmAE)
	}
}

func TestComparisonFigures(t *testing.T) {
	opts := tinyOptions()
	f3, err := RunFig3(opts)
	if err != nil {
		t.Fatalf("Fig3: %v", err)
	}
	if f3.Measure != "AW" || f3.Dataset != "Kinematics" {
		t.Errorf("Fig3 metadata: %+v", f3)
	}
	out := f3.Render()
	for _, want := range []string{"ZGYA(S)", "FairKM(All)", "FairKM(S)", "Type-3"} {
		if !strings.Contains(out, want) {
			t.Errorf("Fig3 render missing %q", want)
		}
	}
	f4, err := RunFig4(opts)
	if err != nil {
		t.Fatalf("Fig4: %v", err)
	}
	if f4.Measure != "MW" {
		t.Errorf("Fig4 measure = %q", f4.Measure)
	}
	// Figures 3 and 4 share the suite; the cache must hand back the
	// same pointer rather than recompute.
	if f3.Suite != f4.Suite {
		t.Error("comparison suite was not shared between figures 3 and 4")
	}
}

func TestLambdaSweep(t *testing.T) {
	opts := tinyOptions()
	sweep, err := RunLambdaSweep(opts)
	if err != nil {
		t.Fatalf("sweep: %v", err)
	}
	if len(sweep.Points) != 10 {
		t.Fatalf("sweep has %d points, want 10 (λ=1000..10000)", len(sweep.Points))
	}
	if sweep.Points[0].Lambda != 1000 || sweep.Points[9].Lambda != 10000 {
		t.Errorf("sweep endpoints: %v .. %v", sweep.Points[0].Lambda, sweep.Points[9].Lambda)
	}
	// Directional check (Section 5.7): fairness at the high end must be
	// no worse than at the low end, and quality no better.
	first, last := sweep.Points[0], sweep.Points[9]
	if last.Fair.AE > first.Fair.AE+1e-9 {
		t.Errorf("AE did not improve across sweep: %v -> %v", first.Fair.AE, last.Fair.AE)
	}
	if last.CO < first.CO-1e-9 {
		t.Errorf("CO improved across sweep (%v -> %v); λ should trade quality away", first.CO, last.CO)
	}
	for _, name := range []string{"5", "6", "7"} {
		var fig *SweepFigure
		var err error
		switch name {
		case "5":
			fig, err = RunFig5(opts)
		case "6":
			fig, err = RunFig6(opts)
		default:
			fig, err = RunFig7(opts)
		}
		if err != nil {
			t.Fatalf("Fig%s: %v", name, err)
		}
		if !strings.Contains(fig.Render(), "lambda") {
			t.Errorf("Fig%s render missing lambda column", name)
		}
	}
}

func TestOptionsNormalize(t *testing.T) {
	var o Options
	o.normalize()
	if o.Reps != 10 || o.SilhouetteSample != 2000 || o.AdultLambda != 1e6 || o.KinLambda != 4e3 || o.MaxIter != 30 {
		t.Errorf("normalized zero options = %+v", o)
	}
}

func TestLoadAdultCached(t *testing.T) {
	opts := tinyOptions()
	a, err := LoadAdult(opts)
	if err != nil {
		t.Fatal(err)
	}
	b, err := LoadAdult(opts)
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Error("LoadAdult did not cache")
	}
	// Min-max normalization: all features within [0, 1].
	for i, row := range a.Features {
		for j, v := range row {
			if v < 0 || v > 1 {
				t.Fatalf("feature [%d][%d] = %v outside [0,1]", i, j, v)
			}
		}
	}
}
