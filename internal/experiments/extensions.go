package experiments

import (
	"fmt"
	"time"

	"repro/internal/bera"
	"repro/internal/core"
	"repro/internal/data/adult"
	"repro/internal/dataset"
	"repro/internal/fairlet"
	"repro/internal/fairproj"
	"repro/internal/kcenter"
	"repro/internal/kmeans"
	"repro/internal/metrics"
	"repro/internal/proportional"
	"repro/internal/spectral"
	"repro/internal/zgya"
)

// The experiments in this file go beyond the paper's evaluation: a
// cross-method comparison against every baseline family surveyed in
// the paper's Table 1 that this repository implements, a scalability
// measurement backing the Section 4.3.1 complexity discussion, and an
// exercise of the numeric-sensitive-attribute extension (Section
// 4.4.1).

// MethodRow is one method's measurements in the baseline comparison.
type MethodRow struct {
	Method  string
	CO      float64
	SH      float64
	MeanAE  float64
	MeanMW  float64
	Millis  float64
	Remarks string
}

// BaselineComparison compares every implemented clustering method on
// one dataset.
type BaselineComparison struct {
	Dataset string
	K       int
	Rows    []MethodRow
}

// RunBaselines runs the full method zoo on the Kinematics dataset
// (its 161 points are within reach of even the O(n³)+LP methods) at
// k=5. Single-attribute methods target Type-1, the largest type.
func RunBaselines(opts Options) (*BaselineComparison, error) {
	opts.normalize()
	ds, err := LoadKinematics(opts)
	if err != nil {
		return nil, err
	}
	const k = 5
	const attr = "Type-1"
	cmp := &BaselineComparison{Dataset: "Kinematics", K: k}

	ref, err := kmeans.Run(ds.Features, opts.KMeansConfig(k, opts.Seed))
	if err != nil {
		return nil, err
	}

	add := func(name, remarks string, run func() ([]int, error)) error {
		start := time.Now()
		assign, err := run()
		if err != nil {
			return fmt.Errorf("experiments: %s: %w", name, err)
		}
		elapsed := time.Since(start)
		reps := metrics.FairnessAll(ds, assign, k)
		mean := reps[len(reps)-1]
		cmp.Rows = append(cmp.Rows, MethodRow{
			Method:  name,
			CO:      metrics.CO(ds.Features, assign, k),
			SH:      metrics.Silhouette(ds.Features, assign, k),
			MeanAE:  mean.AE,
			MeanMW:  mean.MW,
			Millis:  float64(elapsed.Microseconds()) / 1000,
			Remarks: remarks,
		})
		return nil
	}

	if err := add("K-Means(N)", "S-blind", func() ([]int, error) {
		return ref.Assign, nil
	}); err != nil {
		return nil, err
	}
	if err := add("FairKM(all)", "all 5 attrs", func() ([]int, error) {
		cfg := opts.FairKMConfig(k, opts.Seed)
		cfg.Lambda = opts.KinLambda
		r, err := core.Run(ds, cfg)
		if err != nil {
			return nil, err
		}
		return r.Assign, nil
	}); err != nil {
		return nil, err
	}
	if err := add("ZGYA("+attr+")", "single attr", func() ([]int, error) {
		cfg := opts.ZGYAConfig(attr, k, opts.Seed)
		cfg.AutoLambda = true
		r, err := zgya.Run(ds, attr, cfg)
		if err != nil {
			return nil, err
		}
		return r.Assign, nil
	}); err != nil {
		return nil, err
	}
	if err := add("Fairlet("+attr+")", "single binary attr", func() ([]int, error) {
		r, err := fairlet.Run(ds, attr, fairlet.Config{K: k, Seed: opts.Seed})
		if err != nil {
			return nil, err
		}
		return r.Assign, nil
	}); err != nil {
		return nil, err
	}
	if err := add("Bera(all)", "LP + rounding", func() ([]int, error) {
		r, err := bera.Run(ds, bera.Config{K: k, Delta: 0.4, Seed: opts.Seed})
		if err != nil {
			return nil, err
		}
		return r.Assign, nil
	}); err != nil {
		return nil, err
	}
	if err := add("FairSC(all)", "spectral, constrained", func() ([]int, error) {
		r, err := spectral.Run(ds, spectral.Config{K: k, Fair: true, Seed: opts.Seed})
		if err != nil {
			return nil, err
		}
		return r.Assign, nil
	}); err != nil {
		return nil, err
	}
	if err := add("FairKCenter("+attr+")", "center quotas", func() ([]int, error) {
		r, err := kcenter.Run(ds, kcenter.Config{K: k, Attr: attr, Seed: opts.Seed})
		if err != nil {
			return nil, err
		}
		return r.Assign, nil
	}); err != nil {
		return nil, err
	}
	if err := add("GreedyCapture", "attribute-agnostic", func() ([]int, error) {
		r, err := proportional.GreedyCapture(ds.Features, k)
		if err != nil {
			return nil, err
		}
		// Pad the assignment space to k clusters for metric helpers.
		return r.Assign, nil
	}); err != nil {
		return nil, err
	}
	if err := add("FairProj+KM(all)", "space transformation", func() ([]int, error) {
		proj, err := fairproj.MeanDifferenceProjection(ds)
		if err != nil {
			return nil, err
		}
		r, err := kmeans.Run(proj.Features, opts.KMeansConfig(k, opts.Seed))
		if err != nil {
			return nil, err
		}
		return r.Assign, nil
	}); err != nil {
		return nil, err
	}
	return cmp, nil
}

// Render prints the comparison table.
func (c *BaselineComparison) Render() string {
	tt := newTextTable(fmt.Sprintf("Baseline zoo on %s (k=%d): fair-clustering families from the paper's Table 1", c.Dataset, c.K))
	tt.row("Method", "CO ↓", "SH ↑", "meanAE ↓", "meanMW ↓", "ms", "notes")
	tt.rule()
	for _, r := range c.Rows {
		tt.row(r.Method, f4(r.CO), f4(r.SH), f4(r.MeanAE), f4(r.MeanMW), f2(r.Millis), r.Remarks)
	}
	return tt.String()
}

// ScalePoint is one dataset size in the scalability experiment.
type ScalePoint struct {
	N            int
	FairKMMillis float64
	KMeansMillis float64
	ZGYAMillis   float64
}

// Scalability measures wall-clock per run as n grows, backing the
// paper's Section 4.3.1 discussion (FairKM is slower than K-Means by
// a k·|S|-dependent factor per pass, but far cheaper than
// NP-hard/fairlet-style preprocessing).
type Scalability struct {
	Points []ScalePoint
	K      int
}

// RunScalability times the three main methods across Adult subsets of
// growing size.
func RunScalability(opts Options) (*Scalability, error) {
	opts.normalize()
	const k = 5
	out := &Scalability{K: k}
	for _, n := range []int{1000, 2000, 4000, 8000} {
		ds, err := adult.Generate(adult.Config{Seed: opts.Seed, Rows: n, SkipParity: true})
		if err != nil {
			return nil, err
		}
		ds.MinMaxNormalize()
		p := ScalePoint{N: ds.N()}

		start := time.Now()
		if _, err := kmeans.Run(ds.Features, opts.KMeansConfig(k, opts.Seed)); err != nil {
			return nil, err
		}
		p.KMeansMillis = ms(start)

		start = time.Now()
		fkmCfg := opts.FairKMConfig(k, opts.Seed)
		fkmCfg.Lambda = 1e6
		if _, err := core.Run(ds, fkmCfg); err != nil {
			return nil, err
		}
		p.FairKMMillis = ms(start)

		start = time.Now()
		zgCfg := opts.ZGYAConfig("gender", k, opts.Seed)
		zgCfg.AutoLambda = true
		if _, err := zgya.Run(ds, "gender", zgCfg); err != nil {
			return nil, err
		}
		p.ZGYAMillis = ms(start)

		out.Points = append(out.Points, p)
	}
	return out, nil
}

func ms(start time.Time) float64 {
	return float64(time.Since(start).Microseconds()) / 1000
}

// Render prints the scaling table.
func (s *Scalability) Render() string {
	tt := newTextTable(fmt.Sprintf("Wall-clock per run vs dataset size (k=%d, 30 iterations)", s.K))
	tt.row("n", "K-Means ms", "FairKM ms", "ZGYA(gender) ms")
	tt.rule()
	for _, p := range s.Points {
		tt.row(fmt.Sprintf("%d", p.N), f2(p.KMeansMillis), f2(p.FairKMMillis), f2(p.ZGYAMillis))
	}
	return tt.String()
}

// NumericSensitive exercises the Section 4.4.1 extension: age as a
// numeric sensitive attribute on the Adult data.
type NumericSensitive struct {
	K int
	// Rows: per method, the cluster-mean age gap report.
	Blind  metrics.NumericFairnessReport
	FairKM metrics.NumericFairnessReport
	// CO for both methods.
	BlindCO, FairKMCO float64
}

// RunNumericSensitive moves Adult's age column from the features into
// a numeric sensitive attribute, then compares blind K-Means against
// FairKM under Eq. 22.
func RunNumericSensitive(opts Options) (*NumericSensitive, error) {
	opts.normalize()
	base, err := LoadAdult(opts)
	if err != nil {
		return nil, err
	}
	// Rebuild: age (feature column 0) becomes numeric-sensitive; the
	// remaining 7 features stay.
	b := dataset.NewBuilder(adult.FeatureNames[1:]...)
	b.AddNumericSensitive("age")
	for i := 0; i < base.N(); i++ {
		b.Row(base.Features[i][1:], nil, []float64{base.Features[i][0]})
	}
	ds, err := b.Build()
	if err != nil {
		return nil, err
	}
	const k = 5
	km, err := kmeans.Run(ds.Features, opts.KMeansConfig(k, opts.Seed))
	if err != nil {
		return nil, err
	}
	fkmCfg := opts.FairKMConfig(k, opts.Seed)
	fkmCfg.Lambda = opts.AdultLambda
	fkm, err := core.Run(ds, fkmCfg)
	if err != nil {
		return nil, err
	}
	age := ds.SensitiveByName("age")
	return &NumericSensitive{
		K:        k,
		Blind:    metrics.NumericFairness(age, km.Assign, k),
		FairKM:   metrics.NumericFairness(age, fkm.Assign, k),
		BlindCO:  metrics.CO(ds.Features, km.Assign, k),
		FairKMCO: metrics.CO(ds.Features, fkm.Assign, k),
	}, nil
}

// Render prints the numeric-sensitive comparison.
func (n *NumericSensitive) Render() string {
	tt := newTextTable(fmt.Sprintf("Numeric sensitive attribute (age) on Adult, k=%d — Eq. 22 extension", n.K))
	tt.row("Method", "CO ↓", "avg |meanC−meanX| ↓", "max gap ↓", "normalized avg ↓")
	tt.rule()
	tt.row("K-Means (blind)", f4(n.BlindCO), f4(n.Blind.AvgGap), f4(n.Blind.MaxGap), f4(n.Blind.NormAvgGap))
	tt.row("FairKM (Eq. 22)", f4(n.FairKMCO), f4(n.FairKM.AvgGap), f4(n.FairKM.MaxGap), f4(n.FairKM.NormAvgGap))
	return tt.String()
}
