package experiments

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/kmeans"
	"repro/internal/metrics"
)

// KPoint is one k in the cluster-count sweep.
type KPoint struct {
	K int
	// Blind and Fair hold the K-Means(N) / FairKM measurements.
	BlindCO, FairCO float64
	BlindSH, FairSH float64
	// Mean fairness across attributes and, separately, the
	// highest-cardinality attribute (native-country), whose recovery
	// with growing k is the paper's Section 5.5.3 observation.
	BlindMeanAE, FairMeanAE float64
	BlindWideAE, FairWideAE float64
	WideAttr                string
}

// KSweep generalizes the paper's k ∈ {5, 15} contrast into a sweep,
// tracking how FairKM uses the extra assignment flexibility of larger
// k — especially on the highest-cardinality attribute.
type KSweep struct {
	Dataset string
	Points  []KPoint
	Reps    int
}

// RunKSweep sweeps k over the Adult dataset.
func RunKSweep(opts Options) (*KSweep, error) {
	opts.normalize()
	ds, err := LoadAdult(opts)
	if err != nil {
		return nil, err
	}
	// Highest-cardinality categorical attribute.
	wide := ""
	wideCard := 0
	for _, s := range ds.Sensitive {
		if s.Cardinality() > wideCard {
			wide, wideCard = s.Name, s.Cardinality()
		}
	}
	sweep := &KSweep{Dataset: "Adult", Reps: opts.Reps}
	for _, k := range []int{2, 5, 10, 15, 20} {
		var p KPoint
		p.K = k
		p.WideAttr = wide
		for rep := 0; rep < opts.Reps; rep++ {
			seed := opts.Seed + int64(rep)
			km, err := kmeans.Run(ds.Features, opts.KMeansConfig(k, seed))
			if err != nil {
				return nil, err
			}
			fkmCfg := opts.FairKMConfig(k, seed)
			fkmCfg.Lambda = opts.AdultLambda
			fkm, err := core.Run(ds, fkmCfg)
			if err != nil {
				return nil, err
			}
			p.BlindCO += metrics.CO(ds.Features, km.Assign, k)
			p.FairCO += metrics.CO(ds.Features, fkm.Assign, k)
			p.BlindSH += metrics.SilhouetteSampled(ds.Features, km.Assign, k, opts.SilhouetteSample, seed)
			p.FairSH += metrics.SilhouetteSampled(ds.Features, fkm.Assign, k, opts.SilhouetteSample, seed)
			kmReps := metrics.FairnessAll(ds, km.Assign, k)
			fkReps := metrics.FairnessAll(ds, fkm.Assign, k)
			p.BlindMeanAE += kmReps[len(kmReps)-1].AE
			p.FairMeanAE += fkReps[len(fkReps)-1].AE
			p.BlindWideAE += findAttr(kmReps, wide).AE
			p.FairWideAE += findAttr(fkReps, wide).AE
		}
		inv := 1 / float64(opts.Reps)
		p.BlindCO *= inv
		p.FairCO *= inv
		p.BlindSH *= inv
		p.FairSH *= inv
		p.BlindMeanAE *= inv
		p.FairMeanAE *= inv
		p.BlindWideAE *= inv
		p.FairWideAE *= inv
		sweep.Points = append(sweep.Points, p)
	}
	return sweep, nil
}

func findAttr(reps []metrics.FairnessReport, name string) metrics.FairnessReport {
	for _, r := range reps {
		if r.Attribute == name {
			return r
		}
	}
	return metrics.FairnessReport{}
}

// Render prints the sweep.
func (s *KSweep) Render() string {
	tt := newTextTable(fmt.Sprintf("Cluster-count sweep on %s (mean of %d restarts; wide attr = %s)",
		s.Dataset, s.Reps, s.Points[0].WideAttr))
	tt.row("k", "CO blind", "CO fair", "SH blind", "SH fair", "meanAE blind", "meanAE fair", "wideAE blind", "wideAE fair")
	tt.rule()
	for _, p := range s.Points {
		tt.row(fmt.Sprintf("%d", p.K),
			f4(p.BlindCO), f4(p.FairCO), f4(p.BlindSH), f4(p.FairSH),
			f4(p.BlindMeanAE), f4(p.FairMeanAE), f4(p.BlindWideAE), f4(p.FairWideAE))
	}
	return tt.String()
}

// ConvergencePoint traces FairKM's per-iteration behaviour at one λ.
type ConvergencePoint struct {
	Lambda     float64
	Iterations float64 // mean iterations to convergence (or MaxIter)
	Converged  float64 // fraction of restarts that converged
	FirstObj   float64 // mean objective after iteration 1
	FinalObj   float64 // mean final objective
	TotalMoves float64 // mean total assignment changes
}

// Convergence measures optimizer behaviour across λ on Kinematics,
// quantifying the claim that round-robin coordinate descent converges
// comfortably inside the paper's 30-iteration budget.
type Convergence struct {
	Points []ConvergencePoint
	Reps   int
}

// RunConvergence traces FairKM convergence for several λ.
func RunConvergence(opts Options) (*Convergence, error) {
	opts.normalize()
	ds, err := LoadKinematics(opts)
	if err != nil {
		return nil, err
	}
	out := &Convergence{Reps: opts.Reps}
	for _, lambda := range []float64{0, 1000, 4000, 10000} {
		var p ConvergencePoint
		p.Lambda = lambda
		for rep := 0; rep < opts.Reps; rep++ {
			cfg := opts.FairKMConfig(5, opts.Seed+int64(rep))
			cfg.Lambda = lambda
			cfg.RecordHistory = true
			res, err := core.Run(ds, cfg)
			if err != nil {
				return nil, err
			}
			p.Iterations += float64(res.Iterations)
			if res.Converged {
				p.Converged++
			}
			p.FirstObj += res.History[0].Objective
			p.FinalObj += res.Objective
			p.TotalMoves += float64(res.TotalMoves)
		}
		inv := 1 / float64(opts.Reps)
		p.Iterations *= inv
		p.Converged *= inv
		p.FirstObj *= inv
		p.FinalObj *= inv
		p.TotalMoves *= inv
		out.Points = append(out.Points, p)
	}
	return out, nil
}

// Render prints the convergence table.
func (c *Convergence) Render() string {
	tt := newTextTable(fmt.Sprintf("FairKM convergence on Kinematics, k=5 (mean of %d restarts, cap %d iterations)",
		c.Reps, 30))
	tt.row("lambda", "iterations", "converged%", "obj@iter1", "obj final", "total moves")
	tt.rule()
	for _, p := range c.Points {
		tt.row(fmt.Sprintf("%.0f", p.Lambda),
			f2(p.Iterations), f2(100*p.Converged), f4(p.FirstObj), f4(p.FinalObj), f2(p.TotalMoves))
	}
	return tt.String()
}
