package experiments

import (
	"fmt"
	"time"

	"repro/internal/core"
	"repro/internal/data/adult"
	"repro/internal/dataset"
	"repro/internal/pipeline"
	"repro/internal/testfix"
)

// The shard-scaling study measures FitStreamSharded across shard
// counts: how the merged-summary solve's objective moves relative to
// the single-shard pipeline and the full-data solve, how much summary
// the union carries, and the ingest+solve wall-clock per S. It backs
// the EXPERIMENTS.md "Shard scaling" section and BenchmarkShard.
// (Wall-clock scaling needs cores; objective quality and determinism
// do not, so the ratios are the portable part of this table.)

// ShardPoint is one (dataset, shard count) grid point.
type ShardPoint struct {
	Name   string
	N      int
	K      int
	Shards int
	// SummaryRows is the merged union's size; Groups the realized
	// strata.
	SummaryRows int
	Groups      int
	// Objective is the merged-summary solve's descent objective;
	// RatioVsS1 compares it to the S=1 (FitStream) solve and RatioVsFull
	// to the full-data solve at the same λ.
	Objective   float64
	RatioVsS1   float64
	RatioVsFull float64
	// Millis is summarize+merge+solve wall-clock.
	Millis float64
}

// ShardStudy is the completed sweep.
type ShardStudy struct {
	M      int
	Points []ShardPoint
}

// ShardStudyShards configures the sweep's shard counts.
var ShardStudyShards = []int{1, 2, 4, 8}

// ShardStudySizes configures the synthetic scale (reduced by tests).
var ShardStudySizes = []int{100000}

// RunShardStudy sweeps shard counts on Adult (n=6500, stratified on
// gender×race) and a synthetic mixture, solving each S with one worker
// per shard.
func RunShardStudy(opts Options) (*ShardStudy, error) {
	opts.normalize()
	const m = 160
	study := &ShardStudy{M: m}

	adultDS, err := adult.Generate(adult.Config{Seed: opts.Seed, Rows: 6500, SkipParity: true})
	if err != nil {
		return nil, err
	}
	adultDS.MinMaxNormalize()
	adultStrat, err := adultDS.WithSensitive("gender", "race")
	if err != nil {
		return nil, err
	}
	if err := study.sweep("adult-6500", adultStrat, 7, 500, m, opts); err != nil {
		return nil, err
	}
	for _, n := range ShardStudySizes {
		synth := testfix.Synth(opts.Seed+100, n, 6, 2, 0)
		if err := study.sweep(fmt.Sprintf("synth-%d", n), synth, 8, 2048, m, opts); err != nil {
			return nil, err
		}
	}
	return study, nil
}

// sweep runs one dataset across ShardStudyShards.
func (s *ShardStudy) sweep(name string, ds *dataset.Dataset, k, chunk, m int, opts Options) error {
	full, err := core.Run(ds, core.Config{
		K: k, AutoLambda: true,
		Seed: opts.Seed, MaxIter: opts.MaxIter, Parallelism: opts.Parallelism,
	})
	if err != nil {
		return fmt.Errorf("experiments: shardsweep full %s: %w", name, err)
	}
	var s1 float64
	for _, shards := range ShardStudyShards {
		start := time.Now()
		res, err := pipeline.FitStreamSharded(pipeline.NewSliceSource(ds, chunk), pipeline.ShardedConfig{
			Config: pipeline.Config{
				K: k, AutoLambda: true, CoresetSize: m,
				Seed: opts.Seed, MaxIter: opts.MaxIter, Parallelism: opts.Parallelism,
			},
			Shards: shards,
		})
		if err != nil {
			return fmt.Errorf("experiments: shardsweep %s S=%d: %w", name, shards, err)
		}
		pt := ShardPoint{
			Name: name, N: ds.N(), K: k, Shards: shards,
			SummaryRows: res.Summary.N(), Groups: res.Groups,
			Objective: res.Solve.Objective,
			Millis:    ms(start),
		}
		if shards == ShardStudyShards[0] && shards == 1 {
			s1 = res.Solve.Objective
		}
		if s1 > 0 {
			pt.RatioVsS1 = res.Solve.Objective / s1
		}
		pt.RatioVsFull = res.Solve.Objective / full.Objective
		s.Points = append(s.Points, pt)
	}
	return nil
}

// Render prints the study.
func (s *ShardStudy) Render() string {
	tt := newTextTable(fmt.Sprintf("Sharded summarize-then-solve scaling (coreset m=%d per stratum per shard)", s.M))
	tt.row("dataset", "n", "k", "S", "summary", "strata", "objective", "vs S=1", "vs full", "ms")
	tt.rule()
	for _, p := range s.Points {
		tt.row(p.Name, fmt.Sprintf("%d", p.N), fmt.Sprintf("%d", p.K), fmt.Sprintf("%d", p.Shards),
			fmt.Sprintf("%d", p.SummaryRows), fmt.Sprintf("%d", p.Groups),
			f2(p.Objective), f4(p.RatioVsS1), f4(p.RatioVsFull), f2(p.Millis))
	}
	return tt.String()
}
