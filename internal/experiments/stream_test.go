package experiments

import (
	"strings"
	"testing"
)

// TestStreamStudySmall runs the streaming study at reduced synthetic
// scale (the full n=10⁵ point belongs to cmd/experiments and
// BenchmarkStream) and sanity-checks the comparison it reports.
func TestStreamStudySmall(t *testing.T) {
	saved := StreamStudySizes
	StreamStudySizes = []int{4000}
	defer func() { StreamStudySizes = saved }()

	study, err := RunStreamStudy(DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if len(study.Points) != 2 {
		t.Fatalf("%d points, want 2", len(study.Points))
	}
	for _, p := range study.Points {
		if p.SummaryRows <= 0 || p.SummaryRows >= p.N {
			t.Errorf("%s: summary %d rows of %d — no compression", p.Name, p.SummaryRows, p.N)
		}
		if p.Ratio <= 0 {
			t.Errorf("%s: ratio %v", p.Name, p.Ratio)
		}
		// The acceptance bar for Adult; the synthetic mixture is held
		// to a looser sanity bound here because of its reduced scale.
		if p.Name == "adult-6500" && p.Ratio > 1.05 {
			t.Errorf("%s: summary-solve objective %.1f%% above full solve", p.Name, 100*(p.Ratio-1))
		}
		if p.Ratio > 1.5 {
			t.Errorf("%s: ratio %v way off", p.Name, p.Ratio)
		}
	}
	out := study.Render()
	for _, want := range []string{"adult-6500", "synth-4000", "ratio", "stream ms"} {
		if !strings.Contains(out, want) {
			t.Errorf("render missing %q:\n%s", want, out)
		}
	}
}
