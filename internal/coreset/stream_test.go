package coreset

import (
	"math"
	"testing"

	"repro/internal/kmeans"
	"repro/internal/stats"
)

func TestStreamBoundsMemory(t *testing.T) {
	st, err := NewStream(40, 80, 1)
	if err != nil {
		t.Fatal(err)
	}
	rng := stats.NewRNG(2)
	const n = 20000
	for i := 0; i < n; i++ {
		x := []float64{rng.Gaussian(float64(i%4)*6, 0.5), rng.Gaussian(0, 0.5)}
		if err := st.Add(x, i%2); err != nil {
			t.Fatal(err)
		}
	}
	if st.Count() != n {
		t.Errorf("Count = %d", st.Count())
	}
	features, weights, groups := st.Summary()
	// Memory bound: per group at most m·log2(n/block) + block points.
	maxPerGroup := 40*15 + 80
	if len(features) > 2*maxPerGroup {
		t.Errorf("summary holds %d points; streaming bound violated (~%d allowed)", len(features), 2*maxPerGroup)
	}
	if len(weights) != len(features) || len(groups) != len(features) {
		t.Fatalf("misaligned summary slices")
	}
	// Total weight must equal the stream length exactly (rescaled).
	if total := stats.Sum(weights); math.Abs(total-n) > 1e-6 {
		t.Errorf("total weight %v, want %d", total, n)
	}
	// Group masses preserved exactly: the stream alternated groups.
	var g0 float64
	for i, g := range groups {
		if g == 0 {
			g0 += weights[i]
		}
	}
	if math.Abs(g0-n/2) > 1e-6 {
		t.Errorf("group-0 weight %v, want %d", g0, n/2)
	}
}

// TestStreamSummaryClusterable: weighted k-means on the stream summary
// must recover centroids competitive with batch k-means on all points.
func TestStreamSummaryClusterable(t *testing.T) {
	st, err := NewStream(60, 120, 3)
	if err != nil {
		t.Fatal(err)
	}
	rng := stats.NewRNG(4)
	var all [][]float64
	const n = 6000
	for i := 0; i < n; i++ {
		x := []float64{rng.Gaussian(float64(i%3)*10, 0.6), rng.Gaussian(0, 0.6)}
		all = append(all, x)
		if err := st.Add(x, 0); err != nil {
			t.Fatal(err)
		}
	}
	features, weights, _ := st.Summary()
	wres, err := kmeans.RunWeighted(features, weights, kmeans.Config{K: 3, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	full, err := kmeans.Run(all, kmeans.Config{K: 3, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	// Score the stream-derived centroids on the full data.
	cost := 0.0
	for _, x := range all {
		best := math.Inf(1)
		for _, cen := range wres.Centroids {
			if d := stats.SqDist(x, cen); d < best {
				best = d
			}
		}
		cost += best
	}
	if cost > 1.25*full.Objective {
		t.Errorf("stream solution costs %v vs batch %v (>25%% worse)", cost, full.Objective)
	}
}

func TestStreamValidation(t *testing.T) {
	if _, err := NewStream(0, 10, 1); err == nil {
		t.Error("m=0 accepted")
	}
	if _, err := NewStream(20, 10, 1); err == nil {
		t.Error("blockSize < m accepted")
	}
	st, err := NewStream(5, 10, 1)
	if err != nil {
		t.Fatal(err)
	}
	if err := st.Add(nil, 0); err == nil {
		t.Error("empty feature vector accepted")
	}
}

// TestStreamSummaryNoAliasing: Summary must return copies. The
// historical implementation handed out the stream's retained level rows
// (and live buffer rows) by reference, so a caller mutating the summary
// — e.g. normalizing it before a solve — silently corrupted every later
// summary and reduce step.
func TestStreamSummaryNoAliasing(t *testing.T) {
	st, err := NewStream(10, 20, 5)
	if err != nil {
		t.Fatal(err)
	}
	rng := stats.NewRNG(9)
	// Enough points to have both retained levels and a partial buffer.
	for i := 0; i < 110; i++ {
		if err := st.Add([]float64{rng.Gaussian(0, 1), rng.Gaussian(0, 1)}, 0); err != nil {
			t.Fatal(err)
		}
	}
	f1, w1, g1 := st.Summary()
	// Snapshot, then vandalize the returned rows.
	saved := make([][]float64, len(f1))
	for i, row := range f1 {
		saved[i] = append([]float64(nil), row...)
		for j := range row {
			row[j] = math.NaN()
		}
	}
	// A second summary of the untouched stream must be unaffected.
	f2, w2, g2 := st.Summary()
	if len(f2) != len(f1) || len(w2) != len(w1) || len(g2) != len(g1) {
		t.Fatalf("summary shape changed: %d vs %d rows", len(f2), len(f1))
	}
	for i := range f2 {
		for j := range f2[i] {
			if f2[i][j] != saved[i][j] {
				t.Fatalf("row %d corrupted by caller mutation: %v vs %v", i, f2[i], saved[i])
			}
		}
	}
	// Streaming onward after the mutation must stay NaN-free.
	for i := 0; i < 200; i++ {
		if err := st.Add([]float64{rng.Gaussian(0, 1), rng.Gaussian(0, 1)}, 0); err != nil {
			t.Fatal(err)
		}
	}
	f3, w3, _ := st.Summary()
	for i := range f3 {
		for j := range f3[i] {
			if math.IsNaN(f3[i][j]) {
				t.Fatalf("retained row %d picked up caller NaN", i)
			}
		}
		if math.IsNaN(w3[i]) {
			t.Fatalf("weight %d is NaN", i)
		}
	}
}

func TestStreamSmallResidue(t *testing.T) {
	// Fewer points than one block: summary is exactly the buffer.
	st, _ := NewStream(5, 10, 1)
	for i := 0; i < 7; i++ {
		if err := st.Add([]float64{float64(i)}, 3); err != nil {
			t.Fatal(err)
		}
	}
	features, weights, groups := st.Summary()
	if len(features) != 7 {
		t.Fatalf("summary has %d points, want 7", len(features))
	}
	for i := range weights {
		if math.Abs(weights[i]-1) > 1e-12 {
			t.Errorf("buffered weight %v, want 1", weights[i])
		}
		if groups[i] != 3 {
			t.Errorf("group %d, want 3", groups[i])
		}
	}
}
