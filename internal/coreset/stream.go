package coreset

import (
	"errors"
	"fmt"
	"sort"

	"repro/internal/stats"
)

// Stream maintains a fair coreset over an unbounded point stream with
// the classical merge-and-reduce scheme (the streaming construction of
// Schmidt et al.): points buffer into blocks; each full block becomes a
// level-0 coreset; whenever two coresets occupy the same level they are
// merged (union) and reduced (re-sampled to m points) into the next
// level. At any moment the summary is the union of at most log(n/block)
// live levels, each of size ≤ m, built per sensitive group so group
// proportions survive.
//
// The stream stores the features of retained points only — memory is
// O(m·log n), independent of the stream length.
type Stream struct {
	m     int
	block int
	rng   *stats.RNG

	// Per group: buffered raw points and the merge-and-reduce levels.
	groups map[int]*groupStream
	count  int
}

// groupStream is the per-sensitive-value state.
type groupStream struct {
	buffer [][]float64
	seen   int // total points of this group observed
	levels []*levelSet
}

// levelSet is one coreset in the binary merge tree: retained feature
// rows with weights.
type levelSet struct {
	features [][]float64
	weights  []float64
}

// NewStream creates a streaming fair coreset builder: per sensitive
// group, blocks of blockSize raw points are compressed to coresets of m
// points. blockSize must be ≥ m.
func NewStream(m, blockSize int, seed int64) (*Stream, error) {
	if m < 1 {
		return nil, fmt.Errorf("coreset: stream m=%d must be positive", m)
	}
	if blockSize < m {
		return nil, fmt.Errorf("coreset: blockSize=%d must be at least m=%d", blockSize, m)
	}
	return &Stream{
		m:      m,
		block:  blockSize,
		rng:    stats.NewRNG(seed),
		groups: map[int]*groupStream{},
	}, nil
}

// Add consumes one point with its sensitive-group code. The feature
// slice is copied.
func (s *Stream) Add(features []float64, group int) error {
	if len(features) == 0 {
		return errors.New("coreset: empty feature vector")
	}
	g := s.groups[group]
	if g == nil {
		g = &groupStream{}
		s.groups[group] = g
	}
	g.buffer = append(g.buffer, append([]float64(nil), features...))
	g.seen++
	s.count++
	if len(g.buffer) >= s.block {
		if err := s.flushGroup(g); err != nil {
			return err
		}
	}
	return nil
}

// flushGroup compresses the buffer into a level-0 coreset and carries
// merges up the tree.
func (s *Stream) flushGroup(g *groupStream) error {
	w, err := LightweightWeighted(g.buffer, nil, nil, s.m, s.rng)
	if err != nil {
		return err
	}
	ls := &levelSet{}
	for pos, i := range w.Indices {
		ls.features = append(ls.features, g.buffer[i])
		ls.weights = append(ls.weights, w.Weights[pos])
	}
	g.buffer = nil
	// Carry: like binary addition, merge equal levels upward.
	level := 0
	for {
		if level == len(g.levels) {
			g.levels = append(g.levels, nil)
		}
		if g.levels[level] == nil {
			g.levels[level] = ls
			return nil
		}
		merged, err := s.reduce(g.levels[level], ls)
		if err != nil {
			return err
		}
		g.levels[level] = nil
		ls = merged
		level++
	}
}

// reduce merges two level sets and re-samples down to m points.
func (s *Stream) reduce(a, b *levelSet) (*levelSet, error) {
	features := append(append([][]float64{}, a.features...), b.features...)
	weights := append(append([]float64{}, a.weights...), b.weights...)
	w, err := LightweightWeighted(features, nil, weights, s.m, s.rng)
	if err != nil {
		return nil, err
	}
	out := &levelSet{}
	for pos, i := range w.Indices {
		out.features = append(out.features, features[i])
		out.weights = append(out.weights, w.Weights[pos])
	}
	return out, nil
}

// Count returns how many points the stream has consumed.
func (s *Stream) Count() int { return s.count }

// Summary materializes the current coreset: all live levels of all
// groups plus any unflushed buffer points (at unit weight), with each
// group's total weight rescaled to exactly match its observed count.
// It returns parallel slices of features, weights, and group codes.
//
// Every returned feature row is a fresh copy: the retained levels (and
// the live buffer) stay private to the stream, so callers may mutate
// the summary — normalize it, feed it to an in-place transform — and
// then keep streaming without corrupting later summaries.
func (s *Stream) Summary() (features [][]float64, weights []float64, groups []int) {
	codes := make([]int, 0, len(s.groups))
	for code := range s.groups {
		codes = append(codes, code)
	}
	sort.Ints(codes)
	for _, code := range codes {
		g := s.groups[code]
		start := len(weights)
		for _, ls := range g.levels {
			if ls == nil {
				continue
			}
			for pos := range ls.features {
				features = append(features, stats.Clone(ls.features[pos]))
				weights = append(weights, ls.weights[pos])
				groups = append(groups, code)
			}
		}
		for _, x := range g.buffer {
			features = append(features, stats.Clone(x))
			weights = append(weights, 1)
			groups = append(groups, code)
		}
		// Exact group-mass rescale (as in Fair).
		total := 0.0
		for _, w := range weights[start:] {
			total += w
		}
		if total > 0 {
			scale := float64(g.seen) / total
			for i := start; i < len(weights); i++ {
				weights[i] *= scale
			}
		}
	}
	return features, weights, groups
}
