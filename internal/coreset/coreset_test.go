package coreset

import (
	"math"
	"testing"

	"repro/internal/dataset"
	"repro/internal/kmeans"
	"repro/internal/stats"
)

func clusteredDataset(t *testing.T, n int) *dataset.Dataset {
	t.Helper()
	b := dataset.NewBuilder("x", "y")
	b.AddCategoricalSensitive("g")
	rng := stats.NewRNG(4)
	for i := 0; i < n; i++ {
		blob := float64(i % 3 * 8)
		v := "a"
		if i%5 == 0 {
			v = "b"
		}
		b.Row([]float64{rng.Gaussian(blob, 0.5), rng.Gaussian(0, 0.5)}, []string{v}, nil)
	}
	ds, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	return ds
}

func TestLightweightWeightsSumApproxN(t *testing.T) {
	ds := clusteredDataset(t, 600)
	w, err := Lightweight(ds.Features, nil, 120, stats.NewRNG(1))
	if err != nil {
		t.Fatal(err)
	}
	// Importance weights are unbiased: total weight ≈ n.
	if total := w.TotalWeight(); math.Abs(total-600) > 150 {
		t.Errorf("total weight %v far from n=600", total)
	}
	if len(w.Indices) > 120 {
		t.Errorf("coreset has %d points, want <= 120 (merging duplicates)", len(w.Indices))
	}
	for _, wt := range w.Weights {
		if wt <= 0 {
			t.Fatalf("non-positive weight %v", wt)
		}
	}
}

func TestLightweightDegenerate(t *testing.T) {
	ds := clusteredDataset(t, 10)
	w, err := Lightweight(ds.Features, nil, 50, stats.NewRNG(1))
	if err != nil {
		t.Fatal(err)
	}
	if len(w.Indices) != 10 {
		t.Errorf("m >= n should keep all points, got %d", len(w.Indices))
	}
	for _, wt := range w.Weights {
		if wt != 1 {
			t.Errorf("unit weights expected, got %v", wt)
		}
	}
	if _, err := Lightweight(ds.Features, []int{}, 5, stats.NewRNG(1)); err == nil {
		t.Error("empty subset accepted")
	}
	if _, err := Lightweight(ds.Features, nil, 0, stats.NewRNG(1)); err == nil {
		t.Error("m=0 accepted")
	}
}

// TestLightweightWeightedDegenerateWeights: an all-zero (or invalid)
// weight vector used to slip through to the 1/totalW division and
// return NaN means and weights; it must be a loud error instead.
func TestLightweightWeightedDegenerateWeights(t *testing.T) {
	ds := clusteredDataset(t, 40)
	zero := make([]float64, 40)
	if _, err := LightweightWeighted(ds.Features, nil, zero, 10, stats.NewRNG(1)); err == nil {
		t.Error("all-zero weights accepted")
	}
	bad := make([]float64, 40)
	for i := range bad {
		bad[i] = 1
	}
	bad[7] = math.NaN()
	if _, err := LightweightWeighted(ds.Features, nil, bad, 10, stats.NewRNG(1)); err == nil {
		t.Error("NaN weight accepted")
	}
	bad[7] = math.Inf(1)
	if _, err := LightweightWeighted(ds.Features, nil, bad, 10, stats.NewRNG(1)); err == nil {
		t.Error("Inf weight accepted")
	}
	bad[7] = -1
	if _, err := LightweightWeighted(ds.Features, nil, bad, 10, stats.NewRNG(1)); err == nil {
		t.Error("negative weight accepted")
	}
	// Individual zero weights among positive ones are fine: the point
	// just can't be sampled by the uniform half of q.
	ok := make([]float64, 40)
	for i := range ok {
		ok[i] = 1
	}
	ok[3] = 0
	w, err := LightweightWeighted(ds.Features, nil, ok, 10, stats.NewRNG(1))
	if err != nil {
		t.Fatalf("zero single weight rejected: %v", err)
	}
	for pos, i := range w.Indices {
		if i == 3 && w.Weights[pos] != 0 {
			t.Errorf("zero-weight point sampled with weight %v", w.Weights[pos])
		}
	}
}

// TestCoresetApproximatesKMeansCost: the weighted k-means cost of a
// solution computed on the coreset must be close to the full-data cost
// of the same solution.
func TestCoresetApproximatesKMeansCost(t *testing.T) {
	ds := clusteredDataset(t, 900)
	full, err := kmeans.Run(ds.Features, kmeans.Config{K: 3, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	w, err := Lightweight(ds.Features, nil, 250, stats.NewRNG(2))
	if err != nil {
		t.Fatal(err)
	}
	// Evaluate the FULL solution's centroids on the coreset.
	sub := make([][]float64, len(w.Indices))
	assign := make([]int, len(w.Indices))
	for pos, i := range w.Indices {
		sub[pos] = ds.Features[i]
		assign[pos] = full.Assign[i]
	}
	coresetCost := kmeans.WeightedSSE(sub, w.Weights, assign, full.Centroids)
	if rel := math.Abs(coresetCost-full.Objective) / full.Objective; rel > 0.35 {
		t.Errorf("coreset cost %v vs full %v (rel err %v)", coresetCost, full.Objective, rel)
	}
}

// TestFairCoresetPreservesGroupProportions: the defining property.
func TestFairCoresetPreservesGroupProportions(t *testing.T) {
	ds := clusteredDataset(t, 800)
	w, err := Fair(ds, "g", 200, 3, 7)
	if err != nil {
		t.Fatal(err)
	}
	g := ds.SensitiveByName("g")
	var aWeight, bWeight float64
	for pos, i := range w.Indices {
		if g.Values[g.Codes[i]] == "a" {
			aWeight += w.Weights[pos]
		} else {
			bWeight += w.Weights[pos]
		}
	}
	// Dataset is 80% a / 20% b; the fair construction preserves group
	// mass exactly (rescaled per group).
	total := aWeight + bWeight
	if math.Abs(aWeight/total-0.8) > 1e-9 {
		t.Errorf("group-a proportion %v, want 0.8 exactly", aWeight/total)
	}
	if math.Abs(total-800) > 1e-6 {
		t.Errorf("total weight %v, want 800", total)
	}
}

// TestWeightedKMeansOnCoresetApproximatesFull: clustering the coreset
// should find centroids nearly as good as clustering everything.
func TestWeightedKMeansOnCoresetApproximatesFull(t *testing.T) {
	ds := clusteredDataset(t, 900)
	full, err := kmeans.Run(ds.Features, kmeans.Config{K: 3, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	w, err := Fair(ds, "g", 250, 3, 8)
	if err != nil {
		t.Fatal(err)
	}
	sub := make([][]float64, len(w.Indices))
	for pos, i := range w.Indices {
		sub[pos] = ds.Features[i]
	}
	wres, err := kmeans.RunWeighted(sub, w.Weights, kmeans.Config{K: 3, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	// Evaluate coreset centroids on the FULL data.
	assign := make([]int, ds.N())
	cost := 0.0
	for i, x := range ds.Features {
		best, bestD := 0, math.Inf(1)
		for c, cen := range wres.Centroids {
			if d := stats.SqDist(x, cen); d < bestD {
				best, bestD = c, d
			}
		}
		assign[i] = best
		cost += bestD
	}
	if cost > 1.3*full.Objective {
		t.Errorf("coreset-derived solution costs %v vs full %v (>30%% worse)", cost, full.Objective)
	}
}

// TestReduceGroups: the merge-reduce step shrinks a weighted, group-
// labelled union to ≈budget points, preserves every group's total mass
// exactly, keeps at least one point per group, and is deterministic in
// the RNG seed.
func TestReduceGroups(t *testing.T) {
	rng := stats.NewRNG(7)
	const n = 900
	features := make([][]float64, n)
	weights := make([]float64, n)
	groups := make([]int, n)
	groupMass := map[int]float64{}
	for i := range features {
		g := i % 3
		features[i] = []float64{rng.Gaussian(float64(g)*5, 1), rng.Gaussian(0, 1)}
		weights[i] = 1 + rng.Float64()
		groups[i] = g
		groupMass[g] += weights[i]
	}
	const budget = 90
	w, err := ReduceGroups(features, weights, groups, budget, stats.NewRNG(3))
	if err != nil {
		t.Fatal(err)
	}
	if len(w.Indices) > budget+3 {
		t.Errorf("reduced to %d points, budget %d (+3 groups)", len(w.Indices), budget)
	}
	gotMass := map[int]float64{}
	seen := map[int]bool{}
	for pos, i := range w.Indices {
		gotMass[groups[i]] += w.Weights[pos]
		seen[groups[i]] = true
	}
	for g, want := range groupMass {
		if !seen[g] {
			t.Errorf("group %d lost entirely", g)
		}
		if math.Abs(gotMass[g]-want) > 1e-9*want {
			t.Errorf("group %d mass %v after reduce, want %v", g, gotMass[g], want)
		}
	}
	// Deterministic replay.
	w2, err := ReduceGroups(features, weights, groups, budget, stats.NewRNG(3))
	if err != nil {
		t.Fatal(err)
	}
	if len(w2.Indices) != len(w.Indices) {
		t.Fatalf("replay kept %d points, want %d", len(w2.Indices), len(w.Indices))
	}
	for pos := range w.Indices {
		if w.Indices[pos] != w2.Indices[pos] || math.Float64bits(w.Weights[pos]) != math.Float64bits(w2.Weights[pos]) {
			t.Fatalf("replay diverges at %d", pos)
		}
	}
	// A tiny group still survives with ≥1 point.
	groups[0] = 99
	w3, err := ReduceGroups(features, weights, groups, budget, stats.NewRNG(3))
	if err != nil {
		t.Fatal(err)
	}
	kept := false
	for _, i := range w3.Indices {
		if i == 0 {
			kept = true
		}
	}
	if !kept {
		t.Error("singleton group dropped by the reduce")
	}

	// Validation.
	if _, err := ReduceGroups(nil, nil, nil, 10, rng); err == nil {
		t.Error("empty point set accepted")
	}
	if _, err := ReduceGroups(features, weights[:10], groups, 10, rng); err == nil {
		t.Error("mismatched weights accepted")
	}
	if _, err := ReduceGroups(features, weights, groups, 0, rng); err == nil {
		t.Error("zero budget accepted")
	}
}

func TestFairErrors(t *testing.T) {
	ds := clusteredDataset(t, 50)
	if _, err := Fair(nil, "g", 20, 2, 1); err == nil {
		t.Error("nil dataset accepted")
	}
	if _, err := Fair(ds, "nope", 20, 2, 1); err == nil {
		t.Error("unknown attribute accepted")
	}
	if _, err := Fair(ds, "g", 1, 2, 1); err == nil {
		t.Error("m too small accepted")
	}
}

func TestRunWeightedValidation(t *testing.T) {
	feats := [][]float64{{1}, {2}, {3}}
	if _, err := kmeans.RunWeighted(feats, []float64{1, 1}, kmeans.Config{K: 2}); err == nil {
		t.Error("weight arity mismatch accepted")
	}
	if _, err := kmeans.RunWeighted(feats, []float64{1, -1, 1}, kmeans.Config{K: 2}); err == nil {
		t.Error("negative weight accepted")
	}
	if _, err := kmeans.RunWeighted(nil, nil, kmeans.Config{K: 1}); err == nil {
		t.Error("empty input accepted")
	}
}

// TestWeightedMatchesUnweightedAtUnitWeights: RunWeighted with all-1
// weights should produce the same objective scale as Run (not exactly
// the same clustering since initialization differs, but evaluating the
// same assignment must give identical SSE).
func TestWeightedSSEMatchesUnweighted(t *testing.T) {
	ds := clusteredDataset(t, 120)
	res, err := kmeans.Run(ds.Features, kmeans.Config{K: 3, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	ones := make([]float64, ds.N())
	for i := range ones {
		ones[i] = 1
	}
	wsse := kmeans.WeightedSSE(ds.Features, ones, res.Assign, res.Centroids)
	if math.Abs(wsse-res.Objective) > 1e-9*(1+res.Objective) {
		t.Errorf("unit-weight SSE %v differs from SSE %v", wsse, res.Objective)
	}
}
