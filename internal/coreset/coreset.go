// Package coreset implements fair (group-stratified) lightweight
// coresets for k-means, after Schmidt, Schwiegelshohn and Sohler
// ("Fair Coresets and Streaming Algorithms for Fair k-Means
// Clustering", 2018), surveyed as reference [20] in the FairKM paper's
// Table 1.
//
// A coreset is a small weighted point set whose weighted k-means cost
// approximates the full dataset's cost for EVERY candidate solution.
// Schmidt et al.'s observation is that fair clustering needs the
// coreset property to hold per sensitive group, which is achieved by
// building one coreset per group and taking the union.
//
// The per-group construction here is the lightweight coreset of Bachem
// et al.: sample m points with probability q(x) = ½·1/|G| +
// ½·d(x,μ_G)²/Σ_{y∈G} d(y,μ_G)², weighting each sampled point by
// 1/(m·q(x)). Sampling is with replacement; duplicates merge their
// weights.
package coreset

import (
	"errors"
	"fmt"
	"math"

	"repro/internal/dataset"
	"repro/internal/stats"
)

// Weighted is a weighted subset of a dataset's rows.
type Weighted struct {
	// Indices are row indexes into the source dataset.
	Indices []int
	// Weights are the corresponding coreset weights (each ≈ how many
	// original points the row stands for).
	Weights []float64
}

// TotalWeight returns the summed weight (≈ n of the source data).
func (w *Weighted) TotalWeight() float64 { return stats.Sum(w.Weights) }

// Lightweight builds a lightweight coreset of m points over the given
// rows of features (subset == nil means all rows).
func Lightweight(features [][]float64, subset []int, m int, rng *stats.RNG) (*Weighted, error) {
	return LightweightWeighted(features, subset, nil, m, rng)
}

// LightweightWeighted is Lightweight over an already-weighted point
// set (weights == nil means unit weights, aligned with subset). It is
// the "reduce" step of the streaming merge-and-reduce construction:
// coresets of coresets remain coresets.
func LightweightWeighted(features [][]float64, subset []int, weights []float64, m int, rng *stats.RNG) (*Weighted, error) {
	if subset == nil {
		subset = make([]int, len(features))
		for i := range subset {
			subset[i] = i
		}
	}
	n := len(subset)
	if n == 0 {
		return nil, errors.New("coreset: empty point set")
	}
	if m < 1 {
		return nil, fmt.Errorf("coreset: size m=%d must be positive", m)
	}
	if weights != nil && len(weights) != n {
		return nil, fmt.Errorf("coreset: %d weights for %d points", len(weights), n)
	}
	if weights != nil {
		sum := 0.0
		for pos, w := range weights {
			if w < 0 || math.IsNaN(w) || math.IsInf(w, 0) {
				return nil, fmt.Errorf("coreset: weight[%d] = %v must be non-negative and finite", pos, w)
			}
			sum += w
		}
		if sum <= 0 {
			// Dividing through by an all-zero mass would poison every
			// mean and sampled weight with NaN; reject instead.
			return nil, fmt.Errorf("coreset: total weight %v is not positive", sum)
		}
	}
	wOf := func(pos int) float64 {
		if weights == nil {
			return 1
		}
		return weights[pos]
	}
	if m >= n {
		// Degenerate: keep everything at its current weight.
		w := &Weighted{Indices: append([]int(nil), subset...), Weights: make([]float64, n)}
		for pos := range w.Weights {
			w.Weights[pos] = wOf(pos)
		}
		return w, nil
	}
	// Weighted mean and weighted squared distances.
	dim := len(features[subset[0]])
	mu := make([]float64, dim)
	totalW := 0.0
	for pos, i := range subset {
		w := wOf(pos)
		for j, v := range features[i] {
			mu[j] += w * v
		}
		totalW += w
	}
	stats.Scale(mu, 1/totalW)
	d2 := make([]float64, n)
	total := 0.0
	for pos, i := range subset {
		d2[pos] = wOf(pos) * stats.SqDist(features[i], mu)
		total += d2[pos]
	}
	q := make([]float64, n)
	for pos := range q {
		q[pos] = 0.5 * wOf(pos) / totalW
		if total > 0 {
			q[pos] += 0.5 * d2[pos] / total
		} else {
			q[pos] += 0.5 * wOf(pos) / totalW
		}
	}
	// Sample m with replacement; merge duplicates by accumulating
	// weight. The estimator Σ w_x/(m·q_x) is unbiased for Σ w_x. Draws
	// go through a prefix-sum table with binary search — O(n + m·log n)
	// for the whole batch instead of Categorical's O(n·m) rescan — and
	// are bit-identical to the historical Categorical(q) stream.
	cum := stats.NewCumulative(q)
	accW := make([]float64, n)
	sampled := make([]bool, n)
	for s := 0; s < m; s++ {
		pos := cum.Sample(rng)
		accW[pos] += wOf(pos) / (float64(m) * q[pos])
		sampled[pos] = true
	}
	w := &Weighted{}
	for pos, i := range subset {
		if sampled[pos] {
			w.Indices = append(w.Indices, i)
			w.Weights = append(w.Weights, accW[pos])
		}
	}
	return w, nil
}

// Fair builds a fair coreset over the named categorical attribute:
// one lightweight coreset per attribute value (size proportional to
// the group, at least k points each), merged. The result preserves
// each group's total weight, so group proportions — the quantity fair
// clustering constrains — survive the compression.
func Fair(ds *dataset.Dataset, attr string, m, k int, seed int64) (*Weighted, error) {
	if ds == nil {
		return nil, errors.New("coreset: nil dataset")
	}
	if err := ds.Validate(); err != nil {
		return nil, fmt.Errorf("coreset: %w", err)
	}
	s := ds.SensitiveByName(attr)
	if s == nil {
		return nil, fmt.Errorf("coreset: no sensitive attribute %q", attr)
	}
	if s.Kind != dataset.Categorical {
		return nil, fmt.Errorf("coreset: attribute %q is not categorical", attr)
	}
	n := ds.N()
	if m < len(s.Values)*max(1, k) {
		return nil, fmt.Errorf("coreset: m=%d too small for %d groups at k=%d", m, len(s.Values), k)
	}
	rng := stats.NewRNG(seed)
	byValue := make([][]int, len(s.Values))
	for i, c := range s.Codes {
		byValue[c] = append(byValue[c], i)
	}
	out := &Weighted{}
	for _, members := range byValue {
		if len(members) == 0 {
			continue
		}
		gm := m * len(members) / n
		if gm < max(1, k) {
			gm = max(1, k)
		}
		gw, err := Lightweight(ds.Features, members, gm, rng.Fork())
		if err != nil {
			return nil, err
		}
		// Rescale so the group's weight equals its population exactly:
		// proportions are what fairness measures; sampling noise in the
		// total is pure harm.
		scale := float64(len(members)) / gw.TotalWeight()
		for i := range gw.Weights {
			gw.Weights[i] *= scale
		}
		out.Indices = append(out.Indices, gw.Indices...)
		out.Weights = append(out.Weights, gw.Weights...)
	}
	return out, nil
}

// ReduceGroups re-samples a weighted, group-labelled point set down to
// about budget points: one LightweightWeighted pass per group (groups
// in order of first appearance, sizes proportional to group row counts,
// at least one point each), with each group's total weight rescaled to
// its exact input mass afterwards — group proportions survive, as in
// Fair. It is the sharded pipeline's merge-reduce step: the union of
// per-shard fair coresets is a fair coreset, and one more reduce keeps
// it one while bounding the solve cost. The result holds at most
// budget + #groups points. Indices index into features.
func ReduceGroups(features [][]float64, weights []float64, groups []int, budget int, rng *stats.RNG) (*Weighted, error) {
	n := len(features)
	if n == 0 {
		return nil, errors.New("coreset: empty point set")
	}
	if len(weights) != n || len(groups) != n {
		return nil, fmt.Errorf("coreset: %d weights and %d groups for %d points", len(weights), len(groups), n)
	}
	if budget < 1 {
		return nil, fmt.Errorf("coreset: budget=%d must be positive", budget)
	}
	var order []int
	rowsOf := map[int][]int{}
	for i, g := range groups {
		if _, ok := rowsOf[g]; !ok {
			order = append(order, g)
		}
		rowsOf[g] = append(rowsOf[g], i)
	}
	out := &Weighted{}
	for _, g := range order {
		rows := rowsOf[g]
		m := budget * len(rows) / n
		if m < 1 {
			m = 1
		}
		gf := make([][]float64, len(rows))
		gw := make([]float64, len(rows))
		mass := 0.0
		for pos, i := range rows {
			gf[pos] = features[i]
			gw[pos] = weights[i]
			mass += weights[i]
		}
		cw, err := LightweightWeighted(gf, nil, gw, m, rng)
		if err != nil {
			return nil, err
		}
		// Exact group-mass rescale: proportions are what fairness
		// measures; sampling noise in the total is pure harm.
		scale := mass / cw.TotalWeight()
		for pos, gi := range cw.Indices {
			out.Indices = append(out.Indices, rows[gi])
			out.Weights = append(out.Weights, cw.Weights[pos]*scale)
		}
	}
	return out, nil
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
