package adult

import (
	"math"
	"testing"

	"repro/internal/dataset"
	"repro/internal/kmeans"
	"repro/internal/metrics"
)

// small generates a reduced dataset for fast tests.
func small(t *testing.T, rows int, parity bool) *dataset.Dataset {
	t.Helper()
	ds, err := Generate(Config{Seed: 1, Rows: rows, SkipParity: !parity})
	if err != nil {
		t.Fatalf("Generate: %v", err)
	}
	return ds
}

func TestSchemaMatchesPaper(t *testing.T) {
	ds := small(t, 3000, false)
	if got := len(ds.FeatureNames); got != 8 {
		t.Errorf("feature count = %d, want 8", got)
	}
	wantCard := map[string]int{
		"marital-status": 7, "relationship": 6, "race": 5,
		"gender": 2, "native-country": 41,
	}
	for name, want := range wantCard {
		s := ds.SensitiveByName(name)
		if s == nil {
			t.Fatalf("missing sensitive attribute %q", name)
		}
		if got := s.Cardinality(); got != want {
			t.Errorf("%s cardinality = %d, want %d (Table 3)", name, got, want)
		}
	}
	if err := ds.Validate(); err != nil {
		t.Errorf("Validate: %v", err)
	}
}

func TestMarginalSkews(t *testing.T) {
	ds := small(t, 20000, false)
	race := ds.SensitiveByName("race")
	fr := ds.Fractions(race)
	white := fr[indexOf(race.Values, "White")]
	if white < 0.78 || white > 0.90 {
		t.Errorf("White fraction = %v, want ~0.86 (paper quotes 87%% dominant race)", white)
	}
	country := ds.SensitiveByName("native-country")
	frC := ds.Fractions(country)
	us := frC[indexOf(country.Values, "United-States")]
	if us < 0.85 || us > 0.95 {
		t.Errorf("United-States fraction = %v, want ~0.90", us)
	}
	gender := ds.SensitiveByName("gender")
	frG := ds.Fractions(gender)
	male := frG[indexOf(gender.Values, "Male")]
	if math.Abs(male-2.0/3.0) > 0.03 {
		t.Errorf("Male fraction = %v, want ~0.667", male)
	}
}

func indexOf(vals []string, v string) int {
	for i, x := range vals {
		if x == v {
			return i
		}
	}
	return -1
}

func TestParityUndersampling(t *testing.T) {
	full := small(t, 20000, false)
	par := small(t, 20000, true)
	if par.N() >= full.N() {
		t.Errorf("undersampled size %d not smaller than full %d", par.N(), full.N())
	}
	// Positive rate ~24% means parity size ~2·0.24·n ≈ 0.48·n.
	ratio := float64(par.N()) / float64(full.N())
	if ratio < 0.35 || ratio > 0.6 {
		t.Errorf("parity ratio = %v, want ~0.48", ratio)
	}
	if par.N()%2 != 0 {
		t.Errorf("parity dataset size %d must be even", par.N())
	}
}

func TestFullScaleSizeNearPaper(t *testing.T) {
	if testing.Short() {
		t.Skip("full-scale generation in -short mode")
	}
	ds, err := Generate(Config{Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	// Paper: 32561 → 15682. Our income model is calibrated to the same
	// ~24.1% positive rate; allow sampling noise.
	if ds.N() < 14000 || ds.N() > 17500 {
		t.Errorf("parity size = %d, want ≈ %d", ds.N(), ParitySize)
	}
}

// TestSensitiveLeaksIntoFeatures is the property the whole evaluation
// depends on: clustering on N alone must produce gender skew (because N
// correlates with S), otherwise fair clustering would be pointless.
func TestSensitiveLeaksIntoFeatures(t *testing.T) {
	ds := small(t, 6000, false)
	// Standardize a copy of features for scale-free clustering.
	cp := ds.Subset(identity(ds.N()))
	cp.Features = deepCopy(cp.Features)
	cp.Standardize()
	res, err := kmeans.Run(cp.Features, kmeans.Config{K: 5, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	rep := metrics.Fairness(cp, cp.SensitiveByName("gender"), res.Assign, 5)
	if rep.AE < 0.02 {
		t.Errorf("gender AE under S-blind clustering = %v; expected noticeable skew (> 0.02)", rep.AE)
	}
}

func identity(n int) []int {
	idx := make([]int, n)
	for i := range idx {
		idx[i] = i
	}
	return idx
}

func deepCopy(rows [][]float64) [][]float64 {
	out := make([][]float64, len(rows))
	for i, r := range rows {
		out[i] = append([]float64(nil), r...)
	}
	return out
}

func TestDeterminism(t *testing.T) {
	a := small(t, 2000, true)
	b := small(t, 2000, true)
	if a.N() != b.N() {
		t.Fatalf("sizes differ: %d vs %d", a.N(), b.N())
	}
	for i := range a.Features {
		for j := range a.Features[i] {
			if a.Features[i][j] != b.Features[i][j] {
				t.Fatalf("feature [%d][%d] differs", i, j)
			}
		}
	}
}

func TestSeedsDiffer(t *testing.T) {
	a, err := Generate(Config{Seed: 1, Rows: 500, SkipParity: true})
	if err != nil {
		t.Fatal(err)
	}
	b, err := Generate(Config{Seed: 2, Rows: 500, SkipParity: true})
	if err != nil {
		t.Fatal(err)
	}
	same := true
	for i := range a.Features {
		for j := range a.Features[i] {
			if a.Features[i][j] != b.Features[i][j] {
				same = false
			}
		}
	}
	if same {
		t.Error("different seeds produced identical data")
	}
}

func TestErrors(t *testing.T) {
	if _, err := Generate(Config{Rows: 1}); err == nil {
		t.Error("Rows=1 accepted")
	}
}

func TestRelationshipConsistency(t *testing.T) {
	ds := small(t, 5000, false)
	rel := ds.SensitiveByName("relationship")
	gen := ds.SensitiveByName("gender")
	mar := ds.SensitiveByName("marital-status")
	hIdx := indexOf(rel.Values, "Husband")
	wIdx := indexOf(rel.Values, "Wife")
	maleIdx := indexOf(gen.Values, "Male")
	for i := 0; i < ds.N(); i++ {
		if rel.Codes[i] == hIdx && gen.Codes[i] != maleIdx {
			t.Fatalf("row %d: female Husband", i)
		}
		if rel.Codes[i] == wIdx && gen.Codes[i] == maleIdx {
			t.Fatalf("row %d: male Wife", i)
		}
		mv := mar.Values[mar.Codes[i]]
		rv := rel.Values[rel.Codes[i]]
		if (rv == "Husband" || rv == "Wife") &&
			mv != "Married-civ-spouse" && mv != "Married-AF-spouse" {
			t.Fatalf("row %d: %s but marital %s", i, rv, mv)
		}
	}
}
