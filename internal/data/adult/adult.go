// Package adult generates a synthetic stand-in for the UCI Adult
// (Census Income, 1994) dataset used in the FairKM paper's evaluation
// (Section 5.1).
//
// The real dataset cannot be shipped here, so this generator reproduces
// the properties the experiments actually depend on:
//
//   - the same five sensitive attributes with the paper's exact domain
//     cardinalities (Table 3): marital status (7), relationship status
//     (6), race (5), gender (2), native country (41);
//   - realistic marginal skews: ~86% White (the paper quotes 87% for
//     the dominant race value), ~90% United-States with a long Zipf
//     tail over 40 other countries, a ~2:1 male:female ratio;
//   - eight numeric non-sensitive attributes (age, workclass code,
//     workclass tenure, education years, education score, occupation
//     code, capital gain, weekly hours) whose values CORRELATE with the
//     sensitive attributes through a latent socio-economic score, so an
//     S-blind clustering of N still produces sensitive skew — the
//     phenomenon fair clustering exists to correct;
//   - a binary income label with ~24.1% positives so the paper's
//     undersampling step (32561 rows → 15682 rows with a 1:1 income
//     split) can be reproduced exactly.
//
// See DESIGN.md ("Substitutions") for the full rationale.
package adult

import (
	"fmt"
	"math"

	"repro/internal/dataset"
	"repro/internal/stats"
)

// FullSize is the row count of the original UCI Adult dataset.
const FullSize = 32561

// ParitySize is the dataset size after the paper's income-parity
// undersampling (Section 5.1).
const ParitySize = 15682

// SensitiveNames lists the five sensitive attributes in the paper's
// order.
var SensitiveNames = []string{
	"marital-status", "relationship", "race", "gender", "native-country",
}

// FeatureNames lists the eight numeric non-sensitive attributes.
var FeatureNames = []string{
	"age", "workclass-code", "workclass-tenure", "education-years",
	"education-score", "occupation-code", "capital-gain", "hours-per-week",
}

// Domain values mirror the UCI codebook.
var (
	maritalValues = []string{
		"Married-civ-spouse", "Divorced", "Never-married", "Separated",
		"Widowed", "Married-spouse-absent", "Married-AF-spouse",
	}
	relationshipValues = []string{
		"Wife", "Own-child", "Husband", "Not-in-family", "Other-relative",
		"Unmarried",
	}
	raceValues = []string{
		"White", "Black", "Asian-Pac-Islander", "Amer-Indian-Eskimo", "Other",
	}
	genderValues = []string{"Male", "Female"}
)

// countryValues holds 41 countries; the first dominates as in the real
// data.
var countryValues = []string{
	"United-States", "Mexico", "Philippines", "Germany", "Canada",
	"Puerto-Rico", "El-Salvador", "India", "Cuba", "England",
	"Jamaica", "South", "China", "Italy", "Dominican-Republic",
	"Vietnam", "Guatemala", "Japan", "Poland", "Columbia",
	"Taiwan", "Haiti", "Iran", "Portugal", "Nicaragua",
	"Peru", "France", "Greece", "Ecuador", "Ireland",
	"Hong", "Cambodia", "Trinadad&Tobago", "Laos", "Thailand",
	"Yugoslavia", "Outlying-US", "Honduras", "Hungary", "Scotland",
	"Holand-Netherlands",
}

// Config parameterizes generation.
type Config struct {
	// Seed drives all randomness.
	Seed int64
	// Rows is the pre-undersampling size; zero means FullSize.
	Rows int
	// SkipParity disables the income-parity undersampling, returning
	// all generated rows.
	SkipParity bool
}

// Generate produces the synthetic Adult dataset. With default Config it
// generates FullSize rows and undersamples to income parity exactly as
// the paper describes, returning ~ParitySize rows.
func Generate(cfg Config) (*dataset.Dataset, error) {
	rows := cfg.Rows
	if rows == 0 {
		rows = FullSize
	}
	if rows < 2 {
		return nil, fmt.Errorf("adult: need at least 2 rows, got %d", rows)
	}
	rng := stats.NewRNG(cfg.Seed)

	b := dataset.NewBuilder(FeatureNames...)
	domains := [][]string{
		maritalValues, relationshipValues, raceValues, genderValues,
		countryValues,
	}
	for i, name := range SensitiveNames {
		// Fixed domains preserve the paper's Table 3 cardinalities even
		// when a rare value (e.g. Holand-Netherlands) is never sampled.
		b.AddCategoricalSensitiveWithDomain(name, domains[i])
	}

	income := make([]bool, 0, rows)
	countryWeights := countryDistribution()
	for i := 0; i < rows; i++ {
		r := sampleRecord(rng, countryWeights)
		b.Row(r.features, r.sensitive, nil)
		income = append(income, r.highIncome)
	}
	ds, err := b.Build()
	if err != nil {
		return nil, fmt.Errorf("adult: %w", err)
	}
	if cfg.SkipParity {
		return ds, nil
	}
	return undersampleParity(ds, income, rng), nil
}

// incomeIntercept calibrates the income logit so ~24.1% of generated
// rows are high-income, matching the real Adult dataset's base rate
// (32561·0.241·2 ≈ 15682 rows after parity undersampling).
const incomeIntercept = -3.17

// record is one sampled person.
type record struct {
	features   []float64
	sensitive  []string
	highIncome bool
}

// countryDistribution gives United-States ~90% mass and a Zipf tail
// over the remaining 40 countries.
func countryDistribution() []float64 {
	w := make([]float64, len(countryValues))
	w[0] = 0.90
	tail := stats.ZipfWeights(len(countryValues)-1, 1.1)
	tailSum := stats.Sum(tail)
	for i, t := range tail {
		w[i+1] = 0.10 * t / tailSum
	}
	return w
}

// sampleRecord draws one person from the latent model. The generative
// story: demographics (gender, age, race, country) feed a latent
// socio-economic score that shifts education, occupation, hours,
// capital gains and income — which is what makes S recoverable from N
// by a clustering algorithm.
func sampleRecord(rng *stats.RNG, countryWeights []float64) record {
	male := rng.Bernoulli(2.0 / 3.0)
	gender := "Female"
	if male {
		gender = "Male"
	}

	age := clamp(17, 90, rng.Gaussian(38.6, 13.6))

	race := raceValues[rng.Categorical([]float64{0.855, 0.096, 0.031, 0.010, 0.008})]
	country := countryValues[rng.Categorical(countryWeights)]
	// Country-race coherence: non-US countries shift race composition.
	if country != "United-States" && race == "White" && rng.Bernoulli(0.5) {
		race = raceValues[1+rng.Intn(len(raceValues)-1)]
	}

	marital := sampleMarital(rng, age)
	relationship := sampleRelationship(rng, marital, male)

	// Latent socio-economic score: correlates with gender, age, race
	// and country so that the numeric features (and hence S-blind
	// clusters) carry sensitive information.
	ses := rng.Gaussian(0, 1)
	if male {
		ses += 0.45
	}
	ses += 0.35 * math.Min((age-25)/20, 1.5)
	switch race {
	case "White", "Asian-Pac-Islander":
		ses += 0.20
	case "Black", "Amer-Indian-Eskimo":
		ses -= 0.25
	}
	if country != "United-States" {
		ses -= 0.30
	}
	if marital == "Married-civ-spouse" {
		ses += 0.25
	}

	eduYears := clamp(1, 16, rng.Gaussian(10+1.8*ses, 2.2))
	eduScore := clamp(0, 100, rng.Gaussian(40+14*ses, 12))
	occupation := clamp(0, 14, rng.Gaussian(7+2.4*ses+boolTo(male, 1.2, -1.2), 2.8))
	workclass := clamp(0, 7, rng.Gaussian(3+0.8*ses, 1.6))
	tenure := clamp(0, 45, rng.Gaussian((age-18)*0.45+2*ses, 5))
	hours := clamp(1, 99, rng.Gaussian(40+4.5*ses+boolTo(male, 2.5, -2.5), 9))
	gain := 0.0
	if rng.Bernoulli(0.08 + 0.05*sigmoid(ses)) {
		gain = math.Exp(rng.Gaussian(7.5+0.8*ses, 1.1))
		if gain > 99999 {
			gain = 99999
		}
	}

	// Income: logistic in the latent score plus feature noise,
	// calibrated to ~24.1% positives like the real data.
	logit := 1.45*ses + 0.02*(hours-40) + 0.12*(eduYears-10) + incomeIntercept
	highIncome := rng.Bernoulli(sigmoid(logit))

	return record{
		features: []float64{
			age, workclass, tenure, eduYears, eduScore, occupation, gain, hours,
		},
		sensitive:  []string{marital, relationship, race, gender, country},
		highIncome: highIncome,
	}
}

func sampleMarital(rng *stats.RNG, age float64) string {
	switch {
	case age < 25:
		return maritalValues[rng.Categorical([]float64{0.12, 0.03, 0.80, 0.02, 0.00, 0.02, 0.01})]
	case age < 40:
		return maritalValues[rng.Categorical([]float64{0.52, 0.12, 0.28, 0.03, 0.01, 0.03, 0.01})]
	case age < 60:
		return maritalValues[rng.Categorical([]float64{0.62, 0.18, 0.10, 0.04, 0.03, 0.03, 0.00})]
	default:
		return maritalValues[rng.Categorical([]float64{0.55, 0.14, 0.05, 0.03, 0.20, 0.03, 0.00})]
	}
}

func sampleRelationship(rng *stats.RNG, marital string, male bool) string {
	if marital == "Married-civ-spouse" || marital == "Married-AF-spouse" {
		if male {
			return "Husband"
		}
		return "Wife"
	}
	if marital == "Never-married" {
		return relationshipValues[rng.Categorical([]float64{0, 0.45, 0, 0.35, 0.08, 0.12})]
	}
	return relationshipValues[rng.Categorical([]float64{0, 0.05, 0, 0.45, 0.10, 0.40})]
}

// undersampleParity keeps all rows of the minority income class and an
// equal-size random sample of the majority class (Section 5.1), then
// shuffles.
func undersampleParity(ds *dataset.Dataset, income []bool, rng *stats.RNG) *dataset.Dataset {
	var pos, neg []int
	for i, hi := range income {
		if hi {
			pos = append(pos, i)
		} else {
			neg = append(neg, i)
		}
	}
	minority, majority := pos, neg
	if len(pos) > len(neg) {
		minority, majority = neg, pos
	}
	keep := make([]int, 0, 2*len(minority))
	keep = append(keep, minority...)
	for _, j := range rng.SampleWithoutReplacement(len(majority), len(minority)) {
		keep = append(keep, majority[j])
	}
	rng.Shuffle(len(keep), func(i, j int) { keep[i], keep[j] = keep[j], keep[i] })
	return ds.Subset(keep)
}

func clamp(lo, hi, x float64) float64 {
	if x < lo {
		return lo
	}
	if x > hi {
		return hi
	}
	return x
}

func sigmoid(x float64) float64 { return 1 / (1 + math.Exp(-x)) }

func boolTo(b bool, yes, no float64) float64 {
	if b {
		return yes
	}
	return no
}
