package kinematics

import (
	"strings"
	"testing"

	"repro/internal/dataset"
	"repro/internal/kmeans"
	"repro/internal/metrics"
)

func TestProblemsCountsMatchTable4(t *testing.T) {
	problems := Problems(1)
	if len(problems) != TotalProblems {
		t.Fatalf("got %d problems, want %d", len(problems), TotalProblems)
	}
	counts := map[int]int{}
	for _, p := range problems {
		counts[p.Type]++
	}
	for ty, want := range TypeCounts {
		if counts[ty+1] != want {
			t.Errorf("type %d count = %d, want %d (Table 4)", ty+1, counts[ty+1], want)
		}
	}
}

func TestProblemTextNonEmptyAndTyped(t *testing.T) {
	problems := Problems(2)
	keywords := map[int][]string{
		1: {"horizontal", "straight", "road", "track", "highway"},
		2: {"vertically", "straight up", "upward", "downward"},
		3: {"dropped", "falls freely", "free fall", "releases"},
		4: {"horizontally", "horizontal"},
		5: {"angle", "degrees"},
	}
	for i, p := range problems {
		if len(p.Text) < 30 {
			t.Fatalf("problem %d text too short: %q", i, p.Text)
		}
		low := strings.ToLower(p.Text)
		found := false
		for _, kw := range keywords[p.Type] {
			if strings.Contains(low, kw) {
				found = true
				break
			}
		}
		if !found {
			t.Errorf("problem %d (type %d) lacks type vocabulary: %q", i, p.Type, p.Text)
		}
	}
}

func generateSmall(t *testing.T) *dataset.Dataset {
	t.Helper()
	ds, err := Generate(Config{Seed: 3, Dim: 25, Epochs: 30})
	if err != nil {
		t.Fatalf("Generate: %v", err)
	}
	return ds
}

func TestGenerateShapeAndSchema(t *testing.T) {
	ds := generateSmall(t)
	if ds.N() != TotalProblems {
		t.Errorf("N = %d, want %d", ds.N(), TotalProblems)
	}
	if ds.Dim() != 25 {
		t.Errorf("Dim = %d, want 25", ds.Dim())
	}
	if len(ds.Sensitive) != TypeCount {
		t.Fatalf("sensitive attrs = %d, want %d", len(ds.Sensitive), TypeCount)
	}
	for ti, name := range TypeNames {
		s := ds.SensitiveByName(name)
		if s == nil {
			t.Fatalf("missing %s", name)
		}
		if s.Cardinality() != 2 {
			t.Errorf("%s cardinality = %d, want 2 (binary)", name, s.Cardinality())
		}
		yes := 0
		yesIdx := -1
		for vi, v := range s.Values {
			if v == "yes" {
				yesIdx = vi
			}
		}
		for _, c := range s.Codes {
			if c == yesIdx {
				yes++
			}
		}
		if yes != TypeCounts[ti] {
			t.Errorf("%s yes-count = %d, want %d", name, yes, TypeCounts[ti])
		}
	}
	// Exactly one type per problem.
	for i := 0; i < ds.N(); i++ {
		yes := 0
		for _, s := range ds.Sensitive {
			if s.Values[s.Codes[i]] == "yes" {
				yes++
			}
		}
		if yes != 1 {
			t.Errorf("problem %d has %d type flags set", i, yes)
		}
	}
	if err := ds.Validate(); err != nil {
		t.Errorf("Validate: %v", err)
	}
}

// TestEmbeddingsCarryTypeSignal: the premise of the kinematics
// experiment is that lexical embeddings correlate with problem type, so
// type-blind K-Means produces type-skewed clusters. Verify the skew is
// well above the perfectly-fair baseline of 0.
func TestEmbeddingsCarryTypeSignal(t *testing.T) {
	ds := generateSmall(t)
	res, err := kmeans.Run(ds.Features, kmeans.Config{K: 5, Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	reps := metrics.FairnessAll(ds, res.Assign, 5)
	mean := reps[len(reps)-1]
	if mean.AE < 0.05 {
		t.Errorf("type-blind clustering mean AE = %v; embeddings appear type-blind (want > 0.05)", mean.AE)
	}
}

func TestGenerateDeterminism(t *testing.T) {
	a := generateSmall(t)
	b := generateSmall(t)
	for i := range a.Features {
		for j := range a.Features[i] {
			if a.Features[i][j] != b.Features[i][j] {
				t.Fatalf("embedding [%d][%d] differs across identical configs", i, j)
			}
		}
	}
}

func TestProblemsVaryBySeed(t *testing.T) {
	a := Problems(1)
	b := Problems(2)
	same := 0
	for i := range a {
		if a[i].Text == b[i].Text {
			same++
		}
	}
	if same == len(a) {
		t.Error("different seeds produced identical problem sets")
	}
}

func TestDefaultDimIs100(t *testing.T) {
	if testing.Short() {
		t.Skip("full-dim embedding training in -short mode")
	}
	ds, err := Generate(Config{Seed: 5, Epochs: 10})
	if err != nil {
		t.Fatal(err)
	}
	if ds.Dim() != 100 {
		t.Errorf("default Dim = %d, want 100 (paper's Doc2Vec size)", ds.Dim())
	}
}
