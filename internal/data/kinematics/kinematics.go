// Package kinematics generates the word-problem dataset of the FairKM
// paper's second evaluation scenario (Section 5.1): 161 physics word
// problems from the kinematics domain, categorized into the five types
// of Table 2 with the exact per-type counts of Table 4, each embedded
// as a 100-dimensional document vector.
//
// The original dataset is not public, so problems are produced by a
// template natural-language generator: each type has several sentence
// templates with type-characteristic vocabulary (Table 2's phenomena:
// horizontal motion, vertical throws, free fall, horizontal projection,
// two-dimensional projectiles), filled with randomly sampled objects,
// agents and physical quantities. Embeddings come from the from-scratch
// PV-DBOW trainer in internal/doc2vec, mirroring the paper's use of
// Doc2Vec [15]. Because lexical overlap within a type exceeds overlap
// across types, type-blind K-Means recovers type-skewed clusters — the
// unfairness FairKM is evaluated on correcting.
//
// The five problem types form five binary sensitive attributes named
// "Type-1" … "Type-5" (values "no"/"yes"), exactly one of which is
// "yes" per problem.
package kinematics

import (
	"fmt"

	"repro/internal/dataset"
	"repro/internal/doc2vec"
	"repro/internal/stats"
)

// TypeCount is the number of problem types (Table 2).
const TypeCount = 5

// TotalProblems is the dataset size (Section 5.1).
const TotalProblems = 161

// TypeCounts gives the number of problems of each type, from Table 4.
var TypeCounts = [TypeCount]int{60, 36, 15, 31, 19}

// TypeNames are the sensitive attribute names, one per problem type.
var TypeNames = [TypeCount]string{"Type-1", "Type-2", "Type-3", "Type-4", "Type-5"}

// TypeDescriptions mirror Table 2.
var TypeDescriptions = [TypeCount]string{
	"Horizontal motion",
	"Vertical motion with an initial velocity",
	"Free fall",
	"Horizontally projected",
	"Two-dimensional projectile",
}

// Problem is one generated word problem.
type Problem struct {
	// Text is the problem statement.
	Text string
	// Type is the problem type in [1, 5] per Table 2.
	Type int
}

// Config parameterizes dataset generation.
type Config struct {
	// Seed drives template sampling and embedding training.
	Seed int64
	// Dim is the embedding dimensionality; zero means the paper's 100.
	Dim int
	// Epochs is the Doc2Vec training epoch count; zero means 60.
	Epochs int
}

// Problems generates the 161 problems with Table 4's type counts, in a
// deterministic shuffled order.
func Problems(seed int64) []Problem {
	rng := stats.NewRNG(seed)
	problems := make([]Problem, 0, TotalProblems)
	for ty := 0; ty < TypeCount; ty++ {
		for i := 0; i < TypeCounts[ty]; i++ {
			problems = append(problems, Problem{
				Text: generateText(rng, ty+1),
				Type: ty + 1,
			})
		}
	}
	rng.Shuffle(len(problems), func(i, j int) {
		problems[i], problems[j] = problems[j], problems[i]
	})
	return problems
}

// Generate produces the full clustering dataset: Doc2Vec embeddings as
// the non-sensitive features and the five binary type attributes as S.
func Generate(cfg Config) (*dataset.Dataset, error) {
	dim := cfg.Dim
	if dim <= 0 {
		dim = 100
	}
	epochs := cfg.Epochs
	if epochs <= 0 {
		epochs = 60
	}
	problems := Problems(cfg.Seed)
	docs := make([][]string, len(problems))
	for i, p := range problems {
		docs[i] = doc2vec.Tokenize(p.Text)
	}
	model, err := doc2vec.Train(docs, doc2vec.Config{Dim: dim, Epochs: epochs, Seed: cfg.Seed + 1})
	if err != nil {
		return nil, fmt.Errorf("kinematics: embedding problems: %w", err)
	}
	// L2-normalize document vectors (standard Doc2Vec practice before
	// distance-based clustering). This also puts the per-point SSE on
	// the O(1) scale the paper's λ heuristic (Section 5.4) assumes.
	for _, v := range model.DocVecs {
		if n := stats.Norm(v); n > 0 {
			stats.Scale(v, 1/n)
		}
	}

	featNames := make([]string, dim)
	for j := range featNames {
		featNames[j] = fmt.Sprintf("d2v-%03d", j)
	}
	b := dataset.NewBuilder(featNames...)
	for _, name := range TypeNames {
		b.AddCategoricalSensitiveWithDomain(name, []string{"no", "yes"})
	}
	for i, p := range problems {
		flags := make([]string, TypeCount)
		for ty := range flags {
			if p.Type == ty+1 {
				flags[ty] = "yes"
			} else {
				flags[ty] = "no"
			}
		}
		b.Row(model.DocVecs[i], flags, nil)
	}
	ds, err := b.Build()
	if err != nil {
		return nil, fmt.Errorf("kinematics: %w", err)
	}
	return ds, nil
}

// ---- template NLG ----

// vehicles move along roads and tracks (type 1); projectiles are
// thrown, dropped or launched (types 2-5).
var (
	vehicles = []string{
		"car", "train", "cyclist", "runner", "truck", "bus", "motorbike",
		"scooter", "tram",
	}
	projectiles = []string{
		"ball", "stone", "marble", "arrow", "rocket", "package", "coin",
		"apple", "box", "dart", "pebble",
	}
)

var agents = []string{
	"a student", "an engineer", "a physicist", "a child", "an athlete",
	"a pilot", "a scientist",
}

// generateText builds one problem statement of the given type.
func generateText(rng *stats.RNG, typ int) string {
	obj := projectiles[rng.Intn(len(projectiles))]
	if typ == 1 {
		obj = vehicles[rng.Intn(len(vehicles))]
	}
	agent := agents[rng.Intn(len(agents))]
	v := 2 + rng.Intn(38)  // m/s
	a := 1 + rng.Intn(9)   // m/s^2
	tm := 2 + rng.Intn(18) // s
	h := 5 + rng.Intn(195) // m
	ang := 15 + rng.Intn(7)*10
	d := 10 + rng.Intn(490) // m

	pick := func(options ...string) string { return options[rng.Intn(len(options))] }

	switch typ {
	case 1: // horizontal straight-line motion
		return pick(
			fmt.Sprintf("A %s moves along a straight horizontal road at a constant velocity of %d m/s. How far does it travel in %d seconds?", obj, v, tm),
			fmt.Sprintf("A %s starts from rest and accelerates uniformly at %d m/s^2 along a level track. What is its velocity after %d seconds?", obj, a, tm),
			fmt.Sprintf("A %s travelling at %d m/s decelerates uniformly at %d m/s^2 on a straight road. How long does it take to stop?", obj, v, a),
			fmt.Sprintf("%s drives a %s that covers %d metres along a straight highway in %d seconds at constant speed. Find the speed of the %s.", title(agent), obj, d, tm, obj),
			fmt.Sprintf("A %s accelerates from %d m/s to %d m/s in %d seconds on a horizontal track. Calculate its uniform acceleration and the distance covered.", obj, v, v+a*tm, tm),
		)
	case 2: // vertical motion with initial velocity
		return pick(
			fmt.Sprintf("A %s is thrown vertically upward with an initial velocity of %d m/s. How high does it rise before coming momentarily to rest?", obj, v),
			fmt.Sprintf("%s throws a %s straight up at %d m/s. How long does the %s take to return to the thrower's hand?", title(agent), obj, v, obj),
			fmt.Sprintf("A %s is thrown vertically downward from a bridge with a speed of %d m/s. What is its velocity after falling for %d seconds?", obj, v, tm),
			fmt.Sprintf("A %s is launched straight upward at %d m/s from the ground. Find the maximum height reached and the total time of flight.", obj, v),
		)
	case 3: // free fall
		return pick(
			fmt.Sprintf("A %s is dropped from rest from the top of a tower %d metres tall. How long does it take to reach the ground?", obj, h),
			fmt.Sprintf("%s releases a %s from rest from a window %d metres above the street. With what velocity does the %s strike the ground?", title(agent), obj, h, obj),
			fmt.Sprintf("A %s falls freely from rest. What distance does it fall during the first %d seconds of its free fall?", obj, tm),
			fmt.Sprintf("A %s is dropped from a hot-air balloon hovering %d metres above the ground. Neglecting air resistance, find the time of fall and the final speed.", obj, h),
		)
	case 4: // horizontally projected
		return pick(
			fmt.Sprintf("A %s is projected horizontally at %d m/s from the top of a cliff %d metres high. How far from the base of the cliff does it land?", obj, v, h),
			fmt.Sprintf("%s rolls a %s horizontally off a table %d metres high with a speed of %d m/s. Find the horizontal distance it covers before hitting the floor.", title(agent), obj, h/20+1, v),
			fmt.Sprintf("A %s is thrown horizontally from a building %d metres tall with an initial speed of %d m/s. Determine the time of flight and the range.", obj, h, v),
			fmt.Sprintf("A %s leaves a horizontal conveyor belt at %d m/s and falls from a height of %d metres. What is its horizontal displacement when it lands?", obj, v, h),
		)
	default: // two-dimensional projectile at an angle
		return pick(
			fmt.Sprintf("A %s is projected with a velocity of %d m/s at an angle of %d degrees to the horizontal. Find the maximum height and the horizontal range of the projectile.", obj, v, ang),
			fmt.Sprintf("%s kicks a %s at %d m/s at an angle of %d degrees above the horizontal ground. How long is the %s in the air?", title(agent), obj, v, ang, obj),
			fmt.Sprintf("A %s is fired at an angle of %d degrees with an initial speed of %d m/s. At what two times is the projectile at half of its maximum height?", obj, ang, v),
			fmt.Sprintf("A %s is launched at %d degrees to the horizontal with velocity %d m/s from level ground. Calculate the range and the time of flight of this two-dimensional projectile.", obj, ang, v),
		)
	}
}

// title uppercases the first letter of a phrase.
func title(s string) string {
	if s == "" {
		return s
	}
	b := []byte(s)
	if b[0] >= 'a' && b[0] <= 'z' {
		b[0] -= 'a' - 'A'
	}
	return string(b)
}
