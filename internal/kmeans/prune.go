package kmeans

import (
	"math"
	"sync/atomic"

	"repro/internal/stats"
)

// Hamerly-style triangle-inequality pruning for Lloyd sweeps.
//
// The full Lloyd scoring step asks, for every row, "which of the k
// frozen centroids is nearest?" — an O(k·dim) scan. After the first
// few iterations most rows never change cluster, and pruning proves
// that cheaply: the pruner maintains, per row i with current
// assignment a,
//
//	u[i] ≥ d(x_i, c_a)            (upper bound, Euclidean distance)
//	l[i] ≤ min_{c≠a} d(x_i, c)    (lower bound on every OTHER centroid)
//
// plus, per centroid, the separation s(c) = ½·min_{c'≠c} d(c, c').
// If u[i] < l[i], every other centroid is strictly farther than the
// current one; if u[i] < s(a), the triangle inequality gives
// d(x_i, c) ≥ 2·s(a) − u[i] > u[i] ≥ d(x_i, c_a) for every c ≠ a
// (Hamerly 2010). Either way the scan is skipped and the assignment
// provably unchanged. When the test fails on the stale bound, u is
// first tightened to the exact current distance and the test retried;
// only rows that still fail fall back to the full scan.
//
// After each apply step, centroids move: Freeze updates the bounds
// from the per-centroid drift δ(c) = d(c_old, c_new) — u[i] grows by
// δ(a), l[i] shrinks by the largest drift among the OTHER centroids
// (max drift overall, or the second-largest when the argmax is a
// itself) — which preserves both invariants by the triangle
// inequality.
//
// # Exactness contract
//
// Pruned Lloyd is bit-identical to the naive scan — assignments
// (including ties), iteration counts and objective bits — for both
// the weighted and unweighted paths and every Parallelism setting:
//
//   - The prune tests are STRICT (u < bound), so they only ever fire
//     when the current centroid wins by a margin; an exact tie with a
//     lower-indexed duplicate centroid fails the test (s(a) = 0,
//     l ≤ u) and degrades to the full scan, which applies the
//     sequential lowest-index rule verbatim via exact stats.SqDist —
//     the same flops in the same order as the naive path.
//   - Every bound update is padded OUTWARD (prunePad relative to the
//     magnitudes involved, ~4 orders above the rounding of the few
//     flops per update), so floating-point rounding can weaken a
//     bound but never tighten it past the true distance: rounding can
//     only make the pruner scan MORE, never let it skip a row the
//     exact comparison would rescan.
//   - Per-row state (u, l) is read and written only while scoring row
//     i, and frozen-sweep workers own disjoint row ranges, so the
//     pruner is race-free and bit-deterministic for every worker
//     count; shared per-centroid state (sep, drift) is written only
//     inside Freeze, before workers start.
//
// prune_test.go pins all of this against Run/RunWeighted with
// Config.FullScan set, plus the bound invariants after every
// iteration.

// prunePad is the relative outward padding applied to every bound
// update, and the margin by which a prune decision therefore
// overshoots. Each update is a handful of IEEE-754 ops (≤ ~1e-15
// accumulated relative error); 1e-12 dwarfs that while costing
// nothing measurable in prune rate.
const prunePad = 1e-12

// padUp returns v pushed up by prunePad relative to scale (the sum of
// magnitudes entering the computation of v, so cancellation cannot
// shrink the pad below the true rounding error). Infinities pass
// through untouched (±Inf ± Inf·ε would be NaN).
func padUp(v, scale float64) float64 {
	if math.IsInf(v, 0) {
		return v
	}
	return v + prunePad*scale
}

// padDown is padUp's mirror for lower bounds.
func padDown(v, scale float64) float64 {
	if math.IsInf(v, 0) {
		return v
	}
	return v - prunePad*scale
}

// pruner carries the Hamerly bound state for one Lloyd run. It is
// created per Run/RunWeighted call (bounds are meaningless across
// datasets) and threaded through the objective's Freeze/BestMove.
type pruner struct {
	features [][]float64
	u        []float64 // upper bound on d(x_i, current centroid)
	l        []float64 // lower bound on d(x_i, every other centroid)
	sep      []float64 // ½ · distance to each centroid's nearest peer
	drift    []float64 // per-centroid movement at the last Freeze
	prev     [][]float64
	scans    atomic.Int64 // full k-way scans performed (telemetry/tests)
}

// newPruner returns a pruner with vacuous bounds: the first sweep
// tightens u per row and full-scans whatever the separation test
// cannot already prove.
func newPruner(features [][]float64) *pruner {
	n := len(features)
	p := &pruner{
		features: features,
		u:        make([]float64, n),
		l:        make([]float64, n),
	}
	for i := range p.u {
		p.u[i] = math.Inf(1)
		p.l[i] = math.Inf(-1)
	}
	return p
}

// refresh is called from Freeze, after the iteration's centroids are
// recomputed and before any scoring: it derives centroid separations
// for the new set and loosens every row's bounds by the centroid
// drift since the previous set. assign must be the live assignment
// the bounds refer to. Single-threaded by construction (Freeze runs
// before the sweep fans out).
func (p *pruner) refresh(frozen [][]float64, assign []int) {
	k := len(frozen)
	if p.sep == nil {
		p.sep = make([]float64, k)
		p.drift = make([]float64, k)
	}
	for c := range frozen {
		mind := math.Inf(1)
		for c2 := range frozen {
			if c2 == c {
				continue
			}
			if d := stats.Dist(frozen[c], frozen[c2]); d < mind {
				mind = d
			}
		}
		p.sep[c] = padDown(0.5*mind, mind) // k = 1: +Inf passes through
	}

	if p.prev != nil {
		// Per-centroid drift, padded up so each is a true upper bound
		// on how far that centroid moved.
		var d1, d2 float64 // largest and second-largest drift
		arg1 := -1
		for c := range frozen {
			d := stats.Dist(p.prev[c], frozen[c])
			d = padUp(d, d)
			p.drift[c] = d
			if d > d1 {
				d1, d2, arg1 = d, d1, c
			} else if d > d2 {
				d2 = d
			}
		}
		for i, a := range assign {
			u := p.u[i] + p.drift[a]
			p.u[i] = padUp(u, u)
			dmax := d1
			if arg1 == a {
				dmax = d2 // the max drifter is the row's own centroid
			}
			p.l[i] = padDown(p.l[i]-dmax, math.Abs(p.l[i])+dmax)
		}
	}
	// Freeze allocates a fresh centroid set every iteration, so holding
	// the reference (no copy) is safe.
	p.prev = frozen
}

// bestMove returns the index of the frozen centroid nearest to row i
// — exactly nearestCentroid(features[i], frozen), but skipping the
// k-way scan whenever the bounds prove the current assignment a still
// wins strictly.
//
//fairvet:hotpath
func (p *pruner) bestMove(i, a int, frozen [][]float64) int {
	m := p.l[i]
	if s := p.sep[a]; s > m {
		m = s
	}
	if p.u[i] < m {
		return a // bound test passed on the stale upper bound
	}
	x := p.features[i]
	ud := math.Sqrt(stats.SqDist(x, frozen[a]))
	p.u[i] = padUp(ud, ud)
	if p.u[i] < m {
		return a // passed after tightening u to the exact distance
	}

	// Full scan: the naive sequential rule verbatim (strict <, lowest
	// index wins ties), tracking the runner-up distance to reseed l.
	p.scans.Add(1)
	best, bestD := 0, math.Inf(1)
	second := math.Inf(1)
	for c, cen := range frozen {
		d := stats.SqDist(x, cen)
		if d < bestD {
			best, bestD, second = c, d, bestD
		} else if d < second {
			second = d
		}
	}
	ub := math.Sqrt(bestD)
	p.u[i] = padUp(ub, ub)
	lb := math.Sqrt(second) // k = 1: +Inf, passes through padDown
	p.l[i] = padDown(lb, lb)
	return best
}

// Scans reports how many full k-way scans the pruner has performed —
// the denominator of the pruning win. Exposed for tests and the
// experiment harness.
func (p *pruner) Scans() int64 { return p.scans.Load() }
