// Package kmeans implements classical K-Means clustering (Lloyd's
// algorithm) with k-means++ and random initialization.
//
// In this repository it plays two roles: it is the S-blind baseline
// "K-Means(N)" from the paper's evaluation (Section 5.3), and its
// initialization routines seed FairKM and ZGYA so all methods start from
// comparable configurations.
package kmeans

import (
	"errors"
	"fmt"
	"math"

	"repro/internal/stats"
)

// InitMethod selects how initial clusters are chosen.
type InitMethod int

const (
	// KMeansPlusPlus picks initial centroids with the k-means++
	// D²-weighting scheme (Arthur & Vassilvitskii 2007).
	KMeansPlusPlus InitMethod = iota
	// RandomPartition assigns every point to a uniformly random cluster,
	// matching "Initialize k clusters randomly" in FairKM's Algorithm 1.
	RandomPartition
	// RandomPoints picks k distinct data points as initial centroids.
	RandomPoints
)

// String implements fmt.Stringer.
func (m InitMethod) String() string {
	switch m {
	case KMeansPlusPlus:
		return "kmeans++"
	case RandomPartition:
		return "random-partition"
	case RandomPoints:
		return "random-points"
	default:
		return fmt.Sprintf("InitMethod(%d)", int(m))
	}
}

// Config parameterizes a K-Means run.
type Config struct {
	// K is the number of clusters; required, 1 <= K <= n.
	K int
	// MaxIter bounds Lloyd iterations. Zero means the default of 100.
	MaxIter int
	// Seed drives initialization.
	Seed int64
	// Init selects the initialization method.
	Init InitMethod
	// Tol stops iteration when the objective improves by less than Tol
	// between iterations. Zero means exact convergence (no change in
	// assignments).
	Tol float64
}

// DefaultMaxIter is used when Config.MaxIter is zero.
const DefaultMaxIter = 100

// Result is a completed clustering.
type Result struct {
	// Assign maps each row to its cluster in [0, K).
	Assign []int
	// Centroids holds the K cluster means over the feature space.
	// Empty clusters have zero-vector centroids.
	Centroids [][]float64
	// Sizes holds per-cluster cardinalities.
	Sizes []int
	// Objective is the final K-Means SSE (Eq. 24 in the paper).
	Objective float64
	// Iterations is the number of Lloyd iterations executed.
	Iterations int
	// Converged reports whether assignments stabilized before MaxIter.
	Converged bool
}

// K returns the number of clusters in the result.
func (r *Result) K() int { return len(r.Centroids) }

// Run clusters the given feature rows. It returns an error for invalid
// configurations (K out of range, ragged or empty input).
func Run(features [][]float64, cfg Config) (*Result, error) {
	n := len(features)
	if n == 0 {
		return nil, errors.New("kmeans: empty dataset")
	}
	dim := len(features[0])
	for i, row := range features {
		if len(row) != dim {
			return nil, fmt.Errorf("kmeans: row %d has %d features, want %d", i, len(row), dim)
		}
	}
	if cfg.K < 1 || cfg.K > n {
		return nil, fmt.Errorf("kmeans: K=%d out of range [1,%d]", cfg.K, n)
	}
	maxIter := cfg.MaxIter
	if maxIter <= 0 {
		maxIter = DefaultMaxIter
	}
	rng := stats.NewRNG(cfg.Seed)

	assign := make([]int, n)
	centroids := make([][]float64, cfg.K)
	switch cfg.Init {
	case RandomPartition:
		randomPartition(rng, assign, cfg.K)
		centroids = computeCentroids(features, assign, cfg.K)
	case RandomPoints:
		for i, p := range rng.SampleWithoutReplacement(n, cfg.K) {
			centroids[i] = stats.Clone(features[p])
		}
		assignAll(features, centroids, assign)
	default: // KMeansPlusPlus
		centroids = PlusPlusCentroids(features, cfg.K, rng)
		assignAll(features, centroids, assign)
	}

	res := &Result{Assign: assign}
	prevObj := math.Inf(1)
	for iter := 1; iter <= maxIter; iter++ {
		res.Iterations = iter
		centroids = computeCentroids(features, assign, cfg.K)
		changed := assignAll(features, centroids, assign)
		obj := SSE(features, assign, centroids)
		if changed == 0 {
			res.Converged = true
		}
		if cfg.Tol > 0 && prevObj-obj < cfg.Tol {
			res.Converged = true
		}
		prevObj = obj
		if res.Converged {
			break
		}
	}
	res.Centroids = computeCentroids(features, assign, cfg.K)
	res.Sizes = Sizes(assign, cfg.K)
	res.Objective = SSE(features, assign, res.Centroids)
	return res, nil
}

// randomPartition fills assign uniformly at random, then repairs any
// empty cluster by stealing a random point, so every cluster is
// non-empty when n >= k.
func randomPartition(rng *stats.RNG, assign []int, k int) {
	for i := range assign {
		assign[i] = rng.Intn(k)
	}
	sizes := Sizes(assign, k)
	for c := 0; c < k; c++ {
		for sizes[c] == 0 {
			i := rng.Intn(len(assign))
			if sizes[assign[i]] > 1 {
				sizes[assign[i]]--
				assign[i] = c
				sizes[c]++
			}
		}
	}
}

// PlusPlusCentroids returns k centroids chosen by the k-means++
// D²-sampling procedure.
func PlusPlusCentroids(features [][]float64, k int, rng *stats.RNG) [][]float64 {
	n := len(features)
	centroids := make([][]float64, 0, k)
	first := rng.Intn(n)
	centroids = append(centroids, stats.Clone(features[first]))
	d2 := make([]float64, n)
	for i := range d2 {
		d2[i] = stats.SqDist(features[i], centroids[0])
	}
	for len(centroids) < k {
		total := stats.Sum(d2)
		var next int
		if total <= 0 {
			// All remaining points coincide with chosen centroids; fall
			// back to uniform choice to keep the procedure total.
			next = rng.Intn(n)
		} else {
			next = rng.Categorical(d2)
		}
		c := stats.Clone(features[next])
		centroids = append(centroids, c)
		for i := range d2 {
			if d := stats.SqDist(features[i], c); d < d2[i] {
				d2[i] = d
			}
		}
	}
	return centroids
}

// assignAll reassigns every point to its nearest centroid, returning how
// many assignments changed.
func assignAll(features [][]float64, centroids [][]float64, assign []int) int {
	changed := 0
	for i, x := range features {
		best, bestD := 0, math.Inf(1)
		for c, cen := range centroids {
			if d := stats.SqDist(x, cen); d < bestD {
				best, bestD = c, d
			}
		}
		if assign[i] != best {
			assign[i] = best
			changed++
		}
	}
	return changed
}

// computeCentroids returns the per-cluster feature means. Empty clusters
// get zero vectors.
func computeCentroids(features [][]float64, assign []int, k int) [][]float64 {
	dim := len(features[0])
	sums := make([][]float64, k)
	for c := range sums {
		sums[c] = make([]float64, dim)
	}
	counts := make([]int, k)
	for i, x := range features {
		stats.AddTo(sums[assign[i]], x)
		counts[assign[i]]++
	}
	for c := range sums {
		if counts[c] > 0 {
			stats.Scale(sums[c], 1/float64(counts[c]))
		}
	}
	return sums
}

// Centroids exposes centroid computation for other packages (metrics,
// FairKM tests).
func Centroids(features [][]float64, assign []int, k int) [][]float64 {
	return computeCentroids(features, assign, k)
}

// SSE returns the K-Means objective: the summed squared distance of each
// point to its cluster centroid (Eq. 24).
func SSE(features [][]float64, assign []int, centroids [][]float64) float64 {
	s := 0.0
	for i, x := range features {
		s += stats.SqDist(x, centroids[assign[i]])
	}
	return s
}

// Sizes returns per-cluster cardinalities for an assignment.
func Sizes(assign []int, k int) []int {
	sizes := make([]int, k)
	for _, c := range assign {
		sizes[c]++
	}
	return sizes
}
